package nexus

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"nexus/internal/afs"
	"nexus/internal/backend"
	"nexus/internal/enclave"
)

// TestConcurrentClientsSameDirectory exercises the §V-A data-consistency
// mechanism: two independent NEXUS clients (separate enclaves, separate
// AFS caches) create files in the same directory simultaneously. The
// store-side metadata locks and callback invalidations must prevent lost
// updates: afterwards both clients see every file.
func TestConcurrentClientsSameDirectory(t *testing.T) {
	srv := afs.NewServer(backend.NewMemStore())
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()
	addr := l.Addr().String()

	ias, err := NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	newStack := func() (*Client, *afs.Client) {
		store, err := afs.Dial(addr, afs.ClientConfig{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = store.Close() })
		c, err := NewClient(ClientConfig{Store: store, IAS: ias})
		if err != nil {
			t.Fatal(err)
		}
		return c, store
	}

	// Owen creates the volume and the shared directory.
	owenClient, owenAFS := newStack()
	owen, err := NewIdentity("owen")
	if err != nil {
		t.Fatal(err)
	}
	vol, _, err := owenClient.CreateVolume(owen)
	if err != nil {
		t.Fatal(err)
	}
	if err := vol.FS().MkdirAll("/shared"); err != nil {
		t.Fatal(err)
	}

	// Alice joins via the exchange protocol and gets full rights.
	aliceClient, aliceAFS := newStack()
	_ = aliceAFS
	alice, err := NewIdentity("alice")
	if err != nil {
		t.Fatal(err)
	}
	offer, err := aliceClient.CreateShareOffer(alice)
	if err != nil {
		t.Fatal(err)
	}
	grant, err := vol.GrantAccess(offer, "alice", alice.PublicKey, owen)
	if err != nil {
		t.Fatal(err)
	}
	aliceSealed, volID, err := aliceClient.AcceptShareGrant(grant, owen.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := vol.SetACL("/", "alice", ReadWrite); err != nil {
		t.Fatal(err)
	}
	if err := vol.SetACL("/shared", "alice", ReadWrite); err != nil {
		t.Fatal(err)
	}
	aliceVol, err := aliceClient.Mount(alice, aliceSealed, volID)
	if err != nil {
		t.Fatal(err)
	}

	// Both clients hammer the same directory concurrently.
	const perClient = 20
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	record := func(err error) {
		if err == nil {
			return
		}
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		fs := vol.FS()
		for i := 0; i < perClient; i++ {
			record(fs.WriteFile(fmt.Sprintf("/shared/owen-%02d", i), []byte("from owen")))
		}
	}()
	go func() {
		defer wg.Done()
		fs := aliceVol.FS()
		for i := 0; i < perClient; i++ {
			record(fs.WriteFile(fmt.Sprintf("/shared/alice-%02d", i), []byte("from alice")))
		}
	}()
	wg.Wait()
	if firstErr != nil {
		t.Fatalf("concurrent writes failed: %v", firstErr)
	}

	// Every file must be visible to BOTH clients (no lost directory
	// updates despite interleaved dirnode rewrites).
	for name, fs := range map[string]*FS{"owen": vol.FS(), "alice": aliceVol.FS()} {
		entries, err := fs.ReadDir("/shared")
		if err != nil {
			t.Fatalf("%s ReadDir: %v", name, err)
		}
		if len(entries) != 2*perClient {
			t.Fatalf("%s sees %d entries, want %d", name, len(entries), 2*perClient)
		}
	}
	// Cross-reads: alice reads owen's file and vice versa.
	got, err := aliceVol.FS().ReadFile("/shared/owen-00")
	if err != nil || string(got) != "from owen" {
		t.Fatalf("alice cross-read = %q, %v", got, err)
	}
	got, err = vol.FS().ReadFile("/shared/alice-19")
	if err != nil || string(got) != "from alice" {
		t.Fatalf("owen cross-read = %q, %v", got, err)
	}

	_, stores := srv.Stats()
	if stores == 0 {
		t.Fatal("server saw no stores")
	}
	_ = owenAFS
}

// TestConcurrentWritersSameFile verifies last-writer-wins with no
// torn/corrupt state when two clients rewrite one file under contention.
func TestConcurrentWritersSameFile(t *testing.T) {
	srv := afs.NewServer(backend.NewMemStore())
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	ias, err := NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	store1, err := afs.Dial(l.Addr().String(), afs.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer store1.Close()
	client1, err := NewClient(ClientConfig{Store: store1, IAS: ias})
	if err != nil {
		t.Fatal(err)
	}
	owen, err := NewIdentity("owen")
	if err != nil {
		t.Fatal(err)
	}
	vol1, _, err := client1.CreateVolume(owen)
	if err != nil {
		t.Fatal(err)
	}
	if err := vol1.FS().WriteFile("/contended", []byte("init")); err != nil {
		t.Fatal(err)
	}

	store2, err := afs.Dial(l.Addr().String(), afs.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	client2, err := NewClient(ClientConfig{Store: store2, IAS: ias})
	if err != nil {
		t.Fatal(err)
	}
	alice, err := NewIdentity("alice")
	if err != nil {
		t.Fatal(err)
	}
	offer, err := client2.CreateShareOffer(alice)
	if err != nil {
		t.Fatal(err)
	}
	grantBytes, err := vol1.GrantAccess(offer, "alice", alice.PublicKey, owen)
	if err != nil {
		t.Fatal(err)
	}
	sealed2, volID, err := client2.AcceptShareGrant(grantBytes, owen.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := vol1.SetACL("/", "alice", ReadWrite); err != nil {
		t.Fatal(err)
	}
	vol2, err := client2.Mount(alice, sealed2, volID)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	writer := func(v *Volume, tag string) {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			payload := []byte(fmt.Sprintf("%s-%03d", tag, i))
			if err := v.FS().WriteFile("/contended", payload); err != nil &&
				!errors.Is(err, enclave.ErrStaleMetadata) {
				t.Errorf("%s write %d: %v", tag, i, err)
				return
			}
		}
	}
	go writer(vol1, "owen")
	go writer(vol2, "alice")
	wg.Wait()

	// Whatever won, both clients converge on one consistent final value
	// once the (asynchronous) callback invalidations land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		a, errA := vol1.FS().ReadFile("/contended")
		b, errB := vol2.FS().ReadFile("/contended")
		if errA != nil || errB != nil {
			t.Fatalf("final reads: %v / %v", errA, errB)
		}
		if string(a) == string(b) {
			if len(a) < 5 {
				t.Fatalf("final contents suspicious: %q", a)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("clients never converged: %q vs %q", a, b)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
