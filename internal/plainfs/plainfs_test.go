package plainfs

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"nexus/internal/backend"
	"nexus/internal/fsapi"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	return New(backend.NewMemStore())
}

func TestFileRoundTrip(t *testing.T) {
	fs := newFS(t)
	if err := fs.WriteFile("/a.txt", []byte("contents")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/a.txt")
	if err != nil || string(got) != "contents" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	st, err := fs.Stat("/a.txt")
	if err != nil || st.IsDir || st.Size != 8 {
		t.Fatalf("Stat = %+v, %v", st, err)
	}
	if _, err := fs.ReadFile("/ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ReadFile(ghost) = %v", err)
	}
}

func TestDirectories(t *testing.T) {
	fs := newFS(t)
	if err := fs.MkdirAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/a/b/c"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate mkdir = %v", err)
	}
	if err := fs.Mkdir("/no/parent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("orphan mkdir = %v", err)
	}
	if err := fs.WriteFile("/a/b/c/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/top", []byte("y")); err != nil {
		t.Fatal(err)
	}

	entries, err := fs.ReadDir("/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Name != "b" || !entries[0].IsDir || entries[1].Name != "top" {
		t.Fatalf("ReadDir(/a) = %+v", entries)
	}
	// Root listing.
	entries, err = fs.ReadDir("/")
	if err != nil || len(entries) != 1 || entries[0].Name != "a" {
		t.Fatalf("ReadDir(/) = %+v, %v", entries, err)
	}

	if err := fs.Remove("/a"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("remove non-empty = %v", err)
	}
	if err := fs.RemoveAll("/a"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := fs.Exists("/a"); ok {
		t.Fatal("/a survived RemoveAll")
	}
}

func TestRenameFileAndTree(t *testing.T) {
	fs := newFS(t)
	if err := fs.MkdirAll("/src/sub"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/src/sub/f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/src/sub/f", "/src/g"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/src/g")
	if err != nil || string(got) != "data" {
		t.Fatalf("after file rename = %q, %v", got, err)
	}

	// Directory subtree rename.
	if err := fs.WriteFile("/src/sub/deep", []byte("d")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/src", "/dst"); err != nil {
		t.Fatal(err)
	}
	got, err = fs.ReadFile("/dst/sub/deep")
	if err != nil || string(got) != "d" {
		t.Fatalf("after tree rename = %q, %v", got, err)
	}
	if ok, _ := fs.Exists("/src"); ok {
		t.Fatal("/src survived rename")
	}
}

func TestRenameDoesNotTouchSiblingsWithSharedPrefix(t *testing.T) {
	fs := newFS(t)
	if err := fs.MkdirAll("/ab"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/abc"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/abc/f", []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/ab", "/xy"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/abc/f")
	if err != nil || string(got) != "keep" {
		t.Fatalf("sibling clobbered: %q, %v", got, err)
	}
}

func TestSymlink(t *testing.T) {
	fs := newFS(t)
	if err := fs.Symlink("/target", "/ln"); err != nil {
		t.Fatal(err)
	}
	st, err := fs.Stat("/ln")
	if err != nil || !st.IsSymlink || st.SymlinkTarget != "/target" {
		t.Fatalf("Stat(ln) = %+v, %v", st, err)
	}
	if err := fs.Remove("/ln"); err != nil {
		t.Fatal(err)
	}
}

func TestSpecialCharactersInNames(t *testing.T) {
	fs := newFS(t)
	for _, name := range []string{"/with#hash", "/with%percent", "/with%23both"} {
		if err := fs.WriteFile(name, []byte(name)); err != nil {
			t.Fatalf("WriteFile(%q): %v", name, err)
		}
		got, err := fs.ReadFile(name)
		if err != nil || string(got) != name {
			t.Fatalf("ReadFile(%q) = %q, %v", name, got, err)
		}
	}
	entries, err := fs.ReadDir("/")
	if err != nil || len(entries) != 3 {
		t.Fatalf("ReadDir = %+v, %v", entries, err)
	}
	want := map[string]bool{"with#hash": true, "with%percent": true, "with%23both": true}
	for _, e := range entries {
		if !want[e.Name] {
			t.Fatalf("unexpected listing name %q", e.Name)
		}
	}
}

func TestOpenHandleMatchesNexusSemantics(t *testing.T) {
	fs := newFS(t)
	f, err := fs.Open("/f", fsapi.O_RDWR|fsapi.O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/f")
	if err != nil || string(got) != "abcdef" {
		t.Fatalf("post-sync = %q, %v", got, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := f.Read(buf); err != nil || !bytes.Equal(buf, []byte("abc")) {
		t.Fatalf("Read = %q, %v", buf, err)
	}
	if err := f.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err = fs.ReadFile("/f")
	if err != nil || string(got) != "ab" {
		t.Fatalf("post-close = %q, %v", got, err)
	}
	if _, err := fs.Open("/nope", fsapi.O_RDONLY); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Open(missing) = %v", err)
	}
}
