// Package plainfs models an unmodified distributed-filesystem client —
// the "OpenAFS" baseline of the paper's evaluation (§VII).
//
// Files map one-to-one onto store objects named by their escaped path;
// directories are marker objects so empty directories exist and listings
// are served by prefix scans. Every operation therefore costs what the
// underlying store charges (one RPC when stacked on the AFS client,
// nothing when on a memory store), with none of NEXUS's metadata or
// cryptography — exactly the baseline the paper compares against.
package plainfs

import (
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"

	"nexus/internal/backend"
	"nexus/internal/fsapi"
)

// Name-mangling scheme: object names cannot contain '/', so path
// separators become '#' (and literal '#' and '%' are escaped). Directory
// markers carry a trailing separator.
const (
	sep       = "#"
	dirMarker = "#dir"
	filePre   = "f"
	linkPre   = "l"
)

func escape(p string) string {
	p = path.Clean("/" + p)
	if p == "/" {
		return ""
	}
	s := strings.TrimPrefix(p, "/")
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "#", "%23")
	return strings.ReplaceAll(s, "/", sep)
}

// Errors.
var (
	// ErrNotFound reports a missing path.
	ErrNotFound = errors.New("plainfs: no such file or directory")
	// ErrExists reports a create collision.
	ErrExists = errors.New("plainfs: entry already exists")
	// ErrNotEmpty reports a non-empty directory removal.
	ErrNotEmpty = errors.New("plainfs: directory not empty")
	// ErrNotDir and ErrNotFile report kind mismatches.
	ErrNotDir  = errors.New("plainfs: not a directory")
	ErrNotFile = errors.New("plainfs: not a file")
)

// FS is the baseline filesystem over a backend.Store.
type FS struct {
	store backend.Store
}

var _ fsapi.FileSystem = (*FS)(nil)

// New returns a baseline filesystem over store.
func New(store backend.Store) *FS { return &FS{store: store} }

func fileObj(p string) string { return filePre + sep + escape(p) }
func dirObj(p string) string  { return dirMarker + sep + escape(p) }
func linkObj(p string) string { return linkPre + sep + escape(p) }

// Mkdir creates one directory.
func (fs *FS) Mkdir(p string) error {
	clean := path.Clean("/" + p)
	if clean == "/" {
		return nil
	}
	if ok, err := fs.isDir(path.Dir(clean)); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path.Dir(clean))
	}
	if exists, err := fs.Exists(clean); err != nil {
		return err
	} else if exists {
		return fmt.Errorf("%w: %s", ErrExists, clean)
	}
	return fs.store.Put(dirObj(clean), nil)
}

// MkdirAll creates a directory and missing parents.
func (fs *FS) MkdirAll(p string) error {
	clean := path.Clean("/" + p)
	if clean == "/" {
		return nil
	}
	parts := strings.Split(strings.Trim(clean, "/"), "/")
	cur := ""
	for _, part := range parts {
		cur += "/" + part
		if err := fs.Mkdir(cur); err != nil && !errors.Is(err, ErrExists) {
			return err
		}
	}
	return nil
}

func (fs *FS) isDir(p string) (bool, error) {
	if path.Clean("/"+p) == "/" {
		return true, nil
	}
	_, err := fs.store.Get(dirObj(p))
	if errors.Is(err, backend.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Touch creates an empty file.
func (fs *FS) Touch(p string) error {
	if ok, err := fs.isDir(path.Dir(path.Clean("/" + p))); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path.Dir(p))
	}
	if exists, err := fs.Exists(p); err != nil {
		return err
	} else if exists {
		return fmt.Errorf("%w: %s", ErrExists, p)
	}
	return fs.store.Put(fileObj(p), nil)
}

// WriteFile writes (creating if needed). Writing over a directory or
// symlink name fails, as it does on a POSIX filesystem.
func (fs *FS) WriteFile(p string, data []byte) error {
	if ok, err := fs.isDir(path.Dir(path.Clean("/" + p))); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path.Dir(p))
	}
	if ok, err := fs.isDir(p); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("%w: %s is a directory", ErrNotFile, p)
	}
	if _, err := fs.store.Get(linkObj(p)); err == nil {
		return fmt.Errorf("%w: %s is a symlink", ErrNotFile, p)
	} else if !errors.Is(err, backend.ErrNotExist) {
		return err
	}
	return fs.store.Put(fileObj(p), data)
}

// ReadFile returns a file's contents.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	data, err := fs.store.Get(fileObj(p))
	if errors.Is(err, backend.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, p)
	}
	return data, err
}

// Remove deletes a file, symlink, or empty directory.
func (fs *FS) Remove(p string) error {
	if err := fs.store.Delete(fileObj(p)); err == nil {
		return nil
	} else if !errors.Is(err, backend.ErrNotExist) {
		return err
	}
	if err := fs.store.Delete(linkObj(p)); err == nil {
		return nil
	} else if !errors.Is(err, backend.ErrNotExist) {
		return err
	}
	// Directory: must be empty.
	if ok, err := fs.isDir(p); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, p)
	}
	entries, err := fs.ReadDir(p)
	if err != nil {
		return err
	}
	if len(entries) != 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, p)
	}
	return fs.store.Delete(dirObj(p))
}

// RemoveAll deletes p recursively; missing paths are fine.
func (fs *FS) RemoveAll(p string) error {
	exists, err := fs.Exists(p)
	if err != nil {
		return err
	}
	if !exists {
		return nil
	}
	st, err := fs.Stat(p)
	if err != nil {
		return err
	}
	if st.IsDir {
		entries, err := fs.ReadDir(p)
		if err != nil {
			return err
		}
		for _, entry := range entries {
			if err := fs.RemoveAll(path.Join(p, entry.Name)); err != nil {
				return err
			}
		}
	}
	return fs.Remove(p)
}

// Rename moves a file or directory (directories move all descendants —
// one rename per contained object, matching a server-side tree rename's
// client-visible cost only loosely; the paper's mv test renames files).
func (fs *FS) Rename(oldPath, newPath string) error {
	if path.Clean("/"+oldPath) == path.Clean("/"+newPath) {
		// Renaming onto itself is a no-op (it must not delete the file).
		if ok, err := fs.Exists(oldPath); err != nil {
			return err
		} else if !ok {
			return fmt.Errorf("%w: %s", ErrNotFound, oldPath)
		}
		return nil
	}
	// The destination's parent must be an existing directory.
	if ok, err := fs.isDir(path.Dir(path.Clean("/" + newPath))); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path.Dir(newPath))
	}
	// File?
	if data, err := fs.store.Get(fileObj(oldPath)); err == nil {
		if isDir, err := fs.isDir(newPath); err != nil {
			return err
		} else if isDir {
			return fmt.Errorf("%w: %s", ErrExists, newPath)
		}
		if err := fs.store.Put(fileObj(newPath), data); err != nil {
			return err
		}
		return fs.store.Delete(fileObj(oldPath))
	}
	// Symlink?
	if data, err := fs.store.Get(linkObj(oldPath)); err == nil {
		if err := fs.store.Put(linkObj(newPath), data); err != nil {
			return err
		}
		return fs.store.Delete(linkObj(oldPath))
	}
	// Directory subtree.
	if ok, err := fs.isDir(oldPath); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, oldPath)
	}
	oldEsc, newEsc := escape(oldPath), escape(newPath)
	for _, prefix := range []string{filePre + sep, linkPre + sep, dirMarker + sep} {
		names, err := fs.store.List(prefix + oldEsc)
		if err != nil {
			return err
		}
		for _, name := range names {
			tail := strings.TrimPrefix(name, prefix+oldEsc)
			if tail != "" && !strings.HasPrefix(tail, sep) {
				continue // sibling sharing the prefix
			}
			data, err := fs.store.Get(name)
			if err != nil {
				return err
			}
			if err := fs.store.Put(prefix+newEsc+tail, data); err != nil {
				return err
			}
			if err := fs.store.Delete(name); err != nil {
				return err
			}
		}
	}
	return nil
}

// Symlink records a symbolic link.
func (fs *FS) Symlink(target, linkPath string) error {
	if target == "" {
		return fmt.Errorf("plainfs: empty symlink target")
	}
	if exists, err := fs.Exists(linkPath); err != nil {
		return err
	} else if exists {
		return fmt.Errorf("%w: %s", ErrExists, linkPath)
	}
	return fs.store.Put(linkObj(linkPath), []byte(target))
}

// Stat describes the entry at p.
func (fs *FS) Stat(p string) (fsapi.DirEntry, error) {
	name := path.Base(path.Clean("/" + p))
	if data, err := fs.store.Get(fileObj(p)); err == nil {
		return fsapi.DirEntry{Name: name, Size: uint64(len(data))}, nil
	}
	if data, err := fs.store.Get(linkObj(p)); err == nil {
		return fsapi.DirEntry{Name: name, IsSymlink: true, SymlinkTarget: string(data)}, nil
	}
	if ok, err := fs.isDir(p); err != nil {
		return fsapi.DirEntry{}, err
	} else if ok {
		return fsapi.DirEntry{Name: name, IsDir: true}, nil
	}
	return fsapi.DirEntry{}, fmt.Errorf("%w: %s", ErrNotFound, p)
}

// Exists reports whether p names anything.
func (fs *FS) Exists(p string) (bool, error) {
	_, err := fs.Stat(p)
	if errors.Is(err, ErrNotFound) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// ReadDir lists the immediate children of p, sorted.
func (fs *FS) ReadDir(p string) ([]fsapi.DirEntry, error) {
	if ok, err := fs.isDir(p); err != nil {
		return nil, err
	} else if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, p)
	}
	esc := escape(p)
	prefixTail := esc
	if prefixTail != "" {
		prefixTail += sep
	}
	seen := make(map[string]fsapi.DirEntry)
	for _, pre := range []string{filePre + sep, linkPre + sep, dirMarker + sep} {
		names, err := fs.store.List(pre + prefixTail)
		if err != nil {
			return nil, err
		}
		for _, name := range names {
			tail := strings.TrimPrefix(name, pre+prefixTail)
			if tail == "" || strings.Contains(tail, sep) {
				continue // the dir itself, or a deeper descendant
			}
			display := strings.ReplaceAll(strings.ReplaceAll(tail, "%23", "#"), "%25", "%")
			switch pre {
			case filePre + sep:
				seen[display] = fsapi.DirEntry{Name: display}
			case linkPre + sep:
				seen[display] = fsapi.DirEntry{Name: display, IsSymlink: true}
			default:
				seen[display] = fsapi.DirEntry{Name: display, IsDir: true}
			}
		}
	}
	out := make([]fsapi.DirEntry, 0, len(seen))
	for _, entry := range seen {
		out = append(out, entry)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Open returns an open-to-close handle, mirroring the AFS session
// semantics the NEXUS handle provides.
func (fs *FS) Open(p string, flags int) (fsapi.File, error) {
	f := &file{fs: fs, path: p, flags: flags, open: true}
	data, err := fs.ReadFile(p)
	switch {
	case err == nil:
		if flags&fsapi.O_TRUNC == 0 {
			f.buf = data
		} else {
			f.dirty = true
		}
	case errors.Is(err, ErrNotFound) && flags&fsapi.O_CREATE != 0:
		f.dirty = true
	default:
		return nil, err
	}
	if flags&fsapi.O_APPEND != 0 {
		f.pos = int64(len(f.buf))
	}
	return f, nil
}

// file implements fsapi.File for the baseline.
type file struct {
	fs    *FS
	path  string
	flags int

	mu    sync.Mutex
	buf   []byte
	pos   int64
	dirty bool
	open  bool
}

func (f *file) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.open {
		return 0, fmt.Errorf("plainfs: read of closed file %s", f.path)
	}
	if f.pos >= int64(len(f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[f.pos:])
	f.pos += int64(n)
	return n, nil
}

func (f *file) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if off < 0 || off >= int64(len(f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *file) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.open {
		return 0, fmt.Errorf("plainfs: write to closed file %s", f.path)
	}
	if f.flags&fsapi.O_RDWR == 0 && f.flags&fsapi.O_APPEND == 0 {
		return 0, fmt.Errorf("plainfs: file %s not open for writing", f.path)
	}
	end := f.pos + int64(len(p))
	if end > int64(len(f.buf)) {
		grown := make([]byte, end)
		copy(grown, f.buf)
		f.buf = grown
	}
	copy(f.buf[f.pos:end], p)
	f.pos = end
	f.dirty = true
	return len(p), nil
}

func (f *file) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		base = int64(len(f.buf))
	default:
		return 0, fmt.Errorf("plainfs: bad whence %d", whence)
	}
	pos := base + offset
	if pos < 0 {
		return 0, fmt.Errorf("plainfs: negative seek position")
	}
	f.pos = pos
	return pos, nil
}

func (f *file) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if size < 0 {
		return fmt.Errorf("plainfs: negative truncate size")
	}
	switch {
	case size < int64(len(f.buf)):
		f.buf = f.buf[:size]
	case size > int64(len(f.buf)):
		grown := make([]byte, size)
		copy(grown, f.buf)
		f.buf = grown
	}
	f.dirty = true
	return nil
}

func (f *file) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.buf))
}

func (f *file) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncLocked()
}

func (f *file) syncLocked() error {
	if !f.dirty {
		return nil
	}
	if err := f.fs.WriteFile(f.path, f.buf); err != nil {
		return err
	}
	f.dirty = false
	return nil
}

func (f *file) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.open {
		return nil
	}
	err := f.syncLocked()
	f.open = false
	f.buf = nil
	return err
}
