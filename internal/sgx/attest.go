package sgx

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"fmt"
	"sync"

	"nexus/internal/serial"
)

// ReportDataSize is the number of caller-chosen bytes bound into a quote
// (SGX reserves 64 bytes of REPORTDATA; NEXUS uses it to bind an ECDH
// public key to the enclave, DSN'19 §IV-B1).
const ReportDataSize = 64

// Quote attests that an enclave with the given measurement, running on a
// genuine (provisioned) platform, produced ReportData. It corresponds to
// the output of the Intel Quoting Enclave.
type Quote struct {
	// Measurement is the attested enclave's MRENCLAVE.
	Measurement Measurement
	// EnclaveName and Version echo the attested image identity (ISV
	// product identity in real SGX).
	EnclaveName string
	Version     uint16
	// PlatformID names the quoting platform.
	PlatformID [16]byte
	// ReportData carries 64 bytes chosen by the attested enclave.
	ReportData [ReportDataSize]byte
	// Signature is the platform attestation key's ECDSA signature over
	// the quote body.
	Signature []byte
}

// Encode serializes the quote (including its signature) for in-band
// transport over the shared storage service.
func (q *Quote) Encode() []byte {
	w := serial.NewWriter(192 + len(q.EnclaveName) + len(q.Signature))
	w.WriteRaw(q.Measurement[:])
	w.WriteString(q.EnclaveName)
	w.WriteUint16(q.Version)
	w.WriteRaw(q.PlatformID[:])
	w.WriteRaw(q.ReportData[:])
	w.WriteBytes(q.Signature)
	return w.Bytes()
}

// DecodeQuote parses a quote produced by Encode.
func DecodeQuote(b []byte) (*Quote, error) {
	r := serial.NewReader(b)
	q := &Quote{}
	r.ReadRawInto(q.Measurement[:], "quote measurement")
	q.EnclaveName = r.ReadString(256, "quote enclave name")
	q.Version = r.ReadUint16("quote version")
	r.ReadRawInto(q.PlatformID[:], "quote platform id")
	r.ReadRawInto(q.ReportData[:], "quote report data")
	q.Signature = r.ReadBytes(512, "quote signature")
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("sgx: decoding quote: %w", err)
	}
	return q, nil
}

// body serializes the signed portion of the quote.
func (q *Quote) body() []byte {
	buf := make([]byte, 0, 128+len(q.EnclaveName))
	buf = append(buf, "sgx-quote-v1\x00"...)
	buf = append(buf, q.Measurement[:]...)
	buf = append(buf, q.EnclaveName...)
	buf = append(buf, 0)
	buf = binary.LittleEndian.AppendUint16(buf, q.Version)
	buf = append(buf, q.PlatformID[:]...)
	buf = append(buf, q.ReportData[:]...)
	return buf
}

// Quote produces a quote over reportData, signed by the platform's
// attestation key (the simulated Quoting Enclave).
func (e *Enclave) Quote(reportData []byte) (*Quote, error) {
	if err := e.checkAlive(); err != nil {
		return nil, err
	}
	if len(reportData) > ReportDataSize {
		return nil, fmt.Errorf("sgx: report data %d bytes exceeds %d", len(reportData), ReportDataSize)
	}
	q := &Quote{
		Measurement: e.measurement,
		EnclaveName: e.image.Name,
		Version:     e.image.Version,
		PlatformID:  e.platform.id,
	}
	copy(q.ReportData[:], reportData)
	digest := sha256.Sum256(q.body())
	sig, err := ecdsa.SignASN1(rand.Reader, e.platform.attest, digest[:])
	if err != nil {
		return nil, fmt.Errorf("sgx: signing quote: %w", err)
	}
	q.Signature = sig
	return q, nil
}

// AttestationService simulates the Intel Attestation Service: it knows
// the attestation public keys of all provisioned (genuine) platforms,
// verifies quotes against them, and issues reports signed with its own
// service key that relying parties can check offline.
type AttestationService struct {
	signer *ecdsa.PrivateKey

	mu        sync.RWMutex
	platforms map[[16]byte]*ecdsa.PublicKey // guarded by mu
}

// NewAttestationService creates a service with a fresh signing key.
func NewAttestationService() (*AttestationService, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("sgx: generating IAS key: %w", err)
	}
	return &AttestationService{
		signer:    key,
		platforms: make(map[[16]byte]*ecdsa.PublicKey),
	}, nil
}

// PublicKey returns the service's verification key in PKIX DER form —
// the analogue of the Intel-provided report-signing certificate that
// every NEXUS client embeds.
func (s *AttestationService) PublicKey() []byte {
	der, err := x509.MarshalPKIXPublicKey(&s.signer.PublicKey)
	if err != nil {
		// Marshalling our own P-256 key cannot fail.
		panic(fmt.Sprintf("sgx: marshalling IAS key: %v", err))
	}
	return der
}

func (s *AttestationService) provision(id [16]byte, pub *ecdsa.PublicKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.platforms[id] = pub
}

// Revoke removes a platform from the genuine set (modelling TCB
// revocation); subsequent quotes from it fail verification.
func (s *AttestationService) Revoke(id [16]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.platforms, id)
}

// VerificationReport is the IAS's counter-signed statement that a quote
// was produced by a genuine platform.
type VerificationReport struct {
	// Quote is the verified quote body (signature removed: the report's
	// own signature now vouches for it).
	Quote Quote
	// Signature is the service's ECDSA signature over the quote body.
	Signature []byte
}

// VerifyQuote checks a quote against the provisioned platforms and, on
// success, returns a report signed by the service key.
func (s *AttestationService) VerifyQuote(q *Quote) (*VerificationReport, error) {
	if q == nil {
		return nil, fmt.Errorf("%w: nil quote", ErrQuoteInvalid)
	}
	s.mu.RLock()
	pub, ok := s.platforms[q.PlatformID]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: platform %x", ErrUnknownPlatform, q.PlatformID[:4])
	}
	digest := sha256.Sum256(q.body())
	if !ecdsa.VerifyASN1(pub, digest[:], q.Signature) {
		return nil, fmt.Errorf("%w: bad platform signature", ErrQuoteInvalid)
	}
	report := &VerificationReport{Quote: *q}
	report.Quote.Signature = nil
	sig, err := ecdsa.SignASN1(rand.Reader, s.signer, digest[:])
	if err != nil {
		return nil, fmt.Errorf("sgx: signing verification report: %w", err)
	}
	report.Signature = sig
	return report, nil
}

// VerifyReport checks a verification report against the service public
// key (PKIX DER, as returned by PublicKey). Relying parties use this to
// validate attestations offline, without contacting the service.
func VerifyReport(servicePublicKey []byte, r *VerificationReport) error {
	if r == nil {
		return fmt.Errorf("%w: nil report", ErrQuoteInvalid)
	}
	keyAny, err := x509.ParsePKIXPublicKey(servicePublicKey)
	if err != nil {
		return fmt.Errorf("sgx: parsing service key: %w", err)
	}
	pub, ok := keyAny.(*ecdsa.PublicKey)
	if !ok {
		return fmt.Errorf("sgx: service key is %T, want *ecdsa.PublicKey", keyAny)
	}
	digest := sha256.Sum256(r.Quote.body())
	if !ecdsa.VerifyASN1(pub, digest[:], r.Signature) {
		return fmt.Errorf("%w: bad service signature", ErrQuoteInvalid)
	}
	return nil
}
