// Package sgx is a functional simulation of the Intel SGX primitives that
// NEXUS depends on: isolated enclave execution, sealed storage, and
// remote attestation (DSN'19 §II-A).
//
// # What is simulated, and how faithfully
//
// Real SGX enforces isolation with CPU hardware: enclave pages live in the
// Enclave Page Cache (EPC), are encrypted on the memory bus, and are
// reachable only through the EENTER/EEXIT transition instructions. This
// package reproduces the *interfaces and key-management semantics* of
// those mechanisms in pure Go:
//
//   - A Platform models one SGX-capable CPU. It owns a fused root secret
//     (never exported) from which per-enclave sealing keys are derived,
//     and an attestation keypair provisioned with the simulated
//     AttestationService (standing in for Intel's EPID/IAS
//     infrastructure).
//   - An Enclave is created from an Image; its Measurement is a SHA-256
//     over the image, mirroring MRENCLAVE. Enclave-private state belongs
//     to the trusted code that owns the Enclave handle; the package
//     enforces the trust boundary by construction of the API (secrets
//     only ever leave in sealed or wrapped form) rather than by hardware.
//   - Seal/Unseal bind data to (platform, measurement) exactly like the
//     MRENCLAVE sealing policy: a sealed blob opens only inside the same
//     enclave identity on the same CPU.
//   - Quotes bind 64 bytes of report data to an enclave identity and are
//     signed with the platform attestation key; the AttestationService
//     verifies them and issues counter-signed reports, as IAS does.
//   - EPC usage is metered against a configurable limit (the paper's
//     hardware exposed ~96 MiB), and every ecall/ocall crossing is
//     counted and can be charged a configurable latency so benchmarks
//     reproduce the transition-cost structure of real enclaves.
//
// What is *not* reproduced is resistance to a malicious local OS — that
// requires hardware. The NEXUS threat model (DSN'19 §III-A) places the
// attacker on the server, not the client machine, so this boundary is the
// one that matters for reproducing the paper's experiments.
package sgx

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"
)

// MeasurementSize is the size of an enclave measurement (MRENCLAVE).
const MeasurementSize = 32

// Measurement identifies enclave code, mirroring SGX's MRENCLAVE: the
// SHA-256 digest of the enclave image as it is loaded.
type Measurement [MeasurementSize]byte

// String returns a short hex prefix for logging.
func (m Measurement) String() string { return fmt.Sprintf("%x", m[:8]) }

// Image describes the code identity of an enclave to be loaded. In real
// SGX the measurement covers every page copied into the EPC; here the
// image carries a name, security version, and representative code bytes.
type Image struct {
	// Name is the human-readable enclave identity (e.g. "nexus-enclave").
	Name string
	// Version is the security version number (ISVSVN).
	Version uint16
	// Code stands in for the enclave's text/data pages; it is hashed into
	// the measurement so "different binaries" measure differently.
	Code []byte
}

// Measure computes the image's measurement.
func (img Image) Measure() Measurement {
	h := sha256.New()
	h.Write([]byte("sgx-image-v1\x00"))
	h.Write([]byte(img.Name))
	h.Write([]byte{0})
	var v [2]byte
	binary.LittleEndian.PutUint16(v[:], img.Version)
	h.Write(v[:])
	h.Write(img.Code)
	var m Measurement
	copy(m[:], h.Sum(nil))
	return m
}

// Errors returned by the package.
var (
	// ErrSealTampered reports that a sealed blob failed authentication:
	// wrong platform, wrong enclave identity, or modified ciphertext.
	ErrSealTampered = errors.New("sgx: sealed blob failed authentication")
	// ErrEPCExhausted reports that an EPC allocation exceeded the
	// platform's enclave page cache budget.
	ErrEPCExhausted = errors.New("sgx: enclave page cache exhausted")
	// ErrEnclaveDestroyed reports use of an enclave after Destroy.
	ErrEnclaveDestroyed = errors.New("sgx: enclave destroyed")
	// ErrQuoteInvalid reports a quote that failed verification.
	ErrQuoteInvalid = errors.New("sgx: quote verification failed")
	// ErrUnknownPlatform reports a quote from a platform that was never
	// provisioned with the attestation service.
	ErrUnknownPlatform = errors.New("sgx: platform not provisioned")
)

// DefaultEPCSize is the default usable enclave page cache budget,
// matching the ~96 MiB available on the paper's SGXv1 hardware.
const DefaultEPCSize = 96 << 20

// PlatformConfig tunes a simulated platform.
type PlatformConfig struct {
	// EPCSize is the usable EPC budget in bytes; 0 means DefaultEPCSize.
	EPCSize int64
	// TransitionCost is the simulated latency charged to every ecall and
	// ocall crossing (EENTER/EEXIT pairs cost ~8k cycles on real
	// hardware). Zero disables the charge.
	TransitionCost time.Duration
}

// Platform models a single SGX-capable CPU package. Enclaves created on
// the same Platform share its fused sealing root and its EPC budget.
type Platform struct {
	id      [16]byte
	fuseKey [32]byte // hardware root secret; never leaves the struct
	attest  *ecdsa.PrivateKey
	config  PlatformConfig

	mu      sync.Mutex
	epcUsed int64 // guarded by mu
}

// NewPlatform manufactures a platform and provisions its attestation key
// with the given attestation service (nil is allowed for platforms that
// will never produce quotes).
func NewPlatform(cfg PlatformConfig, ias *AttestationService) (*Platform, error) {
	seed := make([]byte, 32)
	if _, err := rand.Read(seed); err != nil {
		return nil, fmt.Errorf("sgx: generating platform seed: %w", err)
	}
	return NewPlatformFromSeed(seed, cfg, ias)
}

// NewPlatformFromSeed manufactures a platform whose fused secrets derive
// deterministically from seed. A real CPU's fuse key persists in
// silicon across reboots; persisting the seed (e.g. in a machine-local
// file, as cmd/nexus does) gives the simulation the same property, so
// sealed blobs remain openable across process restarts.
func NewPlatformFromSeed(seed []byte, cfg PlatformConfig, ias *AttestationService) (*Platform, error) {
	if len(seed) < 16 {
		return nil, fmt.Errorf("sgx: platform seed must be at least 16 bytes, got %d", len(seed))
	}
	if cfg.EPCSize == 0 {
		cfg.EPCSize = DefaultEPCSize
	}
	if cfg.EPCSize < 0 {
		return nil, fmt.Errorf("sgx: invalid EPC size %d", cfg.EPCSize)
	}
	p := &Platform{config: cfg}
	derive := func(label string, out []byte) {
		mac := hmac.New(sha256.New, seed)
		mac.Write([]byte(label))
		copy(out, mac.Sum(nil))
	}
	derive("platform-id", p.id[:])
	derive("fuse-key", p.fuseKey[:])

	key, err := ecdsa.GenerateKey(elliptic.P256(), newDetReader(seed, "attestation-key"))
	if err != nil {
		return nil, fmt.Errorf("sgx: deriving attestation key: %w", err)
	}
	p.attest = key
	if ias != nil {
		ias.provision(p.id, &key.PublicKey)
	}
	return p, nil
}

// detReader is a deterministic byte stream (HMAC-SHA256 counter mode)
// used to derive the platform attestation key from the seed.
type detReader struct {
	seed    []byte
	label   string
	counter uint64
	buf     []byte
}

func newDetReader(seed []byte, label string) *detReader {
	return &detReader{seed: seed, label: label}
}

func (r *detReader) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(r.buf) == 0 {
			mac := hmac.New(sha256.New, r.seed)
			mac.Write([]byte(r.label))
			var ctr [8]byte
			binary.LittleEndian.PutUint64(ctr[:], r.counter)
			r.counter++
			mac.Write(ctr[:])
			r.buf = mac.Sum(nil)
		}
		c := copy(p[n:], r.buf)
		r.buf = r.buf[c:]
		n += c
	}
	return n, nil
}

// ID returns the platform's identifier (analogous to the EPID group /
// PPID; it is public).
func (p *Platform) ID() [16]byte { return p.id }

// EPCInUse returns the current EPC allocation across all enclaves.
func (p *Platform) EPCInUse() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epcUsed
}

// sealingKey derives the MRENCLAVE-policy sealing key for measurement m:
// HMAC(fuse, label ‖ m). Distinct labels yield independent keys.
func (p *Platform) sealingKey(m Measurement) [32]byte {
	mac := hmac.New(sha256.New, p.fuseKey[:])
	mac.Write([]byte("seal-key-mrenclave\x00"))
	mac.Write(m[:])
	var k [32]byte
	copy(k[:], mac.Sum(nil))
	return k
}

func (p *Platform) allocEPC(n int64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.epcUsed+n > p.config.EPCSize {
		return fmt.Errorf("%w: in use %d + requested %d > budget %d",
			ErrEPCExhausted, p.epcUsed, n, p.config.EPCSize)
	}
	p.epcUsed += n
	return nil
}

func (p *Platform) freeEPC(n int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.epcUsed -= n
	if p.epcUsed < 0 {
		p.epcUsed = 0
	}
}
