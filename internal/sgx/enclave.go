package sgx

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nexus/internal/obs"
)

// Enclave is a loaded enclave instance: a code identity (measurement)
// bound to a platform, with metered EPC usage and transition accounting.
//
// Trusted code owns the *Enclave handle and keeps its secrets in its own
// state; the handle supplies the SGX services (sealing, quoting, EPC,
// transitions). Everything a real enclave would persist crosses this API
// in sealed or wrapped form only.
type Enclave struct {
	platform    *Platform
	measurement Measurement
	image       Image

	baseEPC int64 // EPC consumed by the loaded image itself

	destroyed atomic.Bool

	mu      sync.Mutex
	heapEPC int64 // dynamic allocations charged via AllocEPC; guarded by mu

	metrics transitionMetrics
}

// transitionMetrics holds the enclave's handles into the obs registry.
// The counters back the benchmark breakdowns ("Enclave Runtime" in
// Tables 5a/5b of the paper); the legacy EcallCount/OcallCount/
// TimeInEnclave accessors are shims over them. See DESIGN.md §11 for
// the metric name taxonomy.
type transitionMetrics struct {
	ecalls *obs.Counter // sgx_ecalls_total
	ocalls *obs.Counter // sgx_ocalls_total
	// timeInEnclaveNs accumulates wall time spent inside ecall bodies,
	// including the simulated transition cost, in nanoseconds. Ocall
	// subtracts the time spent outside, so within an ecall window the
	// value can transiently dip; it is net-increasing per operation.
	timeInEnclaveNs *obs.Counter // sgx_time_in_enclave_ns_total
	ecallLat        *obs.Histogram
	ocallLat        *obs.Histogram
	tracer          *obs.Tracer
}

func (m *transitionMetrics) bind(reg *obs.Registry) {
	m.ecalls = reg.Counter("sgx_ecalls_total")
	m.ocalls = reg.Counter("sgx_ocalls_total")
	m.timeInEnclaveNs = reg.Counter("sgx_time_in_enclave_ns_total")
	m.ecallLat = reg.Histogram("sgx_ecall_seconds")
	m.ocallLat = reg.Histogram("sgx_ocall_seconds")
	m.tracer = reg.Tracer()
}

// SetObs rebinds the enclave's transition accounting onto reg so the
// whole client stack meters into one registry. Call it before the
// enclave starts serving; rebinding mid-flight loses in-window counts.
func (e *Enclave) SetObs(reg *obs.Registry) { e.metrics.bind(reg) }

// CreateEnclave loads an image onto the platform, charging its size
// against the EPC budget.
func (p *Platform) CreateEnclave(img Image) (*Enclave, error) {
	base := int64(len(img.Code))
	if base == 0 {
		base = 1 // even an empty image occupies a page-table entry
	}
	if err := p.allocEPC(base); err != nil {
		return nil, fmt.Errorf("sgx: loading enclave %q: %w", img.Name, err)
	}
	e := &Enclave{
		platform:    p,
		measurement: img.Measure(),
		image:       img,
		baseEPC:     base,
	}
	// Every enclave meters from birth; SetObs swaps in a shared
	// registry when the caller wants one scrape across the stack.
	e.metrics.bind(obs.NewRegistry())
	return e, nil
}

// Measurement returns the enclave's MRENCLAVE value.
func (e *Enclave) Measurement() Measurement { return e.measurement }

// Platform returns the platform the enclave runs on.
func (e *Enclave) Platform() *Platform { return e.platform }

// EcallCount and OcallCount report transition totals.
func (e *Enclave) EcallCount() int64 { return e.metrics.ecalls.Value() }

// OcallCount reports the number of ocall transitions.
func (e *Enclave) OcallCount() int64 { return e.metrics.ocalls.Value() }

// TimeInEnclave reports accumulated wall time spent inside ecalls.
func (e *Enclave) TimeInEnclave() time.Duration {
	return time.Duration(e.metrics.timeInEnclaveNs.Value())
}

// ResetStats zeroes the transition counters and timers (used between
// benchmark phases).
func (e *Enclave) ResetStats() {
	e.metrics.ecalls.Reset()
	e.metrics.ocalls.Reset()
	e.metrics.timeInEnclaveNs.Reset()
	e.metrics.ecallLat.Reset()
	e.metrics.ocallLat.Reset()
}

// Destroy tears the enclave down, releasing its EPC. Real hardware zeroes
// EPC pages on teardown; secrets held by the trusted owner become
// unreachable along with the handle.
func (e *Enclave) Destroy() {
	if e.destroyed.Swap(true) {
		return
	}
	e.mu.Lock()
	heap := e.heapEPC
	e.heapEPC = 0
	e.mu.Unlock()
	e.platform.freeEPC(e.baseEPC + heap)
}

func (e *Enclave) checkAlive() error {
	if e.destroyed.Load() {
		return ErrEnclaveDestroyed
	}
	return nil
}

// Ecall executes fn as an enclave entry: it charges the transition cost,
// counts the crossing, and accounts the time spent inside. All public
// entry points of trusted code should route through Ecall so benchmark
// breakdowns reflect enclave residency.
func (e *Enclave) Ecall(fn func() error) error {
	if err := e.checkAlive(); err != nil {
		return err
	}
	span := e.metrics.tracer.Begin("sgx.ecall")
	start := time.Now()
	e.metrics.ecalls.Inc()
	if c := e.platform.config.TransitionCost; c > 0 {
		spin(c)
	}
	err := fn()
	elapsed := time.Since(start)
	e.metrics.timeInEnclaveNs.Add(int64(elapsed))
	e.metrics.ecallLat.Record(elapsed)
	span.End()
	return err
}

// Ocall executes fn as an exit to untrusted code (e.g. fetching a
// metadata object from the backing store). The transition cost is
// charged, but the time spent outside is *not* attributed to the enclave.
func (e *Enclave) Ocall(fn func() error) error {
	if err := e.checkAlive(); err != nil {
		return err
	}
	span := e.metrics.tracer.Begin("sgx.ocall")
	e.metrics.ocalls.Inc()
	if c := e.platform.config.TransitionCost; c > 0 {
		spin(c)
	}
	outside := time.Now()
	err := fn()
	elapsed := time.Since(outside)
	// Subtract the time spent outside from enclave residency: Ocall is
	// always invoked from within an Ecall body, whose timer is running.
	e.metrics.timeInEnclaveNs.Add(-int64(elapsed))
	e.metrics.ocallLat.Record(elapsed)
	span.End()
	return err
}

// spin busy-waits for roughly d, standing in for the fixed cost of an
// EENTER/EEXIT pair. Sleeping would over-charge at microsecond scales.
func spin(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) { //nolint:revive // intentional busy-wait
	}
}

// AllocEPC charges n bytes of enclave heap against the platform's EPC
// budget (the enclave-side metadata cache uses this so cache growth is
// subject to the same ~96 MiB limit as the paper's hardware).
func (e *Enclave) AllocEPC(n int64) error {
	if err := e.checkAlive(); err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("sgx: negative EPC allocation %d", n)
	}
	if err := e.platform.allocEPC(n); err != nil {
		return err
	}
	e.mu.Lock()
	e.heapEPC += n
	e.mu.Unlock()
	return nil
}

// FreeEPC returns n bytes of enclave heap to the platform budget.
func (e *Enclave) FreeEPC(n int64) {
	if n <= 0 || e.destroyed.Load() {
		return
	}
	e.mu.Lock()
	if n > e.heapEPC {
		n = e.heapEPC
	}
	e.heapEPC -= n
	e.mu.Unlock()
	e.platform.freeEPC(n)
}

// HeapEPC returns the enclave's current dynamic EPC usage.
func (e *Enclave) HeapEPC() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.heapEPC
}

// sealVersion tags the sealed-blob format.
const sealVersion = 1

// Seal encrypts data so that it can only be recovered by an enclave with
// the same measurement on the same platform (the MRENCLAVE sealing
// policy). aad is authenticated but not encrypted and must be presented
// again at Unseal.
//
// Format: version(1) ‖ nonce(12) ‖ AES-256-GCM(ciphertext‖tag).
func (e *Enclave) Seal(data, aad []byte) ([]byte, error) {
	if err := e.checkAlive(); err != nil {
		return nil, err
	}
	key := e.platform.sealingKey(e.measurement)
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("sgx: sealing cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sgx: sealing GCM: %w", err)
	}
	out := make([]byte, 1+gcm.NonceSize(), 1+gcm.NonceSize()+len(data)+gcm.Overhead())
	out[0] = sealVersion
	if _, err := rand.Read(out[1 : 1+gcm.NonceSize()]); err != nil {
		return nil, fmt.Errorf("sgx: sealing nonce: %w", err)
	}
	return gcm.Seal(out, out[1:1+gcm.NonceSize()], data, aad), nil
}

// Unseal reverses Seal. It fails with ErrSealTampered if the blob was
// sealed by a different enclave identity, on a different platform, or has
// been modified.
func (e *Enclave) Unseal(blob, aad []byte) ([]byte, error) {
	if err := e.checkAlive(); err != nil {
		return nil, err
	}
	key := e.platform.sealingKey(e.measurement)
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("sgx: unsealing cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sgx: unsealing GCM: %w", err)
	}
	if len(blob) < 1+gcm.NonceSize()+gcm.Overhead() {
		return nil, fmt.Errorf("%w: blob too short (%d bytes)", ErrSealTampered, len(blob))
	}
	if blob[0] != sealVersion {
		return nil, fmt.Errorf("%w: unknown seal version %d", ErrSealTampered, blob[0])
	}
	nonce := blob[1 : 1+gcm.NonceSize()]
	pt, err := gcm.Open(nil, nonce, blob[1+gcm.NonceSize():], aad)
	if err != nil {
		return nil, ErrSealTampered
	}
	return pt, nil
}
