package sgx

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func newTestPlatform(t *testing.T, ias *AttestationService) *Platform {
	t.Helper()
	p, err := NewPlatform(PlatformConfig{}, ias)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	return p
}

func testImage(name string) Image {
	return Image{Name: name, Version: 1, Code: []byte("enclave code for " + name)}
}

func TestMeasurementDeterministicAndDistinct(t *testing.T) {
	a := testImage("nexus").Measure()
	b := testImage("nexus").Measure()
	if a != b {
		t.Fatal("same image measured differently")
	}
	if testImage("other").Measure() == a {
		t.Fatal("different images share a measurement")
	}
	v2 := Image{Name: "nexus", Version: 2, Code: []byte("enclave code for nexus")}
	if v2.Measure() == a {
		t.Fatal("version bump did not change measurement")
	}
	tampered := Image{Name: "nexus", Version: 1, Code: []byte("ENCLAVE code for nexus")}
	if tampered.Measure() == a {
		t.Fatal("code change did not change measurement")
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	p := newTestPlatform(t, nil)
	e, err := p.CreateEnclave(testImage("nexus"))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Destroy()

	secret := []byte("volume rootkey 0123456789abcdef")
	aad := []byte("volume-id")
	blob, err := e.Seal(secret, aad)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if bytes.Contains(blob, secret) {
		t.Fatal("sealed blob contains plaintext secret")
	}
	got, err := e.Unseal(blob, aad)
	if err != nil {
		t.Fatalf("Unseal: %v", err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("unsealed data differs")
	}
}

func TestSealBindsToPlatform(t *testing.T) {
	p1 := newTestPlatform(t, nil)
	p2 := newTestPlatform(t, nil)
	img := testImage("nexus")
	e1, err := p1.CreateEnclave(img)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := p2.CreateEnclave(img)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := e1.Seal([]byte("secret"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Unseal(blob, nil); !errors.Is(err, ErrSealTampered) {
		t.Fatalf("cross-platform unseal error = %v, want ErrSealTampered", err)
	}
}

func TestSealBindsToMeasurement(t *testing.T) {
	p := newTestPlatform(t, nil)
	e1, err := p.CreateEnclave(testImage("nexus"))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := p.CreateEnclave(testImage("malicious"))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := e1.Seal([]byte("secret"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Unseal(blob, nil); !errors.Is(err, ErrSealTampered) {
		t.Fatalf("cross-enclave unseal error = %v, want ErrSealTampered", err)
	}
}

func TestSealDetectsTamperAndAADMismatch(t *testing.T) {
	p := newTestPlatform(t, nil)
	e, err := p.CreateEnclave(testImage("nexus"))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := e.Seal([]byte("secret"), []byte("aad"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range blob {
		mut := bytes.Clone(blob)
		mut[i] ^= 1
		if _, err := e.Unseal(mut, []byte("aad")); !errors.Is(err, ErrSealTampered) {
			t.Fatalf("tamper at byte %d undetected: %v", i, err)
		}
	}
	if _, err := e.Unseal(blob, []byte("other")); !errors.Is(err, ErrSealTampered) {
		t.Fatalf("AAD mismatch undetected: %v", err)
	}
	if _, err := e.Unseal(blob[:4], []byte("aad")); !errors.Is(err, ErrSealTampered) {
		t.Fatalf("short blob undetected: %v", err)
	}
}

func TestEPCAccounting(t *testing.T) {
	p, err := NewPlatform(PlatformConfig{EPCSize: 1 << 20}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.CreateEnclave(testImage("nexus"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AllocEPC(512 << 10); err != nil {
		t.Fatalf("AllocEPC within budget: %v", err)
	}
	if err := e.AllocEPC(1 << 20); !errors.Is(err, ErrEPCExhausted) {
		t.Fatalf("over-budget alloc error = %v, want ErrEPCExhausted", err)
	}
	e.FreeEPC(512 << 10)
	if got := e.HeapEPC(); got != 0 {
		t.Fatalf("HeapEPC after free = %d, want 0", got)
	}
	// Destroy releases everything back to the platform.
	if err := e.AllocEPC(256 << 10); err != nil {
		t.Fatal(err)
	}
	before := p.EPCInUse()
	e.Destroy()
	if after := p.EPCInUse(); after >= before {
		t.Fatalf("Destroy did not release EPC: before=%d after=%d", before, after)
	}
}

func TestDestroyedEnclaveRejectsUse(t *testing.T) {
	p := newTestPlatform(t, nil)
	e, err := p.CreateEnclave(testImage("nexus"))
	if err != nil {
		t.Fatal(err)
	}
	e.Destroy()
	e.Destroy() // idempotent
	if _, err := e.Seal([]byte("x"), nil); !errors.Is(err, ErrEnclaveDestroyed) {
		t.Fatalf("Seal after destroy = %v", err)
	}
	if err := e.Ecall(func() error { return nil }); !errors.Is(err, ErrEnclaveDestroyed) {
		t.Fatalf("Ecall after destroy = %v", err)
	}
	if _, err := e.Quote(nil); !errors.Is(err, ErrEnclaveDestroyed) {
		t.Fatalf("Quote after destroy = %v", err)
	}
}

func TestTransitionAccounting(t *testing.T) {
	p := newTestPlatform(t, nil)
	e, err := p.CreateEnclave(testImage("nexus"))
	if err != nil {
		t.Fatal(err)
	}
	inner := errors.New("inner")
	if err := e.Ecall(func() error {
		return e.Ocall(func() error { return inner })
	}); !errors.Is(err, inner) {
		t.Fatalf("Ecall propagated %v", err)
	}
	if e.EcallCount() != 1 || e.OcallCount() != 1 {
		t.Fatalf("counts = %d ecalls, %d ocalls; want 1, 1", e.EcallCount(), e.OcallCount())
	}
	e.ResetStats()
	if e.EcallCount() != 0 || e.TimeInEnclave() != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestOcallTimeNotChargedToEnclave(t *testing.T) {
	p := newTestPlatform(t, nil)
	e, err := p.CreateEnclave(testImage("nexus"))
	if err != nil {
		t.Fatal(err)
	}
	const outside = 20 * time.Millisecond
	err = e.Ecall(func() error {
		return e.Ocall(func() error {
			time.Sleep(outside)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if in := e.TimeInEnclave(); in > outside/2 {
		t.Fatalf("enclave residency %v includes ocall time (slept %v)", in, outside)
	}
}

func TestTransitionCostCharged(t *testing.T) {
	ias, err := NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlatform(PlatformConfig{TransitionCost: 200 * time.Microsecond}, ias)
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.CreateEnclave(testImage("nexus"))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	const n = 20
	for i := 0; i < n; i++ {
		if err := e.Ecall(func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < n*200*time.Microsecond {
		t.Fatalf("20 ecalls at 200µs each took only %v", elapsed)
	}
}

func TestQuoteVerification(t *testing.T) {
	ias, err := NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	p := newTestPlatform(t, ias)
	e, err := p.CreateEnclave(testImage("nexus"))
	if err != nil {
		t.Fatal(err)
	}
	reportData := bytes.Repeat([]byte{0xaa}, 33) // an ECDH public key, say
	q, err := e.Quote(reportData)
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	report, err := ias.VerifyQuote(q)
	if err != nil {
		t.Fatalf("VerifyQuote: %v", err)
	}
	if err := VerifyReport(ias.PublicKey(), report); err != nil {
		t.Fatalf("VerifyReport: %v", err)
	}
	if !bytes.Equal(report.Quote.ReportData[:len(reportData)], reportData) {
		t.Fatal("report data not carried through")
	}
	if report.Quote.Measurement != e.Measurement() {
		t.Fatal("measurement not carried through")
	}
}

func TestQuoteTamperRejected(t *testing.T) {
	ias, err := NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	p := newTestPlatform(t, ias)
	e, err := p.CreateEnclave(testImage("nexus"))
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Quote([]byte("report"))
	if err != nil {
		t.Fatal(err)
	}

	// Tampered report data.
	mut := *q
	mut.ReportData[0] ^= 1
	if _, err := ias.VerifyQuote(&mut); !errors.Is(err, ErrQuoteInvalid) {
		t.Fatalf("tampered report data accepted: %v", err)
	}
	// Tampered measurement (pretending to be a different enclave).
	mut2 := *q
	mut2.Measurement[0] ^= 1
	if _, err := ias.VerifyQuote(&mut2); !errors.Is(err, ErrQuoteInvalid) {
		t.Fatalf("tampered measurement accepted: %v", err)
	}
	// Quote from an unprovisioned platform.
	rogue, err := NewPlatform(PlatformConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	re, err := rogue.CreateEnclave(testImage("nexus"))
	if err != nil {
		t.Fatal(err)
	}
	rq, err := re.Quote([]byte("report"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ias.VerifyQuote(rq); !errors.Is(err, ErrUnknownPlatform) {
		t.Fatalf("rogue platform quote error = %v, want ErrUnknownPlatform", err)
	}
}

func TestPlatformRevocation(t *testing.T) {
	ias, err := NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	p := newTestPlatform(t, ias)
	e, err := p.CreateEnclave(testImage("nexus"))
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Quote(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ias.VerifyQuote(q); err != nil {
		t.Fatalf("pre-revocation verify: %v", err)
	}
	ias.Revoke(p.ID())
	if _, err := ias.VerifyQuote(q); !errors.Is(err, ErrUnknownPlatform) {
		t.Fatalf("post-revocation verify = %v, want ErrUnknownPlatform", err)
	}
}

func TestReportSignatureBindsService(t *testing.T) {
	ias1, err := NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	ias2, err := NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	p := newTestPlatform(t, ias1)
	e, err := p.CreateEnclave(testImage("nexus"))
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Quote(nil)
	if err != nil {
		t.Fatal(err)
	}
	report, err := ias1.VerifyQuote(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyReport(ias2.PublicKey(), report); err == nil {
		t.Fatal("report verified against the wrong service key")
	}
}

func TestQuoteReportDataTooLong(t *testing.T) {
	p := newTestPlatform(t, nil)
	e, err := p.CreateEnclave(testImage("nexus"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Quote(make([]byte, ReportDataSize+1)); err == nil {
		t.Fatal("oversized report data accepted")
	}
}
