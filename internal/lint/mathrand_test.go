package lint

import "testing"

func TestMathRand(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  []string // file:line per finding, in order
	}{
		{
			name: "crypto-bearing package flagged",
			files: map[string]string{
				"internal/gcmsiv/x.go": `package gcmsiv
import "math/rand"
var _ = rand.Int
`,
			},
			want: []string{"x.go:2"},
		},
		{
			name: "math rand v2 flagged",
			files: map[string]string{
				"pkg/x.go": `package pkg
import "math/rand/v2"
var _ = rand.Int
`,
			},
			want: []string{"x.go:2"},
		},
		{
			name: "test file exempt",
			files: map[string]string{
				"internal/enclave/x.go": `package enclave
func F() {}
`,
				"internal/enclave/x_test.go": `package enclave
import "math/rand"
var _ = rand.Int
`,
			},
			want: nil,
		},
		{
			name: "workload package exempt",
			files: map[string]string{
				"internal/workload/x.go": `package workload
import "math/rand"
var _ = rand.Int
`,
			},
			want: nil,
		},
		{
			name: "bench package exempt",
			files: map[string]string{
				"internal/bench/x.go": `package bench
import "math/rand"
var _ = rand.Int
`,
			},
			want: nil,
		},
		{
			name: "crypto rand clean",
			files: map[string]string{
				"internal/metadata/x.go": `package metadata
import "crypto/rand"
func F(b []byte) { _, err := rand.Read(b); _ = err }
`,
			},
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expect(t, analyzeFixture(t, tc.files), RuleMathRand, tc.want...)
		})
	}
}
