package lint

// Baseline support (DESIGN.md §8.3): a committed lint/baseline.json
// records legacy findings so CI can gate on *new* violations while
// the suppressed backlog stays visible and auditable. Matching is by
// (file, rule, message) with an occurrence count — deliberately not
// by line number, so unrelated edits shifting a file do not fault the
// gate, while any new finding of the same shape in the same file
// beyond the recorded count does.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BaselineEntry is one accepted legacy finding shape.
type BaselineEntry struct {
	File  string `json:"file"`
	Rule  string `json:"rule"`
	Msg   string `json:"msg"`
	Count int    `json:"count"`
}

// Baseline is the committed acceptance list.
type Baseline struct {
	Schema  int             `json:"schema"`
	Entries []BaselineEntry `json:"entries"`
}

// NewBaseline captures every finding of res as the accepted backlog.
func NewBaseline(root string, res *Result) *Baseline {
	counts := make(map[BaselineEntry]int)
	for _, f := range res.Findings {
		jf := jsonFinding(root, f)
		key := BaselineEntry{File: jf.File, Rule: jf.Rule, Msg: jf.Msg}
		counts[key]++
	}
	bl := &Baseline{Schema: ReportSchema, Entries: []BaselineEntry{}}
	for key, n := range counts {
		key.Count = n
		bl.Entries = append(bl.Entries, key)
	}
	sort.Slice(bl.Entries, func(i, j int) bool {
		a, b := bl.Entries[i], bl.Entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return bl
}

// WriteFile writes the baseline, replacing any existing file.
func (b *Baseline) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("lint: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		_ = f.Close()
		return fmt.Errorf("lint: encoding %s: %w", path, err)
	}
	return f.Close()
}

// LoadBaseline reads a baseline and validates its schema version.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var bl Baseline
	if err := json.Unmarshal(data, &bl); err != nil {
		return nil, fmt.Errorf("lint: decoding %s: %w", path, err)
	}
	if bl.Schema != ReportSchema {
		return nil, fmt.Errorf("lint: baseline %s has schema %d, tool expects %d", path, bl.Schema, ReportSchema)
	}
	return &bl, nil
}

// Apply splits res into surviving (new) findings and the count of
// baselined ones. stale lists entries the baseline still carries but
// the analysis no longer produces — candidates for `make
// lint-baseline`.
func (b *Baseline) Apply(root string, res *Result) (newRes *Result, baselined int, stale []BaselineEntry) {
	budget := make(map[BaselineEntry]int, len(b.Entries))
	for _, e := range b.Entries {
		key := e
		key.Count = 0
		budget[key] += e.Count
	}
	newRes = &Result{Suppressed: res.Suppressed}
	for _, f := range res.Findings {
		jf := jsonFinding(root, f)
		key := BaselineEntry{File: jf.File, Rule: jf.Rule, Msg: jf.Msg}
		if budget[key] > 0 {
			budget[key]--
			baselined++
			continue
		}
		newRes.Findings = append(newRes.Findings, f)
	}
	for key, left := range budget {
		if left > 0 {
			key.Count = left
			stale = append(stale, key)
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		if stale[i].File != stale[j].File {
			return stale[i].File < stale[j].File
		}
		return stale[i].Msg < stale[j].Msg
	})
	return newRes, baselined, stale
}
