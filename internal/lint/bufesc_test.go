package lint

import "testing"

// arenaFixture is a minimal stand-in for internal/parallel: the rule
// matches by package-path suffix and receiver type name, so fixtures
// carry their own copy.
const arenaFixture = `package parallel

type Buf struct {
	B []byte
}

func (b *Buf) Release() {}

type Arena struct{}

func NewArena() *Arena { return &Arena{} }

var Shared = NewArena()

func (a *Arena) Get(n int) *Buf          { return &Buf{B: make([]byte, n)} }
func (a *Arena) GetSensitive(n int) *Buf { return a.Get(n) }
`

const bufPrelude = `package pkg

import "fixture/internal/parallel"

func upload(name string, data []byte) error { return nil }
`

func TestBufferEscape(t *testing.T) {
	cases := []struct {
		name string
		src  string // appended to bufPrelude; //WANT marks expected findings
	}{
		{
			name: "use after release",
			src: `
func F(data []byte) byte {
	buf := parallel.Shared.Get(len(data))
	copy(buf.B, data)
	buf.Release()
	return buf.B[0] //WANT
}
`,
		},
		{
			name: "deferred release ok",
			src: `
func F(data []byte) error {
	buf := parallel.Shared.Get(len(data))
	defer buf.Release()
	copy(buf.B, data)
	return upload("x", buf.B)
}
`,
		},
		{
			name: "double release flagged",
			src: `
func F() {
	buf := parallel.Shared.Get(64)
	buf.Release()
	buf.Release() //WANT
}
`,
		},
		{
			name: "re-lease into same variable ok",
			src: `
func F() {
	buf := parallel.Shared.Get(64)
	buf.Release()
	buf = parallel.Shared.Get(128)
	defer buf.Release()
	_ = buf.B
}
`,
		},
		{
			name: "escape via return of bytes",
			src: `
func F(n int) []byte {
	buf := parallel.Shared.Get(n)
	defer buf.Release()
	return buf.B //WANT
}
`,
		},
		{
			name: "escape via return of slice alias",
			src: `
func F(n int) []byte {
	buf := parallel.Shared.GetSensitive(n)
	defer buf.Release()
	out := buf.B[:n/2]
	return out //WANT
}
`,
		},
		{
			name: "escape via struct field",
			src: `
type holder struct {
	data []byte
}

func F(h *holder, n int) {
	buf := parallel.Shared.Get(n)
	defer buf.Release()
	h.data = buf.B //WANT
}
`,
		},
		{
			name: "escape via package-level variable",
			src: `
var stash []byte

func F(n int) {
	buf := parallel.Shared.Get(n)
	defer buf.Release()
	stash = buf.B[:8] //WANT
}
`,
		},
		{
			name: "closure returning bytes to encloser ok",
			src: `
func meter(fn func() ([]byte, error)) ([]byte, error) { return fn() }

func F(data []byte) error {
	buf := parallel.Shared.Get(len(data))
	defer buf.Release()
	blob, err := meter(func() ([]byte, error) {
		copy(buf.B, data)
		return buf.B, nil
	})
	if err != nil {
		return err
	}
	return upload("x", blob)
}
`,
		},
		{
			name: "handing bytes to a call ok",
			src: `
func F(data []byte) error {
	buf := parallel.Shared.Get(len(data))
	copy(buf.B, data)
	err := upload("x", buf.B)
	buf.Release()
	return err
}
`,
		},
		{
			name: "local arena lease tracked",
			src: `
func F(n int) []byte {
	a := parallel.NewArena()
	buf := a.GetSensitive(n)
	defer buf.Release()
	return buf.B //WANT
}
`,
		},
		{
			name: "suppression honored",
			src: `
func F(n int) []byte {
	buf := parallel.Shared.Get(n)
	defer buf.Release()
	//lint:ignore buffer-escape ownership transferred to caller by documented contract
	return buf.B
}
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := bufPrelude + tc.src
			res := analyzeFixture(t, map[string]string{
				"internal/parallel/pool.go": arenaFixture,
				"pkg/x.go":                  src,
			})
			expect(t, res, RuleBufferEscape, wantLines(src)...)
		})
	}
}
