package lint

import "testing"

func TestBoundary(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string
		want  []string
	}{
		{
			name: "raw rootkey parameter on ecall surface",
			files: map[string]string{
				"internal/enclave/x.go": `package enclave
func Mount(rootKey []byte) error { _ = rootKey; return nil }
`,
			},
			want: []string{"x.go:2"},
		},
		{
			name: "raw rootkey result on ecall surface",
			files: map[string]string{
				"internal/sgx/x.go": `package sgx
func Export() (rootKey []byte) { return nil }
`,
			},
			want: []string{"x.go:2"},
		},
		{
			name: "exported getter named for key material",
			files: map[string]string{
				"internal/enclave/x.go": `package enclave
type E struct{ k []byte }
func (e *E) RootKey() []byte { return e.k }
`,
			},
			want: []string{"x.go:3"},
		},
		{
			name: "exported struct field and package var",
			files: map[string]string{
				"internal/sgx/x.go": `package sgx
var SealingKey = []byte{1}
type Platform struct {
	FuseKey [32]byte
	fuseKey [32]byte
}
`,
			},
			want: []string{"x.go:2", "x.go:4"},
		},
		{
			name: "named key type in signature",
			files: map[string]string{
				"internal/enclave/x.go": `package enclave
type rootKey []byte
func Expose(k rootKey) {}
`,
			},
			want: []string{"x.go:3"},
		},
		{
			name: "sealed and wrapped forms allowed",
			files: map[string]string{
				"internal/enclave/x.go": `package enclave
func CreateVolume() (sealedRootKey []byte, err error) { return nil, nil }
func Grant(wrappedKey []byte) {}
`,
			},
			want: nil,
		},
		{
			name: "unexported key state allowed inside enclave",
			files: map[string]string{
				"internal/enclave/x.go": `package enclave
type enclave struct{ rootKey []byte }
func mount(rootKey []byte) { _ = enclave{rootKey: rootKey} }
`,
			},
			want: nil,
		},
		{
			name: "outside reference to exported key material",
			files: map[string]string{
				"internal/sgx/x.go": `package sgx
//lint:ignore enclave-boundary fixture needs an exported leak to reference
var SealingKey = []byte{1}
`,
				"internal/vfs/x.go": `package vfs
import "fixture/internal/sgx"
var leak = sgx.SealingKey
`,
			},
			want: []string{"x.go:3"},
		},
		{
			name: "other packages free to name rootkey",
			files: map[string]string{
				"internal/metadata/x.go": `package metadata
func NewRootKey() []byte { return make([]byte, 32) }
func Seal(rootKey, body []byte) []byte { _ = rootKey; return body }
`,
			},
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expect(t, analyzeFixture(t, tc.files), RuleBoundary, tc.want...)
		})
	}
}
