package lint

// Per-package configuration of the interprocedural rules. Everything a
// deployment might legitimately tune lives here — source name
// patterns are in boundary.go (keyMaterialName, shared with the
// enclave-boundary rule), sanitizers/sinks for secret-taint and the
// package/function sets for span-coverage and dirty-before-flush are
// below. The maps are keyed by module-relative package directory; the
// empty key "" applies to every package.

import (
	"go/types"
	"strings"
)

// taintExtraSources adds per-package identifier substrings (lowercase)
// that mark raw key material beyond keyMaterialName's global list.
var taintExtraSources = map[string][]string{
	"internal/enclave": {"volumekey", "filekey"},
	"internal/sgx":     {"volumekey"},
	"internal/gcmsiv":  {"derivedkey"},
}

// taintSanitizerNames: a call to a function whose name contains one of
// these substrings (case-insensitively) produces a *protected* form —
// its result is clean no matter what flowed in. The deny list guards
// against the inverse operations, whose names embed the allow words.
var taintSanitizerDeny = []string{"unseal", "unwrap", "decrypt"}
var taintSanitizerNames = map[string][]string{
	"": {"seal", "wrap", "encrypt"},
}

// isSanitizer reports whether a resolved callee is a configured
// sanitizer for the package it is defined in.
func isSanitizer(m *Module, fn *types.Func) bool {
	name := strings.ToLower(fn.Name())
	for _, deny := range taintSanitizerDeny {
		if strings.Contains(name, deny) {
			return false
		}
	}
	rel := ""
	if fn.Pkg() != nil {
		rel = strings.TrimPrefix(fn.Pkg().Path(), m.Path+"/")
	}
	for _, key := range []string{"", rel} {
		for _, pat := range taintSanitizerNames[key] {
			if strings.Contains(name, pat) {
				return true
			}
		}
	}
	return false
}

// sinkSpec describes one secret-taint sink: which arguments of a call
// must stay clean.
type sinkSpec struct {
	desc string
	// args returns the checked argument indices for a call with n
	// arguments.
	args func(n int) []int
}

func argsFrom(start int) func(int) []int {
	return func(n int) []int {
		var out []int
		for i := start; i < n; i++ {
			out = append(out, i)
		}
		return out
	}
}

func argOnly(i int) func(int) []int {
	return func(n int) []int {
		if i < n {
			return []int{i}
		}
		return nil
	}
}

// fmtSinkNames are the fmt functions whose arguments become
// attacker-visible text (Errorf wraps into error chains the untrusted
// caller may log; Sprint* builds strings that typically land in one).
var fmtSinkNames = map[string]bool{
	"Errorf": true, "Sprintf": true, "Sprint": true, "Sprintln": true,
	"Printf": true, "Print": true, "Println": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
}

// sinkSpecFor resolves a callee to a sink spec, if it is one.
// External sinks: fmt/log/errors. Module sinks: obs span tags (span
// output is exported via the trace printer) and untrusted-store
// uploads (backend.Store.Put / PutVersioned and their afs client
// implementations) — raw key bytes must be sealed before either.
func sinkSpecFor(m *Module, fn *types.Func) (sinkSpec, bool) {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	name := fn.Name()
	switch pkg {
	case "fmt":
		if fmtSinkNames[name] {
			return sinkSpec{desc: "fmt." + name, args: argsFrom(0)}, true
		}
	case "log":
		return sinkSpec{desc: "log." + name, args: argsFrom(0)}, true
	case "errors":
		if name == "New" {
			return sinkSpec{desc: "errors.New", args: argOnly(0)}, true
		}
	}
	rel := strings.TrimPrefix(pkg, m.Path+"/")
	switch {
	case rel == "internal/obs" && (name == "SetTag"):
		return sinkSpec{desc: "obs span tag (Span.SetTag)", args: argOnly(1)}, true
	case (rel == "internal/backend" || rel == "internal/afs" || rel == "internal/vfs") &&
		(name == "Put" || name == "PutVersioned"):
		return sinkSpec{desc: rel + " store upload (" + name + ")", args: argOnly(1)}, true
	}
	return sinkSpec{}, false
}

// --- span-coverage configuration -----------------------------------

// spanCoverageDirs are the packages whose exported operations must be
// visible to the obs layer.
var spanCoverageDirs = map[string]bool{
	"internal/vfs":     true,
	"internal/enclave": true,
	"internal/afs":     true,
}

// isSpanOpen reports whether fn opens an obs span: (*Tracer).Begin or
// (*Tracer).StartSpan in internal/obs.
func isSpanOpen(m *Module, fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	rel := strings.TrimPrefix(fn.Pkg().Path(), m.Path+"/")
	return rel == "internal/obs" && (fn.Name() == "Begin" || fn.Name() == "StartSpan")
}

// isEffectful reports whether fn is an effect the obs layer must not
// lose sight of: untrusted-store access (backend.Store methods and
// their implementations), SGX transitions, or raw network I/O.
func isEffectful(m *Module, fn *types.Func) bool {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if pkg == "net" {
		switch fn.Name() {
		case "Dial", "Listen", "Accept", "Read", "Write":
			return true
		}
	}
	rel := strings.TrimPrefix(pkg, m.Path+"/")
	switch rel {
	case "internal/backend":
		switch fn.Name() {
		case "Get", "Put", "Delete", "List", "Lock":
			return true
		}
	case "internal/sgx":
		switch fn.Name() {
		case "Ecall", "Ocall":
			return true
		}
	}
	return false
}

// --- dirty-before-flush configuration ------------------------------

// dirtyFlushDir is the package the write-back invariant governs.
const dirtyFlushDir = "internal/enclave"

// metadataMutators are the methods of internal/metadata node types
// whose call mutates dirnode/filenode state (field writes are detected
// structurally).
var metadataMutators = map[string]map[string]bool{
	"Dirnode":  {"Insert": true, "Remove": true},
	"Filenode": {"EncryptContent": true, "EncryptContentWorkers": true},
}

// dirtyBarrierName reports whether an internal/enclave function is
// part of the dirty-marking / flush machinery: reaching (or being
// reachable only from) one of these satisfies the invariant.
func dirtyBarrierName(name string) bool {
	l := strings.ToLower(name)
	return strings.HasPrefix(l, "mark") ||
		strings.HasPrefix(l, "stagedelete") ||
		strings.Contains(l, "flush") ||
		strings.Contains(l, "drain")
}

// lockedNameSuffix reports the repo's *Locked naming convention
// ("Unlocked" is the opposite claim and must not match).
func lockedNameSuffix(name string) bool {
	return hasSuffixFold(name, "locked") && !hasSuffixFold(name, "unlocked")
}
