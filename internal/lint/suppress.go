package lint

import (
	"strings"
)

// supKey identifies one (file, line, rule) a directive silences.
type supKey struct {
	file string
	line int
	rule string
}

// collectSuppressions scans a package's comments (including test files)
// for //lint:ignore directives. A directive silences matching findings on
// its own line and on the immediately following line, so both trailing
// and preceding-line placement work:
//
//	x := foo() //lint:ignore RULE reason
//
//	//lint:ignore RULE reason
//	x := foo()
//
// Malformed directives (no rule, unknown rule, or missing reason) are
// reported as findings themselves: a suppression that silently does
// nothing is worse than none.
func collectSuppressions(p *Package) (map[supKey]bool, []Finding) {
	known := make(map[string]bool)
	for _, c := range Checkers() {
		known[c.Rule] = true
	}

	sup := make(map[supKey]bool)
	var bad []Finding
	for _, f := range p.Files {
		for _, group := range f.AST.Comments {
			for _, c := range group.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:  pos,
						Rule: RuleDirective,
						Msg:  "malformed directive: want //lint:ignore RULE reason",
					})
					continue
				}
				rules := strings.Split(fields[0], ",")
				valid := true
				for _, r := range rules {
					if !known[r] {
						bad = append(bad, Finding{
							Pos:  pos,
							Rule: RuleDirective,
							Msg:  "directive names unknown rule " + r,
						})
						valid = false
					}
				}
				if !valid {
					continue
				}
				for _, r := range rules {
					sup[supKey{pos.Filename, pos.Line, r}] = true
					sup[supKey{pos.Filename, pos.Line + 1, r}] = true
				}
			}
		}
	}
	return sup, bad
}

// suppressed reports whether a finding is covered by a directive.
func suppressed(sup map[supKey]bool, f Finding) bool {
	return sup[supKey{f.Pos.Filename, f.Pos.Line, f.Rule}]
}
