package lint

import (
	"go/token"
	"strings"
)

// supKey identifies one (file, line, rule) a directive silences.
type supKey struct {
	file string
	line int
	rule string
}

// directive is one parsed //lint:ignore entry for one rule (a
// comma-separated directive yields one per rule). used is set during
// Analyze when the directive actually silences a finding; directives
// that silence nothing are reported as stale.
type directive struct {
	pos  token.Position
	rule string
	used bool
}

// keys returns the (file, line, rule) slots the directive covers: its
// own line and the immediately following line, so both trailing and
// preceding-line placement work.
func (d *directive) keys() []supKey {
	return []supKey{
		{d.pos.Filename, d.pos.Line, d.rule},
		{d.pos.Filename, d.pos.Line + 1, d.rule},
	}
}

// collectSuppressions scans a package's comments (including test files)
// for //lint:ignore directives:
//
//	x := foo() //lint:ignore RULE reason
//
//	//lint:ignore RULE reason
//	x := foo()
//
// Malformed directives (no rule, unknown rule, or missing reason) are
// reported as findings themselves: a suppression that silently does
// nothing is worse than none.
func collectSuppressions(p *Package) ([]*directive, []Finding) {
	known := make(map[string]bool)
	for _, c := range Checkers() {
		known[c.Rule] = true
	}

	var dirs []*directive
	var bad []Finding
	for _, f := range p.Files {
		for _, group := range f.AST.Comments {
			for _, c := range group.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:  pos,
						Rule: RuleDirective,
						Msg:  "malformed directive: want //lint:ignore RULE reason",
					})
					continue
				}
				rules := strings.Split(fields[0], ",")
				valid := true
				for _, r := range rules {
					if !known[r] {
						bad = append(bad, Finding{
							Pos:  pos,
							Rule: RuleDirective,
							Msg:  "directive names unknown rule " + r,
						})
						valid = false
					}
				}
				if !valid {
					continue
				}
				for _, r := range rules {
					dirs = append(dirs, &directive{pos: pos, rule: r})
				}
			}
		}
	}
	return dirs, bad
}
