// Package lint is nexus-lint: a repo-specific static analyzer that
// machine-checks the NEXUS security invariants the Go compiler cannot see
// (DSN'19 §IV, §VI). It is built exclusively on the standard library's
// go/parser, go/ast, and go/types; the module stays dependency-free.
//
// Rules:
//
//   - no-math-rand: math/rand never feeds key material. Forbidden outside
//     _test.go files and the synthetic-workload packages
//     (internal/workload, internal/bench); the crypto-bearing packages
//     must use crypto/rand exclusively.
//   - enclave-boundary: raw key material (rootkey, sealing keys, wrapping
//     keys) never crosses the ecall surface: no exported identifier or
//     exported signature of internal/enclave or internal/sgx may carry
//     it, and no outside package may reference such an identifier.
//     Sealed/wrapped forms are allowed (that is the point of sealing).
//   - nonce-hygiene: every AEAD Seal/Open nonce is a constant-free,
//     non-package-level value freshly derived from crypto/rand or a
//     counter helper (§VI-A's fresh key+IV per update).
//   - unchecked-crypto-error: the error from rand.Read, AEAD Seal/Open,
//     sealing, or signature verification is never discarded.
//   - lock-discipline: a Lock/RLock on a sync.Mutex/RWMutex has a
//     matching Unlock in the same function (deferred or on a return
//     path, conservatively approximated), and fields annotated
//     "// guarded by mu" are only touched by functions that lock mu (or
//     are *Locked helpers that document holding it).
//   - buffer-escape: a chunk buffer leased from the internal/parallel
//     arena is never used after Release and never escapes its lease via
//     a return, struct field, or package-level variable (DESIGN.md §14).
//
// A finding can be suppressed with a directive on the same or the
// preceding line:
//
//	//lint:ignore RULE reason
//
// Suppressed findings are counted and reported, never silently dropped.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one rule violation.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String formats the finding in the canonical file:line: [RULE] form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Checker is a single named rule.
type Checker struct {
	Rule string
	Doc  string
	// Run reports the rule's findings for one package of the module.
	Run func(m *Module, p *Package) []Finding
}

// Checkers returns every rule, in reporting order. The last four are
// interprocedural: they run once over the module's call graph and
// taint summaries (callgraph.go, taint.go) and hand findings out per
// package.
func Checkers() []Checker {
	return []Checker{
		{Rule: RuleMathRand, Doc: "math/rand forbidden outside tests and workload generators", Run: checkMathRand},
		{Rule: RuleBoundary, Doc: "raw key material must not cross the enclave boundary", Run: checkBoundary},
		{Rule: RuleNonce, Doc: "AEAD nonces must be fresh (crypto/rand or counter helper)", Run: checkNonce},
		{Rule: RuleCryptoErr, Doc: "crypto errors must be checked", Run: checkCryptoErr},
		{Rule: RuleLocks, Doc: "mutex lock/unlock pairing and guarded-by annotations", Run: checkLocks},
		{Rule: RuleBufferEscape, Doc: "pooled arena buffers must not be used after Release or outlive their lease", Run: checkBufferEscape},
		{Rule: RuleTaint, Doc: "key material must not flow (interprocedurally) into logs, errors, span tags or store uploads", Run: checkTaint},
		{Rule: RuleLockedCall, Doc: "*Locked functions only reachable from contexts that hold a lock (call-graph check)", Run: checkLockedCall},
		{Rule: RuleDirtyFlush, Doc: "enclave metadata mutations must reach a markDirty/flush barrier", Run: checkDirtyFlush},
		{Rule: RuleSpan, Doc: "exported vfs/enclave/afs ops doing store/sgx/net work must open an obs span", Run: checkSpanCoverage},
	}
}

// Rule names.
const (
	RuleMathRand  = "no-math-rand"
	RuleBoundary  = "enclave-boundary"
	RuleNonce     = "nonce-hygiene"
	RuleCryptoErr = "unchecked-crypto-error"
	RuleLocks     = "lock-discipline"
	// RuleBufferEscape guards the pooled-buffer ownership rules of
	// DESIGN.md §14: no use after Release, no escape past the lease.
	RuleBufferEscape = "buffer-escape"
	// Interprocedural rules (this file ordering is reporting order).
	RuleTaint      = "secret-taint"
	RuleLockedCall = "locked-callgraph"
	RuleDirtyFlush = "dirty-before-flush"
	RuleSpan       = "span-coverage"
	// RuleDirective reports malformed or stale //lint:ignore directives.
	RuleDirective = "lint-directive"
)

// Result is the outcome of linting a module.
type Result struct {
	// Findings are the surviving (unsuppressed) findings, sorted by
	// position.
	Findings []Finding
	// Suppressed counts findings silenced by //lint:ignore directives.
	Suppressed int
}

// Run loads the module rooted at root and applies every rule.
func Run(root string) (*Result, error) {
	mod, err := LoadModule(root)
	if err != nil {
		return nil, err
	}
	return Analyze(mod), nil
}

// Analyze applies every rule to an already loaded module.
func Analyze(mod *Module) *Result {
	var findings []Finding
	var dirs []*directive
	for _, pkg := range mod.Packages {
		ds, bad := collectSuppressions(pkg)
		dirs = append(dirs, ds...)
		findings = append(findings, bad...)
		for _, c := range Checkers() {
			findings = append(findings, c.Run(mod, pkg)...)
		}
	}

	// Index directives by the (file, line, rule) keys they silence, so
	// suppression marks them used and survivors are audited as stale.
	sup := make(map[supKey][]*directive)
	for _, d := range dirs {
		for _, k := range d.keys() {
			sup[k] = append(sup[k], d)
		}
	}

	res := &Result{}
	for _, f := range findings {
		if f.Rule != RuleDirective {
			if ds := sup[supKey{f.Pos.Filename, f.Pos.Line, f.Rule}]; len(ds) > 0 {
				for _, d := range ds {
					d.used = true
				}
				res.Suppressed++
				continue
			}
		}
		res.Findings = append(res.Findings, f)
	}
	// Staleness audit: a directive that silenced nothing is itself a
	// finding — dead suppressions hide future regressions.
	for _, d := range dirs {
		if !d.used {
			res.Findings = append(res.Findings, Finding{
				Pos:  d.pos,
				Rule: RuleDirective,
				Msg:  "stale //lint:ignore " + d.rule + ": no finding of that rule here any more; remove the directive",
			})
		}
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return res
}
