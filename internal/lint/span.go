package lint

// span-coverage: keeps the PR-4 observability contract honest as the
// code grows (DESIGN.md §8.2, §11). Every *exported* operation of the
// hot-path packages (internal/vfs, internal/enclave, internal/afs)
// that does real work — transitively touches the untrusted store, an
// SGX transition, or the network — must also transitively open an obs
// span ((*Tracer).Begin or (*Tracer).StartSpan). Enclave ops satisfy
// the rule by routing through sgx.Ecall/Ocall, which open their own
// spans; an op that reaches the store while bypassing both the ecall
// wrapper and a package-local span is exactly the blind spot the rule
// exists to light up.
//
// Pure accessors and in-memory helpers are never flagged: a function
// with no effectful reachability has nothing to trace.

// checkSpanCoverage is the per-package shim over the module-wide pass.
func checkSpanCoverage(m *Module, p *Package) []Finding {
	if p.Info == nil || !spanCoverageDirs[relDir(m, p)] {
		return nil
	}
	var out []Finding
	for _, f := range m.spanCoverageFindings() {
		if packageOwnsFile(p, f.Pos.Filename) {
			out = append(out, f)
		}
	}
	return out
}

// spanCoverageFindings computes (once) the uncovered effectful
// exported operations of the module.
func (m *Module) spanCoverageFindings() []Finding {
	if m.spanF != nil {
		return *m.spanF
	}
	out := m.computeSpanCoverage()
	m.spanF = &out
	return out
}

func (m *Module) computeSpanCoverage() []Finding {
	g := m.callGraph()
	effMemo := make(map[*CGNode]int8)
	spanMemo := make(map[*CGNode]int8)
	var out []Finding
	for _, n := range g.Nodes {
		if n.Decl == nil || n.Pkg == nil || !spanCoverageDirs[relDir(m, n.Pkg)] {
			continue
		}
		if !n.Decl.Name.IsExported() {
			continue
		}
		effectful := g.Reaches(n, true, effMemo, func(t *CGNode) bool {
			return t.Fn != nil && isEffectful(m, t.Fn)
		})
		if !effectful {
			continue
		}
		covered := g.Reaches(n, true, spanMemo, func(t *CGNode) bool {
			return t.Fn != nil && isSpanOpen(m, t.Fn)
		})
		if covered {
			continue
		}
		out = append(out, Finding{
			Pos:  n.Pkg.Fset.Position(n.Decl.Name.Pos()),
			Rule: RuleSpan,
			Msg: "exported op " + n.Name + " reaches the store/network/sgx layer without ever opening an obs span;" +
				" wrap the work in tracer.Begin or route it through the ecall wrapper",
		})
	}
	return out
}
