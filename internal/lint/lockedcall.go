package lint

// locked-callgraph: the interprocedural upgrade of lock-discipline's
// *Locked convention (DESIGN.md §8.2). A function whose name ends in
// "Locked" documents that its caller holds the guarding mutex; the
// old per-function rule could only check guarded *field* accesses.
// This rule checks the convention over the whole call graph instead:
// a *Locked function must be unreachable from any path that does not
// hold a lock.
//
// The check propagates a "possibly unheld" mark from the module's
// entry points (functions nobody in the module calls — the exported
// API, test hooks, dead code) down call and reference edges. A
// context stops the propagation when it visibly establishes the lock:
//
//   - it acquires a sync.Mutex/RWMutex in its own body (everything it
//     calls runs under that lock, flow-insensitively), or
//   - it is itself *Locked-named (its own callers are checked at
//     their call edges, which is what makes the rule compositional).
//
// Function literals inherit through the graph naturally: the literal
// has a reference edge from its lexically enclosing context, so a
// closure created inside a locked region — including one handed to a
// *Locked helper like withSupernodeLockLocked — is only as unheld as
// its encloser. The known blind spot is a closure that escapes a
// locked region and runs after the unlock (goroutines, stashed
// callbacks); lock-handoff designs of that shape carry a
// //lint:ignore with the reason, as before.

import (
	"go/ast"
)

// checkLockedCall is the per-package shim over the module-wide pass.
func checkLockedCall(m *Module, p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	var out []Finding
	for _, f := range m.lockedCallFindings() {
		if packageOwnsFile(p, f.Pos.Filename) {
			out = append(out, f)
		}
	}
	return out
}

// lockedCallFindings computes (once) every unguarded use of a *Locked
// function in the module.
func (m *Module) lockedCallFindings() []Finding {
	if m.lockedF != nil {
		return *m.lockedF
	}
	out := m.computeLockedCall()
	m.lockedF = &out
	return out
}

func (m *Module) computeLockedCall() []Finding {
	g := m.callGraph()

	// acquires[n]: n's own body (excluding nested literals) takes a
	// mutex, so its callees run under the lock.
	// contract[n]: n is *Locked-named; by convention it runs held, and
	// each of its call edges is checked at the caller instead.
	acquires := make(map[*CGNode]bool)
	contract := make(map[*CGNode]bool)
	for _, n := range g.Nodes {
		if n.Body != nil {
			acquires[n] = bodyAcquiresLock(n)
		}
		if n.Fn != nil && lockedNameSuffix(n.Fn.Name()) {
			contract[n] = true
		}
	}

	// Seed "possibly unheld" at the module's roots: declared functions
	// with no in-edges that do not assert the lock by name. Literals
	// are never roots — they always have a reference edge from their
	// lexical encloser.
	unheld := make(map[*CGNode]bool)
	var queue []*CGNode
	mark := func(n *CGNode) {
		if !unheld[n] {
			unheld[n] = true
			queue = append(queue, n)
		}
	}
	for _, n := range g.Nodes {
		if n.Pkg == nil || n.Lit != nil {
			continue
		}
		if len(g.In[n]) == 0 && !contract[n] {
			mark(n)
		}
	}
	// Propagate down edges through contexts that neither acquire nor
	// assert. Reference edges propagate too: a closure or method value
	// created in an unheld context may run unheld.
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if acquires[n] {
			continue
		}
		for _, e := range g.Out[n] {
			c := e.Callee
			if c.Pkg == nil || contract[c] {
				continue
			}
			mark(c)
		}
	}

	var out []Finding
	for _, n := range g.Nodes {
		if n.Pkg == nil {
			continue
		}
		if !unheld[n] || acquires[n] {
			continue // every path to n holds, or n locks for itself
		}
		for _, e := range g.Out[n] {
			callee := e.Callee
			if callee.Fn == nil || !lockedNameSuffix(callee.Fn.Name()) {
				continue
			}
			if callee.Pkg == nil {
				continue // out-of-module *Locked names are not ours to police
			}
			what := "call to"
			if e.Ref {
				what = "reference to"
			}
			out = append(out, Finding{
				Pos:  n.Pkg.Fset.Position(e.Site.Pos()),
				Rule: RuleLockedCall,
				Msg: what + " " + callee.Name + " (name asserts the lock is held) from " +
					contextName(n) + ", which is reachable without the lock and does not take it",
			})
		}
	}
	return out
}

// contextName renders a node's name for diagnostics ("SyncMetadata$1"
// for literals).
func contextName(n *CGNode) string {
	return n.Name
}

// bodyAcquiresLock reports whether n's own statements (not nested
// literals') call Lock/RLock on a sync mutex.
func bodyAcquiresLock(n *CGNode) bool {
	found := false
	ast.Inspect(n.Body, func(nd ast.Node) bool {
		if found {
			return false
		}
		if lit, ok := nd.(*ast.FuncLit); ok && lit != n.Lit {
			return false // nested literal: its own context
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if n.Pkg == nil || n.Pkg.Info == nil {
			return true
		}
		if method, ok := syncLockMethod(n.Pkg, sel); ok && (method == "Lock" || method == "RLock") {
			found = true
			return false
		}
		return true
	})
	return found
}
