package lint

import "testing"

func TestLockPairing(t *testing.T) {
	cases := []struct {
		name string
		src  string // //WANT marks expected findings
	}{
		{
			name: "lock without unlock",
			src: `package pkg
import "sync"
type S struct{ mu sync.Mutex; n int }
func (s *S) Bad() {
	s.mu.Lock() //WANT
	s.n++
}
`,
		},
		{
			name: "rlock without runlock",
			src: `package pkg
import "sync"
type S struct{ mu sync.RWMutex; n int }
func (s *S) Bad() int {
	s.mu.RLock() //WANT
	return s.n
}
`,
		},
		{
			name: "rlock paired with wrong unlock kind",
			src: `package pkg
import "sync"
type S struct{ mu sync.RWMutex; n int }
func (s *S) Bad() int {
	s.mu.RLock() //WANT
	defer s.mu.Unlock()
	return s.n
}
`,
		},
		{
			name: "deferred unlock ok",
			src: `package pkg
import "sync"
type S struct{ mu sync.Mutex; n int }
func (s *S) Good() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
`,
		},
		{
			name: "unlock on every path ok",
			src: `package pkg
import "sync"
type S struct{ mu sync.Mutex; n int }
func (s *S) Good(x int) int {
	s.mu.Lock()
	if x > 0 {
		s.mu.Unlock()
		return x
	}
	n := s.n
	s.mu.Unlock()
	return n
}
`,
		},
		{
			name: "unlock handed out as release closure ok",
			src: `package pkg
import "sync"
type S struct{ mu sync.Mutex }
func (s *S) Acquire() func() {
	s.mu.Lock()
	return s.mu.Unlock
}
`,
		},
		{
			name: "different mutexes do not satisfy each other",
			src: `package pkg
import "sync"
type S struct{ a, b sync.Mutex }
func (s *S) Bad() {
	s.a.Lock() //WANT
	defer s.b.Unlock()
}
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := analyzeFixture(t, map[string]string{"pkg/x.go": tc.src})
			expect(t, res, RuleLocks, wantLines(tc.src)...)
		})
	}
}

func TestGuardedFields(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "guarded field read without lock",
			src: `package pkg
import "sync"
type S struct {
	mu sync.Mutex
	n  int // guarded by mu
}
func (s *S) Bad() int {
	return s.n //WANT
}
`,
		},
		{
			name: "guarded field write under lock ok",
			src: `package pkg
import "sync"
type S struct {
	mu sync.Mutex
	n  int // guarded by mu
}
func (s *S) Good() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}
`,
		},
		{
			name: "Locked-suffix helper assumes lock held",
			src: `package pkg
import "sync"
type S struct {
	mu sync.Mutex
	n  int // guarded by mu
}
func (s *S) bumpLocked() {
	s.n++
}
func (s *S) Good() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bumpLocked()
}
`,
		},
		{
			name: "doc comment annotation",
			src: `package pkg
import "sync"
type S struct {
	mu sync.Mutex
	// epcUsed is the allocation high-water mark.
	// guarded by mu
	epcUsed int64
}
func (s *S) Bad() int64 {
	return s.epcUsed //WANT
}
`,
		},
		{
			name: "unannotated fields unconstrained",
			src: `package pkg
import "sync"
type S struct {
	mu sync.Mutex
	n  int
}
func (s *S) Fine() int {
	return s.n
}
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := analyzeFixture(t, map[string]string{"pkg/x.go": tc.src})
			expect(t, res, RuleLocks, wantLines(tc.src)...)
		})
	}
}
