package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/types"
	"strings"
)

// cryptoBearingDirs are the module-relative packages whose code handles
// key material; they must use crypto/rand exclusively and their calls are
// always crypto-relevant for error checking.
var cryptoBearingDirs = map[string]bool{
	"internal/enclave":  true,
	"internal/sgx":      true,
	"internal/gcmsiv":   true,
	"internal/metadata": true,
	"internal/cryptofs": true,
}

// enclaveBoundaryDirs are the packages forming the trusted enclave side
// of the boundary rule.
var enclaveBoundaryDirs = map[string]bool{
	"internal/enclave": true,
	"internal/sgx":     true,
}

// mathRandExemptDirs may use math/rand in non-test code: they generate
// synthetic workloads and benchmark inputs, never key material.
var mathRandExemptDirs = map[string]bool{
	"internal/workload": true,
	"internal/bench":    true,
}

// exprText renders an expression to source text (for matching the "same
// lock variable" / "same nonce buffer" by structure).
func exprText(p *Package, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, p.Fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// baseExpr strips parentheses, slicing, and indexing so ctx.IV[:] and
// (nonce)[2:8] resolve to the underlying buffer expression.
func baseExpr(e ast.Expr) ast.Expr {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op.String() == "&" {
				e = v.X
				continue
			}
			return e
		default:
			return e
		}
	}
}

// rightmostIdent returns the identifier naming an expression's object:
// the ident itself, or the Sel of a selector chain.
func rightmostIdent(e ast.Expr) *ast.Ident {
	switch v := baseExpr(e).(type) {
	case *ast.Ident:
		return v
	case *ast.SelectorExpr:
		return v.Sel
	}
	return nil
}

// objectOf resolves an expression to its types.Object, if it names one.
func objectOf(p *Package, e ast.Expr) types.Object {
	id := rightmostIdent(e)
	if id == nil || p.Info == nil {
		return nil
	}
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (method or package function), or nil.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	if p.Info == nil {
		return nil
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// builtinName resolves a call to a language builtin (append, copy,
// min, ...). Builtins are *types.Builtin objects, invisible to
// calleeFunc.
func builtinName(p *Package, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || p.Info == nil {
		return "", false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	if !ok {
		return "", false
	}
	return b.Name(), true
}

// isByteSlice reports whether t is []byte.
func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// funcScopes yields every function body in the package's primary files:
// top-level declarations and, nested inside them, function literals. name
// is the enclosing declaration's name (method names unqualified).
type funcScope struct {
	name string
	decl *ast.FuncDecl // nil for file-scope (shouldn't happen)
	body *ast.BlockStmt
}

func packageFuncs(p *Package) []funcScope {
	var out []funcScope
	for _, f := range p.Syntax {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, funcScope{name: fd.Name.Name, decl: fd, body: fd.Body})
		}
	}
	return out
}

// relDir returns the module-relative directory of a package.
func relDir(m *Module, p *Package) string {
	return p.RelPath(m.Path)
}

// hasSuffixFold reports a case-insensitive suffix match.
func hasSuffixFold(s, suffix string) bool {
	return len(s) >= len(suffix) && strings.EqualFold(s[len(s)-len(suffix):], suffix)
}
