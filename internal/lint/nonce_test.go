package lint

import (
	"strconv"
	"strings"
	"testing"
)

// aeadPrelude gives fixtures a realistic AEAD value to call Seal/Open on.
const aeadPrelude = `package pkg

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
)

func newAEAD() cipher.AEAD {
	b, err := aes.NewCipher(make([]byte, 16))
	if err != nil {
		panic(err)
	}
	g, err := cipher.NewGCM(b)
	if err != nil {
		panic(err)
	}
	return g
}

var (
	_ = rand.Read
	_ = binary.BigEndian
)
`

// wantLines returns "x.go:N" for every fixture line marked //WANT.
func wantLines(src string) []string {
	var out []string
	for i, line := range strings.Split(src, "\n") {
		if strings.Contains(line, "//WANT") {
			out = append(out, "x.go:"+strconv.Itoa(i+1))
		}
	}
	return out
}

func TestNonce(t *testing.T) {
	cases := []struct {
		name string
		src  string // appended to aeadPrelude; //WANT marks expected findings
	}{
		{
			name: "literal nonce",
			src: `
func F(pt []byte) []byte {
	return newAEAD().Seal(nil, []byte("000000000000"), pt, nil) //WANT
}
`,
		},
		{
			name: "package-level nonce variable",
			src: `
var sharedNonce = make([]byte, 12)

func F(pt []byte) []byte {
	return newAEAD().Seal(nil, sharedNonce, pt, nil) //WANT
}
`,
		},
		{
			name: "zero buffer used directly",
			src: `
func F(pt []byte) []byte {
	nonce := make([]byte, 12)
	return newAEAD().Seal(nil, nonce, pt, nil) //WANT
}
`,
		},
		{
			name: "zero array used directly",
			src: `
func F(pt []byte) []byte {
	var nonce [12]byte
	return newAEAD().Seal(nil, nonce[:], pt, nil) //WANT
}
`,
		},
		{
			name: "crypto rand nonce ok",
			src: `
func F(pt []byte) ([]byte, error) {
	nonce := make([]byte, 12)
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	return newAEAD().Seal(nonce, nonce, pt, nil), nil
}
`,
		},
		{
			name: "counter helper nonce ok",
			src: `
func F(counter uint64, pt []byte) []byte {
	nonce := make([]byte, 12)
	binary.BigEndian.PutUint64(nonce[4:], counter)
	return newAEAD().Seal(nil, nonce, pt, nil)
}
`,
		},
		{
			name: "open with wire nonce ok",
			src: `
func F(blob []byte) ([]byte, error) {
	nonce := blob[:12]
	return newAEAD().Open(nil, nonce, blob[12:], nil)
}
`,
		},
		{
			name: "open with constant nonce flagged",
			src: `
func F(blob []byte) ([]byte, error) {
	return newAEAD().Open(nil, []byte("bad-constant"), blob, nil) //WANT
}
`,
		},
		{
			name: "nonce from helper call ok",
			src: `
func nextNonce() []byte {
	n := make([]byte, 12)
	if _, err := rand.Read(n); err != nil {
		panic(err)
	}
	return n
}

func F(pt []byte) []byte {
	return newAEAD().Seal(nil, nextNonce(), pt, nil)
}
`,
		},
		{
			name: "field randomized in same function ok",
			src: `
type ctx struct{ IV [12]byte }

func F(pt []byte) ([]byte, error) {
	var c ctx
	if _, err := rand.Read(c.IV[:]); err != nil {
		return nil, err
	}
	return newAEAD().Seal(nil, c.IV[:], pt, nil), nil
}
`,
		},
		{
			name: "param nonce is the caller's responsibility",
			src: `
func F(nonce, pt []byte) []byte {
	return newAEAD().Seal(nil, nonce, pt, nil)
}
`,
		},
		{
			name: "non-AEAD Seal signature ignored",
			src: `
type sealer struct{}

func (sealer) Seal(data, aad []byte) ([]byte, error) { return data, nil }

func F() {
	var s sealer
	out, err := s.Seal([]byte("x"), nil)
	_, _ = out, err
}
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := aeadPrelude + tc.src
			res := analyzeFixture(t, map[string]string{"pkg/x.go": src})
			expect(t, res, RuleNonce, wantLines(src)...)
		})
	}
}
