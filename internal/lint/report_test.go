package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFixtureFile(t *testing.T, root, name, src string) {
	t.Helper()
	path := filepath.Join(root, filepath.FromSlash(name))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func sampleResult() *Result {
	return &Result{
		Findings: []Finding{
			{Pos: token.Position{Filename: "/mod/internal/enclave/x.go", Line: 6, Column: 9}, Rule: RuleTaint, Msg: "key material 'rootKey' flows into fmt.Errorf"},
			{Pos: token.Position{Filename: "/mod/internal/vfs/v.go", Line: 9, Column: 1}, Rule: RuleSpan, Msg: "exported op ReadFile reaches the store without a span"},
		},
		Suppressed: 3,
	}
}

func TestJSONReportRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := NewJSONReport("/mod", sampleResult(), 1).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := DecodeJSONReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema {
		t.Errorf("Schema = %d, want %d", rep.Schema, ReportSchema)
	}
	if len(rep.Findings) != 2 || rep.Suppressed != 3 || rep.Baselined != 1 {
		t.Errorf("decoded %+v", rep)
	}
	if rep.Findings[0].File != "internal/enclave/x.go" {
		t.Errorf("path not module-relative: %q", rep.Findings[0].File)
	}
}

func TestJSONReportSchemaMismatchRejected(t *testing.T) {
	_, err := DecodeJSONReport(strings.NewReader(`{"schema": 999, "findings": []}`))
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema-mismatch error, got %v", err)
	}
}

func TestSARIFShape(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeSARIF(&buf, "/mod", sampleResult()); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if log.Version != SARIFVersion {
		t.Errorf("version = %q, want %q", log.Version, SARIFVersion)
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "nexus-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// Every rule is declared, found or not (plus the directive rule).
	if want := len(Checkers()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("driver declares %d rules, want %d", len(run.Tool.Driver.Rules), want)
	}
	if len(run.Results) != 2 || run.Results[0].RuleID != RuleTaint {
		t.Errorf("results = %+v", run.Results)
	}
	if uri := run.Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "internal/enclave/x.go" {
		t.Errorf("artifact URI = %q, want module-relative", uri)
	}
}

func TestFilterRules(t *testing.T) {
	res, err := FilterRules(sampleResult(), []string{RuleSpan})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 1 || res.Findings[0].Rule != RuleSpan {
		t.Errorf("filtered = %v", res.Findings)
	}
	if _, err := FilterRules(sampleResult(), []string{"no-such-rule"}); err == nil {
		t.Fatal("unknown rule name accepted")
	}
}

func TestBaselineSwallowsRecordedAndGatesNew(t *testing.T) {
	bl := NewBaseline("/mod", sampleResult())
	if len(bl.Entries) != 2 {
		t.Fatalf("entries = %+v", bl.Entries)
	}

	// Same findings again: all baselined, gate passes.
	clean, baselined, stale := bl.Apply("/mod", sampleResult())
	if len(clean.Findings) != 0 || baselined != 2 || len(stale) != 0 {
		t.Errorf("apply(clean): findings=%v baselined=%d stale=%v", clean.Findings, baselined, stale)
	}

	// A new violation — same rule, different message — survives.
	res := sampleResult()
	res.Findings = append(res.Findings, Finding{
		Pos:  token.Position{Filename: "/mod/internal/enclave/y.go", Line: 3},
		Rule: RuleTaint, Msg: "key material 'wrapKey' flows into log.Printf",
	})
	gated, baselined, _ := bl.Apply("/mod", res)
	if len(gated.Findings) != 1 || baselined != 2 {
		t.Errorf("apply(new): findings=%v baselined=%d", gated.Findings, baselined)
	}

	// A second occurrence of a recorded shape in the same file also
	// exceeds its count budget and survives.
	res = sampleResult()
	res.Findings = append(res.Findings, Finding{
		Pos:  token.Position{Filename: "/mod/internal/enclave/x.go", Line: 40, Column: 9},
		Rule: RuleTaint, Msg: "key material 'rootKey' flows into fmt.Errorf",
	})
	gated, _, _ = bl.Apply("/mod", res)
	if len(gated.Findings) != 1 {
		t.Errorf("count budget not enforced: %v", gated.Findings)
	}

	// A fixed finding shows up as stale.
	res = sampleResult()
	res.Findings = res.Findings[:1]
	_, _, stale = bl.Apply("/mod", res)
	if len(stale) != 1 || stale[0].Rule != RuleSpan {
		t.Errorf("stale = %+v", stale)
	}
}

func TestBaselineFileRoundTripAndSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	bl := NewBaseline("/mod", sampleResult())
	if err := bl.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != len(bl.Entries) || got.Schema != ReportSchema {
		t.Errorf("round trip: %+v", got)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := (&Baseline{Schema: 999}).WriteFile(bad); err != nil {
		t.Fatal(err)
	}
	// Schema validation must reject before anything trusts the entries.
	if _, err := LoadBaseline(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema error, got %v", err)
	}
}

// TestBaselineGateEndToEnd drives the real analyzer: a fixture with a
// violation is baselined, then a second violation added on top is the
// only thing the gate reports.
func TestBaselineGateEndToEnd(t *testing.T) {
	src := `package enclave

import "fmt"

func mount(rootKey []byte) error {
	return fmt.Errorf("key %x", rootKey)
}
`
	root := t.TempDir()
	writeFixtureFile(t, root, "go.mod", "module fixture\n\ngo 1.22\n")
	writeFixtureFile(t, root, "internal/enclave/x.go", src)
	res, err := Run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findingsFor(res, RuleTaint)) != 1 {
		t.Fatalf("fixture should produce one taint finding: %v", res.Findings)
	}
	bl := NewBaseline(root, res)

	writeFixtureFile(t, root, "internal/enclave/x.go", src+`
func unmount(sealingKey []byte) error {
	return fmt.Errorf("still holding %x", sealingKey)
}
`)
	res2, err := Run(root)
	if err != nil {
		t.Fatal(err)
	}
	gated, baselined, _ := bl.Apply(root, res2)
	if baselined != 1 {
		t.Errorf("baselined = %d, want 1", baselined)
	}
	if got := findingsFor(gated, RuleTaint); len(got) != 1 {
		t.Fatalf("gate should surface exactly the new violation, got %v", got)
	}
}
