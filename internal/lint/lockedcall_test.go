package lint

import "testing"

func TestLockedCallUnheldRoot(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"a/x.go": `package a

type E struct{}

func (e *E) helperLocked() {}

func (e *E) Do() {
	e.helperLocked()
}
`,
	})
	expect(t, res, RuleLockedCall, "x.go:8")
}

func TestLockedCallHeldByAcquire(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"a/x.go": `package a

import "sync"

type E struct {
	mu sync.Mutex
}

func (e *E) helperLocked() {}

func (e *E) Do() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.helperLocked()
}
`,
	})
	expect(t, res, RuleLockedCall)
}

// TestLockedCallInterprocedural: mid is fine while every path to it
// locks; adding one unlocked path makes its *Locked call a finding.
func TestLockedCallInterprocedural(t *testing.T) {
	clean := map[string]string{
		"a/x.go": `package a

import "sync"

type E struct {
	mu sync.Mutex
}

func (e *E) helperLocked() {}

func (e *E) mid() {
	e.helperLocked()
}

func (e *E) Do() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mid()
}
`,
	}
	res := analyzeFixture(t, clean)
	expect(t, res, RuleLockedCall)

	dirty := map[string]string{"a/x.go": clean["a/x.go"] + `
func (e *E) Bypass() {
	e.mid()
}
`}
	res = analyzeFixture(t, dirty)
	expect(t, res, RuleLockedCall, "x.go:12")
}

// TestLockedCallClosureInheritsThroughLockedHelper: the prevailing repo
// idiom — a closure built under the lock and handed to a *Locked
// with-helper — is clean; the same closure reachable from an unlocked
// exported function is not.
func TestLockedCallClosureInheritsThroughLockedHelper(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"a/x.go": `package a

import "sync"

type E struct {
	mu sync.Mutex
}

func (e *E) flushLocked() {}

func (e *E) withRetryLocked(fn func()) {
	fn()
}

func (e *E) Do() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.withRetryLocked(func() {
		e.flushLocked()
	})
}
`,
	})
	expect(t, res, RuleLockedCall)

	res = analyzeFixture(t, map[string]string{
		"a/x.go": `package a

type E struct{}

func (e *E) flushLocked() {}

func (e *E) Do() {
	fn := func() {
		e.flushLocked()
	}
	fn()
}
`,
	})
	expect(t, res, RuleLockedCall, "x.go:9")
}

// TestLockedCallMethodValueReference: taking a *Locked method as a
// value from an unheld context is flagged (the value may be invoked
// anywhere).
func TestLockedCallMethodValueReference(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"a/x.go": `package a

type E struct{}

func (e *E) flushLocked() {}

func (e *E) Handler() func() {
	return e.flushLocked
}
`,
	})
	expect(t, res, RuleLockedCall, "x.go:8")
}

func TestLockedCallSuppression(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"a/x.go": `package a

type E struct{}

func (e *E) helperLocked() {}

func (e *E) Do() {
	//lint:ignore locked-callgraph fixture: lock handed off by caller contract
	e.helperLocked()
}
`,
	})
	expect(t, res, RuleLockedCall)
	if res.Suppressed != 1 {
		t.Fatalf("Suppressed = %d, want 1", res.Suppressed)
	}
}
