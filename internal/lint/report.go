package lint

// Machine-readable findings (DESIGN.md §8.3), mirroring the
// schema-version idiom of internal/bench/report.go: every JSON
// artifact is stamped with ReportSchema, readers refuse mismatched
// versions, and the SARIF emitter targets the fixed 2.1.0 spec so CI
// can upload it as a code-scanning artifact.

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
)

// ReportSchema is the version stamped into JSON reports and baseline
// files. Bump it whenever JSONFinding or Baseline change incompatibly.
const ReportSchema = 1

// SARIFVersion is the emitted SARIF spec version.
const SARIFVersion = "2.1.0"

// JSONFinding is one finding with a module-root-relative,
// forward-slash file path — stable across machines, diffable, and the
// unit of baseline matching.
type JSONFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col,omitempty"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// JSONReport is the -json output of nexus-lint.
type JSONReport struct {
	Schema     int           `json:"schema"`
	Findings   []JSONFinding `json:"findings"`
	Suppressed int           `json:"suppressed"`
	// Baselined counts findings matched (and swallowed) by the
	// baseline file; it is zero when no baseline was applied.
	Baselined int `json:"baselined,omitempty"`
}

// jsonFinding converts a Finding, relativizing its path against the
// module root.
func jsonFinding(root string, f Finding) JSONFinding {
	return JSONFinding{
		File: relPath(root, f.Pos.Filename),
		Line: f.Pos.Line,
		Col:  f.Pos.Column,
		Rule: f.Rule,
		Msg:  f.Msg,
	}
}

func relPath(root, name string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, name); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(name)
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}

// NewJSONReport builds the JSON view of a result. baselined is the
// count of findings removed by baseline matching (0 when none).
func NewJSONReport(root string, res *Result, baselined int) *JSONReport {
	rep := &JSONReport{
		Schema:     ReportSchema,
		Findings:   []JSONFinding{},
		Suppressed: res.Suppressed,
		Baselined:  baselined,
	}
	for _, f := range res.Findings {
		rep.Findings = append(rep.Findings, jsonFinding(root, f))
	}
	return rep
}

// Encode writes the report as indented JSON.
func (r *JSONReport) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DecodeJSONReport reads a report and validates its schema version.
func DecodeJSONReport(rd io.Reader) (*JSONReport, error) {
	var rep JSONReport
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("lint: decoding report: %w", err)
	}
	if rep.Schema != ReportSchema {
		return nil, fmt.Errorf("lint: report schema %d, tool expects %d", rep.Schema, ReportSchema)
	}
	return &rep, nil
}

// --- SARIF ----------------------------------------------------------

// sarif* types model the minimal SARIF 2.1.0 subset GitHub code
// scanning and IDE viewers consume.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// EncodeSARIF writes the result as a SARIF 2.1.0 log. Every rule is
// declared in the driver (found or not), so viewers can show the full
// rule set.
func EncodeSARIF(w io.Writer, root string, res *Result) error {
	run := sarifRun{
		Tool: sarifTool{Driver: sarifDriver{
			Name:  "nexus-lint",
			Rules: []sarifRule{},
		}},
		Results: []sarifResult{},
	}
	for _, c := range Checkers() {
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, sarifRule{
			ID:               c.Rule,
			ShortDescription: sarifMessage{Text: c.Doc},
		})
	}
	run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, sarifRule{
		ID:               RuleDirective,
		ShortDescription: sarifMessage{Text: "malformed or stale //lint:ignore directive"},
	})
	for _, f := range res.Findings {
		run.Results = append(run.Results, sarifResult{
			RuleID:  f.Rule,
			Level:   "error",
			Message: sarifMessage{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relPath(root, f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: SARIFVersion,
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// FilterRules returns a copy of res keeping only findings of the named
// rules (nil or empty selector keeps everything). Unknown rule names
// are reported as an error so -rule typos fail loudly.
func FilterRules(res *Result, rules []string) (*Result, error) {
	if len(rules) == 0 {
		return res, nil
	}
	known := map[string]bool{RuleDirective: true}
	for _, c := range Checkers() {
		known[c.Rule] = true
	}
	keep := make(map[string]bool)
	for _, r := range rules {
		if !known[r] {
			names := make([]string, 0, len(known))
			for k := range known {
				names = append(names, k)
			}
			sort.Strings(names)
			return nil, fmt.Errorf("lint: unknown rule %q (have %v)", r, names)
		}
		keep[r] = true
	}
	out := &Result{Suppressed: res.Suppressed}
	for _, f := range res.Findings {
		if keep[f.Rule] {
			out.Findings = append(out.Findings, f)
		}
	}
	return out, nil
}
