package lint

import (
	"strings"
	"testing"
)

// The secret-taint fixtures use unexported functions so the
// enclave-boundary rule (exported-signature check) stays quiet and each
// test exercises exactly the taint engine.

func TestTaintDirectFlowIntoErrorf(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"internal/enclave/x.go": `package enclave

import "fmt"

func mount(rootKey []byte) error {
	return fmt.Errorf("mount failed, key was %x", rootKey)
}
`,
	})
	expect(t, res, RuleTaint, "x.go:6")
}

// TestTaintInterprocedural is the acceptance-criteria fixture: the key
// reaches the sink only through a two-call chain, so a per-function
// check cannot see it. The finding lands where the tainted value enters
// the chain, in the function that actually holds key material.
func TestTaintInterprocedural(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"internal/enclave/x.go": `package enclave

import "fmt"

func describe(b []byte) string {
	return fmt.Sprintf("%x", b)
}

func fail(b []byte) error {
	return fmt.Errorf("context: %s", describe(b))
}

func mount(rootKey []byte) error {
	return fail(rootKey)
}
`,
	})
	expect(t, res, RuleTaint, "x.go:14")
	// The diagnostic names the source and carries the call chain.
	for _, f := range res.Findings {
		if f.Rule == RuleTaint {
			if !strings.Contains(f.Msg, "rootKey") {
				t.Errorf("finding does not name the source: %q", f.Msg)
			}
		}
	}
}

// TestTaintSanitizedFlowClean: routing the key through a seal/wrap
// function produces a protected form, which may be formatted freely.
func TestTaintSanitizedFlowClean(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"internal/enclave/x.go": `package enclave

import "fmt"

func sealKey(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func mount(rootKey []byte) error {
	sealed := sealKey(rootKey)
	return fmt.Errorf("sealed form %x", sealed)
}
`,
	})
	expect(t, res, RuleTaint) // no findings
}

// TestTaintSanitizerDenyList: an *un*seal function is not a sanitizer
// even though "unseal" contains "seal".
func TestTaintSanitizerDenyList(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"internal/enclave/x.go": `package enclave

import "fmt"

func unsealKey(b []byte) []byte { return b }

func mount(sealedRootKey []byte) error {
	rootKey := unsealKey(sealedRootKey)
	return fmt.Errorf("key: %x", rootKey)
}
`,
	})
	if got := findingsFor(res, RuleTaint); len(got) == 0 {
		t.Fatalf("unseal result formatted into error not flagged; findings: %v", res.Findings)
	}
}

// TestTaintFieldFlow: a key stashed in a struct field by one method and
// formatted by another is caught through the module-global field set.
func TestTaintFieldFlow(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"internal/enclave/x.go": `package enclave

import "fmt"

type vault struct {
	k []byte
}

func (v *vault) set(rootKey []byte) {
	v.k = rootKey
}

func (v *vault) dump() string {
	return fmt.Sprintf("%x", v.k)
}
`,
	})
	expect(t, res, RuleTaint, "x.go:14")
}

// TestTaintStoreUploadSink: raw key bytes handed to a store Put are an
// upload of secrets to the untrusted world.
func TestTaintStoreUploadSink(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"internal/backend/b.go": `package backend

type Store struct{}

func (s *Store) Put(name string, data []byte) error { return nil }
`,
		"internal/enclave/x.go": `package enclave

import "fixture/internal/backend"

func persist(s *backend.Store, wrapKey []byte) error {
	return s.Put("volume-key", wrapKey)
}
`,
	})
	expect(t, res, RuleTaint, "x.go:6")
}

// TestTaintExtraSourcesPerPackage: taintExtraSources extends the
// source set for internal/enclave ("volumekey") but not elsewhere.
func TestTaintExtraSourcesPerPackage(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"internal/enclave/x.go": `package enclave

import "fmt"

func report(volumeKey []byte) error {
	return fmt.Errorf("%x", volumeKey)
}
`,
		"internal/workload/x.go": `package workload

import "fmt"

func report(volumeKey []byte) error {
	return fmt.Errorf("%x", volumeKey)
}
`,
	})
	expect(t, res, RuleTaint, "x.go:6") // enclave only
	for _, f := range res.Findings {
		if f.Rule == RuleTaint && strings.Contains(f.Pos.Filename, "workload") {
			t.Errorf("per-package source leaked into workload: %v", f)
		}
	}
}

func TestTaintSuppression(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"internal/enclave/x.go": `package enclave

import "fmt"

func mount(rootKey []byte) error {
	//lint:ignore secret-taint fixture: demonstrating the directive
	return fmt.Errorf("key %x", rootKey)
}
`,
	})
	expect(t, res, RuleTaint)
	if res.Suppressed != 1 {
		t.Fatalf("Suppressed = %d, want 1", res.Suppressed)
	}
}
