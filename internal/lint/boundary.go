package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// keyMaterialName reports whether an identifier's name denotes RAW key
// material: the volume rootkey, SGX sealing/fuse keys, or per-object
// wrapping/body keys (DSN'19 §IV-A, §VI-B). Names that carry the sealed,
// wrapped, or encrypted form are allowed — producing those is exactly what
// the enclave boundary exists for.
func keyMaterialName(name string) bool {
	l := strings.ToLower(name)
	for _, ok := range []string{"sealed", "wrapped", "encrypted", "cipher"} {
		if strings.Contains(l, ok) {
			return false
		}
	}
	for _, bad := range []string{
		"rootkey", "root_key",
		"sealingkey", "sealing_key", "sealkey", "seal_key",
		"fusekey", "fuse_key",
		"wrappingkey", "wrapping_key", "wrapkey", "wrap_key",
		"bodykey", "body_key",
		"masterkey", "master_key",
	} {
		if strings.Contains(l, bad) {
			return true
		}
	}
	return false
}

// keyMaterialType reports whether a type's name denotes raw key material
// (e.g. a named type RootKey).
func keyMaterialType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return keyMaterialName(n.Obj().Name())
}

// checkBoundary implements enclave-boundary. Inside internal/enclave and
// internal/sgx, no exported identifier — function name, signature
// parameter or result, package-level var, or exported struct field — may
// carry raw key material; that would place the rootkey on the ecall
// surface. Outside those packages, no reference to such an exported
// identifier is allowed (belt and suspenders: if one slips in, every use
// site lights up too).
func checkBoundary(m *Module, p *Package) []Finding {
	rel := relDir(m, p)
	if enclaveBoundaryDirs[rel] {
		return checkBoundaryInside(p)
	}
	return checkBoundaryOutside(m, p)
}

func checkBoundaryInside(p *Package) []Finding {
	var out []Finding
	flag := func(n ast.Node, what, name string) {
		out = append(out, Finding{
			Pos:  p.Fset.Position(n.Pos()),
			Rule: RuleBoundary,
			Msg:  what + " " + name + " carries raw key material across the enclave boundary; only sealed/wrapped forms may be exported",
		})
	}
	fieldCarriesKey := func(f *ast.Field) (string, bool) {
		for _, name := range f.Names {
			if keyMaterialName(name.Name) {
				return name.Name, true
			}
		}
		if p.Info != nil {
			if tv, ok := p.Info.Types[f.Type]; ok && keyMaterialType(tv.Type) {
				return exprText(p, f.Type), true
			}
		}
		return "", false
	}

	for _, file := range p.Syntax {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if keyMaterialName(d.Name.Name) {
					flag(d.Name, "exported function", d.Name.Name)
				}
				if d.Type.Params != nil {
					for _, f := range d.Type.Params.List {
						if name, bad := fieldCarriesKey(f); bad {
							flag(f, "parameter of exported function "+d.Name.Name+":", name)
						}
					}
				}
				if d.Type.Results != nil {
					for _, f := range d.Type.Results.List {
						if name, bad := fieldCarriesKey(f); bad {
							flag(f, "result of exported function "+d.Name.Name+":", name)
						}
					}
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.ValueSpec:
						for _, name := range s.Names {
							if name.IsExported() && keyMaterialName(name.Name) {
								flag(name, "exported variable", name.Name)
							}
						}
					case *ast.TypeSpec:
						st, ok := s.Type.(*ast.StructType)
						if !ok || !s.Name.IsExported() {
							continue
						}
						for _, f := range st.Fields.List {
							for _, name := range f.Names {
								if name.IsExported() && keyMaterialName(name.Name) {
									flag(name, "exported field "+s.Name.Name+".", name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

func checkBoundaryOutside(m *Module, p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	var out []Finding
	seen := make(map[*ast.Ident]bool)
	for id, obj := range p.Info.Uses {
		if seen[id] || obj == nil || obj.Pkg() == nil {
			continue
		}
		seen[id] = true
		objRel := strings.TrimPrefix(obj.Pkg().Path(), m.Path+"/")
		if !enclaveBoundaryDirs[objRel] {
			continue
		}
		if obj.Exported() && keyMaterialName(obj.Name()) {
			out = append(out, Finding{
				Pos:  p.Fset.Position(id.Pos()),
				Rule: RuleBoundary,
				Msg:  "reference to " + obj.Pkg().Name() + "." + obj.Name() + " pulls raw key material out of the enclave packages",
			})
		}
	}
	return out
}
