package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSelfHost is the acceptance gate: the repository lints clean under
// its own analyzer. Every rule runs over every package; anything not
// covered by a reasoned //lint:ignore or by the committed
// lint/baseline.json fails this test — which is exactly the CI gate,
// run as a unit test so `go test ./...` catches a new violation before
// the workflow does.
func TestSelfHost(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found at %s: %v", root, err)
	}

	res, err := Run(root)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	if blPath := filepath.Join(root, "lint", "baseline.json"); fileReadable(blPath) {
		bl, err := LoadBaseline(blPath)
		if err != nil {
			t.Fatalf("baseline: %v", err)
		}
		var stale []BaselineEntry
		res, _, stale = bl.Apply(root, res)
		for _, s := range stale {
			t.Errorf("baseline entry no longer observed (run `make lint-baseline`): %s [%s] %s", s.File, s.Rule, s.Msg)
		}
	}

	for _, f := range res.Findings {
		t.Errorf("self-host violation: %s", f.String())
	}
}

func fileReadable(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
