package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// guardedByRe matches the field annotation "// guarded by mu".
var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// checkLocks implements lock-discipline, the §V-A serialization
// invariant, as two conservative approximations:
//
//  1. pairing — a Lock()/RLock() on a sync.Mutex/RWMutex must have a
//     matching Unlock()/RUnlock() on the same lock expression somewhere
//     in the same function (deferred, on a return path, or handed out as
//     a method value such as `release := mu.Unlock`). Lock-handoff
//     designs (lock here, unlock in a callback elsewhere) must carry a
//     //lint:ignore with the reason.
//  2. guarded fields — a struct field annotated "// guarded by mu" may
//     only be read or written in functions that lock mu, except in
//     functions whose name ends in "Locked" (this repo's convention for
//     helpers that document the caller holds the lock).
func checkLocks(m *Module, p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	var out []Finding
	guarded := guardedFields(p)
	for _, fn := range packageFuncs(p) {
		out = append(out, checkLockPairing(p, fn)...)
		if len(guarded) > 0 {
			out = append(out, checkGuardedAccess(p, fn, guarded)...)
		}
	}
	return out
}

// syncLockMethod reports whether sel names a method of sync.Mutex or
// sync.RWMutex, returning the method name.
func syncLockMethod(p *Package, sel *ast.SelectorExpr) (string, bool) {
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return fn.Name(), true
	}
	return "", false
}

var unlockFor = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

// checkLockPairing flags Lock/RLock calls with no same-function Unlock.
func checkLockPairing(p *Package, fn funcScope) []Finding {
	type lockEvent struct {
		recv string
		kind string
		pos  ast.Node
	}
	var locks []lockEvent
	released := make(map[string]bool) // recv + "." + method seen anywhere

	ast.Inspect(fn.body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		method, ok := syncLockMethod(p, sel)
		if !ok {
			return true
		}
		recv := exprText(p, sel.X)
		switch method {
		case "Unlock", "RUnlock":
			// A call, a deferred call, or a method value handed out as a
			// release closure all count as the lock being released.
			released[recv+"."+method] = true
		}
		return true
	})
	ast.Inspect(fn.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		method, ok := syncLockMethod(p, sel)
		if !ok || (method != "Lock" && method != "RLock") {
			return true
		}
		locks = append(locks, lockEvent{recv: exprText(p, sel.X), kind: method, pos: call})
		return true
	})

	var out []Finding
	for _, l := range locks {
		if released[l.recv+"."+unlockFor[l.kind]] {
			continue
		}
		out = append(out, Finding{
			Pos:  p.Fset.Position(l.pos.Pos()),
			Rule: RuleLocks,
			Msg: l.recv + "." + l.kind + "() in " + fn.name + " has no matching " +
				unlockFor[l.kind] + " in the same function",
		})
	}
	return out
}

// guardInfo records one "// guarded by mu" annotation.
type guardInfo struct {
	structName string
	fieldName  string
	mutex      string
}

// guardedFields collects annotated struct fields, keyed by the field's
// types.Var so accesses resolve regardless of receiver spelling.
func guardedFields(p *Package) map[*types.Var]guardInfo {
	out := make(map[*types.Var]guardInfo)
	for _, file := range p.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				mu := guardAnnotation(f)
				if mu == "" {
					continue
				}
				for _, name := range f.Names {
					if v, ok := p.Info.Defs[name].(*types.Var); ok {
						out[v] = guardInfo{structName: ts.Name.Name, fieldName: name.Name, mutex: mu}
					}
				}
			}
			return true
		})
	}
	return out
}

// guardAnnotation extracts the mutex name from a field's doc or line
// comment, if annotated.
func guardAnnotation(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkGuardedAccess flags guarded-field accesses in functions that never
// lock the guarding mutex.
func checkGuardedAccess(p *Package, fn funcScope, guarded map[*types.Var]guardInfo) []Finding {
	if hasSuffixFold(fn.name, "Locked") {
		return nil // convention: caller holds the lock
	}

	// Mutex field names locked anywhere in this function.
	locked := make(map[string]bool)
	ast.Inspect(fn.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if method, ok := syncLockMethod(p, sel); ok && (method == "Lock" || method == "RLock") {
			if id := rightmostIdent(sel.X); id != nil {
				locked[id.Name] = true
			}
		}
		return true
	})

	var out []Finding
	ast.Inspect(fn.body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[sel.Sel].(*types.Var)
		if !ok {
			return true
		}
		g, ok := guarded[obj]
		if !ok || locked[g.mutex] {
			return true
		}
		out = append(out, Finding{
			Pos:  p.Fset.Position(sel.Sel.Pos()),
			Rule: RuleLocks,
			Msg: fn.name + " touches " + g.structName + "." + g.fieldName +
				" (guarded by " + g.mutex + ") without locking " + g.mutex,
		})
		return true
	})
	return out
}
