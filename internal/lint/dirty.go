package lint

// dirty-before-flush: the write-back invariant of DESIGN.md §12,
// machine-checked. In internal/enclave, any function that mutates
// dirnode/filenode state — a call to a mutating metadata method
// (Dirnode.Insert/Remove, Filenode.EncryptContent*) or an assignment
// to a field of a metadata node — must hand the mutation to the
// write-back layer before returning: transitively reach a
// dirty-marking or flush-barrier function (mark*, stageDelete*,
// *flush*, *drain*). Otherwise the mutation lives only in the
// decrypted cache and is silently lost at the next drain or crash.
//
// Two classes of functions are exempt:
//
//   - the flush machinery itself (barrier-named functions replaying
//     logs or rewriting nodes mid-drain), and
//   - helpers reachable *only* from barrier-named functions — e.g. a
//     replay helper the drain calls; the drain is the flush.
//
// Everything else either marks/flushes or carries a //lint:ignore
// explaining who flushes on its behalf.

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkDirtyFlush is the per-package shim over the module-wide pass.
func checkDirtyFlush(m *Module, p *Package) []Finding {
	if p.Info == nil || relDir(m, p) != dirtyFlushDir {
		return nil
	}
	var out []Finding
	for _, f := range m.dirtyFlushFindings() {
		if packageOwnsFile(p, f.Pos.Filename) {
			out = append(out, f)
		}
	}
	return out
}

// dirtyFlushFindings computes (once) the module's write-back
// violations.
func (m *Module) dirtyFlushFindings() []Finding {
	if m.dirtyF != nil {
		return *m.dirtyF
	}
	out := m.computeDirtyFlush()
	m.dirtyF = &out
	return out
}

func (m *Module) computeDirtyFlush() []Finding {
	g := m.callGraph()
	var enclavePkg *Package
	for _, p := range m.Packages {
		if p.RelPath(m.Path) == dirtyFlushDir {
			enclavePkg = p
		}
	}
	if enclavePkg == nil {
		return nil
	}

	reachesBarrier := make(map[*CGNode]int8)
	var out []Finding
	for _, n := range g.Nodes {
		if n.Pkg != enclavePkg || n.Body == nil {
			continue
		}
		root := n.Root()
		rootName := ""
		if root.Fn != nil {
			rootName = root.Fn.Name()
		}
		if dirtyBarrierName(rootName) {
			continue // the flush machinery itself
		}
		site := firstMutation(n)
		if site == nil {
			continue
		}
		// Compliant if the mutation's context — or any lexically
		// enclosing one (the mutation may sit in an Ecall closure whose
		// enclosing op flushes) — transitively reaches a barrier,
		// following ref edges too so closures handed to helpers count.
		compliant := false
		for c := n; c != nil; c = c.Encl {
			if g.Reaches(c, true, reachesBarrier, func(t *CGNode) bool {
				return t.Fn != nil && isBarrierNode(m, t)
			}) {
				compliant = true
				break
			}
		}
		if compliant {
			continue
		}
		// Or if it is internal to the flush path: every caller chain
		// passes through a barrier-named function.
		if onlyReachableFromBarriers(g, root) {
			continue
		}
		out = append(out, Finding{
			Pos:  n.Pkg.Fset.Position(site.Pos()),
			Rule: RuleDirtyFlush,
			Msg: n.Name + " mutates dirnode/filenode state but never reaches a markDirty/flush barrier;" +
				" the change is lost at the next write-back drain",
		})
	}
	return out
}

// isBarrierNode reports whether a node is a barrier-named function of
// internal/enclave.
func isBarrierNode(m *Module, n *CGNode) bool {
	if n.Fn == nil || n.Fn.Pkg() == nil {
		return false
	}
	rel := strings.TrimPrefix(n.Fn.Pkg().Path(), m.Path+"/")
	return rel == dirtyFlushDir && dirtyBarrierName(n.Fn.Name())
}

// firstMutation returns the first metadata mutation in n's own body
// (nested literals are their own nodes), or nil.
func firstMutation(n *CGNode) ast.Node {
	var site ast.Node
	ast.Inspect(n.Body, func(nd ast.Node) bool {
		if site != nil {
			return false
		}
		if lit, ok := nd.(*ast.FuncLit); ok && lit != n.Lit {
			return false
		}
		switch v := nd.(type) {
		case *ast.CallExpr:
			if isMetadataMutatorCall(n.Pkg, v) {
				site = v
				return false
			}
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if isMetadataFieldWrite(n.Pkg, lhs) {
					site = v
					return false
				}
			}
		case *ast.IncDecStmt:
			if isMetadataFieldWrite(n.Pkg, v.X) {
				site = v
				return false
			}
		}
		return true
	})
	return site
}

// isMetadataMutatorCall reports a call to a configured mutating method
// of internal/metadata's node types.
func isMetadataMutatorCall(p *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/metadata") {
		return false
	}
	recv := receiverTypeName(fn)
	return metadataMutators[recv][fn.Name()]
}

// isMetadataFieldWrite reports an assignment target that is a field of
// a metadata Dirnode/Filenode.
func isMetadataFieldWrite(p *Package, lhs ast.Expr) bool {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fld, ok := p.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !fld.IsField() {
		return false
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || !strings.HasSuffix(named.Obj().Pkg().Path(), "internal/metadata") {
		return false
	}
	_, tracked := metadataMutators[named.Obj().Name()]
	return tracked
}

// receiverTypeName returns the bare receiver type name of a method
// ("" for package functions).
func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// onlyReachableFromBarriers reports whether every declared-function
// caller chain of n passes through a barrier-named enclave function.
// A function with no module callers at all (dead or exported API) is
// NOT exempt: nothing proves a drain wraps it.
func onlyReachableFromBarriers(g *CallGraph, n *CGNode) bool {
	seen := map[*CGNode]bool{n: true}
	var walk func(c *CGNode) bool
	walk = func(c *CGNode) bool {
		callers := g.In[c]
		if len(callers) == 0 {
			return false
		}
		for _, e := range callers {
			caller := e.Caller.Root()
			if seen[caller] {
				continue
			}
			seen[caller] = true
			if caller.Fn != nil && isBarrierNode(g.mod, caller) {
				continue
			}
			if !walk(caller) {
				return false
			}
		}
		return true
	}
	return walk(n)
}
