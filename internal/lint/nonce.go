package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkNonce implements nonce-hygiene: the nonce handed to an AEAD
// Seal/Open must never be a constant, a reused package-level variable, or
// a never-written zero buffer. Legitimate nonces are freshly drawn from
// crypto/rand, written by a counter/encoding helper, or carried in from
// the peer's data (Open's nonce travels with the ciphertext).
//
// The analysis is a conservative same-function approximation: a local
// nonce buffer is "fresh" once it is passed to crypto/rand.Read,
// io.ReadFull(rand.Reader, ...), an encoding/binary Put helper, or copy,
// or once it is assigned from any non-make call, parameter, field, or
// slice of incoming data. What remains — literals, constants,
// package-level variables, and zero-initialized buffers used directly —
// is exactly the catastrophic-reuse surface of GCM (§VI-A).
func checkNonce(m *Module, p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	var out []Finding
	for _, fn := range packageFuncs(p) {
		fresh := freshNonceSources(p, fn.body)
		ast.Inspect(fn.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			nonce, op, ok := aeadNonceArg(p, call)
			if !ok {
				return true
			}
			if msg, bad := classifyNonce(p, fn, fresh, nonce, op); bad {
				out = append(out, Finding{
					Pos:  p.Fset.Position(nonce.Pos()),
					Rule: RuleNonce,
					Msg:  msg,
				})
			}
			return true
		})
	}
	return out
}

// aeadNonceArg reports whether call is an AEAD Seal/Open method call
// (four []byte parameters, crypto/cipher.AEAD shape) and returns its
// nonce argument.
func aeadNonceArg(p *Package, call *ast.CallExpr) (ast.Expr, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	op := sel.Sel.Name
	if op != "Seal" && op != "Open" {
		return nil, "", false
	}
	fn := calleeFunc(p, call)
	if fn == nil {
		return nil, "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Variadic() {
		return nil, "", false
	}
	params := sig.Params()
	if params.Len() != 4 {
		return nil, "", false
	}
	for i := 0; i < 4; i++ {
		if !isByteSlice(params.At(i).Type()) {
			return nil, "", false
		}
	}
	res := sig.Results()
	switch op {
	case "Seal":
		if res.Len() != 1 || !isByteSlice(res.At(0).Type()) {
			return nil, "", false
		}
	case "Open":
		if res.Len() != 2 || !isByteSlice(res.At(0).Type()) || !isErrorType(res.At(1).Type()) {
			return nil, "", false
		}
	}
	if len(call.Args) != 4 {
		return nil, "", false
	}
	return call.Args[1], op, true
}

// freshNonceSources scans a function body for buffers that acquire
// entropy or structured (counter) content, keyed by rendered expression
// text of the buffer base (so rand.Read(ctx.IV[:]) marks "ctx.IV").
func freshNonceSources(p *Package, body *ast.BlockStmt) map[string]bool {
	fresh := make(map[string]bool)
	mark := func(e ast.Expr) {
		if t := exprText(p, baseExpr(e)); t != "" {
			fresh[t] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "copy" && len(call.Args) == 2 {
				mark(call.Args[0]) // contents inherited from elsewhere
			}
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			pkgPath := ""
			if fn := calleeFunc(p, call); fn != nil && fn.Pkg() != nil {
				pkgPath = fn.Pkg().Path()
			}
			switch {
			case pkgPath == "crypto/rand" && name == "Read":
				mark(call.Args[0])
			case pkgPath == "io" && name == "ReadFull" && len(call.Args) == 2 &&
				strings.Contains(exprText(p, call.Args[0]), "rand.Reader"):
				mark(call.Args[1])
			case pkgPath == "encoding/binary" && strings.HasPrefix(name, "Put"):
				mark(call.Args[0]) // counter-style nonce construction
			}
		}
		return true
	})
	return fresh
}

// classifyNonce decides whether a nonce expression is acceptable.
func classifyNonce(p *Package, fn funcScope, fresh map[string]bool, nonce ast.Expr, op string) (string, bool) {
	e := ast.Unparen(nonce)

	// Type conversions ([]byte("...")): recurse into the operand.
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
			return classifyNonce(p, fn, fresh, call.Args[0], op)
		}
		return "", false // helper call: derives the nonce elsewhere
	}

	switch e.(type) {
	case *ast.BasicLit, *ast.CompositeLit:
		return "constant " + op + " nonce: a fixed nonce destroys AEAD security on the second use", true
	}

	base := baseExpr(e)
	if _, ok := base.(*ast.CallExpr); ok {
		return "", false // nonce produced by a helper call
	}
	obj := objectOf(p, base)
	if obj == nil {
		return "", false
	}
	if _, isConst := obj.(*types.Const); isConst {
		return "constant " + op + " nonce: a fixed nonce destroys AEAD security on the second use", true
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return "", false
	}
	if p.Types != nil && v.Parent() == p.Types.Scope() {
		return "package-level variable " + v.Name() + " reused as " + op + " nonce; derive a fresh nonce per call", true
	}
	if v.IsField() || isParamOf(p, fn, v) {
		// Fields and parameters carry data whose freshness is the
		// producer's responsibility (checked at its own definition site).
		return "", false
	}
	if fresh[exprText(p, base)] {
		return "", false
	}
	if localIsDataDerived(p, fn.body, v) {
		return "", false
	}
	return "nonce " + v.Name() + " is not derived from crypto/rand or a counter helper (zero buffer used directly)", true
}

// isParamOf reports whether v is a parameter (or receiver) of the
// function declaration enclosing the use.
func isParamOf(p *Package, fn funcScope, v *types.Var) bool {
	if fn.decl == nil || p.Info == nil {
		return false
	}
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if p.Info.Defs[name] == v {
					return true
				}
			}
		}
		return false
	}
	return check(fn.decl.Recv) || check(fn.decl.Type.Params) || check(fn.decl.Type.Results)
}

// localIsDataDerived reports whether local variable v is ever assigned
// from something other than a zero-initializing make/new or literal: a
// function call, a parameter, a field, or a slice of incoming data.
func localIsDataDerived(p *Package, body *ast.BlockStmt, v *types.Var) bool {
	derived := false
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || derived {
			return !derived
		}
		for i, lhs := range assign.Lhs {
			if objectOf(p, baseExpr(lhs)) != v {
				continue
			}
			if i >= len(assign.Rhs) { // multi-value: x, err := f()
				if len(assign.Rhs) == 1 {
					if rhs, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr); ok && !isZeroAlloc(rhs) {
						derived = true
					}
				}
				continue
			}
			if rhsDerivesData(p, assign.Rhs[i]) {
				derived = true
			}
		}
		return !derived
	})
	return derived
}

// isZeroAlloc reports a make/new builtin call (zero-initialized buffer).
func isZeroAlloc(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && (id.Name == "make" || id.Name == "new")
}

// rhsDerivesData reports whether an assignment RHS carries real data
// (anything but a fresh zero allocation or a literal).
func rhsDerivesData(p *Package, rhs ast.Expr) bool {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		return !isZeroAlloc(e)
	case *ast.BasicLit, *ast.CompositeLit:
		return false
	default:
		return true // param, field, slice expr, selector, ...
	}
}
