package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// loadFixtureModule is analyzeFixture's sibling for tests that need the
// Module itself (call graph, summaries) rather than lint findings.
func loadFixtureModule(t *testing.T, files map[string]string) *Module {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module fixture\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	return m
}

var callGraphFixture = map[string]string{
	"a/a.go": `package a

func helper() {}

func Entry() {
	helper()
	f := func() {
		helper()
	}
	f()
	go helper()
}
`,
	"b/b.go": `package b

import "fixture/a"

type T struct{}

func (t *T) Run() {
	a.Entry()
}

func Use(t *T) {
	g := t.Run
	g()
}
`,
}

// TestCallGraphGolden pins the graph construction: direct calls,
// literal definition refs, calls from inside literals, cross-package
// calls, and method-value references — each exactly once (deduped).
func TestCallGraphGolden(t *testing.T) {
	m := loadFixtureModule(t, callGraphFixture)
	got := m.callGraph().DumpEdges()
	want := []string{
		"a.Entry -> a.Entry$1 [ref]",
		"a.Entry -> a.helper",
		"a.Entry$1 -> a.helper",
		"b.(T).Run -> a.Entry",
		"b.Use -> b.(T).Run [ref]",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DumpEdges:\n got %q\nwant %q", got, want)
	}
}

func nodeByName(t *testing.T, g *CallGraph, name string) *CGNode {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("no node named %s", name)
	return nil
}

func TestCallGraphReaches(t *testing.T) {
	m := loadFixtureModule(t, callGraphFixture)
	g := m.callGraph()
	entry := nodeByName(t, g, "a.Entry")
	helper := nodeByName(t, g, "a.helper")
	use := nodeByName(t, g, "b.Use")
	run := nodeByName(t, g, "b.(T).Run")

	isHelper := func(n *CGNode) bool { return n == helper }
	if !g.Reaches(entry, false, map[*CGNode]int8{}, isHelper) {
		t.Error("Entry should reach helper over call edges")
	}
	if g.Reaches(helper, true, map[*CGNode]int8{}, func(n *CGNode) bool { return n == entry }) {
		t.Error("helper should not reach Entry")
	}
	// Use only *references* Run (method value): reachable over refs,
	// not over pure call edges.
	isRun := func(n *CGNode) bool { return n == run }
	if g.Reaches(use, false, map[*CGNode]int8{}, isRun) {
		t.Error("Use -> Run is a ref edge; call-only traversal should not cross it")
	}
	if !g.Reaches(use, true, map[*CGNode]int8{}, isRun) {
		t.Error("Use should reach Run when refs are traversed")
	}
}
