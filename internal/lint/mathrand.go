package lint

import (
	"strconv"
)

// checkMathRand implements no-math-rand: math/rand (v1 or v2) may only
// appear in _test.go files and in the synthetic-workload packages
// internal/workload and internal/bench. The crypto-bearing packages must
// use crypto/rand exclusively — a math/rand nonce or key is the classic
// catastrophic AEAD failure.
func checkMathRand(m *Module, p *Package) []Finding {
	rel := relDir(m, p)
	if mathRandExemptDirs[rel] {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		if f.Test {
			continue
		}
		for _, spec := range f.AST.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if path != "math/rand" && path != "math/rand/v2" {
				continue
			}
			msg := "import of " + path + " is forbidden outside _test.go files and internal/workload, internal/bench"
			if cryptoBearingDirs[rel] {
				msg = "crypto-bearing package imports " + path + "; key and nonce material must come from crypto/rand exclusively"
			}
			out = append(out, Finding{
				Pos:  p.Fset.Position(spec.Pos()),
				Rule: RuleMathRand,
				Msg:  msg,
			})
		}
	}
	return out
}
