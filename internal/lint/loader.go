package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// File is one parsed source file of a package.
type File struct {
	// Path is the absolute on-disk path ("fixture.go" for in-memory
	// fixtures).
	Path string
	AST  *ast.File
	// Test reports a _test.go file. Test files are parsed so file-level
	// rules (no-math-rand) can honor their exemption, but they are not
	// type-checked and type-aware rules skip them.
	Test bool
}

// Package is one loaded, type-checked package of the module.
type Package struct {
	// ImportPath is the full import path (module path + relative dir).
	ImportPath string
	Fset       *token.FileSet
	// Files holds every parsed file, including _test.go files.
	Files []*File
	// Syntax holds the ASTs of the non-test files, in the order they were
	// type-checked.
	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// RelPath returns p's import path relative to the module root ("" for the
// root package itself), so rules can match directories like
// "internal/workload" without hard-coding the module name.
func (p *Package) RelPath(module string) string {
	if p.ImportPath == module {
		return ""
	}
	return strings.TrimPrefix(p.ImportPath, module+"/")
}

// Module is the loaded view of the repository: every package, parsed and
// type-checked with only the standard library's go/* toolchain packages.
type Module struct {
	// Path is the module path from go.mod.
	Path     string
	Root     string
	Fset     *token.FileSet
	Packages []*Package

	// Lazily built interprocedural analysis state, shared by the
	// cross-function rules (see callgraph.go and taint.go).
	cg    *CallGraph
	taint *taintState
	// Cached module-wide findings of the graph rules (computed once,
	// handed out per package by the Checker shims).
	lockedF, dirtyF, spanF *[]Finding
}

// LoadModule parses and type-checks every package under root (the
// directory containing go.mod). Standard-library imports are resolved by
// the stdlib source importer; module-internal imports are resolved against
// the packages being loaded, in dependency order.
func LoadModule(root string) (*Module, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	pkgs := make(map[string]*Package) // import path -> parsed package
	for _, dir := range dirs {
		pkg, err := parseDir(fset, root, modPath, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs[pkg.ImportPath] = pkg
		}
	}

	order, err := topoSort(pkgs, modPath)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{
		module: modPath,
		pkgs:   make(map[string]*types.Package),
		std:    importer.ForCompiler(fset, "source", nil),
	}
	for _, pkg := range order {
		if err := typeCheck(fset, imp, pkg); err != nil {
			return nil, fmt.Errorf("%s: %w", pkg.ImportPath, err)
		}
		imp.pkgs[pkg.ImportPath] = pkg.Types
	}

	return &Module{Path: modPath, Root: root, Fset: fset, Packages: order}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			if p != "" {
				return strings.Trim(p, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// packageDirs walks root collecting directories that contain .go files,
// skipping VCS metadata, testdata, and hidden directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: walking %s: %w", root, err)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses every .go file in dir into a Package (nil if the
// directory holds no buildable primary files).
func parseDir(fset *token.FileSet, root, modPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	importPath := modPath
	if rel != "." {
		importPath = modPath + "/" + filepath.ToSlash(rel)
	}

	pkg := &Package{ImportPath: importPath, Fset: fset}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		pkg.Files = append(pkg.Files, &File{
			Path: path,
			AST:  f,
			Test: strings.HasSuffix(name, "_test.go"),
		})
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	for _, f := range pkg.Files {
		if !f.Test {
			pkg.Syntax = append(pkg.Syntax, f.AST)
		}
	}
	if len(pkg.Syntax) == 0 {
		return nil, nil // test-only directory
	}
	return pkg, nil
}

// fileImports returns the import paths of a package's primary files.
func fileImports(pkg *Package) []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range pkg.Syntax {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			out = append(out, path)
		}
	}
	return out
}

// topoSort orders packages so every module-internal import precedes its
// importer.
func topoSort(pkgs map[string]*Package, modPath string) ([]*Package, error) {
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int)
	var order []*Package
	var visit func(path string, stack []string) error
	visit = func(path string, stack []string) error {
		pkg, ok := pkgs[path]
		if !ok {
			return nil // stdlib or external: handled by the importer
		}
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle: %s", strings.Join(append(stack, path), " -> "))
		}
		state[path] = visiting
		for _, imp := range fileImports(pkg) {
			if imp == modPath || strings.HasPrefix(imp, modPath+"/") {
				if err := visit(imp, append(stack, path)); err != nil {
					return err
				}
			}
		}
		state[path] = done
		order = append(order, pkg)
		return nil
	}
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal imports from already checked
// packages and everything else from the stdlib source importer.
type moduleImporter struct {
	module string
	pkgs   map[string]*types.Package
	std    types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	if path == m.module || strings.HasPrefix(path, m.module+"/") {
		return nil, fmt.Errorf("module package %s not loaded (import cycle?)", path)
	}
	return m.std.Import(path)
}

// typeCheck runs go/types over a package's primary files.
func typeCheck(fset *token.FileSet, imp types.Importer, pkg *Package) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkg.ImportPath, fset, pkg.Syntax, info)
	if err != nil {
		return err
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}
