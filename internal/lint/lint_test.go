package lint

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// analyzeFixture writes the given files into a temp module named
// "fixture", loads it through the real loader (stdlib source importer and
// all), and returns the analysis result. Keys are module-relative paths
// like "internal/enclave/x.go".
func analyzeFixture(t *testing.T, files map[string]string) *Result {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module fixture\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Run(root)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// findingsFor filters findings to one rule, formatted "file:line".
func findingsFor(res *Result, rule string) []string {
	var out []string
	for _, f := range res.Findings {
		if f.Rule == rule {
			out = append(out, filepath.Base(f.Pos.Filename)+":"+strconv.Itoa(f.Pos.Line))
		}
	}
	return out
}

// expect asserts the rule fired exactly at the given file:line positions.
func expect(t *testing.T, res *Result, rule string, want ...string) {
	t.Helper()
	got := findingsFor(res, rule)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d finding(s) %v, want %v\nall findings: %v",
			rule, len(got), got, want, res.Findings)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s: finding %d at %s, want %s", rule, i, got[i], want[i])
		}
	}
}

func TestFindingString(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"internal/enclave/x.go": `package enclave
import "math/rand"
var _ = rand.Int
`,
	})
	if len(res.Findings) != 1 {
		t.Fatalf("findings = %v, want 1", res.Findings)
	}
	s := res.Findings[0].String()
	if !strings.Contains(s, "x.go:2: [no-math-rand]") {
		t.Fatalf("String() = %q, want file:line: [RULE] form", s)
	}
}

func TestSuppressionDirective(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"internal/enclave/x.go": `package enclave
//lint:ignore no-math-rand fixture exercises the directive
import "math/rand"
var _ = rand.Int
`,
	})
	expect(t, res, RuleMathRand) // suppressed
	if res.Suppressed != 1 {
		t.Fatalf("Suppressed = %d, want 1", res.Suppressed)
	}
}

func TestSuppressionSameLine(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"internal/enclave/x.go": `package enclave
import "math/rand" //lint:ignore no-math-rand same-line placement
var _ = rand.Int
`,
	})
	expect(t, res, RuleMathRand)
	if res.Suppressed != 1 {
		t.Fatalf("Suppressed = %d, want 1", res.Suppressed)
	}
}

func TestSuppressionWrongRuleDoesNotApply(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"internal/enclave/x.go": `package enclave
//lint:ignore nonce-hygiene wrong rule named
import "math/rand"
var _ = rand.Int
`,
	})
	expect(t, res, RuleMathRand, "x.go:3")
	if res.Suppressed != 0 {
		t.Fatalf("Suppressed = %d, want 0", res.Suppressed)
	}
}

func TestMalformedDirectiveReported(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"a/x.go": `package a
//lint:ignore
func F() {}
`,
		"b/x.go": `package b
//lint:ignore no-such-rule because
func F() {}
`,
	})
	got := findingsFor(res, RuleDirective)
	if len(got) != 2 {
		t.Fatalf("directive findings = %v, want 2", res.Findings)
	}
}
