package lint

import "testing"

// dirtyFixtureMetadata is the minimal internal/metadata the
// dirty-before-flush rule recognizes (Dirnode/Filenode mutators from
// config.go's metadataMutators, plus a plain field for write tests).
const dirtyFixtureMetadata = `package metadata

type Dirnode struct {
	Count int
}

func (d *Dirnode) Insert(name string) {}

func (d *Dirnode) Remove(name string) {}
`

func TestDirtyMutatorWithoutBarrier(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"internal/metadata/m.go": dirtyFixtureMetadata,
		"internal/enclave/x.go": `package enclave

import "fixture/internal/metadata"

type E struct{}

func (e *E) badInsert(d *metadata.Dirnode) {
	d.Insert("entry")
}
`,
	})
	expect(t, res, RuleDirtyFlush, "x.go:8")
}

func TestDirtyMutatorReachesBarrier(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"internal/metadata/m.go": dirtyFixtureMetadata,
		"internal/enclave/x.go": `package enclave

import "fixture/internal/metadata"

type E struct{}

func (e *E) markDirnodeOp(d *metadata.Dirnode) {}

func (e *E) goodInsert(d *metadata.Dirnode) {
	d.Insert("entry")
	e.markDirnodeOp(d)
}
`,
	})
	expect(t, res, RuleDirtyFlush)
}

// TestDirtyMutationInsideBarrierMachinery: the flush path itself
// mutates nodes (re-encoding, applying staged ops); functions that are
// part of the barrier machinery are exempt by name, and so are helpers
// reachable only from them.
func TestDirtyMutationInsideBarrierMachinery(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"internal/metadata/m.go": dirtyFixtureMetadata,
		"internal/enclave/x.go": `package enclave

import "fixture/internal/metadata"

type E struct{}

func (e *E) flushDirnode(d *metadata.Dirnode) {
	d.Insert("applied")
	e.applyStaged(d)
}

func (e *E) applyStaged(d *metadata.Dirnode) {
	d.Remove("staged")
}
`,
	})
	expect(t, res, RuleDirtyFlush)
}

func TestDirtyFieldWriteWithoutBarrier(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"internal/metadata/m.go": dirtyFixtureMetadata,
		"internal/enclave/x.go": `package enclave

import "fixture/internal/metadata"

type E struct{}

func (e *E) bumpCount(d *metadata.Dirnode) {
	d.Count++
}
`,
	})
	expect(t, res, RuleDirtyFlush, "x.go:8")
}

// TestDirtyRuleScopedToEnclave: the same mutation outside
// internal/enclave is not this rule's business.
func TestDirtyRuleScopedToEnclave(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"internal/metadata/m.go": dirtyFixtureMetadata,
		"internal/tools/x.go": `package tools

import "fixture/internal/metadata"

func Rebuild(d *metadata.Dirnode) {
	d.Insert("rebuilt")
}
`,
	})
	expect(t, res, RuleDirtyFlush)
}
