package lint

// Call graph construction for the interprocedural rules (DESIGN.md §8.2).
//
// Nodes are declared functions and methods (identified by their
// *types.Func), function literals (one node per *ast.FuncLit, linked to
// the lexically enclosing node), and bodyless externals: stdlib
// functions and interface methods referenced by module code. Edges come
// in two flavours:
//
//   - call edges, from a syntactic call expression whose callee
//     resolves statically (package functions, methods, and interface
//     methods — the interface method itself is the callee node, which
//     over-approximates dynamic dispatch in the direction reachability
//     rules need);
//   - ref edges, recorded wherever a function is *mentioned* without
//     being called: method values, functions passed as arguments or
//     assigned to variables, and every function literal at its
//     definition site. A ref is a possible future call, so reachability
//     queries may traverse them.
//
// The graph is deliberately context-insensitive: one node per function,
// edges unioned over every call site. That is the right precision/cost
// point for invariant rules (span-coverage, locked-callgraph,
// dirty-before-flush) and for the taint engine's summary worklist,
// which re-walks bodies itself and only needs caller sets here.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CGNode is one function in the call graph.
type CGNode struct {
	// Fn is the declared function or method, nil for function literals.
	// For out-of-module functions (stdlib, interface methods) Fn is set
	// but Body is nil.
	Fn *types.Func
	// Lit is the literal this node represents, nil for declared
	// functions.
	Lit *ast.FuncLit
	// Pkg is the module package holding the body (nil for externals).
	Pkg *Package
	// Encl is the lexically enclosing node, set only for literals.
	Encl *CGNode
	// Body is the function body; nil for externals and interface
	// methods.
	Body *ast.BlockStmt
	// Name is the stable display name: "internal/enclave.Touch",
	// "internal/enclave.(Enclave).drainLocked", or
	// "internal/enclave.SyncMetadata$1" for literals.
	Name string
	// Decl is the enclosing *ast.FuncDecl for declared module
	// functions (nil otherwise).
	Decl *ast.FuncDecl
	pos  token.Pos
}

// External reports a node with no analyzable body (stdlib function or
// interface method).
func (n *CGNode) External() bool { return n.Body == nil }

// Root returns the outermost declared function lexically enclosing n
// (n itself when it is not a literal).
func (n *CGNode) Root() *CGNode {
	for n.Encl != nil {
		n = n.Encl
	}
	return n
}

// CGEdge is one caller→callee relationship.
type CGEdge struct {
	Caller, Callee *CGNode
	// Site is the call expression, the referencing identifier, or the
	// function literal.
	Site ast.Node
	// Ref marks a reference (possible call) rather than a direct call.
	Ref bool
}

// CallGraph is the module-wide graph.
type CallGraph struct {
	mod   *Module
	byFn  map[*types.Func]*CGNode
	byLit map[*ast.FuncLit]*CGNode
	Nodes []*CGNode
	Out   map[*CGNode][]*CGEdge
	In    map[*CGNode][]*CGEdge
}

// callGraph builds (and caches) the module's call graph.
func (m *Module) callGraph() *CallGraph {
	if m.cg != nil {
		return m.cg
	}
	g := &CallGraph{
		mod:   m,
		byFn:  make(map[*types.Func]*CGNode),
		byLit: make(map[*ast.FuncLit]*CGNode),
		Out:   make(map[*CGNode][]*CGEdge),
		In:    make(map[*CGNode][]*CGEdge),
	}
	for _, p := range m.Packages {
		if p.Info == nil {
			continue
		}
		for _, file := range p.Syntax {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := g.ensureFn(fn)
				node.Pkg, node.Body, node.Decl, node.pos = p, fd.Body, fd, fd.Pos()
				g.walkBody(p, node, fd.Body)
			}
		}
	}
	m.cg = g
	return g
}

// NodeOf returns the graph node of a declared function, or nil.
func (g *CallGraph) NodeOf(fn *types.Func) *CGNode {
	return g.byFn[fn]
}

// ensureFn interns the node for a declared (or external) function.
func (g *CallGraph) ensureFn(fn *types.Func) *CGNode {
	if n, ok := g.byFn[fn]; ok {
		return n
	}
	n := &CGNode{Fn: fn, Name: g.fnName(fn), pos: fn.Pos()}
	g.byFn[fn] = n
	g.Nodes = append(g.Nodes, n)
	return n
}

// fnName renders the stable display name of a declared function.
func (g *CallGraph) fnName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
		if rel := strings.TrimPrefix(pkg, g.mod.Path+"/"); rel != pkg {
			pkg = rel
		} else if pkg == g.mod.Path {
			pkg = "."
		}
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			name = "(" + named.Obj().Name() + ")." + name
		} else if iface, ok := recv.Underlying().(*types.Interface); ok && iface != nil {
			name = "(interface)." + name
		}
	}
	if pkg == "" {
		return name
	}
	return pkg + "." + name
}

// walkBody records every call and function reference in body, with ctx
// as the calling node; function literals become child nodes walked in
// their own context.
func (g *CallGraph) walkBody(p *Package, ctx *CGNode, body *ast.BlockStmt) {
	// Identifiers appearing as the operator of a direct call: these get
	// call edges, so the generic ident pass must not double-record them
	// as refs.
	callIdents := make(map[*ast.Ident]bool)
	litIndex := 0
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			litIndex++
			child := g.ensureLit(p, ctx, v, litIndex)
			g.addEdge(&CGEdge{Caller: ctx, Callee: child, Site: v, Ref: true})
			g.walkBody(p, child, v.Body)
			return false
		case *ast.CallExpr:
			switch fun := ast.Unparen(v.Fun).(type) {
			case *ast.Ident:
				callIdents[fun] = true
			case *ast.SelectorExpr:
				callIdents[fun.Sel] = true
			case *ast.FuncLit:
				// Immediately-invoked literal: the FuncLit case adds the
				// node and walks it; record the direct call too.
				litIndex++
				child := g.ensureLit(p, ctx, fun, litIndex)
				litIndex-- // ensureLit is idempotent; keep numbering stable
				g.addEdge(&CGEdge{Caller: ctx, Callee: child, Site: v})
			}
			if fn := calleeFunc(p, v); fn != nil {
				g.addEdge(&CGEdge{Caller: ctx, Callee: g.ensureFn(fn), Site: v})
			}
			return true
		case *ast.Ident:
			if callIdents[v] {
				return true
			}
			if fn, ok := p.Info.Uses[v].(*types.Func); ok {
				g.addEdge(&CGEdge{Caller: ctx, Callee: g.ensureFn(fn), Site: v, Ref: true})
			}
			return true
		}
		return true
	})
}

// ensureLit interns the node of a function literal.
func (g *CallGraph) ensureLit(p *Package, encl *CGNode, lit *ast.FuncLit, idx int) *CGNode {
	if n, ok := g.byLit[lit]; ok {
		return n
	}
	n := &CGNode{
		Lit:  lit,
		Pkg:  p,
		Encl: encl,
		Body: lit.Body,
		Name: fmt.Sprintf("%s$%d", encl.Name, idx),
		pos:  lit.Pos(),
	}
	g.byLit[lit] = n
	g.Nodes = append(g.Nodes, n)
	return n
}

func (g *CallGraph) addEdge(e *CGEdge) {
	g.Out[e.Caller] = append(g.Out[e.Caller], e)
	g.In[e.Callee] = append(g.In[e.Callee], e)
}

// Reaches reports whether target is reachable from start over call
// edges (and ref edges when refs is true). memo carries tri-state marks
// across queries with the same predicate: share one map per rule, not
// across rules.
func (g *CallGraph) Reaches(start *CGNode, refs bool, memo map[*CGNode]int8, target func(*CGNode) bool) bool {
	const (
		unknown  = 0
		visiting = 1
		yes      = 2
		no       = 3
	)
	var dfs func(n *CGNode) bool
	dfs = func(n *CGNode) bool {
		switch memo[n] {
		case yes:
			return true
		case no, visiting:
			return false
		}
		if target(n) {
			memo[n] = yes
			return true
		}
		memo[n] = visiting
		for _, e := range g.Out[n] {
			if e.Ref && !refs {
				continue
			}
			if dfs(e.Callee) {
				memo[n] = yes
				return true
			}
		}
		memo[n] = no
		return false
	}
	return dfs(start)
}

// DumpEdges renders the graph as sorted "caller -> callee [ref]" lines
// for golden tests, restricted to edges whose caller lives in the
// module.
func (g *CallGraph) DumpEdges() []string {
	var out []string
	for n, edges := range g.Out {
		if n.Pkg == nil {
			continue
		}
		for _, e := range edges {
			line := n.Name + " -> " + e.Callee.Name
			if e.Ref {
				line += " [ref]"
			}
			out = append(out, line)
		}
	}
	sort.Strings(out)
	// Dedup: one logical edge can be recorded from several sites.
	var uniq []string
	for _, l := range out {
		if len(uniq) == 0 || uniq[len(uniq)-1] != l {
			uniq = append(uniq, l)
		}
	}
	return uniq
}
