package lint

import "testing"

func TestCryptoErr(t *testing.T) {
	cases := []struct {
		name string
		path string
		src  string // //WANT marks expected findings
	}{
		{
			name: "rand.Read error dropped to blank",
			path: "internal/metadata/x.go",
			src: `package metadata
import "crypto/rand"
func F(b []byte) {
	_, _ = rand.Read(b) //WANT
}
`,
		},
		{
			name: "rand.Read as bare statement",
			path: "internal/metadata/x.go",
			src: `package metadata
import "crypto/rand"
func F(b []byte) {
	rand.Read(b) //WANT
}
`,
		},
		{
			name: "AEAD Open error dropped",
			path: "internal/cryptofs/x.go",
			src: `package cryptofs
import (
	"crypto/aes"
	"crypto/cipher"
)
func F(ct []byte) []byte {
	b, err := aes.NewCipher(make([]byte, 16))
	if err != nil {
		panic(err)
	}
	g, err := cipher.NewGCM(b)
	if err != nil {
		panic(err)
	}
	pt, _ := g.Open(nil, ct[:12], ct[12:], nil) //WANT
	return pt
}
`,
		},
		{
			name: "ed25519 Verify result dropped",
			path: "internal/enclave/x.go",
			src: `package enclave
import "crypto/ed25519"
func F(pub ed25519.PublicKey, msg, sig []byte) {
	ed25519.Verify(pub, msg, sig) //WANT
}
`,
		},
		{
			name: "repo crypto package error dropped in deferred call",
			path: "pkg/x.go",
			src: `package pkg
import "fixture/internal/sgx"
func F(e *sgx.E) {
	defer e.Seal(nil) //WANT
}
`,
		},
		{
			name: "checked errors are clean",
			path: "internal/metadata/x.go",
			src: `package metadata
import "crypto/rand"
func F(b []byte) error {
	if _, err := rand.Read(b); err != nil {
		return err
	}
	n, err := rand.Read(b)
	_ = n
	return err
}
`,
		},
		{
			name: "non-crypto errors not this rule's business",
			path: "pkg/x.go",
			src: `package pkg
import "os"
func F() {
	os.Remove("scratch") // unchecked, but not crypto
}
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			files := map[string]string{tc.path: tc.src}
			if tc.name == "repo crypto package error dropped in deferred call" {
				files["internal/sgx/x.go"] = `package sgx
type E struct{}
func (*E) Seal(aad []byte) error { return nil }
`
			}
			res := analyzeFixture(t, files)
			expect(t, res, RuleCryptoErr, wantLines(tc.src)...)
		})
	}
}
