package lint

// buffer-escape: the ownership rules of the pooled chunk-buffer arena
// (internal/parallel.Arena, DESIGN.md §14), machine-checked. A function
// that leases a buffer with Arena.Get/GetSensitive owns it only until
// Release; afterwards the arena hands the same backing array to the
// next leaseholder (and zeroes sensitive ones), so any surviving
// reference reads another lease's bytes — or leaks plaintext into it.
//
// Flagged, per function that leases locally:
//
//   - use after release: any statement mentioning the buffer variable
//     after a non-deferred Release in the same block (a deferred
//     Release is the idiomatic lease scope and is never a violation);
//   - escape via return: returning the *Buf, its .B bytes, or a slice
//     alias of them — the lease ends with the function, so the caller
//     would receive a dangling view into the pool;
//   - escape via retention: assigning the buffer or an alias into a
//     struct field or package-level variable, which outlives the lease.
//
// Handing the bytes to a call (store.Put, conn.Write, gcm.Seal) is
// allowed: the boundary contract requires callees to copy before
// returning, which the arena's pointer-identity tests pin. Closures
// that return the bytes to their lexical encloser (the timedChunkCrypto
// pattern) stay within the lease and are allowed too.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// arenaPkgSuffix identifies the pool's home package; the rule skips it
// (the implementation must touch released buffers to recycle them).
const arenaPkgSuffix = "internal/parallel"

func checkBufferEscape(m *Module, p *Package) []Finding {
	if p.Info == nil || relDir(m, p) == arenaPkgSuffix {
		return nil
	}
	var out []Finding
	for _, fs := range packageFuncs(p) {
		out = append(out, bufferEscapeInFunc(p, fs)...)
	}
	return out
}

func bufferEscapeInFunc(p *Package, fs funcScope) []Finding {
	leased := leasedBufVars(p, fs.body)
	if len(leased) == 0 {
		return nil
	}
	aliases := bufAliases(p, fs.body, leased)
	var out []Finding
	out = append(out, useAfterRelease(p, fs.body, leased)...)
	out = append(out, bufEscapes(p, fs.body, leased, aliases)...)
	return out
}

// leasedBufVars collects the local variables bound to an
// Arena.Get/GetSensitive result anywhere in body.
func leasedBufVars(p *Package, body *ast.BlockStmt) map[*types.Var]bool {
	leased := make(map[*types.Var]bool)
	ast.Inspect(body, func(nd ast.Node) bool {
		as, ok := nd.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isArenaLease(p, call) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if v, ok := objectOf(p, id).(*types.Var); ok {
				leased[v] = true
			}
		}
		return true
	})
	return leased
}

// isArenaLease reports a call to internal/parallel's Arena.Get or
// Arena.GetSensitive.
func isArenaLease(p *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), arenaPkgSuffix) {
		return false
	}
	if fn.Name() != "Get" && fn.Name() != "GetSensitive" {
		return false
	}
	return receiverTypeName(fn) == "Arena"
}

// bufAliases collects simple slice aliases of leased buffers: vars
// assigned from v.B or a slice expression over it.
func bufAliases(p *Package, body *ast.BlockStmt, leased map[*types.Var]bool) map[*types.Var]bool {
	aliases := make(map[*types.Var]bool)
	ast.Inspect(body, func(nd ast.Node) bool {
		as, ok := nd.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !exprIsBufBytes(p, rhs, leased) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if v, ok := objectOf(p, id).(*types.Var); ok {
					aliases[v] = true
				}
			}
		}
		return true
	})
	return aliases
}

// exprIsBufBytes reports an expression that resolves to a leased
// buffer's bytes: v.B, v.B[i:j], v.B[i:j:k], with parens stripped.
// Indexing (v.B[0]) yields a byte value, not an aliasing view, so only
// slice expressions are unwrapped.
func exprIsBufBytes(p *Package, e ast.Expr, leased map[*types.Var]bool) bool {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
			continue
		case *ast.SliceExpr:
			e = v.X
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "B" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := objectOf(p, id).(*types.Var)
	return ok && leased[v]
}

// useAfterRelease scans every statement list for mentions of a leased
// variable after a non-deferred v.Release() in the same list.
func useAfterRelease(p *Package, body *ast.BlockStmt, leased map[*types.Var]bool) []Finding {
	var out []Finding
	ast.Inspect(body, func(nd ast.Node) bool {
		block, ok := nd.(*ast.BlockStmt)
		if !ok {
			return true
		}
		released := make(map[*types.Var]bool)
		for _, stmt := range block.List {
			// Mentions to audit: for an assignment, only the right-hand
			// sides — rebinding the variable (a fresh lease) is the start
			// of a new ownership span, not a use of the old one.
			scopes := []ast.Node{stmt}
			if as, ok := stmt.(*ast.AssignStmt); ok {
				scopes = scopes[:0]
				for _, rhs := range as.Rhs {
					scopes = append(scopes, rhs)
				}
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if v, ok := objectOf(p, id).(*types.Var); ok {
							delete(released, v)
						}
					} else {
						scopes = append(scopes, lhs) // x[i] = ..., s.f = ...
					}
				}
			}
			for v := range released {
				for _, scope := range scopes {
					if site := firstMention(p, scope, v); site != nil {
						out = append(out, Finding{
							Pos:  p.Fset.Position(site.Pos()),
							Rule: RuleBufferEscape,
							Msg:  "use of pooled buffer " + v.Name() + " after Release; the arena may have re-leased its backing array",
						})
						delete(released, v) // one finding per release point
						break
					}
				}
			}
			if v := releasedBufVar(p, stmt, leased); v != nil {
				released[v] = true
			}
		}
		return true
	})
	return out
}

// releasedBufVar returns the leased variable a statement releases via a
// direct (non-deferred) v.Release() call, or nil.
func releasedBufVar(p *Package, stmt ast.Stmt, leased map[*types.Var]bool) *types.Var {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := objectOf(p, id).(*types.Var)
	if !ok || !leased[v] {
		return nil
	}
	return v
}

// firstMention returns the first identifier under n resolving to v.
func firstMention(p *Package, n ast.Node, v *types.Var) ast.Node {
	var site ast.Node
	ast.Inspect(n, func(nd ast.Node) bool {
		if site != nil {
			return false
		}
		if id, ok := nd.(*ast.Ident); ok && p.Info.Uses[id] == v {
			site = id
			return false
		}
		return true
	})
	return site
}

// bufEscapes flags returns and retained assignments of leased buffers
// or their aliases. Returns inside nested function literals are the
// closure handing bytes back to its encloser within the lease — those
// are fine; only the leasing function's own returns end the lease.
func bufEscapes(p *Package, body *ast.BlockStmt, leased, aliases map[*types.Var]bool) []Finding {
	escapee := func(e ast.Expr) (string, bool) {
		if exprIsBufBytes(p, e, leased) {
			return "its bytes", true
		}
		if id, ok := ast.Unparen(baseExpr(e)).(*ast.Ident); ok {
			if v, ok := objectOf(p, id).(*types.Var); ok {
				if leased[v] {
					return v.Name(), true
				}
				if aliases[v] {
					return "alias " + v.Name(), true
				}
			}
		}
		return "", false
	}
	var out []Finding
	flag := func(pos token.Pos, what, how string) {
		out = append(out, Finding{
			Pos:  p.Fset.Position(pos),
			Rule: RuleBufferEscape,
			Msg:  "pooled buffer (" + what + ") escapes " + how + "; the lease ends with this function and the arena will recycle the backing array",
		})
	}
	var walk func(n ast.Node, inLit bool)
	walk = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(nd ast.Node) bool {
			switch v := nd.(type) {
			case *ast.FuncLit:
				if nd != n {
					walk(v.Body, true)
					return false
				}
			case *ast.ReturnStmt:
				if inLit {
					return true
				}
				for _, res := range v.Results {
					if what, ok := escapee(res); ok {
						flag(res.Pos(), what, "via return")
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range v.Lhs {
					if i >= len(v.Rhs) {
						break
					}
					what, ok := escapee(v.Rhs[i])
					if !ok {
						continue
					}
					if sel, isSel := ast.Unparen(lhs).(*ast.SelectorExpr); isSel {
						if fld, isVar := p.Info.Uses[sel.Sel].(*types.Var); isVar && fld.IsField() {
							flag(v.Pos(), what, "into struct field "+sel.Sel.Name)
						}
						continue
					}
					if id, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
						if obj, isVar := objectOf(p, id).(*types.Var); isVar && obj.Parent() == p.Types.Scope() {
							flag(v.Pos(), what, "into package-level variable "+id.Name)
						}
					}
				}
			}
			return true
		})
	}
	walk(body, false)
	return out
}
