package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkCryptoErr implements unchecked-crypto-error: discarding the error
// (or Verify's bool) from a cryptographic call is an error, not a
// warning. A swallowed rand.Read failure silently yields an all-zero
// key; a swallowed Open error accepts forged ciphertext.
func checkCryptoErr(m *Module, p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	var out []Finding
	flag := func(n ast.Node, fn *types.Func, what string) {
		out = append(out, Finding{
			Pos:  p.Fset.Position(n.Pos()),
			Rule: RuleCryptoErr,
			Msg:  what + " of crypto call " + fn.Pkg().Name() + "." + fn.Name() + " discarded; crypto failures must be handled",
		})
	}
	for _, file := range p.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					if fn, what := cryptoResultToCheck(m, p, call); fn != nil {
						flag(stmt, fn, what)
					}
				}
			case *ast.GoStmt:
				if fn, what := cryptoResultToCheck(m, p, stmt.Call); fn != nil {
					flag(stmt, fn, what)
				}
			case *ast.DeferStmt:
				if fn, what := cryptoResultToCheck(m, p, stmt.Call); fn != nil {
					flag(stmt, fn, what)
				}
			case *ast.AssignStmt:
				if len(stmt.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				fn, what := cryptoResultToCheck(m, p, call)
				if fn == nil {
					return true
				}
				// The checked result is the last one; it is discarded when
				// the final LHS is the blank identifier.
				last := stmt.Lhs[len(stmt.Lhs)-1]
				if id, ok := last.(*ast.Ident); ok && id.Name == "_" {
					flag(stmt, fn, what)
				}
			}
			return true
		})
	}
	return out
}

// cryptoResultToCheck reports whether call invokes a crypto-relevant
// function whose final result demands checking, returning that function
// and a description of the discarded result ("error result" / "verification
// result"). The call is crypto-relevant when its callee is defined in a
// crypto/* standard-library package or in one of the repo's key-bearing
// packages.
func cryptoResultToCheck(m *Module, p *Package, call *ast.CallExpr) (*types.Func, string) {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil {
		return nil, ""
	}
	if !cryptoRelevantPkg(m, fn.Pkg().Path()) {
		return nil, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, ""
	}
	res := sig.Results()
	if res.Len() == 0 {
		return nil, ""
	}
	last := res.At(res.Len() - 1).Type()
	if isErrorType(last) {
		return fn, "error result"
	}
	if b, ok := last.Underlying().(*types.Basic); ok && b.Kind() == types.Bool &&
		strings.Contains(fn.Name(), "Verify") {
		return fn, "verification result"
	}
	return nil, ""
}

// cryptoRelevantPkg reports whether a package path holds cryptographic
// code whose errors are security-relevant.
func cryptoRelevantPkg(m *Module, path string) bool {
	if path == "crypto" || strings.HasPrefix(path, "crypto/") {
		return true
	}
	rel := strings.TrimPrefix(path, m.Path+"/")
	return cryptoBearingDirs[rel]
}
