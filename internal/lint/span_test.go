package lint

import "testing"

// spanFixtureObs / spanFixtureBackend are the minimal obs and backend
// packages the span-coverage rule recognizes (Tracer.Begin as the span
// opener, Store methods as the effect).
const spanFixtureObs = `package obs

type Tracer struct{}

type Span struct{}

func (t *Tracer) Begin(name string) *Span { return &Span{} }

func (s *Span) End() {}
`

const spanFixtureBackend = `package backend

type Store struct{}

func (s *Store) Get(name string) ([]byte, error) { return nil, nil }

func (s *Store) Put(name string, data []byte) error { return nil }
`

func TestSpanUncoveredExportedOp(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"internal/obs/o.go":     spanFixtureObs,
		"internal/backend/b.go": spanFixtureBackend,
		"internal/vfs/v.go": `package vfs

import "fixture/internal/backend"

type FS struct {
	st *backend.Store
}

func (f *FS) ReadFile(p string) ([]byte, error) {
	return f.st.Get(p)
}
`,
	})
	expect(t, res, RuleSpan, "v.go:9")
}

func TestSpanCoveredDirectly(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"internal/obs/o.go":     spanFixtureObs,
		"internal/backend/b.go": spanFixtureBackend,
		"internal/vfs/v.go": `package vfs

import (
	"fixture/internal/backend"
	"fixture/internal/obs"
)

type FS struct {
	st *backend.Store
	tr *obs.Tracer
}

func (f *FS) ReadFile(p string) ([]byte, error) {
	sp := f.tr.Begin("vfs.read")
	defer sp.End()
	return f.st.Get(p)
}
`,
	})
	expect(t, res, RuleSpan)
}

// TestSpanCoveredTransitively mirrors the enclave's real shape: the
// exported op routes its work through a wrapper that opens the span
// (e.sgx.Ecall opening "sgx.ecall" in the repo).
func TestSpanCoveredTransitively(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"internal/obs/o.go":     spanFixtureObs,
		"internal/backend/b.go": spanFixtureBackend,
		"internal/vfs/v.go": `package vfs

import (
	"fixture/internal/backend"
	"fixture/internal/obs"
)

type FS struct {
	st *backend.Store
	tr *obs.Tracer
}

func (f *FS) withSpan(name string, fn func() error) error {
	sp := f.tr.Begin(name)
	defer sp.End()
	return fn()
}

func (f *FS) Sync(p string) error {
	return f.withSpan("vfs.sync", func() error {
		return f.st.Put(p, nil)
	})
}
`,
	})
	expect(t, res, RuleSpan)
}

// TestSpanNonEffectfulOpExempt: an exported op that never leaves the
// process needs no span.
func TestSpanNonEffectfulOpExempt(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"internal/obs/o.go":     spanFixtureObs,
		"internal/backend/b.go": spanFixtureBackend,
		"internal/vfs/v.go": `package vfs

type FS struct {
	cached []byte
}

func (f *FS) Cached() []byte {
	return f.cached
}
`,
	})
	expect(t, res, RuleSpan)
}

// TestSpanRuleScopedToConfiguredDirs: effectful exported ops outside
// vfs/enclave/afs (here: a tool package) are not checked.
func TestSpanRuleScopedToConfiguredDirs(t *testing.T) {
	res := analyzeFixture(t, map[string]string{
		"internal/obs/o.go":     spanFixtureObs,
		"internal/backend/b.go": spanFixtureBackend,
		"internal/tools/t.go": `package tools

import "fixture/internal/backend"

func Dump(s *backend.Store) ([]byte, error) {
	return s.Get("everything")
}
`,
	})
	expect(t, res, RuleSpan)
}
