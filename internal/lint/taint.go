package lint

// secret-taint: interprocedural tracking of raw key material into
// observable sinks (DESIGN.md §8.2). The rule mechanizes the DSN'19
// enclave-confidentiality argument one level deeper than
// enclave-boundary: not only may key material not sit on the exported
// ecall surface, it must never *flow* — through any chain of calls —
// into a place the untrusted world can read: formatted errors and log
// output, observability span tags, or bytes uploaded to the untrusted
// store. Flows that pass through a sealing/wrapping/encrypting
// function are clean; producing protected forms is the enclave's job.
//
// The engine is a flow-insensitive worklist over per-function
// summaries:
//
//	flows        param i reaches result j
//	sinkParams   param i reaches a sink inside the function (with the
//	             call chain, for diagnostics)
//	taintedRes   result j carries key material regardless of arguments
//
// Within one function, taint marks are per types.Object and are
// iterated to a local fixpoint; across functions, a summary change
// re-enqueues all callers (via the call graph) until the module
// converges. Struct fields that are *assigned* key material become
// module-global taint roots, so a key stashed in a field in one method
// and logged in another is still caught. Sources are name/type based
// (keyMaterialName, extended per package via taintExtraSources);
// sanitizers and sinks are likewise configurable in config.go.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// paramIdx conventions: receiver is index -1, parameters are 0-based.
// In taintVal bitsets, bit (i+1) encodes param i so the receiver is
// bit 0.
const maxTrackedParams = 62

type taintSrc struct {
	pos  token.Pos
	name string
}

// taintVal is the abstract taint of one value: which of the current
// function's parameters it may derive from, and any locally rooted key
// material sources (named vars/fields or tainted callee results).
type taintVal struct {
	params uint64
	srcs   []taintSrc
}

func (t taintVal) zero() bool { return t.params == 0 && len(t.srcs) == 0 }

func (t taintVal) union(o taintVal) taintVal {
	out := taintVal{params: t.params | o.params}
	out.srcs = append(append([]taintSrc(nil), t.srcs...), o.srcs...)
	if len(out.srcs) > 4 {
		out.srcs = out.srcs[:4] // diagnostics need one witness, not all
	}
	return out
}

func paramBit(i int) uint64 {
	if i < -1 || i >= maxTrackedParams {
		return 0
	}
	return 1 << uint(i+1)
}

// sinkChain describes how a parameter reaches a sink, e.g.
// "fmt.Errorf" or "helper → fmt.Errorf".
type sinkChain struct {
	desc string
	pos  token.Pos
}

// fnSummary is the interprocedural abstract of one function.
type fnSummary struct {
	// flows[j] is the bitset of params flowing into result j.
	flows map[int]uint64
	// sinkParams maps param index (by bit convention) to the sink
	// chain it reaches.
	sinkParams map[int]sinkChain
	// taintedRes marks results that carry key material independent of
	// the arguments, with a description of the source.
	taintedRes map[int]string
}

func newSummary() *fnSummary {
	return &fnSummary{
		flows:      make(map[int]uint64),
		sinkParams: make(map[int]sinkChain),
		taintedRes: make(map[int]string),
	}
}

func (s *fnSummary) equal(o *fnSummary) bool {
	if len(s.flows) != len(o.flows) || len(s.sinkParams) != len(o.sinkParams) ||
		len(s.taintedRes) != len(o.taintedRes) {
		return false
	}
	for k, v := range s.flows {
		if o.flows[k] != v {
			return false
		}
	}
	for k := range s.sinkParams {
		if _, ok := o.sinkParams[k]; !ok {
			return false
		}
	}
	for k := range s.taintedRes {
		if _, ok := o.taintedRes[k]; !ok {
			return false
		}
	}
	return true
}

// taintState is the module-wide fixpoint state.
type taintState struct {
	mod       *Module
	cg        *CallGraph
	summaries map[*types.Func]*fnSummary
	// fields assigned key material anywhere in the module, with a
	// description of where it came from.
	taintedFields map[*types.Var]string
	findings      []Finding
}

// taintAnalysis runs (and caches) the module-wide secret-taint
// fixpoint.
func (m *Module) taintAnalysis() *taintState {
	if m.taint != nil {
		return m.taint
	}
	st := &taintState{
		mod:           m,
		cg:            m.callGraph(),
		summaries:     make(map[*types.Func]*fnSummary),
		taintedFields: make(map[*types.Var]string),
	}
	st.run()
	m.taint = st
	return st
}

// moduleFns returns every declared module function node, in graph
// order.
func (st *taintState) moduleFns() []*CGNode {
	var out []*CGNode
	for _, n := range st.cg.Nodes {
		if n.Decl != nil && n.Pkg != nil {
			out = append(out, n)
		}
	}
	return out
}

func (st *taintState) run() {
	fns := st.moduleFns()
	// Worklist to fixpoint: a summary or field-set change re-enqueues
	// callers (or everyone, for fields — the module is small and field
	// changes are rare).
	inList := make(map[*CGNode]bool)
	var work []*CGNode
	push := func(n *CGNode) {
		if n != nil && !inList[n] && n.Decl != nil {
			inList[n] = true
			work = append(work, n)
		}
	}
	for _, n := range fns {
		push(n)
	}
	for steps := 0; len(work) > 0 && steps < 40*len(fns)+100; steps++ {
		n := work[0]
		work = work[1:]
		inList[n] = false
		sum, fieldsGrew := st.analyzeFn(n, nil)
		old := st.summaries[n.Fn]
		if old == nil || !old.equal(sum) {
			st.summaries[n.Fn] = sum
			for _, e := range st.cg.In[n] {
				push(e.Caller.Root())
			}
		}
		if fieldsGrew {
			for _, f := range fns {
				push(f)
			}
		}
	}
	// Reporting pass: summaries are stable, emit findings once.
	for _, n := range fns {
		st.analyzeFn(n, &st.findings)
	}
}

// fnEnv is the per-function analysis environment.
type fnEnv struct {
	st   *taintState
	pkg  *Package
	node *CGNode
	// paramOf maps a parameter object to its index (receiver -1).
	paramOf map[types.Object]int
	// resultVars maps named result objects to their index.
	resultVars map[types.Object]int
	vars       map[types.Object]taintVal
	sum        *fnSummary
	findings   *[]Finding
	fieldsGrew bool
	changed    bool
	reported   map[token.Pos]bool
}

// analyzeFn computes n's summary under the current module state. When
// findings is non-nil the pass also emits diagnostics.
func (st *taintState) analyzeFn(n *CGNode, findings *[]Finding) (*fnSummary, bool) {
	env := &fnEnv{
		st:         st,
		pkg:        n.Pkg,
		node:       n,
		paramOf:    make(map[types.Object]int),
		resultVars: make(map[types.Object]int),
		vars:       make(map[types.Object]taintVal),
		sum:        newSummary(),
		findings:   findings,
		reported:   make(map[token.Pos]bool),
	}
	sig, _ := n.Fn.Type().(*types.Signature)
	if sig != nil {
		if r := sig.Recv(); r != nil {
			env.paramOf[r] = -1
		}
		for i := 0; i < sig.Params().Len(); i++ {
			env.paramOf[sig.Params().At(i)] = i
		}
		for j := 0; j < sig.Results().Len(); j++ {
			if v := sig.Results().At(j); v.Name() != "" {
				env.resultVars[v] = j
			}
		}
	}
	// Parameters named (or typed) as key material are local sources:
	// the helper itself is where a `rootKey []byte` parameter lives.
	for obj, i := range env.paramOf {
		tv := taintVal{params: paramBit(i)}
		if isSourceObject(env.st.mod, obj) {
			tv.srcs = []taintSrc{{pos: obj.Pos(), name: obj.Name()}}
		}
		env.vars[obj] = tv
	}

	// Local fixpoint: flow-insensitive, so iterate the whole body until
	// the var map stops changing.
	for pass := 0; pass < 8; pass++ {
		env.changed = false
		env.walk(n.Body)
		if !env.changed {
			break
		}
	}
	// Emit on the very last pass only (walk records findings each call;
	// reported dedups within one analyzeFn, and the driver only passes
	// findings!=nil once per function).
	// Named results assigned anywhere contribute to the summary.
	for obj, j := range env.resultVars {
		env.recordResult(j, env.vars[obj])
	}
	return env.sum, env.fieldsGrew
}

// recordResult folds a result value's taint into the summary.
func (env *fnEnv) recordResult(j int, tv taintVal) {
	if tv.params != 0 {
		env.sum.flows[j] |= tv.params
	}
	if len(tv.srcs) > 0 {
		if _, ok := env.sum.taintedRes[j]; !ok {
			env.sum.taintedRes[j] = tv.srcs[0].name
		}
	}
}

func (env *fnEnv) markVar(obj types.Object, tv taintVal) {
	if obj == nil || tv.zero() {
		return
	}
	old := env.vars[obj]
	merged := old.union(tv)
	if merged.params != old.params || len(merged.srcs) != len(old.srcs) {
		env.vars[obj] = merged
		env.changed = true
	}
}

// walk processes every statement in body (including nested function
// literals, whose free-variable flows then land in the same
// environment — a closure formatting its enclosing function's key is
// that function's bug).
func (env *fnEnv) walk(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(nd ast.Node) bool {
		switch v := nd.(type) {
		case *ast.AssignStmt:
			env.assign(v)
		case *ast.ValueSpec:
			env.valueSpec(v)
		case *ast.ReturnStmt:
			env.returnStmt(v)
		case *ast.RangeStmt:
			tv := env.taintOf(v.X)
			if !tv.zero() {
				if id, ok := v.Key.(*ast.Ident); ok {
					env.markVar(env.objOf(id), tv)
				}
				if id, ok := v.Value.(*ast.Ident); ok {
					env.markVar(env.objOf(id), tv)
				}
			}
		case *ast.CallExpr:
			env.checkCall(v)
		}
		return true
	})
}

func (env *fnEnv) objOf(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := env.pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return env.pkg.Info.Uses[id]
}

// assign propagates RHS taint into LHS variables and fields.
func (env *fnEnv) assign(a *ast.AssignStmt) {
	// Tuple-from-call: x, y := f(...) — per-result taint.
	if len(a.Lhs) > 1 && len(a.Rhs) == 1 {
		if call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr); ok {
			for j, lhs := range a.Lhs {
				env.assignOne(lhs, env.callResultTaint(call, j))
			}
			return
		}
		// x, y := m[k], or range forms — fall through pairing zero vals.
	}
	for i, lhs := range a.Lhs {
		if i < len(a.Rhs) {
			rhs := a.Rhs[i]
			tv := env.taintOf(rhs)
			// Compound ops (+=) keep the existing taint; plain = also
			// unions (flow-insensitive over-approximation).
			env.assignOne(lhs, tv)
		}
	}
}

func (env *fnEnv) assignOne(lhs ast.Expr, tv taintVal) {
	if tv.zero() {
		return
	}
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		env.markVar(env.objOf(l), tv)
	case *ast.SelectorExpr:
		// Field store: key material written into a struct field makes
		// the field a module-global taint root (source-rooted taint
		// only; see package comment for the approximation).
		if fld, ok := env.pkg.Info.Uses[l.Sel].(*types.Var); ok && fld.IsField() && len(tv.srcs) > 0 {
			if _, present := env.st.taintedFields[fld]; !present {
				env.st.taintedFields[fld] = tv.srcs[0].name
				env.fieldsGrew = true
				env.changed = true
			}
		}
	case *ast.IndexExpr:
		// buf[i] = k — taint the buffer.
		env.assignOne(l.X, tv)
	case *ast.StarExpr:
		env.assignOne(l.X, tv)
	}
}

func (env *fnEnv) valueSpec(v *ast.ValueSpec) {
	if len(v.Values) == 1 && len(v.Names) > 1 {
		if call, ok := ast.Unparen(v.Values[0]).(*ast.CallExpr); ok {
			for j, name := range v.Names {
				env.markVar(env.pkg.Info.Defs[name], env.callResultTaint(call, j))
			}
			return
		}
	}
	for i, name := range v.Names {
		if i < len(v.Values) {
			env.markVar(env.pkg.Info.Defs[name], env.taintOf(v.Values[i]))
		}
	}
}

func (env *fnEnv) returnStmt(r *ast.ReturnStmt) {
	for j, e := range r.Results {
		env.recordResult(j, env.taintOf(e))
	}
}

// taintOf evaluates the abstract taint of an expression.
func (env *fnEnv) taintOf(e ast.Expr) taintVal {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := env.objOf(v)
		if obj == nil {
			return taintVal{}
		}
		tv := env.vars[obj]
		if isSourceObject(env.st.mod, obj) {
			tv = tv.union(taintVal{srcs: []taintSrc{{pos: v.Pos(), name: obj.Name()}}})
		}
		return tv
	case *ast.SelectorExpr:
		if fld, ok := env.pkg.Info.Uses[v.Sel].(*types.Var); ok && fld.IsField() {
			var tv taintVal
			if isSourceObject(env.st.mod, fld) {
				tv = tv.union(taintVal{srcs: []taintSrc{{pos: v.Sel.Pos(), name: fld.Name()}}})
			}
			if why, ok := env.st.taintedFields[fld]; ok {
				tv = tv.union(taintVal{srcs: []taintSrc{{pos: v.Sel.Pos(), name: fld.Name() + " (holds " + why + ")"}}})
			}
			// Selector chains: x.a.b where x.a is a tainted local.
			tv = tv.union(env.taintOf(v.X))
			return tv
		}
		return taintVal{}
	case *ast.CallExpr:
		return env.callResultTaint(v, 0)
	case *ast.BinaryExpr:
		return env.taintOf(v.X).union(env.taintOf(v.Y))
	case *ast.UnaryExpr:
		return env.taintOf(v.X)
	case *ast.StarExpr:
		return env.taintOf(v.X)
	case *ast.IndexExpr:
		return env.taintOf(v.X)
	case *ast.SliceExpr:
		return env.taintOf(v.X)
	case *ast.CompositeLit:
		var tv taintVal
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			tv = tv.union(env.taintOf(el))
		}
		return tv
	case *ast.TypeAssertExpr:
		return env.taintOf(v.X)
	}
	return taintVal{}
}

// callResultTaint evaluates the taint of result j of a call.
func (env *fnEnv) callResultTaint(call *ast.CallExpr, j int) taintVal {
	// Type conversion: string(key), []byte(key), KeyType(key).
	if tv, ok := env.pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return env.taintOf(call.Args[0])
	}
	// Builtins are *types.Builtin, invisible to calleeFunc: append (and
	// friends that reshape slices) carries its arguments' taint.
	if name, ok := builtinName(env.pkg, call); ok {
		switch name {
		case "append", "min", "max":
			var tv taintVal
			for _, a := range call.Args {
				tv = tv.union(env.taintOf(a))
			}
			return tv
		}
		return taintVal{}
	}
	callee := calleeFunc(env.pkg, call)
	if callee == nil {
		// Calls through function-typed variables are not modelled.
		return taintVal{}
	}
	if isSanitizer(env.st.mod, callee) {
		return taintVal{}
	}
	if prop, ok := intrinsicPropagator(callee); ok {
		var tv taintVal
		for _, ai := range prop.args(len(call.Args)) {
			tv = tv.union(env.taintOf(call.Args[ai]))
		}
		return tv
	}
	sum := env.st.summaries[callee]
	if sum == nil {
		return taintVal{}
	}
	var out taintVal
	if desc, ok := sum.taintedRes[j]; ok {
		out = out.union(taintVal{srcs: []taintSrc{{pos: call.Pos(), name: desc + " via " + callee.Name() + "()"}}})
	}
	if bits := sum.flows[j]; bits != 0 {
		for i := -1; i < len(call.Args); i++ {
			if bits&paramBit(i) == 0 {
				continue
			}
			var argT taintVal
			if i == -1 {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					argT = env.taintOf(sel.X)
				}
			} else if i < len(call.Args) {
				argT = env.taintOf(call.Args[i])
			}
			out = out.union(argT)
		}
		// Variadic callee: bits beyond the last declared param cover
		// every trailing argument (paramBit of the variadic slot).
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Variadic() {
			last := sig.Params().Len() - 1
			if bits&paramBit(last) != 0 {
				for ai := last; ai < len(call.Args); ai++ {
					out = out.union(env.taintOf(call.Args[ai]))
				}
			}
		}
	}
	return out
}

// checkCall handles sink detection and copy()-style statement
// propagation at every call site.
func (env *fnEnv) checkCall(call *ast.CallExpr) {
	// copy(dst, src): taint flows into dst.
	if name, ok := builtinName(env.pkg, call); ok {
		if name == "copy" && len(call.Args) == 2 {
			env.assignOne(call.Args[0], env.taintOf(call.Args[1]))
		}
		return
	}
	callee := calleeFunc(env.pkg, call)
	if callee == nil {
		return
	}
	if isSanitizer(env.st.mod, callee) {
		return
	}

	// Known sink (fmt/log/obs-tag/store-upload)?
	if sink, ok := sinkSpecFor(env.st.mod, callee); ok {
		for _, ai := range sink.args(len(call.Args)) {
			env.flagTainted(call, call.Args[ai], sink.desc, sinkChain{desc: sink.desc, pos: call.Pos()})
		}
		return
	}

	// Module callee whose summary routes a param to a sink.
	sum := env.st.summaries[callee]
	if sum == nil {
		return
	}
	sig, _ := callee.Type().(*types.Signature)
	for i, chain := range sum.sinkParams {
		desc := callee.Name() + " → " + chain.desc
		if i == -1 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				env.flagRecv(call, sel.X, desc, sinkChain{desc: desc, pos: call.Pos()})
			}
			continue
		}
		if sig != nil && sig.Variadic() && i == sig.Params().Len()-1 {
			for ai := i; ai < len(call.Args); ai++ {
				env.flagTainted(call, call.Args[ai], desc, sinkChain{desc: desc, pos: call.Pos()})
			}
			continue
		}
		if i < len(call.Args) {
			env.flagTainted(call, call.Args[i], desc, sinkChain{desc: desc, pos: call.Pos()})
		}
	}
}

// flagTainted reports arg's taint against a sink: locally rooted taint
// becomes a finding at this call; param-rooted taint becomes a summary
// entry so the caller reports at its own site.
func (env *fnEnv) flagTainted(call *ast.CallExpr, arg ast.Expr, sinkDesc string, chain sinkChain) {
	tv := env.taintOf(arg)
	if tv.zero() {
		return
	}
	if tv.params != 0 {
		for i := -1; i < maxTrackedParams-1; i++ {
			if tv.params&paramBit(i) != 0 {
				if _, ok := env.sum.sinkParams[i]; !ok {
					env.sum.sinkParams[i] = chain
					env.changed = true
				}
			}
		}
	}
	if len(tv.srcs) > 0 && env.findings != nil && !env.reported[call.Pos()] {
		env.reported[call.Pos()] = true
		src := tv.srcs[0]
		*env.findings = append(*env.findings, Finding{
			Pos:  env.pkg.Fset.Position(call.Pos()),
			Rule: RuleTaint,
			Msg: "key material '" + src.name + "' flows into " + sinkDesc +
				" in " + env.node.Name + "; route it through a seal/wrap sanitizer or drop it",
		})
	}
}

// flagRecv is flagTainted for a method receiver expression.
func (env *fnEnv) flagRecv(call *ast.CallExpr, recv ast.Expr, sinkDesc string, chain sinkChain) {
	env.flagTainted(call, recv, sinkDesc, chain)
}

// isSourceObject reports whether an object's name or type marks it as
// raw key material, honoring the per-package extensions in
// taintExtraSources.
func isSourceObject(m *Module, obj types.Object) bool {
	if obj == nil {
		return false
	}
	switch obj.(type) {
	case *types.Var, *types.Const:
	default:
		return false
	}
	// Key material is bytes. A numeric or boolean object whose name
	// merely mentions a key — RootKeySize, wrapKeyLen, hasRootKey — is
	// a property *about* a key, safe to format into errors and logs.
	if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&(types.IsNumeric|types.IsBoolean) != 0 {
		return false
	}
	if keyMaterialName(obj.Name()) || keyMaterialType(obj.Type()) {
		return true
	}
	if obj.Pkg() == nil {
		return false
	}
	rel := strings.TrimPrefix(obj.Pkg().Path(), m.Path+"/")
	lower := strings.ToLower(obj.Name())
	for _, pat := range taintExtraSources[rel] {
		if strings.Contains(lower, pat) {
			return true
		}
	}
	return false
}

// propagator describes an external function whose result carries its
// arguments' taint.
type propagator struct {
	args func(n int) []int
}

func allArgs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// intrinsicPropagator returns the propagation shape of well-known
// stdlib helpers.
func intrinsicPropagator(fn *types.Func) (propagator, bool) {
	if fn.Pkg() == nil {
		// Builtins: append carries every argument's taint.
		if fn.Name() == "append" {
			return propagator{args: allArgs}, true
		}
		return propagator{}, false
	}
	key := fn.Pkg().Path() + "." + fn.Name()
	switch key {
	case "encoding/hex.EncodeToString", "encoding/hex.Dump",
		"encoding/base64.StdEncoding.EncodeToString", // not reachable as pkg func; kept for clarity
		"bytes.Clone", "bytes.Join", "bytes.TrimSpace", "bytes.ToLower", "bytes.ToUpper",
		"strings.Join", "strings.ToLower", "strings.ToUpper", "strings.TrimSpace":
		return propagator{args: allArgs}, true
	}
	if fn.Pkg().Path() == "encoding/base64" && strings.HasPrefix(fn.Name(), "Encode") {
		return propagator{args: allArgs}, true
	}
	return propagator{}, false
}

// checkTaint is the per-package Checker shim: the module-wide analysis
// runs once, findings are handed out per owning package.
func checkTaint(m *Module, p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	st := m.taintAnalysis()
	var out []Finding
	for _, f := range st.findings {
		if packageOwnsFile(p, f.Pos.Filename) {
			out = append(out, f)
		}
	}
	return out
}

// packageOwnsFile reports whether a finding's file belongs to p.
func packageOwnsFile(p *Package, filename string) bool {
	for _, f := range p.Files {
		if f.Path == filename {
			return true
		}
	}
	return false
}
