package netsim

import (
	"net"
	"testing"
	"time"
)

func TestTransferCost(t *testing.T) {
	p := Profile{RTT: 10 * time.Millisecond, Bandwidth: 1 << 20} // 1 MiB/s
	// Latency-only component.
	if got := p.TransferCost(0); got != 5*time.Millisecond {
		t.Fatalf("TransferCost(0) = %v, want 5ms", got)
	}
	// 1 MiB at 1 MiB/s adds one second.
	if got := p.TransferCost(1 << 20); got != 5*time.Millisecond+time.Second {
		t.Fatalf("TransferCost(1MiB) = %v", got)
	}
	// Infinite bandwidth charges latency only.
	lat := Profile{RTT: 2 * time.Millisecond}
	if got := lat.TransferCost(1 << 30); got != time.Millisecond {
		t.Fatalf("latency-only TransferCost = %v", got)
	}
}

func TestIsZero(t *testing.T) {
	if !Loopback.IsZero() {
		t.Fatal("Loopback not zero")
	}
	if LAN.IsZero() || WAN.IsZero() {
		t.Fatal("LAN/WAN are zero")
	}
}

func TestWrapZeroProfileIsIdentity(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if Wrap(a, Loopback) != a {
		t.Fatal("zero profile wrapped the connection")
	}
}

func TestWrappedWriteDelays(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	wrapped := Wrap(a, Profile{RTT: 20 * time.Millisecond})
	done := make(chan struct{})
	go func() {
		buf := make([]byte, 5)
		_, _ = b.Read(buf)
		close(done)
	}()

	start := time.Now()
	if _, err := wrapped.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	<-done
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("write completed in %v, want >= 10ms half-RTT", elapsed)
	}
}

func TestDialAndListener(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := NewListener(raw, Profile{RTT: 2 * time.Millisecond})
	defer l.Close()

	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 4)
		if _, err := conn.Read(buf); err != nil {
			return
		}
		_, _ = conn.Write(buf) // echo
	}()

	c, err := Dial(raw.Addr().String(), Profile{RTT: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}
	// Request charged 1ms client-side, response 1ms server-side.
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("echo took %v, want >= 2ms", elapsed)
	}
	if string(buf) != "ping" {
		t.Fatalf("echo = %q", buf)
	}
}
