package netsim

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the deterministic fault-injection layer beneath the AFS
// substrate. A FaultProfile is a *pure function of its seed*: the
// decision for the n-th dial and the n-th write is computed by hashing
// (seed, n), not by stepping shared mutable RNG state. Concurrent
// clients may therefore interleave arbitrarily — which operation lands
// on which schedule slot varies — but the schedule itself (slot →
// fault) is reproducible byte-for-byte from the seed, which is what the
// chaos suite's fixed-seed CI matrix relies on.

// ErrInjected marks failures manufactured by the fault injector, so
// tests can tell injected faults from real ones.
var ErrInjected = errors.New("netsim: injected fault")

// FaultKind enumerates the injectable fault classes.
type FaultKind uint8

const (
	// FaultNone is the no-fault decision.
	FaultNone FaultKind = iota
	// FaultDialRefused fails a Dial outright (server unreachable).
	FaultDialRefused
	// FaultCutConn closes the connection before a write, dropping the
	// frame entirely.
	FaultCutConn
	// FaultTruncateWrite delivers a prefix of the write and then closes
	// the connection — the peer observes a mid-frame cut.
	FaultTruncateWrite
	// FaultLatencySpike delays a write without corrupting it.
	FaultLatencySpike
	// FaultServerRestart is a scripted kill/restart point, surfaced on
	// Injector.Restarts rather than applied to a connection.
	FaultServerRestart
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDialRefused:
		return "dial-refused"
	case FaultCutConn:
		return "cut"
	case FaultTruncateWrite:
		return "truncate"
	case FaultLatencySpike:
		return "spike"
	case FaultServerRestart:
		return "server-restart"
	default:
		return fmt.Sprintf("fault(%d)", uint8(k))
	}
}

// FaultEvent is one scheduled decision.
type FaultEvent struct {
	Kind FaultKind
	// Frac is the fraction of the buffer delivered for truncations,
	// in [0.05, 0.95].
	Frac float64
	// Delay is the injected latency for spikes.
	Delay time.Duration
}

// String renders the event; Schedule concatenates these, so the format
// is part of the reproducibility contract.
func (e FaultEvent) String() string {
	switch e.Kind {
	case FaultTruncateWrite:
		return fmt.Sprintf("truncate(%.3f)", e.Frac)
	case FaultLatencySpike:
		return fmt.Sprintf("spike(%s)", e.Delay)
	default:
		return e.Kind.String()
	}
}

// FaultProfile configures a seeded fault schedule. The zero value
// injects nothing. Probabilities are in [0, 1] and are evaluated
// per-slot: DialRefuse on each dial, and Cut/Truncate/Spike (in that
// precedence order) on each connection write.
type FaultProfile struct {
	Seed int64
	// DialRefuse is the probability a dial attempt is refused.
	DialRefuse float64
	// Cut is the probability a write's connection is severed before any
	// bytes are delivered.
	Cut float64
	// Truncate is the probability a write is delivered as a mid-frame
	// prefix before the connection is severed.
	Truncate float64
	// Spike is the probability a write is delayed by up to SpikeMax.
	Spike float64
	// SpikeMax bounds injected latency spikes; 0 means 2ms.
	SpikeMax time.Duration
	// RestartAfterFaults lists scripted server kill/restart points: a
	// restart signal is emitted when the cumulative injected-fault count
	// first reaches each listed value.
	RestartAfterFaults []int64
}

// IsZero reports whether the profile never injects anything.
func (p FaultProfile) IsZero() bool {
	return p.DialRefuse == 0 && p.Cut == 0 && p.Truncate == 0 && p.Spike == 0 &&
		len(p.RestartAfterFaults) == 0
}

// Distinct per-stream salts keep the dial and write schedules
// independent of each other while sharing one seed.
const (
	dialSalt  = 0xD1A1D1A1D1A1D1A1
	writeSalt = 0x3717371737173717
)

// roll hashes (seed, salt, slot) into three independent uniform values:
// a probability draw and two parameter draws.
func (p FaultProfile) roll(salt, slot uint64) (prob, a, b float64) {
	h := splitmix64(uint64(p.Seed) ^ salt ^ (slot+1)*splitmixGamma)
	prob = float64(h>>11) / (1 << 53)
	h2 := splitmix64(h)
	a = float64(h2>>11) / (1 << 53)
	h3 := splitmix64(h2)
	b = float64(h3>>11) / (1 << 53)
	return prob, a, b
}

// DialFault returns the scheduled decision for the n-th dial (counted
// from zero). It is a pure function of (Seed, n).
func (p FaultProfile) DialFault(n uint64) FaultEvent {
	prob, _, _ := p.roll(dialSalt, n)
	if prob < p.DialRefuse {
		return FaultEvent{Kind: FaultDialRefused}
	}
	return FaultEvent{Kind: FaultNone}
}

// WriteFault returns the scheduled decision for the n-th connection
// write (counted from zero). It is a pure function of (Seed, n).
func (p FaultProfile) WriteFault(n uint64) FaultEvent {
	prob, a, _ := p.roll(writeSalt, n)
	switch {
	case prob < p.Cut:
		return FaultEvent{Kind: FaultCutConn}
	case prob < p.Cut+p.Truncate:
		return FaultEvent{Kind: FaultTruncateWrite, Frac: 0.05 + 0.9*a}
	case prob < p.Cut+p.Truncate+p.Spike:
		bound := p.SpikeMax
		if bound <= 0 {
			bound = 2 * time.Millisecond
		}
		return FaultEvent{Kind: FaultLatencySpike, Delay: time.Duration(a * float64(bound))}
	default:
		return FaultEvent{Kind: FaultNone}
	}
}

// Schedule renders the first dials dial-slots and writes write-slots of
// the schedule. Two profiles with equal fields produce byte-for-byte
// identical output — the reproducibility contract the chaos suite
// asserts.
func (p FaultProfile) Schedule(dials, writes int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "seed=%d restart-after=%v\n", p.Seed, p.RestartAfterFaults)
	for i := 0; i < dials; i++ {
		fmt.Fprintf(&sb, "dial[%d]: %s\n", i, p.DialFault(uint64(i)))
	}
	for i := 0; i < writes; i++ {
		fmt.Fprintf(&sb, "write[%d]: %s\n", i, p.WriteFault(uint64(i)))
	}
	return sb.String()
}

// Injector applies a FaultProfile to live connections. All methods are
// safe for concurrent use.
type Injector struct {
	profile FaultProfile

	dialSlot  atomic.Uint64
	writeSlot atomic.Uint64
	injected  atomic.Int64
	disabled  atomic.Bool

	restartMu sync.Mutex
	pending   []int64 // ascending restart thresholds not yet fired; guarded by restartMu

	restarts chan struct{}
}

// NewInjector builds an injector for the profile.
func NewInjector(p FaultProfile) *Injector {
	pending := append([]int64(nil), p.RestartAfterFaults...)
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	return &Injector{
		profile:  p,
		pending:  pending,
		restarts: make(chan struct{}, len(pending)+1),
	}
}

// Profile returns the injector's schedule.
func (in *Injector) Profile() FaultProfile { return in.profile }

// Faults returns the cumulative number of injected faults.
func (in *Injector) Faults() int64 { return in.injected.Load() }

// Restarts delivers one signal per scripted server kill/restart point.
// The test harness owning the server consumes it.
func (in *Injector) Restarts() <-chan struct{} { return in.restarts }

// Disable stops all further injection (the healing phase of a chaos
// run); already-severed connections stay severed.
func (in *Injector) Disable() { in.disabled.Store(true) }

// noteFault counts an injected fault and fires any scripted restart
// whose threshold it crosses.
func (in *Injector) noteFault() {
	n := in.injected.Add(1)
	in.restartMu.Lock()
	fired := 0
	for fired < len(in.pending) && n >= in.pending[fired] {
		fired++
	}
	in.pending = in.pending[fired:]
	in.restartMu.Unlock()
	for i := 0; i < fired; i++ {
		select {
		case in.restarts <- struct{}{}:
		default:
		}
	}
}

// Dialer returns a dial function that consults the dial schedule and
// wraps successful connections with both the network profile's costs
// and the write schedule.
func (in *Injector) Dialer(netp Profile) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		if !in.disabled.Load() {
			slot := in.dialSlot.Add(1) - 1
			if ev := in.profile.DialFault(slot); ev.Kind == FaultDialRefused {
				in.noteFault()
				return nil, fmt.Errorf("%w: dial %s refused (slot %d)", ErrInjected, addr, slot)
			}
		}
		c, err := Dial(addr, netp)
		if err != nil {
			return nil, err
		}
		return &faultConn{Conn: c, in: in}, nil
	}
}

// faultConn applies the write schedule to one connection. A cut or
// truncation closes the underlying connection so both directions fail,
// like a mid-frame TCP reset.
type faultConn struct {
	net.Conn
	in *Injector
}

func (fc *faultConn) Write(b []byte) (int, error) {
	if fc.in.disabled.Load() {
		return fc.Conn.Write(b)
	}
	slot := fc.in.writeSlot.Add(1) - 1
	ev := fc.in.profile.WriteFault(slot)
	switch ev.Kind {
	case FaultCutConn:
		fc.in.noteFault()
		_ = fc.Conn.Close()
		return 0, fmt.Errorf("%w: connection cut before write (slot %d)", ErrInjected, slot)
	case FaultTruncateWrite:
		fc.in.noteFault()
		n := int(ev.Frac * float64(len(b)))
		if n >= len(b) {
			n = len(b) - 1
		}
		if n < 0 {
			n = 0
		}
		if n > 0 {
			_, _ = fc.Conn.Write(b[:n])
		}
		_ = fc.Conn.Close()
		return n, fmt.Errorf("%w: write truncated at %d/%d bytes (slot %d)", ErrInjected, n, len(b), slot)
	case FaultLatencySpike:
		fc.in.noteFault()
		time.Sleep(ev.Delay)
		return fc.Conn.Write(b)
	default:
		return fc.Conn.Write(b)
	}
}
