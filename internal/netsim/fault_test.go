package netsim

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRand(43)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided on %d/100 draws", same)
	}
	buf1, buf2 := make([]byte, 37), make([]byte, 37)
	r1, r2 := NewRand(7), NewRand(7)
	_, _ = r1.Read(buf1)
	_, _ = r2.Read(buf2)
	if string(buf1) != string(buf2) {
		t.Fatal("Read not deterministic")
	}
}

func TestScheduleReproducibleByteForByte(t *testing.T) {
	p := FaultProfile{
		Seed:               1234,
		DialRefuse:         0.2,
		Cut:                0.05,
		Truncate:           0.05,
		Spike:              0.1,
		RestartAfterFaults: []int64{25},
	}
	s1 := p.Schedule(200, 1000)
	s2 := p.Schedule(200, 1000)
	if s1 != s2 {
		t.Fatal("same profile rendered two different schedules")
	}
	q := p
	q.Seed = 1235
	if p.Schedule(200, 1000) == q.Schedule(200, 1000) {
		t.Fatal("different seeds rendered the same schedule")
	}
	// Slot decisions are pure: slot 17's fault must not depend on
	// whether earlier slots were evaluated.
	if p.WriteFault(17) != p.WriteFault(17) {
		t.Fatal("WriteFault not pure")
	}
}

func TestProfileProbabilityBuckets(t *testing.T) {
	p := FaultProfile{Seed: 9, Cut: 0.1, Truncate: 0.1, Spike: 0.1, SpikeMax: time.Millisecond}
	counts := map[FaultKind]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		ev := p.WriteFault(uint64(i))
		counts[ev.Kind]++
		switch ev.Kind {
		case FaultTruncateWrite:
			if ev.Frac < 0.05 || ev.Frac > 0.95 {
				t.Fatalf("truncate fraction %v out of range", ev.Frac)
			}
		case FaultLatencySpike:
			if ev.Delay < 0 || ev.Delay > time.Millisecond {
				t.Fatalf("spike delay %v out of range", ev.Delay)
			}
		}
	}
	for _, kind := range []FaultKind{FaultCutConn, FaultTruncateWrite, FaultLatencySpike} {
		got := float64(counts[kind]) / n
		if got < 0.07 || got > 0.13 {
			t.Fatalf("%s rate = %.3f, want ~0.10", kind, got)
		}
	}
}

// echoServer accepts connections and echoes bytes until closed.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() { _, _ = io.Copy(c, c); _ = c.Close() }()
		}
	}()
	return l.Addr().String(), func() { _ = l.Close() }
}

func TestInjectorDialRefusal(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	in := NewInjector(FaultProfile{Seed: 5, DialRefuse: 1})
	dial := in.Dialer(Loopback)
	if _, err := dial(addr); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial under DialRefuse=1: %v, want ErrInjected", err)
	}
	if in.Faults() != 1 {
		t.Fatalf("Faults = %d, want 1", in.Faults())
	}
	in.Disable()
	c, err := dial(addr)
	if err != nil {
		t.Fatalf("dial after Disable: %v", err)
	}
	_ = c.Close()
}

func TestInjectorTruncatesAndCuts(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	// Truncate every write: the peer must see a strict prefix.
	in := NewInjector(FaultProfile{Seed: 6, Truncate: 1})
	c, err := in.Dialer(Loopback)(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i)
	}
	n, err := c.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("truncated write err = %v, want ErrInjected", err)
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("truncated write delivered %d bytes, want a strict prefix", n)
	}
	// The injected close severs the read side too.
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, len(payload))
	total := 0
	for total < n {
		m, err := c.Read(buf[total:])
		total += m
		if err != nil {
			break
		}
	}
	if total > n {
		t.Fatalf("peer echoed %d bytes, wrote only %d", total, n)
	}

	in2 := NewInjector(FaultProfile{Seed: 6, Cut: 1})
	c2, err := in2.Dialer(Loopback)(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if n, err := c2.Write(payload); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("cut write = (%d, %v), want (0, ErrInjected)", n, err)
	}
}

func TestInjectorScriptedRestartPoints(t *testing.T) {
	in := NewInjector(FaultProfile{Seed: 8, Cut: 1, RestartAfterFaults: []int64{2, 4}})
	addr, stop := echoServer(t)
	defer stop()
	dial := in.Dialer(Loopback)
	for i := 0; i < 5; i++ {
		c, err := dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = c.Write([]byte("x")) // each write is an injected cut
		_ = c.Close()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-in.Restarts():
		case <-time.After(time.Second):
			t.Fatalf("restart signal %d never arrived (faults=%d)", i, in.Faults())
		}
	}
	select {
	case <-in.Restarts():
		t.Fatal("more restart signals than scripted points")
	default:
	}
}
