package netsim

import "sync"

// Rand is a small deterministic PRNG (SplitMix64) shared by the fault
// injector, the chaos tests, and the AFS client's retry jitter. It is
// intentionally not math/rand: the repo's no-math-rand lint rule keeps
// math/rand out of non-test code, and SplitMix64's stateless step makes
// fault schedules reproducible byte-for-byte from a seed alone.
//
// Rand is NOT cryptographically secure; nothing security-relevant may be
// derived from it.
type Rand struct {
	mu    sync.Mutex
	state uint64 // guarded by mu
}

// NewRand returns a deterministic generator for the seed.
func NewRand(seed int64) *Rand {
	return &Rand{state: uint64(seed)}
}

const splitmixGamma = 0x9E3779B97F4A7C15

// splitmix64 is the SplitMix64 output function: a bijective mix of x.
func splitmix64(x uint64) uint64 {
	z := x
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	r.mu.Lock()
	r.state += splitmixGamma
	z := splitmix64(r.state)
	r.mu.Unlock()
	return z
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("netsim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Read fills b with deterministic bytes and never fails.
func (r *Rand) Read(b []byte) (int, error) {
	for i := 0; i < len(b); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < len(b); j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
	return len(b), nil
}
