// Package netsim provides network connections with simulated latency and
// bandwidth, so the AFS-like storage substrate exhibits the cost structure
// of a real campus network even when client and server share a process.
//
// The NEXUS evaluation (DSN'19 §VII) ran against an OpenAFS cell over a
// LAN; its overheads are dominated by extra metadata round trips. To
// reproduce the *shape* of those results the transport must make a round
// trip cost something. Each Write on a wrapped connection is charged
//
//	oneWayLatency + len(payload)/bandwidth
//
// so a request/response exchange over a pair of wrapped endpoints costs
// one RTT plus transfer time, which is the standard first-order model.
package netsim

import (
	"fmt"
	"net"
	"time"
)

// Profile describes a simulated link.
type Profile struct {
	// RTT is the round-trip latency. Half is charged to each Write.
	RTT time.Duration
	// Bandwidth is the link rate in bytes per second. Zero means
	// infinite (no per-byte charge).
	Bandwidth int64
}

// Common profiles.
var (
	// LAN approximates the campus network of the paper's testbed:
	// 0.5 ms RTT, 1 Gbit/s.
	LAN = Profile{RTT: 500 * time.Microsecond, Bandwidth: 125 << 20}
	// WAN approximates a home broadband link to a cloud provider:
	// 20 ms RTT, 100 Mbit/s.
	WAN = Profile{RTT: 20 * time.Millisecond, Bandwidth: 12 << 20}
	// Loopback has no simulated cost.
	Loopback = Profile{}
)

// TransferCost returns the simulated one-way cost of sending n bytes.
func (p Profile) TransferCost(n int) time.Duration {
	d := p.RTT / 2
	if p.Bandwidth > 0 {
		d += time.Duration(int64(n) * int64(time.Second) / p.Bandwidth)
	}
	return d
}

// IsZero reports whether the profile charges nothing.
func (p Profile) IsZero() bool { return p.RTT == 0 && p.Bandwidth == 0 }

// conn wraps a net.Conn, delaying writes per the profile.
type conn struct {
	net.Conn
	profile Profile
}

// Wrap returns c with the profile's costs applied to every Write. A zero
// profile returns c unchanged.
func Wrap(c net.Conn, p Profile) net.Conn {
	if p.IsZero() {
		return c
	}
	return &conn{Conn: c, profile: p}
}

func (c *conn) Write(b []byte) (int, error) {
	delay(c.profile.TransferCost(len(b)))
	return c.Conn.Write(b)
}

// delay waits for d with sub-millisecond fidelity: timer sleeps have
// multi-millisecond granularity on some kernels, which would swamp the
// sub-millisecond RTTs being simulated, so the final stretch is a busy
// wait.
func delay(d time.Duration) {
	if d <= 0 {
		return
	}
	const spinWindow = 2 * time.Millisecond
	deadline := time.Now().Add(d)
	if d > spinWindow {
		time.Sleep(d - spinWindow)
	}
	for time.Now().Before(deadline) { //nolint:revive // intentional busy-wait
	}
}

// Listener wraps every accepted connection with the profile.
type Listener struct {
	net.Listener
	profile Profile
}

// NewListener returns a listener whose accepted connections carry the
// profile's costs.
func NewListener(l net.Listener, p Profile) *Listener {
	return &Listener{Listener: l, profile: p}
}

// Accept waits for the next connection and wraps it.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, fmt.Errorf("netsim: accept: %w", err)
	}
	return Wrap(c, l.profile), nil
}

// Dial connects to addr over TCP and wraps the connection.
func Dial(addr string, p Profile) (net.Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsim: dial %s: %w", addr, err)
	}
	return Wrap(c, p), nil
}
