// Package cas implements the content-addressed chunk store beneath the
// filenode (DESIGN.md §16): convergent encryption scoped to one volume,
// extent wire encoding, and the persistent reference-count table that
// drives garbage collection.
//
// # Key derivation
//
// Every chunk is named and keyed by its plaintext, under a volume
// dedup secret the enclave derives from the rootkey:
//
//	secret = HMAC-SHA256(rootkey, "nexus-dedup-secret-v1")
//	handle = HMAC-SHA256(secret, "id"  ‖ SHA-256(plaintext))
//	key    = HMAC-SHA256(secret, "key" ‖ handle)[:16]
//	iv     = HMAC-SHA256(secret, "iv"  ‖ handle)[:12]
//
// Identical plaintext therefore derives the identical handle, key, IV,
// and (AES-GCM being deterministic given all three) the identical
// sealed object — a re-upload is a byte-identical PUT, so dedup needs
// no plaintext round trip and chunk writes are idempotent. The
// deterministic IV is safe because the key is unique per distinct
// plaintext: the (key, IV) pair never seals two different messages.
// Because the derivation runs under a sealed per-volume secret, the
// scheme is convergent only *within* a volume: an attacker who stores
// a guessed plaintext in their own volume learns nothing about
// handles in this one (no cross-volume confirmation-of-file attacks).
// What the storage service does learn is the equality pattern of
// chunks inside the volume — the classic convergent-encryption
// leakage, accepted here in exchange for dedup; see DESIGN.md §16.
//
// Reads need only the extent list: key and IV re-derive from the
// handle alone. The plaintext hash never leaves the enclave.
package cas

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
)

const (
	// HandleSize is the width of a chunk handle (HMAC-SHA256 output).
	HandleSize = 32
	// KeySize is the AES-128 chunk key width.
	KeySize = 16
	// IVSize is the GCM nonce width.
	IVSize = 12
	// TagSize is the GCM authentication tag width.
	TagSize = 16
	// SecretSize is the volume dedup secret width.
	SecretSize = 32
)

// handlePrefix prefixes chunk object names on the store, keeping them
// visually distinct from the UUID-named metadata and legacy data
// objects.
const handlePrefix = "cas-"

// Errors returned by the sealing and wire layers.
var (
	// ErrTampered reports a chunk whose ciphertext failed
	// authentication against its handle-derived key.
	ErrTampered = errors.New("cas: chunk failed authentication")
	// ErrMalformed reports structurally invalid wire bytes (extent
	// lists, ref tables) beyond what serial reports itself.
	ErrMalformed = errors.New("cas: malformed encoding")
)

// Handle is the content-derived name of one sealed chunk.
type Handle [HandleSize]byte

// ObjectName returns the untrusted store's object name for the chunk.
func (h Handle) ObjectName() string { return handlePrefix + hex.EncodeToString(h[:]) }

// String abbreviates the handle for logs and errors.
func (h Handle) String() string { return handlePrefix + hex.EncodeToString(h[:6]) + "…" }

// Secret is the sealed per-volume dedup secret all derivations hang
// off. It lives only inside the enclave.
type Secret struct {
	key [SecretSize]byte
}

// DeriveSecret derives the volume dedup secret from the volume
// rootkey. The derivation is deterministic so every enclave that
// mounts the volume — and every remount — agrees on chunk handles.
func DeriveSecret(rootKey []byte) *Secret {
	mac := hmac.New(sha256.New, rootKey)
	mac.Write([]byte("nexus-dedup-secret-v1"))
	s := &Secret{}
	copy(s.key[:], mac.Sum(nil))
	return s
}

// Zero wipes the secret (volume unmount / enclave reset).
func (s *Secret) Zero() {
	for i := range s.key {
		s.key[i] = 0
	}
}

func (s *Secret) derive(label string, payload []byte) [32]byte {
	mac := hmac.New(sha256.New, s.key[:])
	mac.Write([]byte(label))
	mac.Write(payload)
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// HandleFor derives the chunk handle for plain.
func (s *Secret) HandleFor(plain []byte) Handle {
	sum := sha256.Sum256(plain)
	return Handle(s.derive("id", sum[:]))
}

// keyFor derives the chunk's AES-128 key from its handle.
func (s *Secret) keyFor(h Handle) [KeySize]byte {
	d := s.derive("key", h[:])
	var k [KeySize]byte
	copy(k[:], d[:KeySize])
	return k
}

// ivFor derives the chunk's GCM nonce from its handle.
func (s *Secret) ivFor(h Handle) [IVSize]byte {
	d := s.derive("iv", h[:])
	var iv [IVSize]byte
	copy(iv[:], d[:IVSize])
	return iv
}

// SealedLen returns the sealed size of an n-byte chunk.
func SealedLen(n int) int { return n + TagSize }

func (s *Secret) aead(h Handle) (cipher.AEAD, error) {
	key := s.keyFor(h)
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("cas: cipher: %w", err)
	}
	return cipher.NewGCM(block)
}

// Seal encrypts plain under its handle-derived key into dst, which
// must have length SealedLen(len(plain)). The handle is the AAD, so a
// sealed chunk authenticates its own name: the store cannot serve
// chunk A's bytes under chunk B's handle. Sealing is deterministic —
// equal plaintext yields equal output.
func (s *Secret) Seal(h Handle, plain, dst []byte) error {
	if len(dst) != SealedLen(len(plain)) {
		return fmt.Errorf("cas: seal buffer %d bytes, need %d", len(dst), SealedLen(len(plain)))
	}
	gcm, err := s.aead(h)
	if err != nil {
		return err
	}
	iv := s.ivFor(h)
	gcm.Seal(dst[:0], iv[:], plain, h[:])
	return nil
}

// Open decrypts sealed (as produced by Seal under h) into dst, which
// must have length len(sealed)-TagSize. It additionally verifies that
// the plaintext re-derives h — a defense-in-depth check that the
// volume secret in use matches the one that sealed the chunk.
func (s *Secret) Open(h Handle, sealed, dst []byte) error {
	if len(sealed) < TagSize {
		return fmt.Errorf("%w: sealed chunk %d bytes, need >= %d", ErrTampered, len(sealed), TagSize)
	}
	if len(dst) != len(sealed)-TagSize {
		return fmt.Errorf("cas: open buffer %d bytes, need %d", len(dst), len(sealed)-TagSize)
	}
	gcm, err := s.aead(h)
	if err != nil {
		return err
	}
	iv := s.ivFor(h)
	if _, err := gcm.Open(dst[:0], iv[:], sealed, h[:]); err != nil {
		return fmt.Errorf("%w: %s", ErrTampered, h)
	}
	want := s.HandleFor(dst)
	if subtle.ConstantTimeCompare(want[:], h[:]) != 1 {
		return fmt.Errorf("%w: %s (handle mismatch)", ErrTampered, h)
	}
	return nil
}
