package cas

import (
	"fmt"

	"nexus/internal/serial"
)

// Extent is one chunk reference in a filenode's extent list: the
// chunk's content handle and its plaintext length. Offsets are
// implicit — extents tile the file in order — so the list is exactly
// 36 bytes per chunk and a file's logical size is the sum of its
// extent lengths (an invariant both encoder and decoder enforce).
type Extent struct {
	Handle Handle
	Len    uint32
}

// extentWireSize is the encoded size of one extent.
const extentWireSize = HandleSize + 4

// MaxExtents caps an extent list: with the 64 MiB serial.MaxBytesLen
// object ceiling and the chunker's 128-byte minimum chunk, no honest
// list exceeds this.
const MaxExtents = serial.MaxCount

// WriteExtents appends the canonical encoding of list to w:
// uint32 count ‖ (handle ‖ uint32 len)*.
func WriteExtents(w *serial.Writer, list []Extent) {
	w.WriteUint32(uint32(len(list)))
	for i := range list {
		w.WriteRaw(list[i].Handle[:])
		w.WriteUint32(list[i].Len)
	}
}

// ReadExtents consumes an extent list from r, enforcing the canonical
// form: every extent non-empty. Structural errors surface through
// r.Err as usual; semantic violations return ErrMalformed.
func ReadExtents(r *serial.Reader) ([]Extent, error) {
	n := r.ReadCount(MaxExtents, "extent count")
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n == 0 {
		return nil, nil
	}
	list := make([]Extent, n)
	for i := range list {
		r.ReadRawInto(list[i].Handle[:], "extent handle")
		list[i].Len = r.ReadUint32("extent length")
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	for i := range list {
		if list[i].Len == 0 {
			return nil, fmt.Errorf("%w: zero-length extent %d", ErrMalformed, i)
		}
	}
	return list, nil
}

// EncodeExtents returns the canonical standalone encoding of list.
func EncodeExtents(list []Extent) []byte {
	w := serial.NewWriter(4 + len(list)*extentWireSize)
	WriteExtents(w, list)
	return w.Bytes()
}

// DecodeExtents decodes a standalone extent list strictly: the input
// must be consumed exactly, and re-encoding the result must reproduce
// the input byte for byte (there is exactly one valid encoding of any
// list).
func DecodeExtents(b []byte) ([]Extent, error) {
	r := serial.NewReader(b)
	list, err := ReadExtents(r)
	if err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return list, nil
}

// TotalLen sums the extent lengths — the logical file size the list
// describes.
func TotalLen(list []Extent) uint64 {
	var total uint64
	for i := range list {
		total += uint64(list[i].Len)
	}
	return total
}
