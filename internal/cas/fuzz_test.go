package cas

import (
	"bytes"
	"testing"
)

// FuzzCASDecode drives the two strict wire decoders (extent lists and
// the ref table) with attacker-controlled bytes. Both must never
// panic, and both must be strictly canonical: any input they accept
// must re-encode to exactly the bytes that were decoded (no trailing
// garbage, no alternate encodings of the same value). The first fuzz
// byte routes between the two decoders so one corpus covers both.
func FuzzCASDecode(f *testing.F) {
	s := DeriveSecret([]byte("fuzz volume rootkey"))
	ext := EncodeExtents([]Extent{
		{Handle: s.HandleFor([]byte("a")), Len: 4096},
		{Handle: s.HandleFor([]byte("b")), Len: 1},
	})
	tab := NewRefTable()
	tab.Inc(s.HandleFor([]byte("a")), 2)
	tab.Inc(s.HandleFor([]byte("b")), 1)

	f.Add(append([]byte{0}, ext...))
	f.Add(append([]byte{1}, tab.Encode()...))
	f.Add(append([]byte{0}, EncodeExtents(nil)...))
	f.Add(append([]byte{1}, NewRefTable().Encode()...))
	f.Add([]byte{0})
	f.Add([]byte{1, refTableFormat})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		payload := data[1:]
		switch data[0] % 2 {
		case 0:
			list, err := DecodeExtents(payload)
			if err != nil {
				return
			}
			re := EncodeExtents(list)
			if !bytes.Equal(re, payload) {
				t.Fatalf("extents: accepted non-canonical encoding:\n in: %x\nout: %x", payload, re)
			}
			for i := range list {
				if list[i].Len == 0 {
					t.Fatalf("extents: accepted zero-length extent %d", i)
				}
			}
		case 1:
			tab, err := DecodeRefTable(payload)
			if err != nil {
				return
			}
			re := tab.Encode()
			if !bytes.Equal(re, payload) {
				t.Fatalf("reftable: accepted non-canonical encoding:\n in: %x\nout: %x", payload, re)
			}
			for _, h := range tab.Handles() {
				if tab.Get(h) == 0 {
					t.Fatalf("reftable: accepted zero refcount for %s", h)
				}
			}
		}
	})
}
