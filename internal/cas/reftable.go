package cas

import (
	"bytes"
	"fmt"
	"sort"

	"nexus/internal/serial"
)

// RefTable is the volume's chunk reference-count table: how many
// filenode extents reference each live chunk. It is sealed as one
// metadata object ("cas-refs") and reloaded/merged under the store
// lock on every flush, mirroring the freshness table's protocol; a
// chunk whose count reaches zero is garbage and its object is deleted
// after the table commits. The table is the GC ground truth, so its
// encoding is strictly canonical: handles sorted, counts positive.
type RefTable struct {
	refs map[Handle]uint32
}

// refTableFormat versions the wire encoding.
const refTableFormat = 1

// NewRefTable returns an empty table.
func NewRefTable() *RefTable {
	return &RefTable{refs: make(map[Handle]uint32)}
}

// Len returns the number of live chunks.
func (t *RefTable) Len() int { return len(t.refs) }

// Get returns h's reference count (zero when untracked).
func (t *RefTable) Get(h Handle) uint32 { return t.refs[h] }

// Inc adds n references to h.
func (t *RefTable) Inc(h Handle, n uint32) {
	if n == 0 {
		return
	}
	t.refs[h] += n
}

// Dec removes n references from h and reports the remaining count.
// Decrements saturate at zero: after a crash between a table flush and
// a filenode flush the table may undercount by design (leak-not-lose,
// DESIGN.md §16), so a saturated decrement is survivable bookkeeping
// drift, not corruption. A zeroed handle is removed from the table;
// the caller owns deleting its object.
func (t *RefTable) Dec(h Handle, n uint32) (remaining uint32, zeroed bool) {
	cur, ok := t.refs[h]
	if !ok {
		return 0, false
	}
	if n >= cur {
		delete(t.refs, h)
		return 0, true
	}
	t.refs[h] = cur - n
	return cur - n, false
}

// Handles returns the tracked handles in canonical (ascending) order.
func (t *RefTable) Handles() []Handle {
	out := make([]Handle, 0, len(t.refs))
	for h := range t.refs {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i][:], out[j][:]) < 0
	})
	return out
}

// Clone deep-copies the table.
func (t *RefTable) Clone() *RefTable {
	c := &RefTable{refs: make(map[Handle]uint32, len(t.refs))}
	for h, n := range t.refs {
		c.refs[h] = n
	}
	return c
}

// Encode returns the canonical encoding:
// format ‖ count ‖ (handle ‖ count)* with handles strictly ascending.
func (t *RefTable) Encode() []byte {
	handles := t.Handles()
	w := serial.NewWriter(1 + 4 + len(handles)*(HandleSize+4))
	w.WriteUint8(refTableFormat)
	w.WriteUint32(uint32(len(handles)))
	for _, h := range handles {
		w.WriteRaw(h[:])
		w.WriteUint32(t.refs[h])
	}
	return w.Bytes()
}

// DecodeRefTable decodes strictly: unknown formats, unsorted or
// duplicate handles, zero counts, and trailing bytes are all rejected,
// so every table has exactly one accepted encoding.
func DecodeRefTable(b []byte) (*RefTable, error) {
	r := serial.NewReader(b)
	format := r.ReadUint8("reftable format")
	if r.Err() == nil && format != refTableFormat {
		return nil, fmt.Errorf("%w: reftable format %d", ErrMalformed, format)
	}
	n := r.ReadCount(0, "reftable count")
	t := &RefTable{refs: make(map[Handle]uint32, n)}
	var prev Handle
	for i := 0; i < n; i++ {
		var h Handle
		r.ReadRawInto(h[:], "reftable handle")
		count := r.ReadUint32("reftable refcount")
		if r.Err() != nil {
			break
		}
		if i > 0 && bytes.Compare(prev[:], h[:]) >= 0 {
			return nil, fmt.Errorf("%w: reftable handles not strictly ascending at %d", ErrMalformed, i)
		}
		if count == 0 {
			return nil, fmt.Errorf("%w: zero refcount for %s", ErrMalformed, h)
		}
		t.refs[h] = count
		prev = h
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return t, nil
}
