package cas

import (
	"bytes"
	"strings"
	"testing"
)

func testSecret(t *testing.T) *Secret {
	t.Helper()
	return DeriveSecret([]byte("test-root-key-32-bytes-aaaaaaaa!"))
}

func TestDeriveSecretDeterministic(t *testing.T) {
	root := []byte("rootkey")
	a, b := DeriveSecret(root), DeriveSecret(root)
	if a.key != b.key {
		t.Fatal("same rootkey derived different secrets")
	}
	c := DeriveSecret([]byte("other"))
	if a.key == c.key {
		t.Fatal("different rootkeys derived the same secret")
	}
}

func TestHandleDerivation(t *testing.T) {
	s := testSecret(t)
	h1 := s.HandleFor([]byte("chunk one"))
	h2 := s.HandleFor([]byte("chunk one"))
	h3 := s.HandleFor([]byte("chunk two"))
	if h1 != h2 {
		t.Fatal("equal plaintext derived different handles")
	}
	if h1 == h3 {
		t.Fatal("different plaintext derived the same handle")
	}
	// Volume scoping: another volume's secret sees different handles
	// for the same plaintext.
	other := DeriveSecret([]byte("another volume"))
	if other.HandleFor([]byte("chunk one")) == h1 {
		t.Fatal("handles are not volume-scoped")
	}
	if !strings.HasPrefix(h1.ObjectName(), "cas-") || len(h1.ObjectName()) != 4+2*HandleSize {
		t.Fatalf("unexpected object name %q", h1.ObjectName())
	}
	if !strings.HasPrefix(h1.String(), "cas-") {
		t.Fatalf("unexpected String %q", h1.String())
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	s := testSecret(t)
	plain := []byte("the sealed chunk payload")
	h := s.HandleFor(plain)
	sealed := make([]byte, SealedLen(len(plain)))
	if err := s.Seal(h, plain, sealed); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	// Determinism: sealing again is byte-identical (idempotent PUT).
	sealed2 := make([]byte, SealedLen(len(plain)))
	if err := s.Seal(h, plain, sealed2); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if !bytes.Equal(sealed, sealed2) {
		t.Fatal("sealing is not deterministic")
	}
	out := make([]byte, len(plain))
	if err := s.Open(h, sealed, out); err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !bytes.Equal(out, plain) {
		t.Fatal("round trip mismatch")
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	s := testSecret(t)
	plain := []byte("authentic bytes")
	h := s.HandleFor(plain)
	sealed := make([]byte, SealedLen(len(plain)))
	if err := s.Seal(h, plain, sealed); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	out := make([]byte, len(plain))

	// Bit flip anywhere in the ciphertext or tag.
	for _, i := range []int{0, len(plain) / 2, len(sealed) - 1} {
		bad := bytes.Clone(sealed)
		bad[i] ^= 1
		if err := s.Open(h, bad, out); err == nil {
			t.Fatalf("tampered byte %d accepted", i)
		}
	}

	// Substitution: chunk B's bytes served under chunk A's handle
	// fails (the handle is the AAD).
	other := []byte("different bytes")
	h2 := s.HandleFor(other)
	sealed2 := make([]byte, SealedLen(len(other)))
	if err := s.Seal(h2, other, sealed2); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if err := s.Open(h, sealed2, out); err == nil {
		t.Fatal("substituted chunk accepted")
	}

	// Truncated input.
	if err := s.Open(h, sealed[:TagSize-1], out[:0]); err == nil {
		t.Fatal("truncated sealed chunk accepted")
	}
}

func TestSealOpenBufferSizes(t *testing.T) {
	s := testSecret(t)
	plain := []byte("x")
	h := s.HandleFor(plain)
	if err := s.Seal(h, plain, make([]byte, 3)); err == nil {
		t.Fatal("Seal accepted short dst")
	}
	sealed := make([]byte, SealedLen(len(plain)))
	if err := s.Seal(h, plain, sealed); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if err := s.Open(h, sealed, make([]byte, 5)); err == nil {
		t.Fatal("Open accepted wrong-size dst")
	}
}

func TestSecretZero(t *testing.T) {
	s := testSecret(t)
	s.Zero()
	if s.key != [SecretSize]byte{} {
		t.Fatal("Zero left key material")
	}
}

func TestExtentsRoundTrip(t *testing.T) {
	s := testSecret(t)
	list := []Extent{
		{Handle: s.HandleFor([]byte("a")), Len: 100},
		{Handle: s.HandleFor([]byte("b")), Len: 1},
		{Handle: s.HandleFor([]byte("a")), Len: 100}, // repeats are legal
	}
	enc := EncodeExtents(list)
	got, err := DecodeExtents(enc)
	if err != nil {
		t.Fatalf("DecodeExtents: %v", err)
	}
	if len(got) != len(list) {
		t.Fatalf("decoded %d extents, want %d", len(got), len(list))
	}
	for i := range list {
		if got[i] != list[i] {
			t.Fatalf("extent %d mismatch", i)
		}
	}
	if TotalLen(got) != 201 {
		t.Fatalf("TotalLen = %d, want 201", TotalLen(got))
	}
	// Canonical: re-encode reproduces the input.
	if !bytes.Equal(EncodeExtents(got), enc) {
		t.Fatal("re-encode differs")
	}
	// Empty list round trip.
	empty, err := DecodeExtents(EncodeExtents(nil))
	if err != nil || empty != nil {
		t.Fatalf("empty list round trip: %v %v", empty, err)
	}
}

func TestExtentsDecodeRejects(t *testing.T) {
	s := testSecret(t)
	valid := EncodeExtents([]Extent{{Handle: s.HandleFor([]byte("a")), Len: 7}})

	cases := map[string][]byte{
		"truncated":   valid[:len(valid)-2],
		"trailing":    append(bytes.Clone(valid), 0xcc),
		"empty input": {},
	}
	for name, b := range cases {
		if _, err := DecodeExtents(b); err == nil {
			t.Errorf("%s accepted", name)
		}
	}

	// Zero-length extent.
	zero := EncodeExtents([]Extent{{Handle: s.HandleFor([]byte("a")), Len: 0}})
	if _, err := DecodeExtents(zero); err == nil {
		t.Error("zero-length extent accepted")
	}
}

func TestRefTableCounts(t *testing.T) {
	s := testSecret(t)
	a, b := s.HandleFor([]byte("a")), s.HandleFor([]byte("b"))
	tab := NewRefTable()
	tab.Inc(a, 2)
	tab.Inc(b, 1)
	tab.Inc(a, 0) // no-op
	if tab.Get(a) != 2 || tab.Get(b) != 1 || tab.Len() != 2 {
		t.Fatalf("counts: a=%d b=%d len=%d", tab.Get(a), tab.Get(b), tab.Len())
	}
	if rem, zeroed := tab.Dec(a, 1); rem != 1 || zeroed {
		t.Fatalf("Dec(a,1) = %d,%v", rem, zeroed)
	}
	if rem, zeroed := tab.Dec(a, 5); rem != 0 || !zeroed {
		t.Fatalf("saturating Dec(a,5) = %d,%v", rem, zeroed)
	}
	if tab.Get(a) != 0 || tab.Len() != 1 {
		t.Fatal("zeroed handle not removed")
	}
	// Dec of an untracked handle is survivable drift, not a zeroing.
	if rem, zeroed := tab.Dec(a, 1); rem != 0 || zeroed {
		t.Fatalf("Dec(untracked) = %d,%v", rem, zeroed)
	}
}

func TestRefTableEncodeRoundTrip(t *testing.T) {
	s := testSecret(t)
	tab := NewRefTable()
	for i, n := range []uint32{3, 1, 7, 2} {
		tab.Inc(s.HandleFor([]byte{byte(i)}), n)
	}
	enc := tab.Encode()
	got, err := DecodeRefTable(enc)
	if err != nil {
		t.Fatalf("DecodeRefTable: %v", err)
	}
	if got.Len() != tab.Len() {
		t.Fatalf("decoded %d entries, want %d", got.Len(), tab.Len())
	}
	for _, h := range tab.Handles() {
		if got.Get(h) != tab.Get(h) {
			t.Fatalf("count mismatch for %s", h)
		}
	}
	if !bytes.Equal(got.Encode(), enc) {
		t.Fatal("re-encode differs")
	}
	clone := tab.Clone()
	clone.Inc(s.HandleFor([]byte("new")), 1)
	if clone.Len() == tab.Len() {
		t.Fatal("Clone aliases the original")
	}
	// Empty table round trip.
	empty, err := DecodeRefTable(NewRefTable().Encode())
	if err != nil || empty.Len() != 0 {
		t.Fatalf("empty table round trip: %v", err)
	}
}

func TestRefTableDecodeRejects(t *testing.T) {
	s := testSecret(t)
	a := s.HandleFor([]byte("a"))
	tab := NewRefTable()
	tab.Inc(a, 1)
	valid := tab.Encode()

	bad := bytes.Clone(valid)
	bad[0] = 9 // unknown format
	if _, err := DecodeRefTable(bad); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := DecodeRefTable(valid[:len(valid)-1]); err == nil {
		t.Error("truncated table accepted")
	}
	if _, err := DecodeRefTable(append(bytes.Clone(valid), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := DecodeRefTable(nil); err == nil {
		t.Error("empty input accepted")
	}

	// Zero refcount.
	zero := bytes.Clone(valid)
	// format(1) + count(4) + handle(32) + refcount(4): zero the count.
	copy(zero[len(zero)-4:], []byte{0, 0, 0, 0})
	if _, err := DecodeRefTable(zero); err == nil {
		t.Error("zero refcount accepted")
	}

	// Unsorted / duplicate handles: build two-entry encodings by hand.
	b := s.HandleFor([]byte("b"))
	lo, hi := a, b
	if bytes.Compare(lo[:], hi[:]) > 0 {
		lo, hi = hi, lo
	}
	build := func(h1, h2 Handle) []byte {
		out := []byte{refTableFormat, 2, 0, 0, 0}
		out = append(out, h1[:]...)
		out = append(out, 1, 0, 0, 0)
		out = append(out, h2[:]...)
		out = append(out, 1, 0, 0, 0)
		return out
	}
	if _, err := DecodeRefTable(build(hi, lo)); err == nil {
		t.Error("unsorted handles accepted")
	}
	if _, err := DecodeRefTable(build(lo, lo)); err == nil {
		t.Error("duplicate handles accepted")
	}
	if _, err := DecodeRefTable(build(lo, hi)); err != nil {
		t.Errorf("sorted two-entry table rejected: %v", err)
	}
}
