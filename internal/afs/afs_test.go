package afs

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"nexus/internal/backend"
	"nexus/internal/netsim"
)

// startServer launches a server on an ephemeral port and returns its
// address. The server is shut down with the test.
func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	store := backend.NewMemStore()
	srv := NewServer(store)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv, l.Addr().String()
}

func dialClient(t *testing.T, addr string, cfg ClientConfig) *Client {
	t.Helper()
	c, err := Dial(addr, cfg)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestBasicRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c := dialClient(t, addr, ClientConfig{})

	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	data := []byte("hello distributed world")
	if err := c.Put("file1", data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := c.Get("file1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, want %q", got, data)
	}

	st, err := c.StatFile("file1")
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if !st.Exists || st.Size != uint64(len(data)) || st.Version == 0 {
		t.Fatalf("Stat = %+v", st)
	}

	if err := c.Delete("file1"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := c.Get("file1"); !errors.Is(err, backend.ErrNotExist) {
		t.Fatalf("Get after delete = %v, want ErrNotExist", err)
	}
	st, err = c.StatFile("file1")
	if err != nil || st.Exists {
		t.Fatalf("Stat after delete = %+v, %v", st, err)
	}
}

func TestErrNotExistMapping(t *testing.T) {
	_, addr := startServer(t)
	c := dialClient(t, addr, ClientConfig{})
	if _, err := c.Get("ghost"); !errors.Is(err, backend.ErrNotExist) {
		t.Fatalf("Get(ghost) = %v, want ErrNotExist", err)
	}
	if err := c.Delete("ghost"); !errors.Is(err, backend.ErrNotExist) {
		t.Fatalf("Delete(ghost) = %v, want ErrNotExist", err)
	}
	if err := c.Put("../evil", []byte("x")); !errors.Is(err, backend.ErrBadName) {
		t.Fatalf("Put(../evil) = %v, want ErrBadName", err)
	}
}

func TestList(t *testing.T) {
	_, addr := startServer(t)
	c := dialClient(t, addr, ClientConfig{})
	for _, name := range []string{"md_2", "md_1", "data_9"} {
		if err := c.Put(name, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	names, err := c.List("md_")
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(names) != 2 || names[0] != "md_1" || names[1] != "md_2" {
		t.Fatalf("List = %v", names)
	}
	all, err := c.List("")
	if err != nil || len(all) != 3 {
		t.Fatalf("List(\"\") = %v, %v", all, err)
	}
}

func TestCacheServesWarmReads(t *testing.T) {
	srv, addr := startServer(t)
	c := dialClient(t, addr, ClientConfig{})
	if err := c.Put("hot", []byte("cached data")); err != nil {
		t.Fatal(err)
	}
	fetchesBefore, _ := srv.Stats()
	for i := 0; i < 10; i++ {
		if _, err := c.Get("hot"); err != nil {
			t.Fatal(err)
		}
	}
	fetchesAfter, _ := srv.Stats()
	if fetchesAfter != fetchesBefore {
		t.Fatalf("warm reads hit the server: %d fetches", fetchesAfter-fetchesBefore)
	}
	_, hits := c.Stats()
	if hits < 10 {
		t.Fatalf("cache hits = %d, want >= 10", hits)
	}
}

func TestFlushCacheForcesRefetch(t *testing.T) {
	srv, addr := startServer(t)
	c := dialClient(t, addr, ClientConfig{})
	if err := c.Put("f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	c.FlushCache()
	before, _ := srv.Stats()
	if _, err := c.Get("f"); err != nil {
		t.Fatal(err)
	}
	after, _ := srv.Stats()
	if after != before+1 {
		t.Fatalf("fetch count after flush = %d, want %d", after, before+1)
	}
}

func TestCallbackInvalidation(t *testing.T) {
	_, addr := startServer(t)
	c1 := dialClient(t, addr, ClientConfig{})
	c2 := dialClient(t, addr, ClientConfig{})

	if err := c1.Put("shared", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// c2 caches v1 (registers a callback promise).
	got, err := c2.Get("shared")
	if err != nil || string(got) != "v1" {
		t.Fatalf("c2 initial read: %q, %v", got, err)
	}
	// c1 writes v2; the server must break c2's callback.
	if err := c1.Put("shared", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// The invalidation is asynchronous; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		got, err = c2.Get("shared")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) == "v2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("c2 still sees %q after invalidation window", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestLockExcludesAcrossClients(t *testing.T) {
	_, addr := startServer(t)
	c1 := dialClient(t, addr, ClientConfig{})
	c2 := dialClient(t, addr, ClientConfig{})

	release1, err := c1.Lock("meta")
	if err != nil {
		t.Fatalf("c1 Lock: %v", err)
	}
	acquired := make(chan struct{})
	go func() {
		release2, err := c2.Lock("meta")
		if err == nil {
			release2()
		}
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("c2 acquired the lock while c1 held it")
	case <-time.After(50 * time.Millisecond):
	}
	release1()
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("c2 never acquired the lock after c1 released")
	}
}

func TestLockReleasedOnDisconnect(t *testing.T) {
	_, addr := startServer(t)
	c1 := dialClient(t, addr, ClientConfig{})
	c2 := dialClient(t, addr, ClientConfig{})

	if _, err := c1.Lock("meta"); err != nil {
		t.Fatal(err)
	}
	// c1 vanishes without unlocking.
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan struct{})
	go func() {
		release, err := c2.Lock("meta")
		if err == nil {
			release()
		}
		close(acquired)
	}()
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("lock not released when holder disconnected")
	}
}

func TestLockSerializesCriticalSections(t *testing.T) {
	_, addr := startServer(t)
	const workers = 4
	const iters = 25

	// The counter lives in a shared file; each worker does a locked
	// read-modify-write. Without mutual exclusion updates get lost.
	c0 := dialClient(t, addr, ClientConfig{CacheBytes: -1})
	if err := c0.Put("counter", []byte("0")); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr, ClientConfig{CacheBytes: -1})
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			defer c.Close()
			for i := 0; i < iters; i++ {
				release, err := c.Lock("counter")
				if err != nil {
					t.Errorf("Lock: %v", err)
					return
				}
				data, err := c.Get("counter")
				if err != nil {
					release()
					t.Errorf("Get: %v", err)
					return
				}
				var v int
				fmt.Sscanf(string(data), "%d", &v)
				if err := c.Put("counter", []byte(fmt.Sprintf("%d", v+1))); err != nil {
					release()
					t.Errorf("Put: %v", err)
					return
				}
				release()
			}
		}()
	}
	wg.Wait()

	data, err := c0.Get("counter")
	if err != nil {
		t.Fatal(err)
	}
	var v int
	fmt.Sscanf(string(data), "%d", &v)
	if v != workers*iters {
		t.Fatalf("counter = %d, want %d (lost updates)", v, workers*iters)
	}
}

func TestDoubleUnlockRejected(t *testing.T) {
	_, addr := startServer(t)
	c := dialClient(t, addr, ClientConfig{})
	release, err := c.Lock("x")
	if err != nil {
		t.Fatal(err)
	}
	release()
	release() // second call is a no-op, must not panic or deadlock
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unhealthy after double release: %v", err)
	}
}

func TestLargeFile(t *testing.T) {
	_, addr := startServer(t)
	c := dialClient(t, addr, ClientConfig{})
	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i)
	}
	if err := c.Put("big", big); err != nil {
		t.Fatal(err)
	}
	c.FlushCache()
	got, err := c.Get("big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("large file corrupted in transit")
	}
}

func TestCacheEviction(t *testing.T) {
	_, addr := startServer(t)
	// Budget of 3 KiB, files of 1 KiB: the 4th file evicts the 1st.
	c := dialClient(t, addr, ClientConfig{CacheBytes: 3 << 10})
	payload := make([]byte, 1<<10)
	for i := 0; i < 4; i++ {
		if err := c.Put(fmt.Sprintf("f%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.cache.get("f0"); ok {
		t.Fatal("f0 not evicted from a full cache")
	}
	if _, ok := c.cache.get("f3"); !ok {
		t.Fatal("f3 missing from cache")
	}
}

func TestClosedClientErrors(t *testing.T) {
	_, addr := startServer(t)
	c := dialClient(t, addr, ClientConfig{})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

func TestNetsimProfileSlowsRPCs(t *testing.T) {
	_, addr := startServer(t)
	slow := dialClient(t, addr, ClientConfig{
		Profile:    netsim.Profile{RTT: 4 * time.Millisecond},
		CacheBytes: -1,
	})
	start := time.Now()
	const n = 5
	for i := 0; i < n; i++ {
		if err := slow.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	// Only the client side is wrapped here, so each ping is charged one
	// half-RTT on its request write.
	if elapsed := time.Since(start); elapsed < n*2*time.Millisecond {
		t.Fatalf("%d pings took %v, want >= %v", n, elapsed, n*2*time.Millisecond)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr, ClientConfig{})
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("w%d_f%d", w, i)
				if err := c.Put(name, []byte(name)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				got, err := c.Get(name)
				if err != nil || string(got) != name {
					t.Errorf("Get(%s) = %q, %v", name, got, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
