package afs

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nexus"
	"nexus/internal/backend"
	"nexus/internal/netsim"
)

// The chaos suite drives a mixed read/write/lock workload through the
// seeded fault injector — dropped connections, mid-frame truncations,
// refused dials, latency spikes, and a scripted server kill/restart —
// and asserts the safety properties the AFS substrate promises NEXUS:
// no write is lost or torn, reads never go backwards, every RPC either
// completes or fails with a typed error inside its deadline, and nothing
// leaks when the dust settles. Run it under -race; CI does.

// chaosSeed returns the fault-schedule seed, overridable via
// NEXUS_CHAOS_SEED so CI can run a fixed seed matrix.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	env := os.Getenv("NEXUS_CHAOS_SEED")
	if env == "" {
		return 1
	}
	seed, err := strconv.ParseInt(env, 10, 64)
	if err != nil {
		t.Fatalf("NEXUS_CHAOS_SEED=%q: %v", env, err)
	}
	return seed
}

// chaosCluster runs the AFS server and performs scripted kill/restarts
// at the injector's restart points. The backing store and the per-file
// version counters survive a restart, the way a real fileserver recovers
// both from its vice partitions.
type chaosCluster struct {
	t     *testing.T
	store *backend.MemStore
	addr  string

	mu  sync.Mutex
	srv *Server // guarded by mu

	restarts atomic.Int64
	done     chan struct{}
	wg       sync.WaitGroup
}

func startChaosCluster(t *testing.T, in *netsim.Injector) *chaosCluster {
	t.Helper()
	c := &chaosCluster{t: t, store: backend.NewMemStore(), done: make(chan struct{})}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.addr = l.Addr().String()
	c.srv = NewServer(c.store)
	srv := c.srv
	go func() { _ = srv.Serve(l) }()
	c.wg.Add(1)
	go c.watch(in)
	return c
}

func (c *chaosCluster) watch(in *netsim.Injector) {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case <-in.Restarts():
			c.restart()
		}
	}
}

// restart kills the server mid-flight — every accepted connection dies —
// and brings up a replacement on the same address.
func (c *chaosCluster) restart() {
	c.mu.Lock()
	old := c.srv
	c.mu.Unlock()
	_ = old.Close()
	time.Sleep(20 * time.Millisecond) // let in-flight dispatches drain
	next := NewServer(c.store)
	next.SetVersions(old.VersionSnapshot())
	var l net.Listener
	var err error
	for i := 0; i < 200; i++ {
		l, err = net.Listen("tcp", c.addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		c.t.Errorf("chaos: rebinding %s after restart: %v", c.addr, err)
		return
	}
	go func() { _ = next.Serve(l) }()
	c.mu.Lock()
	c.srv = next
	c.mu.Unlock()
	c.restarts.Add(1)
}

func (c *chaosCluster) stop() {
	close(c.done)
	c.wg.Wait()
	c.mu.Lock()
	srv := c.srv
	c.mu.Unlock()
	_ = srv.Close()
}

// Chaos payloads are self-validating: a header naming (worker, key, seq)
// followed by filler derived deterministically from that header, so a
// torn or bit-flipped write cannot decode cleanly.

func chaosKey(worker, k int) string { return fmt.Sprintf("chaos-%d-%d", worker, k) }

func chaosPayload(worker, k int, seq uint64) []byte {
	fill := 32 + int(seq%197)
	b := make([]byte, 24+fill)
	binary.LittleEndian.PutUint64(b[0:8], uint64(worker))
	binary.LittleEndian.PutUint64(b[8:16], uint64(k))
	binary.LittleEndian.PutUint64(b[16:24], seq)
	rng := netsim.NewRand(int64(worker)<<40 ^ int64(k)<<32 ^ int64(seq))
	_, _ = rng.Read(b[24:])
	return b
}

func decodeChaosPayload(b []byte) (worker, k int, seq uint64, err error) {
	if len(b) < 24 {
		return 0, 0, 0, fmt.Errorf("short payload: %d bytes", len(b))
	}
	worker = int(binary.LittleEndian.Uint64(b[0:8]))
	k = int(binary.LittleEndian.Uint64(b[8:16]))
	seq = binary.LittleEndian.Uint64(b[16:24])
	if !bytes.Equal(b, chaosPayload(worker, k, seq)) {
		return 0, 0, 0, fmt.Errorf("corrupt payload claiming worker %d key %d seq %d", worker, k, seq)
	}
	return worker, k, seq, nil
}

// chaosKeyState is a single worker's ground truth for one of its keys.
// Each key has exactly one writer, so per-key writes are sequential and
// the final value must carry a seq the worker actually sent.
type chaosKeyState struct {
	nextSeq  uint64
	maxAcked uint64          // highest seq the server acknowledged
	acked    map[uint64]bool // seqs with acknowledged stores
	unknown  map[uint64]bool // seqs interrupted mid-exchange: applied or not
}

// chaosCounters is the cross-worker ground truth for the lock-protected
// shared counter.
type chaosCounters struct {
	acked   atomic.Int64 // increments acknowledged while the lock was provably held
	unknown atomic.Int64 // increments with unknown outcome, still serialized by the lock
	tainted atomic.Int64 // increments that may have been applied after the lock was lost
}

const chaosCounterKey = "chaos-shared-counter"

// chaosLockedIncrement performs one lock-protected read-modify-write of
// the shared counter, classifying the outcome against the lock lease:
// the lock dies with its connection, so an operation that rode a
// reconnect (generation change) may have run lockless and is tainted.
func chaosLockedIncrement(t *testing.T, w int, c *Client, ctr *chaosCounters) {
	rel, err := c.Lock(chaosCounterKey)
	if err != nil {
		if !backend.IsUnavailable(err) {
			t.Errorf("worker %d: lock: unexpected error %v", w, err)
		}
		return
	}
	defer rel()
	gen := c.gen.Load()
	var cur uint64
	data, err := c.Get(chaosCounterKey)
	switch {
	case err == nil && len(data) == 8:
		cur = binary.LittleEndian.Uint64(data)
	case err == nil:
		t.Errorf("worker %d: counter is %d bytes, want 8", w, len(data))
		return
	case errors.Is(err, backend.ErrNotExist):
		// First increment ever.
	case backend.IsUnavailable(err):
		return
	default:
		t.Errorf("worker %d: counter read: unexpected error %v", w, err)
		return
	}
	if c.gen.Load() != gen {
		// The read reconnected, so the server already released our lock;
		// writing now would race other holders. Abort the RMW.
		return
	}
	next := make([]byte, 8)
	binary.LittleEndian.PutUint64(next, cur+1)
	err = c.Put(chaosCounterKey, next)
	held := c.gen.Load() == gen
	switch {
	case err == nil && held:
		ctr.acked.Add(1)
	case err == nil || errors.Is(err, backend.ErrInterrupted):
		if held {
			ctr.unknown.Add(1)
		} else {
			ctr.tainted.Add(1)
		}
	case backend.IsUnavailable(err):
		// Never delivered: provably not applied.
	default:
		t.Errorf("worker %d: counter write: unexpected error %v", w, err)
	}
}

func chaosClientConfig(seed int64, w int, in *netsim.Injector) ClientConfig {
	return ClientConfig{
		RPCTimeout: 2 * time.Second,
		Retry: RetryPolicy{
			MaxAttempts: 8,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  50 * time.Millisecond,
			Seed:        seed<<8 | int64(w),
		},
		Dial: in.Dialer(netsim.Loopback),
	}
}

func chaosWorker(t *testing.T, w int, seed int64, addr string, in *netsim.Injector,
	states []*chaosKeyState, ctr *chaosCounters, workers, keysPer, ops int) {
	c, err := Dial(addr, chaosClientConfig(seed, w, in))
	if err != nil {
		t.Errorf("worker %d: dial: %v", w, err)
		return
	}
	defer c.Close()
	rng := netsim.NewRand(seed*1009 + int64(w))
	lastSeen := map[string]uint64{}
	// No-hang bound: every op must finish inside its attempts' deadlines
	// plus backoff, with margin.
	const opBound = 25 * time.Second
	for i := 0; i < ops; i++ {
		k := rng.Intn(keysPer)
		ks := states[k]
		start := time.Now()
		switch dice := rng.Intn(10); {
		case dice < 5: // store to a key this worker owns
			ks.nextSeq++
			seq := ks.nextSeq
			err := c.Put(chaosKey(w, k), chaosPayload(w, k, seq))
			switch {
			case err == nil:
				ks.acked[seq] = true
				ks.maxAcked = seq
			case errors.Is(err, backend.ErrInterrupted):
				ks.unknown[seq] = true
			case backend.IsUnavailable(err):
				// Never delivered: this seq provably never hits the store.
			default:
				t.Errorf("worker %d: put %s seq %d: unexpected error %v", w, chaosKey(w, k), seq, err)
			}
		case dice < 8: // read any worker's key
			ow, okey := rng.Intn(workers), rng.Intn(keysPer)
			name := chaosKey(ow, okey)
			data, err := c.Get(name)
			switch {
			case err == nil:
				rw, rk, seq, derr := decodeChaosPayload(data)
				if derr != nil {
					t.Errorf("worker %d: torn read of %s: %v", w, name, derr)
					break
				}
				if rw != ow || rk != okey {
					t.Errorf("worker %d: read of %s returned payload for worker %d key %d", w, name, rw, rk)
				}
				if last := lastSeen[name]; seq < last {
					t.Errorf("worker %d: %s went backwards: seq %d after %d", w, name, seq, last)
				}
				lastSeen[name] = seq
			case errors.Is(err, backend.ErrNotExist) || backend.IsUnavailable(err):
				// Acceptable under fault injection.
			default:
				t.Errorf("worker %d: get %s: unexpected error %v", w, name, err)
			}
		default: // lock-protected RMW on the shared counter
			chaosLockedIncrement(t, w, c, ctr)
		}
		if el := time.Since(start); el > opBound {
			t.Errorf("worker %d: op %d took %v, exceeding the no-hang bound %v", w, i, el, opBound)
		}
	}
}

func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d alive, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestChaosSeededFaultInjection(t *testing.T) {
	seed := chaosSeed(t)
	const (
		workers = 4
		keysPer = 3
		ops     = 180
	)
	profile := netsim.FaultProfile{
		Seed:               seed,
		DialRefuse:         0.04,
		Cut:                0.03,
		Truncate:           0.03,
		Spike:              0.04,
		SpikeMax:           200 * time.Microsecond,
		RestartAfterFaults: []int64{25},
	}
	// The schedule is a pure function of the profile: re-deriving it must
	// reproduce it byte for byte, which is what makes a CI seed re-run an
	// exact replay.
	replay := profile
	if profile.Schedule(64, 4096) != replay.Schedule(64, 4096) {
		t.Fatal("fault schedule is not byte-for-byte reproducible from its seed")
	}
	t.Logf("chaos seed %d", seed)

	baseline := runtime.NumGoroutine()
	in := netsim.NewInjector(profile)
	cluster := startChaosCluster(t, in)

	states := make([][]*chaosKeyState, workers)
	for w := range states {
		states[w] = make([]*chaosKeyState, keysPer)
		for k := range states[w] {
			states[w][k] = &chaosKeyState{
				acked:   make(map[uint64]bool),
				unknown: make(map[uint64]bool),
			}
		}
	}
	ctr := &chaosCounters{}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			chaosWorker(t, w, seed, cluster.addr, in, states[w], ctr, workers, keysPer, ops)
		}(w)
	}
	wg.Wait()

	// If the workload finished light on faults (interleaving-dependent),
	// burn idempotent pings through the injector until the scheduled
	// fault mass lands.
	if in.Faults() < 55 {
		padCfg := chaosClientConfig(seed, workers, in)
		padCfg.CacheBytes = -1
		if pad, err := Dial(cluster.addr, padCfg); err == nil {
			for i := 0; i < 4000 && in.Faults() < 55; i++ {
				_ = pad.Ping()
			}
			_ = pad.Close()
		}
	}
	if in.Faults() < 50 {
		t.Errorf("only %d faults injected, want >= 50", in.Faults())
	}
	if cluster.restarts.Load() < 1 {
		t.Errorf("no scripted server restart fired (faults=%d)", in.Faults())
	}

	// Healing phase: injection off, the cluster must converge.
	in.Disable()
	verifier, err := Dial(cluster.addr, ClientConfig{
		RPCTimeout: 5 * time.Second,
		Retry:      RetryPolicy{MaxAttempts: 10, BaseBackoff: 5 * time.Millisecond, Seed: seed},
	})
	if err != nil {
		t.Fatalf("verifier dial after healing: %v", err)
	}
	if err := verifier.Ping(); err != nil {
		t.Fatalf("verifier ping after healing: %v", err)
	}

	// Zero lost or torn writes: every key's final value decodes cleanly,
	// is at least the last acknowledged write, and is a value its owner
	// actually sent.
	for w := 0; w < workers; w++ {
		for k := 0; k < keysPer; k++ {
			name := chaosKey(w, k)
			ks := states[w][k]
			data, err := verifier.Get(name)
			if errors.Is(err, backend.ErrNotExist) {
				if ks.maxAcked != 0 {
					t.Errorf("%s: acknowledged seq %d but the key does not exist", name, ks.maxAcked)
				}
				continue
			}
			if err != nil {
				t.Errorf("%s: final read: %v", name, err)
				continue
			}
			rw, rk, seq, derr := decodeChaosPayload(data)
			if derr != nil {
				t.Errorf("%s: final value corrupt: %v", name, derr)
				continue
			}
			if rw != w || rk != k {
				t.Errorf("%s: final value belongs to worker %d key %d", name, rw, rk)
			}
			if seq < ks.maxAcked {
				t.Errorf("%s: lost write: final seq %d < acknowledged %d", name, seq, ks.maxAcked)
			}
			if !ks.acked[seq] && !ks.unknown[seq] {
				t.Errorf("%s: phantom write: final seq %d was never sent (or provably never delivered)", name, seq)
			}
		}
	}

	// The lock-protected counter: with no tainted (post-lease) writes,
	// its final value brackets exactly between the acknowledged and the
	// acknowledged-plus-unknown increment counts.
	acked, unknown, tainted := ctr.acked.Load(), ctr.unknown.Load(), ctr.tainted.Load()
	data, err := verifier.Get(chaosCounterKey)
	switch {
	case errors.Is(err, backend.ErrNotExist):
		if acked > 0 {
			t.Errorf("counter: %d acknowledged increments but the key does not exist", acked)
		}
	case err != nil:
		t.Errorf("counter: final read: %v", err)
	case len(data) != 8:
		t.Errorf("counter: final value is %d bytes, want 8", len(data))
	default:
		final := int64(binary.LittleEndian.Uint64(data))
		if tainted == 0 {
			if final < acked || final > acked+unknown {
				t.Errorf("counter: final %d outside [acked=%d, acked+unknown=%d]", final, acked, acked+unknown)
			}
		} else if final > acked+unknown+tainted {
			t.Errorf("counter: final %d exceeds every increment ever sent (%d)", final, acked+unknown+tainted)
		}
		t.Logf("chaos: %d faults, %d restarts, counter final=%d acked=%d unknown=%d tainted=%d",
			in.Faults(), cluster.restarts.Load(), final, acked, unknown, tainted)
	}

	_ = verifier.Close()
	cluster.stop()
	waitForGoroutines(t, baseline)
}

// TestChaosMerkleFreshnessMidDrainRestart runs the full NEXUS stack —
// merkle freshness mode plus write-back metadata — over the seeded
// fault injector, with scripted server kills landing while metadata
// drains (and their root updates) are in flight. Safety property: no
// torn root update survives. After healing, the writer's retried drain
// must converge, and a brand-new client mounting from sealed state only
// must verify every proof and read back every acknowledged write — a
// torn tree/root pair would surface as ErrBadProof or ErrStaleObject
// at mount.
func TestChaosMerkleFreshnessMidDrainRestart(t *testing.T) {
	seed := chaosSeed(t)
	rng := netsim.NewRand(seed * 7919)
	profile := netsim.FaultProfile{
		Seed:     seed,
		Cut:      0.02,
		Truncate: 0.02,
		Spike:    0.03,
		SpikeMax: 200 * time.Microsecond,
	}
	in := netsim.NewInjector(profile)
	cluster := startChaosCluster(t, in)
	t.Logf("merkle chaos seed %d", seed)

	afsC, err := Dial(cluster.addr, chaosClientConfig(seed, 77, in))
	if err != nil {
		t.Fatal(err)
	}
	ias, err := nexus.NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	platformSeed := []byte(fmt.Sprintf("merkle-chaos-platform-%d", seed))
	reg := nexus.NewObs()
	owner, err := nexus.NewIdentity("chaos-owner")
	if err != nil {
		t.Fatal(err)
	}

	// Volume setup runs through the faulty link too; a fault can land
	// mid-creation. Each retry wipes the partial volume server-side
	// (direct store access, not through the network) and starts over
	// with a fresh client.
	var (
		client *nexus.Client
		vol    *nexus.Volume
		sealed []byte
	)
	for attempt := 0; attempt < 30 && vol == nil; attempt++ {
		if attempt > 0 {
			if names, lerr := cluster.store.List(""); lerr == nil {
				for _, n := range names {
					_ = cluster.store.Delete(n)
				}
			}
			afsC.FlushCache()
			time.Sleep(5 * time.Millisecond)
		}
		c, err := nexus.NewClient(nexus.ClientConfig{
			Store:           afsC,
			IAS:             ias,
			PlatformSeed:    platformSeed,
			FreshnessMerkle: true,
			WritebackMode:   "on",
			Obs:             reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		v, s, err := c.CreateVolume(owner)
		if err != nil {
			continue
		}
		if err := v.FS().Mkdir("/chaos"); err != nil {
			continue
		}
		client, vol, sealed = c, v, s
	}
	if vol == nil {
		t.Fatal("volume setup never succeeded under injection")
	}
	nfs := vol.FS()
	encl := client.Enclave()

	// acked: writes whose WriteFile AND a later successful drain both
	// returned nil — these must survive everything below. pending:
	// written but not yet known drained. tainted: paths whose *latest*
	// WriteFile failed with unknown outcome — the data chunk may be
	// half-overwritten on the server, so the final read may fail, but
	// only with a typed authentication error, never silent corruption.
	acked := map[string]uint64{}
	pending := map[string]uint64{}
	tainted := map[string]bool{}
	commitPending := func() {
		for p, s := range pending {
			acked[p] = s
		}
		pending = map[string]uint64{}
	}

	const (
		files  = 8
		rounds = 48
	)
	for i := 0; i < rounds; i++ {
		k := i % files
		p := fmt.Sprintf("/chaos/f%02d", k)
		seq := uint64(i + 1)
		if err := nfs.WriteFile(p, chaosPayload(77, k, seq)); err == nil {
			pending[p] = seq
			tainted[p] = false
		} else {
			tainted[p] = true
		}
		switch {
		case i == rounds/3 || i == 2*rounds/3:
			// Kill the server while the drain — and its merkle root
			// update — is in flight.
			done := make(chan error, 1)
			go func() { done <- encl.SyncMetadata() }()
			cluster.restart()
			if err := <-done; err == nil {
				commitPending()
			}
		case rng.Intn(4) == 0:
			if err := encl.SyncMetadata(); err == nil {
				commitPending()
			}
		}
	}

	// Healing: injection off, the writer's drain must converge.
	in.Disable()
	var drainErr error
	for attempt := 0; attempt < 40; attempt++ {
		if drainErr = encl.SyncMetadata(); drainErr == nil {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if drainErr != nil {
		t.Fatalf("drain never converged after healing: %v", drainErr)
	}
	commitPending()

	if n := reg.CounterValue("enclave_freshness_proofs_total"); n == 0 {
		t.Error("merkle mode verified no proofs during the workload")
	}
	if n := reg.CounterValue("enclave_freshness_root_updates_total"); n == 0 {
		t.Error("merkle mode committed no root updates during the workload")
	}

	// A brand-new client (fresh platform state from the same seed,
	// fresh connection, fresh proof-store wrapper) mounts from sealed
	// state only: every proof must verify and every acknowledged write
	// must be present and untorn.
	afs2, err := Dial(cluster.addr, ClientConfig{
		RPCTimeout: 5 * time.Second,
		Retry:      RetryPolicy{MaxAttempts: 10, BaseBackoff: 5 * time.Millisecond, Seed: seed},
	})
	if err != nil {
		t.Fatal(err)
	}
	client2, err := nexus.NewClient(nexus.ClientConfig{
		Store:           afs2,
		IAS:             ias,
		PlatformSeed:    platformSeed,
		FreshnessMerkle: true,
		WritebackMode:   "on",
	})
	if err != nil {
		t.Fatal(err)
	}
	vol2, err := client2.Mount(owner, sealed, vol.ID())
	if err != nil {
		t.Fatalf("fresh merkle mount after chaos: %v (torn root update?)", err)
	}
	nfs2 := vol2.FS()
	for p, seq := range acked {
		data, err := nfs2.ReadFile(p)
		if err != nil {
			// A path whose latest WriteFile had an unknown outcome may
			// hold a half-overwritten chunk: detection (a typed error)
			// is the required behaviour then.
			if tainted[p] {
				t.Logf("%s: tainted write detected and rejected: %v", p, err)
				continue
			}
			t.Errorf("%s: acknowledged write unreadable after chaos: %v", p, err)
			continue
		}
		w, _, got, derr := decodeChaosPayload(data)
		if derr != nil {
			t.Errorf("%s: torn content after chaos: %v", p, derr)
			continue
		}
		if w != 77 {
			t.Errorf("%s: content belongs to worker %d", p, w)
		}
		if got < seq {
			t.Errorf("%s: lost acknowledged write: seq %d < acked %d", p, got, seq)
		}
	}

	_ = afsC.Close()
	_ = afs2.Close()
	cluster.stop()
}
