package afs

import (
	"fmt"
	"net"
	"testing"
	"time"

	"nexus/internal/backend"
	"nexus/internal/netsim"
	"nexus/internal/obs"
)

// startObsServer runs a plain AFS server for the observability tests.
func startObsServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer(backend.NewMemStore())
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv, l.Addr().String()
}

// TestTransportFaultCounterMatchesInjector pins the fault accounting to
// the injector's ground truth. With a dial-refuse-only profile and the
// callback channel disabled, every injected fault is a refused dial and
// every refused dial is observed exactly once by connectLocked — so
// afs_transport_faults_total must equal Injector.Faults() exactly, for
// any seed. The seed is fixed so the run (and the fault schedule, a pure
// function of the seed) is an exact replay every time.
func TestTransportFaultCounterMatchesInjector(t *testing.T) {
	const seed = 42
	in := netsim.NewInjector(netsim.FaultProfile{Seed: seed, DialRefuse: 0.3})
	_, addr := startObsServer(t)

	// A connected client never redials, so each iteration dials fresh —
	// that is where a dial-refuse profile injects. All clients share one
	// registry, so the counter aggregates across the whole schedule.
	reg := obs.NewRegistry()
	for i := 0; i < 40; i++ {
		c, err := Dial(addr, ClientConfig{
			Obs:              reg,
			DisableCallbacks: true,
			RPCTimeout:       2 * time.Second,
			Retry: RetryPolicy{
				MaxAttempts: 10,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  10 * time.Millisecond,
				Seed:        seed + int64(i),
			},
			Dial: in.Dialer(netsim.Loopback),
		})
		if err != nil {
			// Legitimate when every attempt's dial was refused; the
			// accounting is what is under test, not availability.
			continue
		}
		key := fmt.Sprintf("obs-k%d", i%8)
		_ = c.Put(key, []byte("v"))
		_, _ = c.Get(key)
		_ = c.Close()
	}

	faults := reg.CounterValue("afs_transport_faults_total")
	if injected := in.Faults(); faults != injected {
		t.Errorf("afs_transport_faults_total = %d, injector recorded %d", faults, injected)
	}
	if rpcs := reg.CounterValue("afs_rpcs_total"); rpcs == 0 {
		t.Error("afs_rpcs_total = 0, want > 0")
	}
	if faults == 0 {
		t.Error("no faults injected; the profile/seed no longer exercises the counter")
	}
	t.Logf("faults=%d retries=%d reconnects=%d rpcs=%d",
		faults,
		reg.CounterValue("afs_retries_total"),
		reg.CounterValue("afs_reconnects_total"),
		reg.CounterValue("afs_rpcs_total"))
}

// TestTransportFaultCounterBoundedByInjectorMixed extends the check to a
// mixed profile (refused dials, cut connections, truncated frames).
// Injected faults can go unobserved (a cut on a connection the client
// never touches again), but never the reverse: with no server restarts
// in play, every observed transport fault traces back to an injected
// one. So the counter is bounded by the injector's count.
func TestTransportFaultCounterBoundedByInjectorMixed(t *testing.T) {
	const seed = 7
	in := netsim.NewInjector(netsim.FaultProfile{
		Seed:       seed,
		DialRefuse: 0.05,
		Cut:        0.08,
		Truncate:   0.08,
	})
	_, addr := startObsServer(t)

	reg := obs.NewRegistry()
	c, err := Dial(addr, ClientConfig{
		Obs:              reg,
		DisableCallbacks: true,
		RPCTimeout:       2 * time.Second,
		Retry: RetryPolicy{
			MaxAttempts: 10,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  10 * time.Millisecond,
			Seed:        seed,
		},
		Dial: in.Dialer(netsim.Loopback),
	})
	if err != nil {
		t.Fatalf("dial through injector: %v", err)
	}
	for i := 0; i < 80; i++ {
		key := fmt.Sprintf("mixed-k%d", i%8)
		_ = c.Put(key, []byte("payload"))
		_, _ = c.Get(key)
	}
	_ = c.Close()

	faults := reg.CounterValue("afs_transport_faults_total")
	injected := in.Faults()
	if faults == 0 {
		t.Error("no transport faults observed; the profile/seed no longer exercises the counter")
	}
	if faults > injected {
		t.Errorf("afs_transport_faults_total = %d exceeds injector's %d", faults, injected)
	}
	// Every observed fault either burned a retry or a reconnect (or
	// failed its op outright); retries at least must have fired for the
	// client to have made progress through this much injection.
	if retries := reg.CounterValue("afs_retries_total"); retries == 0 {
		t.Error("afs_retries_total = 0, want > 0 under mixed fault injection")
	}
	t.Logf("faults=%d/%d retries=%d reconnects=%d rpcs=%d",
		faults, injected,
		reg.CounterValue("afs_retries_total"),
		reg.CounterValue("afs_reconnects_total"),
		reg.CounterValue("afs_rpcs_total"))
}

// TestClientRPCLatencyHistogram checks the latency instrument fills on
// the healthy path: every RPC lands one observation in afs_rpc_seconds.
func TestClientRPCLatencyHistogram(t *testing.T) {
	_, addr := startObsServer(t)
	reg := obs.NewRegistry()
	c, err := Dial(addr, ClientConfig{Obs: reg, DisableCallbacks: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("k"); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot("afs_rpc_seconds")
	if s.Count != reg.CounterValue("afs_rpcs_total") {
		t.Errorf("afs_rpc_seconds count %d != afs_rpcs_total %d", s.Count, reg.CounterValue("afs_rpcs_total"))
	}
	if s.Count == 0 || s.MaxNs <= 0 {
		t.Errorf("latency histogram not recording: %+v", s)
	}
}
