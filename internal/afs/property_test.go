package afs

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"nexus/internal/backend"
	"nexus/internal/netsim"
)

// Property: after any injected disconnect, a read observes either the
// pre-crash committed value or the post-crash committed value — never a
// torn frame. The armed dialer below gives each iteration surgical
// control over exactly which Write dies and how.

// cutPlan describes one scheduled connection failure.
type cutPlan struct {
	skip int // Write calls to pass through before acting
	// frac < 0 means "complete the write, then kill the connection"
	// (the frame is delivered, the reply is lost); otherwise the write
	// is truncated at frac and the connection killed mid-frame.
	frac float64
}

// armedDialer wires test-controlled cuts into a client's transport.
type armedDialer struct {
	mu   sync.Mutex
	plan *cutPlan // guarded by mu
}

func (a *armedDialer) arm(p cutPlan) {
	a.mu.Lock()
	a.plan = &p
	a.mu.Unlock()
}

func (a *armedDialer) dial(addr string) (net.Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &armedConn{Conn: c, a: a}, nil
}

type armedConn struct {
	net.Conn
	a *armedDialer
}

func (c *armedConn) Write(b []byte) (int, error) {
	c.a.mu.Lock()
	p := c.a.plan
	if p == nil {
		c.a.mu.Unlock()
		return c.Conn.Write(b)
	}
	if p.skip > 0 {
		p.skip--
		c.a.mu.Unlock()
		return c.Conn.Write(b)
	}
	c.a.plan = nil
	c.a.mu.Unlock()
	if p.frac < 0 {
		n, err := c.Conn.Write(b)
		_ = c.Conn.Close()
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w: connection killed after delivery", netsim.ErrInjected)
	}
	n := int(p.frac * float64(len(b)))
	if n >= len(b) {
		n = len(b) - 1
	}
	if n < 0 {
		n = 0
	}
	if n > 0 {
		_, _ = c.Conn.Write(b[:n])
	}
	_ = c.Conn.Close()
	return n, fmt.Errorf("%w: write truncated at %d/%d", netsim.ErrInjected, n, len(b))
}

func propPayload(i int) []byte {
	b := make([]byte, 400+i)
	rng := netsim.NewRand(int64(0xBEEF + i))
	_, _ = rng.Read(b)
	b[0] = byte(i) // cheap marker for failure messages
	return b
}

func TestPropertyNoTornFrameAcrossDisconnects(t *testing.T) {
	_, addr := startServer(t)
	armer := &armedDialer{}
	writer, err := Dial(addr, ClientConfig{
		RPCTimeout: 2 * time.Second,
		Retry:      RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, Seed: 11},
		Dial:       armer.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	// The reader is an independent client with caching off: every read
	// observes exactly what the server holds.
	reader := dialClient(t, addr, ClientConfig{CacheBytes: -1})

	const key = "torn-frame-victim"
	committed := propPayload(0)
	if err := writer.Put(key, committed); err != nil {
		t.Fatal(err)
	}

	rng := netsim.NewRand(4242)
	for i := 1; i <= 30; i++ {
		next := propPayload(i)
		// A store frame is two Writes (header, body). Alternate between
		// killing the header, cutting the body mid-frame at a random
		// fraction, and killing the connection after full delivery.
		var plan cutPlan
		switch i % 3 {
		case 0:
			plan = cutPlan{skip: 0, frac: rng.Float64()} // header cut
		case 1:
			plan = cutPlan{skip: 1, frac: rng.Float64()} // mid-body cut
		default:
			plan = cutPlan{skip: 1, frac: -1} // delivered, reply lost
		}
		// Make sure the client is connected before arming, so the plan
		// lands on the store frame and not on a reconnect handshake.
		if err := writer.Ping(); err != nil {
			t.Fatalf("iter %d: ping: %v", i, err)
		}
		armer.arm(plan)
		err := writer.Put(key, next)
		if err != nil && !errors.Is(err, backend.ErrInterrupted) {
			t.Fatalf("iter %d: put died with untyped error: %v", i, err)
		}

		// Every read during and after the crash must observe exactly the
		// old or the new committed value. A fully delivered frame is
		// applied asynchronously (the reply was lost, not the request), so
		// poll until it lands; a truncated frame can never be applied.
		deadline := time.Now().Add(2 * time.Second)
		for {
			got, gerr := reader.Get(key)
			if gerr != nil {
				t.Fatalf("iter %d: read: %v", i, gerr)
			}
			isOld, isNew := bytes.Equal(got, committed), bytes.Equal(got, next)
			if !isOld && !isNew {
				t.Fatalf("iter %d (plan %+v): torn read: %d bytes, neither committed (%d) nor next (%d)",
					i, plan, len(got), len(committed), len(next))
			}
			if isNew {
				if plan.frac >= 0 {
					t.Fatalf("iter %d: truncated frame was applied by the server", i)
				}
				committed = next
				break
			}
			if plan.frac >= 0 {
				break // truncated: the old value is the permanent outcome
			}
			if time.Now().After(deadline) {
				t.Fatalf("iter %d: fully delivered store never applied", i)
			}
			time.Sleep(2 * time.Millisecond)
		}
		// The writer itself must converge to the committed value too: its
		// cache was invalidated by the failed put and flushed on reconnect.
		wgot, werr := writer.Get(key)
		if werr != nil {
			t.Fatalf("iter %d: writer re-read: %v", i, werr)
		}
		if !bytes.Equal(wgot, committed) {
			t.Fatalf("iter %d: writer re-read diverged from committed value", i)
		}
	}
}

// recordingDialer remembers every connection it hands out so the test
// can sever a client's links from outside, simulating a network drop the
// client did not initiate.
type recordingDialer struct {
	mu    sync.Mutex
	conns []net.Conn // guarded by mu
}

func (d *recordingDialer) dial(addr string) (net.Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.conns = append(d.conns, c)
	d.mu.Unlock()
	return c, nil
}

func (d *recordingDialer) severAll() {
	d.mu.Lock()
	conns := d.conns
	d.conns = nil
	d.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

// Property: a reconnect can never serve a stale cached read. When c1's
// callback channel dies it may miss invalidations for writes made in the
// gap; its next read must come from the server, not the cache.
func TestPropertyNoStaleReadAfterReconnect(t *testing.T) {
	_, addr := startServer(t)
	rec := &recordingDialer{}
	c1, err := Dial(addr, ClientConfig{
		RPCTimeout: 2 * time.Second,
		Retry:      RetryPolicy{MaxAttempts: 6, BaseBackoff: time.Millisecond, Seed: 3},
		Dial:       rec.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2 := dialClient(t, addr, ClientConfig{})

	const key = "stale-read-victim"
	v1 := []byte("value before the partition")
	if err := c1.Put(key, v1); err != nil {
		t.Fatal(err)
	}
	// Warm c1's cache and prove it is actually serving from cache.
	if _, err := c1.Get(key); err != nil {
		t.Fatal(err)
	}
	_, hitsBefore := c1.Stats()
	if got, err := c1.Get(key); err != nil || !bytes.Equal(got, v1) {
		t.Fatalf("warm read: %q, %v", got, err)
	}
	if _, hits := c1.Stats(); hits != hitsBefore+1 {
		t.Fatal("warm read did not come from the cache; the property below would be vacuous")
	}

	// Partition c1 (both channels die), then write v2 from c2 while c1
	// cannot receive the invalidation.
	rec.severAll()
	waitFor(t, time.Second, func() bool { return c1.cbLost.Load() })
	v2 := []byte("value written during the partition")
	if err := c2.Put(key, v2); err != nil {
		t.Fatal(err)
	}

	// c1's very next read must observe v2: the lost callback channel
	// gates the cache off, and the reconnect flushes it.
	got, version, err := c1.GetVersioned(key)
	if err != nil {
		t.Fatalf("read after partition: %v", err)
	}
	if !bytes.Equal(got, v2) {
		t.Fatalf("stale read after reconnect: got %q, want %q", got, v2)
	}
	if c1.Reconnects() < 1 {
		t.Fatal("client never reconnected; the partition was not exercised")
	}
	// And the resynced cache is coherent again: version advances, later
	// writes invalidate via the new callback channel.
	if err := c2.Put(key, []byte("v3")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool {
		got, v, err := c1.GetVersioned(key)
		return err == nil && v > version && bytes.Equal(got, []byte("v3"))
	})
}

// Property: a lock release closure from before a reconnect is a no-op —
// it must never release a lock some other client has since acquired.
func TestPropertyLockReleaseAfterReconnectIsNoOp(t *testing.T) {
	_, addr := startServer(t)
	rec := &recordingDialer{}
	c1, err := Dial(addr, ClientConfig{
		RPCTimeout: time.Second,
		Retry:      RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, Seed: 5},
		Dial:       rec.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2 := dialClient(t, addr, ClientConfig{})

	const key = "lock-lease-victim"
	staleRelease, err := c1.Lock(key)
	if err != nil {
		t.Fatal(err)
	}
	// c1's connection dies: the server auto-releases its lock, and c2
	// acquires it.
	rec.severAll()
	done := make(chan struct{})
	var c2Release func()
	go func() {
		defer close(done)
		var lerr error
		c2Release, lerr = c2.Lock(key)
		if lerr != nil {
			t.Errorf("c2 lock after c1's disconnect: %v", lerr)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("c2 never acquired the lock after c1's disconnect")
	}
	// Force c1 to notice and reconnect, then fire the stale release.
	if err := c1.Ping(); err != nil {
		t.Fatalf("c1 ping after sever: %v", err)
	}
	if c1.Reconnects() < 1 {
		t.Fatal("c1 never reconnected")
	}
	staleRelease()
	// c2 must still hold the lock: a third client's lock RPC times out
	// rather than being granted.
	c3, err := Dial(addr, ClientConfig{
		RPCTimeout: 300 * time.Millisecond,
		Retry:      RetryPolicy{MaxAttempts: 1, Seed: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if _, err := c3.Lock(key); !errors.Is(err, backend.ErrInterrupted) {
		t.Fatalf("c3 lock while c2 holds it: %v, want deadline-bounded ErrInterrupted", err)
	}
	if c2Release != nil {
		c2Release()
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
