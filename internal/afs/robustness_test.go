package afs

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"nexus/internal/netsim"
)

// The server reads frames from an untrusted network; hostile input must
// never crash it or wedge other clients.

func TestServerSurvivesGarbageConnections(t *testing.T) {
	_, addr := startServer(t)

	// A healthy client to verify liveness throughout.
	healthy := dialClient(t, addr, ClientConfig{})
	if err := healthy.Put("canary", []byte("alive")); err != nil {
		t.Fatal(err)
	}

	payloads := [][]byte{
		{},                       // immediate close
		{0x00},                   // truncated length
		{0xff, 0xff, 0xff, 0xff}, // absurd frame length
		{0x00, 0x00, 0x00, 0x00}, // zero-length frame (below header min)
		{0x09, 0x00, 0x00, 0x00, 0x63, 0, 0, 0, 0, 0, 0, 0, 0}, // unknown op 99 without hello
	}
	for i, payload := range payloads {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		if len(payload) > 0 {
			_, _ = conn.Write(payload)
		}
		_ = conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		buf := make([]byte, 64)
		_, _ = conn.Read(buf) // drain whatever comes back
		_ = conn.Close()
	}

	// Random fuzz frames with plausible lengths, drawn from the shared
	// seeded RNG so the byte stream is identical on every run.
	rng := netsim.NewRand(99)
	for i := 0; i < 50; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("fuzz dial %d: %v", i, err)
		}
		n := 9 + rng.Intn(64)
		frame := make([]byte, 4+n)
		binary.LittleEndian.PutUint32(frame[0:4], uint32(n))
		rng.Read(frame[4:])
		_, _ = conn.Write(frame)
		_ = conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		buf := make([]byte, 64)
		_, _ = conn.Read(buf)
		_ = conn.Close()
	}

	// The server still serves correct clients.
	got, err := healthy.Get("canary")
	if err != nil || string(got) != "alive" {
		t.Fatalf("healthy client after garbage: %q, %v", got, err)
	}
	fresh := dialClient(t, addr, ClientConfig{})
	if err := fresh.Ping(); err != nil {
		t.Fatalf("fresh client after garbage: %v", err)
	}
}

func TestServerRejectsMalformedRequestsOnValidSession(t *testing.T) {
	_, addr := startServer(t)

	// Complete a real hello, then send structurally invalid request
	// bodies; each must yield an error frame, not a dropped connection.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	hello := frame{op: opHello, reqID: 1}
	w := make([]byte, 0, 32)
	w = append(w, 0x07, 0, 0, 0) // string len 7
	w = append(w, "fuzzer!"...)
	w = append(w, 0) // isCallback = false
	hello.body = w
	if err := writeFrame(conn, hello); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(conn); err != nil {
		t.Fatalf("hello reply: %v", err)
	}

	// Fetch with truncated name field.
	if err := writeFrame(conn, frame{op: opFetch, reqID: 2, body: []byte{0xff, 0xff}}); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(conn)
	if err != nil {
		t.Fatalf("response to malformed fetch: %v", err)
	}
	if resp.op != opError {
		t.Fatalf("malformed fetch answered with op %d, want error", resp.op)
	}

	// Store with a bogus payload length prefix.
	body := []byte{0x01, 0, 0, 0, 'x', 0xff, 0xff, 0xff, 0x7f}
	if err := writeFrame(conn, frame{op: opStore, reqID: 3, body: body}); err != nil {
		t.Fatal(err)
	}
	resp, err = readFrame(conn)
	if err != nil {
		t.Fatalf("response to malformed store: %v", err)
	}
	if resp.op != opError {
		t.Fatalf("malformed store answered with op %d, want error", resp.op)
	}

	// The session remains usable after rejected requests.
	if err := writeFrame(conn, frame{op: opPing, reqID: 4}); err != nil {
		t.Fatal(err)
	}
	resp, err = readFrame(conn)
	if err != nil || resp.op != opReply {
		t.Fatalf("ping after rejections: op %d, %v", resp.op, err)
	}
}
