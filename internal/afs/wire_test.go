package afs

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"nexus/internal/backend"
)

// Every error frame path: each wire error code must map back to the
// right Go sentinel, and malformed error bodies must degrade to
// ErrProtocol rather than panic or silently succeed.
func TestDecodeErrorTable(t *testing.T) {
	cases := []struct {
		name     string
		body     []byte
		sentinel error // required in the chain, nil if none
		contains string
	}{
		{
			name:     "not-exist maps to backend.ErrNotExist",
			body:     encodeError(errCodeNotExist, "obj-1"),
			sentinel: backend.ErrNotExist,
			contains: "obj-1",
		},
		{
			name:     "bad-name maps to backend.ErrBadName",
			body:     encodeError(errCodeBadName, "../evil"),
			sentinel: backend.ErrBadName,
			contains: "../evil",
		},
		{
			name:     "bad-request is a plain server error",
			body:     encodeError(errCodeBadRequest, "short body"),
			contains: "short body",
		},
		{
			name:     "internal is a plain server error",
			body:     encodeError(errCodeInternal, "disk on fire"),
			contains: "disk on fire",
		},
		{
			name:     "unknown code degrades to ErrProtocol",
			body:     encodeError(errCode(200), "future code"),
			sentinel: ErrProtocol,
			contains: "200",
		},
		{
			name:     "empty body is ErrProtocol",
			body:     nil,
			sentinel: ErrProtocol,
		},
		{
			name:     "truncated message field is ErrProtocol",
			body:     []byte{byte(errCodeNotExist), 0xff, 0xff, 0xff},
			sentinel: ErrProtocol,
		},
		{
			name:     "trailing junk is ErrProtocol",
			body:     append(encodeError(errCodeNotExist, "x"), 0xde, 0xad),
			sentinel: ErrProtocol,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := decodeError(tc.body)
			if err == nil {
				t.Fatal("decodeError returned nil")
			}
			if tc.sentinel != nil && !errors.Is(err, tc.sentinel) {
				t.Fatalf("error %q does not wrap %v", err, tc.sentinel)
			}
			if tc.sentinel == nil {
				// Plain server errors must NOT match any sentinel a caller
				// would branch on.
				for _, s := range []error{backend.ErrNotExist, backend.ErrBadName, ErrProtocol} {
					if errors.Is(err, s) {
						t.Fatalf("plain server error %q wraps %v", err, s)
					}
				}
			}
			if tc.contains != "" && !strings.Contains(err.Error(), tc.contains) {
				t.Fatalf("error %q missing %q", err, tc.contains)
			}
		})
	}
}

func TestWriteFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	f := frame{op: opStore, body: make([]byte, maxFrameSize)}
	if err := writeFrame(&buf, f); !errors.Is(err, ErrProtocol) {
		t.Fatalf("oversize frame: %v, want ErrProtocol", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("oversize frame leaked %d bytes onto the wire", buf.Len())
	}
}

func TestReadFrameErrorPaths(t *testing.T) {
	cases := []struct {
		name     string
		data     []byte
		sentinel error
	}{
		{"empty stream is clean EOF", nil, io.EOF},
		{"mid-header cut is clean EOF", []byte{0x09, 0x00}, io.EOF},
		{"zero length is ErrProtocol", []byte{0, 0, 0, 0}, ErrProtocol},
		{"length below header min is ErrProtocol", []byte{0x08, 0, 0, 0}, ErrProtocol},
		{"absurd length is ErrProtocol", []byte{0xff, 0xff, 0xff, 0xff}, ErrProtocol},
		{"mid-body cut is an error", []byte{0x0a, 0x00, 0x00, 0x00, byte(opPing), 1, 0, 0, 0, 0, 0, 0}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := readFrame(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("readFrame accepted malformed input")
			}
			if tc.sentinel != nil && !errors.Is(err, tc.sentinel) {
				t.Fatalf("got %v, want %v in chain", err, tc.sentinel)
			}
		})
	}
}

func TestReadFrameRoundTrip(t *testing.T) {
	for _, f := range []frame{
		{op: opPing, reqID: 1},
		{op: opStore, reqID: 1 << 60, body: []byte("payload")},
		{op: opInvalidate, reqID: 0, body: encodeName("file-7")},
	} {
		var buf bytes.Buffer
		if err := writeFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.op != f.op || got.reqID != f.reqID || !bytes.Equal(got.body, f.body) {
			t.Fatalf("round trip: %+v != %+v", got, f)
		}
	}
}

func TestOpCodeStrings(t *testing.T) {
	for op, want := range map[opCode]string{
		opFetch: "fetch", opStore: "store", opLock: "lock",
		opCode(250): "op(250)",
	} {
		if got := op.String(); got != want {
			t.Errorf("opCode(%d).String() = %q, want %q", uint8(op), got, want)
		}
	}
}
