// Package afs implements an AFS-like distributed file service: a TCP
// server exporting whole-file fetch/store over a compact binary RPC
// protocol, and a caching client with open-to-close consistency and
// server-driven cache invalidation callbacks.
//
// The NEXUS prototype stacks on OpenAFS (DSN'19 §V) and inherits its cost
// model: whole-file transfers, a client cache that makes warm re-reads
// free, callback promises that invalidate cached copies when another
// client writes, and advisory flock()-style locks that NEXUS takes around
// metadata updates (§V-A). This package reproduces exactly those
// mechanisms so the evaluation's overhead structure carries over; it is
// not a byte-compatible AFS implementation.
package afs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"

	"nexus/internal/backend"
	"nexus/internal/serial"
)

// Protocol limits.
const (
	// maxFrameSize bounds a single RPC frame; large files are still sent
	// whole (AFS-style), so this must exceed the largest object plus
	// headers.
	maxFrameSize = 128 << 20
)

// Operation codes. Enums start at one so the zero value is invalid.
type opCode uint8

const (
	opHello opCode = iota + 1
	opFetch
	opStore
	opRemove
	opList
	opLock
	opUnlock
	opStat
	opPing

	// opReply carries a successful response; opError a failed one.
	opReply opCode = 100
	opError opCode = 101

	// opInvalidate is pushed server→client on the callback channel when
	// another client overwrites or removes a file the client has cached.
	opInvalidate opCode = 120
)

// String names the op for error messages.
func (op opCode) String() string {
	switch op {
	case opHello:
		return "hello"
	case opFetch:
		return "fetch"
	case opStore:
		return "store"
	case opRemove:
		return "remove"
	case opList:
		return "list"
	case opLock:
		return "lock"
	case opUnlock:
		return "unlock"
	case opStat:
		return "stat"
	case opPing:
		return "ping"
	case opReply:
		return "reply"
	case opError:
		return "error"
	case opInvalidate:
		return "invalidate"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Wire error codes, mapped back to sentinel errors client-side.
type errCode uint8

const (
	errCodeNotExist errCode = iota + 1
	errCodeBadName
	errCodeBadRequest
	errCodeInternal
)

// Errors surfaced by the client.
var (
	// ErrClosed reports use of a closed client or server.
	ErrClosed = errors.New("afs: connection closed")
	// ErrProtocol reports a malformed frame.
	ErrProtocol = errors.New("afs: protocol violation")
)

// frame is one length-prefixed protocol message.
type frame struct {
	op    opCode
	reqID uint64
	body  []byte
}

// writeFrame sends f over w as: u32 payload length ‖ op(1) ‖ reqID(8) ‖ body.
func writeFrame(w io.Writer, f frame) error {
	payload := 1 + 8 + len(f.body)
	if payload > maxFrameSize {
		return fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrProtocol, payload)
	}
	hdr := make([]byte, 4+1+8)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payload))
	hdr[4] = byte(f.op)
	binary.LittleEndian.PutUint64(hdr[5:13], f.reqID)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("afs: writing frame header: %w", err)
	}
	if len(f.body) > 0 {
		if _, err := w.Write(f.body); err != nil {
			return fmt.Errorf("afs: writing frame body: %w", err)
		}
	}
	return nil
}

// writeFrameScatter sends one frame whose body is prefix followed by
// segTotal bytes produced incrementally by next (nil segment = done).
// The header and prefix coalesce into a single write — the simulated
// network charges latency per write — and each produced segment goes
// out as soon as it exists, so payload production (chunk sealing)
// overlaps the transfer. The receiver sees one ordinary frame;
// scatter/gather framing is purely a sender-side shape.
//
// A producer error or a short/overlong segment stream leaves a partial
// frame on the wire: the connection is unusable and the caller must
// drop it (the peer's io.ReadFull then fails, discarding the partial
// frame without applying anything).
func writeFrameScatter(w io.Writer, op opCode, reqID uint64, prefix []byte, segTotal int, next func() ([]byte, error)) error {
	payload := 1 + 8 + len(prefix) + segTotal
	if payload > maxFrameSize {
		return fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrProtocol, payload)
	}
	hdr := make([]byte, 4+1+8, 4+1+8+len(prefix))
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payload))
	hdr[4] = byte(op)
	binary.LittleEndian.PutUint64(hdr[5:13], reqID)
	hdr = append(hdr, prefix...)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("afs: writing frame header: %w", err)
	}
	sent := 0
	for {
		seg, err := next()
		if err != nil {
			return fmt.Errorf("afs: producing frame body: %w", err)
		}
		if seg == nil {
			break
		}
		if sent += len(seg); sent > segTotal {
			return fmt.Errorf("%w: segment stream produced %d bytes, announced %d", ErrProtocol, sent, segTotal)
		}
		if _, err := w.Write(seg); err != nil {
			return fmt.Errorf("afs: writing frame body: %w", err)
		}
	}
	if sent != segTotal {
		return fmt.Errorf("%w: segment stream ended at %d bytes, announced %d", ErrProtocol, sent, segTotal)
	}
	return nil
}

// readFrame reads the next frame from r.
func readFrame(r io.Reader) (frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return frame{}, io.EOF
		}
		return frame{}, fmt.Errorf("afs: reading frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 9 || n > maxFrameSize {
		return frame{}, fmt.Errorf("%w: frame length %d", ErrProtocol, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return frame{}, fmt.Errorf("afs: reading frame body: %w", err)
	}
	return frame{
		op:    opCode(payload[0]),
		reqID: binary.LittleEndian.Uint64(payload[1:9]),
		body:  payload[9:],
	}, nil
}

// encodeError builds an opError body.
func encodeError(code errCode, msg string) []byte {
	w := serial.NewWriter(8 + len(msg))
	w.WriteUint8(uint8(code))
	w.WriteString(msg)
	return w.Bytes()
}

// decodeError converts an opError body back to a Go error.
func decodeError(body []byte) error {
	r := serial.NewReader(body)
	code := errCode(r.ReadUint8("error code"))
	msg := r.ReadString(0, "error message")
	if err := r.Finish(); err != nil {
		return fmt.Errorf("%w: bad error frame: %v", ErrProtocol, err)
	}
	switch code {
	case errCodeNotExist:
		return fmt.Errorf("afs: %s: %w", msg, backend.ErrNotExist)
	case errCodeBadName:
		return fmt.Errorf("afs: %s: %w", msg, backend.ErrBadName)
	case errCodeBadRequest, errCodeInternal:
		return fmt.Errorf("afs: server error: %s", msg)
	default:
		return fmt.Errorf("%w: unknown error code %d (%s)", ErrProtocol, code, msg)
	}
}

// closeWrite half-closes c if supported, nudging the peer's read loop.
func closeWrite(c net.Conn) {
	type closeWriter interface{ CloseWrite() error }
	if cw, ok := c.(closeWriter); ok {
		_ = cw.CloseWrite()
	}
}
