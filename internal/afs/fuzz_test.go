package afs

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzFrameBytes encodes a frame the way writeFrame does, for seeding.
func fuzzFrameBytes(op opCode, reqID uint64, body []byte) []byte {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frame{op: op, reqID: reqID, body: body}); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzWireDecode feeds arbitrary bytes to the RPC frame parser. readFrame
// must never panic, and any frame it accepts must survive a
// re-encode/re-decode round trip unchanged — the property that keeps a
// NEXUS client and the untrusted server's view of the stream consistent.
// decodeError is exercised on the same input since opError bodies arrive
// from the network too.
func FuzzWireDecode(f *testing.F) {
	f.Add(fuzzFrameBytes(opHello, 1, []byte("client-1")))
	f.Add(fuzzFrameBytes(opPing, 42, nil))
	f.Add(fuzzFrameBytes(opError, 7, encodeError(errCodeNotExist, "missing")))
	f.Add([]byte{})
	f.Add([]byte{0x09, 0x00, 0x00, 0x00, 0x01})                        // truncated body
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00})                        // absurd length claim
	f.Add(append(fuzzFrameBytes(opStore, 3, []byte("x")), 0xde, 0xad)) // trailing junk
	f.Fuzz(func(t *testing.T, data []byte) {
		// readFrame trusts the claimed length only up to maxFrameSize, but
		// still allocates it before reading; skip inputs that claim a huge
		// body they do not carry, so the fuzzer doesn't spend its budget
		// zeroing buffers that a 1 MiB claim already covers.
		if len(data) >= 4 {
			if n := binary.LittleEndian.Uint32(data[:4]); n > 1<<20 && uint64(len(data)-4) < uint64(n) {
				t.Skip("oversized length claim without a body")
			}
		}

		fr, err := readFrame(bytes.NewReader(data))
		if err == nil {
			var buf bytes.Buffer
			if err := writeFrame(&buf, fr); err != nil {
				t.Fatalf("re-encoding accepted frame: %v", err)
			}
			back, err := readFrame(&buf)
			if err != nil {
				t.Fatalf("re-decoding re-encoded frame: %v", err)
			}
			if back.op != fr.op || back.reqID != fr.reqID || !bytes.Equal(back.body, fr.body) {
				t.Fatalf("round trip mismatch: %+v != %+v", back, fr)
			}
		}

		// opError bodies come straight off the wire; decoding must be
		// total (an error result is fine, a panic is not).
		_ = decodeError(data)
	})
}
