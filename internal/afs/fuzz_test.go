package afs

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"nexus/internal/netsim"
)

// fuzzFrameBytes encodes a frame the way writeFrame does, for seeding.
func fuzzFrameBytes(op opCode, reqID uint64, body []byte) []byte {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frame{op: op, reqID: reqID, body: body}); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzWireDecode feeds arbitrary bytes to the RPC frame parser. readFrame
// must never panic, and any frame it accepts must survive a
// re-encode/re-decode round trip unchanged — the property that keeps a
// NEXUS client and the untrusted server's view of the stream consistent.
// decodeError is exercised on the same input since opError bodies arrive
// from the network too.
func FuzzWireDecode(f *testing.F) {
	f.Add(fuzzFrameBytes(opHello, 1, []byte("client-1")))
	f.Add(fuzzFrameBytes(opPing, 42, nil))
	f.Add(fuzzFrameBytes(opError, 7, encodeError(errCodeNotExist, "missing")))
	f.Add([]byte{})
	f.Add([]byte{0x09, 0x00, 0x00, 0x00, 0x01})                        // truncated body
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00})                        // absurd length claim
	f.Add(append(fuzzFrameBytes(opStore, 3, []byte("x")), 0xde, 0xad)) // trailing junk

	// Mid-frame cuts exactly as the fault injector produces them: well
	// formed frames truncated at the injector's scheduled fractions, so
	// the corpus covers the byte prefixes a peer actually observes when a
	// connection dies mid-write.
	cutter := netsim.FaultProfile{Seed: 7, Truncate: 1}
	wholeFrames := [][]byte{
		fuzzFrameBytes(opStore, 11, append(encodeName("victim"), bytes.Repeat([]byte{0xab}, 256)...)),
		fuzzFrameBytes(opFetch, 12, encodeName("victim")),
		fuzzFrameBytes(opError, 13, encodeError(errCodeInternal, "backend exploded")),
		fuzzFrameBytes(opInvalidate, 0, encodeName("victim")),
	}
	for i, whole := range wholeFrames {
		ev := cutter.WriteFault(uint64(i))
		n := int(ev.Frac * float64(len(whole)))
		if n >= len(whole) {
			n = len(whole) - 1
		}
		if n < 0 {
			n = 0
		}
		f.Add(whole[:n])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// readFrame trusts the claimed length only up to maxFrameSize, but
		// still allocates it before reading; skip inputs that claim a huge
		// body they do not carry, so the fuzzer doesn't spend its budget
		// zeroing buffers that a 1 MiB claim already covers.
		if len(data) >= 4 {
			if n := binary.LittleEndian.Uint32(data[:4]); n > 1<<20 && uint64(len(data)-4) < uint64(n) {
				t.Skip("oversized length claim without a body")
			}
		}

		fr, err := readFrame(bytes.NewReader(data))
		if err == nil {
			var buf bytes.Buffer
			if err := writeFrame(&buf, fr); err != nil {
				t.Fatalf("re-encoding accepted frame: %v", err)
			}
			back, err := readFrame(&buf)
			if err != nil {
				t.Fatalf("re-decoding re-encoded frame: %v", err)
			}
			if back.op != fr.op || back.reqID != fr.reqID || !bytes.Equal(back.body, fr.body) {
				t.Fatalf("round trip mismatch: %+v != %+v", back, fr)
			}
		}

		// opError bodies come straight off the wire; decoding must be
		// total (an error result is fine, a panic is not).
		_ = decodeError(data)
	})
}

// FuzzRetrySchedule drives the retry/backoff state machine with
// arbitrary policies and checks its safety invariants: the un-jittered
// backoff curve is monotone non-decreasing and never exceeds the cap,
// jittered waits stay within JitterFrac of the curve, and the
// idempotency classifier never lets a mutating op be re-sent.
func FuzzRetrySchedule(f *testing.F) {
	f.Add(int64(0), 4, int64(5_000_000), int64(1_000_000_000), 2.0, 0.2, uint8(opFetch))
	f.Add(int64(42), 1, int64(-5), int64(0), 0.0, 1.5, uint8(opStore))
	f.Add(int64(7), 100, int64(1), int64(1), 1.0, 0.0, uint8(opLock))
	f.Add(int64(-1), 0, int64(1<<40), int64(1), 1e9, -0.5, uint8(opPing))
	f.Fuzz(func(t *testing.T, seed int64, attempts int, base, ceil int64, mult, jitter float64, op uint8) {
		p := RetryPolicy{
			MaxAttempts: attempts,
			BaseBackoff: time.Duration(base),
			MaxBackoff:  time.Duration(ceil),
			Multiplier:  mult,
			JitterFrac:  jitter,
			Seed:        seed,
		}
		st := newRetryState(p)
		eff := st.policy
		if eff.MaxAttempts < 1 || eff.BaseBackoff <= 0 || eff.MaxBackoff < eff.BaseBackoff ||
			eff.Multiplier < 1 || eff.JitterFrac < 0 || eff.JitterFrac > 1 {
			t.Fatalf("withDefaults produced an unsafe policy: %+v", eff)
		}
		prev := time.Duration(0)
		for n := 1; n <= 24; n++ {
			d := eff.backoffAt(n)
			if d < prev {
				t.Fatalf("backoff not monotone: backoffAt(%d)=%v < %v", n, d, prev)
			}
			if d > eff.MaxBackoff {
				t.Fatalf("backoffAt(%d)=%v exceeds cap %v", n, d, eff.MaxBackoff)
			}
			w := st.wait(n)
			if w < d {
				t.Fatalf("wait(%d)=%v below un-jittered backoff %v", n, w, d)
			}
			// +1 absorbs the float->Duration floor.
			if bound := d + time.Duration(eff.JitterFrac*float64(d)) + 1; w > bound {
				t.Fatalf("wait(%d)=%v exceeds jitter bound %v", n, w, bound)
			}
			prev = d
		}
		// The classifier must never clear a mutating op for re-send.
		switch opCode(op) {
		case opStore, opRemove, opLock, opUnlock, opHello:
			if retryable(opCode(op)) {
				t.Fatalf("non-idempotent op %s classified retryable", opCode(op))
			}
		case opFetch, opStat, opList, opPing:
			if !retryable(opCode(op)) {
				t.Fatalf("idempotent op %s classified non-retryable", opCode(op))
			}
		}
	})
}
