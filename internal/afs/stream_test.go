package afs

import (
	"bytes"
	"errors"
	"testing"
)

// segmented returns a next() producer yielding data in segments of the
// given sizes (the remainder rides on the last segment).
func segmented(data []byte, sizes ...int) func() ([]byte, error) {
	off := 0
	i := 0
	return func() ([]byte, error) {
		if off >= len(data) {
			return nil, nil
		}
		n := len(data) - off
		if i < len(sizes) && sizes[i] < n {
			n = sizes[i]
		}
		i++
		seg := data[off : off+n]
		off += n
		return seg, nil
	}
}

// TestPutVersionedStreamRoundTrip stores a file through the scattered
// frame writer and checks the server assembled it byte-identically, the
// version stream advanced, and the client cache was populated from the
// passing segments (the warm read must not issue an RPC).
func TestPutVersionedStreamRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c := dialClient(t, addr, ClientConfig{})

	data := make([]byte, 96<<10)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	v1, err := c.PutVersionedStream("f", len(data), segmented(data, 4096, 1, 64<<10))
	if err != nil {
		t.Fatalf("PutVersionedStream: %v", err)
	}
	if v1 == 0 {
		t.Fatal("streamed put returned version 0")
	}

	rpcsBefore, hitsBefore := c.Stats()
	got, v, err := c.GetVersioned("f")
	if err != nil {
		t.Fatalf("GetVersioned: %v", err)
	}
	if !bytes.Equal(got, data) || v != v1 {
		t.Fatalf("round trip mismatch (version %d vs %d)", v, v1)
	}
	rpcsAfter, hitsAfter := c.Stats()
	if rpcsAfter != rpcsBefore || hitsAfter != hitsBefore+1 {
		t.Fatalf("warm read after streamed put: rpcs %d→%d hits %d→%d, want cache hit and no RPC",
			rpcsBefore, rpcsAfter, hitsBefore, hitsAfter)
	}

	// Empty stream: zero-length object, still versioned.
	v2, err := c.PutVersionedStream("empty", 0, segmented(nil))
	if err != nil {
		t.Fatalf("empty streamed put: %v", err)
	}
	gotEmpty, _, err := c.GetVersioned("empty")
	if err != nil || len(gotEmpty) != 0 || v2 == 0 {
		t.Fatalf("empty round trip: data %v version %d err %v", gotEmpty, v2, err)
	}
}

// TestPutVersionedStreamSecondClientSees checks cross-client visibility:
// a file stored through the streaming put is fetched by another client,
// proving the frame on the wire is an ordinary store.
func TestPutVersionedStreamSecondClientSees(t *testing.T) {
	_, addr := startServer(t)
	a := dialClient(t, addr, ClientConfig{})
	b := dialClient(t, addr, ClientConfig{})

	data := bytes.Repeat([]byte("scattered-"), 1000)
	if _, err := a.PutVersionedStream("x", len(data), segmented(data, 512)); err != nil {
		t.Fatal(err)
	}
	got, err := b.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("second client read mismatch after streamed put")
	}
}

// TestPutVersionedStreamProducerFailure checks the abort contract: when
// the producer errors mid-frame, the call fails with that error, the
// server applies nothing (the old version survives), and the client
// recovers onto a fresh connection for subsequent RPCs.
func TestPutVersionedStreamProducerFailure(t *testing.T) {
	_, addr := startServer(t)
	c := dialClient(t, addr, ClientConfig{})

	old := []byte("old contents")
	if _, err := c.PutVersioned("f", old); err != nil {
		t.Fatal(err)
	}

	sealFail := errors.New("chunk seal failed")
	calls := 0
	next := func() ([]byte, error) {
		calls++
		if calls == 1 {
			return make([]byte, 1024), nil
		}
		return nil, sealFail
	}
	if _, err := c.PutVersionedStream("f", 4096, next); !errors.Is(err, sealFail) {
		t.Fatalf("producer failure = %v, want %v", err, sealFail)
	}

	// The aborted frame must not have been applied, and the client must
	// have resynced (the cache was invalidated, so this is a real fetch).
	got, err := c.Get("f")
	if err != nil {
		t.Fatalf("Get after aborted stream: %v", err)
	}
	if !bytes.Equal(got, old) {
		t.Fatalf("aborted streamed put changed contents: %q", got)
	}
}

// TestPutVersionedStreamLengthMismatch checks that a producer yielding
// a different byte count than announced aborts the exchange instead of
// desynchronizing the protocol.
func TestPutVersionedStreamLengthMismatch(t *testing.T) {
	_, addr := startServer(t)
	c := dialClient(t, addr, ClientConfig{})

	short := segmented(make([]byte, 100))
	if _, err := c.PutVersionedStream("f", 200, short); err == nil {
		t.Fatal("short segment stream succeeded")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping after aborted stream: %v", err)
	}
}
