package afs

import (
	"container/list"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nexus/internal/backend"
	"nexus/internal/netsim"
	"nexus/internal/obs"
	"nexus/internal/serial"
	"nexus/internal/uuid"
)

// DefaultCacheBytes is the default client cache budget (AFS cache
// managers default to hundreds of MiB of disk cache; we hold whole files
// in memory).
const DefaultCacheBytes = 512 << 20

// ClientConfig tunes a client.
type ClientConfig struct {
	// Profile simulates the network between client and server.
	Profile netsim.Profile
	// CacheBytes bounds the whole-file cache; 0 means DefaultCacheBytes,
	// negative disables caching entirely.
	CacheBytes int64
	// DisableCallbacks skips the callback channel; the cache then only
	// invalidates on the client's own writes. Used by tests and by the
	// cache-ablation benchmark.
	DisableCallbacks bool
	// RPCTimeout bounds each RPC exchange (including server-side lock
	// waits). 0 means DefaultRPCTimeout; negative disables deadlines.
	RPCTimeout time.Duration
	// Retry tunes automatic reconnect and idempotent-RPC retry; the
	// zero value means defaults.
	Retry RetryPolicy
	// Dial overrides the transport dialer. Tests use it to route
	// connections through a netsim fault injector. Nil means a plain
	// netsim dial with Profile's costs.
	Dial func(addr string) (net.Conn, error)
	// Obs is the observability registry the client meters into
	// (RPC/retry/fault counters, RPC latency, per-op spans). Optional;
	// a private registry is created when nil.
	Obs *obs.Registry
}

// Client is a caching AFS client. It implements backend.Store, so a
// NEXUS volume can be stacked directly on top of it.
//
// Consistency model (matching AFS): whole files are fetched on first
// access and cached; the server records a callback promise and notifies
// the client if another client changes the file, invalidating the cached
// copy. Writes are write-through. Advisory locks are server-side and
// exclusive.
//
// Failure model: every RPC exchange carries a deadline, and the client
// reconnects automatically with seeded exponential backoff. Read-only
// RPCs (fetch/stat/list/ping) are retried transparently across
// reconnects; mutating RPCs are never re-sent — a mid-exchange failure
// surfaces ErrInterrupted because the server may already have applied
// the operation. Every reconnect flushes the whole-file cache, and the
// cache is bypassed the instant the callback channel drops, so lost
// invalidations can never yield stale reads.
type Client struct {
	id      string
	addr    string
	profile netsim.Profile
	dialFn  func(addr string) (net.Conn, error)
	timeout time.Duration
	retry   *retryState
	cbOff   bool

	reqMu sync.Mutex // serializes request/response exchanges and reconnects
	reqID uint64     // guarded by reqMu

	connMu sync.Mutex // guards the live connection pointers
	conn   net.Conn   // guarded by connMu
	cbConn net.Conn   // guarded by connMu

	// gen counts successful connects; it only changes under reqMu but is
	// read lock-free by lock-release closures and the callback loop.
	gen atomic.Uint64
	// cbLost is set when the live callback channel drops: the cache is
	// bypassed and the next RPC forces a full resync (reconnect + flush).
	cbLost atomic.Bool

	cache *fileCache

	closed atomic.Bool
	wg     sync.WaitGroup // callback-loop goroutines

	metrics clientMetrics
}

// clientMetrics holds the client's obs instrument handles. The legacy
// Stats/Reconnects accessors are shims over these counters; metric
// names are catalogued in DESIGN.md §11.
type clientMetrics struct {
	rpcs      *obs.Counter // afs_rpcs_total
	cacheHits *obs.Counter // afs_cache_hits_total
	// retries counts extra RPC attempts after a transport failure
	// (attempt two onward; first attempts are not retries).
	retries *obs.Counter // afs_retries_total
	// transportFaults counts observed transport-level failures: failed
	// dials (main and callback channel) and mid-exchange breaks. With a
	// dial-fault-only injector this equals the injector's fault count
	// exactly; see the chaos suite.
	transportFaults *obs.Counter // afs_transport_faults_total
	reconnects      *obs.Counter // afs_reconnects_total
	rpcLat          *obs.Histogram
	tracer          *obs.Tracer
}

func (m *clientMetrics) bind(reg *obs.Registry) {
	m.rpcs = reg.Counter("afs_rpcs_total")
	m.cacheHits = reg.Counter("afs_cache_hits_total")
	m.retries = reg.Counter("afs_retries_total")
	m.transportFaults = reg.Counter("afs_transport_faults_total")
	m.reconnects = reg.Counter("afs_reconnects_total")
	m.rpcLat = reg.Histogram("afs_rpc_seconds")
	m.tracer = reg.Tracer()
}

var _ backend.Store = (*Client)(nil)

// Dial connects to an AFS server at addr, retrying per the config's
// RetryPolicy before giving up with ErrUnavailable.
//
//lint:ignore span-coverage connection setup, not a data-path op; RPC spans are opened per call by the client methods
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	c := &Client{
		id:      uuid.New().String(),
		addr:    addr,
		profile: cfg.Profile,
		timeout: cfg.RPCTimeout,
		retry:   newRetryState(cfg.Retry),
		cbOff:   cfg.DisableCallbacks,
		dialFn:  cfg.Dial,
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	c.metrics.bind(cfg.Obs)
	if c.timeout == 0 {
		c.timeout = DefaultRPCTimeout
	}
	if c.dialFn == nil {
		profile := cfg.Profile
		c.dialFn = func(addr string) (net.Conn, error) { return netsim.Dial(addr, profile) }
	}
	if cfg.CacheBytes >= 0 {
		budget := cfg.CacheBytes
		if budget == 0 {
			budget = DefaultCacheBytes
		}
		c.cache = newFileCache(budget)
	}
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	var lastErr error
	for attempt := 1; ; attempt++ {
		if lastErr = c.connectLocked(); lastErr == nil {
			return c, nil
		}
		if attempt >= c.retry.policy.MaxAttempts {
			return nil, fmt.Errorf("afs: dial %s: %w: %w", addr, ErrUnavailable, lastErr)
		}
		time.Sleep(c.retry.wait(attempt))
	}
}

// connectLocked performs one connection attempt: main channel, hello,
// and (when enabled) the callback channel. On success it installs the
// connections, bumps the generation, and flushes the cache — any
// invalidations issued while disconnected were lost with the old
// callback channel.
func (c *Client) connectLocked() error {
	conn, err := c.dialFn(c.addr)
	if err != nil {
		c.metrics.transportFaults.Inc()
		return fmt.Errorf("%w: dialing: %w", errTransport, err)
	}
	if err := c.hello(conn, false); err != nil {
		_ = conn.Close()
		if errors.Is(err, errTransport) {
			c.metrics.transportFaults.Inc()
		}
		return err
	}
	var cbConn net.Conn
	if !c.cbOff && c.cache != nil {
		cbConn, err = c.dialFn(c.addr)
		if err != nil {
			_ = conn.Close()
			c.metrics.transportFaults.Inc()
			return fmt.Errorf("%w: dialing callback channel: %w", errTransport, err)
		}
		if err := c.hello(cbConn, true); err != nil {
			_ = conn.Close()
			_ = cbConn.Close()
			if errors.Is(err, errTransport) {
				c.metrics.transportFaults.Inc()
			}
			return err
		}
	}
	c.connMu.Lock()
	c.conn = conn
	c.cbConn = cbConn
	c.connMu.Unlock()
	if c.gen.Add(1) > 1 {
		c.metrics.reconnects.Inc()
	}
	c.cbLost.Store(false)
	if c.cache != nil {
		c.cache.flush()
	}
	if cbConn != nil {
		c.wg.Add(1)
		go c.callbackLoop(cbConn)
	}
	return nil
}

// dropConnLocked discards the live connections; the next RPC redials.
func (c *Client) dropConnLocked() {
	c.connMu.Lock()
	conn, cbConn := c.conn, c.cbConn
	c.conn, c.cbConn = nil, nil
	c.connMu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
	if cbConn != nil {
		_ = cbConn.Close()
	}
}

// currentConn returns the live RPC connection, or nil.
func (c *Client) currentConn() net.Conn {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.conn
}

func (c *Client) hello(conn net.Conn, isCallback bool) error {
	if c.timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(c.timeout))
		defer func() { _ = conn.SetDeadline(time.Time{}) }()
	}
	w := serial.NewWriter(64)
	w.WriteString(c.id)
	w.WriteBool(isCallback)
	if err := writeFrame(conn, frame{op: opHello, reqID: 0, body: w.Bytes()}); err != nil {
		return transportFault("hello handshake", err)
	}
	resp, err := readFrame(conn)
	if err != nil {
		return transportFault("hello handshake", err)
	}
	if resp.op != opReply {
		return fmt.Errorf("%w: %w: hello rejected", errTransport, ErrProtocol)
	}
	return nil
}

// callbackLoop consumes invalidation frames until the channel drops. If
// it drops while still the live channel (server crash, network fault),
// the cache is flushed and flagged so no stale entry is ever served.
func (c *Client) callbackLoop(conn net.Conn) {
	defer c.wg.Done()
	for {
		f, err := readFrame(conn)
		if err != nil {
			break
		}
		if f.op != opInvalidate {
			continue
		}
		name, err := decodeName(f.body)
		if err != nil {
			continue
		}
		if c.cache != nil {
			c.cache.invalidate(name)
		}
	}
	if c.closed.Load() {
		return
	}
	c.connMu.Lock()
	current := c.cbConn == conn
	c.connMu.Unlock()
	if current {
		// Invalidations may have been lost: stop serving cached entries
		// (readers check cbLost before the cache) and force the next RPC
		// to resync via a full reconnect.
		c.cbLost.Store(true)
		if c.cache != nil {
			c.cache.flush()
		}
	}
}

// Close terminates the client's connections.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.connMu.Lock()
	conn, cbConn := c.conn, c.cbConn
	c.conn, c.cbConn = nil, nil
	c.connMu.Unlock()
	var err error
	if conn != nil {
		closeWrite(conn)
		err = conn.Close()
	}
	if cbConn != nil {
		_ = cbConn.Close()
	}
	c.wg.Wait()
	return err
}

// transportFault wraps a connection-level failure, mapping deadline
// misses to ErrTimeout.
func transportFault(stage string, err error) error {
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return fmt.Errorf("%w: %s: %w", errTransport, stage, ErrTimeout)
	}
	return fmt.Errorf("%w: %s: %w", errTransport, stage, err)
}

// call performs one RPC, reconnecting and retrying per the client's
// policy. Transport failures surface as typed errors: ErrUnavailable
// when the request was never accepted, ErrInterrupted when a mutating
// RPC died mid-exchange (outcome unknown), with ErrTimeout in the chain
// when a deadline was missed.
func (c *Client) call(op opCode, body []byte) ([]byte, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	// The span and latency cover the whole logical RPC — reconnects,
	// retries and backoff included — because that is the latency the
	// layer above experiences. The span name is only materialized when
	// tracing is on, keeping the disabled path allocation-free.
	var span *obs.Span
	if c.metrics.tracer.Enabled() {
		span = c.metrics.tracer.Begin("afs." + op.String())
	}
	start := time.Now()
	resp, retries, faults, err := c.callAttempts(op, body)
	c.metrics.rpcLat.Record(time.Since(start))
	if retries > 0 {
		span.SetTagInt("retries", retries)
	}
	if faults > 0 {
		span.SetTagInt("faults", faults)
	}
	if err != nil {
		span.SetTag("error", errClass(err))
	}
	span.End()
	return resp, err
}

// errClass names an RPC failure for span tags.
func errClass(err error) string {
	switch {
	case errors.Is(err, ErrInterrupted):
		return "interrupted"
	case errors.Is(err, ErrUnavailable):
		return "unavailable"
	case errors.Is(err, ErrTimeout):
		return "timeout"
	case errors.Is(err, backend.ErrNotExist):
		return "not-exist"
	default:
		return "error"
	}
}

// callAttempts runs the reconnect/retry loop for one RPC, reporting how
// many extra attempts and observed transport faults it took.
func (c *Client) callAttempts(op opCode, body []byte) (resp []byte, retries, faults int64, err error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	var lastErr error
	for attempt := 1; ; attempt++ {
		if c.closed.Load() {
			return nil, retries, faults, ErrClosed
		}
		if attempt > 1 {
			retries++
			c.metrics.retries.Inc()
		}
		if err := c.ensureConnLocked(); err != nil {
			// Dial-level failure: nothing was sent, safe to retry for
			// every op. (connectLocked already counted the fault.)
			faults++
			lastErr = err
		} else {
			resp, err := c.exchangeLocked(op, body)
			if err == nil || !errors.Is(err, errTransport) {
				return resp, retries, faults, err
			}
			c.metrics.transportFaults.Inc()
			faults++
			c.dropConnLocked()
			if !retryable(op) {
				return nil, retries, faults, fmt.Errorf("afs: %s: %w: %w", op, ErrInterrupted, err)
			}
			lastErr = err
		}
		if attempt >= c.retry.policy.MaxAttempts {
			return nil, retries, faults, fmt.Errorf("afs: %s: %w: %w", op, ErrUnavailable, lastErr)
		}
		time.Sleep(c.retry.wait(attempt))
		if c.closed.Load() {
			return nil, retries, faults, ErrClosed
		}
	}
}

// ensureConnLocked makes sure a healthy connection is installed,
// resyncing first if the callback channel was lost.
func (c *Client) ensureConnLocked() error {
	if c.cbLost.Load() {
		c.dropConnLocked()
	}
	if c.currentConn() != nil {
		return nil
	}
	return c.connectLocked()
}

// exchangeLocked sends one request and reads its response on the live
// connection, under the RPC deadline. Errors wrapping errTransport mean
// the connection is no longer usable.
func (c *Client) exchangeLocked(op opCode, body []byte) ([]byte, error) {
	conn := c.currentConn()
	c.reqID++
	id := c.reqID
	c.metrics.rpcs.Inc()
	if c.timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(c.timeout))
		defer func() { _ = conn.SetDeadline(time.Time{}) }()
	}
	if err := writeFrame(conn, frame{op: op, reqID: id, body: body}); err != nil {
		return nil, transportFault("writing request", err)
	}
	resp, err := readFrame(conn)
	if err != nil {
		return nil, transportFault("reading response", err)
	}
	if resp.reqID != id {
		return nil, fmt.Errorf("%w: %w: response id %d for request %d", errTransport, ErrProtocol, resp.reqID, id)
	}
	switch resp.op {
	case opReply:
		return resp.body, nil
	case opError:
		return nil, decodeError(resp.body)
	default:
		return nil, fmt.Errorf("%w: %w: unexpected op %d", errTransport, ErrProtocol, resp.op)
	}
}

// Get implements backend.Store: it returns the file contents, from cache
// when the callback promise is intact. Negative results are cached too:
// the server promises to break the callback when the file appears.
func (c *Client) Get(name string) ([]byte, error) {
	data, _, err := c.GetVersioned(name)
	return data, err
}

// Put implements backend.Store with write-through semantics.
func (c *Client) Put(name string, data []byte) error {
	_, err := c.PutVersioned(name, data)
	return err
}

// Delete implements backend.Store. The deletion is remembered as a
// negative cache entry.
func (c *Client) Delete(name string) error {
	_, err := c.call(opRemove, encodeName(name))
	if c.cache != nil {
		if err == nil {
			c.cache.putNegative(name)
		} else {
			c.cache.invalidate(name)
		}
	}
	return err
}

// List implements backend.Store.
func (c *Client) List(prefix string) ([]string, error) {
	body, err := c.call(opList, encodeName(prefix))
	if err != nil {
		return nil, err
	}
	r := serial.NewReader(body)
	n := r.ReadCount(0, "name count")
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		names = append(names, r.ReadString(0, "name"))
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return names, nil
}

// Lock implements backend.Store: a server-side exclusive advisory lock,
// the analogue of flock() on an AFS file. Acquiring the lock drops any
// cached copy of the file: a pending invalidation may still be in
// flight, and a locked read-modify-write must observe the latest
// contents (AFS revalidates with the server on open).
//
// A lock does not survive reconnect: the server releases it when the
// holding connection drops, so the release closure sends the unlock RPC
// only while the acquiring connection generation is still live.
func (c *Client) Lock(name string) (func(), error) {
	if _, err := c.call(opLock, encodeName(name)); err != nil {
		return nil, err
	}
	gen := c.gen.Load()
	if c.cache != nil {
		c.cache.invalidate(name)
	}
	released := false
	return func() {
		if released {
			return
		}
		released = true
		if c.closed.Load() || c.gen.Load() != gen {
			// The acquiring connection is gone; the server already
			// released the lock on disconnect.
			return
		}
		if _, err := c.call(opUnlock, encodeName(name)); err != nil && !c.closed.Load() {
			// An unlock can only fail if the connection died, in which
			// case the server releases the lock on disconnect anyway.
			_ = err
		}
	}, nil
}

// GetVersioned returns a file's contents and version, serving warm reads
// from the cache. It lets the NEXUS enclave validate its in-enclave
// decrypted-metadata cache against the same version stream that AFS
// callbacks keep fresh. The cache is bypassed while the callback channel
// is down, so a lost invalidation can never produce a stale read.
func (c *Client) GetVersioned(name string) ([]byte, uint64, error) {
	if c.cache != nil && !c.cbLost.Load() {
		data, negative, version, ok := c.cache.lookup(name)
		if ok {
			c.metrics.cacheHits.Inc()
			return data, version, nil
		}
		if negative {
			c.metrics.cacheHits.Inc()
			return nil, 0, fmt.Errorf("afs: %s (cached): %w", name, backend.ErrNotExist)
		}
	}
	body, err := c.call(opFetch, encodeName(name))
	if err != nil {
		if c.cache != nil && errors.Is(err, backend.ErrNotExist) {
			c.cache.putNegative(name)
		}
		return nil, 0, err
	}
	r := serial.NewReader(body)
	version := r.ReadUint64("version")
	data := r.ReadBytes(maxFrameSize, "data")
	if err := r.Finish(); err != nil {
		return nil, 0, err
	}
	if c.cache != nil {
		c.cache.put(name, data, version)
	}
	return data, version, nil
}

// PutVersioned stores a file and returns its new version.
func (c *Client) PutVersioned(name string, data []byte) (uint64, error) {
	w := serial.NewWriter(8 + len(name) + len(data))
	w.WriteString(name)
	w.WriteBytes(data)
	body, err := c.call(opStore, w.Bytes())
	if err != nil {
		if c.cache != nil {
			// The store may or may not have been applied; the cached copy
			// is no longer trustworthy either way.
			c.cache.invalidate(name)
		}
		return 0, err
	}
	r := serial.NewReader(body)
	version := r.ReadUint64("version")
	if err := r.Finish(); err != nil {
		return 0, err
	}
	if c.cache != nil {
		c.cache.put(name, data, version)
	}
	return version, nil
}

// PutVersionedStream stores a file whose contents are produced
// incrementally: next returns consecutive body segments (nil = done)
// summing to exactly total bytes. The segments go out as soon as they
// exist, so upstream production — the enclave sealing chunks — overlaps
// the transfer; on the wire the server still sees one ordinary store
// frame, applied atomically. Segment buffers belong to the producer and
// may be reused after each call, so the write-through cache accumulates
// its own copy as the segments pass by.
//
// Failure semantics match PutVersioned: a store is never re-sent, and a
// mid-exchange transport failure surfaces ErrInterrupted. A producer
// error aborts the frame — the connection is dropped, the server's
// frame read fails, and nothing is applied.
func (c *Client) PutVersionedStream(name string, total int, next func() ([]byte, error)) (uint64, error) {
	if c.closed.Load() {
		return 0, ErrClosed
	}
	var span *obs.Span
	if c.metrics.tracer.Enabled() {
		span = c.metrics.tracer.Begin("afs.store")
		span.SetTagInt("streamed", 1)
	}
	start := time.Now()
	version, retries, faults, err := c.streamStoreAttempts(name, total, next)
	c.metrics.rpcLat.Record(time.Since(start))
	if retries > 0 {
		span.SetTagInt("retries", retries)
	}
	if faults > 0 {
		span.SetTagInt("faults", faults)
	}
	if err != nil {
		span.SetTag("error", errClass(err))
	}
	span.End()
	return version, err
}

// streamStoreAttempts mirrors callAttempts for the scattered store:
// dial-level failures retry (the producer has not been touched yet),
// but once the first byte is out the RPC is one-shot.
func (c *Client) streamStoreAttempts(name string, total int, next func() ([]byte, error)) (version uint64, retries, faults int64, err error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	var lastErr error
	for attempt := 1; ; attempt++ {
		if c.closed.Load() {
			return 0, retries, faults, ErrClosed
		}
		if attempt > 1 {
			retries++
			c.metrics.retries.Inc()
		}
		if err := c.ensureConnLocked(); err != nil {
			faults++
			lastErr = err
		} else {
			version, connDead, err := c.streamExchangeLocked(name, total, next)
			if connDead {
				c.dropConnLocked()
			}
			if err != nil && c.cache != nil {
				// Applied or not, the cached copy is no longer trustworthy.
				c.cache.invalidate(name)
			}
			if err == nil || !errors.Is(err, errTransport) {
				return version, retries, faults, err
			}
			c.metrics.transportFaults.Inc()
			faults++
			return 0, retries, faults, fmt.Errorf("afs: %s: %w: %w", opStore, ErrInterrupted, err)
		}
		if attempt >= c.retry.policy.MaxAttempts {
			return 0, retries, faults, fmt.Errorf("afs: %s: %w: %w", opStore, ErrUnavailable, lastErr)
		}
		time.Sleep(c.retry.wait(attempt))
		if c.closed.Load() {
			return 0, retries, faults, ErrClosed
		}
	}
}

// streamExchangeLocked sends one scattered store frame and reads its
// response. connDead reports that the connection is no longer usable:
// any failure between the first header byte and a complete response
// leaves a partial frame outbound or an unread response inbound.
func (c *Client) streamExchangeLocked(name string, total int, next func() ([]byte, error)) (version uint64, connDead bool, err error) {
	conn := c.currentConn()
	c.reqID++
	id := c.reqID
	c.metrics.rpcs.Inc()
	if c.timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(c.timeout))
		defer func() { _ = conn.SetDeadline(time.Time{}) }()
	}
	// The store body is name ‖ u32 length ‖ data; the data bytes arrive
	// as scattered segments after this prefix.
	prefix := serial.NewWriter(8 + len(name))
	prefix.WriteString(name)
	prefix.WriteUint32(uint32(total))

	var acc []byte
	if c.cache != nil {
		acc = make([]byte, 0, total)
	}
	var produceErr error
	produce := func() ([]byte, error) {
		seg, err := next()
		if err != nil {
			produceErr = err
			return nil, err
		}
		if acc != nil && len(seg) > 0 {
			acc = append(acc, seg...)
		}
		return seg, nil
	}
	if err := writeFrameScatter(conn, opStore, id, prefix.Bytes(), total, produce); err != nil {
		if produceErr != nil {
			// The frame never completed, so the server applies nothing —
			// but the connection is mid-frame and has to go.
			return 0, true, fmt.Errorf("afs: store %s: %w", name, produceErr)
		}
		return 0, true, transportFault("writing request", err)
	}
	resp, err := readFrame(conn)
	if err != nil {
		return 0, true, transportFault("reading response", err)
	}
	if resp.reqID != id {
		return 0, true, fmt.Errorf("%w: %w: response id %d for request %d", errTransport, ErrProtocol, resp.reqID, id)
	}
	switch resp.op {
	case opReply:
	case opError:
		return 0, false, decodeError(resp.body)
	default:
		return 0, true, fmt.Errorf("%w: %w: unexpected op %d", errTransport, ErrProtocol, resp.op)
	}
	r := serial.NewReader(resp.body)
	version = r.ReadUint64("version")
	if err := r.Finish(); err != nil {
		return 0, false, err
	}
	if c.cache != nil {
		c.cache.putOwned(name, acc, version)
	}
	return version, false, nil
}

// Stat describes a remote file.
type Stat struct {
	Exists  bool
	Version uint64
	Size    uint64
}

// StatFile queries a file's existence, version and size without
// transferring its contents.
func (c *Client) StatFile(name string) (Stat, error) {
	body, err := c.call(opStat, encodeName(name))
	if err != nil {
		return Stat{}, err
	}
	r := serial.NewReader(body)
	st := Stat{
		Exists:  r.ReadBool("exists"),
		Version: r.ReadUint64("version"),
		Size:    r.ReadUint64("size"),
	}
	if err := r.Finish(); err != nil {
		return Stat{}, err
	}
	return st, nil
}

// Ping round-trips an empty frame, measuring liveness and RTT.
func (c *Client) Ping() error {
	_, err := c.call(opPing, nil)
	return err
}

// FlushCache drops all cached file copies, forcing the next reads to hit
// the server (the evaluation flushes the AFS cache between runs).
func (c *Client) FlushCache() {
	if c.cache != nil {
		c.cache.flush()
	}
}

// Stats reports cumulative RPCs issued and cache hits served (shim
// over the afs_rpcs_total / afs_cache_hits_total registry counters).
func (c *Client) Stats() (rpcs, cacheHits int64) {
	return c.metrics.rpcs.Value(), c.metrics.cacheHits.Value()
}

// Reconnects reports how many times the client re-established its
// connection after the initial dial.
func (c *Client) Reconnects() int64 {
	g := int64(c.gen.Load())
	if g <= 0 {
		return 0
	}
	return g - 1
}

// fileCache is a byte-budgeted LRU of whole files.
type fileCache struct {
	mu     sync.Mutex
	budget int64
	used   int64                    // guarded by mu
	lru    *list.List               // of *cacheEntry, front = most recent; guarded by mu
	byName map[string]*list.Element // guarded by mu
}

type cacheEntry struct {
	name    string
	data    []byte
	version uint64
	// negative marks a cached does-not-exist result, valid under the
	// same callback promise as positive entries (the server notifies on
	// creation).
	negative bool
}

func newFileCache(budget int64) *fileCache {
	return &fileCache{
		budget: budget,
		lru:    list.New(),
		byName: make(map[string]*list.Element),
	}
}

func (fc *fileCache) get(name string) ([]byte, bool) {
	data, _, ok := fc.getVersioned(name)
	return data, ok
}

func (fc *fileCache) getVersioned(name string) ([]byte, uint64, bool) {
	data, _, version, ok := fc.lookup(name)
	return data, version, ok
}

// lookup returns (data, negative, version, found).
func (fc *fileCache) lookup(name string) ([]byte, bool, uint64, bool) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	el, ok := fc.byName[name]
	if !ok {
		return nil, false, 0, false
	}
	fc.lru.MoveToFront(el)
	entry := el.Value.(*cacheEntry)
	if entry.negative {
		return nil, true, 0, false
	}
	out := make([]byte, len(entry.data))
	copy(out, entry.data)
	return out, false, entry.version, true
}

// putNegative caches a does-not-exist result.
func (fc *fileCache) putNegative(name string) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if el, ok := fc.byName[name]; ok {
		fc.removeElementLocked(el)
	}
	el := fc.lru.PushFront(&cacheEntry{name: name, negative: true})
	fc.byName[name] = el
}

func (fc *fileCache) put(name string, data []byte, version uint64) {
	cp := make([]byte, len(data))
	copy(cp, data)
	fc.putOwned(name, cp, version)
}

// putOwned is put for a buffer the cache takes ownership of, skipping
// the defensive copy. The streaming put accumulates its own copy
// segment by segment, so a second copy here would be pure waste.
func (fc *fileCache) putOwned(name string, data []byte, version uint64) {
	if int64(len(data)) > fc.budget {
		return // larger than the whole cache; do not thrash
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if el, ok := fc.byName[name]; ok {
		entry := el.Value.(*cacheEntry)
		fc.used += int64(len(data)) - int64(len(entry.data))
		entry.data = data
		entry.version = version
		entry.negative = false
		fc.lru.MoveToFront(el)
	} else {
		el := fc.lru.PushFront(&cacheEntry{name: name, data: data, version: version})
		fc.byName[name] = el
		fc.used += int64(len(data))
	}
	for fc.used > fc.budget {
		oldest := fc.lru.Back()
		if oldest == nil {
			break
		}
		fc.removeElementLocked(oldest)
	}
}

func (fc *fileCache) invalidate(name string) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if el, ok := fc.byName[name]; ok {
		fc.removeElementLocked(el)
	}
}

func (fc *fileCache) flush() {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	fc.lru.Init()
	fc.byName = make(map[string]*list.Element)
	fc.used = 0
}

// removeElementLocked must be called with fc.mu held.
func (fc *fileCache) removeElementLocked(el *list.Element) {
	entry := el.Value.(*cacheEntry)
	fc.lru.Remove(el)
	delete(fc.byName, entry.name)
	fc.used -= int64(len(entry.data))
}
