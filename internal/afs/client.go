package afs

import (
	"container/list"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"nexus/internal/backend"
	"nexus/internal/netsim"
	"nexus/internal/serial"
	"nexus/internal/uuid"
)

// DefaultCacheBytes is the default client cache budget (AFS cache
// managers default to hundreds of MiB of disk cache; we hold whole files
// in memory).
const DefaultCacheBytes = 512 << 20

// ClientConfig tunes a client.
type ClientConfig struct {
	// Profile simulates the network between client and server.
	Profile netsim.Profile
	// CacheBytes bounds the whole-file cache; 0 means DefaultCacheBytes,
	// negative disables caching entirely.
	CacheBytes int64
	// DisableCallbacks skips the callback channel; the cache then only
	// invalidates on the client's own writes. Used by tests and by the
	// cache-ablation benchmark.
	DisableCallbacks bool
}

// Client is a caching AFS client. It implements backend.Store, so a
// NEXUS volume can be stacked directly on top of it.
//
// Consistency model (matching AFS): whole files are fetched on first
// access and cached; the server records a callback promise and notifies
// the client if another client changes the file, invalidating the cached
// copy. Writes are write-through. Advisory locks are server-side and
// exclusive.
type Client struct {
	id      string
	conn    net.Conn
	cbConn  net.Conn
	profile netsim.Profile

	reqMu sync.Mutex // serializes request/response exchanges
	reqID uint64

	cache *fileCache

	closed atomic.Bool

	// Stats for the benchmark breakdowns.
	rpcs      atomic.Int64
	cacheHits atomic.Int64
}

var _ backend.Store = (*Client)(nil)

// Dial connects to an AFS server at addr.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	conn, err := netsim.Dial(addr, cfg.Profile)
	if err != nil {
		return nil, err
	}
	c := &Client{
		id:      uuid.New().String(),
		conn:    conn,
		profile: cfg.Profile,
	}
	if cfg.CacheBytes >= 0 {
		budget := cfg.CacheBytes
		if budget == 0 {
			budget = DefaultCacheBytes
		}
		c.cache = newFileCache(budget)
	}
	if err := c.hello(conn, false); err != nil {
		conn.Close()
		return nil, err
	}
	if !cfg.DisableCallbacks && c.cache != nil {
		cbConn, err := netsim.Dial(addr, cfg.Profile)
		if err != nil {
			conn.Close()
			return nil, err
		}
		if err := c.hello(cbConn, true); err != nil {
			conn.Close()
			cbConn.Close()
			return nil, err
		}
		c.cbConn = cbConn
		go c.callbackLoop(cbConn)
	}
	return c, nil
}

func (c *Client) hello(conn net.Conn, isCallback bool) error {
	w := serial.NewWriter(64)
	w.WriteString(c.id)
	w.WriteBool(isCallback)
	if err := writeFrame(conn, frame{op: opHello, reqID: 0, body: w.Bytes()}); err != nil {
		return err
	}
	resp, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("afs: hello handshake: %w", err)
	}
	if resp.op != opReply {
		return fmt.Errorf("%w: hello rejected", ErrProtocol)
	}
	return nil
}

// callbackLoop consumes invalidation frames until the channel drops.
func (c *Client) callbackLoop(conn net.Conn) {
	for {
		f, err := readFrame(conn)
		if err != nil {
			return
		}
		if f.op != opInvalidate {
			continue
		}
		name, err := decodeName(f.body)
		if err != nil {
			continue
		}
		if c.cache != nil {
			c.cache.invalidate(name)
		}
	}
}

// Close terminates the client's connections.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	closeWrite(c.conn)
	err := c.conn.Close()
	if c.cbConn != nil {
		_ = c.cbConn.Close()
	}
	return err
}

// call performs one RPC exchange.
func (c *Client) call(op opCode, body []byte) ([]byte, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	c.reqID++
	id := c.reqID
	c.rpcs.Add(1)
	if err := writeFrame(c.conn, frame{op: op, reqID: id, body: body}); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("afs: reading response: %w", err)
	}
	if resp.reqID != id {
		return nil, fmt.Errorf("%w: response id %d for request %d", ErrProtocol, resp.reqID, id)
	}
	switch resp.op {
	case opReply:
		return resp.body, nil
	case opError:
		return nil, decodeError(resp.body)
	default:
		return nil, fmt.Errorf("%w: unexpected op %d", ErrProtocol, resp.op)
	}
}

// Get implements backend.Store: it returns the file contents, from cache
// when the callback promise is intact. Negative results are cached too:
// the server promises to break the callback when the file appears.
func (c *Client) Get(name string) ([]byte, error) {
	data, _, err := c.GetVersioned(name)
	return data, err
}

// Put implements backend.Store with write-through semantics.
func (c *Client) Put(name string, data []byte) error {
	w := serial.NewWriter(8 + len(name) + len(data))
	w.WriteString(name)
	w.WriteBytes(data)
	body, err := c.call(opStore, w.Bytes())
	if err != nil {
		return err
	}
	r := serial.NewReader(body)
	version := r.ReadUint64("version")
	if err := r.Finish(); err != nil {
		return err
	}
	if c.cache != nil {
		c.cache.put(name, data, version)
	}
	return nil
}

// Delete implements backend.Store. The deletion is remembered as a
// negative cache entry.
func (c *Client) Delete(name string) error {
	_, err := c.call(opRemove, encodeName(name))
	if c.cache != nil {
		if err == nil {
			c.cache.putNegative(name)
		} else {
			c.cache.invalidate(name)
		}
	}
	return err
}

// List implements backend.Store.
func (c *Client) List(prefix string) ([]string, error) {
	body, err := c.call(opList, encodeName(prefix))
	if err != nil {
		return nil, err
	}
	r := serial.NewReader(body)
	n := r.ReadCount(0, "name count")
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		names = append(names, r.ReadString(0, "name"))
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return names, nil
}

// Lock implements backend.Store: a server-side exclusive advisory lock,
// the analogue of flock() on an AFS file. Acquiring the lock drops any
// cached copy of the file: a pending invalidation may still be in
// flight, and a locked read-modify-write must observe the latest
// contents (AFS revalidates with the server on open).
func (c *Client) Lock(name string) (func(), error) {
	if _, err := c.call(opLock, encodeName(name)); err != nil {
		return nil, err
	}
	if c.cache != nil {
		c.cache.invalidate(name)
	}
	released := false
	return func() {
		if released {
			return
		}
		released = true
		if _, err := c.call(opUnlock, encodeName(name)); err != nil && !c.closed.Load() {
			// An unlock can only fail if the connection died, in which
			// case the server releases the lock on disconnect anyway.
			_ = err
		}
	}, nil
}

// GetVersioned returns a file's contents and version, serving warm reads
// from the cache. It lets the NEXUS enclave validate its in-enclave
// decrypted-metadata cache against the same version stream that AFS
// callbacks keep fresh.
func (c *Client) GetVersioned(name string) ([]byte, uint64, error) {
	if c.cache != nil {
		data, negative, version, ok := c.cache.lookup(name)
		if ok {
			c.cacheHits.Add(1)
			return data, version, nil
		}
		if negative {
			c.cacheHits.Add(1)
			return nil, 0, fmt.Errorf("afs: %s (cached): %w", name, backend.ErrNotExist)
		}
	}
	body, err := c.call(opFetch, encodeName(name))
	if err != nil {
		if c.cache != nil && errors.Is(err, backend.ErrNotExist) {
			c.cache.putNegative(name)
		}
		return nil, 0, err
	}
	r := serial.NewReader(body)
	version := r.ReadUint64("version")
	data := r.ReadBytes(maxFrameSize, "data")
	if err := r.Finish(); err != nil {
		return nil, 0, err
	}
	if c.cache != nil {
		c.cache.put(name, data, version)
	}
	return data, version, nil
}

// PutVersioned stores a file and returns its new version.
func (c *Client) PutVersioned(name string, data []byte) (uint64, error) {
	w := serial.NewWriter(8 + len(name) + len(data))
	w.WriteString(name)
	w.WriteBytes(data)
	body, err := c.call(opStore, w.Bytes())
	if err != nil {
		return 0, err
	}
	r := serial.NewReader(body)
	version := r.ReadUint64("version")
	if err := r.Finish(); err != nil {
		return 0, err
	}
	if c.cache != nil {
		c.cache.put(name, data, version)
	}
	return version, nil
}

// Stat describes a remote file.
type Stat struct {
	Exists  bool
	Version uint64
	Size    uint64
}

// StatFile queries a file's existence, version and size without
// transferring its contents.
func (c *Client) StatFile(name string) (Stat, error) {
	body, err := c.call(opStat, encodeName(name))
	if err != nil {
		return Stat{}, err
	}
	r := serial.NewReader(body)
	st := Stat{
		Exists:  r.ReadBool("exists"),
		Version: r.ReadUint64("version"),
		Size:    r.ReadUint64("size"),
	}
	if err := r.Finish(); err != nil {
		return Stat{}, err
	}
	return st, nil
}

// Ping round-trips an empty frame, measuring liveness and RTT.
func (c *Client) Ping() error {
	_, err := c.call(opPing, nil)
	return err
}

// FlushCache drops all cached file copies, forcing the next reads to hit
// the server (the evaluation flushes the AFS cache between runs).
func (c *Client) FlushCache() {
	if c.cache != nil {
		c.cache.flush()
	}
}

// Stats reports cumulative RPCs issued and cache hits served.
func (c *Client) Stats() (rpcs, cacheHits int64) {
	return c.rpcs.Load(), c.cacheHits.Load()
}

// fileCache is a byte-budgeted LRU of whole files.
type fileCache struct {
	mu     sync.Mutex
	budget int64
	used   int64                    // guarded by mu
	lru    *list.List               // of *cacheEntry, front = most recent; guarded by mu
	byName map[string]*list.Element // guarded by mu
}

type cacheEntry struct {
	name    string
	data    []byte
	version uint64
	// negative marks a cached does-not-exist result, valid under the
	// same callback promise as positive entries (the server notifies on
	// creation).
	negative bool
}

func newFileCache(budget int64) *fileCache {
	return &fileCache{
		budget: budget,
		lru:    list.New(),
		byName: make(map[string]*list.Element),
	}
}

func (fc *fileCache) get(name string) ([]byte, bool) {
	data, _, ok := fc.getVersioned(name)
	return data, ok
}

func (fc *fileCache) getVersioned(name string) ([]byte, uint64, bool) {
	data, _, version, ok := fc.lookup(name)
	return data, version, ok
}

// lookup returns (data, negative, version, found).
func (fc *fileCache) lookup(name string) ([]byte, bool, uint64, bool) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	el, ok := fc.byName[name]
	if !ok {
		return nil, false, 0, false
	}
	fc.lru.MoveToFront(el)
	entry := el.Value.(*cacheEntry)
	if entry.negative {
		return nil, true, 0, false
	}
	out := make([]byte, len(entry.data))
	copy(out, entry.data)
	return out, false, entry.version, true
}

// putNegative caches a does-not-exist result.
func (fc *fileCache) putNegative(name string) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if el, ok := fc.byName[name]; ok {
		fc.removeElementLocked(el)
	}
	el := fc.lru.PushFront(&cacheEntry{name: name, negative: true})
	fc.byName[name] = el
}

func (fc *fileCache) put(name string, data []byte, version uint64) {
	if int64(len(data)) > fc.budget {
		return // larger than the whole cache; do not thrash
	}
	cp := make([]byte, len(data))
	copy(cp, data)

	fc.mu.Lock()
	defer fc.mu.Unlock()
	if el, ok := fc.byName[name]; ok {
		entry := el.Value.(*cacheEntry)
		fc.used += int64(len(cp)) - int64(len(entry.data))
		entry.data = cp
		entry.version = version
		entry.negative = false
		fc.lru.MoveToFront(el)
	} else {
		el := fc.lru.PushFront(&cacheEntry{name: name, data: cp, version: version})
		fc.byName[name] = el
		fc.used += int64(len(cp))
	}
	for fc.used > fc.budget {
		oldest := fc.lru.Back()
		if oldest == nil {
			break
		}
		fc.removeElementLocked(oldest)
	}
}

func (fc *fileCache) invalidate(name string) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if el, ok := fc.byName[name]; ok {
		fc.removeElementLocked(el)
	}
}

func (fc *fileCache) flush() {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	fc.lru.Init()
	fc.byName = make(map[string]*list.Element)
	fc.used = 0
}

// removeElementLocked must be called with fc.mu held.
func (fc *fileCache) removeElementLocked(el *list.Element) {
	entry := el.Value.(*cacheEntry)
	fc.lru.Remove(el)
	delete(fc.byName, entry.name)
	fc.used -= int64(len(entry.data))
}
