package afs

import (
	"errors"
	"fmt"
	"time"

	"nexus/internal/backend"
	"nexus/internal/netsim"
)

// Typed failure errors surfaced by the client. Each wraps the matching
// backend sentinel so callers stacked on backend.Store can match
// without importing this package.
var (
	// ErrTimeout reports an RPC exchange that missed its deadline.
	ErrTimeout = fmt.Errorf("afs: rpc deadline exceeded: %w", backend.ErrTimeout)
	// ErrUnavailable reports an RPC abandoned after the retry budget:
	// the request was never accepted by the server.
	ErrUnavailable = fmt.Errorf("afs: server unavailable: %w", backend.ErrUnavailable)
	// ErrInterrupted reports a non-idempotent RPC whose connection died
	// mid-exchange. The server may or may not have applied it; the
	// client never retries these transparently.
	ErrInterrupted = fmt.Errorf("afs: connection lost mid-rpc: %w", backend.ErrInterrupted)
)

// errTransport marks connection-level failures internally so call()
// can tell them from application errors the server answered with.
var errTransport = errors.New("afs: transport fault")

// Retry defaults.
const (
	// DefaultRPCTimeout bounds one RPC exchange, including server-side
	// lock waits; large enough for a maxFrameSize transfer on the WAN
	// profile.
	DefaultRPCTimeout = 30 * time.Second
	defaultAttempts   = 4
	defaultBase       = 5 * time.Millisecond
	defaultMax        = 1 * time.Second
	defaultMultiplier = 2.0
	defaultJitter     = 0.2
)

// RetryPolicy tunes the client's reconnect/retry behaviour. The zero
// value means defaults.
type RetryPolicy struct {
	// MaxAttempts counts tries per RPC including the first; default 4.
	MaxAttempts int
	// BaseBackoff is the wait before the second attempt; default 5ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential curve; default 1s.
	MaxBackoff time.Duration
	// Multiplier grows the backoff between attempts; default 2.
	Multiplier float64
	// JitterFrac adds up to this fraction of the backoff on top of it;
	// 0 means the default 0.2, negative disables jitter, values above 1
	// are clamped. Jitter is additive so the un-jittered curve stays
	// monotone.
	JitterFrac float64
	// Seed makes the jitter deterministic; tests pass their chaos seed.
	// 0 is a valid (fixed) seed — determinism is the point.
	Seed int64
}

// withDefaults fills zero fields and sanitizes out-of-range values.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = defaultAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = defaultBase
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = defaultMax
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = p.BaseBackoff
	}
	if p.Multiplier < 1 {
		p.Multiplier = defaultMultiplier
	}
	if p.JitterFrac == 0 {
		p.JitterFrac = defaultJitter
	}
	if p.JitterFrac < 0 {
		p.JitterFrac = 0
	}
	if p.JitterFrac > 1 {
		p.JitterFrac = 1
	}
	return p
}

// backoffAt returns the un-jittered backoff before attempt n+1, given n
// failed attempts (n >= 1). The curve is monotone non-decreasing and
// bounded by MaxBackoff — properties FuzzRetrySchedule enforces.
func (p RetryPolicy) backoffAt(n int) time.Duration {
	if n < 1 {
		n = 1
	}
	d := float64(p.BaseBackoff)
	limit := float64(p.MaxBackoff)
	for i := 1; i < n; i++ {
		d *= p.Multiplier
		if d >= limit {
			return p.MaxBackoff
		}
	}
	if d >= limit {
		return p.MaxBackoff
	}
	return time.Duration(d)
}

// retryState is the per-client retry/backoff state machine: the policy
// plus the seeded jitter stream.
type retryState struct {
	policy RetryPolicy
	rng    *netsim.Rand
}

func newRetryState(p RetryPolicy) *retryState {
	p = p.withDefaults()
	return &retryState{policy: p, rng: netsim.NewRand(p.Seed)}
}

// wait returns the jittered sleep before the next attempt after n
// failures: backoffAt(n) plus up to JitterFrac of itself.
func (s *retryState) wait(n int) time.Duration {
	d := s.policy.backoffAt(n)
	if s.policy.JitterFrac > 0 && d > 0 {
		d += time.Duration(s.rng.Float64() * s.policy.JitterFrac * float64(d))
	}
	return d
}

// retryable reports whether op may be transparently re-sent after a
// transport failure. Only read-only RPCs qualify: a Store, Remove, Lock
// or Unlock that died mid-exchange may already have been applied, and
// re-sending it would double-apply (or double-acquire). Those surface
// ErrInterrupted instead.
func retryable(op opCode) bool {
	switch op {
	case opFetch, opStat, opList, opPing:
		return true
	default:
		return false
	}
}
