package afs

import (
	"errors"
	"testing"
	"time"

	"nexus/internal/backend"
)

func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	if p.MaxAttempts != defaultAttempts || p.BaseBackoff != defaultBase ||
		p.MaxBackoff != defaultMax || p.Multiplier != defaultMultiplier ||
		p.JitterFrac != defaultJitter {
		t.Fatalf("zero policy defaults = %+v", p)
	}

	// Out-of-range fields are sanitized, not trusted.
	q := RetryPolicy{
		MaxAttempts: -3,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  time.Millisecond, // below base: raised to base
		Multiplier:  0.5,              // below 1: reset
		JitterFrac:  7,                // above 1: clamped
	}.withDefaults()
	if q.MaxAttempts != defaultAttempts {
		t.Fatalf("negative MaxAttempts kept: %d", q.MaxAttempts)
	}
	if q.MaxBackoff != q.BaseBackoff {
		t.Fatalf("MaxBackoff %v below BaseBackoff %v", q.MaxBackoff, q.BaseBackoff)
	}
	if q.Multiplier != defaultMultiplier || q.JitterFrac != 1 {
		t.Fatalf("out-of-range multiplier/jitter kept: %+v", q)
	}
	// Negative jitter explicitly disables it.
	if j := (RetryPolicy{JitterFrac: -1}).withDefaults().JitterFrac; j != 0 {
		t.Fatalf("negative JitterFrac = %v, want 0 (disabled)", j)
	}
}

func TestBackoffMonotoneAndBounded(t *testing.T) {
	p := RetryPolicy{
		BaseBackoff: time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
		Multiplier:  2,
	}.withDefaults()
	want := []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 16 * time.Millisecond, 32 * time.Millisecond,
		64 * time.Millisecond, 100 * time.Millisecond, 100 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.backoffAt(i + 1); got != w {
			t.Fatalf("backoffAt(%d) = %v, want %v", i+1, got, w)
		}
	}
	// n below 1 is clamped, not panicking or returning zero.
	if got := p.backoffAt(0); got != time.Millisecond {
		t.Fatalf("backoffAt(0) = %v, want base", got)
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	p := RetryPolicy{Seed: 1234, JitterFrac: 0.5, BaseBackoff: 10 * time.Millisecond}
	a, b := newRetryState(p), newRetryState(p)
	for n := 1; n <= 10; n++ {
		wa, wb := a.wait(n), b.wait(n)
		if wa != wb {
			t.Fatalf("same seed diverged at wait(%d): %v != %v", n, wa, wb)
		}
		base := a.policy.backoffAt(n)
		if wa < base || wa > base+time.Duration(0.5*float64(base))+1 {
			t.Fatalf("wait(%d) = %v outside [%v, base+50%%]", n, wa, base)
		}
	}
	c := newRetryState(RetryPolicy{Seed: 1235, JitterFrac: 0.5, BaseBackoff: 10 * time.Millisecond})
	diverged := false
	d := newRetryState(p)
	for n := 1; n <= 10; n++ {
		if c.wait(n) != d.wait(n) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different jitter seeds produced identical wait sequences")
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		op   opCode
		want bool
	}{
		{opFetch, true}, {opStat, true}, {opList, true}, {opPing, true},
		{opStore, false}, {opRemove, false}, {opLock, false}, {opUnlock, false},
		{opHello, false}, {opReply, false}, {opError, false}, {opInvalidate, false},
	}
	for _, tc := range cases {
		if got := retryable(tc.op); got != tc.want {
			t.Errorf("retryable(%s) = %v, want %v", tc.op, got, tc.want)
		}
	}
}

func TestTypedErrorsWrapBackendSentinels(t *testing.T) {
	if !errors.Is(ErrTimeout, backend.ErrTimeout) {
		t.Error("ErrTimeout does not wrap backend.ErrTimeout")
	}
	if !errors.Is(ErrUnavailable, backend.ErrUnavailable) {
		t.Error("ErrUnavailable does not wrap backend.ErrUnavailable")
	}
	if !errors.Is(ErrInterrupted, backend.ErrInterrupted) {
		t.Error("ErrInterrupted does not wrap backend.ErrInterrupted")
	}
	for _, err := range []error{ErrTimeout, ErrUnavailable, ErrInterrupted} {
		if !backend.IsUnavailable(err) {
			t.Errorf("backend.IsUnavailable(%v) = false", err)
		}
	}
	if backend.IsUnavailable(backend.ErrNotExist) {
		t.Error("IsUnavailable matched ErrNotExist")
	}
}
