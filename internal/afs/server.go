package afs

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"nexus/internal/backend"
	"nexus/internal/obs"
	"nexus/internal/serial"
)

// Server is an AFS-like file server. It stores whole files in a
// backend.Store, tracks per-file version numbers, grants exclusive
// advisory locks, and issues callback invalidations to clients holding
// cached copies when a file changes — the essentials of an AFS fileserver
// from the perspective of a NEXUS client.
type Server struct {
	store backend.Store

	mu        sync.Mutex
	versions  map[string]uint64          // per-file version counters; guarded by mu
	cachedBy  map[string]map[string]bool // file -> clientIDs with cached copies; guarded by mu
	callbacks map[string]*callbackConn   // clientID -> callback channel; guarded by mu
	locks     map[string]*lockState      // file -> lock queue; guarded by mu
	listeners map[net.Listener]bool      // guarded by mu
	conns     map[net.Conn]bool          // accepted connections; guarded by mu
	closed    bool                       // guarded by mu

	metrics serverMetrics

	logf func(format string, args ...any)
}

// serverMetrics holds the server's obs instrument handles; the legacy
// Stats accessor is a shim over the fetch/store counters.
type serverMetrics struct {
	fetches       *obs.Counter // afs_server_fetches_total
	stores        *obs.Counter // afs_server_stores_total
	requests      *obs.Counter // afs_server_requests_total
	invalidations *obs.Counter // afs_server_invalidations_total
	conns         *obs.Gauge   // afs_server_conns
	requestLat    *obs.Histogram
}

func (m *serverMetrics) bind(reg *obs.Registry) {
	m.fetches = reg.Counter("afs_server_fetches_total")
	m.stores = reg.Counter("afs_server_stores_total")
	m.requests = reg.Counter("afs_server_requests_total")
	m.invalidations = reg.Counter("afs_server_invalidations_total")
	m.conns = reg.Gauge("afs_server_conns")
	m.requestLat = reg.Histogram("afs_server_request_seconds")
}

// SetObs rebinds the server's meters onto reg (the nexus-afsd daemon
// shares one registry between the server and its /metrics endpoint).
// Call before Serve; rebinding mid-flight loses in-window counts.
func (s *Server) SetObs(reg *obs.Registry) { s.metrics.bind(reg) }

type callbackConn struct {
	mu   sync.Mutex // serializes frame writes
	conn net.Conn
}

// lockState implements a FIFO exclusive lock. Ownership is handed to the
// next waiter inside the release critical section, so a lock can never be
// stolen between a release and the waiter waking up.
type lockState struct {
	holder  string // clientID, "" when free
	waiters []lockWaiter
}

type lockWaiter struct {
	ch       chan struct{}
	clientID string
}

// NewServer creates a server persisting files to store.
func NewServer(store backend.Store) *Server {
	s := &Server{
		store:     store,
		versions:  make(map[string]uint64),
		cachedBy:  make(map[string]map[string]bool),
		callbacks: make(map[string]*callbackConn),
		locks:     make(map[string]*lockState),
		listeners: make(map[net.Listener]bool),
		conns:     make(map[net.Conn]bool),
		logf:      func(string, ...any) {},
	}
	s.metrics.bind(obs.NewRegistry())
	return s
}

// VersionSnapshot copies the per-file version counters. A restart
// harness carries them into a replacement server via SetVersions, the
// way a real AFS fileserver recovers data versions from its vice
// partitions: without this, a restarted server would hand out version
// numbers that alias pre-crash ones and defeat version-based cache
// validation.
func (s *Server) VersionSnapshot() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.versions))
	for name, v := range s.versions {
		out[name] = v
	}
	return out
}

// SetVersions seeds the per-file version counters, typically from a
// previous server's VersionSnapshot. It must be called before Serve.
func (s *Server) SetVersions(versions map[string]uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, v := range versions {
		s.versions[name] = v
	}
}

// SetLogger directs server diagnostics to the given function (e.g.
// log.Printf). By default the server is silent.
func (s *Server) SetLogger(logf func(format string, args ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s.logf = logf
}

// Stats returns cumulative fetch and store RPC counts (shim over the
// afs_server_fetches_total / afs_server_stores_total counters).
func (s *Server) Stats() (fetches, stores int64) {
	return s.metrics.fetches.Value(), s.metrics.stores.Value()
}

// Serve accepts connections on l until the listener fails or the server
// is closed. It always returns a non-nil error; after Close the error is
// ErrClosed.
//
//lint:ignore span-coverage accept loop runs for the server's lifetime; per-RPC spans are opened in the request handlers
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.listeners[l] = true
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrClosed
			}
			return fmt.Errorf("afs: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return ErrClosed
		}
		s.conns[conn] = true
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// Close stops all listeners. In-flight connections terminate as their
// reads fail.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	listeners := make([]net.Listener, 0, len(s.listeners))
	for l := range s.listeners {
		listeners = append(listeners, l)
	}
	callbacks := make([]*callbackConn, 0, len(s.callbacks))
	for _, cb := range s.callbacks {
		callbacks = append(callbacks, cb)
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	for _, l := range listeners {
		if err := l.Close(); err != nil {
			s.logf("afs: closing listener: %v", err)
		}
	}
	for _, cb := range callbacks {
		_ = cb.conn.Close()
	}
	// Closing accepted connections fails their pending reads, so every
	// handleConn goroutine exits — the chaos suite's goroutine-leak check
	// depends on a Close leaving nothing behind.
	for _, c := range conns {
		_ = c.Close()
	}
	return nil
}

// handleConn serves one client connection. The first frame must be a
// Hello identifying the client and declaring whether this connection is
// the RPC channel or the callback channel.
func (s *Server) handleConn(conn net.Conn) {
	s.metrics.conns.Add(1)
	defer func() {
		_ = conn.Close()
		s.metrics.conns.Add(-1)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	hello, err := readFrame(conn)
	if err != nil {
		return
	}
	if hello.op != opHello {
		s.logf("afs: first frame op=%d, want hello", hello.op)
		return
	}
	r := serial.NewReader(hello.body)
	clientID := r.ReadString(128, "client id")
	isCallback := r.ReadBool("is callback channel")
	if err := r.Finish(); err != nil || clientID == "" {
		s.logf("afs: bad hello: %v", err)
		return
	}

	if isCallback {
		s.runCallbackChannel(clientID, conn, hello.reqID)
		return
	}

	// Acknowledge the hello so the client knows the session is up.
	if err := writeFrame(conn, frame{op: opReply, reqID: hello.reqID}); err != nil {
		return
	}
	defer s.clientGone(clientID)

	for {
		req, err := readFrame(conn)
		if err != nil {
			return
		}
		s.metrics.requests.Inc()
		start := time.Now()
		resp := s.dispatch(clientID, req)
		s.metrics.requestLat.Record(time.Since(start))
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// runCallbackChannel registers conn as the client's invalidation channel
// and parks until it drops.
func (s *Server) runCallbackChannel(clientID string, conn net.Conn, reqID uint64) {
	cb := &callbackConn{conn: conn}
	s.mu.Lock()
	if old := s.callbacks[clientID]; old != nil {
		_ = old.conn.Close()
	}
	s.callbacks[clientID] = cb
	s.mu.Unlock()

	if err := writeFrame(conn, frame{op: opReply, reqID: reqID}); err != nil {
		return
	}
	// Block until the client goes away; callback channels carry no
	// client->server traffic.
	buf := make([]byte, 1)
	for {
		if _, err := conn.Read(buf); err != nil {
			break
		}
	}
	s.mu.Lock()
	if s.callbacks[clientID] == cb {
		delete(s.callbacks, clientID)
	}
	s.mu.Unlock()
}

// clientGone releases all state held for a departed client: its locks and
// its cached-copy registrations.
func (s *Server) clientGone(clientID string) {
	s.mu.Lock()
	var toRelease []*lockState
	for _, ls := range s.locks {
		if ls.holder == clientID {
			toRelease = append(toRelease, ls)
		}
	}
	for _, holders := range s.cachedBy {
		delete(holders, clientID)
	}
	s.mu.Unlock()
	for _, ls := range toRelease {
		s.release(ls)
	}
}

func (s *Server) dispatch(clientID string, req frame) frame {
	fail := func(code errCode, msg string) frame {
		return frame{op: opError, reqID: req.reqID, body: encodeError(code, msg)}
	}
	ok := func(body []byte) frame {
		return frame{op: opReply, reqID: req.reqID, body: body}
	}

	switch req.op {
	case opPing:
		return ok(nil)

	case opFetch:
		name, err := decodeName(req.body)
		if err != nil {
			return fail(errCodeBadRequest, err.Error())
		}
		s.metrics.fetches.Inc()
		data, err := s.store.Get(name)
		if err != nil {
			// Register a callback promise even for misses, so the client
			// can cache the negative result (real AFS gets this from its
			// cached directory contents) and be notified on creation.
			if errors.Is(err, backend.ErrNotExist) {
				s.registerCallback(name, clientID)
			}
			return s.storeError(req.reqID, name, err)
		}
		s.mu.Lock()
		version := s.versions[name]
		holders := s.cachedBy[name]
		if holders == nil {
			holders = make(map[string]bool)
			s.cachedBy[name] = holders
		}
		holders[clientID] = true // callback promise
		s.mu.Unlock()

		w := serial.NewWriter(12 + len(data))
		w.WriteUint64(version)
		w.WriteBytes(data)
		return ok(w.Bytes())

	case opStore:
		r := serial.NewReader(req.body)
		name := r.ReadString(0, "name")
		data := r.ReadBytes(maxFrameSize, "data")
		if err := r.Finish(); err != nil {
			return fail(errCodeBadRequest, err.Error())
		}
		s.metrics.stores.Inc()
		if err := s.store.Put(name, data); err != nil {
			return s.storeError(req.reqID, name, err)
		}
		version := s.bumpAndInvalidate(name, clientID)
		// The writer's write-through cache now holds a copy: register the
		// callback promise so later writers invalidate it.
		s.registerCallback(name, clientID)
		w := serial.NewWriter(8)
		w.WriteUint64(version)
		return ok(w.Bytes())

	case opRemove:
		name, err := decodeName(req.body)
		if err != nil {
			return fail(errCodeBadRequest, err.Error())
		}
		if err := s.store.Delete(name); err != nil {
			return s.storeError(req.reqID, name, err)
		}
		s.bumpAndInvalidate(name, clientID)
		return ok(nil)

	case opList:
		prefix, err := decodeName(req.body)
		if err != nil {
			return fail(errCodeBadRequest, err.Error())
		}
		names, err := s.store.List(prefix)
		if err != nil {
			return fail(errCodeInternal, err.Error())
		}
		w := serial.NewWriter(16 * len(names))
		w.WriteUint32(uint32(len(names)))
		for _, n := range names {
			w.WriteString(n)
		}
		return ok(w.Bytes())

	case opLock:
		name, err := decodeName(req.body)
		if err != nil {
			return fail(errCodeBadRequest, err.Error())
		}
		s.acquire(name, clientID)
		return ok(nil)

	case opUnlock:
		name, err := decodeName(req.body)
		if err != nil {
			return fail(errCodeBadRequest, err.Error())
		}
		s.mu.Lock()
		ls := s.locks[name]
		held := ls != nil && ls.holder == clientID
		s.mu.Unlock()
		if !held {
			return fail(errCodeBadRequest, "unlock of a lock not held")
		}
		s.release(ls)
		return ok(nil)

	case opStat:
		name, err := decodeName(req.body)
		if err != nil {
			return fail(errCodeBadRequest, err.Error())
		}
		data, err := s.store.Get(name)
		w := serial.NewWriter(24)
		if errors.Is(err, backend.ErrNotExist) {
			w.WriteBool(false)
			w.WriteUint64(0)
			w.WriteUint64(0)
			return ok(w.Bytes())
		}
		if err != nil {
			return s.storeError(req.reqID, name, err)
		}
		s.mu.Lock()
		version := s.versions[name]
		s.mu.Unlock()
		w.WriteBool(true)
		w.WriteUint64(version)
		w.WriteUint64(uint64(len(data)))
		return ok(w.Bytes())

	default:
		return fail(errCodeBadRequest, fmt.Sprintf("unknown op %d", req.op))
	}
}

func decodeName(body []byte) (string, error) {
	r := serial.NewReader(body)
	name := r.ReadString(0, "name")
	if err := r.Finish(); err != nil {
		return "", err
	}
	return name, nil
}

func encodeName(name string) []byte {
	w := serial.NewWriter(4 + len(name))
	w.WriteString(name)
	return w.Bytes()
}

func (s *Server) storeError(reqID uint64, name string, err error) frame {
	code := errCodeInternal
	switch {
	case errors.Is(err, backend.ErrNotExist):
		code = errCodeNotExist
	case errors.Is(err, backend.ErrBadName):
		code = errCodeBadName
	}
	return frame{op: opError, reqID: reqID, body: encodeError(code, name)}
}

// registerCallback records that clientID holds a (possibly negative)
// cached entry for name.
func (s *Server) registerCallback(name, clientID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	holders := s.cachedBy[name]
	if holders == nil {
		holders = make(map[string]bool)
		s.cachedBy[name] = holders
	}
	holders[clientID] = true
}

// bumpAndInvalidate increments the file's version and breaks the callback
// promises of every *other* client caching it. Returns the new version.
func (s *Server) bumpAndInvalidate(name, writer string) uint64 {
	s.mu.Lock()
	s.versions[name]++
	version := s.versions[name]
	var notify []*callbackConn
	if holders := s.cachedBy[name]; holders != nil {
		for clientID := range holders {
			if clientID == writer {
				continue
			}
			delete(holders, clientID)
			if cb := s.callbacks[clientID]; cb != nil {
				notify = append(notify, cb)
			}
		}
	}
	s.mu.Unlock()

	for _, cb := range notify {
		cb.mu.Lock()
		err := writeFrame(cb.conn, frame{op: opInvalidate, body: encodeName(name)})
		cb.mu.Unlock()
		s.metrics.invalidations.Inc()
		if err != nil {
			s.logf("afs: callback delivery failed: %v", err)
		}
	}
	return version
}

// acquire blocks until clientID holds the exclusive lock on name.
func (s *Server) acquire(name, clientID string) {
	s.mu.Lock()
	ls := s.locks[name]
	if ls == nil {
		ls = &lockState{}
		s.locks[name] = ls
	}
	if ls.holder == "" {
		ls.holder = clientID
		s.mu.Unlock()
		return
	}
	wait := lockWaiter{ch: make(chan struct{}), clientID: clientID}
	ls.waiters = append(ls.waiters, wait)
	s.mu.Unlock()

	<-wait.ch // ownership was assigned by release before the channel closed
}

// release hands the lock to the next waiter, or frees it.
func (s *Server) release(ls *lockState) {
	s.mu.Lock()
	if len(ls.waiters) > 0 {
		next := ls.waiters[0]
		ls.waiters = ls.waiters[1:]
		ls.holder = next.clientID
		s.mu.Unlock()
		close(next.ch)
		return
	}
	ls.holder = ""
	s.mu.Unlock()
}

// ListenAndServe is a convenience that listens on addr and serves until
// failure. It is used by cmd/nexus-afsd.
//
//lint:ignore span-coverage process-lifetime serve loop, not an operation; see Serve
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("afs: listen %s: %w", addr, err)
	}
	log.Printf("afs: serving on %s", l.Addr())
	return s.Serve(l)
}
