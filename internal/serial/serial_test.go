package serial

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripAllTypes(t *testing.T) {
	w := NewWriter(64)
	w.WriteUint8(0xab)
	w.WriteUint16(0xbeef)
	w.WriteUint32(0xdeadbeef)
	w.WriteUint64(math.MaxUint64 - 7)
	w.WriteBool(true)
	w.WriteBool(false)
	w.WriteRaw([]byte{1, 2, 3})
	w.WriteBytes([]byte("payload"))
	w.WriteString("a name")

	r := NewReader(w.Bytes())
	if got := r.ReadUint8("u8"); got != 0xab {
		t.Errorf("u8 = %#x", got)
	}
	if got := r.ReadUint16("u16"); got != 0xbeef {
		t.Errorf("u16 = %#x", got)
	}
	if got := r.ReadUint32("u32"); got != 0xdeadbeef {
		t.Errorf("u32 = %#x", got)
	}
	if got := r.ReadUint64("u64"); got != math.MaxUint64-7 {
		t.Errorf("u64 = %#x", got)
	}
	if !r.ReadBool("b1") || r.ReadBool("b2") {
		t.Error("bool round trip failed")
	}
	if got := r.ReadRaw(3, "raw"); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("raw = %v", got)
	}
	if got := r.ReadBytes(0, "bytes"); !bytes.Equal(got, []byte("payload")) {
		t.Errorf("bytes = %q", got)
	}
	if got := r.ReadString(0, "str"); got != "a name" {
		t.Errorf("str = %q", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	w := NewWriter(16)
	w.WriteBytes([]byte("0123456789"))
	enc := w.Bytes()

	// Every strict prefix of the encoding must fail to decode.
	for cut := 0; cut < len(enc); cut++ {
		r := NewReader(enc[:cut])
		r.ReadBytes(0, "field")
		if r.Err() == nil {
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
		if !errors.Is(r.Err(), ErrCorrupt) {
			t.Fatalf("truncation error = %v, want ErrCorrupt", r.Err())
		}
	}
}

func TestLengthLimitEnforced(t *testing.T) {
	w := NewWriter(16)
	w.WriteBytes(bytes.Repeat([]byte{9}, 100))
	r := NewReader(w.Bytes())
	r.ReadBytes(99, "field")
	if !errors.Is(r.Err(), ErrTooLarge) {
		t.Fatalf("over-limit length error = %v, want ErrTooLarge", r.Err())
	}
}

func TestHugeLengthPrefixRejectedWithoutAllocation(t *testing.T) {
	// A 4 GiB length prefix over a 4-byte body must be rejected by the
	// limit check, not by attempting the allocation.
	var enc [8]byte
	enc[0], enc[1], enc[2], enc[3] = 0xff, 0xff, 0xff, 0xff
	r := NewReader(enc[:])
	r.ReadBytes(0, "field")
	if r.Err() == nil {
		t.Fatal("4 GiB length prefix accepted")
	}
}

func TestCountLimit(t *testing.T) {
	w := NewWriter(8)
	w.WriteUint32(5000)
	r := NewReader(w.Bytes())
	if n := r.ReadCount(4096, "entries"); n != 0 || !errors.Is(r.Err(), ErrTooLarge) {
		t.Fatalf("ReadCount = %d, err = %v; want 0, ErrTooLarge", n, r.Err())
	}

	w2 := NewWriter(8)
	w2.WriteUint32(4096)
	r2 := NewReader(w2.Bytes())
	if n := r2.ReadCount(4096, "entries"); n != 4096 || r2.Err() != nil {
		t.Fatalf("ReadCount = %d, err = %v; want 4096, nil", n, r2.Err())
	}
}

func TestStrictBool(t *testing.T) {
	r := NewReader([]byte{2})
	r.ReadBool("flag")
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("bool=2 error = %v, want ErrCorrupt", r.Err())
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	w := NewWriter(8)
	w.WriteUint32(7)
	enc := append(w.Bytes(), 0x00)
	r := NewReader(enc)
	if got := r.ReadUint32("v"); got != 7 {
		t.Fatalf("value = %d", got)
	}
	if err := r.Finish(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Finish = %v, want ErrCorrupt", err)
	}
}

func TestErrorsAreSticky(t *testing.T) {
	r := NewReader([]byte{1})
	r.ReadUint64("first") // fails: only 1 byte
	first := r.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	r.ReadUint8("second") // would succeed alone, must stay failed
	if r.Err() != first {
		t.Fatalf("error not sticky: %v then %v", first, r.Err())
	}
}

func TestReadRawReturnsCopy(t *testing.T) {
	src := []byte{1, 2, 3, 4}
	r := NewReader(src)
	got := r.ReadRaw(4, "raw")
	got[0] = 0xff
	if src[0] == 0xff {
		t.Fatal("ReadRaw aliases the input buffer")
	}
}

func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(payload []byte, s string) bool {
		if len(s) > MaxStringLen {
			s = s[:MaxStringLen]
		}
		w := NewWriter(len(payload) + len(s) + 8)
		w.WriteBytes(payload)
		w.WriteString(s)
		r := NewReader(w.Bytes())
		gotB := r.ReadBytes(0, "b")
		gotS := r.ReadString(0, "s")
		return r.Finish() == nil && bytes.Equal(gotB, payload) && gotS == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRandomInputNeverPanics(t *testing.T) {
	// Feeding arbitrary bytes through a representative decode sequence
	// must never panic — errors only.
	f := func(input []byte) bool {
		r := NewReader(input)
		_ = r.ReadUint32("a")
		_ = r.ReadBytes(1024, "b")
		_ = r.ReadString(64, "c")
		n := r.ReadCount(128, "n")
		for i := 0; i < n; i++ {
			_ = r.ReadUint64("elem")
		}
		_ = r.Finish()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
