// Package serial implements the bounds-checked binary encoders and
// decoders used for every structure NEXUS persists to untrusted storage.
//
// The NEXUS prototype "employs secure data serializers on sensitive
// outputs" (DSN'19 §V): because all persisted bytes cross the trust
// boundary, the decoder must treat its input as attacker-controlled.
// Every read is length-checked, every variable-length field carries an
// explicit length prefix validated against both the remaining input and a
// caller-supplied cap, and decode failures carry enough context to audit.
//
// The format is deliberately simple: little-endian fixed-width integers,
// and (uint32 length ‖ bytes) for variable-length fields. There is no
// reflection and no self-describing metadata — structures encode and
// decode themselves field by field, so the wire layout is explicit in
// code review.
package serial

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Limits applied to untrusted length prefixes. Individual callers can pass
// tighter caps to ReadBytes; these are the absolute ceilings.
const (
	// MaxBytesLen caps any single variable-length field (64 MiB covers the
	// largest data chunk NEXUS stores plus headers).
	MaxBytesLen = 64 << 20
	// MaxStringLen caps any string field (filesystem names, usernames).
	MaxStringLen = 4096
	// MaxCount caps any element-count prefix (directory entries, chunks,
	// users). Decoders multiply counts by per-element sizes, so this also
	// bounds allocation.
	MaxCount = 1 << 20
)

// Decode errors. All decoder failures wrap ErrCorrupt so callers can treat
// any malformed input uniformly as tampering.
var (
	ErrCorrupt  = errors.New("serial: corrupt or truncated input")
	ErrTooLarge = errors.New("serial: length prefix exceeds limit")
)

// Writer accumulates an encoded structure. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// Bytes returns the encoded output. The returned slice aliases the
// writer's buffer; callers that retain it must not keep writing.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// WriteUint8 appends a single byte.
func (w *Writer) WriteUint8(v uint8) { w.buf = append(w.buf, v) }

// WriteUint16 appends a little-endian uint16.
func (w *Writer) WriteUint16(v uint16) {
	w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
}

// WriteUint32 appends a little-endian uint32.
func (w *Writer) WriteUint32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// WriteUint64 appends a little-endian uint64.
func (w *Writer) WriteUint64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// WriteBool appends a bool as one byte.
func (w *Writer) WriteBool(v bool) {
	if v {
		w.WriteUint8(1)
	} else {
		w.WriteUint8(0)
	}
}

// WriteRaw appends b with no length prefix. Use for fixed-width fields
// (UUIDs, keys, MACs) whose size is implied by the structure.
func (w *Writer) WriteRaw(b []byte) { w.buf = append(w.buf, b...) }

// WriteBytes appends a uint32 length prefix followed by b.
func (w *Writer) WriteBytes(b []byte) {
	w.WriteUint32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// WriteString appends s as a length-prefixed byte field.
func (w *Writer) WriteString(s string) {
	w.WriteUint32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader decodes a structure from untrusted bytes. The zero value is an
// empty reader; use NewReader.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over b. The reader does not copy b; callers
// must not mutate it during decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error encountered, or nil. Once an error
// occurs all subsequent reads return zero values, so decoders may read an
// entire structure and check Err once at the end.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Offset returns the current decode position, for error reporting.
func (r *Reader) Offset() int { return r.off }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: reading %s at offset %d (len %d)",
			ErrCorrupt, what, r.off, len(r.buf))
	}
}

func (r *Reader) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.fail(what)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// ReadUint8 consumes one byte.
func (r *Reader) ReadUint8(what string) uint8 {
	b := r.take(1, what)
	if b == nil {
		return 0
	}
	return b[0]
}

// ReadUint16 consumes a little-endian uint16.
func (r *Reader) ReadUint16(what string) uint16 {
	b := r.take(2, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// ReadUint32 consumes a little-endian uint32.
func (r *Reader) ReadUint32(what string) uint32 {
	b := r.take(4, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// ReadUint64 consumes a little-endian uint64.
func (r *Reader) ReadUint64(what string) uint64 {
	b := r.take(8, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// ReadBool consumes one byte and interprets it strictly: 0 is false, 1 is
// true, anything else is corruption.
func (r *Reader) ReadBool(what string) bool {
	switch r.ReadUint8(what) {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(what + " (invalid bool)")
		return false
	}
}

// ReadRaw consumes exactly n bytes with no length prefix and returns a
// copy, for fixed-width fields.
func (r *Reader) ReadRaw(n int, what string) []byte {
	b := r.take(n, what)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// ReadRawInto consumes len(dst) bytes into dst.
func (r *Reader) ReadRawInto(dst []byte, what string) {
	b := r.take(len(dst), what)
	if b != nil {
		copy(dst, b)
	}
}

// ReadBytes consumes a length-prefixed byte field, rejecting prefixes
// larger than maxLen (or MaxBytesLen if maxLen <= 0). It returns a copy.
func (r *Reader) ReadBytes(maxLen int, what string) []byte {
	if maxLen <= 0 || maxLen > MaxBytesLen {
		maxLen = MaxBytesLen
	}
	n := r.ReadUint32(what + " length")
	if r.err != nil {
		return nil
	}
	if int64(n) > int64(maxLen) {
		if r.err == nil {
			r.err = fmt.Errorf("%w: %s length %d > limit %d at offset %d",
				ErrTooLarge, what, n, maxLen, r.off)
		}
		return nil
	}
	return r.ReadRaw(int(n), what)
}

// ReadString consumes a length-prefixed string field capped at
// MaxStringLen (or maxLen if tighter).
func (r *Reader) ReadString(maxLen int, what string) string {
	if maxLen <= 0 || maxLen > MaxStringLen {
		maxLen = MaxStringLen
	}
	return string(r.ReadBytes(maxLen, what))
}

// ReadCount consumes a uint32 element count, rejecting values above max
// (or MaxCount if max <= 0).
func (r *Reader) ReadCount(max int, what string) int {
	if max <= 0 || max > MaxCount {
		max = MaxCount
	}
	n := r.ReadUint32(what)
	if r.err != nil {
		return 0
	}
	if int64(n) > int64(max) {
		r.err = fmt.Errorf("%w: %s count %d > limit %d at offset %d",
			ErrTooLarge, what, n, max, r.off)
		return 0
	}
	return int(n)
}

// Finish verifies the input was consumed exactly and returns the first
// error, if any. Trailing garbage after a structure is treated as
// corruption: an attacker must not be able to smuggle bytes past the
// authenticated region.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes after structure", ErrCorrupt, r.Remaining())
	}
	return nil
}
