package fsapi_test

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	mrand "math/rand"
	"path"
	"sort"
	"testing"

	"nexus/internal/backend"
	"nexus/internal/enclave"
	"nexus/internal/fsapi"
	"nexus/internal/plainfs"
	"nexus/internal/sgx"
	"nexus/internal/vfs"
)

// newNexusFS builds a mounted NEXUS filesystem.
func newNexusFS(t *testing.T) fsapi.FileSystem {
	t.Helper()
	platform, err := sgx.NewPlatform(sgx.PlatformConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	container, err := platform.CreateEnclave(sgx.Image{Name: "nexus-enclave", Version: 1, Code: []byte("t")})
	if err != nil {
		t.Fatal(err)
	}
	// Small buckets exercise splitting under the random workload.
	encl, err := enclave.New(enclave.Config{
		SGX:        container,
		Store:      vfs.NewVersionedStore(backend.NewMemStore()),
		BucketSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := encl.CreateVolume("owner", pub)
	if err != nil {
		t.Fatal(err)
	}
	volID, err := encl.VolumeUUID()
	if err != nil {
		t.Fatal(err)
	}
	nonce, blob, err := encl.BeginAuth(pub, sealed, volID)
	if err != nil {
		t.Fatal(err)
	}
	msg := append(append([]byte(nil), nonce...), blob...)
	if err := encl.CompleteAuth(ed25519.Sign(priv, msg)); err != nil {
		t.Fatal(err)
	}
	return fsapi.Nexus(vfs.New(encl))
}

// TestDifferentialRandomOps drives identical random operation sequences
// through NEXUS and the plain baseline and demands identical observable
// behaviour: same success/failure outcomes, same listings, same file
// contents. This is the repository's model-based correctness check — the
// baseline is simple enough to trust as a reference model.
func TestDifferentialRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runDifferential(t, seed, 300)
		})
	}
}

func runDifferential(t *testing.T, seed int64, steps int) {
	nx := newNexusFS(t)
	ref := plainfs.New(backend.NewMemStore())
	rng := mrand.New(mrand.NewSource(seed))

	// A pool of paths the generator draws from, so operations collide
	// productively (duplicates, nested dirs, renames onto existing
	// files...).
	dirs := []string{"/"}
	files := []string{}
	randDir := func() string { return dirs[rng.Intn(len(dirs))] }
	randName := func() string { return fmt.Sprintf("n%02d", rng.Intn(30)) }

	for step := 0; step < steps; step++ {
		var nxErr, refErr error
		op := rng.Intn(100)
		switch {
		case op < 20: // mkdir
			p := path.Join(randDir(), randName())
			nxErr = nx.Mkdir(p)
			refErr = ref.Mkdir(p)
			if nxErr == nil {
				dirs = append(dirs, p)
			}
		case op < 45: // write file (create or overwrite)
			p := path.Join(randDir(), randName())
			content := make([]byte, rng.Intn(200))
			rng.Read(content)
			nxErr = nx.WriteFile(p, content)
			refErr = ref.WriteFile(p, content)
			if nxErr == nil {
				files = append(files, p)
			}
		case op < 60: // read file
			p := path.Join(randDir(), randName())
			var nxData, refData []byte
			nxData, nxErr = nx.ReadFile(p)
			refData, refErr = ref.ReadFile(p)
			if nxErr == nil && refErr == nil && !bytes.Equal(nxData, refData) {
				t.Fatalf("step %d: ReadFile(%s) contents differ", step, p)
			}
		case op < 72: // remove
			p := path.Join(randDir(), randName())
			nxErr = nx.Remove(p)
			refErr = ref.Remove(p)
		case op < 82: // rename a file
			if len(files) == 0 {
				continue
			}
			src := files[rng.Intn(len(files))]
			dst := path.Join(randDir(), randName())
			// The reference model lacks NEXUS's file-replace semantics
			// only when dst is a dir; both reject that case. Renames of
			// since-deleted sources fail on both.
			nxErr = nx.Rename(src, dst)
			refErr = ref.Rename(src, dst)
		case op < 90: // stat
			p := path.Join(randDir(), randName())
			var nxSt, refSt fsapi.DirEntry
			nxSt, nxErr = nx.Stat(p)
			refSt, refErr = ref.Stat(p)
			if nxErr == nil && refErr == nil {
				if nxSt.IsDir != refSt.IsDir || nxSt.IsSymlink != refSt.IsSymlink {
					t.Fatalf("step %d: Stat(%s) kind differs: %+v vs %+v", step, p, nxSt, refSt)
				}
			}
		default: // list a directory and compare
			d := randDir()
			nxEntries, nxE := nx.ReadDir(d)
			refEntries, refE := ref.ReadDir(d)
			nxErr, refErr = nxE, refE
			if nxErr == nil && refErr == nil {
				compareListings(t, step, d, nxEntries, refEntries)
			}
		}
		if (nxErr == nil) != (refErr == nil) {
			t.Fatalf("step %d (op %d): outcome mismatch: nexus=%v reference=%v",
				step, op, nxErr, refErr)
		}
	}

	// Final deep comparison of the entire tree.
	compareTrees(t, nx, ref, "/")
}

func compareListings(t *testing.T, step int, dir string, a, b []fsapi.DirEntry) {
	t.Helper()
	names := func(es []fsapi.DirEntry) []string {
		out := make([]string, len(es))
		for i, e := range es {
			kind := "f"
			if e.IsDir {
				kind = "d"
			} else if e.IsSymlink {
				kind = "l"
			}
			out[i] = kind + ":" + e.Name
		}
		sort.Strings(out)
		return out
	}
	na, nb := names(a), names(b)
	if len(na) != len(nb) {
		t.Fatalf("step %d: ReadDir(%s) length differs: %v vs %v", step, dir, na, nb)
	}
	for i := range na {
		if na[i] != nb[i] {
			t.Fatalf("step %d: ReadDir(%s) differs: %v vs %v", step, dir, na, nb)
		}
	}
}

func compareTrees(t *testing.T, a, b fsapi.FileSystem, root string) {
	t.Helper()
	ae, err := a.ReadDir(root)
	if err != nil {
		t.Fatalf("ReadDir(%s) on nexus: %v", root, err)
	}
	be, err := b.ReadDir(root)
	if err != nil {
		t.Fatalf("ReadDir(%s) on reference: %v", root, err)
	}
	compareListings(t, -1, root, ae, be)
	for _, e := range ae {
		child := path.Join(root, e.Name)
		switch {
		case e.IsDir:
			compareTrees(t, a, b, child)
		case !e.IsSymlink:
			da, err := a.ReadFile(child)
			if err != nil {
				t.Fatalf("ReadFile(%s) on nexus: %v", child, err)
			}
			db, err := b.ReadFile(child)
			if err != nil {
				t.Fatalf("ReadFile(%s) on reference: %v", child, err)
			}
			if !bytes.Equal(da, db) {
				t.Fatalf("contents of %s differ", child)
			}
		}
	}
}
