// Package fsapi defines the filesystem interface that every consumer in
// this repository — database engines, workload generators, Linux-utility
// reimplementations, and the benchmark harness — programs against.
//
// Two implementations exist:
//
//   - the NEXUS filesystem (internal/vfs adapted by Nexus), where every
//     operation passes through the enclave; and
//   - the plain baseline (internal/plainfs), modelling an unmodified
//     OpenAFS client where each file is one store object and operations
//     cost one RPC.
//
// The paper's evaluation (§VII) is precisely a comparison of these two
// stacks under identical workloads.
package fsapi

import (
	"io"

	"nexus/internal/vfs"
)

// Open flags, shared across implementations.
const (
	O_RDONLY = vfs.O_RDONLY
	O_RDWR   = vfs.O_RDWR
	O_CREATE = vfs.O_CREATE
	O_TRUNC  = vfs.O_TRUNC
	O_APPEND = vfs.O_APPEND
)

// DirEntry is a directory listing entry.
type DirEntry struct {
	Name          string
	IsDir         bool
	IsSymlink     bool
	SymlinkTarget string
	Size          uint64
}

// File is an open file handle with AFS open-to-close semantics: all I/O
// is local between Open and Close; Sync/Close flush to the store.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.ReaderAt
	io.Closer
	// Sync flushes dirty contents without closing.
	Sync() error
	// Truncate resizes the file.
	Truncate(size int64) error
	// Size returns the current length.
	Size() int64
}

// FileSystem is the operation set exercised by the paper's workloads.
type FileSystem interface {
	Mkdir(path string) error
	MkdirAll(path string) error
	Touch(path string) error
	WriteFile(path string, data []byte) error
	ReadFile(path string) ([]byte, error)
	Remove(path string) error
	RemoveAll(path string) error
	Rename(oldPath, newPath string) error
	Symlink(target, linkPath string) error
	Stat(path string) (DirEntry, error)
	Exists(path string) (bool, error)
	ReadDir(path string) ([]DirEntry, error)
	Open(path string, flags int) (File, error)
}

// nexusFS adapts *vfs.FS to FileSystem.
type nexusFS struct {
	fs *vfs.FS
}

var _ FileSystem = (*nexusFS)(nil)

// Nexus wraps a mounted NEXUS filesystem.
func Nexus(fs *vfs.FS) FileSystem { return &nexusFS{fs: fs} }

func (n *nexusFS) Mkdir(p string) error                  { return n.fs.Mkdir(p) }
func (n *nexusFS) MkdirAll(p string) error               { return n.fs.MkdirAll(p) }
func (n *nexusFS) Touch(p string) error                  { return n.fs.Touch(p) }
func (n *nexusFS) WriteFile(p string, data []byte) error { return n.fs.WriteFile(p, data) }
func (n *nexusFS) ReadFile(p string) ([]byte, error)     { return n.fs.ReadFile(p) }
func (n *nexusFS) Remove(p string) error                 { return n.fs.Remove(p) }
func (n *nexusFS) RemoveAll(p string) error              { return n.fs.RemoveAll(p) }
func (n *nexusFS) Rename(o, p string) error              { return n.fs.Rename(o, p) }
func (n *nexusFS) Symlink(t, l string) error             { return n.fs.Symlink(t, l) }

func (n *nexusFS) Stat(p string) (DirEntry, error) {
	e, err := n.fs.Stat(p)
	if err != nil {
		return DirEntry{}, err
	}
	return DirEntry(e), nil
}

func (n *nexusFS) Exists(p string) (bool, error) { return n.fs.Exists(p) }

func (n *nexusFS) ReadDir(p string) ([]DirEntry, error) {
	entries, err := n.fs.ReadDir(p)
	if err != nil {
		return nil, err
	}
	out := make([]DirEntry, len(entries))
	for i, e := range entries {
		out[i] = DirEntry(e)
	}
	return out, nil
}

func (n *nexusFS) Open(p string, flags int) (File, error) {
	f, err := n.fs.Open(p, flags)
	if err != nil {
		return nil, err
	}
	return f, nil
}
