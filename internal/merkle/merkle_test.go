package merkle

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"nexus/internal/uuid"
)

// testUUID derives a deterministic UUID from a seeded source.
func testUUID(rng *rand.Rand) uuid.UUID {
	var id uuid.UUID
	rng.Read(id[:])
	return id
}

func testUUIDs(seed int64, n int) []uuid.UUID {
	rng := rand.New(rand.NewSource(seed))
	ids := make([]uuid.UUID, n)
	for i := range ids {
		ids[i] = testUUID(rng)
	}
	return ids
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	if tr.Root() != EmptyRoot() {
		t.Fatalf("empty tree root != EmptyRoot")
	}
	if _, ok := tr.Lookup(uuid.UUID{1}); ok {
		t.Fatalf("Lookup on empty tree reported presence")
	}
	p := tr.Prove(uuid.UUID{1})
	if p.HasLeaf || len(p.Steps) != 0 {
		t.Fatalf("empty-tree proof has leaf/steps: %+v", p)
	}
	v, present, err := p.Verify(tr.Root(), uuid.UUID{1})
	if err != nil || present || v != 0 {
		t.Fatalf("empty-tree absence proof: v=%d present=%v err=%v", v, present, err)
	}
	// The same proof against a non-empty root must fail.
	other := New()
	other.Set(uuid.UUID{2}, 1)
	if _, _, err := p.Verify(other.Root(), uuid.UUID{1}); !errors.Is(err, ErrBadProof) {
		t.Fatalf("empty proof vs non-empty root: err = %v, want ErrBadProof", err)
	}
}

func TestSetLookupDelete(t *testing.T) {
	ids := testUUIDs(7, 200)
	tr := New()
	for i, id := range ids {
		tr.Set(id, uint64(i+1))
	}
	if tr.Len() != len(ids) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ids))
	}
	for i, id := range ids {
		v, ok := tr.Lookup(id)
		if !ok || v != uint64(i+1) {
			t.Fatalf("Lookup(%s) = %d,%v want %d,true", id, v, ok, i+1)
		}
	}
	// Update half in place; size must not change.
	for i, id := range ids {
		if i%2 == 0 {
			tr.Set(id, uint64(1000+i))
		}
	}
	if tr.Len() != len(ids) {
		t.Fatalf("Len after updates = %d, want %d", tr.Len(), len(ids))
	}
	// Delete the other half.
	for i, id := range ids {
		if i%2 == 1 {
			tr.Set(id, 0)
		}
	}
	if tr.Len() != len(ids)/2 {
		t.Fatalf("Len after deletes = %d, want %d", tr.Len(), len(ids)/2)
	}
	for i, id := range ids {
		v, ok := tr.Lookup(id)
		if i%2 == 1 {
			if ok {
				t.Fatalf("deleted %s still present", id)
			}
		} else if !ok || v != uint64(1000+i) {
			t.Fatalf("Lookup(%s) = %d,%v want %d,true", id, v, ok, 1000+i)
		}
	}
	// Deleting an absent key is a no-op.
	before := tr.Root()
	tr.Set(ids[1], 0)
	if tr.Root() != before {
		t.Fatalf("deleting absent key changed the root")
	}
}

// TestCanonicalRoot: the root must be a pure function of the final
// key/version set, independent of operation order.
func TestCanonicalRoot(t *testing.T) {
	ids := testUUIDs(11, 64)
	a, b := New(), New()
	for i, id := range ids {
		a.Set(id, uint64(i+1))
	}
	perm := rand.New(rand.NewSource(13)).Perm(len(ids))
	for _, i := range perm {
		b.Set(ids[i], uint64(i+1))
	}
	// Churn b: insert and remove extra keys.
	extra := testUUIDs(17, 32)
	for _, id := range extra {
		b.Set(id, 9)
	}
	for _, id := range extra {
		b.Set(id, 0)
	}
	if a.Root() != b.Root() {
		t.Fatalf("same key set, different roots")
	}
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatalf("same key set, different encodings")
	}
}

func TestMembershipAndAbsenceProofs(t *testing.T) {
	ids := testUUIDs(23, 300)
	tr := New()
	for i, id := range ids {
		tr.Set(id, uint64(i+1))
	}
	root := tr.Root()
	for i, id := range ids {
		p := tr.Prove(id)
		v, present, err := p.Verify(root, id)
		if err != nil || !present || v != uint64(i+1) {
			t.Fatalf("membership proof for %s: v=%d present=%v err=%v", id, v, present, err)
		}
	}
	for _, id := range testUUIDs(29, 100) {
		p := tr.Prove(id)
		_, present, err := p.Verify(root, id)
		if err != nil || present {
			t.Fatalf("absence proof for %s: present=%v err=%v", id, present, err)
		}
	}
}

func TestProofRejectsTampering(t *testing.T) {
	ids := testUUIDs(31, 50)
	tr := New()
	for i, id := range ids {
		tr.Set(id, uint64(i+1))
	}
	root := tr.Root()
	id := ids[7]

	// Tampered leaf version.
	p := tr.Prove(id)
	p.LeafVersion++
	if _, _, err := p.Verify(root, id); !errors.Is(err, ErrBadProof) {
		t.Fatalf("tampered version: err = %v, want ErrBadProof", err)
	}
	// Tampered sibling hash.
	p = tr.Prove(id)
	p.Steps[0].Sibling[0] ^= 1
	if _, _, err := p.Verify(root, id); !errors.Is(err, ErrBadProof) {
		t.Fatalf("tampered sibling: err = %v, want ErrBadProof", err)
	}
	// Truncated path.
	p = tr.Prove(id)
	p.Steps = p.Steps[:len(p.Steps)-1]
	if _, _, err := p.Verify(root, id); !errors.Is(err, ErrBadProof) {
		t.Fatalf("truncated path: err = %v, want ErrBadProof", err)
	}
	// A different key's proof must not verify for id (fake absence).
	p = tr.Prove(ids[8])
	if _, _, err := p.Verify(root, id); err == nil {
		t.Fatalf("proof for %s accepted for %s", ids[8], id)
	}
	// Stale proof: from before an update of the same leaf.
	p = tr.Prove(id)
	tr2 := tr.Clone()
	tr2.Set(id, 999)
	if _, _, err := p.Verify(tr2.Root(), id); !errors.Is(err, ErrBadProof) {
		t.Fatalf("stale proof: err = %v, want ErrBadProof", err)
	}
}

func TestProofWireRoundTrip(t *testing.T) {
	ids := testUUIDs(37, 40)
	tr := New()
	for i, id := range ids {
		tr.Set(id, uint64(i+1))
	}
	for _, id := range append(ids[:5:5], testUUIDs(41, 5)...) {
		p := tr.Prove(id)
		enc := p.Encode()
		got, err := DecodeProof(enc)
		if err != nil {
			t.Fatalf("DecodeProof: %v", err)
		}
		if !bytes.Equal(got.Encode(), enc) {
			t.Fatalf("re-encode mismatch")
		}
		if _, _, err := got.Verify(tr.Root(), id); err != nil {
			t.Fatalf("decoded proof does not verify: %v", err)
		}
	}
	// Empty-tree proof round trip.
	p := New().Prove(ids[0])
	got, err := DecodeProof(p.Encode())
	if err != nil || got.HasLeaf {
		t.Fatalf("empty proof round trip: %+v err=%v", got, err)
	}
}

func TestDecodeProofRejectsMalformed(t *testing.T) {
	tr := New()
	for i, id := range testUUIDs(43, 20) {
		tr.Set(id, uint64(i+1))
	}
	good := tr.Prove(testUUIDs(43, 1)[0]).Encode()

	cases := map[string][]byte{
		"empty":         {},
		"bad format":    append([]byte{99}, good[1:]...),
		"truncated":     good[:len(good)-1],
		"trailing":      append(append([]byte{}, good...), 0),
		"bad leaf flag": append([]byte{1, 7}, good[2:]...),
		"steps no leaf": (&Proof{Steps: []ProofStep{{Bit: 5}}}).Encode(),
		"version zero": func() []byte {
			p := &Proof{HasLeaf: true, LeafID: uuid.UUID{1}, LeafVersion: 0}
			return p.Encode()
		}(),
		"bits not increasing": func() []byte {
			p := &Proof{HasLeaf: true, LeafID: uuid.UUID{1}, LeafVersion: 1,
				Steps: []ProofStep{{Bit: 9}, {Bit: 9}}}
			return p.Encode()
		}(),
	}
	for name, data := range cases {
		if _, err := DecodeProof(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		} else if !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", name, err)
		}
	}
}

func TestTreeEncodeDecodeRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 17, 256} {
		tr := New()
		for i, id := range testUUIDs(int64(47+n), n) {
			tr.Set(id, uint64(i+1))
		}
		enc := tr.Encode()
		got, err := DecodeTree(enc)
		if err != nil {
			t.Fatalf("n=%d: DecodeTree: %v", n, err)
		}
		if got.Len() != n || got.Root() != tr.Root() {
			t.Fatalf("n=%d: round trip Len=%d Root match=%v", n, got.Len(), got.Root() == tr.Root())
		}
		if !bytes.Equal(got.Encode(), enc) {
			t.Fatalf("n=%d: re-encode mismatch", n)
		}
	}
}

func TestDecodeTreeRejectsMalformed(t *testing.T) {
	tr := New()
	ids := testUUIDs(53, 8)
	for i, id := range ids {
		tr.Set(id, uint64(i+1))
	}
	good := tr.Encode()

	flip := func(off int, val byte) []byte {
		b := append([]byte{}, good...)
		b[off] = val
		return b
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad format":  flip(0, 99),
		"truncated":   good[:len(good)-1],
		"trailing":    append(append([]byte{}, good...), 0),
		"wrong count": flip(1, good[1]+1), // count is little-endian; bump the low byte
		"bad tag":     flip(5, 7),
	}
	for name, data := range cases {
		if _, err := DecodeTree(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		} else if !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", name, err)
		}

	}

	// Geometry violations built by hand (counts and versions are
	// little-endian): a leaf placed in the wrong subtree, non-increasing
	// branch bits, a zero-version leaf, and a branch hung below its key
	// set's first diverging bit (routable, but not canonical).
	leaf := func(id uuid.UUID) []byte {
		b := []byte{0}
		b = append(b, id[:]...)
		return append(b, 1, 0, 0, 0, 0, 0, 0, 0)
	}
	// Branch on bit 0 with both leaves having bit 0 = 0.
	var l0, l1 uuid.UUID
	l0[0], l1[0] = 0x00, 0x01
	bad := []byte{treeFormat, 2, 0, 0, 0, 1, 0}
	bad = append(bad, leaf(l0)...)
	bad = append(bad, leaf(l1)...) // bit 0 of l1 is 0, placed right
	if _, err := DecodeTree(bad); !errors.Is(err, ErrMalformed) {
		t.Errorf("leaf outside subtree: err = %v, want ErrMalformed", err)
	}
	// Child branch bit not above the parent's.
	var r0, r1, r2 uuid.UUID
	r0[0], r1[0], r2[0] = 0x00, 0x80, 0xc0
	nested := []byte{treeFormat, 3, 0, 0, 0, 1, 3}
	nested = append(nested, leaf(r0)...)
	nested = append(nested, 1, 2) // inner bit 2 under parent bit 3
	nested = append(nested, leaf(r1)...)
	nested = append(nested, leaf(r2)...)
	if _, err := DecodeTree(nested); !errors.Is(err, ErrMalformed) {
		t.Errorf("non-increasing bits: err = %v, want ErrMalformed", err)
	}
	// Zero-version leaf.
	zv := []byte{treeFormat, 1, 0, 0, 0, 0}
	zv = append(zv, l0[:]...)
	zv = append(zv, 0, 0, 0, 0, 0, 0, 0, 0)
	if _, err := DecodeTree(zv); !errors.Is(err, ErrMalformed) {
		t.Errorf("zero version: err = %v, want ErrMalformed", err)
	}
	// Branch at bit 1 over keys whose first diverging bit is 0: every
	// leaf satisfies its ancestor constraints, so only the crit-bit
	// check catches it.
	var c0, c1 uuid.UUID
	c0[0], c1[0] = 0x00, 0xc0 // diverge at bit 0; both sides of a bit-1 branch still route
	low := []byte{treeFormat, 2, 0, 0, 0, 1, 1}
	low = append(low, leaf(c0)...)
	low = append(low, leaf(c1)...)
	if _, err := DecodeTree(low); !errors.Is(err, ErrMalformed) {
		t.Errorf("branch below crit bit: err = %v, want ErrMalformed", err)
	}
}

func TestCloneIsolation(t *testing.T) {
	tr := New()
	ids := testUUIDs(59, 50)
	for i, id := range ids {
		tr.Set(id, uint64(i+1))
	}
	snap := tr.Clone()
	root := tr.Root()
	for i, id := range ids {
		tr.Set(id, uint64(100+i))
	}
	tr.Set(ids[0], 0)
	if snap.Root() != root {
		t.Fatalf("clone changed under mutation of the original")
	}
	if v, ok := snap.Lookup(ids[0]); !ok || v != 1 {
		t.Fatalf("clone lost a leaf: %d %v", v, ok)
	}
}

func TestLeavesOrdered(t *testing.T) {
	tr := New()
	ids := testUUIDs(61, 100)
	for i, id := range ids {
		tr.Set(id, uint64(i+1))
	}
	leaves := tr.Leaves()
	if len(leaves) != len(ids) {
		t.Fatalf("Leaves len = %d, want %d", len(leaves), len(ids))
	}
	for i := 1; i < len(leaves); i++ {
		if bytes.Compare(leaves[i-1].ID[:], leaves[i].ID[:]) >= 0 {
			t.Fatalf("leaves not in canonical order at %d", i)
		}
	}
}

func TestNewRootFolding(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	tr := New()
	// Interleave inserts, updates and deletes; after each op the root
	// folded from the pre-op proof must equal the real tree's root.
	var live []uuid.UUID
	for op := 0; op < 500; op++ {
		var id uuid.UUID
		var version uint64
		switch {
		case len(live) > 0 && op%5 == 3: // update
			id = live[rng.Intn(len(live))]
			version = uint64(op + 1)
		case len(live) > 0 && op%5 == 4: // delete
			i := rng.Intn(len(live))
			id = live[i]
			live = append(live[:i], live[i+1:]...)
			version = 0
		default: // insert
			id = testUUID(rng)
			live = append(live, id)
			version = uint64(op + 1)
		}
		proof := tr.Prove(id)
		oldRoot := tr.Root()
		tr.Set(id, version)
		folded, err := proof.NewRoot(oldRoot, id, version)
		if err != nil {
			t.Fatalf("op %d: NewRoot: %v", op, err)
		}
		if folded != tr.Root() {
			t.Fatalf("op %d: folded root diverges from the tree", op)
		}
	}
	// NewRoot must reject a proof that does not verify.
	p := tr.Prove(live[0])
	p.LeafVersion++
	if _, err := p.NewRoot(tr.Root(), live[0], 7); !errors.Is(err, ErrBadProof) {
		t.Fatalf("NewRoot on tampered proof: err = %v, want ErrBadProof", err)
	}
}
