package merkle

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// FuzzMerkleProofDecode checks that DecodeProof either rejects the
// input with ErrMalformed or yields a proof whose re-encoding is
// byte-identical (the wire format is canonical), and that Verify and
// NewRoot never panic on whatever survives decoding.
func FuzzMerkleProofDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	tr := New()
	ids := testUUIDs(2, 40)
	for i, id := range ids {
		tr.Set(id, uint64(i)+1)
	}
	f.Add((&Proof{}).Encode())
	f.Add(tr.Prove(ids[0]).Encode())
	f.Add(tr.Prove(ids[17]).Encode())
	f.Add(tr.Prove(testUUID(rng)).Encode()) // absence proof
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeProof(data)
		if err != nil {
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("DecodeProof error is not ErrMalformed: %v", err)
			}
			return
		}
		if out := p.Encode(); !bytes.Equal(out, data) {
			t.Fatalf("re-encode is not canonical:\n in  %x\n out %x", data, out)
		}
		// Verify/NewRoot must fail closed, never panic, whatever the
		// proof contents.
		if _, _, err := p.Verify(EmptyRoot(), p.LeafID); err != nil &&
			!errors.Is(err, ErrBadProof) && !errors.Is(err, ErrMalformed) {
			t.Fatalf("Verify returned untyped error: %v", err)
		}
		if _, err := p.NewRoot(tr.Root(), p.LeafID, 7); err != nil &&
			!errors.Is(err, ErrBadProof) && !errors.Is(err, ErrMalformed) {
			t.Fatalf("NewRoot returned untyped error: %v", err)
		}
	})
}

// FuzzMerkleTreeDecode checks that DecodeTree either rejects the input
// with ErrMalformed or yields a tree that is truly canonical: its
// re-encoding is byte-identical, its leaves rebuild to the same root
// via Set, and every leaf carries a verifying membership proof.
func FuzzMerkleTreeDecode(f *testing.F) {
	empty := New()
	f.Add(empty.Encode())
	for _, n := range []int{1, 2, 9} {
		tr := New()
		for i, id := range testUUIDs(int64(n), n) {
			tr.Set(id, uint64(i)+1)
		}
		f.Add(tr.Encode())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTree(data)
		if err != nil {
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("DecodeTree error is not ErrMalformed: %v", err)
			}
			return
		}
		if out := tr.Encode(); !bytes.Equal(out, data) {
			t.Fatalf("re-encode is not canonical:\n in  %x\n out %x", data, out)
		}
		leaves := tr.Leaves()
		if len(leaves) != tr.Len() {
			t.Fatalf("Len()=%d but %d leaves", tr.Len(), len(leaves))
		}
		rebuilt := New()
		for _, lf := range leaves {
			rebuilt.Set(lf.ID, lf.Version)
		}
		if rebuilt.Root() != tr.Root() {
			t.Fatalf("decoded tree is not canonical: rebuilt root differs")
		}
		root := tr.Root()
		for _, lf := range leaves {
			v, present, err := tr.Prove(lf.ID).Verify(root, lf.ID)
			if err != nil || !present || v != lf.Version {
				t.Fatalf("leaf %s does not prove: v=%d present=%v err=%v", lf.ID, v, present, err)
			}
		}
	})
}
