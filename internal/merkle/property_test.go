package merkle

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"nexus/internal/uuid"
)

// merkleSeed returns the property-test seed, overridable with
// NEXUS_MERKLE_SEED for exact replay of a failure.
func merkleSeed(t *testing.T) int64 {
	t.Helper()
	env := os.Getenv("NEXUS_MERKLE_SEED")
	if env == "" {
		return 1
	}
	seed, err := strconv.ParseInt(env, 10, 64)
	if err != nil {
		t.Fatalf("NEXUS_MERKLE_SEED=%q: %v", env, err)
	}
	return seed
}

// TestPropertyTreeVsMapOracle drives the tree and a plain map through
// the same seeded op stream (insert/update/delete/load), checking after
// every step that lookups, proofs, Len, and the folded root all agree
// with the oracle. Re-run a failing seed with NEXUS_MERKLE_SEED=<seed>.
func TestPropertyTreeVsMapOracle(t *testing.T) {
	seed := merkleSeed(t)
	rng := rand.New(rand.NewSource(seed))
	tr := New()
	oracle := make(map[uuid.UUID]uint64)
	var keys []uuid.UUID // known keys, present or not, for realistic hits

	const ops = 4000
	for op := 0; op < ops; op++ {
		var id uuid.UUID
		if len(keys) > 0 && rng.Intn(100) < 70 {
			id = keys[rng.Intn(len(keys))]
		} else {
			id = testUUID(rng)
			keys = append(keys, id)
		}
		switch rng.Intn(4) {
		case 0, 1: // insert/update
			version := uint64(rng.Int63n(1<<30)) + 1
			proof := tr.Prove(id)
			oldRoot := tr.Root()
			tr.Set(id, version)
			oracle[id] = version
			folded, err := proof.NewRoot(oldRoot, id, version)
			if err != nil {
				t.Fatalf("seed %d op %d: NewRoot(set): %v", seed, op, err)
			}
			if folded != tr.Root() {
				t.Fatalf("seed %d op %d: folded root diverged after set", seed, op)
			}
		case 2: // delete
			proof := tr.Prove(id)
			oldRoot := tr.Root()
			tr.Set(id, 0)
			delete(oracle, id)
			folded, err := proof.NewRoot(oldRoot, id, 0)
			if err != nil {
				t.Fatalf("seed %d op %d: NewRoot(delete): %v", seed, op, err)
			}
			if folded != tr.Root() {
				t.Fatalf("seed %d op %d: folded root diverged after delete", seed, op)
			}
		case 3: // load: proof verdict must match the oracle
			proof := tr.Prove(id)
			v, present, err := proof.Verify(tr.Root(), id)
			if err != nil {
				t.Fatalf("seed %d op %d: Verify: %v", seed, op, err)
			}
			want, ok := oracle[id]
			if present != ok || v != want {
				t.Fatalf("seed %d op %d: proof says (%d,%v), oracle says (%d,%v)",
					seed, op, v, present, want, ok)
			}
		}
		if tr.Len() != len(oracle) {
			t.Fatalf("seed %d op %d: Len=%d oracle=%d", seed, op, tr.Len(), len(oracle))
		}
	}

	// Final sweep: every oracle entry must look up and prove; a batch of
	// fresh keys must prove absent; the encode/decode round trip must
	// land on the same root.
	root := tr.Root()
	for id, want := range oracle {
		if v, ok := tr.Lookup(id); !ok || v != want {
			t.Fatalf("seed %d: Lookup(%s)=(%d,%v), want (%d,true)", seed, id, v, ok, want)
		}
		if v, present, err := tr.Prove(id).Verify(root, id); err != nil || !present || v != want {
			t.Fatalf("seed %d: final proof for %s: v=%d present=%v err=%v", seed, id, v, present, err)
		}
	}
	for i := 0; i < 64; i++ {
		id := testUUID(rng)
		if _, ok := oracle[id]; ok {
			continue
		}
		if _, present, err := tr.Prove(id).Verify(root, id); err != nil || present {
			t.Fatalf("seed %d: absence proof for %s: present=%v err=%v", seed, id, present, err)
		}
	}
	decoded, err := DecodeTree(tr.Encode())
	if err != nil {
		t.Fatalf("seed %d: DecodeTree: %v", seed, err)
	}
	if decoded.Root() != root || decoded.Len() != tr.Len() {
		t.Fatalf("seed %d: decode round trip diverged", seed)
	}
}
