package merkle

import (
	"fmt"

	"nexus/internal/serial"
	"nexus/internal/uuid"
)

// treeFormat versions the tree encoding (DESIGN.md §15).
const treeFormat = 1

// Encode serializes the tree: a format byte, the leaf count, then the
// trie in preorder. The trie is canonical, so the encoding is a pure
// function of the key/version set.
func (t *Tree) Encode() []byte {
	w := serial.NewWriter(6 + t.size*(2+uuid.Size+8+1))
	w.WriteUint8(treeFormat)
	w.WriteUint32(uint32(t.size))
	var enc func(n *node)
	enc = func(n *node) {
		if n.bit < 0 {
			w.WriteUint8(0)
			w.WriteRaw(n.id[:])
			w.WriteUint64(n.version)
			return
		}
		w.WriteUint8(1)
		w.WriteUint8(uint8(n.bit))
		enc(n.left)
		enc(n.right)
	}
	if t.root != nil {
		enc(t.root)
	}
	return w.Bytes()
}

// pathBit is one ancestor constraint during decode: the subtree being
// read holds only keys whose bit `bit` equals `dir`.
type pathBit struct {
	bit, dir int
}

// DecodeTree parses an encoded tree, enforcing canonical geometry:
// branch bits strictly increase root→leaf, every leaf's key satisfies
// all ancestor bit constraints (so lookups route to it), no leaf
// stores version 0, the declared leaf count matches, and the input is
// consumed exactly. Hashes are recomputed, never trusted from the
// wire. A hostile encoding therefore cannot smuggle in a tree whose
// shape disagrees with its own keys.
func DecodeTree(data []byte) (*Tree, error) {
	r := serial.NewReader(data)
	if f := r.ReadUint8("merkle tree format"); r.Err() == nil && f != treeFormat {
		return nil, fmt.Errorf("%w: unknown tree format %d", ErrMalformed, f)
	}
	declared := int(r.ReadUint32("merkle leaf count"))
	if r.Err() == nil && declared > MaxLeaves {
		return nil, fmt.Errorf("%w: %d leaves exceeds the %d cap", ErrMalformed, declared, MaxLeaves)
	}
	t := &Tree{}
	if declared > 0 {
		var path []pathBit
		root, leaves, _, err := decodeNode(r, -1, &path)
		if err != nil {
			return nil, err
		}
		if leaves != declared {
			return nil, fmt.Errorf("%w: declared %d leaves, found %d", ErrMalformed, declared, leaves)
		}
		t.root, t.size = root, leaves
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return t, nil
}

// decodeNode returns the subtree, its leaf count, and a representative
// key (its first leaf). The representative is what lets the caller
// check each branch bit is the *first* diverging bit of its key set:
// ancestor constraints alone would accept a branch hung below the real
// crit bit, yielding a routable but non-canonical tree.
func decodeNode(r *serial.Reader, parentBit int, path *[]pathBit) (*node, int, uuid.UUID, error) {
	var rep uuid.UUID
	tag := r.ReadUint8("merkle node tag")
	if err := r.Err(); err != nil {
		return nil, 0, rep, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	switch tag {
	case 0:
		var id uuid.UUID
		r.ReadRawInto(id[:], "merkle leaf id")
		version := r.ReadUint64("merkle leaf version")
		if err := r.Err(); err != nil {
			return nil, 0, rep, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		if version == 0 {
			return nil, 0, rep, fmt.Errorf("%w: leaf %s stores version 0", ErrMalformed, id)
		}
		for _, pb := range *path {
			if bitOf(id, pb.bit) != pb.dir {
				return nil, 0, rep, fmt.Errorf("%w: leaf %s violates ancestor bit %d", ErrMalformed, id, pb.bit)
			}
		}
		return newLeaf(id, version), 1, id, nil
	case 1:
		bit := int(r.ReadUint8("merkle branch bit"))
		if err := r.Err(); err != nil {
			return nil, 0, rep, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		if bit >= KeyBits {
			return nil, 0, rep, fmt.Errorf("%w: branch bit %d out of range", ErrMalformed, bit)
		}
		if bit <= parentBit {
			return nil, 0, rep, fmt.Errorf("%w: branch bit %d under ancestor bit %d", ErrMalformed, bit, parentBit)
		}
		*path = append(*path, pathBit{bit: bit, dir: 0})
		left, nl, lrep, err := decodeNode(r, bit, path)
		if err != nil {
			return nil, 0, rep, err
		}
		(*path)[len(*path)-1].dir = 1
		right, nr, rrep, err := decodeNode(r, bit, path)
		*path = (*path)[:len(*path)-1]
		if err != nil {
			return nil, 0, rep, err
		}
		// Canonical shape: this node must branch on the first bit where
		// its two sides diverge. Subtree-internal agreement below their
		// own branch bits holds by induction, so one representative per
		// side decides it.
		if critBit(lrep, rrep) != bit {
			return nil, 0, rep, fmt.Errorf("%w: branch bit %d is not the first diverging bit", ErrMalformed, bit)
		}
		return newInner(bit, left, right), nl + nr, lrep, nil
	default:
		return nil, 0, rep, fmt.Errorf("%w: unknown node tag %d", ErrMalformed, tag)
	}
}
