package merkle

import (
	"fmt"

	"nexus/internal/serial"
	"nexus/internal/uuid"
)

// proofFormat versions the proof wire encoding (DESIGN.md §15).
const proofFormat = 1

// ProofStep is one branch node on the lookup path: the bit it branches
// on and the hash of the subtree the path did *not* take. The taken
// direction is not encoded — the verifier recomputes it from the lookup
// key's bit, which is exactly what binds the proof to that key.
type ProofStep struct {
	Bit     uint8
	Sibling [HashSize]byte
}

// Proof authenticates the presence or absence of one key against a
// root hash. Steps run root→leaf with strictly increasing bits. The
// terminal leaf is the lookup key's leaf when present; otherwise it is
// the witness leaf occupying the slot the key's bits route to, whose
// verified position proves the key absent. HasLeaf is false only for
// the empty tree.
type Proof struct {
	HasLeaf     bool
	LeafID      uuid.UUID
	LeafVersion uint64
	Steps       []ProofStep
}

// Encode serializes the proof (format byte, leaf, steps).
func (p *Proof) Encode() []byte {
	w := serial.NewWriter(2 + uuid.Size + 8 + 1 + len(p.Steps)*(1+HashSize))
	w.WriteUint8(proofFormat)
	w.WriteBool(p.HasLeaf)
	if p.HasLeaf {
		w.WriteRaw(p.LeafID[:])
		w.WriteUint64(p.LeafVersion)
	}
	w.WriteUint8(uint8(len(p.Steps)))
	for _, s := range p.Steps {
		w.WriteUint8(s.Bit)
		w.WriteRaw(s.Sibling[:])
	}
	return w.Bytes()
}

// DecodeProof parses and validates a proof: exact consumption, bits
// strictly increasing and in range, no steps without a leaf, no
// zero-version leaf (version 0 means deletion and is never stored).
func DecodeProof(data []byte) (*Proof, error) {
	r := serial.NewReader(data)
	if f := r.ReadUint8("merkle proof format"); r.Err() == nil && f != proofFormat {
		return nil, fmt.Errorf("%w: unknown proof format %d", ErrMalformed, f)
	}
	p := &Proof{}
	p.HasLeaf = r.ReadBool("merkle proof leaf flag")
	if p.HasLeaf {
		r.ReadRawInto(p.LeafID[:], "merkle proof leaf id")
		p.LeafVersion = r.ReadUint64("merkle proof leaf version")
	}
	n := int(r.ReadUint8("merkle proof step count"))
	for i := 0; i < n; i++ {
		var s ProofStep
		s.Bit = r.ReadUint8("merkle proof step bit")
		r.ReadRawInto(s.Sibling[:], "merkle proof step sibling")
		p.Steps = append(p.Steps, s)
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if err := p.validateShape(); err != nil {
		return nil, err
	}
	return p, nil
}

// validateShape checks the key-independent geometry rules.
func (p *Proof) validateShape() error {
	if !p.HasLeaf {
		if len(p.Steps) != 0 {
			return fmt.Errorf("%w: empty-tree proof carries %d steps", ErrMalformed, len(p.Steps))
		}
		return nil
	}
	if p.LeafVersion == 0 {
		return fmt.Errorf("%w: leaf version 0 is never stored", ErrMalformed)
	}
	last := -1
	for _, s := range p.Steps {
		if int(s.Bit) >= KeyBits {
			return fmt.Errorf("%w: step bit %d out of range", ErrMalformed, s.Bit)
		}
		if int(s.Bit) <= last {
			return fmt.Errorf("%w: step bits must strictly increase (%d after %d)", ErrMalformed, s.Bit, last)
		}
		last = int(s.Bit)
	}
	return nil
}

// validateFor applies the key-dependent rules: the path must be the
// lookup path of id, so the terminal leaf agrees with id on every
// branch bit (whether it is id's own leaf or an absence witness).
func (p *Proof) validateFor(id uuid.UUID) error {
	if err := p.validateShape(); err != nil {
		return err
	}
	if !p.HasLeaf {
		return nil
	}
	for _, s := range p.Steps {
		if bitOf(p.LeafID, int(s.Bit)) != bitOf(id, int(s.Bit)) {
			return fmt.Errorf("%w: terminal leaf is not on the lookup path of %s", ErrBadProof, id)
		}
	}
	return nil
}

// fold hashes steps[from:to] onto h bottom-up, choosing directions from
// id's bits — the binding that makes the path id's lookup path.
func (p *Proof) fold(h [HashSize]byte, from, to int, id uuid.UUID) [HashSize]byte {
	for i := to - 1; i >= from; i-- {
		s := p.Steps[i]
		if bitOf(id, int(s.Bit)) == 0 {
			h = innerHash(int(s.Bit), h, s.Sibling)
		} else {
			h = innerHash(int(s.Bit), s.Sibling, h)
		}
	}
	return h
}

// Verify checks the proof against root for the lookup key id. On
// success it returns (version, true) when id is in the tree, or
// (0, false) when the proof establishes absence. Any inconsistency —
// wrong root, malformed geometry, a path that is not id's — returns
// ErrBadProof (or ErrMalformed for shape violations).
func (p *Proof) Verify(root [HashSize]byte, id uuid.UUID) (version uint64, present bool, err error) {
	if err := p.validateFor(id); err != nil {
		return 0, false, err
	}
	if !p.HasLeaf {
		if root != EmptyRoot() {
			return 0, false, fmt.Errorf("%w: empty-tree proof against a non-empty root", ErrBadProof)
		}
		return 0, false, nil
	}
	got := p.fold(leafHash(p.LeafID, p.LeafVersion), 0, len(p.Steps), id)
	if got != root {
		return 0, false, fmt.Errorf("%w: recomputed root mismatch for %s", ErrBadProof, id)
	}
	if p.LeafID == id {
		return p.LeafVersion, true, nil
	}
	return 0, false, nil
}

// NewRoot verifies the proof against oldRoot and returns the root the
// tree has after applying {id → version} (version 0 deletes). This is
// how the enclave advances its O(1) root commitment without ever
// holding the tree: each batched update's proof, verified against the
// previous root, determines the next one.
func (p *Proof) NewRoot(oldRoot [HashSize]byte, id uuid.UUID, version uint64) ([HashSize]byte, error) {
	var zero [HashSize]byte
	_, present, err := p.Verify(oldRoot, id)
	if err != nil {
		return zero, err
	}
	switch {
	case version == 0 && !present:
		// Deleting an absent key: nothing changes.
		return oldRoot, nil
	case version == 0:
		// Delete: the leaf's parent collapses onto its sibling.
		if len(p.Steps) == 0 {
			return EmptyRoot(), nil
		}
		return p.fold(p.Steps[len(p.Steps)-1].Sibling, 0, len(p.Steps)-1, id), nil
	case present:
		// Update in place.
		return p.fold(leafHash(id, version), 0, len(p.Steps), id), nil
	case !p.HasLeaf:
		// First leaf of an empty tree.
		return leafHash(id, version), nil
	default:
		// Insert: pair the new leaf with the displaced subtree — the
		// witness leaf plus every step below the diverging bit — under
		// a fresh inner node at that bit.
		crit := critBit(p.LeafID, id)
		idx := len(p.Steps)
		for idx > 0 && int(p.Steps[idx-1].Bit) > crit {
			idx--
		}
		displaced := p.fold(leafHash(p.LeafID, p.LeafVersion), idx, len(p.Steps), id)
		var h [HashSize]byte
		if bitOf(id, crit) == 0 {
			h = innerHash(crit, leafHash(id, version), displaced)
		} else {
			h = innerHash(crit, displaced, leafHash(id, version))
		}
		return p.fold(h, 0, idx, id), nil
	}
}
