// Package merkle implements the authenticated dictionary behind the
// enclave's O(1)-state freshness mode (DESIGN.md §15): a Merkle-hashed
// crit-bit trie mapping object UUIDs to version counters.
//
// The structure is canonical — a given key/version set has exactly one
// trie shape and therefore one root hash, regardless of insertion
// order: each inner node branches on the first bit position where its
// two subtrees' keys diverge, and branch bit indices strictly increase
// from root to leaf. Canonical shape is what makes the root a
// commitment an enclave can hold instead of the table itself, and what
// lets Verify double as an *absence* proof: following the lookup key's
// bits from the root lands on the unique leaf (or empty slot) that key
// could occupy, so a proof ending in a different leaf proves the key is
// not in the tree.
//
// Mutations path-copy: nodes are immutable once linked, every update
// rebuilds only the root-to-leaf spine (expected O(log n) for random
// UUIDs), and Clone is a pointer copy. The untrusted proof server
// (vfs.FreshnessStore) leans on this to keep the previous epoch's
// snapshot at the cost of one spine per updated leaf.
package merkle

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"

	"nexus/internal/uuid"
)

// HashSize is the node hash width (SHA-256).
const HashSize = 32

// KeyBits is the key width: UUIDs, 128 bits.
const KeyBits = 8 * uuid.Size

// MaxLeaves caps decoded trees, bounding allocation from hostile
// encodings while leaving room for the ROADMAP's 10^6-object target.
const MaxLeaves = 1 << 20

// Errors reported by the package. Verification failures and malformed
// encodings both collapse into ErrBadProof at the enclave boundary;
// they are distinct here so tests can tell a rejected proof from bytes
// that never parsed.
var (
	// ErrBadProof reports a proof that does not verify against the
	// given root (wrong siblings, wrong leaf, or inconsistent path).
	ErrBadProof = errors.New("merkle: proof does not verify")
	// ErrMalformed reports bytes that do not decode as a well-formed
	// proof or tree (bad format tag, non-canonical geometry, trailing
	// data, out-of-range bit indices).
	ErrMalformed = errors.New("merkle: malformed encoding")
)

// LeafUpdate is one (key, version) assignment; Version 0 removes the
// key. It is the unit of the enclave's batched root updates.
type LeafUpdate struct {
	ID      uuid.UUID
	Version uint64
}

// Leaf is one key/version pair stored in the tree.
type Leaf struct {
	ID      uuid.UUID
	Version uint64
}

// Domain-separation prefixes: leaf and inner hashes must never collide
// structurally, and the empty tree needs a root distinct from both.
const (
	tagLeaf  = 0x00
	tagInner = 0x01
	tagEmpty = 0x02
)

// node is one trie node. bit < 0 marks a leaf. Nodes are immutable
// once linked into a tree; mutations copy the spine.
type node struct {
	bit         int // branch bit index, -1 for leaves
	left, right *node
	id          uuid.UUID
	version     uint64
	hash        [HashSize]byte
}

func leafHash(id uuid.UUID, version uint64) [HashSize]byte {
	var buf [1 + uuid.Size + 8]byte
	buf[0] = tagLeaf
	copy(buf[1:], id[:])
	binary.BigEndian.PutUint64(buf[1+uuid.Size:], version)
	return sha256.Sum256(buf[:])
}

func innerHash(bit int, left, right [HashSize]byte) [HashSize]byte {
	var buf [2 + 2*HashSize]byte
	buf[0] = tagInner
	buf[1] = byte(bit)
	copy(buf[2:], left[:])
	copy(buf[2+HashSize:], right[:])
	return sha256.Sum256(buf[:])
}

// EmptyRoot is the root hash of a tree with no leaves.
func EmptyRoot() [HashSize]byte {
	return sha256.Sum256([]byte{tagEmpty})
}

func newLeaf(id uuid.UUID, version uint64) *node {
	return &node{bit: -1, id: id, version: version, hash: leafHash(id, version)}
}

func newInner(bit int, left, right *node) *node {
	return &node{bit: bit, left: left, right: right, hash: innerHash(bit, left.hash, right.hash)}
}

// bitOf extracts key bit i (0 = most significant bit of byte 0).
func bitOf(id uuid.UUID, i int) int {
	return int(id[i>>3]>>(7-i&7)) & 1
}

// critBit returns the first bit position where a and b differ, or -1
// when they are equal.
func critBit(a, b uuid.UUID) int {
	for i := 0; i < uuid.Size; i++ {
		if x := a[i] ^ b[i]; x != 0 {
			n := 0
			for x&0x80 == 0 {
				x <<= 1
				n++
			}
			return i*8 + n
		}
	}
	return -1
}

// Tree is the authenticated dictionary. The zero value is not usable;
// call New.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Len returns the number of leaves.
func (t *Tree) Len() int { return t.size }

// Root returns the current root hash (EmptyRoot for an empty tree).
func (t *Tree) Root() [HashSize]byte {
	if t.root == nil {
		return EmptyRoot()
	}
	return t.root.hash
}

// Clone returns a snapshot sharing all structure with t. Either tree
// can keep mutating; spines copy on write.
func (t *Tree) Clone() *Tree { return &Tree{root: t.root, size: t.size} }

// Lookup returns the version stored for id.
func (t *Tree) Lookup(id uuid.UUID) (uint64, bool) {
	n := t.root
	if n == nil {
		return 0, false
	}
	for n.bit >= 0 {
		if bitOf(id, n.bit) == 0 {
			n = n.left
		} else {
			n = n.right
		}
	}
	if n.id == id {
		return n.version, true
	}
	return 0, false
}

// Set assigns version to id; version 0 removes id (removing an absent
// key is a no-op, mirroring the freshness table's delete semantics).
func (t *Tree) Set(id uuid.UUID, version uint64) {
	if version == 0 {
		var removed bool
		t.root, removed = removeNode(t.root, id)
		if removed {
			t.size--
		}
		return
	}
	if t.root == nil {
		t.root = newLeaf(id, version)
		t.size = 1
		return
	}
	// Find the terminal leaf id's bits route to; it decides between an
	// in-place update and an insert at the diverging bit.
	w := t.root
	for w.bit >= 0 {
		if bitOf(id, w.bit) == 0 {
			w = w.left
		} else {
			w = w.right
		}
	}
	if w.id == id {
		t.root = updateNode(t.root, id, version)
		return
	}
	t.root = insertNode(t.root, id, version, critBit(w.id, id))
	t.size++
}

// updateNode rewrites the spine to a leaf that already exists.
func updateNode(n *node, id uuid.UUID, version uint64) *node {
	if n.bit < 0 {
		return newLeaf(id, version)
	}
	if bitOf(id, n.bit) == 0 {
		return newInner(n.bit, updateNode(n.left, id, version), n.right)
	}
	return newInner(n.bit, n.left, updateNode(n.right, id, version))
}

// insertNode splices a new leaf in at the crit bit: descend while the
// branch bit is above (smaller than) crit, then pair the new leaf with
// the displaced subtree under a fresh inner node.
func insertNode(n *node, id uuid.UUID, version uint64, crit int) *node {
	if n.bit < 0 || n.bit > crit {
		lf := newLeaf(id, version)
		if bitOf(id, crit) == 0 {
			return newInner(crit, lf, n)
		}
		return newInner(crit, n, lf)
	}
	if bitOf(id, n.bit) == 0 {
		return newInner(n.bit, insertNode(n.left, id, version, crit), n.right)
	}
	return newInner(n.bit, n.left, insertNode(n.right, id, version, crit))
}

// removeNode deletes id's leaf, collapsing its parent onto the sibling
// subtree (the trie stays canonical: no single-child inner nodes).
func removeNode(n *node, id uuid.UUID) (*node, bool) {
	if n == nil {
		return nil, false
	}
	if n.bit < 0 {
		if n.id == id {
			return nil, true
		}
		return n, false
	}
	if bitOf(id, n.bit) == 0 {
		child, ok := removeNode(n.left, id)
		if !ok {
			return n, false
		}
		if child == nil {
			return n.right, true
		}
		return newInner(n.bit, child, n.right), true
	}
	child, ok := removeNode(n.right, id)
	if !ok {
		return n, false
	}
	if child == nil {
		return n.left, true
	}
	return newInner(n.bit, n.left, child), true
}

// Prove returns the membership (or absence) proof for id against the
// current tree: the lookup path's branch bits and sibling hashes plus
// the terminal leaf. For an empty tree the proof has no leaf.
func (t *Tree) Prove(id uuid.UUID) *Proof {
	p := &Proof{}
	n := t.root
	if n == nil {
		return p
	}
	for n.bit >= 0 {
		if bitOf(id, n.bit) == 0 {
			p.Steps = append(p.Steps, ProofStep{Bit: uint8(n.bit), Sibling: n.right.hash})
			n = n.left
		} else {
			p.Steps = append(p.Steps, ProofStep{Bit: uint8(n.bit), Sibling: n.left.hash})
			n = n.right
		}
	}
	p.HasLeaf = true
	p.LeafID = n.id
	p.LeafVersion = n.version
	return p
}

// Leaves returns every leaf in canonical (key bit) order.
func (t *Tree) Leaves() []Leaf {
	out := make([]Leaf, 0, t.size)
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.bit < 0 {
			out = append(out, Leaf{ID: n.id, Version: n.version})
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	return out
}
