// Package kvstore is an embedded log-structured key-value store in the
// style of LevelDB, used by the Table II database benchmarks.
//
// The paper runs LevelDB's db_bench over NEXUS and over plain OpenAFS
// (§VII-B); what the filesystem under test experiences is LevelDB's I/O
// shape: an append-only write-ahead log (synced per operation in *sync
// modes), immutable sorted table files flushed when the write buffer
// fills, and bulk sequential reads during iteration. This store
// reproduces that shape faithfully on top of fsapi.FileSystem:
//
//   - writes go to a memtable and a WAL file; Sync-mode writes fsync the
//     WAL (an encrypted re-upload under NEXUS);
//   - when the memtable exceeds the write buffer it is flushed to a new
//     sorted table file;
//   - reads consult the memtable, then newest-to-oldest tables;
//   - iterators merge everything into key order (forward or reverse);
//   - a rudimentary full compaction bounds the table count.
package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"

	"nexus/internal/fsapi"
	"nexus/internal/serial"
)

// Errors.
var (
	// ErrNotFound reports a missing key.
	ErrNotFound = errors.New("kvstore: key not found")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("kvstore: database closed")
	// ErrCorrupt reports an unreadable table or log file.
	ErrCorrupt = errors.New("kvstore: corrupt database file")
)

// Options tunes the store.
type Options struct {
	// WriteBufferSize is the memtable flush threshold (default 4 MiB,
	// matching the paper's "4 MB of cache memory").
	WriteBufferSize int
	// MaxTables triggers a full compaction when exceeded (default 8).
	MaxTables int
}

func (o Options) withDefaults() Options {
	if o.WriteBufferSize <= 0 {
		o.WriteBufferSize = 4 << 20
	}
	if o.MaxTables <= 0 {
		o.MaxTables = 8
	}
	return o
}

// DB is an open database.
type DB struct {
	fs   fsapi.FileSystem
	dir  string
	opts Options

	mem      map[string][]byte // nil value slice = tombstone
	memBytes int
	wal      fsapi.File
	walSeq   int

	tables []*table // oldest first

	closed bool
}

// tombstone marks deletions in memtable and tables.
var tombstone = []byte(nil)

// table is one immutable sorted file, loaded lazily.
type table struct {
	name string
	// loaded data: parallel sorted slices.
	keys   []string
	values [][]byte
	loaded bool
}

// Open creates or reopens a database in dir on fs, replaying any WAL
// left by a previous instance.
func Open(fs fsapi.FileSystem, dir string, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("kvstore: creating db dir: %w", err)
	}
	db := &DB{
		fs:   fs,
		dir:  dir,
		opts: opts,
		mem:  make(map[string][]byte),
	}

	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("kvstore: listing db dir: %w", err)
	}
	var walNames []string
	for _, e := range entries {
		switch {
		case strings.HasPrefix(e.Name, "sst-"):
			db.tables = append(db.tables, &table{name: path.Join(dir, e.Name)})
		case strings.HasPrefix(e.Name, "wal-"):
			walNames = append(walNames, e.Name)
		}
	}
	sort.Slice(db.tables, func(i, j int) bool { return db.tables[i].name < db.tables[j].name })
	sort.Strings(walNames)

	// Replay and retire leftover logs.
	for _, name := range walNames {
		full := path.Join(dir, name)
		if err := db.replayWAL(full); err != nil {
			return nil, err
		}
		var seq int
		fmt.Sscanf(name, "wal-%08d", &seq)
		if seq >= db.walSeq {
			db.walSeq = seq + 1
		}
	}
	if len(db.mem) > 0 {
		if err := db.flushMemtable(); err != nil {
			return nil, err
		}
	}
	for _, name := range walNames {
		if err := fs.Remove(path.Join(dir, name)); err != nil {
			return nil, fmt.Errorf("kvstore: removing replayed wal: %w", err)
		}
	}
	if err := db.openWAL(); err != nil {
		return nil, err
	}
	return db, nil
}

func (db *DB) walName() string {
	return path.Join(db.dir, fmt.Sprintf("wal-%08d", db.walSeq))
}

func (db *DB) openWAL() error {
	wal, err := db.fs.Open(db.walName(), fsapi.O_RDWR|fsapi.O_CREATE|fsapi.O_TRUNC)
	if err != nil {
		return fmt.Errorf("kvstore: opening wal: %w", err)
	}
	db.wal = wal
	return nil
}

// walRecord is: op(1) keyLen(4) key valLen(4) val.
func appendWALRecord(buf []byte, key string, value []byte, del bool) []byte {
	op := byte(1)
	if del {
		op = 2
	}
	buf = append(buf, op)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(value)))
	buf = append(buf, value...)
	return buf
}

func (db *DB) replayWAL(name string) error {
	data, err := db.fs.ReadFile(name)
	if err != nil {
		return fmt.Errorf("kvstore: reading wal: %w", err)
	}
	off := 0
	for off < len(data) {
		if off+9 > len(data) {
			break // torn tail record: discard, standard WAL behaviour
		}
		op := data[off]
		keyLen := int(binary.LittleEndian.Uint32(data[off+1 : off+5]))
		if off+5+keyLen+4 > len(data) {
			break
		}
		key := string(data[off+5 : off+5+keyLen])
		valOff := off + 5 + keyLen
		valLen := int(binary.LittleEndian.Uint32(data[valOff : valOff+4]))
		if valOff+4+valLen > len(data) {
			break
		}
		value := data[valOff+4 : valOff+4+valLen]
		switch op {
		case 1:
			db.putMem(key, append([]byte(nil), value...))
		case 2:
			db.putMem(key, tombstone)
		default:
			return fmt.Errorf("%w: wal op %d", ErrCorrupt, op)
		}
		off = valOff + 4 + valLen
	}
	return nil
}

func (db *DB) putMem(key string, value []byte) {
	if old, ok := db.mem[key]; ok {
		db.memBytes -= len(key) + len(old)
	}
	db.mem[key] = value
	db.memBytes += len(key) + len(value)
}

// WriteOptions controls durability of one write.
type WriteOptions struct {
	// Sync flushes the WAL through the filesystem before returning —
	// under NEXUS this re-encrypts and uploads the log file, which is
	// why the paper's *sync database workloads show ×2 (§VII-B).
	Sync bool
}

// Put stores a key/value pair.
func (db *DB) Put(key string, value []byte, opts WriteOptions) error {
	if db.closed {
		return ErrClosed
	}
	if key == "" {
		return fmt.Errorf("kvstore: empty key")
	}
	rec := appendWALRecord(nil, key, value, false)
	if _, err := db.wal.Write(rec); err != nil {
		return fmt.Errorf("kvstore: appending wal: %w", err)
	}
	if opts.Sync {
		if err := db.wal.Sync(); err != nil {
			return fmt.Errorf("kvstore: syncing wal: %w", err)
		}
	}
	db.putMem(key, append([]byte(nil), value...))
	if db.memBytes >= db.opts.WriteBufferSize {
		return db.rotate()
	}
	return nil
}

// Delete removes a key (writing a tombstone).
func (db *DB) Delete(key string, opts WriteOptions) error {
	if db.closed {
		return ErrClosed
	}
	rec := appendWALRecord(nil, key, nil, true)
	if _, err := db.wal.Write(rec); err != nil {
		return fmt.Errorf("kvstore: appending wal: %w", err)
	}
	if opts.Sync {
		if err := db.wal.Sync(); err != nil {
			return err
		}
	}
	db.putMem(key, tombstone)
	if db.memBytes >= db.opts.WriteBufferSize {
		return db.rotate()
	}
	return nil
}

// Get returns the value for key.
func (db *DB) Get(key string) ([]byte, error) {
	if db.closed {
		return nil, ErrClosed
	}
	if value, ok := db.mem[key]; ok {
		if value == nil {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
		}
		return append([]byte(nil), value...), nil
	}
	// Newest table first.
	for i := len(db.tables) - 1; i >= 0; i-- {
		t := db.tables[i]
		if err := db.loadTable(t); err != nil {
			return nil, err
		}
		j := sort.SearchStrings(t.keys, key)
		if j < len(t.keys) && t.keys[j] == key {
			if t.values[j] == nil {
				return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
			}
			return append([]byte(nil), t.values[j]...), nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
}

// rotate flushes the memtable to a new sorted table and starts a fresh
// WAL.
func (db *DB) rotate() error {
	if err := db.wal.Close(); err != nil {
		return err
	}
	oldWAL := db.walName()
	if err := db.flushMemtable(); err != nil {
		return err
	}
	if err := db.fs.Remove(oldWAL); err != nil {
		return fmt.Errorf("kvstore: removing wal: %w", err)
	}
	db.walSeq++
	if err := db.openWAL(); err != nil {
		return err
	}
	if len(db.tables) > db.opts.MaxTables {
		return db.compact()
	}
	return nil
}

// flushMemtable writes the memtable as a sorted table file.
func (db *DB) flushMemtable() error {
	if len(db.mem) == 0 {
		return nil
	}
	keys := make([]string, 0, len(db.mem))
	for k := range db.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	w := serial.NewWriter(db.memBytes + 16*len(keys))
	w.WriteUint32(uint32(len(keys)))
	for _, k := range keys {
		v := db.mem[k]
		w.WriteString(k)
		w.WriteBool(v == nil)
		w.WriteBytes(v)
	}
	name := path.Join(db.dir, fmt.Sprintf("sst-%08d", len(db.tables)))
	if err := db.fs.WriteFile(name, w.Bytes()); err != nil {
		return fmt.Errorf("kvstore: writing table: %w", err)
	}
	values := make([][]byte, len(keys))
	for i, k := range keys {
		values[i] = db.mem[k]
	}
	db.tables = append(db.tables, &table{name: name, keys: keys, values: values, loaded: true})
	db.mem = make(map[string][]byte)
	db.memBytes = 0
	return nil
}

func (db *DB) loadTable(t *table) error {
	if t.loaded {
		return nil
	}
	data, err := db.fs.ReadFile(t.name)
	if err != nil {
		return fmt.Errorf("kvstore: reading table %s: %w", t.name, err)
	}
	r := serial.NewReader(data)
	n := r.ReadCount(0, "table entries")
	t.keys = make([]string, 0, n)
	t.values = make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		k := r.ReadString(0, "table key")
		dead := r.ReadBool("tombstone flag")
		v := r.ReadBytes(0, "table value")
		t.keys = append(t.keys, k)
		if dead {
			t.values = append(t.values, nil)
		} else {
			t.values = append(t.values, v)
		}
	}
	if err := r.Finish(); err != nil {
		return fmt.Errorf("%w: table %s: %v", ErrCorrupt, t.name, err)
	}
	t.loaded = true
	return nil
}

// compact merges all tables into one, dropping shadowed versions and
// tombstones.
func (db *DB) compact() error {
	merged := make(map[string][]byte)
	for _, t := range db.tables { // oldest first: later wins
		if err := db.loadTable(t); err != nil {
			return err
		}
		for i, k := range t.keys {
			merged[k] = t.values[i]
		}
	}
	keys := make([]string, 0, len(merged))
	for k, v := range merged {
		if v != nil {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	w := serial.NewWriter(1 << 20)
	w.WriteUint32(uint32(len(keys)))
	values := make([][]byte, len(keys))
	for i, k := range keys {
		values[i] = merged[k]
		w.WriteString(k)
		w.WriteBool(false)
		w.WriteBytes(merged[k])
	}
	name := path.Join(db.dir, "sst-00000000")
	for _, t := range db.tables {
		if t.name != name {
			if err := db.fs.Remove(t.name); err != nil {
				return fmt.Errorf("kvstore: removing compacted table: %w", err)
			}
		}
	}
	if err := db.fs.WriteFile(name, w.Bytes()); err != nil {
		return fmt.Errorf("kvstore: writing compacted table: %w", err)
	}
	db.tables = []*table{{name: name, keys: keys, values: values, loaded: true}}
	return nil
}

// Iterator walks all live keys in order.
type Iterator struct {
	keys   []string
	values [][]byte
	pos    int
}

// NewIterator merges the memtable and all tables into a point-in-time
// ordered view. reverse iterates descending.
func (db *DB) NewIterator(reverse bool) (*Iterator, error) {
	if db.closed {
		return nil, ErrClosed
	}
	merged := make(map[string][]byte, len(db.mem))
	for _, t := range db.tables {
		if err := db.loadTable(t); err != nil {
			return nil, err
		}
		for i, k := range t.keys {
			merged[k] = t.values[i]
		}
	}
	for k, v := range db.mem {
		merged[k] = v
	}
	keys := make([]string, 0, len(merged))
	for k, v := range merged {
		if v != nil {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if reverse {
		for i, j := 0, len(keys)-1; i < j; i, j = i+1, j-1 {
			keys[i], keys[j] = keys[j], keys[i]
		}
	}
	values := make([][]byte, len(keys))
	for i, k := range keys {
		values[i] = merged[k]
	}
	return &Iterator{keys: keys, values: values}, nil
}

// Next advances and reports whether a pair is available.
func (it *Iterator) Next() bool {
	if it.pos >= len(it.keys) {
		return false
	}
	it.pos++
	return it.pos <= len(it.keys)
}

// Key returns the current key.
func (it *Iterator) Key() string { return it.keys[it.pos-1] }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.values[it.pos-1] }

// Len returns the total number of live pairs in the view.
func (it *Iterator) Len() int { return len(it.keys) }

// Flush forces the memtable to a table file (used by benchmarks to
// settle state between phases).
func (db *DB) Flush() error {
	if db.closed {
		return ErrClosed
	}
	if len(db.mem) == 0 {
		return nil
	}
	return db.rotate()
}

// Close flushes and closes the database.
func (db *DB) Close() error {
	if db.closed {
		return nil
	}
	db.closed = true
	if err := db.wal.Sync(); err != nil {
		return err
	}
	return db.wal.Close()
}
