package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"nexus/internal/backend"
	"nexus/internal/fsapi"
	"nexus/internal/plainfs"
)

func newDB(t *testing.T, opts Options) (*DB, fsapi.FileSystem) {
	t.Helper()
	fs := plainfs.New(backend.NewMemStore())
	db, err := Open(fs, "/db", opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { _ = db.Close() })
	return db, fs
}

func TestPutGetDelete(t *testing.T) {
	db, _ := newDB(t, Options{})
	if err := db.Put("alpha", []byte("1"), WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get("alpha")
	if err != nil || string(got) != "1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// Overwrite.
	if err := db.Put("alpha", []byte("2"), WriteOptions{Sync: true}); err != nil {
		t.Fatal(err)
	}
	got, err = db.Get("alpha")
	if err != nil || string(got) != "2" {
		t.Fatalf("Get after overwrite = %q, %v", got, err)
	}
	// Delete.
	if err := db.Delete("alpha", WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get("alpha"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v", err)
	}
	if _, err := db.Get("never"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v", err)
	}
	if err := db.Put("", nil, WriteOptions{}); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestMemtableFlushAndTableReads(t *testing.T) {
	// Small write buffer forces flushes.
	db, _ := newDB(t, Options{WriteBufferSize: 1 << 10})
	const n = 200
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%06d", i)
		if err := db.Put(key, []byte(fmt.Sprintf("value%d", i)), WriteOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if len(db.tables) == 0 {
		t.Fatal("no table files flushed despite tiny write buffer")
	}
	// Every key readable (some from tables, some from memtable).
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%06d", i)
		got, err := db.Get(key)
		if err != nil || string(got) != fmt.Sprintf("value%d", i) {
			t.Fatalf("Get(%s) = %q, %v", key, got, err)
		}
	}
}

func TestShadowingAcrossTables(t *testing.T) {
	db, _ := newDB(t, Options{WriteBufferSize: 1 << 10})
	if err := db.Put("k", []byte("old"), WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put("k", []byte("new"), WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get("k")
	if err != nil || string(got) != "new" {
		t.Fatalf("Get = %q, %v (newest table must win)", got, err)
	}
	// Tombstone in a newer table shadows older data.
	if err := db.Delete("k", WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after flushed delete = %v", err)
	}
}

func TestIteratorOrderAndReverse(t *testing.T) {
	db, _ := newDB(t, Options{WriteBufferSize: 1 << 10})
	keys := []string{"delta", "alpha", "charlie", "bravo"}
	for _, k := range keys {
		if err := db.Put(k, []byte(k), WriteOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	it, err := db.NewIterator(false)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for it.Next() {
		got = append(got, it.Key())
		if string(it.Value()) != it.Key() {
			t.Fatalf("value mismatch at %s", it.Key())
		}
	}
	want := []string{"alpha", "bravo", "charlie", "delta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("forward order = %v", got)
		}
	}

	rit, err := db.NewIterator(true)
	if err != nil {
		t.Fatal(err)
	}
	got = nil
	for rit.Next() {
		got = append(got, rit.Key())
	}
	for i := range want {
		if got[i] != want[len(want)-1-i] {
			t.Fatalf("reverse order = %v", got)
		}
	}
}

func TestCrashRecoveryViaWAL(t *testing.T) {
	fs := plainfs.New(backend.NewMemStore())
	db, err := Open(fs, "/db", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := db.Put(fmt.Sprintf("k%02d", i), []byte("v"), WriteOptions{Sync: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete("k05", WriteOptions{Sync: true}); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: no Close, reopen over the same filesystem.
	db2, err := Open(fs, "/db", Options{})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer db2.Close()
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("k%02d", i)
		got, err := db2.Get(key)
		if i == 5 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted key resurrected: %q, %v", got, err)
			}
			continue
		}
		if err != nil || string(got) != "v" {
			t.Fatalf("Get(%s) after recovery = %q, %v", key, got, err)
		}
	}
}

func TestCompactionBoundsTables(t *testing.T) {
	db, _ := newDB(t, Options{WriteBufferSize: 256, MaxTables: 3})
	for i := 0; i < 400; i++ {
		if err := db.Put(fmt.Sprintf("key%04d", i), bytes.Repeat([]byte{byte(i)}, 32), WriteOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if len(db.tables) > 4 {
		t.Fatalf("tables = %d after compaction threshold 3", len(db.tables))
	}
	// Data intact post-compaction.
	for _, i := range []int{0, 100, 399} {
		if _, err := db.Get(fmt.Sprintf("key%04d", i)); err != nil {
			t.Fatalf("Get after compaction: %v", err)
		}
	}
}

func TestRandomizedAgainstReference(t *testing.T) {
	db, _ := newDB(t, Options{WriteBufferSize: 2 << 10, MaxTables: 3})
	ref := make(map[string]string)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("k%03d", rng.Intn(300))
		switch rng.Intn(3) {
		case 0, 1:
			val := fmt.Sprintf("v%d", i)
			if err := db.Put(key, []byte(val), WriteOptions{}); err != nil {
				t.Fatal(err)
			}
			ref[key] = val
		case 2:
			if err := db.Delete(key, WriteOptions{}); err != nil {
				t.Fatal(err)
			}
			delete(ref, key)
		}
	}
	for key, want := range ref {
		got, err := db.Get(key)
		if err != nil || string(got) != want {
			t.Fatalf("Get(%s) = %q, %v; want %q", key, got, err, want)
		}
	}
	it, err := db.NewIterator(false)
	if err != nil {
		t.Fatal(err)
	}
	if it.Len() != len(ref) {
		t.Fatalf("iterator sees %d keys, reference has %d", it.Len(), len(ref))
	}
}

func TestClosedDB(t *testing.T) {
	db, _ := newDB(t, Options{})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put("k", nil, WriteOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close = %v", err)
	}
	if _, err := db.Get("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close = %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}
