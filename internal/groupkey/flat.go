package groupkey

import (
	"bytes"
	"crypto/rand"
	"fmt"
)

// Group is the membership-keying contract shared by the subgroup key
// tree and the flat-list baseline, letting the benchmark sweep and the
// property-test oracle swap implementations behind one knob.
type Group interface {
	Add(userID uint32) ([]byte, error)
	Revoke(userID uint32) error
	Contains(userID uint32) bool
	Len() int
	Epoch() uint64
	RootSecret() []byte
	MemberRoot(userID uint32) ([]byte, error)
	Authenticate(userID uint32) error
	Stats() Stats
	ResetStats()
}

var (
	_ Group = (*Tree)(nil)
	_ Group = (*Flat)(nil)
)

// Flat is the pre-tree baseline: one group key wrapped individually for
// every member. It keeps the tree's epoch semantics — every membership
// change rotates the group key, so a revoked member's captures go
// stale — but pays O(n) wraps per change, which is exactly the curve
// the membership sweep contrasts against.
type Flat struct {
	epoch   uint64
	members map[uint32]*member // wrap = group key wrapped under secret
	groupK  []byte
	stats   Stats
}

// NewFlat creates an empty flat-list group.
func NewFlat() *Flat {
	return &Flat{members: make(map[uint32]*member)}
}

// Len returns the number of members.
func (f *Flat) Len() int { return len(f.members) }

// Epoch returns the rotation epoch.
func (f *Flat) Epoch() uint64 { return f.epoch }

// Contains reports membership.
func (f *Flat) Contains(userID uint32) bool {
	_, ok := f.members[userID]
	return ok
}

// Stats returns the cumulative meters.
func (f *Flat) Stats() Stats { return f.stats }

// ResetStats zeroes the meters.
func (f *Flat) ResetStats() { f.stats = Stats{} }

// RootSecret returns the current group key.
func (f *Flat) RootSecret() []byte {
	return bytes.Clone(f.groupK)
}

// Add enrolls a user: fresh member secret, then a full rotation so the
// newcomer cannot read pre-join ciphertexts.
func (f *Flat) Add(userID uint32) ([]byte, error) {
	if f.Contains(userID) {
		return nil, fmt.Errorf("%w: user %d", ErrMemberExists, userID)
	}
	secret := make([]byte, KeySize)
	if _, err := rand.Read(secret); err != nil {
		return nil, fmt.Errorf("groupkey: generating member secret: %w", err)
	}
	f.members[userID] = &member{id: userID, secret: secret}
	if err := f.rotate(); err != nil {
		return nil, err
	}
	f.epoch++
	return bytes.Clone(secret), nil
}

// Revoke evicts a user and rotates the group key, re-wrapping it for
// every remaining member — the O(n) cost the tree amortizes away.
func (f *Flat) Revoke(userID uint32) error {
	if !f.Contains(userID) {
		return fmt.Errorf("%w: user %d", ErrUnknownMember, userID)
	}
	delete(f.members, userID)
	if err := f.rotate(); err != nil {
		return err
	}
	f.epoch++
	return nil
}

// MemberRoot recovers the group key from the member's wrap — one
// unwrap, the flat list's only advantage.
func (f *Flat) MemberRoot(userID uint32) ([]byte, error) {
	m, ok := f.members[userID]
	if !ok {
		return nil, fmt.Errorf("%w: user %d", ErrUnknownMember, userID)
	}
	root, err := unwrapWith(m.secret, m.wrap, wrapAAD(0, 0, m.id))
	if err != nil {
		return nil, err
	}
	f.stats.Unwraps++
	return root, nil
}

// Authenticate verifies the member's wrap opens to the current key.
func (f *Flat) Authenticate(userID uint32) error {
	root, err := f.MemberRoot(userID)
	if err != nil {
		return err
	}
	if !bytes.Equal(root, f.groupK) {
		return fmt.Errorf("%w: stale wrap for user %d", ErrUnwrap, userID)
	}
	return nil
}

// NewFlatWithMembers bulk-builds a flat group (one rotation total), the
// counterpart of NewTreeWithMembers for the benchmark sweep.
func NewFlatWithMembers(userIDs []uint32) (*Flat, error) {
	f := NewFlat()
	pool := make([]byte, len(userIDs)*KeySize)
	if _, err := rand.Read(pool); err != nil {
		return nil, fmt.Errorf("groupkey: generating bulk key material: %w", err)
	}
	for i, id := range userIDs {
		if f.Contains(id) {
			return nil, fmt.Errorf("%w: user %d", ErrMemberExists, id)
		}
		f.members[id] = &member{id: id, secret: pool[i*KeySize : (i+1)*KeySize : (i+1)*KeySize]}
	}
	if err := f.rotate(); err != nil {
		return nil, err
	}
	f.epoch = 1
	return f, nil
}

// rotate draws a fresh group key and re-wraps it for every member.
func (f *Flat) rotate() error {
	groupK := make([]byte, KeySize)
	if _, err := rand.Read(groupK); err != nil {
		return fmt.Errorf("groupkey: rotating group key: %w", err)
	}
	f.groupK = groupK
	for _, m := range f.members {
		w, err := wrapWith(m.secret, groupK, wrapAAD(0, 0, m.id))
		if err != nil {
			return err
		}
		m.wrap = w
		f.stats.Wraps++
		f.stats.WrapBytes += int64(len(w))
	}
	return nil
}
