package groupkey

import (
	"bytes"
	"testing"
)

// FuzzGroupTreeDecode hammers the tree's serial decoder with hostile
// bytes: it must never panic, and whenever it accepts an input the
// decoded tree must re-encode to the identical bytes (canonical form)
// and remain structurally usable. The seed corpus covers an empty tree,
// a populated multi-level tree, and a post-churn tree.
func FuzzGroupTreeDecode(f *testing.F) {
	f.Add([]byte{})
	empty := NewTree(Config{LeafCap: 2, Fanout: 2})
	f.Add(empty.Encode())
	tr := NewTree(Config{LeafCap: 2, Fanout: 2})
	for id := uint32(1); id <= 9; id++ {
		if _, err := tr.Add(id); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(tr.Encode())
	if err := tr.Revoke(4); err != nil {
		f.Fatal(err)
	}
	if _, err := tr.Add(40); err != nil {
		f.Fatal(err)
	}
	f.Add(tr.Encode())
	// Truncations and bit-flips of a valid encoding seed the mutator
	// near the interesting boundaries.
	enc := tr.Encode()
	f.Add(enc[:len(enc)/3])
	flipped := bytes.Clone(enc)
	flipped[len(flipped)/2] ^= 0xFF
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeTree(data)
		if err != nil {
			return
		}
		re := got.Encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted input is not canonical: %d in, %d out", len(data), len(re))
		}
		// Decoded state must be safe to operate on.
		for _, ms := range got.leaves {
			for _, m := range ms {
				_, _ = got.MemberRoot(m.id)
			}
		}
		if got.Len() > 0 {
			_ = got.RootSecret()
		}
		round, err := DecodeTree(re)
		if err != nil {
			t.Fatalf("re-decode of canonical bytes failed: %v", err)
		}
		if round.Len() != got.Len() || round.Epoch() != got.Epoch() {
			t.Fatal("re-decode changed tree shape")
		}
	})
}
