package groupkey

import (
	"bytes"
	"os"
	"slices"
	"strconv"
	"testing"

	"nexus/internal/acl"
	"nexus/internal/netsim"
)

// propertySeed returns the operation-sequence seed, overridable via
// NEXUS_GROUPKEY_SEED so a failure replays exactly, mirroring the chaos
// suite's NEXUS_CHAOS_SEED convention.
func propertySeed(t *testing.T) int64 {
	t.Helper()
	env := os.Getenv("NEXUS_GROUPKEY_SEED")
	if env == "" {
		return 1
	}
	seed, err := strconv.ParseInt(env, 10, 64)
	if err != nil {
		t.Fatalf("NEXUS_GROUPKEY_SEED=%q: %v", env, err)
	}
	return seed
}

// oracle is the trivially correct model: a membership set plus an
// epoch counter and, per member, the leaf it was assigned at add time
// (leaf assignments must be stable until revocation).
type oracle struct {
	members map[uint32]uint32 // id → leaf at add time
	epoch   uint64
}

// TestPropertyTreeVsOracle drives a random add/revoke/re-add sequence
// simultaneously against the subgroup tree, the flat-list baseline, and
// the model oracle, asserting after every step that membership,
// unwrap-ability, epoch advancement, and ACL group-rights resolution
// agree. Replay a failure with NEXUS_GROUPKEY_SEED=<seed>.
func TestPropertyTreeVsOracle(t *testing.T) {
	seed := propertySeed(t)
	rng := netsim.NewRand(seed)
	t.Logf("groupkey property seed %d (replay: NEXUS_GROUPKEY_SEED=%d)", seed, seed)

	tr := NewTree(Config{LeafCap: 3, Fanout: 2})
	fl := NewFlat()
	or := &oracle{members: make(map[uint32]uint32)}

	const (
		steps   = 400
		idSpace = 60 // small space forces add/revoke/re-add collisions
	)
	for step := 0; step < steps; step++ {
		id := uint32(1 + rng.Intn(idSpace))
		if rng.Intn(100) < 55 || len(or.members) == 0 {
			// Add (may collide with an existing member).
			_, treeErr := tr.Add(id)
			_, flatErr := fl.Add(id)
			_, exists := or.members[id]
			if exists {
				if treeErr == nil || flatErr == nil {
					t.Fatalf("step %d: duplicate add of %d accepted (tree=%v flat=%v)", step, id, treeErr, flatErr)
				}
			} else {
				if treeErr != nil || flatErr != nil {
					t.Fatalf("step %d: add of %d failed (tree=%v flat=%v)", step, id, treeErr, flatErr)
				}
				leaf, ok := tr.LeafOf(id)
				if !ok {
					t.Fatalf("step %d: added %d has no leaf", step, id)
				}
				or.members[id] = leaf
				or.epoch++
			}
		} else {
			// Revoke a random id (may or may not be a member).
			treeErr := tr.Revoke(id)
			flatErr := fl.Revoke(id)
			if _, exists := or.members[id]; exists {
				if treeErr != nil || flatErr != nil {
					t.Fatalf("step %d: revoke of %d failed (tree=%v flat=%v)", step, id, treeErr, flatErr)
				}
				delete(or.members, id)
				or.epoch++
			} else if treeErr == nil || flatErr == nil {
				t.Fatalf("step %d: revoke of non-member %d accepted (tree=%v flat=%v)", step, id, treeErr, flatErr)
			}
		}
		checkAgainstOracle(t, step, tr, fl, or, rng)
	}
}

func checkAgainstOracle(t *testing.T, step int, tr *Tree, fl *Flat, or *oracle, rng *netsim.Rand) {
	t.Helper()
	if tr.Len() != len(or.members) || fl.Len() != len(or.members) {
		t.Fatalf("step %d: len tree=%d flat=%d oracle=%d", step, tr.Len(), fl.Len(), len(or.members))
	}
	if tr.Epoch() != or.epoch || fl.Epoch() != or.epoch {
		t.Fatalf("step %d: epoch tree=%d flat=%d oracle=%d", step, tr.Epoch(), fl.Epoch(), or.epoch)
	}
	treeRoot, flatRoot := tr.RootSecret(), fl.RootSecret()
	for id, leafAtAdd := range or.members {
		if !tr.Contains(id) || !fl.Contains(id) {
			t.Fatalf("step %d: oracle member %d missing (tree=%v flat=%v)", step, id, tr.Contains(id), fl.Contains(id))
		}
		// Leaf stability: the assignment made at add time holds.
		if leaf, _ := tr.LeafOf(id); leaf != leafAtAdd {
			t.Fatalf("step %d: member %d moved leaf %d → %d", step, id, leafAtAdd, leaf)
		}
	}
	// Spot-check unwrap-ability (all members every 25th step, one random
	// member otherwise — full sweeps at every step are O(steps·n·log n)).
	var probe []uint32
	for id := range or.members {
		probe = append(probe, id)
	}
	slices.Sort(probe) // map order is random; sorting keeps seed replay exact
	if step%25 != 0 && len(probe) > 1 {
		i := rng.Intn(len(probe))
		probe = probe[i : i+1]
	}
	for _, id := range probe {
		got, err := tr.MemberRoot(id)
		if err != nil {
			t.Fatalf("step %d: tree MemberRoot(%d): %v", step, id, err)
		}
		if !bytes.Equal(got, treeRoot) {
			t.Fatalf("step %d: tree member %d derives wrong root", step, id)
		}
		fgot, err := fl.MemberRoot(id)
		if err != nil {
			t.Fatalf("step %d: flat MemberRoot(%d): %v", step, id, err)
		}
		if !bytes.Equal(fgot, flatRoot) {
			t.Fatalf("step %d: flat member %d derives wrong root", step, id)
		}
	}
	// Non-members must fail membership and unwrap.
	for probeID := uint32(1); probeID <= 3; probeID++ {
		id := uint32(1 + rng.Intn(200))
		_, isMember := or.members[id]
		if tr.Contains(id) != isMember || fl.Contains(id) != isMember {
			t.Fatalf("step %d: Contains(%d) disagrees with oracle (%v)", step, id, isMember)
		}
		if !isMember {
			if _, err := tr.MemberRoot(id); err == nil {
				t.Fatalf("step %d: tree MemberRoot(non-member %d) succeeded", step, id)
			}
			if err := fl.Authenticate(id); err == nil {
				t.Fatalf("step %d: flat Authenticate(non-member %d) succeeded", step, id)
			}
		}
	}
	checkRightsResolution(t, step, tr, or, rng)
}

// checkRightsResolution asserts ACL group-entry resolution through the
// tree matches what direct per-user entries would grant: a group grant
// on a member's leaf confers the rights, and grants on other leaves (or
// to non-members) confer nothing.
func checkRightsResolution(t *testing.T, step int, tr *Tree, or *oracle, rng *netsim.Rand) {
	t.Helper()
	if len(or.members) == 0 || tr.Leaves() == 0 {
		return
	}
	ids := make([]uint32, 0, len(or.members))
	for id := range or.members {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	subject := ids[rng.Intn(len(ids))]
	leaf, _ := tr.LeafOf(subject)

	var l acl.List
	l.Set(acl.GroupEntryID(leaf), acl.ReadOnly)
	otherLeaf := uint32(tr.Leaves()) // beyond any real leaf
	l.Set(acl.GroupEntryID(otherLeaf), acl.All)

	groups := tr.GroupsOf(subject)
	if got := l.ResolveRights(subject, groups); got != acl.ReadOnly {
		t.Fatalf("step %d: member %d of leaf %d resolved %v, want ReadOnly", step, subject, leaf, got)
	}
	if !l.CheckGroups(subject, false, groups, acl.Read) {
		t.Fatalf("step %d: group grant did not confer Read", step)
	}
	if l.CheckGroups(subject, false, groups, acl.Write) {
		t.Fatalf("step %d: member gained Write from an unrelated leaf's grant", step)
	}
	// A direct user entry unions with the group grant.
	l.Set(subject, acl.Rights(acl.Insert))
	if got := l.ResolveRights(subject, groups); got != acl.ReadOnly|acl.Insert {
		t.Fatalf("step %d: union of direct+group = %v", step, got)
	}
	// Non-members resolve nothing through groups.
	nonMember := uint32(10_000)
	if got := l.ResolveRights(nonMember, tr.GroupsOf(nonMember)); got != acl.None {
		t.Fatalf("step %d: non-member resolved %v", step, got)
	}
}
