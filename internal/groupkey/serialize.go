package groupkey

import (
	"crypto/rand"
	"fmt"

	"nexus/internal/serial"
)

// treeFormatV1 tags the serialized tree layout. The supernode stores
// the tree as a trailing, versioned extension so pre-groupkey volumes
// still load (they simply have no tree bytes).
const treeFormatV1 = 1

// Encode serializes the full owner-side tree state — configuration,
// epoch, leaf membership (member secrets and wraps), and every level's
// node keys and child wraps. The result is only ever stored inside the
// sealed supernode body.
func (t *Tree) Encode() []byte {
	w := serial.NewWriter(256 + len(t.users)*(8+KeySize+wrapLen))
	w.WriteUint8(treeFormatV1)
	w.WriteUint32(uint32(t.leafCap))
	w.WriteUint32(uint32(t.fanout))
	w.WriteUint64(t.epoch)
	w.WriteUint32(uint32(len(t.leaves)))
	for _, ms := range t.leaves {
		w.WriteUint32(uint32(len(ms)))
		for _, m := range ms {
			w.WriteUint32(m.id)
			w.WriteBytes(m.secret)
			w.WriteBytes(m.wrap)
		}
	}
	w.WriteUint32(uint32(len(t.levels)))
	for _, lvl := range t.levels {
		w.WriteUint32(uint32(len(lvl)))
		for _, n := range lvl {
			w.WriteBytes(n.key)
			w.WriteUint32(uint32(len(n.childWraps)))
			for _, cw := range n.childWraps {
				w.WriteBytes(cw)
			}
		}
	}
	return w.Bytes()
}

// DecodeTree parses an Encode result, validating structure strictly:
// bounds on every count, exact key/wrap lengths, member-to-leaf
// consistency, and a level geometry that matches the declared fanout.
// It never panics on hostile input (FuzzGroupTreeDecode enforces this).
func DecodeTree(data []byte) (*Tree, error) {
	r := serial.NewReader(data)
	if v := r.ReadUint8("groupkey format"); r.Err() == nil && v != treeFormatV1 {
		return nil, fmt.Errorf("%w: unsupported format %d", ErrMalformed, v)
	}
	leafCap := int(r.ReadUint32("leaf cap"))
	fanout := int(r.ReadUint32("fanout"))
	if r.Err() == nil && (leafCap < 1 || leafCap > maxLeafCap || fanout < 2 || fanout > maxFanout) {
		return nil, fmt.Errorf("%w: bad config leafCap=%d fanout=%d", ErrMalformed, leafCap, fanout)
	}
	t := &Tree{
		leafCap: leafCap,
		fanout:  fanout,
		epoch:   r.ReadUint64("epoch"),
		users:   make(map[uint32]int),
	}
	nLeaves := r.ReadCount(maxLeaves, "leaf count")
	for li := 0; li < nLeaves && r.Err() == nil; li++ {
		nm := r.ReadCount(leafCap, "leaf member count")
		ms := make([]*member, 0, nm)
		for j := 0; j < nm && r.Err() == nil; j++ {
			m := &member{
				id:     r.ReadUint32("member id"),
				secret: r.ReadBytes(KeySize, "member secret"),
				wrap:   r.ReadBytes(wrapLen, "member wrap"),
			}
			if r.Err() != nil {
				break
			}
			if len(m.secret) != KeySize || len(m.wrap) != wrapLen {
				return nil, fmt.Errorf("%w: member %d blob sizes", ErrMalformed, m.id)
			}
			if _, dup := t.users[m.id]; dup {
				return nil, fmt.Errorf("%w: duplicate member %d", ErrMalformed, m.id)
			}
			t.users[m.id] = li
			ms = append(ms, m)
		}
		t.leaves = append(t.leaves, ms)
	}
	nLevels := r.ReadCount(64, "level count")
	for l := 0; l < nLevels && r.Err() == nil; l++ {
		nn := r.ReadCount(maxLeaves, "level width")
		lvl := make([]*node, 0, nn)
		for i := 0; i < nn && r.Err() == nil; i++ {
			n := &node{key: r.ReadBytes(KeySize, "node key")}
			nw := r.ReadCount(fanout, "child wrap count")
			for j := 0; j < nw && r.Err() == nil; j++ {
				n.childWraps = append(n.childWraps, r.ReadBytes(wrapLen, "child wrap"))
			}
			if r.Err() != nil {
				break
			}
			if len(n.key) != KeySize {
				return nil, fmt.Errorf("%w: node key size", ErrMalformed)
			}
			for _, cw := range n.childWraps {
				if len(cw) != wrapLen {
					return nil, fmt.Errorf("%w: child wrap size", ErrMalformed)
				}
			}
			lvl = append(lvl, n)
		}
		t.levels = append(t.levels, lvl)
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if err := t.validateGeometry(nLeaves); err != nil {
		return nil, err
	}
	return t, nil
}

// validateGeometry cross-checks the decoded levels against the leaf
// list and the declared fanout.
func (t *Tree) validateGeometry(nLeaves int) error {
	if nLeaves == 0 {
		if len(t.levels) != 0 {
			return fmt.Errorf("%w: levels without leaves", ErrMalformed)
		}
		return nil
	}
	if len(t.levels) == 0 || len(t.levels[0]) != nLeaves {
		return fmt.Errorf("%w: level 0 width mismatch", ErrMalformed)
	}
	for l := 1; l < len(t.levels); l++ {
		below := len(t.levels[l-1])
		want := (below + t.fanout - 1) / t.fanout
		if len(t.levels[l]) != want {
			return fmt.Errorf("%w: level %d width %d, want %d", ErrMalformed, l, len(t.levels[l]), want)
		}
		for idx, n := range t.levels[l] {
			kids := t.fanout
			if lo := idx * t.fanout; lo+kids > below {
				kids = below - lo
			}
			if len(n.childWraps) != kids {
				return fmt.Errorf("%w: node %d/%d has %d child wraps, want %d",
					ErrMalformed, l, idx, len(n.childWraps), kids)
			}
		}
	}
	if top := t.levels[len(t.levels)-1]; len(top) != 1 {
		return fmt.Errorf("%w: top level width %d", ErrMalformed, len(top))
	}
	return nil
}

// NewTreeWithMembers bulk-builds a tree over a member set without
// per-add path rotations: one batched random draw for all key material,
// then exactly one member wrap each plus the interior child wraps. This
// is what makes the 10^6-user benchmark sweep feasible.
func NewTreeWithMembers(cfg Config, userIDs []uint32) (*Tree, error) {
	cfg = cfg.withDefaults()
	t := &Tree{
		leafCap: cfg.LeafCap,
		fanout:  cfg.Fanout,
		users:   make(map[uint32]int, len(userIDs)),
	}
	if len(userIDs) == 0 {
		return t, nil
	}
	nLeaves := (len(userIDs) + cfg.LeafCap - 1) / cfg.LeafCap
	// One draw covers every member secret plus every node key.
	nNodes := 0
	for w := nLeaves; ; w = (w + cfg.Fanout - 1) / cfg.Fanout {
		nNodes += w
		if w == 1 {
			break
		}
	}
	pool := make([]byte, (len(userIDs)+nNodes)*KeySize)
	if _, err := rand.Read(pool); err != nil {
		return nil, fmt.Errorf("groupkey: generating bulk key material: %w", err)
	}
	draw := func() []byte {
		k := pool[:KeySize:KeySize]
		pool = pool[KeySize:]
		return k
	}
	t.leaves = make([][]*member, nLeaves)
	for i, id := range userIDs {
		if _, dup := t.users[id]; dup {
			return nil, fmt.Errorf("%w: user %d", ErrMemberExists, id)
		}
		li := i / cfg.LeafCap
		t.leaves[li] = append(t.leaves[li], &member{id: id, secret: draw()})
		t.users[id] = li
	}
	for w := nLeaves; ; w = (w + cfg.Fanout - 1) / cfg.Fanout {
		lvl := make([]*node, w)
		for i := range lvl {
			lvl[i] = &node{key: draw()}
		}
		t.levels = append(t.levels, lvl)
		if w == 1 {
			break
		}
	}
	// Materialize wraps: members first, then interior child wraps.
	for li, ms := range t.leaves {
		leafKey := t.levels[0][li].key
		for _, m := range ms {
			wb, err := wrapWith(m.secret, leafKey, wrapAAD(0, uint32(li), m.id))
			if err != nil {
				return nil, err
			}
			m.wrap = wb
			t.stats.Wraps++
			t.stats.WrapBytes += int64(len(wb))
		}
	}
	for l := 1; l < len(t.levels); l++ {
		for idx, n := range t.levels[l] {
			lo := idx * cfg.Fanout
			hi := lo + cfg.Fanout
			if hi > len(t.levels[l-1]) {
				hi = len(t.levels[l-1])
			}
			n.childWraps = make([][]byte, hi-lo)
			for j := lo; j < hi; j++ {
				wb, err := wrapWith(t.levels[l-1][j].key, n.key, wrapAAD(uint32(l), uint32(idx), uint32(j-lo)))
				if err != nil {
					return nil, err
				}
				n.childWraps[j-lo] = wb
				t.stats.Wraps++
				t.stats.WrapBytes += int64(len(wb))
			}
		}
	}
	t.epoch = 1
	return t, nil
}
