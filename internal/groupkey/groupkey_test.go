package groupkey

import (
	"bytes"
	"errors"
	"testing"
)

func mustAdd(t *testing.T, g Group, id uint32) []byte {
	t.Helper()
	secret, err := g.Add(id)
	if err != nil {
		t.Fatalf("Add(%d): %v", id, err)
	}
	return secret
}

func TestTreeAddAuthenticate(t *testing.T) {
	tr := NewTree(Config{LeafCap: 4, Fanout: 2})
	for id := uint32(1); id <= 40; id++ {
		mustAdd(t, tr, id)
	}
	if tr.Len() != 40 {
		t.Fatalf("Len = %d, want 40", tr.Len())
	}
	for id := uint32(1); id <= 40; id++ {
		if !tr.Contains(id) {
			t.Fatalf("Contains(%d) = false", id)
		}
		if err := tr.Authenticate(id); err != nil {
			t.Fatalf("Authenticate(%d): %v", id, err)
		}
		root, err := tr.MemberRoot(id)
		if err != nil {
			t.Fatalf("MemberRoot(%d): %v", id, err)
		}
		if !bytes.Equal(root, tr.RootSecret()) {
			t.Fatalf("MemberRoot(%d) != RootSecret", id)
		}
	}
	// 40 users at LeafCap 4 → 10 leaves, all full before a new leaf opens.
	if tr.Leaves() != 10 {
		t.Fatalf("Leaves = %d, want 10", tr.Leaves())
	}
}

func TestTreeDuplicateAddAndUnknownRevoke(t *testing.T) {
	tr := NewTree(Config{})
	mustAdd(t, tr, 7)
	if _, err := tr.Add(7); !errors.Is(err, ErrMemberExists) {
		t.Fatalf("duplicate Add err = %v, want ErrMemberExists", err)
	}
	if err := tr.Revoke(99); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("unknown Revoke err = %v, want ErrUnknownMember", err)
	}
	if _, err := tr.Secret(99); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("unknown Secret err = %v, want ErrUnknownMember", err)
	}
	if _, err := tr.MemberRoot(99); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("unknown MemberRoot err = %v, want ErrUnknownMember", err)
	}
}

func TestTreeRevokeRotatesRootAndEpoch(t *testing.T) {
	tr := NewTree(Config{LeafCap: 2, Fanout: 2})
	for id := uint32(1); id <= 8; id++ {
		mustAdd(t, tr, id)
	}
	beforeRoot := tr.RootSecret()
	beforeEpoch := tr.Epoch()
	if err := tr.Revoke(3); err != nil {
		t.Fatalf("Revoke: %v", err)
	}
	if tr.Contains(3) {
		t.Fatal("revoked user still a member")
	}
	if bytes.Equal(beforeRoot, tr.RootSecret()) {
		t.Fatal("root secret unchanged after revoke")
	}
	if tr.Epoch() != beforeEpoch+1 {
		t.Fatalf("epoch = %d, want %d", tr.Epoch(), beforeEpoch+1)
	}
	// Everyone else still authenticates against the fresh root.
	for _, id := range []uint32{1, 2, 4, 5, 6, 7, 8} {
		if err := tr.Authenticate(id); err != nil {
			t.Fatalf("Authenticate(%d) post-revoke: %v", id, err)
		}
	}
}

func TestTreeSparsestLeafPlacement(t *testing.T) {
	tr := NewTree(Config{LeafCap: 2, Fanout: 2})
	for id := uint32(1); id <= 6; id++ {
		mustAdd(t, tr, id)
	}
	// Leaves fill in order: {1,2} {3,4} {5,6}. Revoking 3 leaves leaf 1
	// the sparsest; the next add must land there.
	if err := tr.Revoke(3); err != nil {
		t.Fatalf("Revoke: %v", err)
	}
	mustAdd(t, tr, 7)
	leaf, ok := tr.LeafOf(7)
	if !ok || leaf != 1 {
		t.Fatalf("LeafOf(7) = %d,%v, want leaf 1", leaf, ok)
	}
	if got := tr.Members(1); len(got) != 2 || got[0] != 4 || got[1] != 7 {
		t.Fatalf("Members(1) = %v, want [4 7]", got)
	}
}

func TestTreeGroupsOfAndLeafStability(t *testing.T) {
	tr := NewTree(Config{LeafCap: 2, Fanout: 2})
	for id := uint32(1); id <= 5; id++ {
		mustAdd(t, tr, id)
	}
	leafBefore := map[uint32]uint32{}
	for id := uint32(1); id <= 5; id++ {
		lf, ok := tr.LeafOf(id)
		if !ok {
			t.Fatalf("LeafOf(%d) missing", id)
		}
		leafBefore[id] = lf
		groups := tr.GroupsOf(id)
		if len(groups) != 1 || groups[0] != lf {
			t.Fatalf("GroupsOf(%d) = %v, want [%d]", id, groups, lf)
		}
	}
	// Churn elsewhere must not move surviving members between leaves.
	if err := tr.Revoke(2); err != nil {
		t.Fatalf("Revoke: %v", err)
	}
	mustAdd(t, tr, 6)
	for _, id := range []uint32{1, 3, 4, 5} {
		if lf, _ := tr.LeafOf(id); lf != leafBefore[id] {
			t.Fatalf("user %d moved leaf %d → %d", id, leafBefore[id], lf)
		}
	}
	if tr.GroupsOf(2) != nil {
		t.Fatal("GroupsOf(revoked) != nil")
	}
	if tr.GroupsOf(99) != nil {
		t.Fatal("GroupsOf(non-member) != nil")
	}
}

func TestTreeWrapCountLogarithmic(t *testing.T) {
	// A revocation rewraps ≤ LeafCap member wraps plus ≤ Fanout child
	// wraps per interior level: LeafCap + Fanout·ceil(log_F(leaves)).
	tr := NewTree(Config{LeafCap: 8, Fanout: 4})
	ids := make([]uint32, 4096)
	for i := range ids {
		ids[i] = uint32(i + 1)
	}
	tr2, err := NewTreeWithMembers(Config{LeafCap: 8, Fanout: 4}, ids)
	if err != nil {
		t.Fatalf("NewTreeWithMembers: %v", err)
	}
	tr = tr2
	levels := len(tr.levels)
	bound := int64(8 + 4*(levels-1))
	for _, victim := range []uint32{1, 2000, 4096} {
		tr.ResetStats()
		if err := tr.Revoke(victim); err != nil {
			t.Fatalf("Revoke(%d): %v", victim, err)
		}
		if got := tr.Stats().Wraps; got > bound {
			t.Fatalf("Revoke(%d) wraps = %d, want ≤ %d (levels=%d)", victim, got, bound, levels)
		}
	}
}

func TestFlatMatchesTreeSemantics(t *testing.T) {
	fl := NewFlat()
	for id := uint32(1); id <= 10; id++ {
		mustAdd(t, fl, id)
	}
	if fl.Len() != 10 {
		t.Fatalf("Len = %d", fl.Len())
	}
	for id := uint32(1); id <= 10; id++ {
		if err := fl.Authenticate(id); err != nil {
			t.Fatalf("Authenticate(%d): %v", id, err)
		}
	}
	if _, err := fl.Add(3); !errors.Is(err, ErrMemberExists) {
		t.Fatalf("duplicate Add err = %v", err)
	}
	epoch := fl.Epoch()
	rootBefore := fl.RootSecret()
	if err := fl.Revoke(3); err != nil {
		t.Fatalf("Revoke: %v", err)
	}
	if bytes.Equal(rootBefore, fl.RootSecret()) {
		t.Fatal("flat root unchanged after revoke")
	}
	if fl.Epoch() != epoch+1 {
		t.Fatalf("epoch = %d, want %d", fl.Epoch(), epoch+1)
	}
	if err := fl.Revoke(3); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("double Revoke err = %v", err)
	}
	// Flat revocation is O(n): 9 remaining members → 9 wraps.
	fl.ResetStats()
	if err := fl.Revoke(5); err != nil {
		t.Fatalf("Revoke: %v", err)
	}
	if got := fl.Stats().Wraps; got != 8 {
		t.Fatalf("flat revoke wraps = %d, want 8", got)
	}
}

func TestFlatBulkBuilder(t *testing.T) {
	ids := []uint32{5, 9, 12}
	fl, err := NewFlatWithMembers(ids)
	if err != nil {
		t.Fatalf("NewFlatWithMembers: %v", err)
	}
	for _, id := range ids {
		if err := fl.Authenticate(id); err != nil {
			t.Fatalf("Authenticate(%d): %v", id, err)
		}
	}
	if _, err := NewFlatWithMembers([]uint32{1, 1}); !errors.Is(err, ErrMemberExists) {
		t.Fatalf("duplicate bulk err = %v", err)
	}
}

func TestBulkBuilderEquivalence(t *testing.T) {
	ids := make([]uint32, 100)
	for i := range ids {
		ids[i] = uint32(i * 3)
	}
	tr, err := NewTreeWithMembers(Config{LeafCap: 4, Fanout: 2}, ids)
	if err != nil {
		t.Fatalf("NewTreeWithMembers: %v", err)
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for _, id := range ids {
		if err := tr.Authenticate(id); err != nil {
			t.Fatalf("bulk Authenticate(%d): %v", id, err)
		}
	}
	// Incremental ops on a bulk-built tree keep working.
	if err := tr.Revoke(ids[50]); err != nil {
		t.Fatalf("Revoke: %v", err)
	}
	mustAdd(t, tr, 1_000_000)
	if err := tr.Authenticate(1_000_000); err != nil {
		t.Fatalf("Authenticate(new): %v", err)
	}
	if _, err := NewTreeWithMembers(Config{}, []uint32{2, 2}); !errors.Is(err, ErrMemberExists) {
		t.Fatalf("duplicate bulk err = %v", err)
	}
	if empty, err := NewTreeWithMembers(Config{}, nil); err != nil || empty.Len() != 0 {
		t.Fatalf("empty bulk: %v len=%d", err, empty.Len())
	}
}

func TestDirKeyMaterialRotates(t *testing.T) {
	tr := NewTree(Config{})
	if tr.DirKeyMaterial([]byte("d1")) != nil {
		t.Fatal("empty tree should have no dir key material")
	}
	if tr.RootSecret() != nil {
		t.Fatal("empty tree should have no root secret")
	}
	mustAdd(t, tr, 1)
	d1 := tr.DirKeyMaterial([]byte("d1"))
	d2 := tr.DirKeyMaterial([]byte("d2"))
	if len(d1) != 32 || bytes.Equal(d1, d2) {
		t.Fatal("dir key material must be per-directory")
	}
	mustAdd(t, tr, 2)
	if bytes.Equal(d1, tr.DirKeyMaterial([]byte("d1"))) {
		t.Fatal("dir key material must rotate with the root")
	}
}

func TestUnwrapPathRejectsTamper(t *testing.T) {
	tr := NewTree(Config{LeafCap: 2, Fanout: 2})
	for id := uint32(1); id <= 6; id++ {
		mustAdd(t, tr, id)
	}
	secret, err := tr.Secret(4)
	if err != nil {
		t.Fatal(err)
	}
	wraps, ok := tr.PathWraps(4)
	if !ok || len(wraps) < 2 {
		t.Fatalf("PathWraps = %v,%v", wraps, ok)
	}
	if _, err := UnwrapPath(secret, wraps); err != nil {
		t.Fatalf("honest UnwrapPath: %v", err)
	}
	// Bit-flip each blob in turn: the chain must fail closed.
	for i := range wraps {
		mut := make([]WrappedKey, len(wraps))
		copy(mut, wraps)
		blob := bytes.Clone(wraps[i].Blob)
		blob[len(blob)/2] ^= 0x80
		mut[i].Blob = blob
		if _, err := UnwrapPath(secret, mut); !errors.Is(err, ErrUnwrap) {
			t.Fatalf("tampered blob %d: err = %v, want ErrUnwrap", i, err)
		}
	}
	// A wrap transplanted to a different position fails via the AAD.
	mut := make([]WrappedKey, len(wraps))
	copy(mut, wraps)
	mut[0].Child = 999
	if _, err := UnwrapPath(secret, mut); !errors.Is(err, ErrUnwrap) {
		t.Fatalf("transplanted blob: err = %v, want ErrUnwrap", err)
	}
	if _, err := UnwrapPath(secret, nil); !errors.Is(err, ErrUnwrap) {
		t.Fatalf("empty chain: err = %v, want ErrUnwrap", err)
	}
	if _, ok := tr.PathWraps(99); ok {
		t.Fatal("PathWraps(non-member) should report !ok")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := NewTree(Config{LeafCap: 3, Fanout: 2})
	for id := uint32(1); id <= 23; id++ {
		mustAdd(t, tr, id)
	}
	if err := tr.Revoke(11); err != nil {
		t.Fatal(err)
	}
	enc := tr.Encode()
	got, err := DecodeTree(enc)
	if err != nil {
		t.Fatalf("DecodeTree: %v", err)
	}
	if got.Len() != tr.Len() || got.Epoch() != tr.Epoch() || got.Leaves() != tr.Leaves() {
		t.Fatalf("decoded shape mismatch: len %d/%d epoch %d/%d leaves %d/%d",
			got.Len(), tr.Len(), got.Epoch(), tr.Epoch(), got.Leaves(), tr.Leaves())
	}
	if !bytes.Equal(got.RootSecret(), tr.RootSecret()) {
		t.Fatal("decoded root secret differs")
	}
	for id := uint32(1); id <= 23; id++ {
		if id == 11 {
			if got.Contains(id) {
				t.Fatal("decoded tree contains revoked member")
			}
			continue
		}
		if err := got.Authenticate(id); err != nil {
			t.Fatalf("decoded Authenticate(%d): %v", id, err)
		}
	}
	if !bytes.Equal(got.Encode(), enc) {
		t.Fatal("re-encode differs")
	}
	// The decoded tree must remain fully operational.
	if err := got.Revoke(5); err != nil {
		t.Fatalf("decoded Revoke: %v", err)
	}
	mustAdd(t, got, 500)
}

func TestDecodeRejectsMalformed(t *testing.T) {
	tr := NewTree(Config{LeafCap: 2, Fanout: 2})
	for id := uint32(1); id <= 5; id++ {
		mustAdd(t, tr, id)
	}
	good := tr.Encode()
	cases := map[string][]byte{
		"empty":            {},
		"bad format":       append([]byte{99}, good[1:]...),
		"truncated":        good[:len(good)/2],
		"trailing garbage": append(bytes.Clone(good), 0xAA),
	}
	for name, data := range cases {
		if _, err := DecodeTree(data); err == nil {
			t.Fatalf("%s: decode accepted malformed input", name)
		}
	}
	// Structured corruption: leaf cap of zero.
	bad := bytes.Clone(good)
	bad[1], bad[2], bad[3], bad[4] = 0, 0, 0, 0
	if _, err := DecodeTree(bad); !errors.Is(err, ErrMalformed) {
		t.Fatalf("zero leafCap: err = %v, want ErrMalformed", err)
	}
}
