package groupkey

import (
	"bytes"
	"errors"
	"testing"
)

// The adversarial model: the evicted user keeps everything it ever
// legitimately held — its member secret, every wrap blob published for
// it, and every intermediate node key it could derive before the
// rotation. After Revoke, none of that may open any post-rotation key
// on its former path, and the volume's current root must be out of
// reach.

// captureKeys chains the member's unwraps and records every node key it
// learns on the way up (what a malicious client would cache).
func captureKeys(t *testing.T, tr *Tree, userID uint32) (secret []byte, wraps []WrappedKey, pathKeys [][]byte) {
	t.Helper()
	secret, err := tr.Secret(userID)
	if err != nil {
		t.Fatalf("Secret(%d): %v", userID, err)
	}
	wraps, ok := tr.PathWraps(userID)
	if !ok {
		t.Fatalf("PathWraps(%d): not a member", userID)
	}
	cur := secret
	for _, w := range wraps {
		next, err := unwrapWith(cur, w.Blob, wrapAAD(w.Level, w.Index, w.Child))
		if err != nil {
			t.Fatalf("pre-revocation unwrap level %d: %v", w.Level, err)
		}
		pathKeys = append(pathKeys, next)
		cur = next
	}
	return secret, wraps, pathKeys
}

func TestAdversarialRevocation(t *testing.T) {
	tr := NewTree(Config{LeafCap: 4, Fanout: 2})
	for id := uint32(1); id <= 32; id++ {
		mustAdd(t, tr, id)
	}
	const victim = 13
	oldSecret, oldWraps, oldPathKeys := captureKeys(t, tr, victim)
	oldRoot := tr.RootSecret()
	victimLeaf, _ := tr.LeafOf(victim)

	if err := tr.Revoke(victim); err != nil {
		t.Fatalf("Revoke: %v", err)
	}

	// 1. The captured chain as a whole no longer reaches the current
	//    root: it still opens (old ciphertexts don't vanish) but yields
	//    only the dead epoch's root.
	if got, err := UnwrapPath(oldSecret, oldWraps); err == nil && bytes.Equal(got, tr.RootSecret()) {
		t.Fatal("captured pre-revocation chain reaches the post-revocation root")
	}

	// 2. The evicted secret opens none of the freshly published wraps on
	//    its former path — neither the leaf's new member wraps nor any
	//    rotated interior wrap.
	for _, m := range tr.leaves[victimLeaf] {
		if _, err := unwrapWith(oldSecret, m.wrap, wrapAAD(0, victimLeaf, m.id)); !errors.Is(err, ErrUnwrap) {
			t.Fatalf("evicted secret opened member %d's new wrap", m.id)
		}
	}
	survivor := tr.leaves[victimLeaf][0].id
	newWraps, _ := tr.PathWraps(survivor)
	for _, w := range newWraps {
		if _, err := unwrapWith(oldSecret, w.Blob, wrapAAD(w.Level, w.Index, w.Child)); !errors.Is(err, ErrUnwrap) {
			t.Fatalf("evicted secret opened post-rotation wrap at level %d", w.Level)
		}
		// 3. Nor do any of the node keys the victim learned before
		//    eviction: every key on the path was rotated.
		for lvl, k := range oldPathKeys {
			if _, err := unwrapWith(k, w.Blob, wrapAAD(w.Level, w.Index, w.Child)); !errors.Is(err, ErrUnwrap) {
				t.Fatalf("captured level-%d key opened post-rotation wrap at level %d", lvl, w.Level)
			}
		}
	}

	// 4. Off-path keys the victim never held stay where they were, but
	//    the root it knew is dead: current root differs from captured.
	if bytes.Equal(oldRoot, tr.RootSecret()) {
		t.Fatal("root not rotated by revocation")
	}
	if bytes.Equal(oldPathKeys[len(oldPathKeys)-1], tr.RootSecret()) {
		t.Fatal("captured root still current")
	}

	// 5. Survivors are unaffected.
	for id := uint32(1); id <= 32; id++ {
		if id == victim {
			continue
		}
		if err := tr.Authenticate(id); err != nil {
			t.Fatalf("survivor %d: %v", id, err)
		}
	}
}

func TestAdversarialReAddGetsNoOldEpochKeys(t *testing.T) {
	tr := NewTree(Config{LeafCap: 4, Fanout: 2})
	for id := uint32(1); id <= 16; id++ {
		mustAdd(t, tr, id)
	}
	const victim = 6
	_, oldWraps, oldPathKeys := captureKeys(t, tr, victim)
	rootAtCapture := tr.RootSecret()

	if err := tr.Revoke(victim); err != nil {
		t.Fatalf("Revoke: %v", err)
	}
	// Interleave more churn so the re-add lands in a later epoch.
	if err := tr.Revoke(2); err != nil {
		t.Fatalf("Revoke(2): %v", err)
	}
	mustAdd(t, tr, 100)

	newSecret := mustAdd(t, tr, victim)

	// The re-added identity is a fresh principal: its new secret opens
	// none of the wraps captured in the old epoch…
	for _, w := range oldWraps {
		if _, err := unwrapWith(newSecret, w.Blob, wrapAAD(w.Level, w.Index, w.Child)); !errors.Is(err, ErrUnwrap) {
			t.Fatalf("re-added secret opened old-epoch wrap at level %d", w.Level)
		}
	}
	// …and its current chain derives the current root, not any key from
	// the captured epoch.
	root, err := tr.MemberRoot(victim)
	if err != nil {
		t.Fatalf("MemberRoot after re-add: %v", err)
	}
	if bytes.Equal(root, rootAtCapture) {
		t.Fatal("re-added member derived the old epoch root")
	}
	for lvl, k := range oldPathKeys {
		if bytes.Equal(root, k) {
			t.Fatalf("re-added member derived old level-%d key", lvl)
		}
	}
	if !bytes.Equal(root, tr.RootSecret()) {
		t.Fatal("re-added member does not reach the current root")
	}
	if err := tr.Authenticate(victim); err != nil {
		t.Fatalf("Authenticate after re-add: %v", err)
	}
}

func TestAdversarialFlatRevocation(t *testing.T) {
	// The flat baseline honors the same contract (via full re-wrap).
	fl := NewFlat()
	for id := uint32(1); id <= 8; id++ {
		mustAdd(t, fl, id)
	}
	victimSecret, err := func() ([]byte, error) {
		m := fl.members[3]
		return bytes.Clone(m.secret), nil
	}()
	if err != nil {
		t.Fatal(err)
	}
	oldWrap := bytes.Clone(fl.members[3].wrap)
	oldRoot := fl.RootSecret()
	if err := fl.Revoke(3); err != nil {
		t.Fatalf("Revoke: %v", err)
	}
	if got, err := unwrapWith(victimSecret, oldWrap, wrapAAD(0, 0, 3)); err != nil {
		t.Fatalf("old wrap should still open (old ciphertext): %v", err)
	} else if bytes.Equal(got, fl.RootSecret()) {
		t.Fatal("old flat wrap yields current root")
	}
	if bytes.Equal(oldRoot, fl.RootSecret()) {
		t.Fatal("flat root not rotated")
	}
	for _, m := range fl.members {
		if _, err := unwrapWith(victimSecret, m.wrap, wrapAAD(0, 0, m.id)); !errors.Is(err, ErrUnwrap) {
			t.Fatalf("evicted flat secret opened member %d's wrap", m.id)
		}
	}
}
