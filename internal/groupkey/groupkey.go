// Package groupkey implements a subgroup key tree over volume
// membership, the logical-key-hierarchy construction IBBE-SGX applies
// to enclave-managed group keying: users are partitioned into
// fixed-capacity leaf subgroups, every tree node carries a symmetric
// key, a leaf key is wrapped individually for each of its members, and
// each interior key is wrapped under each of its children's keys. A
// member therefore recovers the root secret by chaining one unwrap per
// tree level, and revoking a member rotates only the keys on its
// leaf-to-root path — O(LeafCap + Fanout·log n) wrap operations instead
// of the flat list's O(n) full re-wrap.
//
// The tree is owner-side state: it holds the raw node keys and the
// per-member secrets, and is serialized into the (sealed) supernode by
// internal/metadata. The wrap blobs are what a deployment would place
// on untrusted storage for members to climb; PathWraps exposes them so
// tests can model an adversary replaying captured ciphertexts.
//
// Every membership change bumps the epoch and rotates the affected
// path, so a freshly added (or re-added) member only ever receives
// wraps of post-join keys, and a revoked member's cached keys unwrap
// nothing rotated after its eviction.
package groupkey

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// KeySize is the size of every node key and member secret.
const KeySize = 32

// wrapLen is the exact length of a wrap blob: 12-byte GCM nonce, the
// KeySize payload, and the 16-byte tag.
const wrapLen = 12 + KeySize + 16

// Defaults for Config.
const (
	// DefaultLeafCap caps members per leaf subgroup.
	DefaultLeafCap = 32
	// DefaultFanout is the interior node fanout.
	DefaultFanout = 8
)

// Decode bounds (the serialized form is attacker-adjacent only via the
// sealed supernode, but the fuzz target treats it as hostile).
const (
	maxLeafCap = 4096
	maxFanout  = 4096
	maxLeaves  = 1 << 21
)

// Errors.
var (
	// ErrMemberExists reports adding a user already in the group.
	ErrMemberExists = errors.New("groupkey: member already present")
	// ErrUnknownMember reports an operation on a user not in the group.
	ErrUnknownMember = errors.New("groupkey: unknown member")
	// ErrUnwrap reports a wrap blob that does not open under the given
	// secret — the revoked-member outcome.
	ErrUnwrap = errors.New("groupkey: key unwrap failed")
	// ErrMalformed reports an undecodable serialized tree.
	ErrMalformed = errors.New("groupkey: malformed tree encoding")
)

// Config parameterizes a tree. Zero values take the defaults.
type Config struct {
	// LeafCap caps members per leaf subgroup (default 32).
	LeafCap int
	// Fanout is the interior node fanout (default 8).
	Fanout int
}

func (c Config) withDefaults() Config {
	if c.LeafCap <= 0 {
		c.LeafCap = DefaultLeafCap
	}
	if c.Fanout < 2 {
		c.Fanout = DefaultFanout
	}
	return c
}

// Stats meters the wrap work the revocation benchmark reports.
type Stats struct {
	// Wraps counts AES key-wrap operations performed.
	Wraps int64
	// WrapBytes totals wrap-blob bytes regenerated (what a deployment
	// re-uploads after a rotation).
	WrapBytes int64
	// Unwraps counts unwrap operations (the authenticate path).
	Unwraps int64
}

// member is one enrolled user in a leaf subgroup.
type member struct {
	id     uint32
	secret []byte // per-member KEK; stays inside the sealed tree state
	wrap   []byte // leaf key wrapped under secret
}

// node is one tree position. Leaves (level 0) carry member wraps in
// their leaf's member list instead of childWraps.
type node struct {
	key []byte
	// childWraps[j] is this node's key wrapped under child j's key
	// (interior nodes only).
	childWraps [][]byte
}

// Tree is the subgroup key tree. It is not safe for concurrent use;
// callers (the enclave, the benchmark) serialize access.
type Tree struct {
	leafCap int
	fanout  int
	epoch   uint64
	// leaves[i] lists leaf subgroup i's members; leaves are append-only
	// so the index is a stable subgroup ID for ACL group grants.
	leaves [][]*member
	// levels[0][i] is leaf i's node; levels[l][i] for l>0 covers
	// levels[l-1][i*fanout : (i+1)*fanout]. The top level has exactly
	// one node, the root (levels has one level while one leaf exists).
	levels [][]*node
	// users maps a member ID to its leaf index.
	users map[uint32]int

	stats Stats
}

// NewTree creates an empty tree.
func NewTree(cfg Config) *Tree {
	cfg = cfg.withDefaults()
	return &Tree{
		leafCap: cfg.LeafCap,
		fanout:  cfg.Fanout,
		users:   make(map[uint32]int),
	}
}

// Len returns the number of members.
func (t *Tree) Len() int { return len(t.users) }

// Epoch returns the rotation epoch: it increases on every membership
// change, and key material from earlier epochs is never re-wrapped.
func (t *Tree) Epoch() uint64 { return t.epoch }

// Leaves returns the number of leaf subgroups (stable IDs 0..Leaves-1).
func (t *Tree) Leaves() int { return len(t.leaves) }

// Contains reports membership.
func (t *Tree) Contains(userID uint32) bool {
	_, ok := t.users[userID]
	return ok
}

// LeafOf returns the stable leaf subgroup ID holding the user.
func (t *Tree) LeafOf(userID uint32) (uint32, bool) {
	li, ok := t.users[userID]
	return uint32(li), ok
}

// GroupsOf returns the subgroup IDs the user's rights resolve through
// (nil for non-members). Only leaf subgroups have stable identities,
// so that is what ACL group entries may name.
func (t *Tree) GroupsOf(userID uint32) []uint32 {
	li, ok := t.users[userID]
	if !ok {
		return nil
	}
	return []uint32{uint32(li)}
}

// Members returns the member IDs of one leaf subgroup, in enrollment
// order.
func (t *Tree) Members(leaf uint32) []uint32 {
	if int(leaf) >= len(t.leaves) {
		return nil
	}
	out := make([]uint32, 0, len(t.leaves[leaf]))
	for _, m := range t.leaves[leaf] {
		out = append(out, m.id)
	}
	return out
}

// Stats returns the cumulative meters.
func (t *Tree) Stats() Stats { return t.stats }

// ResetStats zeroes the meters.
func (t *Tree) ResetStats() { t.stats = Stats{} }

// Add enrolls a user into the sparsest leaf subgroup (appending a new
// leaf when all are full), generates its member secret, and rotates the
// leaf-to-root path so the new member holds only post-join key
// material. The secret is returned for delivery to the member's
// enclave; the tree also retains it for future re-wraps.
func (t *Tree) Add(userID uint32) ([]byte, error) {
	if t.Contains(userID) {
		return nil, fmt.Errorf("%w: user %d", ErrMemberExists, userID)
	}
	li := t.sparsestLeaf()
	if li < 0 {
		var err error
		if li, err = t.growLeaf(); err != nil {
			return nil, err
		}
	}
	secret := make([]byte, KeySize)
	if _, err := rand.Read(secret); err != nil {
		return nil, fmt.Errorf("groupkey: generating member secret: %w", err)
	}
	m := &member{id: userID, secret: secret}
	t.leaves[li] = append(t.leaves[li], m)
	t.users[userID] = li
	if err := t.rotatePath(li); err != nil {
		return nil, err
	}
	t.epoch++
	return bytes.Clone(secret), nil
}

// Revoke evicts a user and rotates every key on its former leaf-to-root
// path: the only wraps rewritten are the remaining leaf members' and
// one per child of each path ancestor — O(log n) for fixed Config.
func (t *Tree) Revoke(userID uint32) error {
	li, ok := t.users[userID]
	if !ok {
		return fmt.Errorf("%w: user %d", ErrUnknownMember, userID)
	}
	ms := t.leaves[li]
	for i, m := range ms {
		if m.id == userID {
			t.leaves[li] = append(ms[:i], ms[i+1:]...)
			break
		}
	}
	delete(t.users, userID)
	if err := t.rotatePath(li); err != nil {
		return err
	}
	t.epoch++
	return nil
}

// Secret returns the member's current secret (the owner retains it for
// re-wraps; a deployment would have delivered it at enrollment).
func (t *Tree) Secret(userID uint32) ([]byte, error) {
	m := t.memberOf(userID)
	if m == nil {
		return nil, fmt.Errorf("%w: user %d", ErrUnknownMember, userID)
	}
	return bytes.Clone(m.secret), nil
}

// RootSecret returns the current root key: the group secret that
// protects per-directory ACL key material. It changes on every
// membership change.
func (t *Tree) RootSecret() []byte {
	if len(t.levels) == 0 {
		return nil
	}
	return bytes.Clone(t.root().key)
}

// DirKeyMaterial derives the per-directory ACL protection key for the
// current epoch from the root secret and the directory's identity
// (HMAC-SHA256, so a rotation re-keys every directory at once without
// touching their metadata).
func (t *Tree) DirKeyMaterial(dirID []byte) []byte {
	if len(t.levels) == 0 {
		return nil
	}
	mac := hmac.New(sha256.New, t.root().key)
	mac.Write([]byte("nexus-groupkey-dir"))
	mac.Write(dirID)
	return mac.Sum(nil)
}

// WrappedKey is one ciphertext a member uses to climb the tree: at the
// leaf level the leaf key wrapped under a member secret, above it each
// node's key wrapped under one child's key.
type WrappedKey struct {
	// Level is the tree level of the wrapped node's key (0 = leaf).
	Level uint32
	// Index is the node's index within its level.
	Index uint32
	// Child is the member's user ID at level 0 and the child slot
	// (0..Fanout-1) above it.
	Child uint32
	// Blob is the AES-GCM wrap.
	Blob []byte
}

// PathWraps returns the wrap chain a member (or an adversary capturing
// the published blobs) holds for one user: its leaf wrap first, then
// one interior wrap per level up to the root. The blobs are copies.
func (t *Tree) PathWraps(userID uint32) ([]WrappedKey, bool) {
	li, ok := t.users[userID]
	if !ok {
		return nil, false
	}
	m := t.memberOf(userID)
	out := []WrappedKey{{Level: 0, Index: uint32(li), Child: userID, Blob: bytes.Clone(m.wrap)}}
	idx := li
	for l := 1; l < len(t.levels); l++ {
		slot := idx % t.fanout
		idx /= t.fanout
		out = append(out, WrappedKey{
			Level: uint32(l),
			Index: uint32(idx),
			Child: uint32(slot),
			Blob:  bytes.Clone(t.levels[l][idx].childWraps[slot]),
		})
	}
	return out, true
}

// UnwrapPath chains unwraps from a member secret up a wrap chain,
// returning the recovered root secret. It is the member-side
// authenticate operation and works from captured blobs alone, which is
// exactly what makes the adversarial revocation tests meaningful: after
// a rotation the old secret opens none of the new blobs.
func UnwrapPath(secret []byte, wraps []WrappedKey) ([]byte, error) {
	if len(wraps) == 0 {
		return nil, fmt.Errorf("%w: empty wrap chain", ErrUnwrap)
	}
	cur := secret
	for _, w := range wraps {
		next, err := unwrapWith(cur, w.Blob, wrapAAD(w.Level, w.Index, w.Child))
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// MemberRoot recovers the root secret by climbing the member's own wrap
// chain — the per-authenticate work, O(log n) unwraps.
func (t *Tree) MemberRoot(userID uint32) ([]byte, error) {
	m := t.memberOf(userID)
	if m == nil {
		return nil, fmt.Errorf("%w: user %d", ErrUnknownMember, userID)
	}
	wraps, _ := t.PathWraps(userID)
	root, err := UnwrapPath(m.secret, wraps)
	if err != nil {
		return nil, err
	}
	t.stats.Unwraps += int64(len(wraps))
	return root, nil
}

// Authenticate verifies that the member's wrap chain still reaches the
// current root secret (the enclave runs this during the §IV-B
// challenge–response).
func (t *Tree) Authenticate(userID uint32) error {
	root, err := t.MemberRoot(userID)
	if err != nil {
		return err
	}
	if !hmac.Equal(root, t.root().key) {
		return fmt.Errorf("%w: stale path for user %d", ErrUnwrap, userID)
	}
	return nil
}

// --- internals ------------------------------------------------------

func (t *Tree) root() *node {
	top := t.levels[len(t.levels)-1]
	return top[0]
}

func (t *Tree) memberOf(userID uint32) *member {
	li, ok := t.users[userID]
	if !ok {
		return nil
	}
	for _, m := range t.leaves[li] {
		if m.id == userID {
			return m
		}
	}
	return nil
}

// sparsestLeaf returns the least-populated leaf with spare capacity, or
// -1 when every leaf is full (or none exists).
func (t *Tree) sparsestLeaf() int {
	best, bestLen := -1, 0
	for i, ms := range t.leaves {
		if len(ms) >= t.leafCap {
			continue
		}
		if best < 0 || len(ms) < bestLen {
			best, bestLen = i, len(ms)
		}
	}
	return best
}

// growLeaf appends a new (empty) leaf, extending interior levels and
// adding a new root when the previous top level overflows. New nodes
// get fresh keys; their wraps materialize in the caller's rotatePath.
func (t *Tree) growLeaf() (int, error) {
	if len(t.leaves) >= maxLeaves {
		return 0, fmt.Errorf("groupkey: leaf limit reached")
	}
	n, err := newNode()
	if err != nil {
		return 0, err
	}
	t.leaves = append(t.leaves, nil)
	if len(t.levels) == 0 {
		t.levels = append(t.levels, []*node{n})
		return 0, nil
	}
	t.levels[0] = append(t.levels[0], n)
	// Extend each interior level to cover the one below; add levels
	// until the top holds a single node.
	for l := 1; ; l++ {
		below := len(t.levels[l-1])
		if below == 1 {
			break
		}
		needed := (below + t.fanout - 1) / t.fanout
		if l == len(t.levels) {
			t.levels = append(t.levels, nil)
		}
		for len(t.levels[l]) < needed {
			in, err := newNode()
			if err != nil {
				return 0, err
			}
			t.levels[l] = append(t.levels[l], in)
		}
	}
	return len(t.leaves) - 1, nil
}

func newNode() (*node, error) {
	key := make([]byte, KeySize)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("groupkey: generating node key: %w", err)
	}
	return &node{key: key}, nil
}

// rotatePath freshens the key of every node on leaf li's path to the
// root and rewrites exactly the wraps those keys require: one per
// remaining leaf member and one per child of each path ancestor.
func (t *Tree) rotatePath(li int) error {
	leaf := t.levels[0][li]
	if _, err := rand.Read(leaf.key); err != nil {
		return fmt.Errorf("groupkey: rotating leaf key: %w", err)
	}
	for _, m := range t.leaves[li] {
		w, err := wrapWith(m.secret, leaf.key, wrapAAD(0, uint32(li), m.id))
		if err != nil {
			return err
		}
		m.wrap = w
		t.stats.Wraps++
		t.stats.WrapBytes += int64(len(w))
	}
	idx := li
	for l := 1; l < len(t.levels); l++ {
		idx /= t.fanout
		n := t.levels[l][idx]
		if _, err := rand.Read(n.key); err != nil {
			return fmt.Errorf("groupkey: rotating node key: %w", err)
		}
		lo := idx * t.fanout
		hi := lo + t.fanout
		if hi > len(t.levels[l-1]) {
			hi = len(t.levels[l-1])
		}
		n.childWraps = make([][]byte, hi-lo)
		for j := lo; j < hi; j++ {
			w, err := wrapWith(t.levels[l-1][j].key, n.key, wrapAAD(uint32(l), uint32(idx), uint32(j-lo)))
			if err != nil {
				return err
			}
			n.childWraps[j-lo] = w
			t.stats.Wraps++
			t.stats.WrapBytes += int64(len(w))
		}
	}
	return nil
}

// wrapAAD binds a wrap blob to its tree position so blobs cannot be
// transplanted between nodes or members.
func wrapAAD(level, index, child uint32) []byte {
	aad := make([]byte, 0, 15)
	aad = append(aad, 'g', 'k', '1')
	aad = binary.BigEndian.AppendUint32(aad, level)
	aad = binary.BigEndian.AppendUint32(aad, index)
	aad = binary.BigEndian.AppendUint32(aad, child)
	return aad
}

// wrapWith seals payload under kek with a fresh random nonce.
func wrapWith(kek, payload, aad []byte) ([]byte, error) {
	gcm, err := newGCM(kek)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, 12)
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("groupkey: generating wrap nonce: %w", err)
	}
	return gcm.Seal(nonce, nonce, payload, aad), nil
}

// unwrapWith opens a wrap blob produced by wrapWith.
func unwrapWith(kek, blob, aad []byte) ([]byte, error) {
	if len(kek) != KeySize || len(blob) != wrapLen {
		return nil, ErrUnwrap
	}
	gcm, err := newGCM(kek)
	if err != nil {
		return nil, err
	}
	out, err := gcm.Open(nil, blob[:12], blob[12:], aad)
	if err != nil {
		return nil, ErrUnwrap
	}
	return out, nil
}

func newGCM(kek []byte) (cipher.AEAD, error) {
	if len(kek) != KeySize {
		return nil, fmt.Errorf("groupkey: bad KEK length %d", len(kek))
	}
	block, err := aes.NewCipher(kek)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}
