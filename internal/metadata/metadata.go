// Package metadata defines NEXUS's cryptographically protected metadata
// objects — supernode, dirnode (with independently encrypted buckets),
// and filenode — and the three-section encrypted layout they share
// (DSN'19 §IV-A).
//
// Every object serializes to:
//
//  1. a plaintext, integrity-protected preamble (type, UUID, parent
//     UUID, version);
//  2. a cryptographic context: a fresh 128-bit body key wrapped with
//     AES-GCM-SIV under the volume rootkey, plus the body IV;
//  3. the body, encrypted with AES-128-GCM under the body key, with
//     sections (1) and (2) as additional authenticated data.
//
// A fresh body key and IV are generated on every update, so revocation
// only ever requires re-encrypting metadata, never file contents. The
// preamble's parent UUID defends against file-swapping attacks and the
// version counter against per-object rollback (§VI-C).
//
// This package is pure data + crypto: it never touches storage. Only the
// enclave (internal/enclave) holds a rootkey, so only the enclave can
// call Seal and Open.
package metadata

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"

	"nexus/internal/gcmsiv"
	"nexus/internal/serial"
	"nexus/internal/uuid"
)

// ObjType discriminates metadata objects. Enums start at one so the zero
// value is invalid.
type ObjType uint8

// Object types.
const (
	TypeSupernode ObjType = iota + 1
	TypeDirnode
	TypeFilenode
	TypeDirBucket
	// TypeFreshness is the optional volume-wide version table (the
	// §VI-C hash-tree mitigation implemented in internal/enclave).
	TypeFreshness
	// TypeRefTable is the content-addressed store's chunk
	// reference-count table (DESIGN.md §16), one per volume.
	TypeRefTable
)

func (t ObjType) String() string {
	switch t {
	case TypeSupernode:
		return "supernode"
	case TypeDirnode:
		return "dirnode"
	case TypeFilenode:
		return "filenode"
	case TypeDirBucket:
		return "dirbucket"
	case TypeFreshness:
		return "freshness"
	case TypeRefTable:
		return "reftable"
	default:
		return fmt.Sprintf("objtype(%d)", uint8(t))
	}
}

// Sizes of the fixed crypto fields.
const (
	// BodyKeySize is the per-object AES-128 key length ("a 128-bit
	// encryption key", §IV-A2).
	BodyKeySize = 16
	// RootKeySize is the volume rootkey length (AES-256 for the GCM-SIV
	// keywrap).
	RootKeySize = 32
	// ivSize and tagSize are the AES-GCM parameters.
	ivSize  = 12
	tagSize = 16

	// wrappedKeySize is the size of the GCM-SIV-wrapped body key:
	// nonce ‖ ciphertext ‖ tag.
	wrappedKeySize = gcmsiv.NonceSize + BodyKeySize + gcmsiv.TagSize

	// preambleSize is the fixed encoded preamble length:
	// magic(4) type(1) uuid(16) parent(16) version(8).
	preambleSize = 4 + 1 + 2*uuid.Size + 8

	// headerSize is everything before the body ciphertext.
	headerSize = preambleSize + wrappedKeySize + ivSize

	// magic tags the on-store format.
	magic = 0x4e585331 // "NXS1"
)

// Errors.
var (
	// ErrTampered reports that an object failed cryptographic
	// verification: wrong rootkey or modified bytes.
	ErrTampered = errors.New("metadata: object failed authentication")
	// ErrMalformed reports a structurally invalid object.
	ErrMalformed = errors.New("metadata: malformed object")
)

// Preamble is the plaintext, integrity-protected section of every object.
type Preamble struct {
	Type ObjType
	// UUID names the object on the backing store.
	UUID uuid.UUID
	// Parent is the UUID of the containing object (dirnode for entries,
	// volume supernode for the root directory), checked during traversal
	// to defeat file-swapping attacks. The supernode's parent is the nil
	// UUID.
	Parent uuid.UUID
	// Version is a monotonically increasing update counter used for
	// rollback detection.
	Version uint64
}

func (p Preamble) encode() []byte {
	w := serial.NewWriter(preambleSize)
	w.WriteUint32(magic)
	w.WriteUint8(uint8(p.Type))
	w.WriteRaw(p.UUID[:])
	w.WriteRaw(p.Parent[:])
	w.WriteUint64(p.Version)
	return w.Bytes()
}

func decodePreamble(b []byte) (Preamble, error) {
	var p Preamble
	r := serial.NewReader(b)
	if m := r.ReadUint32("magic"); m != magic {
		return p, fmt.Errorf("%w: bad magic %#x", ErrMalformed, m)
	}
	p.Type = ObjType(r.ReadUint8("obj type"))
	r.ReadRawInto(p.UUID[:], "uuid")
	r.ReadRawInto(p.Parent[:], "parent uuid")
	p.Version = r.ReadUint64("version")
	if err := r.Err(); err != nil {
		return p, err
	}
	if p.Type < TypeSupernode || p.Type > TypeRefTable {
		return p, fmt.Errorf("%w: unknown object type %d", ErrMalformed, p.Type)
	}
	return p, nil
}

// Seal encrypts body under a fresh key wrapped with rootKey and returns
// the full on-store blob. The returned blob's final 16 bytes are the
// body's GCM tag (see Tag), which dirnodes record for their buckets.
func Seal(rootKey []byte, p Preamble, body []byte) ([]byte, error) {
	if len(rootKey) != RootKeySize {
		return nil, fmt.Errorf("metadata: rootkey must be %d bytes, got %d", RootKeySize, len(rootKey))
	}

	// Fresh body key and IV on every update (§VI-A).
	bodyKey := make([]byte, BodyKeySize)
	if _, err := rand.Read(bodyKey); err != nil {
		return nil, fmt.Errorf("metadata: generating body key: %w", err)
	}
	iv := make([]byte, ivSize)
	if _, err := rand.Read(iv); err != nil {
		return nil, fmt.Errorf("metadata: generating IV: %w", err)
	}

	preamble := p.encode()

	// Wrap the body key under the rootkey. The preamble is bound in as
	// AAD so a context cannot be transplanted onto another object or
	// version.
	wrapper, err := gcmsiv.New(rootKey)
	if err != nil {
		return nil, fmt.Errorf("metadata: keywrap cipher: %w", err)
	}
	wrapNonce := make([]byte, gcmsiv.NonceSize)
	if _, err := rand.Read(wrapNonce); err != nil {
		return nil, fmt.Errorf("metadata: generating wrap nonce: %w", err)
	}
	wrapped := wrapper.Seal(wrapNonce, wrapNonce, bodyKey, preamble)
	if len(wrapped) != wrappedKeySize {
		return nil, fmt.Errorf("metadata: internal error: wrapped key %d bytes", len(wrapped))
	}

	// Encrypt the body; preamble + crypto context are AAD, so tampering
	// with any section is detected.
	block, err := aes.NewCipher(bodyKey)
	if err != nil {
		return nil, fmt.Errorf("metadata: body cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("metadata: body GCM: %w", err)
	}

	blob := make([]byte, 0, headerSize+len(body)+tagSize)
	blob = append(blob, preamble...)
	blob = append(blob, wrapped...)
	blob = append(blob, iv...)
	aad := blob[:headerSize]
	blob = gcm.Seal(blob, iv, body, aad)
	return blob, nil
}

// Open verifies and decrypts a blob produced by Seal, returning its
// preamble and plaintext body. Any modification — of preamble, crypto
// context, or ciphertext — yields ErrTampered.
func Open(rootKey, blob []byte) (Preamble, []byte, error) {
	if len(rootKey) != RootKeySize {
		return Preamble{}, nil, fmt.Errorf("metadata: rootkey must be %d bytes, got %d", RootKeySize, len(rootKey))
	}
	if len(blob) < headerSize+tagSize {
		return Preamble{}, nil, fmt.Errorf("%w: %d bytes is below minimum %d",
			ErrMalformed, len(blob), headerSize+tagSize)
	}
	p, err := decodePreamble(blob[:preambleSize])
	if err != nil {
		return Preamble{}, nil, err
	}

	wrapped := blob[preambleSize : preambleSize+wrappedKeySize]
	iv := blob[preambleSize+wrappedKeySize : headerSize]

	wrapper, err := gcmsiv.New(rootKey)
	if err != nil {
		return Preamble{}, nil, fmt.Errorf("metadata: keywrap cipher: %w", err)
	}
	bodyKey, err := wrapper.Open(nil, wrapped[:gcmsiv.NonceSize],
		wrapped[gcmsiv.NonceSize:], blob[:preambleSize])
	if err != nil {
		return Preamble{}, nil, fmt.Errorf("%w: keywrap: unwrapping body key failed", ErrTampered)
	}

	block, err := aes.NewCipher(bodyKey)
	if err != nil {
		return Preamble{}, nil, fmt.Errorf("metadata: body cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return Preamble{}, nil, fmt.Errorf("metadata: body GCM: %w", err)
	}
	body, err := gcm.Open(nil, iv, blob[headerSize:], blob[:headerSize])
	if err != nil {
		return Preamble{}, nil, fmt.Errorf("%w: body authentication failed", ErrTampered)
	}
	return p, body, nil
}

// PeekPreamble decodes only the plaintext preamble without verifying the
// object. Callers must treat the result as unauthenticated until Open
// succeeds; it exists so the untrusted layer can route objects by type.
func PeekPreamble(blob []byte) (Preamble, error) {
	if len(blob) < preambleSize {
		return Preamble{}, fmt.Errorf("%w: %d bytes is below preamble size", ErrMalformed, len(blob))
	}
	return decodePreamble(blob[:preambleSize])
}

// Tag returns the blob's trailing GCM tag. Dirnodes store their buckets'
// tags in the main object to prevent bucket-level rollback (§V-B): a
// stale bucket re-served by the storage provider will carry a tag that no
// longer matches the main dirnode's record.
func Tag(blob []byte) ([tagSize]byte, error) {
	var t [tagSize]byte
	if len(blob) < headerSize+tagSize {
		return t, fmt.Errorf("%w: blob too short for tag", ErrMalformed)
	}
	copy(t[:], blob[len(blob)-tagSize:])
	return t, nil
}

// NewRootKey generates a fresh volume rootkey. In production this runs
// inside the enclave at volume creation (§VI-B).
func NewRootKey() ([]byte, error) {
	k := make([]byte, RootKeySize)
	if _, err := rand.Read(k); err != nil {
		return nil, fmt.Errorf("metadata: generating rootkey: %w", err)
	}
	return k, nil
}
