package metadata

import (
	"bytes"
	"crypto/ed25519"
	"errors"
	"fmt"

	"nexus/internal/serial"
	"nexus/internal/uuid"
)

// OwnerUserID is the fixed user ID of the volume owner. Other users are
// assigned IDs from 2 upwards.
const OwnerUserID uint32 = 1

// maxUsers bounds the supernode user table.
const maxUsers = 64 << 10

// User binds a username and public key to the small integer ID that
// dirnode ACLs reference (DSN'19 §IV-C).
type User struct {
	ID        uint32
	Name      string
	PublicKey ed25519.PublicKey
}

// Supernode defines the context of a single NEXUS volume: the volume and
// root-directory UUIDs, the immutable owner identity, and the table of
// authorized users (§IV-A1).
type Supernode struct {
	// VolumeUUID names the volume (and this supernode object).
	VolumeUUID uuid.UUID
	// RootDir is the UUID of the root dirnode.
	RootDir uuid.UUID
	// Owner is the volume owner. The owner is immutable and holds
	// OwnerUserID.
	Owner User
	// Users are the other authorized identities, in insertion order.
	Users []User
	// NextUserID is the next ID to assign.
	NextUserID uint32
}

// Supernode errors.
var (
	// ErrUserExists reports an attempt to add a duplicate username or key.
	ErrUserExists = errors.New("metadata: user already present in supernode")
	// ErrUserNotFound reports a lookup of an unknown user.
	ErrUserNotFound = errors.New("metadata: user not found in supernode")
)

// NewSupernode creates the supernode for a fresh volume owned by the
// given identity.
func NewSupernode(ownerName string, ownerKey ed25519.PublicKey) (*Supernode, error) {
	if ownerName == "" {
		return nil, fmt.Errorf("metadata: owner name must not be empty")
	}
	if len(ownerKey) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("metadata: owner key must be %d bytes", ed25519.PublicKeySize)
	}
	return &Supernode{
		VolumeUUID: uuid.New(),
		RootDir:    uuid.New(),
		Owner: User{
			ID:        OwnerUserID,
			Name:      ownerName,
			PublicKey: bytes.Clone(ownerKey),
		},
		NextUserID: OwnerUserID + 1,
	}, nil
}

// AddUser grants a new identity access to the volume and returns its
// assigned user ID. Usernames and keys must be unique.
func (s *Supernode) AddUser(name string, key ed25519.PublicKey) (uint32, error) {
	if name == "" {
		return 0, fmt.Errorf("metadata: username must not be empty")
	}
	if len(key) != ed25519.PublicKeySize {
		return 0, fmt.Errorf("metadata: user key must be %d bytes", ed25519.PublicKeySize)
	}
	if s.Owner.Name == name || bytes.Equal(s.Owner.PublicKey, key) {
		return 0, fmt.Errorf("%w: %s (owner)", ErrUserExists, name)
	}
	for _, u := range s.Users {
		if u.Name == name || bytes.Equal(u.PublicKey, key) {
			return 0, fmt.Errorf("%w: %s", ErrUserExists, name)
		}
	}
	id := s.NextUserID
	s.NextUserID++
	s.Users = append(s.Users, User{ID: id, Name: name, PublicKey: bytes.Clone(key)})
	return id, nil
}

// RemoveUser revokes a user by name, returning their former ID. The
// owner cannot be removed.
func (s *Supernode) RemoveUser(name string) (uint32, error) {
	if name == s.Owner.Name {
		return 0, fmt.Errorf("metadata: the volume owner cannot be removed")
	}
	for i, u := range s.Users {
		if u.Name == name {
			s.Users = append(s.Users[:i], s.Users[i+1:]...)
			return u.ID, nil
		}
	}
	return 0, fmt.Errorf("%w: %s", ErrUserNotFound, name)
}

// FindUserByKey returns the user entry whose public key matches,
// including the owner.
func (s *Supernode) FindUserByKey(key ed25519.PublicKey) (User, error) {
	if bytes.Equal(s.Owner.PublicKey, key) {
		return s.Owner, nil
	}
	for _, u := range s.Users {
		if bytes.Equal(u.PublicKey, key) {
			return u, nil
		}
	}
	return User{}, fmt.Errorf("%w: by public key", ErrUserNotFound)
}

// FindUserByName returns the user entry with the given name, including
// the owner.
func (s *Supernode) FindUserByName(name string) (User, error) {
	if s.Owner.Name == name {
		return s.Owner, nil
	}
	for _, u := range s.Users {
		if u.Name == name {
			return u, nil
		}
	}
	return User{}, fmt.Errorf("%w: %s", ErrUserNotFound, name)
}

// EncodeBody serializes the supernode body for Seal.
func (s *Supernode) EncodeBody() []byte {
	w := serial.NewWriter(128 + 64*len(s.Users))
	w.WriteRaw(s.VolumeUUID[:])
	w.WriteRaw(s.RootDir[:])
	encodeUser(w, s.Owner)
	w.WriteUint32(uint32(len(s.Users)))
	for _, u := range s.Users {
		encodeUser(w, u)
	}
	w.WriteUint32(s.NextUserID)
	return w.Bytes()
}

// DecodeSupernodeBody parses a body produced by EncodeBody.
func DecodeSupernodeBody(body []byte) (*Supernode, error) {
	r := serial.NewReader(body)
	var s Supernode
	r.ReadRawInto(s.VolumeUUID[:], "volume uuid")
	r.ReadRawInto(s.RootDir[:], "root dir uuid")
	s.Owner = decodeUser(r)
	n := r.ReadCount(maxUsers, "user count")
	if n > 0 {
		s.Users = make([]User, 0, n)
	}
	for i := 0; i < n; i++ {
		s.Users = append(s.Users, decodeUser(r))
	}
	s.NextUserID = r.ReadUint32("next user id")
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("decoding supernode: %w", err)
	}
	return &s, nil
}

func encodeUser(w *serial.Writer, u User) {
	w.WriteUint32(u.ID)
	w.WriteString(u.Name)
	w.WriteBytes(u.PublicKey)
}

func decodeUser(r *serial.Reader) User {
	u := User{ID: r.ReadUint32("user id")}
	u.Name = r.ReadString(256, "user name")
	u.PublicKey = ed25519.PublicKey(r.ReadBytes(ed25519.PublicKeySize, "user public key"))
	return u
}
