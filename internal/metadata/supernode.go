package metadata

import (
	"bytes"
	"crypto/ed25519"
	"errors"
	"fmt"

	"nexus/internal/acl"
	"nexus/internal/groupkey"
	"nexus/internal/serial"
	"nexus/internal/uuid"
)

// OwnerUserID is the fixed user ID of the volume owner. Other users are
// assigned IDs from 2 upwards.
const OwnerUserID uint32 = 1

// maxUsers bounds the supernode user table.
const maxUsers = 64 << 10

// supernodeExtGroupTree tags the optional trailing extension carrying a
// serialized membership key tree. Pre-groupkey supernode bodies simply
// end after NextUserID; the tag keeps future extensions distinguishable.
const supernodeExtGroupTree uint8 = 1

// User binds a username and public key to the small integer ID that
// dirnode ACLs reference (DSN'19 §IV-C).
type User struct {
	ID        uint32
	Name      string
	PublicKey ed25519.PublicKey
}

// Supernode defines the context of a single NEXUS volume: the volume and
// root-directory UUIDs, the immutable owner identity, and the table of
// authorized users (§IV-A1).
type Supernode struct {
	// VolumeUUID names the volume (and this supernode object).
	VolumeUUID uuid.UUID
	// RootDir is the UUID of the root dirnode.
	RootDir uuid.UUID
	// Owner is the volume owner. The owner is immutable and holds
	// OwnerUserID.
	Owner User
	// Users are the other authorized identities, in insertion order.
	Users []User
	// NextUserID is the next ID to assign.
	NextUserID uint32
	// GroupTree is the subgroup key tree over the volume membership
	// (nil on volumes created before the tree existed, or when the
	// group-key knob is off). It serializes as a versioned trailing
	// extension so old volumes load unchanged.
	GroupTree *groupkey.Tree

	// byName, byPubKey and byID index Users by name, string(PublicKey)
	// and ID to slice positions. They are built lazily (nil until the
	// first lookup after a mutation or decode) so direct struct literals
	// in existing callers and tests keep working.
	byName   map[string]int
	byPubKey map[string]int
	byID     map[uint32]int
}

// Supernode errors.
var (
	// ErrUserExists reports an attempt to add a duplicate username or key.
	ErrUserExists = errors.New("metadata: user already present in supernode")
	// ErrUserNotFound reports a lookup of an unknown user.
	ErrUserNotFound = errors.New("metadata: user not found in supernode")
	// ErrUserTableFull reports that the supernode user table is at
	// maxUsers capacity.
	ErrUserTableFull = errors.New("metadata: supernode user table full")
)

// NewSupernode creates the supernode for a fresh volume owned by the
// given identity.
func NewSupernode(ownerName string, ownerKey ed25519.PublicKey) (*Supernode, error) {
	if ownerName == "" {
		return nil, fmt.Errorf("metadata: owner name must not be empty")
	}
	if len(ownerKey) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("metadata: owner key must be %d bytes", ed25519.PublicKeySize)
	}
	return &Supernode{
		VolumeUUID: uuid.New(),
		RootDir:    uuid.New(),
		Owner: User{
			ID:        OwnerUserID,
			Name:      ownerName,
			PublicKey: bytes.Clone(ownerKey),
		},
		NextUserID: OwnerUserID + 1,
	}, nil
}

// ensureIndex builds the lazy lookup maps. Mutations invalidate by
// setting them nil; the next lookup rebuilds in one O(n) pass, after
// which FindUserByName/FindUserByKey are O(1).
func (s *Supernode) ensureIndex() {
	if s.byName != nil {
		return
	}
	s.byName = make(map[string]int, len(s.Users))
	s.byPubKey = make(map[string]int, len(s.Users))
	s.byID = make(map[uint32]int, len(s.Users))
	for i, u := range s.Users {
		s.byName[u.Name] = i
		s.byPubKey[string(u.PublicKey)] = i
		s.byID[u.ID] = i
	}
}

func (s *Supernode) invalidateIndex() {
	s.byName = nil
	s.byPubKey = nil
	s.byID = nil
}

// AddUser grants a new identity access to the volume and returns its
// assigned user ID. Usernames and keys must be unique, the table is
// capped at maxUsers, and assigned IDs stay below acl.GroupIDFlag so
// dirnode ACL entries can carry group grants in the high bit.
func (s *Supernode) AddUser(name string, key ed25519.PublicKey) (uint32, error) {
	if name == "" {
		return 0, fmt.Errorf("metadata: username must not be empty")
	}
	if len(key) != ed25519.PublicKeySize {
		return 0, fmt.Errorf("metadata: user key must be %d bytes", ed25519.PublicKeySize)
	}
	if s.Owner.Name == name || bytes.Equal(s.Owner.PublicKey, key) {
		return 0, fmt.Errorf("%w: %s (owner)", ErrUserExists, name)
	}
	if len(s.Users) >= maxUsers-1 { // the owner occupies one slot
		return 0, fmt.Errorf("%w: %d users", ErrUserTableFull, maxUsers)
	}
	s.ensureIndex()
	if _, ok := s.byName[name]; ok {
		return 0, fmt.Errorf("%w: %s", ErrUserExists, name)
	}
	if _, ok := s.byPubKey[string(key)]; ok {
		return 0, fmt.Errorf("%w: %s", ErrUserExists, name)
	}
	if s.NextUserID >= acl.GroupIDFlag {
		return 0, fmt.Errorf("metadata: user ID space exhausted")
	}
	id := s.NextUserID
	s.NextUserID++
	s.byName[name] = len(s.Users)
	s.byPubKey[string(key)] = len(s.Users)
	s.byID[id] = len(s.Users)
	s.Users = append(s.Users, User{ID: id, Name: name, PublicKey: bytes.Clone(key)})
	return id, nil
}

// FindUserByID returns the user entry with the given ID, including the
// owner. O(1) via the lazy index.
func (s *Supernode) FindUserByID(id uint32) (User, error) {
	if id == s.Owner.ID {
		return s.Owner, nil
	}
	s.ensureIndex()
	if i, ok := s.byID[id]; ok {
		return s.Users[i], nil
	}
	return User{}, fmt.Errorf("%w: id %d", ErrUserNotFound, id)
}

// RemoveUser revokes a user by name, returning their former ID. The
// owner cannot be removed.
func (s *Supernode) RemoveUser(name string) (uint32, error) {
	if name == s.Owner.Name {
		return 0, fmt.Errorf("metadata: the volume owner cannot be removed")
	}
	s.ensureIndex()
	i, ok := s.byName[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUserNotFound, name)
	}
	id := s.Users[i].ID
	s.Users = append(s.Users[:i], s.Users[i+1:]...)
	s.invalidateIndex() // positions after i shifted
	return id, nil
}

// FindUserByKey returns the user entry whose public key matches,
// including the owner. O(1) via the lazy index.
func (s *Supernode) FindUserByKey(key ed25519.PublicKey) (User, error) {
	if bytes.Equal(s.Owner.PublicKey, key) {
		return s.Owner, nil
	}
	s.ensureIndex()
	if i, ok := s.byPubKey[string(key)]; ok {
		return s.Users[i], nil
	}
	return User{}, fmt.Errorf("%w: by public key", ErrUserNotFound)
}

// FindUserByName returns the user entry with the given name, including
// the owner. O(1) via the lazy index.
func (s *Supernode) FindUserByName(name string) (User, error) {
	if s.Owner.Name == name {
		return s.Owner, nil
	}
	s.ensureIndex()
	if i, ok := s.byName[name]; ok {
		return s.Users[i], nil
	}
	return User{}, fmt.Errorf("%w: %s", ErrUserNotFound, name)
}

// EncodeBody serializes the supernode body for Seal.
func (s *Supernode) EncodeBody() []byte {
	w := serial.NewWriter(128 + 64*len(s.Users))
	w.WriteRaw(s.VolumeUUID[:])
	w.WriteRaw(s.RootDir[:])
	encodeUser(w, s.Owner)
	w.WriteUint32(uint32(len(s.Users)))
	for _, u := range s.Users {
		encodeUser(w, u)
	}
	w.WriteUint32(s.NextUserID)
	if s.GroupTree != nil {
		// Versioned trailing extension: tag + length-prefixed tree.
		w.WriteUint8(supernodeExtGroupTree)
		w.WriteBytes(s.GroupTree.Encode())
	}
	return w.Bytes()
}

// DecodeSupernodeBody parses a body produced by EncodeBody, accepting
// both the legacy layout (body ends after NextUserID) and the extended
// layout carrying a group key tree.
func DecodeSupernodeBody(body []byte) (*Supernode, error) {
	r := serial.NewReader(body)
	var s Supernode
	r.ReadRawInto(s.VolumeUUID[:], "volume uuid")
	r.ReadRawInto(s.RootDir[:], "root dir uuid")
	s.Owner = decodeUser(r)
	n := r.ReadCount(maxUsers, "user count")
	if n > 0 {
		s.Users = make([]User, 0, n)
	}
	for i := 0; i < n; i++ {
		s.Users = append(s.Users, decodeUser(r))
	}
	s.NextUserID = r.ReadUint32("next user id")
	if r.Err() == nil && r.Remaining() > 0 {
		switch tag := r.ReadUint8("supernode extension tag"); tag {
		case supernodeExtGroupTree:
			blob := r.ReadBytes(1<<30, "group tree blob")
			if r.Err() == nil {
				tree, err := groupkey.DecodeTree(blob)
				if err != nil {
					return nil, fmt.Errorf("decoding supernode group tree: %w", err)
				}
				s.GroupTree = tree
			}
		default:
			return nil, fmt.Errorf("decoding supernode: unknown extension tag %d", tag)
		}
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("decoding supernode: %w", err)
	}
	return &s, nil
}

func encodeUser(w *serial.Writer, u User) {
	w.WriteUint32(u.ID)
	w.WriteString(u.Name)
	w.WriteBytes(u.PublicKey)
}

func decodeUser(r *serial.Reader) User {
	u := User{ID: r.ReadUint32("user id")}
	u.Name = r.ReadString(256, "user name")
	u.PublicKey = ed25519.PublicKey(r.ReadBytes(ed25519.PublicKeySize, "user public key"))
	return u
}
