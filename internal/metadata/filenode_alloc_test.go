//go:build !race

package metadata

import (
	"runtime"
	"testing"

	"nexus/internal/uuid"
)

// allocBudget is the steady-state heap-allocation ceiling per
// encrypt/decrypt call at every worker width (ISSUE 8 acceptance
// criterion: ≤8). The real count is ~5: the output buffer, the AES
// block + GCM wrapper for the per-update content key, and the two
// fan-out objects (rangeRun + span closure); key/IV scratch and AAD
// tables are pooled or filenode-cached.
const allocBudget = 8

// TestChunkCryptoAllocBudget pins allocs/op for the batch APIs.
// AllocsPerRun forces GOMAXPROCS to 1 for the measurement, so it can
// only exercise the serial path; the parallel widths go through
// testing.Benchmark, whose AllocsPerOp averages over enough iterations
// to amortize pool warm-up and goroutine stack growth.
func TestChunkCryptoAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	const size = 256 << 10 // 16 chunks of 16 KiB, above the serial cutoff
	f := NewFilenode(uuid.New(), uuid.Nil, 16<<10)
	pt := make([]byte, size)

	// Serial path via AllocsPerRun (warm the pools first).
	if _, err := f.EncryptContentWorkers(pt, 1); err != nil {
		t.Fatal(err)
	}
	encAllocs := testing.AllocsPerRun(20, func() {
		if _, err := f.EncryptContentWorkers(pt, 1); err != nil {
			t.Fatal(err)
		}
	})
	if encAllocs > allocBudget {
		t.Errorf("encrypt w=1: %.1f allocs/op, budget %d", encAllocs, allocBudget)
	}
	blob, err := f.EncryptContentWorkers(pt, 1)
	if err != nil {
		t.Fatal(err)
	}
	decAllocs := testing.AllocsPerRun(20, func() {
		if _, err := f.DecryptContentWorkers(blob, 1); err != nil {
			t.Fatal(err)
		}
	})
	if decAllocs > allocBudget {
		t.Errorf("decrypt w=1: %.1f allocs/op, budget %d", decAllocs, allocBudget)
	}

	// Parallel widths via testing.Benchmark.
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	for _, w := range []int{2, 4, 8} {
		w := w
		enc := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := f.EncryptContentWorkers(pt, w); err != nil {
					b.Fatal(err)
				}
			}
		})
		if got := enc.AllocsPerOp(); got > allocBudget {
			t.Errorf("encrypt w=%d: %d allocs/op, budget %d", w, got, allocBudget)
		}
		blob, err := f.EncryptContentWorkers(pt, w)
		if err != nil {
			t.Fatal(err)
		}
		dec := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := f.DecryptContentWorkers(blob, w); err != nil {
					b.Fatal(err)
				}
			}
		})
		if got := dec.AllocsPerOp(); got > allocBudget {
			t.Errorf("decrypt w=%d: %d allocs/op, budget %d", w, got, allocBudget)
		}
	}
}

// TestChunkCryptoIntoAllocFree pins the caller-owned-buffer variants at
// (near) zero steady-state allocations on the serial path: with dst
// supplied, the only per-op heap objects are the AEAD construction.
func TestChunkCryptoIntoAllocFree(t *testing.T) {
	const size = 64 << 10
	f := NewFilenode(uuid.New(), uuid.Nil, 16<<10)
	pt := make([]byte, size)
	dst := make([]byte, 0, f.SealedSize(size))
	out := make([]byte, 0, size)
	sealed, err := f.EncryptContentInto(dst, pt, 1)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		var err error
		sealed, err = f.EncryptContentInto(dst, pt, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.DecryptContentInto(out, sealed, 1); err != nil {
			t.Fatal(err)
		}
	})
	// One encrypt + one decrypt: two AEAD constructions. Give the
	// toolchain headroom but stay far under one alloc per chunk.
	if allocs > 6 {
		t.Errorf("Into round trip: %.1f allocs/op, want <= 6", allocs)
	}
}
