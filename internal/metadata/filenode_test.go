package metadata

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
	"testing/quick"

	"nexus/internal/uuid"
)

func TestFilenodeEncryptDecryptRoundTrip(t *testing.T) {
	for _, size := range []int{0, 1, 100, 1024, 4096, 5000} {
		f := NewFilenode(uuid.New(), uuid.New(), 1024)
		pt := make([]byte, size)
		if _, err := rand.Read(pt); err != nil {
			t.Fatal(err)
		}
		blob, err := f.EncryptContent(pt)
		if err != nil {
			t.Fatalf("size %d: EncryptContent: %v", size, err)
		}
		wantChunks := (size + 1023) / 1024
		if len(blob) != size+wantChunks*16 {
			t.Fatalf("size %d: sealed blob %d bytes, want %d (ciphertext + inline tag per chunk)",
				size, len(blob), size+wantChunks*16)
		}
		// A 1-byte ciphertext can coincide with its plaintext by chance
		// (p=1/256); only assert divergence where coincidence is
		// cryptographically negligible.
		if size >= 16 && bytes.Equal(blob[:size], pt) {
			t.Fatal("ciphertext equals plaintext")
		}
		if len(f.Chunks) != wantChunks || f.NumChunks() != wantChunks {
			t.Fatalf("size %d: chunks = %d, want %d", size, len(f.Chunks), wantChunks)
		}
		got, err := f.DecryptContent(blob)
		if err != nil {
			t.Fatalf("size %d: DecryptContent: %v", size, err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
	}
}

func TestFilenodeFreshKeysPerUpdate(t *testing.T) {
	f := NewFilenode(uuid.New(), uuid.Nil, 1024)
	pt := bytes.Repeat([]byte{7}, 2048)
	if _, err := f.EncryptContent(pt); err != nil {
		t.Fatal(err)
	}
	firstKey := f.ContentKey
	firstCtx := make([]ChunkContext, len(f.Chunks))
	copy(firstCtx, f.Chunks)
	if _, err := f.EncryptContent(pt); err != nil {
		t.Fatal(err)
	}
	if f.ContentKey == firstKey {
		t.Fatal("content key reused across updates")
	}
	for i := range f.Chunks {
		if f.Chunks[i].IV == firstCtx[i].IV {
			t.Fatalf("chunk %d IV reused across updates", i)
		}
	}
}

func TestFilenodeChunkSwapDetected(t *testing.T) {
	f := NewFilenode(uuid.New(), uuid.Nil, 16)
	pt := bytes.Repeat([]byte{1}, 48) // 3 chunks; sealed stride 32
	blob, err := f.EncryptContent(pt)
	if err != nil {
		t.Fatal(err)
	}
	// Swap sealed chunks 0 and 1 in the data object AND their contexts —
	// the position is bound via AAD, so even a consistent swap fails.
	swapped := bytes.Clone(blob)
	copy(swapped[0:32], blob[32:64])
	copy(swapped[32:64], blob[0:32])
	f.Chunks[0], f.Chunks[1] = f.Chunks[1], f.Chunks[0]
	if _, err := f.DecryptContent(swapped); !errors.Is(err, ErrTampered) {
		t.Fatalf("chunk swap accepted: %v", err)
	}
}

func TestFilenodeTamperAndTruncationDetected(t *testing.T) {
	f := NewFilenode(uuid.New(), uuid.Nil, 32)
	pt := bytes.Repeat([]byte{3}, 100)
	blob, err := f.EncryptContent(pt)
	if err != nil {
		t.Fatal(err)
	}
	mut := bytes.Clone(blob)
	mut[50] ^= 1
	if _, err := f.DecryptContent(mut); !errors.Is(err, ErrTampered) {
		t.Fatalf("ciphertext flip accepted: %v", err)
	}
	if _, err := f.DecryptContent(blob[:len(blob)-1]); !errors.Is(err, ErrTampered) {
		t.Fatalf("truncation accepted: %v", err)
	}
	if _, err := f.DecryptContent(append(bytes.Clone(blob), 0)); !errors.Is(err, ErrTampered) {
		t.Fatalf("extension accepted: %v", err)
	}
	// Flipping an inline tag byte must fail even though the ciphertext
	// bytes are intact.
	tagFlip := bytes.Clone(blob)
	tagFlip[32+16-1] ^= 1 // last tag byte of chunk 0
	if _, err := f.DecryptContent(tagFlip); !errors.Is(err, ErrTampered) {
		t.Fatalf("inline tag flip accepted: %v", err)
	}
}

func TestFilenodeCrossFileTransplantDetected(t *testing.T) {
	// Data encrypted for one file must not decrypt under another file's
	// filenode even if the full crypto context is copied (AAD binds the
	// data UUID).
	f1 := NewFilenode(uuid.New(), uuid.Nil, 64)
	f2 := NewFilenode(uuid.New(), uuid.Nil, 64)
	pt := bytes.Repeat([]byte{5}, 64)
	blob, err := f1.EncryptContent(pt)
	if err != nil {
		t.Fatal(err)
	}
	f2.Size = f1.Size
	f2.ContentKey = f1.ContentKey
	f2.Chunks = append([]ChunkContext(nil), f1.Chunks...)
	if _, err := f2.DecryptContent(blob); !errors.Is(err, ErrTampered) {
		t.Fatalf("cross-file transplant accepted: %v", err)
	}
}

func TestFilenodeEncodeDecode(t *testing.T) {
	f := NewFilenode(uuid.New(), uuid.New(), 1<<20)
	f.LinkCount = 3
	pt := bytes.Repeat([]byte{9}, 3<<20)
	if _, err := f.EncryptContent(pt); err != nil {
		t.Fatal(err)
	}

	got, err := DecodeFilenodeBody(f.UUID, f.Parent, f.EncodeBody())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.DataUUID != f.DataUUID || got.Size != f.Size ||
		got.ChunkSize != f.ChunkSize || got.LinkCount != 3 {
		t.Fatalf("fields lost: %+v", got)
	}
	if got.ContentKey != f.ContentKey {
		t.Fatal("content key lost")
	}
	if len(got.Chunks) != 3 {
		t.Fatalf("chunks = %d", len(got.Chunks))
	}
	for i := range f.Chunks {
		if got.Chunks[i] != f.Chunks[i] {
			t.Fatalf("chunk %d context lost", i)
		}
	}
	if _, err := DecodeFilenodeBody(f.UUID, f.Parent, f.EncodeBody()[:20]); err == nil {
		t.Fatal("truncated filenode accepted")
	}
	// A decoded filenode must decrypt what the original sealed (the AAD
	// cache is rebuilt, not serialized).
	blob, err := f.EncryptContent(pt)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeFilenodeBody(f.UUID, f.Parent, f.EncodeBody())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := got.DecryptContent(blob)
	if err != nil {
		t.Fatalf("decoded filenode cannot decrypt: %v", err)
	}
	if !bytes.Equal(rt, pt) {
		t.Fatal("decoded filenode round trip mismatch")
	}
}

func TestFilenodeMetadataOverhead(t *testing.T) {
	f := NewFilenode(uuid.New(), uuid.Nil, 1<<20)
	pt := make([]byte, 10<<20) // 10 chunks
	if _, err := f.EncryptContent(pt); err != nil {
		t.Fatal(err)
	}
	// One 16-byte content key per update plus 28 bytes (IV+tag) per
	// 1 MiB chunk.
	if got := f.MetadataOverhead(); got != 16+10*28 {
		t.Fatalf("MetadataOverhead = %d, want %d", got, 16+10*28)
	}
}

func TestFilenodeIntoBufferTooSmall(t *testing.T) {
	f := NewFilenode(uuid.New(), uuid.Nil, 1024)
	pt := make([]byte, 4096)
	if _, err := f.EncryptContentInto(make([]byte, 0, 10), pt, 1); err == nil {
		t.Fatal("undersized encrypt destination accepted")
	}
	blob, err := f.EncryptContent(pt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.DecryptContentInto(make([]byte, 0, 10), blob, 1); err == nil {
		t.Fatal("undersized decrypt destination accepted")
	}
	// And a correctly sized caller-owned buffer round-trips.
	dst := make([]byte, 0, f.SealedSize(len(pt)))
	sealed, err := f.EncryptContentInto(dst, pt, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 0, len(pt))
	got, err := f.DecryptContentInto(out, sealed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("Into round trip mismatch")
	}
}

func TestQuickFilenodeRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		fn := NewFilenode(uuid.New(), uuid.Nil, 256)
		blob, err := fn.EncryptContent(data)
		if err != nil {
			return false
		}
		got, err := fn.DecryptContent(blob)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
