package metadata

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"nexus/internal/acl"
	"nexus/internal/uuid"
)

// noLoad is a bucketLoader for dirnodes whose buckets are all resident.
func noLoad(i int) (*Bucket, error) {
	return nil, fmt.Errorf("unexpected bucket load of index %d", i)
}

func TestDirnodeInsertLookupRemove(t *testing.T) {
	d := NewDirnode(uuid.New(), uuid.New(), 4)

	e1 := DirEntry{Name: "a.txt", UUID: uuid.New(), Kind: KindFile}
	e2 := DirEntry{Name: "docs", UUID: uuid.New(), Kind: KindDir}
	if err := d.Insert(e1, noLoad); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := d.Insert(e2, noLoad); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := d.Insert(DirEntry{Name: "a.txt", UUID: uuid.New(), Kind: KindFile}, noLoad); !errors.Is(err, ErrEntryExists) {
		t.Fatalf("duplicate insert = %v", err)
	}

	got, err := d.Lookup("docs", noLoad)
	if err != nil || got.UUID != e2.UUID || got.Kind != KindDir {
		t.Fatalf("Lookup(docs) = %+v, %v", got, err)
	}
	if _, err := d.Lookup("missing", noLoad); !errors.Is(err, ErrEntryNotFound) {
		t.Fatalf("Lookup(missing) = %v", err)
	}

	all, err := d.List(noLoad)
	if err != nil || len(all) != 2 {
		t.Fatalf("List = %v, %v", all, err)
	}
	if d.EntryCount() != 2 {
		t.Fatalf("EntryCount = %d", d.EntryCount())
	}

	removed, err := d.Remove("a.txt", noLoad)
	if err != nil || removed.UUID != e1.UUID {
		t.Fatalf("Remove = %+v, %v", removed, err)
	}
	if _, err := d.Remove("a.txt", noLoad); !errors.Is(err, ErrEntryNotFound) {
		t.Fatalf("double remove = %v", err)
	}
	if d.EntryCount() != 1 {
		t.Fatalf("EntryCount after remove = %d", d.EntryCount())
	}
}

func TestDirnodeBucketSplitting(t *testing.T) {
	const bucketSize = 4
	d := NewDirnode(uuid.New(), uuid.Nil, bucketSize)
	for i := 0; i < 10; i++ {
		e := DirEntry{Name: fmt.Sprintf("f%02d", i), UUID: uuid.New(), Kind: KindFile}
		if err := d.Insert(e, noLoad); err != nil {
			t.Fatal(err)
		}
	}
	// 10 entries at 4 per bucket = 3 buckets.
	if len(d.Refs) != 3 {
		t.Fatalf("bucket count = %d, want 3", len(d.Refs))
	}
	if d.Refs[0].Count != 4 || d.Refs[1].Count != 4 || d.Refs[2].Count != 2 {
		t.Fatalf("bucket counts = %v", []uint32{d.Refs[0].Count, d.Refs[1].Count, d.Refs[2].Count})
	}
	// Removing from bucket 0 leaves a slot that the next insert reuses
	// (first non-full bucket wins).
	if _, err := d.Remove("f00", noLoad); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(DirEntry{Name: "new", UUID: uuid.New(), Kind: KindFile}, noLoad); err != nil {
		t.Fatal(err)
	}
	if d.Refs[0].Count != 4 || len(d.Refs) != 3 {
		t.Fatalf("slot not reused: counts %v", d.Refs)
	}
}

func TestDirnodeDirtyTracking(t *testing.T) {
	d := NewDirnode(uuid.New(), uuid.Nil, 2)
	for i := 0; i < 6; i++ {
		if err := d.Insert(DirEntry{Name: fmt.Sprintf("f%d", i), UUID: uuid.New(), Kind: KindFile}, noLoad); err != nil {
			t.Fatal(err)
		}
	}
	// All three buckets were created dirty; clean them.
	for _, b := range d.Buckets {
		b.Dirty = false
	}
	if got := d.DirtyBuckets(); len(got) != 0 {
		t.Fatalf("DirtyBuckets after clean = %v", got)
	}
	// Touch only the middle bucket (f2 or f3 lives there).
	if _, err := d.Remove("f2", noLoad); err != nil {
		t.Fatal(err)
	}
	if got := d.DirtyBuckets(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DirtyBuckets = %v, want [1]", got)
	}
}

func TestDirnodeEncodeDecode(t *testing.T) {
	d := NewDirnode(uuid.New(), uuid.New(), 128)
	d.ACL.Set(2, acl.ReadOnly)
	d.ACL.Set(3, acl.ReadWrite)
	d.Refs = []BucketRef{
		{UUID: uuid.New(), Count: 5, MAC: [16]byte{1, 2, 3}},
		{UUID: uuid.New(), Count: 2, MAC: [16]byte{9}},
	}

	got, err := DecodeDirnodeBody(d.UUID, d.Parent, d.EncodeBody())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.UUID != d.UUID || got.Parent != d.Parent || got.BucketSize != 128 {
		t.Fatal("header fields lost")
	}
	if got.ACL.Get(2) != acl.ReadOnly || got.ACL.Get(3) != acl.ReadWrite {
		t.Fatal("ACL lost")
	}
	if len(got.Refs) != 2 || got.Refs[0] != d.Refs[0] || got.Refs[1] != d.Refs[1] {
		t.Fatalf("refs lost: %+v", got.Refs)
	}
	if len(got.Buckets) != 2 {
		t.Fatalf("bucket slots = %d", len(got.Buckets))
	}
	if _, err := DecodeDirnodeBody(d.UUID, d.Parent, d.EncodeBody()[:3]); err == nil {
		t.Fatal("truncated dirnode accepted")
	}
}

func TestBucketEncodeDecode(t *testing.T) {
	b := &Bucket{
		UUID: uuid.New(),
		Entries: []DirEntry{
			{Name: "file", UUID: uuid.New(), Kind: KindFile},
			{Name: "link", UUID: uuid.New(), Kind: KindSymlink, SymlinkTarget: "../target"},
			{Name: "dir", UUID: uuid.New(), Kind: KindDir},
		},
	}
	got, err := DecodeBucketBody(b.EncodeBody())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.Entries) != 3 {
		t.Fatalf("entries = %d", len(got.Entries))
	}
	for i := range b.Entries {
		if got.Entries[i] != b.Entries[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got.Entries[i], b.Entries[i])
		}
	}
	// Invalid kind rejected.
	raw := b.EncodeBody()
	// Corrupt the first entry's kind byte: count(4) + namelen(4) + "file"(4) + uuid(16) = offset 28.
	raw[28] = 99
	if _, err := DecodeBucketBody(raw); err == nil {
		t.Fatal("invalid entry kind accepted")
	}
}

func TestDirnodeLazyBucketLoading(t *testing.T) {
	// Encode a dirnode with two buckets, then decode and access it with a
	// loader that serves sealed buckets, counting loads.
	rk, err := NewRootKey()
	if err != nil {
		t.Fatal(err)
	}
	d := NewDirnode(uuid.New(), uuid.Nil, 2)
	for i := 0; i < 4; i++ {
		if err := d.Insert(DirEntry{Name: fmt.Sprintf("f%d", i), UUID: uuid.New(), Kind: KindFile}, noLoad); err != nil {
			t.Fatal(err)
		}
	}
	// Seal each bucket and record tags.
	sealedBuckets := make(map[uuid.UUID][]byte)
	for i, b := range d.Buckets {
		blob, err := Seal(rk, Preamble{Type: TypeDirBucket, UUID: b.UUID, Parent: d.UUID, Version: 1}, b.EncodeBody())
		if err != nil {
			t.Fatal(err)
		}
		tag, err := Tag(blob)
		if err != nil {
			t.Fatal(err)
		}
		d.Refs[i].MAC = tag
		sealedBuckets[b.UUID] = blob
	}

	got, err := DecodeDirnodeBody(d.UUID, d.Parent, d.EncodeBody())
	if err != nil {
		t.Fatal(err)
	}
	loads := 0
	loader := func(i int) (*Bucket, error) {
		loads++
		blob := sealedBuckets[got.Refs[i].UUID]
		tag, err := Tag(blob)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(tag[:], got.Refs[i].MAC[:]) {
			return nil, ErrBucketMACMismatch
		}
		_, body, err := Open(rk, blob)
		if err != nil {
			return nil, err
		}
		return DecodeBucketBody(body)
	}

	// f0 lives in bucket 0: a lookup loads one bucket only.
	if _, err := got.Lookup("f0", loader); err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if loads != 1 {
		t.Fatalf("loads after first lookup = %d, want 1", loads)
	}
	// A second lookup of the same bucket is served from memory.
	if _, err := got.Lookup("f1", loader); err != nil {
		t.Fatal(err)
	}
	if loads != 1 {
		t.Fatalf("loads after cached lookup = %d, want 1", loads)
	}
	// Listing loads the remaining bucket.
	if _, err := got.List(loader); err != nil {
		t.Fatal(err)
	}
	if loads != 2 {
		t.Fatalf("loads after List = %d, want 2", loads)
	}
}

func TestBucketMACMismatchDetected(t *testing.T) {
	// Simulates a rollback: the server re-serves an older sealed bucket.
	rk, err := NewRootKey()
	if err != nil {
		t.Fatal(err)
	}
	d := NewDirnode(uuid.New(), uuid.Nil, 8)
	if err := d.Insert(DirEntry{Name: "old", UUID: uuid.New(), Kind: KindFile}, noLoad); err != nil {
		t.Fatal(err)
	}
	b := d.Buckets[0]
	oldBlob, err := Seal(rk, Preamble{Type: TypeDirBucket, UUID: b.UUID, Parent: d.UUID, Version: 1}, b.EncodeBody())
	if err != nil {
		t.Fatal(err)
	}

	// Directory is updated: new entry, new seal, main dirnode records the
	// new tag.
	if err := d.Insert(DirEntry{Name: "new", UUID: uuid.New(), Kind: KindFile}, noLoad); err != nil {
		t.Fatal(err)
	}
	newBlob, err := Seal(rk, Preamble{Type: TypeDirBucket, UUID: b.UUID, Parent: d.UUID, Version: 2}, b.EncodeBody())
	if err != nil {
		t.Fatal(err)
	}
	newTag, err := Tag(newBlob)
	if err != nil {
		t.Fatal(err)
	}
	d.Refs[0].MAC = newTag

	// The loader is handed the OLD blob: tag comparison must fail.
	oldTag, err := Tag(oldBlob)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(oldTag[:], d.Refs[0].MAC[:]) {
		t.Fatal("old and new bucket tags are identical")
	}
}
