package metadata

import (
	"fmt"
	"testing"

	"nexus/internal/uuid"
)

func BenchmarkSealMetadata(b *testing.B) {
	rk, err := NewRootKey()
	if err != nil {
		b.Fatal(err)
	}
	p := Preamble{Type: TypeDirnode, UUID: uuid.New(), Version: 1}
	body := make([]byte, 4096) // a typical dirnode bucket
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Seal(rk, p, body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpenMetadata(b *testing.B) {
	rk, err := NewRootKey()
	if err != nil {
		b.Fatal(err)
	}
	p := Preamble{Type: TypeDirnode, UUID: uuid.New(), Version: 1}
	blob, err := Seal(rk, p, make([]byte, 4096))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Open(rk, blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChunkEncrypt1MiB(b *testing.B) {
	f := NewFilenode(uuid.New(), uuid.Nil, DefaultChunkSize)
	data := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.EncryptContent(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChunkDecrypt1MiB(b *testing.B) {
	f := NewFilenode(uuid.New(), uuid.Nil, DefaultChunkSize)
	blob, err := f.EncryptContent(make([]byte, 1<<20))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.DecryptContent(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChunkEncryptWorkers sweeps the parallel pipeline's fan-out
// width over a 16 MiB file (16 chunks at the paper's 1 MiB chunk size),
// the workload class the CI perf gate tracks. workers=1 is the serial
// baseline the ≥2×-at-8-cores acceptance target compares against.
func BenchmarkChunkEncryptWorkers(b *testing.B) {
	data := make([]byte, 16<<20)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("16MiB/w%d", w), func(b *testing.B) {
			f := NewFilenode(uuid.New(), uuid.Nil, DefaultChunkSize)
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.EncryptContentWorkers(data, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChunkDecryptWorkers is the read-path counterpart.
func BenchmarkChunkDecryptWorkers(b *testing.B) {
	f := NewFilenode(uuid.New(), uuid.Nil, DefaultChunkSize)
	blob, err := f.EncryptContent(make([]byte, 16<<20))
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("16MiB/w%d", w), func(b *testing.B) {
			b.SetBytes(int64(len(blob)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.DecryptContentWorkers(blob, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDirnodeLookup(b *testing.B) {
	for _, entries := range []int{128, 1024, 8192} {
		b.Run(fmt.Sprintf("entries%d", entries), func(b *testing.B) {
			d := NewDirnode(uuid.New(), uuid.Nil, DefaultBucketSize)
			for i := 0; i < entries; i++ {
				if err := d.Insert(DirEntry{
					Name: fmt.Sprintf("file%06d", i), UUID: uuid.New(), Kind: KindFile,
				}, noLoad); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Lookup(fmt.Sprintf("file%06d", i%entries), noLoad); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
