package metadata

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"nexus/internal/cas"
	"nexus/internal/parallel"
	"nexus/internal/serial"
	"nexus/internal/uuid"
)

// DefaultChunkSize is the default file chunk size; the paper's
// evaluation uses 1 MiB chunks (§VII).
const DefaultChunkSize = 1 << 20

// serialCutoffBytes is the content size below which chunk crypto always
// runs serially: under ~128 KiB a single AES-GCM pass is cheaper than
// any goroutine fan-out, so small files pay zero pipeline overhead.
const serialCutoffBytes = 128 << 10

// aadSize is the per-chunk associated-data length: the data object's
// UUID plus the chunk index (see ensureAAD).
const aadSize = uuid.Size + 8

// ChunkContext is the per-chunk cryptographic context: IV and
// authentication tag (§IV-A1). The chunk key lives once per update in
// Filenode.ContentKey rather than per chunk: our update granularity is
// the whole content (EncryptContent re-seals every chunk), so a single
// fresh-per-update key with a unique random IV per chunk gives the same
// guarantee the paper's per-chunk keys do — no (key, IV) pair ever
// seals two plaintexts — while cutting metadata overhead from 44 to 28
// bytes per chunk and, critically, letting the hot path build one AEAD
// per operation instead of one per chunk (the per-chunk cipher.NewGCM
// was ~2 heap allocations and a key schedule per megabyte).
type ChunkContext struct {
	IV  [ivSize]byte
	Tag [tagSize]byte
}

// Filenode stores the metadata needed to access one data file: the data
// object's UUID, the update's content key, and the per-chunk encryption
// contexts (§IV-A1).
type Filenode struct {
	// UUID names the filenode metadata object.
	UUID uuid.UUID
	// Parent is the containing dirnode.
	Parent uuid.UUID
	// DataUUID names the encrypted data object on the store.
	DataUUID uuid.UUID
	// Size is the plaintext file size in bytes.
	Size uint64
	// ChunkSize is the fixed plaintext chunk size.
	ChunkSize uint32
	// LinkCount counts directory entries referencing this filenode
	// (hardlinks).
	LinkCount uint32
	// ContentKey is the AES key protecting every chunk of the current
	// content version; it is regenerated on every update ("re-encrypted
	// using fresh keys on every file content update", §VI-A).
	ContentKey [BodyKeySize]byte
	// Chunks holds one context per chunk, in order.
	Chunks []ChunkContext

	// ContentDefined selects the content-addressed layout (DESIGN.md
	// §16): the file's bytes live in deduplicated CAS chunks named by
	// Extents, not in a single DataUUID object, and the fixed-size
	// fields above (ChunkSize, ContentKey, Chunks) are unused. On the
	// wire the layout is versioned by the ChunkSize field: zero — which
	// the legacy decoder has always rejected — marks the extent layout,
	// so every historical blob still decodes down the legacy path and
	// old clients fail closed on new blobs.
	ContentDefined bool
	// Extents tiles the file's plaintext across CAS chunks, in order.
	// Invariant: the extent lengths sum to Size.
	Extents []cas.Extent

	// aad caches the concatenated per-chunk associated data
	// (DataUUID‖index), rebuilt only when the data UUID or chunk count
	// changes, so steady-state crypto slices it without allocating.
	// Like the exported crypto methods themselves, access is not
	// synchronized: a Filenode must not be used concurrently.
	aad     []byte
	aadUUID uuid.UUID
}

// NewFilenode creates an empty file's metadata.
func NewFilenode(id, parent uuid.UUID, chunkSize uint32) *Filenode {
	if chunkSize == 0 {
		chunkSize = DefaultChunkSize
	}
	return &Filenode{
		UUID:      id,
		Parent:    parent,
		DataUUID:  uuid.New(),
		ChunkSize: chunkSize,
		LinkCount: 1,
	}
}

// extentLayoutFormat versions the extent-list body that follows the
// ChunkSize==0 sentinel.
const extentLayoutFormat = 1

// EncodeBody serializes the filenode body for Seal.
//
// Legacy (fixed-size) layout:
//
//	DataUUID ‖ Size ‖ ChunkSize(>0) ‖ LinkCount ‖ ContentKey ‖ count ‖ (IV‖Tag)*
//
// Content-defined layout (ChunkSize encodes as zero):
//
//	DataUUID ‖ Size ‖ uint32(0) ‖ format ‖ LinkCount ‖ count ‖ (Handle‖Len)*
func (f *Filenode) EncodeBody() []byte {
	if f.ContentDefined {
		w := serial.NewWriter(48 + len(f.Extents)*(cas.HandleSize+4))
		w.WriteRaw(f.DataUUID[:])
		w.WriteUint64(f.Size)
		w.WriteUint32(0) // layout sentinel: no fixed chunk size
		w.WriteUint8(extentLayoutFormat)
		w.WriteUint32(f.LinkCount)
		cas.WriteExtents(w, f.Extents)
		return w.Bytes()
	}
	w := serial.NewWriter(64 + len(f.Chunks)*(ivSize+tagSize))
	w.WriteRaw(f.DataUUID[:])
	w.WriteUint64(f.Size)
	w.WriteUint32(f.ChunkSize)
	w.WriteUint32(f.LinkCount)
	w.WriteRaw(f.ContentKey[:])
	w.WriteUint32(uint32(len(f.Chunks)))
	for i := range f.Chunks {
		w.WriteRaw(f.Chunks[i].IV[:])
		w.WriteRaw(f.Chunks[i].Tag[:])
	}
	return w.Bytes()
}

// DecodeFilenodeBody parses a body produced by EncodeBody. UUID and
// parent come from the verified preamble. Both layouts cross-check the
// recorded Size against the chunk structure, so a stale size / chunk
// mismatch is rejected at decode instead of surfacing later as a read
// failure.
func DecodeFilenodeBody(id, parent uuid.UUID, body []byte) (*Filenode, error) {
	r := serial.NewReader(body)
	f := &Filenode{UUID: id, Parent: parent}
	r.ReadRawInto(f.DataUUID[:], "data uuid")
	f.Size = r.ReadUint64("file size")
	f.ChunkSize = r.ReadUint32("chunk size")
	if r.Err() == nil && f.ChunkSize == 0 {
		return decodeExtentBody(r, f)
	}
	f.LinkCount = r.ReadUint32("link count")
	r.ReadRawInto(f.ContentKey[:], "content key")
	n := r.ReadCount(0, "chunk count")
	if n > 0 {
		f.Chunks = make([]ChunkContext, n)
	}
	for i := 0; i < n; i++ {
		r.ReadRawInto(f.Chunks[i].IV[:], "chunk iv")
		r.ReadRawInto(f.Chunks[i].Tag[:], "chunk tag")
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("decoding filenode: %w", err)
	}
	if f.ChunkSize == 0 {
		return nil, fmt.Errorf("%w: zero chunk size", ErrMalformed)
	}
	if n != f.NumChunks() {
		return nil, fmt.Errorf("%w: %d chunk contexts for size %d (chunk size %d, want %d)",
			ErrMalformed, n, f.Size, f.ChunkSize, f.NumChunks())
	}
	return f, nil
}

// decodeExtentBody finishes decoding the content-defined layout after
// the ChunkSize==0 sentinel.
func decodeExtentBody(r *serial.Reader, f *Filenode) (*Filenode, error) {
	f.ContentDefined = true
	format := r.ReadUint8("extent layout format")
	if r.Err() == nil && format != extentLayoutFormat {
		return nil, fmt.Errorf("%w: extent layout format %d", ErrMalformed, format)
	}
	f.LinkCount = r.ReadUint32("link count")
	extents, err := cas.ReadExtents(r)
	if err != nil {
		return nil, fmt.Errorf("decoding filenode extents: %w", err)
	}
	f.Extents = extents
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("decoding filenode: %w", err)
	}
	if total := cas.TotalLen(f.Extents); total != f.Size {
		return nil, fmt.Errorf("%w: extents cover %d bytes, size records %d",
			ErrMalformed, total, f.Size)
	}
	return f, nil
}

// NumChunks returns the chunk count for the current plaintext size.
func (f *Filenode) NumChunks() int {
	if f.ContentDefined {
		return len(f.Extents)
	}
	if f.Size == 0 {
		return 0
	}
	return int((f.Size + uint64(f.ChunkSize) - 1) / uint64(f.ChunkSize))
}

// SealedSize returns the data-object size for plainLen plaintext bytes:
// each chunk carries its GCM tag inline (ciphertext‖tag), so the blob
// grows by tagSize per chunk. Inline tags are what make the data path
// zero-copy: Seal writes ciphertext and tag in one pass directly into
// the output slot, and Open reads a contiguous sealed chunk straight
// out of the fetched blob — neither side re-assembles chunk+tag in
// scratch the way the tag-in-filenode layout forced.
func (f *Filenode) SealedSize(plainLen int) int {
	if plainLen <= 0 {
		return 0
	}
	if f.ContentDefined {
		// CAS chunks carry the same inline ciphertext‖tag framing, one
		// sealed object per extent.
		return plainLen + len(f.Extents)*tagSize
	}
	chunks := (plainLen + int(f.ChunkSize) - 1) / int(f.ChunkSize)
	return plainLen + chunks*tagSize
}

// chunkBounds returns chunk i's plaintext byte range within a content of
// total bytes.
func (f *Filenode) chunkBounds(i, total int) (start, end int) {
	start = i * int(f.ChunkSize)
	end = start + int(f.ChunkSize)
	if end > total {
		end = total
	}
	return start, end
}

// sealedBounds returns chunk i's ciphertext‖tag byte range within the
// sealed blob for total plaintext bytes.
func (f *Filenode) sealedBounds(i, total int) (start, end int) {
	ps, pe := f.chunkBounds(i, total)
	start = ps + i*tagSize
	end = start + (pe - ps) + tagSize
	return start, end
}

// ensureAAD (re)builds the cached associated-data table. Each chunk's
// AAD binds its ciphertext to the data object and position
// (DataUUID‖little-endian index), so chunks cannot be transplanted or
// reordered. Because every chunk is an independent AEAD invocation with
// position-bound AAD and a unique IV, chunks can be sealed and opened
// in any order — including concurrently — without weakening those
// guarantees.
func (f *Filenode) ensureAAD(n int) {
	if f.aadUUID == f.DataUUID && len(f.aad) >= n*aadSize {
		return
	}
	if cap(f.aad) < n*aadSize {
		f.aad = make([]byte, n*aadSize)
	}
	f.aad = f.aad[:n*aadSize]
	for i := 0; i < n; i++ {
		off := i * aadSize
		copy(f.aad[off:], f.DataUUID[:])
		binary.LittleEndian.PutUint64(f.aad[off+uuid.Size:], uint64(i))
	}
	f.aadUUID = f.DataUUID
}

// aadFor slices chunk i's associated data out of the cached table.
func (f *Filenode) aadFor(i int) []byte {
	return f.aad[i*aadSize : (i+1)*aadSize]
}

// contentAEAD builds the AES-GCM instance for the current ContentKey.
// The returned AEAD is used concurrently by the chunk workers: the
// standard library's GCM Seal/Open only read the immutable key schedule
// and hash state, so concurrent calls into disjoint destination slices
// are safe (the equivalence and -race suites pin this assumption).
func (f *Filenode) contentAEAD() (cipher.AEAD, error) {
	block, err := aes.NewCipher(f.ContentKey[:])
	if err != nil {
		return nil, fmt.Errorf("metadata: content cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("metadata: content GCM: %w", err)
	}
	return gcm, nil
}

// refreshContexts draws a fresh content key and one fresh IV per chunk
// from a single crypto/rand read. The scratch for the batched read is a
// pooled sensitive buffer: zeroed on release, so raw key material never
// lingers in a free list.
func (f *Filenode) refreshContexts(n int) error {
	if cap(f.Chunks) >= n {
		f.Chunks = f.Chunks[:n]
	} else {
		f.Chunks = make([]ChunkContext, n)
	}
	seed := parallel.Shared.GetSensitive(BodyKeySize + n*ivSize)
	defer seed.Release()
	if _, err := rand.Read(seed.B); err != nil {
		return fmt.Errorf("metadata: chunk key material: %w", err)
	}
	copy(f.ContentKey[:], seed.B[:BodyKeySize])
	for i := range f.Chunks {
		copy(f.Chunks[i].IV[:], seed.B[BodyKeySize+i*ivSize:])
	}
	return nil
}

// cryptoWorkers picks the fan-out width for size bytes of content. The
// auto setting (0) resolves to GOMAXPROCS but falls back to serial below
// serialCutoffBytes; an explicit knob is a width request, clamped like
// every knob to GOMAXPROCS (parallel.Workers), so oversubscribing a
// small machine never costs throughput.
func cryptoWorkers(size, workers int) int {
	if workers == 0 && size < serialCutoffBytes {
		return 1
	}
	return parallel.Workers(workers)
}

// EncryptContent encrypts plaintext into the data object's on-store
// form, drawing a fresh content key and fresh per-chunk IVs
// ("re-encrypted using fresh keys on every file content update",
// §VI-A). The returned blob holds ciphertext‖tag per chunk
// (SealedSize bytes); tags are also recorded in the filenode. Chunks
// are sealed in parallel across GOMAXPROCS workers; use
// EncryptContentWorkers to bound the fan-out.
func (f *Filenode) EncryptContent(plaintext []byte) ([]byte, error) {
	return f.EncryptContentWorkers(plaintext, 0)
}

// EncryptContentWorkers is EncryptContent with an explicit parallelism
// knob: 0 means GOMAXPROCS (with serial fallback below
// serialCutoffBytes), 1 forces the serial path, higher values request a
// wider fan-out (clamped to GOMAXPROCS).
func (f *Filenode) EncryptContentWorkers(plaintext []byte, workers int) ([]byte, error) {
	out := make([]byte, f.SealedSize(len(plaintext)))
	return f.EncryptContentInto(out, plaintext, workers)
}

// EncryptContentInto is EncryptContentWorkers sealing into a
// caller-owned buffer: dst must have capacity for SealedSize(len
// (plaintext)) bytes and is returned re-sliced to exactly that length.
// The caller owns dst throughout — pass a pooled buffer to keep the
// write path allocation-free — and each worker seals its chunks
// directly into their final slots via capacity-capped sub-slices, so
// no ciphertext is ever staged in scratch.
func (f *Filenode) EncryptContentInto(dst, plaintext []byte, workers int) ([]byte, error) {
	total := len(plaintext)
	sealedLen := f.SealedSize(total)
	if cap(dst) < sealedLen {
		return nil, fmt.Errorf("metadata: destination capacity %d for %d sealed bytes", cap(dst), sealedLen)
	}
	dst = dst[:sealedLen]
	f.Size = uint64(total)
	n := f.NumChunks()
	if err := f.refreshContexts(n); err != nil {
		return nil, err
	}
	if n == 0 {
		return dst, nil
	}
	f.ensureAAD(n)
	gcm, err := f.contentAEAD()
	if err != nil {
		return nil, err
	}
	err = parallel.Ranges(n, cryptoWorkers(total, workers), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			ps, pe := f.chunkBounds(i, total)
			ss, se := f.sealedBounds(i, total)
			// Seal appends ciphertext then tag into this chunk's slot; the
			// three-index slice caps capacity at the slot boundary so an
			// overrun could never reach a neighbouring chunk.
			sealed := gcm.Seal(dst[ss:ss:se], f.Chunks[i].IV[:], plaintext[ps:pe], f.aadFor(i))
			copy(f.Chunks[i].Tag[:], sealed[pe-ps:])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// DecryptContent verifies and decrypts a data object blob produced by
// EncryptContent. Chunk reordering, truncation, or modification yields
// ErrTampered. Chunks are opened in parallel across GOMAXPROCS workers;
// use DecryptContentWorkers to bound the fan-out.
func (f *Filenode) DecryptContent(blob []byte) ([]byte, error) {
	return f.DecryptContentWorkers(blob, 0)
}

// DecryptContentWorkers is DecryptContent with an explicit parallelism
// knob (same semantics as EncryptContentWorkers).
func (f *Filenode) DecryptContentWorkers(blob []byte, workers int) ([]byte, error) {
	out := make([]byte, f.Size)
	return f.DecryptContentInto(out, blob, workers)
}

// DecryptContentInto is DecryptContentWorkers opening into a
// caller-owned buffer of capacity >= f.Size, returned re-sliced to the
// plaintext length. Each sealed chunk is read directly out of blob and
// opened directly into its plaintext slot — zero staging copies on
// either side.
func (f *Filenode) DecryptContentInto(dst, blob []byte, workers int) ([]byte, error) {
	total := int(f.Size)
	if uint64(len(blob)) != uint64(f.SealedSize(total)) {
		return nil, fmt.Errorf("%w: data object is %d bytes, filenode records %d sealed",
			ErrTampered, len(blob), f.SealedSize(total))
	}
	n := f.NumChunks()
	if len(f.Chunks) != n {
		return nil, fmt.Errorf("%w: %d chunk contexts for %d chunks", ErrMalformed, len(f.Chunks), n)
	}
	if cap(dst) < total {
		return nil, fmt.Errorf("metadata: destination capacity %d for %d plaintext bytes", cap(dst), total)
	}
	dst = dst[:total]
	if n == 0 {
		return dst, nil
	}
	f.ensureAAD(n)
	gcm, err := f.contentAEAD()
	if err != nil {
		return nil, err
	}
	err = parallel.Ranges(n, cryptoWorkers(total, workers), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			ps, pe := f.chunkBounds(i, total)
			ss, se := f.sealedBounds(i, total)
			ctx := &f.Chunks[i]
			// The blob's inline tag must be the one the filenode recorded:
			// a mismatch means data object and metadata are from different
			// content versions, which GCM would also reject, but saying so
			// before the AEAD pass keeps the failure cheap and precise.
			if !bytes.Equal(blob[se-tagSize:se], ctx.Tag[:]) {
				return fmt.Errorf("%w: chunk %d tag mismatch", ErrTampered, i)
			}
			if _, err := gcm.Open(dst[ps:ps:pe], ctx.IV[:], blob[ss:se], f.aadFor(i)); err != nil {
				return fmt.Errorf("%w: chunk %d authentication failed", ErrTampered, i)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// SealStream is a pipelined encryption in flight: workers seal chunks
// into the caller's buffer while the consumer drains the completed
// prefix with Next. Produced by EncryptContentStream.
type SealStream struct {
	sealed []byte

	mu        sync.Mutex
	cond      sync.Cond
	done      []bool
	wmChunk   int // chunks complete from the start
	wmBytes   int // sealed bytes complete from the start
	emitted   int // sealed bytes already handed out by Next
	finished  bool
	err       error
	cryptoDur time.Duration

	f     *Filenode
	total int
	start time.Time
}

// EncryptContentStream begins sealing plaintext into dst (capacity >=
// SealedSize, caller-owned exactly as in EncryptContentInto) and
// returns immediately. Workers fan out across the chunks; the consumer
// pulls completed in-order spans with Next and overlaps them with
// upload, so crypto hides behind the network instead of serializing in
// front of it. The filenode's Size/ContentKey/IVs are refreshed before
// this returns, but Chunks[i].Tag values land asynchronously: do not
// read the filenode (or dst outside segments Next returned) until Wait
// reports completion. The in-flight window is bounded by dst itself —
// workers never block on the consumer, and everything sealed-but-unsent
// stays in the one buffer.
func (f *Filenode) EncryptContentStream(dst, plaintext []byte, workers int) (*SealStream, error) {
	total := len(plaintext)
	sealedLen := f.SealedSize(total)
	if cap(dst) < sealedLen {
		return nil, fmt.Errorf("metadata: destination capacity %d for %d sealed bytes", cap(dst), sealedLen)
	}
	dst = dst[:sealedLen]
	f.Size = uint64(total)
	n := f.NumChunks()
	if err := f.refreshContexts(n); err != nil {
		return nil, err
	}
	s := &SealStream{sealed: dst, f: f, total: total, start: time.Now()}
	s.cond.L = &s.mu
	if n == 0 {
		s.finished = true
		return s, nil
	}
	f.ensureAAD(n)
	gcm, err := f.contentAEAD()
	if err != nil {
		return nil, err
	}
	s.done = make([]bool, n)
	go func() {
		err := parallel.Ranges(n, cryptoWorkers(total, workers), func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				ps, pe := f.chunkBounds(i, total)
				ss, se := f.sealedBounds(i, total)
				sealed := gcm.Seal(dst[ss:ss:se], f.Chunks[i].IV[:], plaintext[ps:pe], f.aadFor(i))
				copy(f.Chunks[i].Tag[:], sealed[pe-ps:])
				s.chunkDone(i)
			}
			return nil
		})
		s.mu.Lock()
		s.err = err
		s.finished = true
		s.cryptoDur = time.Since(s.start)
		s.cond.Broadcast()
		s.mu.Unlock()
	}()
	return s, nil
}

// chunkDone marks chunk i sealed and advances the contiguous watermark.
func (s *SealStream) chunkDone(i int) {
	s.mu.Lock()
	s.done[i] = true
	advanced := false
	for s.wmChunk < len(s.done) && s.done[s.wmChunk] {
		s.wmChunk++
		advanced = true
	}
	if advanced {
		if s.wmChunk == len(s.done) {
			s.wmBytes = len(s.sealed)
		} else {
			s.wmBytes, _ = s.f.sealedBounds(s.wmChunk, s.total)
		}
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// Next blocks until more contiguous sealed bytes are available and
// returns them as a slice of the caller's buffer (valid until the
// buffer is released). It returns (nil, nil) once the whole blob has
// been handed out, or the sealing error if one occurred. Coalescing is
// deliberate: Next hands back *everything* sealed since the last call
// in one segment, so a consumer that stalls on the network drains the
// backlog in a single write instead of per-chunk sends.
func (s *SealStream) Next() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.emitted == s.wmBytes && !s.finished {
		s.cond.Wait()
	}
	if s.err != nil {
		return nil, s.err
	}
	if s.emitted == len(s.sealed) {
		return nil, nil
	}
	seg := s.sealed[s.emitted:s.wmBytes]
	s.emitted = s.wmBytes
	return seg, nil
}

// Wait blocks until every chunk is sealed and returns the sealing
// error, if any. After Wait, the filenode's chunk table (including
// tags) is fully populated and the sealed buffer is complete.
func (s *SealStream) Wait() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.finished {
		s.cond.Wait()
	}
	return s.err
}

// Sealed returns the full sealed blob after Wait has reported
// completion; the slice aliases the caller's buffer.
func (s *SealStream) Sealed() []byte { return s.sealed }

// CryptoDuration reports how long the sealing itself took, independent
// of how fast the consumer drained it — the figure the enclave's
// chunk-crypto histogram records for streamed writes.
func (s *SealStream) CryptoDuration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cryptoDur
}

// MetadataOverhead returns the encoded size of the filenode's content
// crypto contexts — the quantity the revocation experiment (§VII-E)
// compares against bulk data re-encryption.
func (f *Filenode) MetadataOverhead() int {
	if f.ContentDefined {
		return len(f.Extents) * (cas.HandleSize + 4)
	}
	return BodyKeySize + len(f.Chunks)*(ivSize+tagSize)
}
