package metadata

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"fmt"

	"nexus/internal/parallel"
	"nexus/internal/serial"
	"nexus/internal/uuid"
)

// DefaultChunkSize is the default file chunk size; the paper's
// evaluation uses 1 MiB chunks (§VII).
const DefaultChunkSize = 1 << 20

// serialCutoffBytes is the content size below which chunk crypto always
// runs serially: under ~128 KiB a single AES-GCM pass is cheaper than
// any goroutine fan-out, so small files pay zero pipeline overhead.
const serialCutoffBytes = 128 << 10

// ChunkContext is the independent cryptographic context of one file
// chunk: key, IV, and authentication tag (§IV-A1). Roughly 44 bytes of
// context protect each chunk — "about 80B of encryption data for every
// 1MB file chunk" in the paper's accounting, which also counts the
// chunk's slot bookkeeping.
type ChunkContext struct {
	Key [BodyKeySize]byte
	IV  [ivSize]byte
	Tag [tagSize]byte
}

// Filenode stores the metadata needed to access one data file: the data
// object's UUID and the per-chunk encryption contexts (§IV-A1).
type Filenode struct {
	// UUID names the filenode metadata object.
	UUID uuid.UUID
	// Parent is the containing dirnode.
	Parent uuid.UUID
	// DataUUID names the encrypted data object on the store.
	DataUUID uuid.UUID
	// Size is the plaintext file size in bytes.
	Size uint64
	// ChunkSize is the fixed plaintext chunk size.
	ChunkSize uint32
	// LinkCount counts directory entries referencing this filenode
	// (hardlinks).
	LinkCount uint32
	// Chunks holds one context per chunk, in order.
	Chunks []ChunkContext
}

// NewFilenode creates an empty file's metadata.
func NewFilenode(id, parent uuid.UUID, chunkSize uint32) *Filenode {
	if chunkSize == 0 {
		chunkSize = DefaultChunkSize
	}
	return &Filenode{
		UUID:      id,
		Parent:    parent,
		DataUUID:  uuid.New(),
		ChunkSize: chunkSize,
		LinkCount: 1,
	}
}

// EncodeBody serializes the filenode body for Seal.
func (f *Filenode) EncodeBody() []byte {
	w := serial.NewWriter(64 + len(f.Chunks)*(BodyKeySize+ivSize+tagSize))
	w.WriteRaw(f.DataUUID[:])
	w.WriteUint64(f.Size)
	w.WriteUint32(f.ChunkSize)
	w.WriteUint32(f.LinkCount)
	w.WriteUint32(uint32(len(f.Chunks)))
	for i := range f.Chunks {
		w.WriteRaw(f.Chunks[i].Key[:])
		w.WriteRaw(f.Chunks[i].IV[:])
		w.WriteRaw(f.Chunks[i].Tag[:])
	}
	return w.Bytes()
}

// DecodeFilenodeBody parses a body produced by EncodeBody. UUID and
// parent come from the verified preamble.
func DecodeFilenodeBody(id, parent uuid.UUID, body []byte) (*Filenode, error) {
	r := serial.NewReader(body)
	f := &Filenode{UUID: id, Parent: parent}
	r.ReadRawInto(f.DataUUID[:], "data uuid")
	f.Size = r.ReadUint64("file size")
	f.ChunkSize = r.ReadUint32("chunk size")
	f.LinkCount = r.ReadUint32("link count")
	n := r.ReadCount(0, "chunk count")
	if n > 0 {
		f.Chunks = make([]ChunkContext, n)
	}
	for i := 0; i < n; i++ {
		r.ReadRawInto(f.Chunks[i].Key[:], "chunk key")
		r.ReadRawInto(f.Chunks[i].IV[:], "chunk iv")
		r.ReadRawInto(f.Chunks[i].Tag[:], "chunk tag")
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("decoding filenode: %w", err)
	}
	if f.ChunkSize == 0 {
		return nil, fmt.Errorf("%w: zero chunk size", ErrMalformed)
	}
	return f, nil
}

// NumChunks returns the chunk count for a given plaintext size.
func (f *Filenode) NumChunks() int {
	if f.Size == 0 {
		return 0
	}
	return int((f.Size + uint64(f.ChunkSize) - 1) / uint64(f.ChunkSize))
}

// chunkAAD binds a chunk's ciphertext to its file and position, so
// chunks cannot be transplanted or reordered. Because every chunk is an
// independent AEAD under its own key with position-bound AAD, chunks can
// be sealed and opened in any order — including concurrently — without
// weakening any of those guarantees.
func chunkAAD(dataUUID uuid.UUID, index int) []byte {
	aad := make([]byte, uuid.Size+8)
	copy(aad, dataUUID[:])
	binary.LittleEndian.PutUint64(aad[uuid.Size:], uint64(index))
	return aad
}

// chunkBounds returns chunk i's plaintext byte range within a content of
// total bytes.
func (f *Filenode) chunkBounds(i, total int) (start, end int) {
	start = i * int(f.ChunkSize)
	end = start + int(f.ChunkSize)
	if end > total {
		end = total
	}
	return start, end
}

// aead builds the chunk's AES-GCM instance.
func (c *ChunkContext) aead() (cipher.AEAD, error) {
	block, err := aes.NewCipher(c.Key[:])
	if err != nil {
		return nil, fmt.Errorf("metadata: chunk cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("metadata: chunk GCM: %w", err)
	}
	return gcm, nil
}

// cryptoWorkers picks the fan-out width for size bytes of content. The
// auto setting (0) resolves to GOMAXPROCS but falls back to serial below
// serialCutoffBytes; an explicit knob is honored as given, so tests and
// benchmarks can force a width regardless of content size.
func cryptoWorkers(size, workers int) int {
	if workers == 0 && size < serialCutoffBytes {
		return 1
	}
	return parallel.Workers(workers)
}

// EncryptContent encrypts plaintext into the data object's on-store form,
// regenerating every chunk context with fresh keys ("re-encrypted using
// fresh keys on every file content update", §VI-A). The returned blob
// holds the concatenated chunk ciphertexts; tags land in the filenode.
// Chunks are sealed in parallel across GOMAXPROCS workers; use
// EncryptContentWorkers to bound the fan-out.
func (f *Filenode) EncryptContent(plaintext []byte) ([]byte, error) {
	return f.EncryptContentWorkers(plaintext, 0)
}

// EncryptContentWorkers is EncryptContent with an explicit parallelism
// knob: 0 means GOMAXPROCS (with serial fallback below
// serialCutoffBytes), 1 forces the serial path, higher values set the
// worker count.
func (f *Filenode) EncryptContentWorkers(plaintext []byte, workers int) ([]byte, error) {
	f.Size = uint64(len(plaintext))
	n := f.NumChunks()
	f.Chunks = make([]ChunkContext, n)
	out := make([]byte, len(plaintext))
	if n == 0 {
		return out, nil
	}

	// One crypto/rand read covers every chunk's key and IV. The serial
	// loop used to issue two getrandom(2) calls per chunk; batching keeps
	// the kernel round-trips off the per-chunk path while every context
	// still gets fresh, independent material on every update.
	seed := make([]byte, n*(BodyKeySize+ivSize))
	if _, err := rand.Read(seed); err != nil {
		return nil, fmt.Errorf("metadata: chunk key material: %w", err)
	}
	for i := range f.Chunks {
		off := i * (BodyKeySize + ivSize)
		copy(f.Chunks[i].Key[:], seed[off:off+BodyKeySize])
		copy(f.Chunks[i].IV[:], seed[off+BodyKeySize:off+BodyKeySize+ivSize])
	}

	// Fan the chunks out over contiguous spans. Each worker seals into a
	// reusable scratch buffer and copies ciphertext and tag into its own
	// disjoint slots of the preallocated output and chunk table, so the
	// only cross-worker state is the read-only plaintext.
	err := parallel.Ranges(n, cryptoWorkers(len(plaintext), workers), func(lo, hi int) error {
		scratch := make([]byte, 0, int(f.ChunkSize)+tagSize)
		for i := lo; i < hi; i++ {
			start, end := f.chunkBounds(i, len(plaintext))
			ctx := &f.Chunks[i]
			gcm, err := ctx.aead()
			if err != nil {
				return err
			}
			sealed := gcm.Seal(scratch[:0], ctx.IV[:], plaintext[start:end], chunkAAD(f.DataUUID, i))
			// Split ciphertext and tag: tag goes into the filenode context.
			ct := copy(out[start:end], sealed)
			copy(ctx.Tag[:], sealed[ct:])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DecryptContent verifies and decrypts a data object blob produced by
// EncryptContent. Chunk reordering, truncation, or modification yields
// ErrTampered. Chunks are opened in parallel across GOMAXPROCS workers;
// use DecryptContentWorkers to bound the fan-out.
func (f *Filenode) DecryptContent(blob []byte) ([]byte, error) {
	return f.DecryptContentWorkers(blob, 0)
}

// DecryptContentWorkers is DecryptContent with an explicit parallelism
// knob (same semantics as EncryptContentWorkers).
func (f *Filenode) DecryptContentWorkers(blob []byte, workers int) ([]byte, error) {
	if uint64(len(blob)) != f.Size {
		return nil, fmt.Errorf("%w: data object is %d bytes, filenode records %d",
			ErrTampered, len(blob), f.Size)
	}
	n := f.NumChunks()
	if len(f.Chunks) != n {
		return nil, fmt.Errorf("%w: %d chunk contexts for %d chunks", ErrMalformed, len(f.Chunks), n)
	}
	out := make([]byte, len(blob))
	err := parallel.Ranges(n, cryptoWorkers(len(blob), workers), func(lo, hi int) error {
		sealed := make([]byte, 0, int(f.ChunkSize)+tagSize)
		for i := lo; i < hi; i++ {
			start, end := f.chunkBounds(i, len(blob))
			ctx := &f.Chunks[i]
			gcm, err := ctx.aead()
			if err != nil {
				return err
			}
			sealed = append(sealed[:0], blob[start:end]...)
			sealed = append(sealed, ctx.Tag[:]...)
			// Open appends exactly end-start plaintext bytes into this
			// chunk's slot of the preallocated output; the three-index
			// slice caps capacity at the slot boundary so an overrun could
			// never reach a neighbouring chunk.
			if _, err := gcm.Open(out[start:start:end], ctx.IV[:], sealed, chunkAAD(f.DataUUID, i)); err != nil {
				return fmt.Errorf("%w: chunk %d authentication failed", ErrTampered, i)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MetadataOverhead returns the encoded size of the filenode's chunk
// contexts — the quantity the revocation experiment (§VII-E) compares
// against bulk data re-encryption.
func (f *Filenode) MetadataOverhead() int {
	return len(f.Chunks) * (BodyKeySize + ivSize + tagSize)
}
