package metadata

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"fmt"

	"nexus/internal/serial"
	"nexus/internal/uuid"
)

// DefaultChunkSize is the default file chunk size; the paper's
// evaluation uses 1 MiB chunks (§VII).
const DefaultChunkSize = 1 << 20

// ChunkContext is the independent cryptographic context of one file
// chunk: key, IV, and authentication tag (§IV-A1). Roughly 44 bytes of
// context protect each chunk — "about 80B of encryption data for every
// 1MB file chunk" in the paper's accounting, which also counts the
// chunk's slot bookkeeping.
type ChunkContext struct {
	Key [BodyKeySize]byte
	IV  [ivSize]byte
	Tag [tagSize]byte
}

// Filenode stores the metadata needed to access one data file: the data
// object's UUID and the per-chunk encryption contexts (§IV-A1).
type Filenode struct {
	// UUID names the filenode metadata object.
	UUID uuid.UUID
	// Parent is the containing dirnode.
	Parent uuid.UUID
	// DataUUID names the encrypted data object on the store.
	DataUUID uuid.UUID
	// Size is the plaintext file size in bytes.
	Size uint64
	// ChunkSize is the fixed plaintext chunk size.
	ChunkSize uint32
	// LinkCount counts directory entries referencing this filenode
	// (hardlinks).
	LinkCount uint32
	// Chunks holds one context per chunk, in order.
	Chunks []ChunkContext
}

// NewFilenode creates an empty file's metadata.
func NewFilenode(id, parent uuid.UUID, chunkSize uint32) *Filenode {
	if chunkSize == 0 {
		chunkSize = DefaultChunkSize
	}
	return &Filenode{
		UUID:      id,
		Parent:    parent,
		DataUUID:  uuid.New(),
		ChunkSize: chunkSize,
		LinkCount: 1,
	}
}

// EncodeBody serializes the filenode body for Seal.
func (f *Filenode) EncodeBody() []byte {
	w := serial.NewWriter(64 + len(f.Chunks)*(BodyKeySize+ivSize+tagSize))
	w.WriteRaw(f.DataUUID[:])
	w.WriteUint64(f.Size)
	w.WriteUint32(f.ChunkSize)
	w.WriteUint32(f.LinkCount)
	w.WriteUint32(uint32(len(f.Chunks)))
	for i := range f.Chunks {
		w.WriteRaw(f.Chunks[i].Key[:])
		w.WriteRaw(f.Chunks[i].IV[:])
		w.WriteRaw(f.Chunks[i].Tag[:])
	}
	return w.Bytes()
}

// DecodeFilenodeBody parses a body produced by EncodeBody. UUID and
// parent come from the verified preamble.
func DecodeFilenodeBody(id, parent uuid.UUID, body []byte) (*Filenode, error) {
	r := serial.NewReader(body)
	f := &Filenode{UUID: id, Parent: parent}
	r.ReadRawInto(f.DataUUID[:], "data uuid")
	f.Size = r.ReadUint64("file size")
	f.ChunkSize = r.ReadUint32("chunk size")
	f.LinkCount = r.ReadUint32("link count")
	n := r.ReadCount(0, "chunk count")
	if n > 0 {
		f.Chunks = make([]ChunkContext, n)
	}
	for i := 0; i < n; i++ {
		r.ReadRawInto(f.Chunks[i].Key[:], "chunk key")
		r.ReadRawInto(f.Chunks[i].IV[:], "chunk iv")
		r.ReadRawInto(f.Chunks[i].Tag[:], "chunk tag")
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("decoding filenode: %w", err)
	}
	if f.ChunkSize == 0 {
		return nil, fmt.Errorf("%w: zero chunk size", ErrMalformed)
	}
	return f, nil
}

// NumChunks returns the chunk count for a given plaintext size.
func (f *Filenode) NumChunks() int {
	if f.Size == 0 {
		return 0
	}
	return int((f.Size + uint64(f.ChunkSize) - 1) / uint64(f.ChunkSize))
}

// chunkAAD binds a chunk's ciphertext to its file and position, so
// chunks cannot be transplanted or reordered.
func chunkAAD(dataUUID uuid.UUID, index int) []byte {
	aad := make([]byte, uuid.Size+8)
	copy(aad, dataUUID[:])
	binary.LittleEndian.PutUint64(aad[uuid.Size:], uint64(index))
	return aad
}

// EncryptContent encrypts plaintext into the data object's on-store form,
// regenerating every chunk context with fresh keys ("re-encrypted using
// fresh keys on every file content update", §VI-A). The returned blob
// holds the concatenated chunk ciphertexts; tags land in the filenode.
func (f *Filenode) EncryptContent(plaintext []byte) ([]byte, error) {
	f.Size = uint64(len(plaintext))
	n := f.NumChunks()
	f.Chunks = make([]ChunkContext, n)
	out := make([]byte, 0, len(plaintext))

	for i := 0; i < n; i++ {
		start := i * int(f.ChunkSize)
		end := start + int(f.ChunkSize)
		if end > len(plaintext) {
			end = len(plaintext)
		}
		ctx := &f.Chunks[i]
		if _, err := rand.Read(ctx.Key[:]); err != nil {
			return nil, fmt.Errorf("metadata: chunk key: %w", err)
		}
		if _, err := rand.Read(ctx.IV[:]); err != nil {
			return nil, fmt.Errorf("metadata: chunk iv: %w", err)
		}
		block, err := aes.NewCipher(ctx.Key[:])
		if err != nil {
			return nil, fmt.Errorf("metadata: chunk cipher: %w", err)
		}
		gcm, err := cipher.NewGCM(block)
		if err != nil {
			return nil, fmt.Errorf("metadata: chunk GCM: %w", err)
		}
		sealed := gcm.Seal(nil, ctx.IV[:], plaintext[start:end], chunkAAD(f.DataUUID, i))
		// Split ciphertext and tag: tag goes into the filenode context.
		ct, tag := sealed[:len(sealed)-tagSize], sealed[len(sealed)-tagSize:]
		copy(ctx.Tag[:], tag)
		out = append(out, ct...)
	}
	return out, nil
}

// DecryptContent verifies and decrypts a data object blob produced by
// EncryptContent. Chunk reordering, truncation, or modification yields
// ErrTampered.
func (f *Filenode) DecryptContent(blob []byte) ([]byte, error) {
	if uint64(len(blob)) != f.Size {
		return nil, fmt.Errorf("%w: data object is %d bytes, filenode records %d",
			ErrTampered, len(blob), f.Size)
	}
	n := f.NumChunks()
	if len(f.Chunks) != n {
		return nil, fmt.Errorf("%w: %d chunk contexts for %d chunks", ErrMalformed, len(f.Chunks), n)
	}
	out := make([]byte, 0, len(blob))
	for i := 0; i < n; i++ {
		start := i * int(f.ChunkSize)
		end := start + int(f.ChunkSize)
		if end > len(blob) {
			end = len(blob)
		}
		ctx := &f.Chunks[i]
		block, err := aes.NewCipher(ctx.Key[:])
		if err != nil {
			return nil, fmt.Errorf("metadata: chunk cipher: %w", err)
		}
		gcm, err := cipher.NewGCM(block)
		if err != nil {
			return nil, fmt.Errorf("metadata: chunk GCM: %w", err)
		}
		sealed := make([]byte, 0, end-start+tagSize)
		sealed = append(sealed, blob[start:end]...)
		sealed = append(sealed, ctx.Tag[:]...)
		pt, err := gcm.Open(nil, ctx.IV[:], sealed, chunkAAD(f.DataUUID, i))
		if err != nil {
			return nil, fmt.Errorf("%w: chunk %d authentication failed", ErrTampered, i)
		}
		out = append(out, pt...)
	}
	return out, nil
}

// MetadataOverhead returns the encoded size of the filenode's chunk
// contexts — the quantity the revocation experiment (§VII-E) compares
// against bulk data re-encryption.
func (f *Filenode) MetadataOverhead() int {
	return len(f.Chunks) * (BodyKeySize + ivSize + tagSize)
}
