package metadata

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"testing"

	"nexus/internal/cas"
	"nexus/internal/uuid"
)

func extentFilenode(t *testing.T, sizes ...uint32) *Filenode {
	t.Helper()
	secret := cas.DeriveSecret([]byte("extent test volume"))
	f := NewFilenode(uuid.New(), uuid.New(), 0)
	f.ContentDefined = true
	f.ChunkSize = 0
	var total uint64
	for i, n := range sizes {
		f.Extents = append(f.Extents, cas.Extent{
			Handle: secret.HandleFor([]byte{byte(i)}),
			Len:    n,
		})
		total += uint64(n)
	}
	f.Size = total
	return f
}

func TestFilenodeExtentEncodeDecode(t *testing.T) {
	f := extentFilenode(t, 4096, 100, 65536)
	f.LinkCount = 3
	body := f.EncodeBody()
	got, err := DecodeFilenodeBody(f.UUID, f.Parent, body)
	if err != nil {
		t.Fatalf("DecodeFilenodeBody: %v", err)
	}
	if !got.ContentDefined {
		t.Fatal("decoded filenode lost ContentDefined")
	}
	if got.Size != f.Size || got.LinkCount != 3 || got.DataUUID != f.DataUUID {
		t.Fatalf("field mismatch: %+v", got)
	}
	if len(got.Extents) != 3 {
		t.Fatalf("decoded %d extents, want 3", len(got.Extents))
	}
	for i := range f.Extents {
		if got.Extents[i] != f.Extents[i] {
			t.Fatalf("extent %d mismatch", i)
		}
	}
	if got.NumChunks() != 3 {
		t.Fatalf("NumChunks = %d, want 3", got.NumChunks())
	}
	// Round trip is canonical.
	if !bytes.Equal(got.EncodeBody(), body) {
		t.Fatal("re-encode differs")
	}
}

func TestFilenodeExtentZeroLength(t *testing.T) {
	// A zero-length content-defined file has no extents — and the
	// decoder must reject any blob claiming otherwise.
	f := extentFilenode(t)
	got, err := DecodeFilenodeBody(f.UUID, f.Parent, f.EncodeBody())
	if err != nil {
		t.Fatalf("empty extent file: %v", err)
	}
	if got.Size != 0 || len(got.Extents) != 0 || got.NumChunks() != 0 {
		t.Fatalf("empty file decoded as %+v", got)
	}
}

func TestFilenodeExtentSizeMismatchRejected(t *testing.T) {
	// Stale Size vs extent coverage must fail decode, both directions.
	for _, delta := range []uint64{1, ^uint64(0)} { // +1 and -1
		f := extentFilenode(t, 1000, 24)
		f.Size += delta
		if _, err := DecodeFilenodeBody(f.UUID, f.Parent, f.EncodeBody()); err == nil {
			t.Fatalf("size drift %d accepted", int64(delta))
		} else if !errors.Is(err, ErrMalformed) {
			t.Fatalf("size drift error = %v, want ErrMalformed", err)
		}
	}
	// Size > 0 with no extents.
	f := extentFilenode(t)
	f.Size = 10
	if _, err := DecodeFilenodeBody(f.UUID, f.Parent, f.EncodeBody()); err == nil {
		t.Fatal("size without extents accepted")
	}
}

func TestFilenodeExtentUnknownFormatRejected(t *testing.T) {
	f := extentFilenode(t, 64)
	body := f.EncodeBody()
	// format byte sits right after DataUUID(16) + Size(8) + ChunkSize(4).
	body[uuid.Size+8+4] = 0x7f
	if _, err := DecodeFilenodeBody(f.UUID, f.Parent, body); !errors.Is(err, ErrMalformed) {
		t.Fatalf("unknown format error = %v, want ErrMalformed", err)
	}
}

// TestFilenodeLegacyChunkCountMismatchRejected is the size-accounting
// regression for the legacy layout: a blob whose chunk-context count
// disagrees with ceil(Size/ChunkSize) — a stale Size from a buggy or
// tampered writer — must fail decode instead of lurking until read.
func TestFilenodeLegacyChunkCountMismatchRejected(t *testing.T) {
	f := NewFilenode(uuid.New(), uuid.New(), 1024)
	pt := make([]byte, 2500) // 3 chunks
	if _, err := rand.Read(pt); err != nil {
		t.Fatal(err)
	}
	if _, err := f.EncryptContent(pt); err != nil {
		t.Fatal(err)
	}
	body := f.EncodeBody()
	if _, err := DecodeFilenodeBody(f.UUID, f.Parent, body); err != nil {
		t.Fatalf("honest blob rejected: %v", err)
	}
	// Shrink the recorded size without touching the chunk table: the
	// decoder must notice 3 contexts can't belong to a 1-chunk file.
	bad := bytes.Clone(body)
	binary.LittleEndian.PutUint64(bad[uuid.Size:], 1000)
	if _, err := DecodeFilenodeBody(f.UUID, f.Parent, bad); !errors.Is(err, ErrMalformed) {
		t.Fatalf("stale-size blob error = %v, want ErrMalformed", err)
	}
	// Zero-size with leftover chunk contexts is the truncate-to-empty
	// variant of the same corruption.
	bad2 := bytes.Clone(body)
	binary.LittleEndian.PutUint64(bad2[uuid.Size:], 0)
	if _, err := DecodeFilenodeBody(f.UUID, f.Parent, bad2); !errors.Is(err, ErrMalformed) {
		t.Fatalf("zero-size blob with chunks error = %v, want ErrMalformed", err)
	}
}

// TestFilenodeTruncateAccounting pins the in-memory accounting across
// shrinking rewrites: truncate-to-shorter must drop trailing chunk
// contexts, truncate-to-empty must drop all of them, and the final
// partial chunk must seal at its short length, not the full chunk size.
func TestFilenodeTruncateAccounting(t *testing.T) {
	f := NewFilenode(uuid.New(), uuid.New(), 1024)
	write := func(n int) []byte {
		t.Helper()
		pt := make([]byte, n)
		if _, err := rand.Read(pt); err != nil {
			t.Fatal(err)
		}
		blob, err := f.EncryptContent(pt)
		if err != nil {
			t.Fatalf("EncryptContent(%d): %v", n, err)
		}
		if got, err := f.DecryptContent(blob); err != nil || !bytes.Equal(got, pt) {
			t.Fatalf("round trip at %d bytes: %v", n, err)
		}
		return blob
	}

	write(5000) // 5 chunks
	if len(f.Chunks) != 5 {
		t.Fatalf("chunks = %d, want 5", len(f.Chunks))
	}
	// Truncate to a shorter content that ends mid-chunk.
	blob := write(1500) // 2 chunks, final one 476 bytes
	if len(f.Chunks) != 2 || f.NumChunks() != 2 || f.Size != 1500 {
		t.Fatalf("after truncate: chunks=%d size=%d", len(f.Chunks), f.Size)
	}
	if len(blob) != 1500+2*16 {
		t.Fatalf("sealed blob %d bytes, want %d", len(blob), 1500+2*16)
	}
	// Overwrite only the final partial chunk's worth of growth: sizes
	// around the chunk boundary.
	for _, n := range []int{1023, 1024, 1025} {
		write(n)
		want := 1
		if n > 1024 {
			want = 2
		}
		if len(f.Chunks) != want || f.SealedSize(n) != n+want*16 {
			t.Fatalf("size %d: chunks=%d sealed=%d", n, len(f.Chunks), f.SealedSize(n))
		}
	}
	// Truncate to empty: no chunks, no stale contexts, decode clean.
	write(0)
	if len(f.Chunks) != 0 || f.Size != 0 || f.SealedSize(0) != 0 {
		t.Fatalf("after truncate-to-empty: chunks=%d size=%d", len(f.Chunks), f.Size)
	}
	got, err := DecodeFilenodeBody(f.UUID, f.Parent, f.EncodeBody())
	if err != nil {
		t.Fatalf("decode after truncate-to-empty: %v", err)
	}
	if got.NumChunks() != 0 {
		t.Fatalf("decoded chunk count %d after truncate-to-empty", got.NumChunks())
	}
}

// TestFilenodeLegacyExtentDifferential decodes the same logical file
// from both layouts and checks the shared fields agree — the
// old↔new differential the acceptance criteria call for.
func TestFilenodeLegacyExtentDifferential(t *testing.T) {
	pt := make([]byte, 3000)
	if _, err := rand.Read(pt); err != nil {
		t.Fatal(err)
	}

	legacy := NewFilenode(uuid.New(), uuid.New(), 1024)
	legacy.LinkCount = 2
	if _, err := legacy.EncryptContent(pt); err != nil {
		t.Fatal(err)
	}

	secret := cas.DeriveSecret([]byte("differential volume"))
	cdc := &Filenode{
		UUID: legacy.UUID, Parent: legacy.Parent, DataUUID: legacy.DataUUID,
		Size: 3000, LinkCount: 2, ContentDefined: true,
		Extents: []cas.Extent{
			{Handle: secret.HandleFor(pt[:1024]), Len: 1024},
			{Handle: secret.HandleFor(pt[1024:2048]), Len: 1024},
			{Handle: secret.HandleFor(pt[2048:]), Len: 952},
		},
	}

	gotLegacy, err := DecodeFilenodeBody(legacy.UUID, legacy.Parent, legacy.EncodeBody())
	if err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	gotCDC, err := DecodeFilenodeBody(cdc.UUID, cdc.Parent, cdc.EncodeBody())
	if err != nil {
		t.Fatalf("cdc decode: %v", err)
	}
	if gotLegacy.Size != gotCDC.Size || gotLegacy.LinkCount != gotCDC.LinkCount ||
		gotLegacy.UUID != gotCDC.UUID || gotLegacy.Parent != gotCDC.Parent {
		t.Fatalf("layouts disagree on shared fields:\nlegacy %+v\ncdc    %+v", gotLegacy, gotCDC)
	}
	if gotLegacy.ContentDefined || !gotCDC.ContentDefined {
		t.Fatal("layout discrimination failed")
	}
	if gotLegacy.NumChunks() != 3 || gotCDC.NumChunks() != 3 {
		t.Fatalf("chunk counts: legacy %d, cdc %d", gotLegacy.NumChunks(), gotCDC.NumChunks())
	}
	// The legacy blob must keep round-tripping byte-for-byte.
	if !bytes.Equal(gotLegacy.EncodeBody(), legacy.EncodeBody()) {
		t.Fatal("legacy layout no longer round-trips")
	}
}
