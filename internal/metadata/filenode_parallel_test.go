package metadata

import (
	"bytes"
	"crypto/rand"
	"errors"
	"runtime"
	"sync"
	"testing"

	"nexus/internal/uuid"
)

// workerCounts are the fan-out widths every parallel-path test sweeps;
// the satellite spec calls for {1, 2, 8}.
var workerCounts = []int{1, 2, 8}

// withProcs raises GOMAXPROCS for the duration of a test: Workers
// clamps every knob to GOMAXPROCS, so on a single-core CI slice the
// parallel paths would otherwise silently collapse to serial.
func withProcs(t *testing.T, p int) {
	t.Helper()
	old := runtime.GOMAXPROCS(p)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

func TestParallelRoundTripMatchesAcrossWorkerCounts(t *testing.T) {
	withProcs(t, 8)
	for _, size := range []int{0, 1, 1023, 1024, 1025, 64 << 10, 1 << 20} {
		f := NewFilenode(uuid.New(), uuid.New(), 4096)
		pt := make([]byte, size)
		if _, err := rand.Read(pt); err != nil {
			t.Fatal(err)
		}
		for _, w := range workerCounts {
			blob, err := f.EncryptContentWorkers(pt, w)
			if err != nil {
				t.Fatalf("size %d workers %d: encrypt: %v", size, w, err)
			}
			if len(blob) != f.SealedSize(size) {
				t.Fatalf("size %d workers %d: sealed blob %d bytes, want %d", size, w, len(blob), f.SealedSize(size))
			}
			// The same blob must decrypt byte-identically under every
			// fan-out width, not only the one that produced it.
			for _, dw := range workerCounts {
				got, err := f.DecryptContentWorkers(blob, dw)
				if err != nil {
					t.Fatalf("size %d enc-workers %d dec-workers %d: decrypt: %v", size, w, dw, err)
				}
				if !bytes.Equal(got, pt) {
					t.Fatalf("size %d enc-workers %d dec-workers %d: round trip mismatch", size, w, dw)
				}
			}
		}
	}
}

// TestParallelStreamMatchesBatch proves the seal-stream produces the
// same wire bytes the batch API does in one shot: drained segments
// concatenate to exactly the Sealed() blob, the blob decrypts at every
// width, and segments arrive in order without gaps.
func TestParallelStreamMatchesBatch(t *testing.T) {
	withProcs(t, 8)
	for _, size := range []int{0, 1, 4096, 64<<10 + 7, 1 << 20} {
		f := NewFilenode(uuid.New(), uuid.New(), 16<<10)
		pt := make([]byte, size)
		if _, err := rand.Read(pt); err != nil {
			t.Fatal(err)
		}
		for _, w := range workerCounts {
			dst := make([]byte, 0, f.SealedSize(size))
			s, err := f.EncryptContentStream(dst, pt, w)
			if err != nil {
				t.Fatalf("size %d workers %d: stream: %v", size, w, err)
			}
			var drained []byte
			segs := 0
			for {
				seg, err := s.Next()
				if err != nil {
					t.Fatalf("size %d workers %d: Next: %v", size, w, err)
				}
				if seg == nil {
					break
				}
				segs++
				drained = append(drained, seg...)
			}
			if err := s.Wait(); err != nil {
				t.Fatalf("size %d workers %d: Wait: %v", size, w, err)
			}
			if !bytes.Equal(drained, s.Sealed()) {
				t.Fatalf("size %d workers %d: drained %d bytes != sealed %d", size, w, len(drained), len(s.Sealed()))
			}
			if len(drained) != f.SealedSize(size) {
				t.Fatalf("size %d workers %d: sealed %d bytes, want %d", size, w, len(drained), f.SealedSize(size))
			}
			if size > 0 && segs == 0 {
				t.Fatalf("size %d workers %d: no segments emitted", size, w)
			}
			for _, dw := range workerCounts {
				got, err := f.DecryptContentWorkers(drained, dw)
				if err != nil {
					t.Fatalf("size %d stream-workers %d dec-workers %d: decrypt: %v", size, w, dw, err)
				}
				if !bytes.Equal(got, pt) {
					t.Fatalf("size %d stream-workers %d dec-workers %d: round trip mismatch", size, w, dw)
				}
			}
		}
	}
}

func TestParallelTamperReorderTruncateDetected(t *testing.T) {
	withProcs(t, 8)
	const chunk = 1024
	const stride = chunk + 16 // ciphertext + inline tag
	f := NewFilenode(uuid.New(), uuid.Nil, chunk)
	pt := make([]byte, 16*chunk)
	if _, err := rand.Read(pt); err != nil {
		t.Fatal(err)
	}
	blob, err := f.EncryptContentWorkers(pt, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		// Bit flip in a middle chunk.
		mut := bytes.Clone(blob)
		mut[7*stride+13] ^= 1
		if _, err := f.DecryptContentWorkers(mut, w); !errors.Is(err, ErrTampered) {
			t.Fatalf("workers %d: ciphertext flip accepted: %v", w, err)
		}
		// Consistent reorder of two sealed chunks (data swapped with
		// contexts).
		swapped := bytes.Clone(blob)
		copy(swapped[0:stride], blob[stride:2*stride])
		copy(swapped[stride:2*stride], blob[0:stride])
		f.Chunks[0], f.Chunks[1] = f.Chunks[1], f.Chunks[0]
		if _, err := f.DecryptContentWorkers(swapped, w); !errors.Is(err, ErrTampered) {
			t.Fatalf("workers %d: chunk reorder accepted: %v", w, err)
		}
		f.Chunks[0], f.Chunks[1] = f.Chunks[1], f.Chunks[0]
		// Truncation and extension.
		if _, err := f.DecryptContentWorkers(blob[:len(blob)-1], w); !errors.Is(err, ErrTampered) {
			t.Fatalf("workers %d: truncation accepted: %v", w, err)
		}
		if _, err := f.DecryptContentWorkers(append(bytes.Clone(blob), 0), w); !errors.Is(err, ErrTampered) {
			t.Fatalf("workers %d: extension accepted: %v", w, err)
		}
	}
}

// TestParallelFreshKeysPerUpdate asserts that the per-update content
// key preserves the §VI-A fresh-keys-per-update semantics: the key
// never repeats across updates, no chunk reuses an IV across updates,
// and no two chunks of one update share an IV (so no (key, IV) pair
// ever seals two plaintexts).
func TestParallelFreshKeysPerUpdate(t *testing.T) {
	withProcs(t, 8)
	for _, w := range workerCounts {
		f := NewFilenode(uuid.New(), uuid.Nil, 1024)
		pt := bytes.Repeat([]byte{7}, 8*1024)
		if _, err := f.EncryptContentWorkers(pt, w); err != nil {
			t.Fatal(err)
		}
		firstKey := f.ContentKey
		first := make([]ChunkContext, len(f.Chunks))
		copy(first, f.Chunks)
		if _, err := f.EncryptContentWorkers(pt, w); err != nil {
			t.Fatal(err)
		}
		if f.ContentKey == firstKey {
			t.Fatalf("workers %d: content key reused across updates", w)
		}
		for i := range f.Chunks {
			if f.Chunks[i].IV == first[i].IV {
				t.Fatalf("workers %d: chunk %d IV reused across updates", w, i)
			}
		}
		seen := make(map[[ivSize]byte]int)
		for i := range f.Chunks {
			if j, dup := seen[f.Chunks[i].IV]; dup {
				t.Fatalf("workers %d: chunks %d and %d share an IV within one update", w, j, i)
			}
			seen[f.Chunks[i].IV] = i
		}
	}
}

// TestParallelPipelineRaceClean hammers independent filenodes from many
// goroutines while each filenode internally fans out its chunk work;
// meaningful only under -race, where it proves the pipeline shares no
// hidden state across instances or workers (including the shared
// buffer arena the key/IV scratch leases from).
func TestParallelPipelineRaceClean(t *testing.T) {
	withProcs(t, 8)
	pt := make([]byte, 256<<10)
	if _, err := rand.Read(pt); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			f := NewFilenode(uuid.New(), uuid.Nil, 16<<10)
			for iter := 0; iter < 3; iter++ {
				blob, err := f.EncryptContentWorkers(pt, workers)
				if err != nil {
					errs <- err
					return
				}
				got, err := f.DecryptContentWorkers(blob, workers)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, pt) {
					errs <- errors.New("round trip mismatch under concurrency")
					return
				}
			}
		}(1 + g%4)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSerialCutoffPicksSerial pins the auto-mode heuristic: small
// content resolves to one worker, large content to GOMAXPROCS, and an
// explicit knob is honored up to the GOMAXPROCS clamp.
func TestSerialCutoffPicksSerial(t *testing.T) {
	withProcs(t, 8)
	if got := cryptoWorkers(serialCutoffBytes-1, 0); got != 1 {
		t.Fatalf("auto below cutoff: workers = %d, want 1", got)
	}
	if got := cryptoWorkers(serialCutoffBytes-1, 8); got != 8 {
		t.Fatalf("explicit knob below cutoff: workers = %d, want 8", got)
	}
	if got := cryptoWorkers(1<<20, 3); got != 3 {
		t.Fatalf("explicit knob: workers = %d, want 3", got)
	}
	if got := cryptoWorkers(1<<20, 0); got != 8 {
		t.Fatalf("auto above cutoff: workers = %d, want GOMAXPROCS 8", got)
	}
	// The w8-vs-w1 regression fix: a knob above GOMAXPROCS clamps
	// instead of oversubscribing.
	runtime.GOMAXPROCS(2)
	if got := cryptoWorkers(1<<20, 8); got != 2 {
		t.Fatalf("knob above GOMAXPROCS: workers = %d, want clamp to 2", got)
	}
}
