package metadata

import (
	"bytes"
	"crypto/rand"
	"errors"
	"sync"
	"testing"

	"nexus/internal/uuid"
)

// workerCounts are the fan-out widths every parallel-path test sweeps;
// the satellite spec calls for {1, 2, 8}.
var workerCounts = []int{1, 2, 8}

func TestParallelRoundTripMatchesAcrossWorkerCounts(t *testing.T) {
	for _, size := range []int{0, 1, 1023, 1024, 1025, 64 << 10, 1 << 20} {
		f := NewFilenode(uuid.New(), uuid.New(), 4096)
		pt := make([]byte, size)
		if _, err := rand.Read(pt); err != nil {
			t.Fatal(err)
		}
		for _, w := range workerCounts {
			blob, err := f.EncryptContentWorkers(pt, w)
			if err != nil {
				t.Fatalf("size %d workers %d: encrypt: %v", size, w, err)
			}
			if len(blob) != size {
				t.Fatalf("size %d workers %d: ciphertext %d bytes", size, w, len(blob))
			}
			// The same blob must decrypt byte-identically under every
			// fan-out width, not only the one that produced it.
			for _, dw := range workerCounts {
				got, err := f.DecryptContentWorkers(blob, dw)
				if err != nil {
					t.Fatalf("size %d enc-workers %d dec-workers %d: decrypt: %v", size, w, dw, err)
				}
				if !bytes.Equal(got, pt) {
					t.Fatalf("size %d enc-workers %d dec-workers %d: round trip mismatch", size, w, dw)
				}
			}
		}
	}
}

func TestParallelTamperReorderTruncateDetected(t *testing.T) {
	const chunk = 1024
	f := NewFilenode(uuid.New(), uuid.Nil, chunk)
	pt := make([]byte, 16*chunk)
	if _, err := rand.Read(pt); err != nil {
		t.Fatal(err)
	}
	blob, err := f.EncryptContentWorkers(pt, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		// Bit flip in a middle chunk.
		mut := bytes.Clone(blob)
		mut[7*chunk+13] ^= 1
		if _, err := f.DecryptContentWorkers(mut, w); !errors.Is(err, ErrTampered) {
			t.Fatalf("workers %d: ciphertext flip accepted: %v", w, err)
		}
		// Consistent reorder of two chunks (data swapped with contexts).
		swapped := bytes.Clone(blob)
		copy(swapped[0:chunk], blob[chunk:2*chunk])
		copy(swapped[chunk:2*chunk], blob[0:chunk])
		f.Chunks[0], f.Chunks[1] = f.Chunks[1], f.Chunks[0]
		if _, err := f.DecryptContentWorkers(swapped, w); !errors.Is(err, ErrTampered) {
			t.Fatalf("workers %d: chunk reorder accepted: %v", w, err)
		}
		f.Chunks[0], f.Chunks[1] = f.Chunks[1], f.Chunks[0]
		// Truncation and extension.
		if _, err := f.DecryptContentWorkers(blob[:len(blob)-1], w); !errors.Is(err, ErrTampered) {
			t.Fatalf("workers %d: truncation accepted: %v", w, err)
		}
		if _, err := f.DecryptContentWorkers(append(bytes.Clone(blob), 0), w); !errors.Is(err, ErrTampered) {
			t.Fatalf("workers %d: extension accepted: %v", w, err)
		}
	}
}

// TestParallelFreshKeysPerUpdate asserts that batching key/IV generation
// into one crypto/rand read preserves the §VI-A fresh-keys-per-update
// semantics: no chunk reuses a key or IV across updates, and no two
// chunks of one update share material.
func TestParallelFreshKeysPerUpdate(t *testing.T) {
	for _, w := range workerCounts {
		f := NewFilenode(uuid.New(), uuid.Nil, 1024)
		pt := bytes.Repeat([]byte{7}, 8*1024)
		if _, err := f.EncryptContentWorkers(pt, w); err != nil {
			t.Fatal(err)
		}
		first := make([]ChunkContext, len(f.Chunks))
		copy(first, f.Chunks)
		if _, err := f.EncryptContentWorkers(pt, w); err != nil {
			t.Fatal(err)
		}
		for i := range f.Chunks {
			if f.Chunks[i].Key == first[i].Key {
				t.Fatalf("workers %d: chunk %d key reused across updates", w, i)
			}
			if f.Chunks[i].IV == first[i].IV {
				t.Fatalf("workers %d: chunk %d IV reused across updates", w, i)
			}
		}
		seen := make(map[[BodyKeySize]byte]int)
		for i := range f.Chunks {
			if j, dup := seen[f.Chunks[i].Key]; dup {
				t.Fatalf("workers %d: chunks %d and %d share a key within one update", w, j, i)
			}
			seen[f.Chunks[i].Key] = i
		}
	}
}

// TestParallelPipelineRaceClean hammers independent filenodes from many
// goroutines while each filenode internally fans out its chunk work;
// meaningful only under -race, where it proves the pipeline shares no
// hidden state across instances or workers.
func TestParallelPipelineRaceClean(t *testing.T) {
	pt := make([]byte, 256<<10)
	if _, err := rand.Read(pt); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			f := NewFilenode(uuid.New(), uuid.Nil, 16<<10)
			for iter := 0; iter < 3; iter++ {
				blob, err := f.EncryptContentWorkers(pt, workers)
				if err != nil {
					errs <- err
					return
				}
				got, err := f.DecryptContentWorkers(blob, workers)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, pt) {
					errs <- errors.New("round trip mismatch under concurrency")
					return
				}
			}
		}(1 + g%4)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSerialCutoffPicksSerial pins the auto-mode heuristic: small
// content resolves to one worker, large content to GOMAXPROCS, and an
// explicit knob is always honored.
func TestSerialCutoffPicksSerial(t *testing.T) {
	if got := cryptoWorkers(serialCutoffBytes-1, 0); got != 1 {
		t.Fatalf("auto below cutoff: workers = %d, want 1", got)
	}
	if got := cryptoWorkers(serialCutoffBytes-1, 8); got != 8 {
		t.Fatalf("explicit knob below cutoff: workers = %d, want 8", got)
	}
	if got := cryptoWorkers(1<<20, 3); got != 3 {
		t.Fatalf("explicit knob: workers = %d, want 3", got)
	}
}
