package metadata

import (
	"errors"
	"fmt"

	"nexus/internal/acl"
	"nexus/internal/serial"
	"nexus/internal/uuid"
)

// DefaultBucketSize is the default number of directory entries per
// bucket; the paper's evaluation sets it to 128 (§VII).
const DefaultBucketSize = 128

// EntryKind discriminates directory entries.
type EntryKind uint8

// Entry kinds.
const (
	KindFile EntryKind = iota + 1
	KindDir
	KindSymlink
)

func (k EntryKind) String() string {
	switch k {
	case KindFile:
		return "file"
	case KindDir:
		return "dir"
	case KindSymlink:
		return "symlink"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// DirEntry maps a human-readable name to the UUID of the entry's
// metadata object. Names only ever appear inside encrypted dirnode
// buckets; the storage service sees UUIDs (§IV-A1).
type DirEntry struct {
	Name string
	UUID uuid.UUID
	Kind EntryKind
	// SymlinkTarget is the link target for KindSymlink entries.
	SymlinkTarget string
}

// Dirnode errors.
var (
	// ErrEntryExists reports a name collision on insert.
	ErrEntryExists = errors.New("metadata: directory entry already exists")
	// ErrEntryNotFound reports a lookup miss.
	ErrEntryNotFound = errors.New("metadata: directory entry not found")
	// ErrBucketMACMismatch reports a bucket whose tag does not match the
	// main dirnode's record — a stale or substituted bucket.
	ErrBucketMACMismatch = errors.New("metadata: bucket MAC mismatch (rollback or substitution)")
)

// BucketRef is the main dirnode's record of one bucket: its object UUID,
// entry count, and the GCM tag of its current sealed form. Recording the
// tag prevents bucket-level rollback: a re-served stale bucket fails the
// MAC comparison (§V-B).
type BucketRef struct {
	UUID  uuid.UUID
	Count uint32
	MAC   [16]byte
}

// Bucket holds a slice of a directory's entries and is sealed as an
// independent metadata object, so large directories only rewrite the
// buckets they touch. Flushes are copy-on-write: a dirty bucket is
// written under a fresh UUID and the old object retired, so readers
// holding the previous main dirnode still find a consistent snapshot.
type Bucket struct {
	// UUID names the bucket object; its sealed parent is the dirnode.
	UUID    uuid.UUID
	Entries []DirEntry
	// Dirty marks buckets needing a flush.
	Dirty bool
	// OnStore reports whether this bucket's current UUID exists as a
	// store object (false for buckets created in memory and never
	// flushed). Not serialized; decoding sets it.
	OnStore bool
}

// EncodeBody serializes the bucket body for Seal.
func (b *Bucket) EncodeBody() []byte {
	w := serial.NewWriter(32 * len(b.Entries))
	w.WriteUint32(uint32(len(b.Entries)))
	for _, e := range b.Entries {
		w.WriteString(e.Name)
		w.WriteRaw(e.UUID[:])
		w.WriteUint8(uint8(e.Kind))
		w.WriteString(e.SymlinkTarget)
	}
	return w.Bytes()
}

// DecodeBucketBody parses a body produced by Bucket.EncodeBody.
func DecodeBucketBody(body []byte) (*Bucket, error) {
	r := serial.NewReader(body)
	n := r.ReadCount(0, "bucket entry count")
	b := &Bucket{}
	if n > 0 {
		b.Entries = make([]DirEntry, 0, n)
	}
	for i := 0; i < n; i++ {
		var e DirEntry
		e.Name = r.ReadString(0, "entry name")
		r.ReadRawInto(e.UUID[:], "entry uuid")
		e.Kind = EntryKind(r.ReadUint8("entry kind"))
		e.SymlinkTarget = r.ReadString(0, "symlink target")
		if e.Kind < KindFile || e.Kind > KindSymlink {
			return nil, fmt.Errorf("%w: bad entry kind %d", ErrMalformed, e.Kind)
		}
		b.Entries = append(b.Entries, e)
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("decoding bucket: %w", err)
	}
	return b, nil
}

// Dirnode represents one directory: its ACL and its bucketed entry list.
// The main dirnode object holds the ACL and bucket references; entries
// live in the bucket objects. Buckets are loaded on demand, so the
// in-memory Dirnode tracks which are resident.
type Dirnode struct {
	// UUID names the main dirnode object.
	UUID uuid.UUID
	// Parent is the containing dirnode (nil UUID for the volume root,
	// whose sealed parent is the supernode).
	Parent uuid.UUID
	// ACL is the directory's access control list.
	ACL acl.List
	// BucketSize caps entries per bucket.
	BucketSize uint32
	// Refs mirror the sealed main object's bucket table.
	Refs []BucketRef
	// Buckets holds resident (loaded) buckets, indexed as Refs.
	// A nil slot means not loaded.
	Buckets []*Bucket
	// Retired lists bucket objects superseded by the previous flush's
	// copy-on-write rewrites; the next flush deletes them. Keeping one
	// retired generation lets concurrent readers of the previous main
	// object finish their traversals.
	Retired []uuid.UUID
}

// NewDirnode creates an empty directory.
func NewDirnode(id, parent uuid.UUID, bucketSize uint32) *Dirnode {
	if bucketSize == 0 {
		bucketSize = DefaultBucketSize
	}
	return &Dirnode{UUID: id, Parent: parent, BucketSize: bucketSize}
}

// EncodeBody serializes the main dirnode body (ACL + bucket refs).
func (d *Dirnode) EncodeBody() []byte {
	w := serial.NewWriter(64 + 40*len(d.Refs))
	d.ACL.Encode(w)
	w.WriteUint32(d.BucketSize)
	w.WriteUint32(uint32(len(d.Refs)))
	for _, ref := range d.Refs {
		w.WriteRaw(ref.UUID[:])
		w.WriteUint32(ref.Count)
		w.WriteRaw(ref.MAC[:])
	}
	w.WriteUint32(uint32(len(d.Retired)))
	for _, id := range d.Retired {
		w.WriteRaw(id[:])
	}
	return w.Bytes()
}

// DecodeDirnodeBody parses a body produced by EncodeBody. The caller
// supplies the UUID and parent from the verified preamble.
func DecodeDirnodeBody(id, parent uuid.UUID, body []byte) (*Dirnode, error) {
	r := serial.NewReader(body)
	d := &Dirnode{UUID: id, Parent: parent}
	d.ACL = acl.DecodeList(r)
	d.BucketSize = r.ReadUint32("bucket size")
	n := r.ReadCount(0, "bucket ref count")
	if n > 0 {
		d.Refs = make([]BucketRef, 0, n)
	}
	for i := 0; i < n; i++ {
		var ref BucketRef
		r.ReadRawInto(ref.UUID[:], "bucket uuid")
		ref.Count = r.ReadUint32("bucket count")
		r.ReadRawInto(ref.MAC[:], "bucket mac")
		d.Refs = append(d.Refs, ref)
	}
	nRetired := r.ReadCount(0, "retired bucket count")
	for i := 0; i < nRetired; i++ {
		var id uuid.UUID
		r.ReadRawInto(id[:], "retired bucket uuid")
		d.Retired = append(d.Retired, id)
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("decoding dirnode: %w", err)
	}
	if d.BucketSize == 0 {
		return nil, fmt.Errorf("%w: zero bucket size", ErrMalformed)
	}
	d.Buckets = make([]*Bucket, len(d.Refs))
	return d, nil
}

// EntryCount returns the directory's total entry count without loading
// buckets.
func (d *Dirnode) EntryCount() int {
	total := 0
	for _, ref := range d.Refs {
		total += int(ref.Count)
	}
	return total
}

// bucketLoader fetches and verifies the bucket at index i; the enclave
// supplies one that performs the ocall, Open, and MAC comparison.
type bucketLoader func(i int) (*Bucket, error)

// ensureBucket returns the bucket at index i, loading it if necessary.
func (d *Dirnode) ensureBucket(i int, load bucketLoader) (*Bucket, error) {
	if i < 0 || i >= len(d.Buckets) {
		return nil, fmt.Errorf("%w: bucket index %d of %d", ErrMalformed, i, len(d.Buckets))
	}
	if d.Buckets[i] != nil {
		return d.Buckets[i], nil
	}
	b, err := load(i)
	if err != nil {
		return nil, err
	}
	b.UUID = d.Refs[i].UUID
	b.OnStore = true
	d.Buckets[i] = b
	return b, nil
}

// Lookup finds an entry by name, loading buckets on demand.
func (d *Dirnode) Lookup(name string, load bucketLoader) (DirEntry, error) {
	for i := range d.Refs {
		b, err := d.ensureBucket(i, load)
		if err != nil {
			return DirEntry{}, err
		}
		for _, e := range b.Entries {
			if e.Name == name {
				return e, nil
			}
		}
	}
	return DirEntry{}, fmt.Errorf("%w: %q", ErrEntryNotFound, name)
}

// List returns all entries in bucket order.
func (d *Dirnode) List(load bucketLoader) ([]DirEntry, error) {
	out := make([]DirEntry, 0, d.EntryCount())
	for i := range d.Refs {
		b, err := d.ensureBucket(i, load)
		if err != nil {
			return nil, err
		}
		out = append(out, b.Entries...)
	}
	return out, nil
}

// Insert adds an entry, filling the last non-full bucket or creating a
// new one. It fails with ErrEntryExists on a name collision.
func (d *Dirnode) Insert(e DirEntry, load bucketLoader) error {
	if _, err := d.Lookup(e.Name, load); err == nil {
		return fmt.Errorf("%w: %q", ErrEntryExists, e.Name)
	} else if !errors.Is(err, ErrEntryNotFound) {
		return err
	}
	// Find a bucket with room.
	for i := range d.Refs {
		if d.Refs[i].Count < d.BucketSize {
			b, err := d.ensureBucket(i, load)
			if err != nil {
				return err
			}
			b.Entries = append(b.Entries, e)
			b.Dirty = true
			d.Refs[i].Count++
			return nil
		}
	}
	// All buckets full: start a new one.
	b := &Bucket{UUID: uuid.New(), Entries: []DirEntry{e}, Dirty: true}
	d.Refs = append(d.Refs, BucketRef{UUID: b.UUID, Count: 1})
	d.Buckets = append(d.Buckets, b)
	return nil
}

// Remove deletes the named entry and returns it. Empty buckets are kept
// (their objects shrink but remain), matching the prototype's behaviour
// of only rewriting dirty buckets.
func (d *Dirnode) Remove(name string, load bucketLoader) (DirEntry, error) {
	for i := range d.Refs {
		b, err := d.ensureBucket(i, load)
		if err != nil {
			return DirEntry{}, err
		}
		for j, e := range b.Entries {
			if e.Name == name {
				b.Entries = append(b.Entries[:j], b.Entries[j+1:]...)
				b.Dirty = true
				d.Refs[i].Count--
				return e, nil
			}
		}
	}
	return DirEntry{}, fmt.Errorf("%w: %q", ErrEntryNotFound, name)
}

// DirtyBuckets returns the indices of buckets needing a flush.
func (d *Dirnode) DirtyBuckets() []int {
	var out []int
	for i, b := range d.Buckets {
		if b != nil && b.Dirty {
			out = append(out, i)
		}
	}
	return out
}
