package metadata

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"testing"
	"testing/quick"

	"nexus/internal/uuid"
)

func testRootKey(t *testing.T) []byte {
	t.Helper()
	k, err := NewRootKey()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestSealOpenRoundTrip(t *testing.T) {
	rk := testRootKey(t)
	p := Preamble{Type: TypeDirnode, UUID: uuid.New(), Parent: uuid.New(), Version: 7}
	body := []byte("directory listing plaintext")

	blob, err := Seal(rk, p, body)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if bytes.Contains(blob, body) {
		t.Fatal("sealed blob contains plaintext body")
	}
	gotP, gotBody, err := Open(rk, blob)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if gotP != p {
		t.Fatalf("preamble = %+v, want %+v", gotP, p)
	}
	if !bytes.Equal(gotBody, body) {
		t.Fatal("body mismatch")
	}
}

func TestSealFreshKeysPerUpdate(t *testing.T) {
	rk := testRootKey(t)
	p := Preamble{Type: TypeFilenode, UUID: uuid.New(), Version: 1}
	body := []byte("same body")
	b1, err := Seal(rk, p, body)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Seal(rk, p, body)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1, b2) {
		t.Fatal("two seals of the same body are identical (keys not fresh)")
	}
}

func TestOpenWrongRootKey(t *testing.T) {
	rk1 := testRootKey(t)
	rk2 := testRootKey(t)
	blob, err := Seal(rk1, Preamble{Type: TypeSupernode, UUID: uuid.New(), Version: 1}, []byte("body"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(rk2, blob); !errors.Is(err, ErrTampered) {
		t.Fatalf("Open with wrong rootkey = %v, want ErrTampered", err)
	}
}

func TestOpenDetectsAnyBitFlip(t *testing.T) {
	rk := testRootKey(t)
	blob, err := Seal(rk, Preamble{Type: TypeDirnode, UUID: uuid.New(), Version: 3}, []byte("sensitive"))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in every region: preamble, wrapped key, IV, ciphertext,
	// tag. All must fail (preamble flips may also surface as Malformed).
	for i := 0; i < len(blob); i++ {
		mut := bytes.Clone(blob)
		mut[i] ^= 0x01
		if _, _, err := Open(rk, mut); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
}

func TestOpenRejectsShortAndGarbage(t *testing.T) {
	rk := testRootKey(t)
	if _, _, err := Open(rk, nil); err == nil {
		t.Fatal("nil blob accepted")
	}
	if _, _, err := Open(rk, make([]byte, 10)); err == nil {
		t.Fatal("short blob accepted")
	}
	junk := make([]byte, 256)
	if _, err := rand.Read(junk); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(rk, junk); err == nil {
		t.Fatal("garbage blob accepted")
	}
}

func TestPreambleVersionIsAuthenticated(t *testing.T) {
	// An attacker rolling back the plaintext version field must be
	// detected, since the preamble is AAD for both wrap and body.
	rk := testRootKey(t)
	p := Preamble{Type: TypeDirnode, UUID: uuid.New(), Version: 9}
	blob, err := Seal(rk, p, []byte("body"))
	if err != nil {
		t.Fatal(err)
	}
	mut := bytes.Clone(blob)
	// The version field is the last 8 preamble bytes.
	mut[preambleSize-8] = 1 // version 9 -> 1
	if _, _, err := Open(rk, mut); err == nil {
		t.Fatal("preamble version rollback accepted")
	}
}

func TestPeekPreamble(t *testing.T) {
	rk := testRootKey(t)
	p := Preamble{Type: TypeFilenode, UUID: uuid.New(), Parent: uuid.New(), Version: 2}
	blob, err := Seal(rk, p, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := PeekPreamble(blob)
	if err != nil {
		t.Fatalf("PeekPreamble: %v", err)
	}
	if got != p {
		t.Fatalf("PeekPreamble = %+v, want %+v", got, p)
	}
	if _, err := PeekPreamble(blob[:preambleSize-1]); err == nil {
		t.Fatal("short preamble accepted")
	}
}

func TestTagExtraction(t *testing.T) {
	rk := testRootKey(t)
	blob, err := Seal(rk, Preamble{Type: TypeDirBucket, UUID: uuid.New(), Version: 1}, []byte("bucket"))
	if err != nil {
		t.Fatal(err)
	}
	tag, err := Tag(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tag[:], blob[len(blob)-16:]) {
		t.Fatal("Tag did not return trailing 16 bytes")
	}
	if _, err := Tag(make([]byte, 8)); err == nil {
		t.Fatal("Tag of short blob accepted")
	}
}

func TestQuickSealOpen(t *testing.T) {
	rk := testRootKey(t)
	f := func(body []byte, version uint64) bool {
		p := Preamble{Type: TypeDirnode, UUID: uuid.New(), Version: version}
		blob, err := Seal(rk, p, body)
		if err != nil {
			return false
		}
		gotP, gotBody, err := Open(rk, blob)
		return err == nil && gotP == p && bytes.Equal(gotBody, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// --- Supernode ---

func newKey(t *testing.T) ed25519.PublicKey {
	t.Helper()
	pub, _, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return pub
}

func TestSupernodeUserManagement(t *testing.T) {
	ownerKey := newKey(t)
	s, err := NewSupernode("owen", ownerKey)
	if err != nil {
		t.Fatal(err)
	}
	if s.Owner.ID != OwnerUserID {
		t.Fatalf("owner ID = %d", s.Owner.ID)
	}

	aliceKey := newKey(t)
	aliceID, err := s.AddUser("alice", aliceKey)
	if err != nil {
		t.Fatal(err)
	}
	if aliceID == OwnerUserID {
		t.Fatal("alice assigned the owner ID")
	}
	bobID, err := s.AddUser("bob", newKey(t))
	if err != nil {
		t.Fatal(err)
	}
	if bobID == aliceID {
		t.Fatal("duplicate user IDs assigned")
	}

	// Duplicates rejected.
	if _, err := s.AddUser("alice", newKey(t)); !errors.Is(err, ErrUserExists) {
		t.Fatalf("duplicate name = %v", err)
	}
	if _, err := s.AddUser("alice2", aliceKey); !errors.Is(err, ErrUserExists) {
		t.Fatalf("duplicate key = %v", err)
	}
	if _, err := s.AddUser("owen", newKey(t)); !errors.Is(err, ErrUserExists) {
		t.Fatalf("owner name reuse = %v", err)
	}

	// Lookups.
	u, err := s.FindUserByKey(aliceKey)
	if err != nil || u.Name != "alice" {
		t.Fatalf("FindUserByKey = %+v, %v", u, err)
	}
	u, err = s.FindUserByName("owen")
	if err != nil || u.ID != OwnerUserID {
		t.Fatalf("FindUserByName(owen) = %+v, %v", u, err)
	}

	// Removal (revocation).
	removedID, err := s.RemoveUser("alice")
	if err != nil || removedID != aliceID {
		t.Fatalf("RemoveUser = %d, %v", removedID, err)
	}
	if _, err := s.FindUserByKey(aliceKey); !errors.Is(err, ErrUserNotFound) {
		t.Fatal("alice still present after removal")
	}
	if _, err := s.RemoveUser("owen"); err == nil {
		t.Fatal("owner removal accepted")
	}
	// IDs are never reused.
	carolID, err := s.AddUser("carol", newKey(t))
	if err != nil {
		t.Fatal(err)
	}
	if carolID == aliceID {
		t.Fatal("revoked user's ID was reused")
	}
}

func TestSupernodeEncodeDecode(t *testing.T) {
	s, err := NewSupernode("owen", newKey(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddUser("alice", newKey(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddUser("bob", newKey(t)); err != nil {
		t.Fatal(err)
	}

	got, err := DecodeSupernodeBody(s.EncodeBody())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.VolumeUUID != s.VolumeUUID || got.RootDir != s.RootDir {
		t.Fatal("uuid fields lost")
	}
	if got.Owner.Name != "owen" || !bytes.Equal(got.Owner.PublicKey, s.Owner.PublicKey) {
		t.Fatal("owner lost")
	}
	if len(got.Users) != 2 || got.Users[0].Name != "alice" || got.NextUserID != s.NextUserID {
		t.Fatalf("users lost: %+v", got.Users)
	}

	// Truncated body rejected.
	if _, err := DecodeSupernodeBody(s.EncodeBody()[:10]); err == nil {
		t.Fatal("truncated supernode accepted")
	}
}

func TestSupernodeValidation(t *testing.T) {
	if _, err := NewSupernode("", newKey(t)); err == nil {
		t.Fatal("empty owner name accepted")
	}
	if _, err := NewSupernode("o", ed25519.PublicKey([]byte("short"))); err == nil {
		t.Fatal("short owner key accepted")
	}
	s, err := NewSupernode("o", newKey(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddUser("", newKey(t)); err == nil {
		t.Fatal("empty username accepted")
	}
}
