package metadata

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"nexus/internal/acl"
	"nexus/internal/groupkey"
)

// syntheticKey returns a deterministic 32-byte "public key". AddUser
// only validates key length and uniqueness, so filling the table to the
// maxUsers bound does not need 64K real ed25519 keypairs.
func syntheticKey(i uint32) ed25519.PublicKey {
	k := make([]byte, ed25519.PublicKeySize)
	binary.BigEndian.PutUint32(k, i)
	k[ed25519.PublicKeySize-1] = 0xA5
	return k
}

// TestSupernodeUserTableAtMaxUsersBound fills the table to capacity,
// asserting that lookups stay correct through the fill (the lazy index,
// not a rescan, must be serving them — a linear scan here is the
// regression this guards against), that the maxUsers bound is enforced,
// and that removal frees a slot.
func TestSupernodeUserTableAtMaxUsersBound(t *testing.T) {
	s, err := NewSupernode("owen", syntheticKey(0))
	if err != nil {
		t.Fatal(err)
	}
	// Owner occupies one slot: maxUsers-1 additions fit.
	for i := 1; i < maxUsers; i++ {
		name := fmt.Sprintf("u%d", i)
		if _, err := s.AddUser(name, syntheticKey(uint32(i))); err != nil {
			t.Fatalf("AddUser #%d: %v", i, err)
		}
	}
	if len(s.Users) != maxUsers-1 {
		t.Fatalf("table holds %d users, want %d", len(s.Users), maxUsers-1)
	}
	// At capacity: the next add must fail with the typed error.
	if _, err := s.AddUser("overflow", syntheticKey(maxUsers+7)); !errors.Is(err, ErrUserTableFull) {
		t.Fatalf("over-capacity AddUser err = %v, want ErrUserTableFull", err)
	}
	// Lookups at the bound: first, last, middle, owner, and a miss.
	for _, name := range []string{"u1", "u32768", fmt.Sprintf("u%d", maxUsers-1)} {
		u, err := s.FindUserByName(name)
		if err != nil || u.Name != name {
			t.Fatalf("FindUserByName(%s) = %+v, %v", name, u, err)
		}
		byKey, err := s.FindUserByKey(u.PublicKey)
		if err != nil || byKey.ID != u.ID {
			t.Fatalf("FindUserByKey(%s) = %+v, %v", name, byKey, err)
		}
	}
	if u, err := s.FindUserByName("owen"); err != nil || u.ID != OwnerUserID {
		t.Fatalf("owner lookup = %+v, %v", u, err)
	}
	if _, err := s.FindUserByName("nobody"); !errors.Is(err, ErrUserNotFound) {
		t.Fatalf("miss err = %v", err)
	}
	// Duplicate detection still works at the bound (and must not panic
	// on the full index).
	if _, err := s.AddUser("u5", syntheticKey(999_999)); !errors.Is(err, ErrUserExists) {
		// Either full or exists is defensible; the table is full first.
		if !errors.Is(err, ErrUserTableFull) {
			t.Fatalf("duplicate-at-capacity err = %v", err)
		}
	}
	// Removing one frees exactly one slot.
	if _, err := s.RemoveUser("u17"); err != nil {
		t.Fatalf("RemoveUser: %v", err)
	}
	if _, err := s.FindUserByName("u17"); !errors.Is(err, ErrUserNotFound) {
		t.Fatal("removed user still found")
	}
	if _, err := s.AddUser("replacement", syntheticKey(maxUsers+8)); err != nil {
		t.Fatalf("AddUser into freed slot: %v", err)
	}
	if u, err := s.FindUserByName("replacement"); err != nil || u.Name != "replacement" {
		t.Fatalf("replacement lookup = %+v, %v", u, err)
	}
}

// TestSupernodeLookupsConstantTime compares lookup cost at two table
// sizes: with the index, per-lookup work must not scale with n. A 64×
// table growth allows ≤8× timing slack (noise), which an O(n) scan
// blows through by an order of magnitude.
func TestSupernodeLookupsConstantTime(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	build := func(n int) *Supernode {
		s, err := NewSupernode("owen", syntheticKey(0))
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= n; i++ {
			if _, err := s.AddUser(fmt.Sprintf("u%d", i), syntheticKey(uint32(i))); err != nil {
				t.Fatal(err)
			}
		}
		s.ensureIndex()
		return s
	}
	lookups := func(s *Supernode, n int) int64 {
		target := fmt.Sprintf("u%d", n) // worst case for a linear scan
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.FindUserByName(target); err != nil {
					b.Fatal(err)
				}
			}
		})
		return res.NsPerOp()
	}
	small := lookups(build(512), 512)
	big := lookups(build(32768), 32768)
	if small > 0 && big > small*8 {
		t.Fatalf("lookup scaled with table size: %dns @512 → %dns @32768", small, big)
	}
}

// TestSupernodeUserIDSpaceReservedForGroups pins the invariant the ACL
// group encoding relies on: user IDs assigned by the supernode never
// collide with acl.GroupIDFlag-tagged entries.
func TestSupernodeUserIDSpaceReservedForGroups(t *testing.T) {
	s, err := NewSupernode("owen", syntheticKey(0))
	if err != nil {
		t.Fatal(err)
	}
	s.NextUserID = acl.GroupIDFlag // simulate exhaustion
	if _, err := s.AddUser("flagged", syntheticKey(1)); err == nil {
		t.Fatal("AddUser assigned an ID in the group-entry space")
	}
	s.NextUserID = acl.GroupIDFlag - 1
	id, err := s.AddUser("last", syntheticKey(2))
	if err != nil || id != acl.GroupIDFlag-1 {
		t.Fatalf("last assignable ID = %d, %v", id, err)
	}
	if acl.IsGroupEntry(id) {
		t.Fatal("assigned ID reads as a group entry")
	}
}

// TestSupernodeGroupTreeRoundTrip covers the versioned trailing
// extension: a tree survives encode/decode, and legacy bodies (no
// extension) still load with GroupTree nil.
func TestSupernodeGroupTreeRoundTrip(t *testing.T) {
	s, err := NewSupernode("owen", syntheticKey(0))
	if err != nil {
		t.Fatal(err)
	}
	aliceID, err := s.AddUser("alice", syntheticKey(1))
	if err != nil {
		t.Fatal(err)
	}
	// Legacy layout first: no tree, body must end after NextUserID.
	legacy := s.EncodeBody()
	got, err := DecodeSupernodeBody(legacy)
	if err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	if got.GroupTree != nil {
		t.Fatal("legacy body decoded with a group tree")
	}

	// Extended layout.
	s.GroupTree = groupkey.NewTree(groupkey.Config{LeafCap: 2, Fanout: 2})
	for _, id := range []uint32{OwnerUserID, aliceID} {
		if _, err := s.GroupTree.Add(id); err != nil {
			t.Fatal(err)
		}
	}
	ext := s.EncodeBody()
	got, err = DecodeSupernodeBody(ext)
	if err != nil {
		t.Fatalf("extended decode: %v", err)
	}
	if got.GroupTree == nil {
		t.Fatal("extended body lost the group tree")
	}
	if got.GroupTree.Len() != 2 || !got.GroupTree.Contains(aliceID) {
		t.Fatalf("decoded tree: len=%d contains(alice)=%v", got.GroupTree.Len(), got.GroupTree.Contains(aliceID))
	}
	if !bytes.Equal(got.GroupTree.RootSecret(), s.GroupTree.RootSecret()) {
		t.Fatal("decoded tree root differs")
	}
	if err := got.GroupTree.Authenticate(aliceID); err != nil {
		t.Fatalf("decoded tree Authenticate: %v", err)
	}
	// The old decoder path (legacy bytes are a strict prefix of the
	// extended bytes) still applies: truncating the extension off the
	// extended body yields the legacy body exactly.
	if !bytes.Equal(ext[:len(legacy)], legacy) {
		t.Fatal("extension changed the legacy prefix")
	}
	// Corrupt extension tag must be rejected, not ignored.
	bad := bytes.Clone(ext)
	bad[len(legacy)] = 99
	if _, err := DecodeSupernodeBody(bad); err == nil {
		t.Fatal("unknown extension tag accepted")
	}
	// Corrupt tree blob must be rejected.
	bad = bytes.Clone(ext)
	bad[len(bad)-1] ^= 0xFF
	if _, err := DecodeSupernodeBody(bad); err == nil {
		t.Fatal("corrupt tree blob accepted")
	}
}
