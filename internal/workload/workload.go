// Package workload synthesizes the file trees and file populations used
// by the paper's evaluation (DSN'19 §VII): flat directories for the
// directory-operation microbenchmark (Table 5b), git-repository-shaped
// trees for the clone experiment (Fig. 5c), and the LFSD/MFMD/SFLD
// application workloads (Table III).
//
// Generation is deterministic per seed so NEXUS and baseline runs see
// identical trees.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"path"

	"nexus/internal/fsapi"
)

// FileSpec is one file to create.
type FileSpec struct {
	Path string
	Size int64
}

// Tree is a generated directory tree.
type Tree struct {
	// Name labels the workload in benchmark output.
	Name string
	// Dirs are all directories in creation order (parents first).
	Dirs []string
	// Files are the files to populate.
	Files []FileSpec
	// TotalBytes is the sum of file sizes.
	TotalBytes int64
}

// TreeSpec parameterizes tree synthesis.
type TreeSpec struct {
	Name     string
	NumFiles int
	NumDirs  int
	MaxDepth int
	// MinFileSize and MaxFileSize bound the size distribution. Sizes are
	// drawn log-uniformly so most files are small with a heavy tail,
	// like real repositories.
	MinFileSize int64
	MaxFileSize int64
	Seed        int64
}

// Git-repository-shaped workloads matching the repositories cloned in
// Fig. 5c. File and directory counts follow the paper (redis: 618 files;
// julia: 1096; nodejs: 19912 with directories up to 13 levels deep and
// top directories over a thousand entries); sizes are drawn to land near
// each repository's checkout volume.
var (
	// Redis is the smallest tree: 618 files, shallow.
	Redis = TreeSpec{
		Name: "redis", NumFiles: 618, NumDirs: 60, MaxDepth: 5,
		MinFileSize: 256, MaxFileSize: 256 << 10, Seed: 101,
	}
	// Julia is mid-sized: 1096 files.
	Julia = TreeSpec{
		Name: "julia", NumFiles: 1096, NumDirs: 110, MaxDepth: 7,
		MinFileSize: 256, MaxFileSize: 384 << 10, Seed: 102,
	}
	// NodeJS is the stress case: 19912 files, depth up to 13.
	NodeJS = TreeSpec{
		Name: "nodejs", NumFiles: 19912, NumDirs: 1400, MaxDepth: 13,
		MinFileSize: 128, MaxFileSize: 512 << 10, Seed: 103,
	}
)

// Generate synthesizes a tree from the spec.
func Generate(spec TreeSpec) *Tree {
	rng := rand.New(rand.NewSource(spec.Seed))
	t := &Tree{Name: spec.Name}

	// Directories: a random recursive tree bounded by MaxDepth. The
	// first directory is the root itself ("").
	dirs := []string{""}
	depths := []int{0}
	for len(dirs) < spec.NumDirs+1 {
		// Pick a parent biased towards shallower directories so the tree
		// is bushy near the top (like real repositories).
		pi := rng.Intn(len(dirs))
		if depths[pi] >= spec.MaxDepth {
			continue
		}
		name := fmt.Sprintf("d%03d", len(dirs))
		dir := path.Join(dirs[pi], name)
		dirs = append(dirs, dir)
		depths = append(depths, depths[pi]+1)
	}
	t.Dirs = append(t.Dirs, dirs[1:]...) // skip the root

	// Files: assigned to directories with a skew — a few directories
	// accumulate large populations (the paper calls out NodeJS's top
	// directories of 1458/762/783 entries).
	for i := 0; i < spec.NumFiles; i++ {
		var dir string
		if rng.Float64() < 0.35 && len(dirs) > 3 {
			// Hot directories: one of the first three non-root dirs.
			dir = dirs[1+rng.Intn(3)]
		} else {
			dir = dirs[rng.Intn(len(dirs))]
		}
		size := logUniform(rng, spec.MinFileSize, spec.MaxFileSize)
		f := FileSpec{Path: path.Join(dir, fmt.Sprintf("f%05d", i)), Size: size}
		t.Files = append(t.Files, f)
		t.TotalBytes += size
	}
	return t
}

// logUniform draws from [lo, hi] with a log-uniform distribution.
func logUniform(rng *rand.Rand, lo, hi int64) int64 {
	if lo <= 0 {
		lo = 1
	}
	if hi <= lo {
		return lo
	}
	ratio := float64(hi) / float64(lo)
	f := float64(lo) * math.Pow(ratio, rng.Float64())
	v := int64(f)
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// Content fills deterministic pseudo-random bytes, salting in the term
// the grep benchmark searches for at a low rate.
type Content struct {
	rng  *rand.Rand
	term []byte
}

// NewContent returns a generator seeded deterministically.
func NewContent(seed int64) *Content {
	return &Content{rng: rand.New(rand.NewSource(seed)), term: []byte("javascript\n")}
}

// Fill produces size bytes of compressible, line-structured content with
// occasional occurrences of the search term ("javascript", the paper's
// grep target).
func (c *Content) Fill(size int64) []byte {
	buf := make([]byte, 0, size)
	line := 0
	for int64(len(buf)) < size {
		line++
		if line%37 == 0 {
			buf = append(buf, c.term...)
			continue
		}
		n := 20 + c.rng.Intn(60)
		for i := 0; i < n && int64(len(buf)) < size; i++ {
			buf = append(buf, byte('a'+c.rng.Intn(26)))
		}
		buf = append(buf, '\n')
	}
	return buf[:size]
}

// Materialize creates the tree under root on fs, returning the number of
// objects created. Scale divides file sizes (but never below 1 byte) so
// large workloads stay tractable in CI while preserving file counts.
func Materialize(fs fsapi.FileSystem, root string, t *Tree, scale int64) (int, error) {
	if scale < 1 {
		scale = 1
	}
	content := NewContent(t.TotalBytes) // deterministic per tree
	created := 0
	if err := fs.MkdirAll(root); err != nil {
		return 0, err
	}
	for _, dir := range t.Dirs {
		if err := fs.MkdirAll(path.Join(root, dir)); err != nil {
			return created, fmt.Errorf("workload: mkdir %s: %w", dir, err)
		}
		created++
	}
	for _, f := range t.Files {
		size := f.Size / scale
		if size < 1 {
			size = 1
		}
		if err := fs.WriteFile(path.Join(root, f.Path), content.Fill(size)); err != nil {
			return created, fmt.Errorf("workload: write %s: %w", f.Path, err)
		}
		created++
	}
	return created, nil
}

// FlatSpec describes the flat-directory populations of Table III and
// the Table 5b microbenchmark.
type FlatSpec struct {
	Name     string
	NumFiles int
	FileSize int64
}

// The paper's Table III workloads.
var (
	// LFSD: 32 large files in a small directory (3.2 GB).
	LFSD = FlatSpec{Name: "large-file-small-dir", NumFiles: 32, FileSize: 100 << 20}
	// MFMD: 256 medium files (2.5 GB).
	MFMD = FlatSpec{Name: "medium-file-medium-dir", NumFiles: 256, FileSize: 10 << 20}
	// SFLD: 1024 small files in a large directory (10 MB).
	SFLD = FlatSpec{Name: "small-file-large-dir", NumFiles: 1024, FileSize: 10 << 10}
)

// MaterializeFlat creates the flat population under root, dividing file
// sizes by scale (min 1 byte).
func MaterializeFlat(fs fsapi.FileSystem, root string, spec FlatSpec, scale int64) error {
	if scale < 1 {
		scale = 1
	}
	if err := fs.MkdirAll(root); err != nil {
		return err
	}
	content := NewContent(int64(spec.NumFiles))
	size := spec.FileSize / scale
	if size < 1 {
		size = 1
	}
	data := content.Fill(size)
	for i := 0; i < spec.NumFiles; i++ {
		name := path.Join(root, fmt.Sprintf("file%05d", i))
		if err := fs.WriteFile(name, data); err != nil {
			return fmt.Errorf("workload: write %s: %w", name, err)
		}
	}
	return nil
}
