package workload

import (
	"strings"
	"testing"

	"nexus/internal/backend"
	"nexus/internal/plainfs"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Redis)
	b := Generate(Redis)
	if len(a.Files) != len(b.Files) || a.TotalBytes != b.TotalBytes {
		t.Fatal("generation not deterministic")
	}
	for i := range a.Files {
		if a.Files[i] != b.Files[i] {
			t.Fatalf("file %d differs: %+v vs %+v", i, a.Files[i], b.Files[i])
		}
	}
}

func TestGenerateMatchesPaperCounts(t *testing.T) {
	cases := []struct {
		spec  TreeSpec
		files int
	}{
		{Redis, 618},
		{Julia, 1096},
		{NodeJS, 19912},
	}
	for _, c := range cases {
		tree := Generate(c.spec)
		if len(tree.Files) != c.files {
			t.Errorf("%s: %d files, want %d", c.spec.Name, len(tree.Files), c.files)
		}
		if len(tree.Dirs) != c.spec.NumDirs {
			t.Errorf("%s: %d dirs, want %d", c.spec.Name, len(tree.Dirs), c.spec.NumDirs)
		}
		// Depth bound respected, and NodeJS actually uses its depth.
		maxDepth := 0
		for _, d := range tree.Dirs {
			depth := strings.Count(d, "/") + 1
			if depth > maxDepth {
				maxDepth = depth
			}
		}
		if maxDepth > c.spec.MaxDepth {
			t.Errorf("%s: depth %d exceeds max %d", c.spec.Name, maxDepth, c.spec.MaxDepth)
		}
	}
	nodeTree := Generate(NodeJS)
	deepest := 0
	for _, d := range nodeTree.Dirs {
		if depth := strings.Count(d, "/") + 1; depth > deepest {
			deepest = depth
		}
	}
	if deepest < 8 {
		t.Errorf("nodejs tree max depth %d; want a deep hierarchy", deepest)
	}
}

func TestGenerateSizesWithinBounds(t *testing.T) {
	tree := Generate(Redis)
	for _, f := range tree.Files {
		if f.Size < Redis.MinFileSize || f.Size > Redis.MaxFileSize {
			t.Fatalf("file size %d outside [%d, %d]", f.Size, Redis.MinFileSize, Redis.MaxFileSize)
		}
	}
}

func TestMaterializeTree(t *testing.T) {
	fs := plainfs.New(backend.NewMemStore())
	tree := Generate(TreeSpec{
		Name: "tiny", NumFiles: 40, NumDirs: 8, MaxDepth: 3,
		MinFileSize: 16, MaxFileSize: 1024, Seed: 7,
	})
	created, err := Materialize(fs, "/repo", tree, 1)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if created != len(tree.Dirs)+len(tree.Files) {
		t.Fatalf("created %d, want %d", created, len(tree.Dirs)+len(tree.Files))
	}
	// Every generated file exists with its size.
	for _, f := range tree.Files {
		st, err := fs.Stat("/repo/" + f.Path)
		if err != nil {
			t.Fatalf("Stat(%s): %v", f.Path, err)
		}
		if int64(st.Size) != f.Size {
			t.Fatalf("size of %s = %d, want %d", f.Path, st.Size, f.Size)
		}
	}
}

func TestMaterializeScale(t *testing.T) {
	fs := plainfs.New(backend.NewMemStore())
	tree := Generate(TreeSpec{
		Name: "tiny", NumFiles: 10, NumDirs: 2, MaxDepth: 2,
		MinFileSize: 1000, MaxFileSize: 1000, Seed: 9,
	})
	if _, err := Materialize(fs, "/r", tree, 100); err != nil {
		t.Fatal(err)
	}
	st, err := fs.Stat("/r/" + tree.Files[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != 10 { // 1000/100
		t.Fatalf("scaled size = %d, want 10", st.Size)
	}
}

func TestMaterializeFlat(t *testing.T) {
	fs := plainfs.New(backend.NewMemStore())
	if err := MaterializeFlat(fs, "/sfld", SFLD, 1); err != nil {
		t.Fatal(err)
	}
	entries, err := fs.ReadDir("/sfld")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != SFLD.NumFiles {
		t.Fatalf("files = %d, want %d", len(entries), SFLD.NumFiles)
	}
	st, err := fs.Stat("/sfld/file00000")
	if err != nil || int64(st.Size) != SFLD.FileSize {
		t.Fatalf("Stat = %+v, %v", st, err)
	}
}

func TestContentContainsGrepTerm(t *testing.T) {
	c := NewContent(1)
	data := c.Fill(64 << 10)
	if !strings.Contains(string(data), "javascript") {
		t.Fatal("content never contains the grep term")
	}
	if len(data) != 64<<10 {
		t.Fatalf("Fill returned %d bytes", len(data))
	}
}
