// Package acl implements the discretionary access control model that the
// NEXUS enclave enforces at each directory (DSN'19 §IV-C).
//
// Users are bound to small integer IDs by the volume supernode; each
// dirnode carries an access control list of (user ID, rights) entries
// that applies to all files and subdirectories within the directory.
// Evaluation is default-deny, with the volume owner implicitly granted
// everything. Rights follow the AFS vocabulary the prototype's OpenAFS
// deployment exposes, which is also what "fine-grained policies" means in
// the paper's evaluation.
package acl

import (
	"fmt"
	"strings"

	"nexus/internal/serial"
)

// Rights is a bitmask of directory-scoped permissions.
type Rights uint16

// Individual rights. The vocabulary mirrors AFS directory rights: lookup
// (list and traverse), read (file contents), insert (create entries),
// delete (remove entries), write (modify file contents), and administer
// (change the ACL itself).
const (
	Lookup Rights = 1 << iota
	Read
	Insert
	Delete
	Write
	Administer
)

// Common combinations.
const (
	// None grants nothing; default-deny.
	None Rights = 0
	// ReadOnly is lookup plus read.
	ReadOnly = Lookup | Read
	// ReadWrite grants everything except ACL administration.
	ReadWrite = Lookup | Read | Insert | Delete | Write
	// All grants every right.
	All = ReadWrite | Administer
)

// Has reports whether r includes every right in want.
func (r Rights) Has(want Rights) bool { return r&want == want }

// String renders the rights in AFS letter notation (lrid wa).
func (r Rights) String() string {
	if r == None {
		return "none"
	}
	var b strings.Builder
	for _, f := range []struct {
		bit Rights
		ch  byte
	}{
		{Lookup, 'l'}, {Read, 'r'}, {Insert, 'i'},
		{Delete, 'd'}, {Write, 'w'}, {Administer, 'a'},
	} {
		if r.Has(f.bit) {
			b.WriteByte(f.ch)
		}
	}
	return b.String()
}

// ParseRights parses AFS letter notation ("rlidwa"), plus the shorthands
// "read" (lr), "write" (lridw), "all" and "none".
func ParseRights(s string) (Rights, error) {
	switch strings.ToLower(s) {
	case "none", "":
		return None, nil
	case "read":
		return ReadOnly, nil
	case "write":
		return ReadWrite, nil
	case "all":
		return All, nil
	}
	var r Rights
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case 'l':
			r |= Lookup
		case 'r':
			r |= Read
		case 'i':
			r |= Insert
		case 'd':
			r |= Delete
		case 'w':
			r |= Write
		case 'a':
			r |= Administer
		default:
			return None, fmt.Errorf("acl: unknown right %q in %q", s[i], s)
		}
	}
	return r, nil
}

// GroupIDFlag marks an entry's UserID as naming a subgroup of the
// volume's membership key tree (internal/groupkey) rather than a single
// user: the low 31 bits carry the tree's stable leaf index. Real user
// IDs stay below the flag (the supernode enforces this at AddUser), so
// group entries ride the existing wire format unchanged and pre-group
// volumes decode identically.
const GroupIDFlag uint32 = 1 << 31

// GroupEntryID returns the entry ID naming a key-tree leaf subgroup.
func GroupEntryID(leaf uint32) uint32 { return leaf | GroupIDFlag }

// IsGroupEntry reports whether an entry ID names a subgroup.
func IsGroupEntry(id uint32) bool { return id&GroupIDFlag != 0 }

// GroupLeaf extracts the leaf subgroup index from a group entry ID.
func GroupLeaf(id uint32) uint32 { return id &^ GroupIDFlag }

// Entry grants rights to one user, or — when UserID carries
// GroupIDFlag — to every member of one key-tree leaf subgroup.
type Entry struct {
	UserID uint32
	Rights Rights
}

// List is a directory's access control list. The zero value is an empty
// list (deny everyone but the owner).
type List struct {
	entries []Entry
}

// Clone returns a deep copy.
func (l *List) Clone() List {
	out := List{}
	if len(l.entries) > 0 {
		out.entries = make([]Entry, len(l.entries))
		copy(out.entries, l.entries)
	}
	return out
}

// Len returns the number of entries.
func (l *List) Len() int { return len(l.entries) }

// Entries returns a copy of the entries.
func (l *List) Entries() []Entry {
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Set grants rights to a user, replacing any previous entry. Setting
// None removes the entry entirely (a revocation).
func (l *List) Set(userID uint32, r Rights) {
	if r == None {
		l.Remove(userID)
		return
	}
	for i := range l.entries {
		if l.entries[i].UserID == userID {
			l.entries[i].Rights = r
			return
		}
	}
	l.entries = append(l.entries, Entry{UserID: userID, Rights: r})
}

// Remove deletes the user's entry. It reports whether an entry existed.
func (l *List) Remove(userID uint32) bool {
	for i := range l.entries {
		if l.entries[i].UserID == userID {
			l.entries = append(l.entries[:i], l.entries[i+1:]...)
			return true
		}
	}
	return false
}

// Get returns the user's rights (None when absent).
func (l *List) Get(userID uint32) Rights {
	for _, e := range l.entries {
		if e.UserID == userID {
			return e.Rights
		}
	}
	return None
}

// Decision is the outcome of an access check, carried in errors and logs.
type Decision struct {
	UserID  uint32
	Want    Rights
	Have    Rights
	IsOwner bool
}

// Check evaluates whether the user may perform an action requiring want.
// The owner is always permitted (DSN'19: "automatically grants
// administrative rights to the volume owner"); everyone else needs an
// entry covering every requested right. Deny is the default.
func (l *List) Check(userID uint32, isOwner bool, want Rights) (Decision, bool) {
	d := Decision{UserID: userID, Want: want, IsOwner: isOwner}
	if isOwner {
		d.Have = All
		return d, true
	}
	d.Have = l.Get(userID)
	return d, d.Have.Has(want)
}

// ResolveRights unions the user's direct entry with every group entry
// naming a subgroup in groups (the caller obtains groups from the key
// tree's GroupsOf). Default-deny: no entries, no rights.
func (l *List) ResolveRights(userID uint32, groups []uint32) Rights {
	r := l.Get(userID)
	for _, g := range groups {
		r |= l.Get(GroupEntryID(g))
	}
	return r
}

// CheckGroups is Check with group resolution: the user may act when its
// direct entry and its subgroups' entries together cover want. The
// owner bypass is unchanged.
func (l *List) CheckGroups(userID uint32, isOwner bool, groups []uint32, want Rights) bool {
	if isOwner {
		return true
	}
	return l.ResolveRights(userID, groups).Has(want)
}

// Encode appends the list to w.
func (l *List) Encode(w *serial.Writer) {
	w.WriteUint32(uint32(len(l.entries)))
	for _, e := range l.entries {
		w.WriteUint32(e.UserID)
		w.WriteUint16(uint16(e.Rights))
	}
}

// DecodeList reads a list previously written by Encode.
func DecodeList(r *serial.Reader) List {
	n := r.ReadCount(0, "acl entries")
	l := List{}
	if n > 0 {
		l.entries = make([]Entry, 0, n)
	}
	for i := 0; i < n; i++ {
		l.entries = append(l.entries, Entry{
			UserID: r.ReadUint32("acl user id"),
			Rights: Rights(r.ReadUint16("acl rights")),
		})
	}
	return l
}
