package acl

import (
	"testing"
	"testing/quick"

	"nexus/internal/serial"
)

func TestRightsHas(t *testing.T) {
	if !ReadWrite.Has(Read) || !ReadWrite.Has(Lookup|Write) {
		t.Fatal("ReadWrite missing expected rights")
	}
	if ReadOnly.Has(Write) {
		t.Fatal("ReadOnly includes Write")
	}
	if None.Has(Lookup) {
		t.Fatal("None includes Lookup")
	}
	if !All.Has(Administer) {
		t.Fatal("All missing Administer")
	}
}

func TestRightsStringAndParse(t *testing.T) {
	cases := []struct {
		r    Rights
		want string
	}{
		{None, "none"},
		{ReadOnly, "lr"},
		{ReadWrite, "lridw"},
		{All, "lridwa"},
		{Lookup | Write, "lw"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("%016b.String() = %q, want %q", uint16(c.r), got, c.want)
		}
		back, err := ParseRights(c.want)
		if err != nil {
			t.Errorf("ParseRights(%q): %v", c.want, err)
			continue
		}
		if back != c.r {
			t.Errorf("ParseRights(%q) = %v, want %v", c.want, back, c.r)
		}
	}

	for _, shorthand := range []struct {
		in   string
		want Rights
	}{
		{"read", ReadOnly}, {"write", ReadWrite}, {"all", All}, {"none", None}, {"", None},
	} {
		got, err := ParseRights(shorthand.in)
		if err != nil || got != shorthand.want {
			t.Errorf("ParseRights(%q) = %v, %v", shorthand.in, got, err)
		}
	}

	if _, err := ParseRights("rx"); err == nil {
		t.Fatal("ParseRights accepted unknown right")
	}
}

func TestListSetGetRemove(t *testing.T) {
	var l List
	if got := l.Get(7); got != None {
		t.Fatalf("empty list Get = %v", got)
	}
	l.Set(7, ReadOnly)
	l.Set(9, ReadWrite)
	if got := l.Get(7); got != ReadOnly {
		t.Fatalf("Get(7) = %v", got)
	}
	// Replace.
	l.Set(7, ReadWrite)
	if got := l.Get(7); got != ReadWrite {
		t.Fatalf("Get(7) after replace = %v", got)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	// Remove via Set(None).
	l.Set(7, None)
	if got := l.Get(7); got != None {
		t.Fatalf("Get(7) after revoke = %v", got)
	}
	if l.Len() != 1 {
		t.Fatalf("Len after revoke = %d", l.Len())
	}
	if !l.Remove(9) {
		t.Fatal("Remove(9) = false")
	}
	if l.Remove(9) {
		t.Fatal("second Remove(9) = true")
	}
}

func TestCheckDefaultDeny(t *testing.T) {
	var l List
	if _, ok := l.Check(42, false, Lookup); ok {
		t.Fatal("empty ACL granted access to non-owner")
	}
}

func TestCheckOwnerOverride(t *testing.T) {
	var l List
	d, ok := l.Check(1, true, All)
	if !ok {
		t.Fatal("owner denied")
	}
	if d.Have != All {
		t.Fatalf("owner Have = %v", d.Have)
	}
}

func TestCheckPartialRightsDenied(t *testing.T) {
	var l List
	l.Set(5, ReadOnly)
	if _, ok := l.Check(5, false, Read); !ok {
		t.Fatal("Read denied despite ReadOnly grant")
	}
	if _, ok := l.Check(5, false, Read|Write); ok {
		t.Fatal("Write granted with only ReadOnly")
	}
	d, _ := l.Check(5, false, Write)
	if d.Have != ReadOnly || d.Want != Write {
		t.Fatalf("decision = %+v", d)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var l List
	l.Set(1, ReadOnly)
	l.Set(2, ReadWrite)
	l.Set(1000000, All)

	w := serial.NewWriter(64)
	l.Encode(w)
	r := serial.NewReader(w.Bytes())
	got := DecodeList(r)
	if err := r.Finish(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Len() != 3 || got.Get(2) != ReadWrite || got.Get(1000000) != All {
		t.Fatalf("round trip = %+v", got.Entries())
	}
}

func TestCloneIsDeep(t *testing.T) {
	var l List
	l.Set(1, ReadOnly)
	c := l.Clone()
	c.Set(1, All)
	if l.Get(1) != ReadOnly {
		t.Fatal("Clone shares storage with original")
	}
}

func TestEntriesIsACopy(t *testing.T) {
	var l List
	l.Set(1, ReadOnly)
	es := l.Entries()
	es[0].Rights = All
	if l.Get(1) != ReadOnly {
		t.Fatal("Entries aliases internal storage")
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	f := func(ids []uint32, rights []uint16) bool {
		var l List
		for i, id := range ids {
			if i >= len(rights) {
				break
			}
			r := Rights(rights[i]) & All
			if r == None {
				r = Lookup
			}
			l.Set(id, r)
		}
		w := serial.NewWriter(16 * l.Len())
		l.Encode(w)
		rd := serial.NewReader(w.Bytes())
		got := DecodeList(rd)
		if rd.Finish() != nil || got.Len() != l.Len() {
			return false
		}
		for _, e := range l.Entries() {
			if got.Get(e.UserID) != e.Rights {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupEntryIDHelpers(t *testing.T) {
	for _, leaf := range []uint32{0, 1, 7, 1<<31 - 1} {
		id := GroupEntryID(leaf)
		if !IsGroupEntry(id) {
			t.Fatalf("IsGroupEntry(GroupEntryID(%d)) = false", leaf)
		}
		if got := GroupLeaf(id); got != leaf {
			t.Fatalf("GroupLeaf round-trip: %d → %d", leaf, got)
		}
	}
	for _, userID := range []uint32{1, 42, GroupIDFlag - 1} {
		if IsGroupEntry(userID) {
			t.Fatalf("plain user id %d classified as group", userID)
		}
	}
}

func TestResolveRightsUnionsGroups(t *testing.T) {
	var l List
	l.Set(5, Rights(Insert))
	l.Set(GroupEntryID(0), ReadOnly)
	l.Set(GroupEntryID(3), Rights(Write))

	// Member of leaf 0 only: direct ∪ leaf-0 grant.
	if got := l.ResolveRights(5, []uint32{0}); got != ReadOnly|Insert {
		t.Fatalf("ResolveRights = %v, want %v", got, ReadOnly|Insert)
	}
	// Member of both granted leaves.
	if got := l.ResolveRights(5, []uint32{0, 3}); got != ReadOnly|Insert|Write {
		t.Fatalf("ResolveRights two leaves = %v", got)
	}
	// No direct entry, group only.
	if got := l.ResolveRights(9, []uint32{0}); got != ReadOnly {
		t.Fatalf("group-only ResolveRights = %v, want %v", got, ReadOnly)
	}
	// No groups at all: default deny.
	if got := l.ResolveRights(9, nil); got != None {
		t.Fatalf("no-group ResolveRights = %v, want None", got)
	}
	// Leaf without a grant confers nothing.
	if got := l.ResolveRights(9, []uint32{7}); got != None {
		t.Fatalf("ungranted leaf ResolveRights = %v", got)
	}
}

func TestCheckGroups(t *testing.T) {
	var l List
	l.Set(GroupEntryID(2), ReadOnly)
	if !l.CheckGroups(8, false, []uint32{2}, Read) {
		t.Fatal("group grant did not confer Read")
	}
	if l.CheckGroups(8, false, []uint32{2}, Write) {
		t.Fatal("group grant conferred Write it does not hold")
	}
	if l.CheckGroups(8, false, nil, Read) {
		t.Fatal("non-member passed check")
	}
	if !l.CheckGroups(8, true, nil, All) {
		t.Fatal("owner bypass broken under CheckGroups")
	}
	// Group entries survive the wire format unchanged.
	w := serial.NewWriter(32)
	l.Encode(w)
	got := DecodeList(serial.NewReader(w.Bytes()))
	if got.Get(GroupEntryID(2)) != ReadOnly {
		t.Fatal("group entry lost in encode/decode")
	}
}
