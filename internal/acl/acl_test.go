package acl

import (
	"testing"
	"testing/quick"

	"nexus/internal/serial"
)

func TestRightsHas(t *testing.T) {
	if !ReadWrite.Has(Read) || !ReadWrite.Has(Lookup|Write) {
		t.Fatal("ReadWrite missing expected rights")
	}
	if ReadOnly.Has(Write) {
		t.Fatal("ReadOnly includes Write")
	}
	if None.Has(Lookup) {
		t.Fatal("None includes Lookup")
	}
	if !All.Has(Administer) {
		t.Fatal("All missing Administer")
	}
}

func TestRightsStringAndParse(t *testing.T) {
	cases := []struct {
		r    Rights
		want string
	}{
		{None, "none"},
		{ReadOnly, "lr"},
		{ReadWrite, "lridw"},
		{All, "lridwa"},
		{Lookup | Write, "lw"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("%016b.String() = %q, want %q", uint16(c.r), got, c.want)
		}
		back, err := ParseRights(c.want)
		if err != nil {
			t.Errorf("ParseRights(%q): %v", c.want, err)
			continue
		}
		if back != c.r {
			t.Errorf("ParseRights(%q) = %v, want %v", c.want, back, c.r)
		}
	}

	for _, shorthand := range []struct {
		in   string
		want Rights
	}{
		{"read", ReadOnly}, {"write", ReadWrite}, {"all", All}, {"none", None}, {"", None},
	} {
		got, err := ParseRights(shorthand.in)
		if err != nil || got != shorthand.want {
			t.Errorf("ParseRights(%q) = %v, %v", shorthand.in, got, err)
		}
	}

	if _, err := ParseRights("rx"); err == nil {
		t.Fatal("ParseRights accepted unknown right")
	}
}

func TestListSetGetRemove(t *testing.T) {
	var l List
	if got := l.Get(7); got != None {
		t.Fatalf("empty list Get = %v", got)
	}
	l.Set(7, ReadOnly)
	l.Set(9, ReadWrite)
	if got := l.Get(7); got != ReadOnly {
		t.Fatalf("Get(7) = %v", got)
	}
	// Replace.
	l.Set(7, ReadWrite)
	if got := l.Get(7); got != ReadWrite {
		t.Fatalf("Get(7) after replace = %v", got)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	// Remove via Set(None).
	l.Set(7, None)
	if got := l.Get(7); got != None {
		t.Fatalf("Get(7) after revoke = %v", got)
	}
	if l.Len() != 1 {
		t.Fatalf("Len after revoke = %d", l.Len())
	}
	if !l.Remove(9) {
		t.Fatal("Remove(9) = false")
	}
	if l.Remove(9) {
		t.Fatal("second Remove(9) = true")
	}
}

func TestCheckDefaultDeny(t *testing.T) {
	var l List
	if _, ok := l.Check(42, false, Lookup); ok {
		t.Fatal("empty ACL granted access to non-owner")
	}
}

func TestCheckOwnerOverride(t *testing.T) {
	var l List
	d, ok := l.Check(1, true, All)
	if !ok {
		t.Fatal("owner denied")
	}
	if d.Have != All {
		t.Fatalf("owner Have = %v", d.Have)
	}
}

func TestCheckPartialRightsDenied(t *testing.T) {
	var l List
	l.Set(5, ReadOnly)
	if _, ok := l.Check(5, false, Read); !ok {
		t.Fatal("Read denied despite ReadOnly grant")
	}
	if _, ok := l.Check(5, false, Read|Write); ok {
		t.Fatal("Write granted with only ReadOnly")
	}
	d, _ := l.Check(5, false, Write)
	if d.Have != ReadOnly || d.Want != Write {
		t.Fatalf("decision = %+v", d)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var l List
	l.Set(1, ReadOnly)
	l.Set(2, ReadWrite)
	l.Set(1000000, All)

	w := serial.NewWriter(64)
	l.Encode(w)
	r := serial.NewReader(w.Bytes())
	got := DecodeList(r)
	if err := r.Finish(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Len() != 3 || got.Get(2) != ReadWrite || got.Get(1000000) != All {
		t.Fatalf("round trip = %+v", got.Entries())
	}
}

func TestCloneIsDeep(t *testing.T) {
	var l List
	l.Set(1, ReadOnly)
	c := l.Clone()
	c.Set(1, All)
	if l.Get(1) != ReadOnly {
		t.Fatal("Clone shares storage with original")
	}
}

func TestEntriesIsACopy(t *testing.T) {
	var l List
	l.Set(1, ReadOnly)
	es := l.Entries()
	es[0].Rights = All
	if l.Get(1) != ReadOnly {
		t.Fatal("Entries aliases internal storage")
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	f := func(ids []uint32, rights []uint16) bool {
		var l List
		for i, id := range ids {
			if i >= len(rights) {
				break
			}
			r := Rights(rights[i]) & All
			if r == None {
				r = Lookup
			}
			l.Set(id, r)
		}
		w := serial.NewWriter(16 * l.Len())
		l.Encode(w)
		rd := serial.NewReader(w.Bytes())
		got := DecodeList(rd)
		if rd.Finish() != nil || got.Len() != l.Len() {
			return false
		}
		for _, e := range l.Entries() {
			if got.Get(e.UserID) != e.Rights {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
