// Package uuid provides the 16-byte universally unique identifiers that
// NEXUS uses to obfuscate object names on the untrusted storage service.
//
// Every metadata and data object in a NEXUS volume is stored under the hex
// encoding of a UUID rather than its human-readable name; the mapping from
// names to UUIDs lives only inside encrypted dirnodes (DSN'19 §IV-A1).
package uuid

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
)

// Size is the length of a UUID in bytes.
const Size = 16

// ErrMalformed reports that a string or byte slice could not be parsed as
// a UUID.
var ErrMalformed = errors.New("uuid: malformed identifier")

// UUID is a 16-byte random identifier. The zero value is the nil UUID,
// which is never assigned to a real object and can be used as a sentinel.
type UUID [Size]byte

// Nil is the zero UUID.
var Nil UUID

// New returns a fresh random UUID drawn from crypto/rand.
//
// In the paper UUIDs are generated inside the enclave at metadata creation
// time; callers in the trusted code path should use Enclave-scoped
// generation so randomness is attributable to the TCB, but the output
// distribution is identical.
func New() UUID {
	var u UUID
	if _, err := rand.Read(u[:]); err != nil {
		// crypto/rand never fails on supported platforms; if it does the
		// process cannot safely continue generating object names.
		panic(fmt.Sprintf("uuid: system entropy unavailable: %v", err))
	}
	return u
}

// NewFrom returns a UUID read from r, for deterministic generation in
// tests and simulations.
func NewFrom(r io.Reader) (UUID, error) {
	var u UUID
	if _, err := io.ReadFull(r, u[:]); err != nil {
		return Nil, fmt.Errorf("uuid: short read from source: %w", err)
	}
	return u, nil
}

// FromBytes parses a UUID from a 16-byte slice.
func FromBytes(b []byte) (UUID, error) {
	var u UUID
	if len(b) != Size {
		return Nil, fmt.Errorf("%w: want %d bytes, got %d", ErrMalformed, Size, len(b))
	}
	copy(u[:], b)
	return u, nil
}

// Parse parses the 32-character hex form produced by String.
func Parse(s string) (UUID, error) {
	var u UUID
	if len(s) != 2*Size {
		return Nil, fmt.Errorf("%w: want %d hex chars, got %d", ErrMalformed, 2*Size, len(s))
	}
	if _, err := hex.Decode(u[:], []byte(s)); err != nil {
		return Nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return u, nil
}

// String returns the lower-case hex encoding, which doubles as the
// obfuscated object name on the backing store.
func (u UUID) String() string { return hex.EncodeToString(u[:]) }

// IsNil reports whether u is the zero UUID.
func (u UUID) IsNil() bool { return u == Nil }

// Bytes returns a copy of the UUID's bytes.
func (u UUID) Bytes() []byte {
	b := make([]byte, Size)
	copy(b, u[:])
	return b
}
