package uuid

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewIsUnique(t *testing.T) {
	seen := make(map[UUID]bool, 1024)
	for i := 0; i < 1024; i++ {
		u := New()
		if u.IsNil() {
			t.Fatal("New returned the nil UUID")
		}
		if seen[u] {
			t.Fatalf("duplicate UUID generated: %s", u)
		}
		seen[u] = true
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	u := New()
	s := u.String()
	if len(s) != 32 {
		t.Fatalf("String() length = %d, want 32", len(s))
	}
	if s != strings.ToLower(s) {
		t.Fatalf("String() not lower-case: %q", s)
	}
	got, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	if got != u {
		t.Fatalf("round trip mismatch: %s != %s", got, u)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"abc",
		strings.Repeat("g", 32),            // non-hex
		strings.Repeat("a", 31),            // short
		strings.Repeat("a", 33),            // long
		strings.Repeat("a", 30) + "zz",     // bad tail
		"0123456789abcdef0123456789abcde ", // trailing space
		"0X123456789abcdef0123456789abcde", // prefix junk
	}
	for _, c := range cases {
		if _, err := Parse(c); !errors.Is(err, ErrMalformed) {
			t.Errorf("Parse(%q) error = %v, want ErrMalformed", c, err)
		}
	}
}

func TestFromBytes(t *testing.T) {
	raw := bytes.Repeat([]byte{0xab}, Size)
	u, err := FromBytes(raw)
	if err != nil {
		t.Fatalf("FromBytes: %v", err)
	}
	if !bytes.Equal(u.Bytes(), raw) {
		t.Fatal("FromBytes did not preserve contents")
	}
	if _, err := FromBytes(raw[:Size-1]); !errors.Is(err, ErrMalformed) {
		t.Errorf("short FromBytes error = %v, want ErrMalformed", err)
	}
	if _, err := FromBytes(append(raw, 0)); !errors.Is(err, ErrMalformed) {
		t.Errorf("long FromBytes error = %v, want ErrMalformed", err)
	}
}

func TestBytesIsACopy(t *testing.T) {
	u := New()
	b := u.Bytes()
	b[0] ^= 0xff
	if bytes.Equal(b, u[:]) {
		t.Fatal("Bytes() aliases the UUID's storage")
	}
}

func TestNewFromDeterministic(t *testing.T) {
	src := bytes.NewReader(bytes.Repeat([]byte{7}, Size))
	u, err := NewFrom(src)
	if err != nil {
		t.Fatalf("NewFrom: %v", err)
	}
	want := strings.Repeat("07", Size)
	if u.String() != want {
		t.Fatalf("NewFrom = %s, want %s", u, want)
	}
	if _, err := NewFrom(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("NewFrom with short reader succeeded, want error")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw [Size]byte) bool {
		u := UUID(raw)
		parsed, err := Parse(u.String())
		return err == nil && parsed == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
