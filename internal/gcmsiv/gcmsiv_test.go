package gcmsiv

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex in test: %v", err)
	}
	return b
}

// TestPolyvalRFCVector checks the worked POLYVAL example from RFC 8452
// Appendix A.
func TestPolyvalRFCVector(t *testing.T) {
	h := mustHex(t, "25629347589242761d31f826ba4b757b")
	x1 := mustHex(t, "4f4f95668c83dfb6401762bb2d01a262")
	x2 := mustHex(t, "d1a24ddd2721d006bbe45f20d3c9f362")
	want := "f7a3b47b846119fae5b7866cf5e5b77e"

	pv := newPolyval(h)
	pv.update(x1)
	pv.update(x2)
	got := pv.sum()
	if hex.EncodeToString(got[:]) != want {
		t.Fatalf("POLYVAL = %x, want %s", got, want)
	}
}

// TestMulXRFCVector checks the mulX_POLYVAL example from RFC 8452
// Appendix A.
func TestMulXRFCVector(t *testing.T) {
	in := mustHex(t, "9c98c04df9387ded828175a92ba652d8")
	want := "3931819bf271fada0503eb52574ca572"
	got := feFromBytes(in).mulX().bytes()
	if hex.EncodeToString(got[:]) != want {
		t.Fatalf("mulX = %x, want %s", got, want)
	}

	// x * 1 = x: the unit polynomial shifts by one bit.
	one := fieldElement{lo: 1}
	if got := one.mulX(); got.lo != 2 || got.hi != 0 {
		t.Fatalf("mulX(1) = %+v, want lo=2", got)
	}
}

// TestPolyvalLinearity exercises the algebra: POLYVAL over a two-block
// message equals dot(dot(X1,H) xor X2, H).
func TestPolyvalLinearity(t *testing.T) {
	var h, x1, x2 [16]byte
	for i := range h {
		h[i], x1[i], x2[i] = byte(i+1), byte(3*i+7), byte(5*i+11)
	}
	pv := newPolyval(h[:])
	pv.update(x1[:])
	pv.update(x2[:])
	whole := pv.sum()

	hx := feFromBytes(h[:]).mul(invX128)
	s1 := feFromBytes(x1[:]).mul(hx)
	s2 := s1.xor(feFromBytes(x2[:])).mul(hx)
	manual := s2.bytes()
	if whole != manual {
		t.Fatalf("POLYVAL chaining mismatch: %x vs %x", whole, manual)
	}
}

// TestPolyvalBuffering verifies that feeding a message in arbitrary
// fragment sizes produces the same digest as one call.
func TestPolyvalBuffering(t *testing.T) {
	h := bytes.Repeat([]byte{0x42}, 16)
	msg := make([]byte, 160)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	ref := newPolyval(h)
	ref.update(msg)
	want := ref.sum()

	for _, chunk := range []int{1, 3, 5, 7, 15, 16, 17, 31, 33} {
		pv := newPolyval(h)
		for off := 0; off < len(msg); off += chunk {
			end := off + chunk
			if end > len(msg) {
				end = len(msg)
			}
			pv.update(msg[off:end])
		}
		if got := pv.sum(); got != want {
			t.Fatalf("chunk size %d: digest %x, want %x", chunk, got, want)
		}
	}
}

// gcmSIVVector is a test vector from RFC 8452 Appendix C.
type gcmSIVVector struct {
	name             string
	key, nonce       string
	plaintext, aad   string
	ciphertextAndTag string
}

// These vectors are transcribed from RFC 8452 Appendix C.1 (AES-128) and
// C.2 (AES-256).
var rfcVectors = []gcmSIVVector{
	{
		name:             "aes128/empty",
		key:              "01000000000000000000000000000000",
		nonce:            "030000000000000000000000",
		plaintext:        "",
		aad:              "",
		ciphertextAndTag: "dc20e2d83f25705bb49e439eca56de25",
	},
	{
		name:             "aes128/8byte",
		key:              "01000000000000000000000000000000",
		nonce:            "030000000000000000000000",
		plaintext:        "0100000000000000",
		aad:              "",
		ciphertextAndTag: "b5d839330ac7b786578782fff6013b815b287c22493a364c",
	},
	{
		name:             "aes256/empty",
		key:              "0100000000000000000000000000000000000000000000000000000000000000",
		nonce:            "030000000000000000000000",
		plaintext:        "",
		aad:              "",
		ciphertextAndTag: "07f5f4169bbf55a8400cd47ea6fd400f",
	},
}

func TestRFCVectors(t *testing.T) {
	for _, v := range rfcVectors {
		t.Run(v.name, func(t *testing.T) {
			a, err := New(mustHex(t, v.key))
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			nonce := mustHex(t, v.nonce)
			pt := mustHex(t, v.plaintext)
			aad := mustHex(t, v.aad)
			want := mustHex(t, v.ciphertextAndTag)

			got := a.Seal(nil, nonce, pt, aad)
			if !bytes.Equal(got, want) {
				t.Fatalf("Seal = %x, want %x", got, want)
			}

			back, err := a.Open(nil, nonce, got, aad)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			if !bytes.Equal(back, pt) {
				t.Fatalf("Open = %x, want %x", back, pt)
			}
		})
	}
}

func TestSealOpenRoundTripSizes(t *testing.T) {
	key := bytes.Repeat([]byte{7}, 32)
	a, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	nonce := bytes.Repeat([]byte{3}, NonceSize)
	for _, n := range []int{0, 1, 15, 16, 17, 31, 32, 33, 255, 1024, 4096} {
		pt := make([]byte, n)
		if _, err := rand.Read(pt); err != nil {
			t.Fatal(err)
		}
		aad := []byte("associated data")
		ct := a.Seal(nil, nonce, pt, aad)
		if len(ct) != n+TagSize {
			t.Fatalf("len(ct) = %d, want %d", len(ct), n+TagSize)
		}
		back, err := a.Open(nil, nonce, ct, aad)
		if err != nil {
			t.Fatalf("n=%d Open: %v", n, err)
		}
		if !bytes.Equal(back, pt) {
			t.Fatalf("n=%d round trip mismatch", n)
		}
	}
}

func TestTamperDetection(t *testing.T) {
	a, err := New(bytes.Repeat([]byte{1}, 16))
	if err != nil {
		t.Fatal(err)
	}
	nonce := make([]byte, NonceSize)
	pt := []byte("the volume rootkey would go here")
	aad := []byte("metadata header")
	ct := a.Seal(nil, nonce, pt, aad)

	// Flipping any single bit of the ciphertext or tag must fail auth.
	for i := 0; i < len(ct); i++ {
		mut := bytes.Clone(ct)
		mut[i] ^= 0x01
		if _, err := a.Open(nil, nonce, mut, aad); !errors.Is(err, ErrAuth) {
			t.Fatalf("bit flip at byte %d not detected (err=%v)", i, err)
		}
	}
	// Wrong AAD must fail.
	if _, err := a.Open(nil, nonce, ct, []byte("other header")); !errors.Is(err, ErrAuth) {
		t.Fatalf("wrong AAD accepted: %v", err)
	}
	// Wrong nonce must fail.
	badNonce := bytes.Clone(nonce)
	badNonce[0] ^= 1
	if _, err := a.Open(nil, badNonce, ct, aad); !errors.Is(err, ErrAuth) {
		t.Fatalf("wrong nonce accepted: %v", err)
	}
	// Truncated ciphertext must fail.
	if _, err := a.Open(nil, nonce, ct[:TagSize-1], aad); !errors.Is(err, ErrAuth) {
		t.Fatalf("truncated ciphertext accepted: %v", err)
	}
}

// TestNonceMisuseDeterminism confirms the SIV property: the same
// (key, nonce, plaintext, aad) always produces the same ciphertext, and
// differing plaintexts under the same nonce produce unrelated ciphertexts
// rather than a keystream reuse catastrophe.
func TestNonceMisuseDeterminism(t *testing.T) {
	a, err := New(bytes.Repeat([]byte{9}, 16))
	if err != nil {
		t.Fatal(err)
	}
	nonce := make([]byte, NonceSize)
	ct1 := a.Seal(nil, nonce, []byte("same plaintext"), nil)
	ct2 := a.Seal(nil, nonce, []byte("same plaintext"), nil)
	if !bytes.Equal(ct1, ct2) {
		t.Fatal("SIV encryption not deterministic")
	}

	ctA := a.Seal(nil, nonce, []byte("plaintext AAAAAA"), nil)
	ctB := a.Seal(nil, nonce, []byte("plaintext BBBBBB"), nil)
	// Under CTR nonce reuse the XOR of ciphertexts would equal the XOR of
	// plaintexts; under SIV the tags (hence keystreams) differ.
	xorCT := make([]byte, 16)
	xorPT := make([]byte, 16)
	for i := 0; i < 16; i++ {
		xorCT[i] = ctA[i] ^ ctB[i]
		xorPT[i] = "plaintext AAAAAA"[i] ^ "plaintext BBBBBB"[i]
	}
	if bytes.Equal(xorCT, xorPT) {
		t.Fatal("keystream reuse detected under repeated nonce")
	}
}

func TestInvalidParameters(t *testing.T) {
	if _, err := New(make([]byte, 17)); err == nil {
		t.Fatal("17-byte key accepted")
	}
	if _, err := New(nil); err == nil {
		t.Fatal("nil key accepted")
	}
	a, err := New(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Open(nil, make([]byte, 11), make([]byte, 32), nil); err == nil {
		t.Fatal("short nonce accepted by Open")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Seal with bad nonce did not panic")
		}
	}()
	a.Seal(nil, make([]byte, 11), nil, nil)
}

func TestSealAppendsToDst(t *testing.T) {
	a, err := New(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	nonce := make([]byte, NonceSize)
	prefix := []byte("existing")
	out := a.Seal(bytes.Clone(prefix), nonce, []byte("payload"), nil)
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("Seal did not append to dst")
	}
	back, err := a.Open(nil, nonce, out[len(prefix):], nil)
	if err != nil || string(back) != "payload" {
		t.Fatalf("Open after append: %q, %v", back, err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	key := bytes.Repeat([]byte{5}, 16)
	a, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	f := func(nonce [NonceSize]byte, pt, aad []byte) bool {
		ct := a.Seal(nil, nonce[:], pt, aad)
		back, err := a.Open(nil, nonce[:], ct, aad)
		return err == nil && bytes.Equal(back, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFieldMulCommutative(t *testing.T) {
	f := func(a, b [16]byte) bool {
		x, y := feFromBytes(a[:]), feFromBytes(b[:])
		return x.mul(y) == y.mul(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFieldMulDistributive(t *testing.T) {
	f := func(a, b, c [16]byte) bool {
		x, y, z := feFromBytes(a[:]), feFromBytes(b[:]), feFromBytes(c[:])
		left := x.xor(y).mul(z)
		right := x.mul(z).xor(y.mul(z))
		return left == right
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSealKeywrap(b *testing.B) {
	a, err := New(make([]byte, 16))
	if err != nil {
		b.Fatal(err)
	}
	nonce := make([]byte, NonceSize)
	key := make([]byte, 32) // a wrapped metadata key
	b.SetBytes(int64(len(key)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Seal(nil, nonce, key, nil)
	}
}
