package gcmsiv

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
)

// AEAD parameter sizes (RFC 8452 §4).
const (
	// NonceSize is the required nonce length in bytes.
	NonceSize = 12
	// TagSize is the length of the authentication tag in bytes.
	TagSize = 16

	// maxPlaintext and maxAAD are the RFC 8452 limits (2^36 bytes).
	maxPlaintext = 1 << 36
	maxAAD       = 1 << 36
)

// Errors returned by Open.
var (
	// ErrAuth reports an authentication failure: the ciphertext, AAD,
	// nonce, or key is wrong or has been tampered with.
	ErrAuth = errors.New("gcmsiv: message authentication failed")
)

// aead implements cipher.AEAD for AES-GCM-SIV.
type aead struct {
	keyGen cipher.Block // AES over the key-generating key
	keyLen int          // 16 or 32
}

var _ cipher.AEAD = (*aead)(nil)

// New returns an AES-GCM-SIV AEAD using the given 16- or 32-byte
// key-generating key.
func New(key []byte) (cipher.AEAD, error) {
	switch len(key) {
	case 16, 32:
	default:
		return nil, fmt.Errorf("gcmsiv: invalid key length %d (want 16 or 32)", len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("gcmsiv: creating AES cipher: %w", err)
	}
	return &aead{keyGen: block, keyLen: len(key)}, nil
}

func (a *aead) NonceSize() int { return NonceSize }
func (a *aead) Overhead() int  { return TagSize }

// deriveKeys derives the per-nonce message authentication key (16 bytes)
// and message encryption key (16 or 32 bytes) per RFC 8452 §4: encrypt a
// sequence of (little-endian counter ‖ nonce) blocks and keep the first
// eight bytes of each ciphertext block.
func (a *aead) deriveKeys(nonce []byte) (authKey [16]byte, encKey []byte) {
	var in, out [16]byte
	copy(in[4:], nonce)

	nBlocks := 4
	if a.keyLen == 32 {
		nBlocks = 6
	}
	encKey = make([]byte, 0, a.keyLen)
	for i := 0; i < nBlocks; i++ {
		binary.LittleEndian.PutUint32(in[0:4], uint32(i))
		a.keyGen.Encrypt(out[:], in[:])
		switch {
		case i < 2:
			copy(authKey[8*i:], out[:8])
		default:
			encKey = append(encKey, out[:8]...)
		}
	}
	return authKey, encKey
}

// tag computes the GCM-SIV tag: POLYVAL over padded AAD, padded plaintext
// and the length block; XOR the nonce into the first 12 bytes; clear the
// top bit; encrypt with the message encryption key.
func computeTag(encBlock cipher.Block, authKey [16]byte, nonce, plaintext, aad []byte) [16]byte {
	pv := newPolyval(authKey[:])
	pv.updatePadded(aad)
	pv.updatePadded(plaintext)

	var lenBlock [16]byte
	binary.LittleEndian.PutUint64(lenBlock[0:8], uint64(len(aad))*8)
	binary.LittleEndian.PutUint64(lenBlock[8:16], uint64(len(plaintext))*8)
	pv.update(lenBlock[:])

	s := pv.sum()
	for i := 0; i < NonceSize; i++ {
		s[i] ^= nonce[i]
	}
	s[15] &= 0x7f

	var tag [16]byte
	encBlock.Encrypt(tag[:], s[:])
	return tag
}

// ctr32LE applies the GCM-SIV counter mode: the initial block is the tag
// with its top bit forced on, and the counter is the first four bytes
// interpreted little-endian, incremented per block with wraparound.
func ctr32LE(block cipher.Block, tag [16]byte, dst, src []byte) {
	counterBlock := tag
	counterBlock[15] |= 0x80
	ctr := binary.LittleEndian.Uint32(counterBlock[0:4])

	var keystream [16]byte
	for len(src) > 0 {
		binary.LittleEndian.PutUint32(counterBlock[0:4], ctr)
		block.Encrypt(keystream[:], counterBlock[:])
		n := subtle.XORBytes(dst, src, keystream[:])
		dst, src = dst[n:], src[n:]
		ctr++ // wraps mod 2^32 per the RFC
	}
}

// Seal encrypts and authenticates plaintext with the given nonce and
// additional data, appending the ciphertext and 16-byte tag to dst.
func (a *aead) Seal(dst, nonce, plaintext, aad []byte) []byte {
	if len(nonce) != NonceSize {
		panic("gcmsiv: incorrect nonce length")
	}
	if uint64(len(plaintext)) > maxPlaintext || uint64(len(aad)) > maxAAD {
		panic("gcmsiv: message too large")
	}

	authKey, encKeyBytes := a.deriveKeys(nonce)
	encBlock, err := aes.NewCipher(encKeyBytes)
	if err != nil {
		// Key length is derived internally; failure is unreachable.
		panic(fmt.Sprintf("gcmsiv: derived key rejected: %v", err))
	}

	tag := computeTag(encBlock, authKey, nonce, plaintext, aad)

	ret, out := sliceForAppend(dst, len(plaintext)+TagSize)
	ctr32LE(encBlock, tag, out[:len(plaintext)], plaintext)
	copy(out[len(plaintext):], tag[:])
	return ret
}

// Open authenticates and decrypts ciphertext (which includes the trailing
// tag), appending the plaintext to dst. It returns ErrAuth if the message
// does not authenticate.
func (a *aead) Open(dst, nonce, ciphertext, aad []byte) ([]byte, error) {
	if len(nonce) != NonceSize {
		return nil, fmt.Errorf("gcmsiv: incorrect nonce length %d", len(nonce))
	}
	if len(ciphertext) < TagSize {
		return nil, ErrAuth
	}
	if uint64(len(ciphertext)) > maxPlaintext+TagSize || uint64(len(aad)) > maxAAD {
		return nil, ErrAuth
	}

	body := ciphertext[:len(ciphertext)-TagSize]
	var tag [16]byte
	copy(tag[:], ciphertext[len(ciphertext)-TagSize:])

	authKey, encKeyBytes := a.deriveKeys(nonce)
	encBlock, err := aes.NewCipher(encKeyBytes)
	if err != nil {
		panic(fmt.Sprintf("gcmsiv: derived key rejected: %v", err))
	}

	ret, out := sliceForAppend(dst, len(body))
	ctr32LE(encBlock, tag, out, body)

	expected := computeTag(encBlock, authKey, nonce, out, aad)
	if subtle.ConstantTimeCompare(expected[:], tag[:]) != 1 {
		// Zero the tentative plaintext before returning so callers cannot
		// observe unauthenticated bytes.
		for i := range out {
			out[i] = 0
		}
		return nil, ErrAuth
	}
	return ret, nil
}

// sliceForAppend extends in by n bytes and returns both the full slice and
// the newly added tail (the same helper pattern crypto/cipher uses).
func sliceForAppend(in []byte, n int) (head, tail []byte) {
	total := len(in) + n
	if cap(in) >= total {
		head = in[:total]
	} else {
		head = make([]byte, total)
		copy(head, in)
	}
	tail = head[len(in):]
	return head, tail
}
