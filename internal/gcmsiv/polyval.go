// Package gcmsiv implements the AES-GCM-SIV nonce-misuse-resistant AEAD
// from RFC 8452, including the POLYVAL universal hash function.
//
// NEXUS uses AES-GCM-SIV as its keywrapping scheme (DSN'19 §IV-A2): every
// metadata object is encrypted under a fresh random key, and that key is
// wrapped with the volume rootkey using GCM-SIV. SIV-mode wrapping is the
// right tool here because the wrapped payloads are high-entropy keys and
// the construction remains secure even if a nonce is ever repeated.
//
// The implementation is pure Go over crypto/aes, with a constant-time
// software POLYVAL. Performance is more than sufficient for NEXUS's use
// (wrapping 16–48 byte keys), and the package passes the RFC 8452 test
// vectors.
package gcmsiv

import "encoding/binary"

// fieldElement is an element of GF(2^128) in POLYVAL's fully little-endian
// representation: lo holds the coefficients of x^0..x^63 and hi holds
// x^64..x^127, with byte 0 bit 0 of the serialized form being the
// coefficient of x^0 (RFC 8452 §3).
type fieldElement struct {
	lo, hi uint64
}

// Reduction constants for the POLYVAL field, whose modulus is
// f = x^128 + x^127 + x^126 + x^121 + 1.
const (
	// polyRedHi is f mod x^128 restricted to the high word: bits 127, 126
	// and 121 (the x^0 term is folded in separately as lo ^= 1).
	polyRedHi = 0xc200000000000000
)

// invX128 is x^-128 mod f, which RFC 8452 §3 notes equals
// x^127 + x^124 + x^121 + x^114 + 1. Multiplying a plain field product by
// this constant turns it into the Montgomery-style "dot" product POLYVAL
// is defined over.
var invX128 = fieldElement{
	lo: 1,
	hi: 1<<63 | 1<<60 | 1<<57 | 1<<50,
}

func feFromBytes(b []byte) fieldElement {
	return fieldElement{
		lo: binary.LittleEndian.Uint64(b[0:8]),
		hi: binary.LittleEndian.Uint64(b[8:16]),
	}
}

func (e fieldElement) bytes() [16]byte {
	var out [16]byte
	binary.LittleEndian.PutUint64(out[0:8], e.lo)
	binary.LittleEndian.PutUint64(out[8:16], e.hi)
	return out
}

func (e fieldElement) xor(o fieldElement) fieldElement {
	return fieldElement{lo: e.lo ^ o.lo, hi: e.hi ^ o.hi}
}

// mulX multiplies e by x and reduces modulo f.
func (e fieldElement) mulX() fieldElement {
	carry := e.hi >> 63
	hi := e.hi<<1 | e.lo>>63
	lo := e.lo << 1
	// Branchless reduction: if the x^128 coefficient was set, fold the
	// modulus tail back in.
	mask := -carry // all-ones when carry == 1
	hi ^= mask & polyRedHi
	lo ^= mask & 1
	return fieldElement{lo: lo, hi: hi}
}

// mul returns the plain (non-Montgomery) product a*b mod f using a
// constant-time shift-and-add over the 128 bits of a.
func (a fieldElement) mul(b fieldElement) fieldElement {
	var r fieldElement
	v := b
	for i := 0; i < 64; i++ {
		mask := -((a.lo >> uint(i)) & 1)
		r.lo ^= mask & v.lo
		r.hi ^= mask & v.hi
		v = v.mulX()
	}
	for i := 0; i < 64; i++ {
		mask := -((a.hi >> uint(i)) & 1)
		r.lo ^= mask & v.lo
		r.hi ^= mask & v.hi
		v = v.mulX()
	}
	return r
}

// polyval computes POLYVAL(h, blocks) per RFC 8452 §3:
//
//	S_0 = 0; S_j = dot(S_{j-1} XOR X_j, H) where dot(a,b) = a*b*x^-128.
//
// The x^-128 factor is folded into h once up front so each block costs a
// single field multiplication.
type polyval struct {
	hx  fieldElement // h * x^-128
	s   fieldElement
	buf [16]byte
	n   int // buffered bytes in buf
}

func newPolyval(h []byte) *polyval {
	if len(h) != 16 {
		panic("gcmsiv: POLYVAL key must be 16 bytes")
	}
	return &polyval{hx: feFromBytes(h).mul(invX128)}
}

// update absorbs p, which may be of any length; partial blocks are
// buffered until complete. Callers zero-pad explicitly where RFC 8452
// requires it (see padBlocks).
func (p *polyval) update(data []byte) {
	if p.n > 0 {
		take := copy(p.buf[p.n:], data)
		p.n += take
		data = data[take:]
		if p.n == 16 {
			p.absorb(p.buf[:])
			p.n = 0
		}
	}
	for len(data) >= 16 {
		p.absorb(data[:16])
		data = data[16:]
	}
	if len(data) > 0 {
		p.n = copy(p.buf[:], data)
	}
}

// updatePadded absorbs data and then zero bytes up to the next 16-byte
// boundary, as required for the AAD and plaintext sections of the
// GCM-SIV tag computation.
func (p *polyval) updatePadded(data []byte) {
	p.update(data)
	if p.n > 0 {
		for i := p.n; i < 16; i++ {
			p.buf[i] = 0
		}
		p.absorb(p.buf[:])
		p.n = 0
	}
}

func (p *polyval) absorb(block []byte) {
	p.s = p.s.xor(feFromBytes(block)).mul(p.hx)
}

// sum returns the current POLYVAL state; it must only be called on a
// block boundary (no buffered partial block).
func (p *polyval) sum() [16]byte {
	if p.n != 0 {
		panic("gcmsiv: POLYVAL sum on partial block")
	}
	return p.s.bytes()
}
