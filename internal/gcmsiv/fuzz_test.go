package gcmsiv

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"testing"
)

// FuzzGCMSIVRoundTrip drives Seal/Open with fuzzer-chosen keys, nonces,
// plaintexts, and AAD, checking the invariants NEXUS relies on: sealed
// data opens back to the original, tampering with any byte of the
// ciphertext or the AAD is rejected with ErrAuth, a different nonce does
// not open the ciphertext, and encryption is deterministic for a fixed
// (key, nonce, plaintext, AAD) tuple — the SIV property that makes
// nonce misuse non-catastrophic (RFC 8452 §1).
func FuzzGCMSIVRoundTrip(f *testing.F) {
	f.Add([]byte("key seed"), false, []byte("nonce seed"), []byte("hello, nexus"), []byte("chunk 0"))
	f.Add([]byte(""), true, []byte(""), []byte(""), []byte(""))
	f.Add([]byte("wide"), true, []byte("n"), bytes.Repeat([]byte{0xa5}, 256), []byte("aad"))
	f.Fuzz(func(t *testing.T, keySeed []byte, wide bool, nonceSeed []byte, pt, aad []byte) {
		if len(pt) > 1<<16 || len(aad) > 1<<12 {
			t.Skip("bounding plaintext size for throughput")
		}
		keyMat := sha256.Sum256(keySeed)
		key := keyMat[:16]
		if wide {
			key = keyMat[:32]
		}
		nonceMat := sha256.Sum256(nonceSeed)
		nonce := nonceMat[:NonceSize]

		a, err := New(key)
		if err != nil {
			t.Fatalf("New(%d-byte key): %v", len(key), err)
		}
		ct := a.Seal(nil, nonce, pt, aad)
		if len(ct) != len(pt)+TagSize {
			t.Fatalf("ciphertext length %d, want %d", len(ct), len(pt)+TagSize)
		}
		if ct2 := a.Seal(nil, nonce, pt, aad); !bytes.Equal(ct, ct2) {
			t.Fatal("Seal is not deterministic for a fixed key/nonce/plaintext/AAD")
		}

		got, err := a.Open(nil, nonce, ct, aad)
		if err != nil {
			t.Fatalf("Open after Seal: %v", err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatalf("round trip mismatch: got %x, want %x", got, pt)
		}

		// Any single-byte corruption must fail authentication.
		i := len(pt) % len(ct)
		ct[i] ^= 0x01
		if _, err := a.Open(nil, nonce, ct, aad); !errors.Is(err, ErrAuth) {
			t.Fatalf("Open of corrupted ciphertext: got %v, want ErrAuth", err)
		}
		ct[i] ^= 0x01

		wrongAAD := append(append([]byte(nil), aad...), 0x00)
		if _, err := a.Open(nil, nonce, ct, wrongAAD); !errors.Is(err, ErrAuth) {
			t.Fatalf("Open with altered AAD: got %v, want ErrAuth", err)
		}

		wrongNonce := append([]byte(nil), nonce...)
		wrongNonce[0] ^= 0x01
		if _, err := a.Open(nil, wrongNonce, ct, aad); !errors.Is(err, ErrAuth) {
			t.Fatalf("Open with altered nonce: got %v, want ErrAuth", err)
		}
	})
}
