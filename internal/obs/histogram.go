package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The bucket ladder is fixed at construction: 25 power-of-two bounds
// from 1µs to ~16.8s, plus an overflow bucket. Fixed buckets keep
// Record allocation-free (an index computation and three atomic adds)
// and make two snapshots directly comparable, which the bench report
// diffing relies on. The ladder spans everything the simulated testbed
// produces: sub-µs enclave transitions land in bucket 0, multi-second
// revocation sweeps near the top.
const (
	numBounds  = 25
	numBuckets = numBounds + 1 // +1 overflow
	baseBound  = int64(1000)   // 1µs in ns; bound i = baseBound << i
)

// BucketBound returns the inclusive upper bound, in nanoseconds, of
// bucket i, or math.MaxInt64 for the overflow bucket.
func BucketBound(i int) int64 {
	if i >= numBounds {
		return math.MaxInt64
	}
	return baseBound << uint(i)
}

// NumBuckets is the fixed bucket count, exported for exposition and
// report embedding.
const NumBuckets = numBuckets

// Histogram is a fixed-bucket latency histogram. The zero value is not
// usable; obtain histograms from Registry.Histogram.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds; MaxInt64 when empty
	max     atomic.Int64 // nanoseconds
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketIndex maps a nanosecond duration to its bucket. Bucket i holds
// values in (baseBound<<(i-1), baseBound<<i]; bucket 0 holds (0, 1µs].
func bucketIndex(ns int64) int {
	if ns <= baseBound {
		return 0
	}
	// ceil(log2(ns/baseBound)) via the bit length of (ns-1)/baseBound.
	idx := bits.Len64(uint64((ns - 1) / baseBound))
	if idx >= numBounds {
		return numBounds // overflow bucket
	}
	return idx
}

// Record adds one observation. It is allocation-free and safe for
// concurrent use: an index computation, three atomic adds, and two
// bounded CAS loops for min/max.
func (h *Histogram) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.min.Load()
		if ns >= old || h.min.CompareAndSwap(old, ns) {
			break
		}
	}
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			break
		}
	}
}

// Reset zeroes the histogram so a fresh measurement window can start
// (used by the bench harness between file sizes).
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(0)
}

// HistSnapshot is a point-in-time copy of a histogram with derived
// quantiles. All durations are nanoseconds. Quantiles are estimated by
// linear interpolation inside the bucket that crosses the rank, so
// their error is bounded by the bucket width (a factor of two).
type HistSnapshot struct {
	Count   int64
	SumNs   int64
	MinNs   int64
	MaxNs   int64
	P50Ns   int64
	P95Ns   int64
	P99Ns   int64
	Buckets [numBuckets]int64
}

// Mean returns the arithmetic mean in nanoseconds (0 when empty).
func (s HistSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumNs / s.Count
}

// Snapshot copies the histogram state and computes p50/p95/p99.
// Concurrent Records during the copy can skew counts by a few
// observations; snapshots are for reporting, not accounting.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.SumNs = h.sum.Load()
	s.MinNs = h.min.Load()
	s.MaxNs = h.max.Load()
	if s.Count == 0 {
		s.MinNs = 0
		return s
	}
	if s.MinNs == math.MaxInt64 { // raced with Reset
		s.MinNs = 0
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.P50Ns = s.quantile(0.50)
	s.P95Ns = s.quantile(0.95)
	s.P99Ns = s.quantile(0.99)
	return s
}

// quantile walks the cumulative bucket counts to the target rank and
// interpolates within the crossing bucket. Results are clamped to the
// observed [min, max] so tiny samples don't report a p99 beyond the
// slowest observation actually seen.
func (s HistSnapshot) quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := q * float64(s.Count)
	var cum int64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if float64(cum+n) >= target {
			lower := int64(0)
			if i > 0 {
				lower = BucketBound(i - 1)
			}
			upper := BucketBound(i)
			if i == numBounds || upper > s.MaxNs {
				upper = s.MaxNs
			}
			if lower < s.MinNs {
				lower = s.MinNs
			}
			if upper < lower {
				upper = lower
			}
			frac := (target - float64(cum)) / float64(n)
			v := float64(lower) + frac*float64(upper-lower)
			return clampNs(int64(v), s.MinNs, s.MaxNs)
		}
		cum += n
	}
	return s.MaxNs
}

func clampNs(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
