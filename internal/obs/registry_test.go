package obs

import (
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if got := r.CounterValue("x_total"); got != 5 {
		t.Errorf("CounterValue = %d, want 5", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Errorf("counter after reset = %d", got)
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
	if got := r.GaugeValue("depth"); got != 4 {
		t.Errorf("GaugeValue = %d, want 4", got)
	}
}

func TestGetOrCreateReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter returned distinct instances for one name")
	}
	if r.Gauge("b") != r.Gauge("b") {
		t.Error("Gauge returned distinct instances for one name")
	}
	if r.Histogram("c") != r.Histogram("c") {
		t.Error("Histogram returned distinct instances for one name")
	}
}

func TestUnknownInstrumentReadsAreZero(t *testing.T) {
	r := NewRegistry()
	if got := r.CounterValue("nope"); got != 0 {
		t.Errorf("CounterValue(unknown) = %d", got)
	}
	if got := r.GaugeValue("nope"); got != 0 {
		t.Errorf("GaugeValue(unknown) = %d", got)
	}
	if s := r.Snapshot("nope"); s.Count != 0 {
		t.Errorf("Snapshot(unknown) = %+v", s)
	}
	// Reading must not implicitly register the instrument.
	if names := r.counterNames(); len(names) != 0 {
		t.Errorf("read registered a counter: %v", names)
	}
}

func TestTimed(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("op_seconds")
	Timed(h, time.Now().Add(-time.Millisecond))
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.MinNs < int64(time.Millisecond) {
		t.Errorf("recorded %dns, want >= 1ms", s.MinNs)
	}
}

func TestNamesSorted(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.Counter(n)
		r.Gauge(n + "_g")
		r.Histogram(n + "_h")
	}
	for _, names := range [][]string{r.counterNames(), r.gaugeNames(), r.histNames()} {
		for i := 1; i < len(names); i++ {
			if names[i-1] > names[i] {
				t.Errorf("names not sorted: %v", names)
			}
		}
	}
}
