package obs

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentHammer drives every registry surface from many
// goroutines at once — writers on counters/gauges/histograms, get-or-
// create races on fresh names, and readers snapshotting and rendering
// the exposition mid-flight. Run under -race (the CI obs job does) this
// is the package's data-race proof; the final assertions prove no
// increment was lost.
func TestRegistryConcurrentHammer(t *testing.T) {
	const (
		workers = 8
		iters   = 2000
	)
	r := NewRegistry()
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Shared instruments: contended atomic paths.
				r.Counter("shared_total").Inc()
				r.Gauge("shared_gauge").Add(1)
				r.Histogram("shared_seconds").Record(time.Duration(i%5000) * time.Nanosecond)
				// Rotating names: get-or-create double-check path.
				r.Counter(fmt.Sprintf("rotating_%d_total", i%7)).Inc()
			}
		}(w)
	}

	// Concurrent readers: snapshots and full expositions while writers
	// are mid-flight must be race-free (values may be torn across
	// instruments, which is fine for reporting).
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for rd := 0; rd < 2; rd++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = r.Snapshot("shared_seconds")
					WritePrometheus(io.Discard, r)
					_ = r.ExpvarFunc()()
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	const total = workers * iters
	if got := r.CounterValue("shared_total"); got != total {
		t.Errorf("shared_total = %d, want %d (lost increments)", got, total)
	}
	if got := r.GaugeValue("shared_gauge"); got != total {
		t.Errorf("shared_gauge = %d, want %d", got, total)
	}
	s := r.Snapshot("shared_seconds")
	if s.Count != total {
		t.Errorf("histogram count = %d, want %d", s.Count, total)
	}
	var bucketSum int64
	for _, n := range s.Buckets {
		bucketSum += n
	}
	if bucketSum != total {
		t.Errorf("bucket sum = %d, want %d", bucketSum, total)
	}
	var rotating int64
	for i := 0; i < 7; i++ {
		rotating += r.CounterValue(fmt.Sprintf("rotating_%d_total", i))
	}
	if rotating != total {
		t.Errorf("rotating counters sum = %d, want %d", rotating, total)
	}
}

// TestTracerConcurrent exercises span begin/tag/end and Take from many
// goroutines. Ambient parenting interleaves arbitrarily across
// goroutines, so only race-freedom and span conservation are asserted.
func TestTracerConcurrent(t *testing.T) {
	var tr Tracer
	tr.Enable()
	const (
		workers = 4
		iters   = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s := tr.Begin("op")
				s.SetTagInt("i", int64(i))
				tr.Begin("inner").End()
				s.End()
			}
		}()
	}
	wg.Wait()
	roots := tr.Take()
	var count func(spans []*Span) int
	count = func(spans []*Span) int {
		n := 0
		for _, s := range spans {
			n += 1 + count(s.Children)
		}
		return n
	}
	if got, want := count(roots), workers*iters*2; got != want {
		t.Errorf("collected %d spans, want %d", got, want)
	}
}
