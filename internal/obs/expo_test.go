package obs

import (
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with fully deterministic contents:
// fixed counter/gauge values and histogram observations placed in known
// buckets.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("afs_rpcs_total").Add(3)
	r.Counter("enclave_metadata_loads_total").Add(12)
	r.Gauge("enclave_crypto_workers").Set(4)
	h := r.Histogram("vfs_read_seconds")
	h.Record(500 * time.Nanosecond)  // bucket 0 (≤1µs)
	h.Record(1500 * time.Nanosecond) // bucket 1 (≤2µs)
	h.Record(3000 * time.Nanosecond) // bucket 2 (≤4µs)
	return r
}

// TestWritePrometheusGolden pins the exposition format: any change to
// bucket bounds, float formatting, or line ordering shows up as a diff
// against testdata/prometheus.golden (refresh with go test -update).
func TestWritePrometheusGolden(t *testing.T) {
	var sb strings.Builder
	WritePrometheus(&sb, goldenRegistry())
	got := sb.String()

	const path = "testdata/prometheus.golden"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWritePrometheusCumulativeBuckets(t *testing.T) {
	var sb strings.Builder
	WritePrometheus(&sb, goldenRegistry())
	out := sb.String()
	// The three observations land in buckets 0, 1, 2, so the cumulative
	// counts must read 1, 2, 3 and +Inf must equal the total count.
	for _, line := range []string{
		`vfs_read_seconds_bucket{le="1e-06"} 1`,
		`vfs_read_seconds_bucket{le="2e-06"} 2`,
		`vfs_read_seconds_bucket{le="4e-06"} 3`,
		`vfs_read_seconds_bucket{le="+Inf"} 3`,
		`vfs_read_seconds_sum 5e-06`,
		`vfs_read_seconds_count 3`,
		`# TYPE afs_rpcs_total counter`,
		`afs_rpcs_total 3`,
		`# TYPE enclave_crypto_workers gauge`,
		`enclave_crypto_workers 4`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing line %q\nfull output:\n%s", line, out)
		}
	}
}

func TestHandlerServesMetrics(t *testing.T) {
	rec := httptest.NewRecorder()
	goldenRegistry().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "afs_rpcs_total 3") {
		t.Errorf("handler body missing metrics:\n%s", rec.Body.String())
	}
}

func TestExpvarFunc(t *testing.T) {
	v := goldenRegistry().ExpvarFunc()()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("expvar value not JSON-marshalable: %v", err)
	}
	var decoded struct {
		Counters   map[string]int64            `json:"counters"`
		Gauges     map[string]int64            `json:"gauges"`
		Histograms map[string]map[string]int64 `json:"histograms"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Counters["afs_rpcs_total"] != 3 {
		t.Errorf("counters = %v", decoded.Counters)
	}
	if decoded.Gauges["enclave_crypto_workers"] != 4 {
		t.Errorf("gauges = %v", decoded.Gauges)
	}
	h := decoded.Histograms["vfs_read_seconds"]
	if h["count"] != 3 || h["sum_ns"] != 5000 || h["min_ns"] != 500 || h["max_ns"] != 3000 {
		t.Errorf("histogram = %v", h)
	}
}
