package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4). Output is deterministic:
// instruments print in name order and bucket bounds use Go's shortest
// float formatting, so the format is pinned by a golden-file test.
//
// Counters and gauges print as-is; histograms print the conventional
// _bucket/_sum/_count triple with `le` bounds converted from the
// internal nanosecond ladder to seconds.
func WritePrometheus(w io.Writer, r *Registry) {
	for _, name := range r.counterNames() {
		fmt.Fprintf(w, "# TYPE %s counter\n", name)
		fmt.Fprintf(w, "%s %d\n", name, r.CounterValue(name))
	}
	for _, name := range r.gaugeNames() {
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		fmt.Fprintf(w, "%s %d\n", name, r.GaugeValue(name))
	}
	for _, name := range r.histNames() {
		s := r.Snapshot(name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		var cum int64
		for i := 0; i < NumBuckets-1; i++ {
			cum += s.Buckets[i]
			fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, formatSeconds(BucketBound(i)), cum)
		}
		cum += s.Buckets[NumBuckets-1]
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "%s_sum %s\n", name, formatSeconds(s.SumNs))
		fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	}
}

// formatSeconds renders a nanosecond value as seconds using the
// shortest representation that round-trips (Prometheus convention).
func formatSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// Handler returns an http.Handler serving the Prometheus text
// exposition of the registry; mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, r)
	})
}

// ExpvarFunc returns a closure suitable for expvar.Publish via
// expvar.Func: a JSON-friendly snapshot of every instrument, with
// histograms flattened to count/sum/min/max/p50/p95/p99 (ns).
func (r *Registry) ExpvarFunc() func() any {
	return func() any {
		out := map[string]any{}
		counters := map[string]int64{}
		for _, name := range r.counterNames() {
			counters[name] = r.CounterValue(name)
		}
		gauges := map[string]int64{}
		for _, name := range r.gaugeNames() {
			gauges[name] = r.GaugeValue(name)
		}
		hists := map[string]any{}
		for _, name := range r.histNames() {
			s := r.Snapshot(name)
			hists[name] = map[string]int64{
				"count":  s.Count,
				"sum_ns": s.SumNs,
				"min_ns": s.MinNs,
				"max_ns": s.MaxNs,
				"p50_ns": s.P50Ns,
				"p95_ns": s.P95Ns,
				"p99_ns": s.P99Ns,
			}
		}
		out["counters"] = counters
		out["gauges"] = gauges
		out["histograms"] = hists
		return out
	}
}
