package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects spans for single-operation diagnostics: enable it,
// run one op (a read, a write, a revoke), then Take() the span forest
// and print it with FormatTree. That is what `nexus trace` does.
//
// Tracing is disabled by default and the disabled path is free of
// locks and allocations: Begin returns a nil *Span after one atomic
// load, and all *Span methods are nil-safe no-ops. Instrumented code
// therefore never guards its span calls.
//
// Parenting is ambient: Begin parents the new span under the most
// recently begun, not-yet-ended span (falling back to a root). This
// matches how one operation flows down the stack — vfs.write begins,
// then sgx.ecall begins inside it, then afs.store inside that — and
// keeps the instrumented layers free of plumbed-through context.
// StartSpan offers explicit context parenting for callers that do have
// a context. Ambient parenting means spans from concurrently traced
// operations can interleave; the tracer is a magnifying glass for one
// op at a time, not a production distributed tracer.
type Tracer struct {
	enabled atomic.Bool

	mu    sync.Mutex
	stack []*Span // guarded by mu
	roots []*Span // guarded by mu
}

// Span is one timed stage of an operation. Fields are written by the
// tracer under its lock and must be read only after Take has detached
// the span forest from the tracer.
type Span struct {
	Name     string
	Start    time.Time
	Dur      time.Duration
	Tags     []Tag
	Children []*Span

	tr *Tracer
}

// Tag is a key/value annotation on a span (retry counts, fault
// classifications, byte sizes).
type Tag struct {
	Key   string
	Value string
}

// Enabled reports whether spans are being collected.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Enable starts span collection. Spans begun before Enable are not
// retroactively collected.
func (t *Tracer) Enable() { t.enabled.Store(true) }

// Disable stops collection and drops any buffered spans.
func (t *Tracer) Disable() {
	t.enabled.Store(false)
	t.mu.Lock()
	t.stack = nil
	t.roots = nil
	t.mu.Unlock()
}

// Begin opens a span parented under the current ambient span. It
// returns nil when the tracer is disabled; nil spans are valid
// receivers for End and Tag, so callers never branch.
func (t *Tracer) Begin(name string) *Span {
	if !t.enabled.Load() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.beginLocked(name, nil)
}

// beginLocked creates the span under t.mu. When parent is nil the top
// of the ambient stack (or the root set) adopts the span.
func (t *Tracer) beginLocked(name string, parent *Span) *Span {
	s := &Span{Name: name, Start: time.Now(), tr: t}
	if parent == nil && len(t.stack) > 0 {
		parent = t.stack[len(t.stack)-1]
	}
	if parent != nil {
		parent.Children = append(parent.Children, s)
	} else {
		t.roots = append(t.roots, s)
	}
	t.stack = append(t.stack, s)
	return s
}

// End closes the span, fixing its duration and popping it from the
// ambient stack. Safe on nil receivers.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.Dur == 0 {
		s.Dur = time.Since(s.Start)
	}
	// Pop s (and anything begun after it that leaked without End —
	// defensive against panics in traced code).
	for i := len(s.tr.stack) - 1; i >= 0; i-- {
		if s.tr.stack[i] == s {
			s.tr.stack = s.tr.stack[:i]
			break
		}
	}
}

// SetTag annotates the span. Safe on nil receivers.
func (s *Span) SetTag(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Tags = append(s.Tags, Tag{Key: key, Value: value})
	s.tr.mu.Unlock()
}

// SetTagInt annotates the span with an integer value.
func (s *Span) SetTagInt(key string, value int64) {
	if s == nil {
		return
	}
	s.SetTag(key, fmt.Sprintf("%d", value))
}

// Take detaches and returns the collected root spans, leaving the
// tracer empty but still enabled. The returned forest is immutable
// from the tracer's perspective and safe to walk without locks.
func (t *Tracer) Take() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	roots := t.roots
	t.roots = nil
	t.stack = nil
	return roots
}

// ctxKey is the context key for span propagation.
type ctxKey struct{}

// ContextWithSpan returns a context carrying the span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan opens a span explicitly parented under the span in ctx (if
// any) and returns a derived context carrying the new span. Use it at
// operation entry points that own a context; the layers below nest via
// the ambient Begin.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if !t.enabled.Load() {
		return ctx, nil
	}
	t.mu.Lock()
	s := t.beginLocked(name, SpanFromContext(ctx))
	t.mu.Unlock()
	return ContextWithSpan(ctx, s), s
}

// FormatTree writes the span forest as an indented tree:
//
//	vfs.write 1.208ms
//	  sgx.ecall 1.102ms
//	    afs.store 0.911ms [retries=1]
//
// Durations are rounded to µs for readability; tags print in key
// order.
func FormatTree(w io.Writer, roots []*Span) {
	for _, s := range roots {
		formatSpan(w, s, 0)
	}
}

func formatSpan(w io.Writer, s *Span, depth int) {
	for i := 0; i < depth; i++ {
		fmt.Fprint(w, "  ")
	}
	fmt.Fprintf(w, "%s %v", s.Name, s.Dur.Round(time.Microsecond))
	if len(s.Tags) > 0 {
		tags := append([]Tag(nil), s.Tags...)
		sort.Slice(tags, func(i, j int) bool { return tags[i].Key < tags[j].Key })
		fmt.Fprint(w, " [")
		for i, tg := range tags {
			if i > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprintf(w, "%s=%s", tg.Key, tg.Value)
		}
		fmt.Fprint(w, "]")
	}
	fmt.Fprintln(w)
	for _, c := range s.Children {
		formatSpan(w, c, depth+1)
	}
}
