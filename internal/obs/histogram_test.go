package obs

import (
	"math"
	"testing"
	"time"
)

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},
		{1, 0},
		{999, 0},
		{1000, 0},   // inclusive upper bound of bucket 0
		{1001, 1},   // first value of bucket 1
		{2000, 1},   // inclusive upper bound of bucket 1
		{2001, 2},   // first value of bucket 2
		{4000, 2},   //
		{4001, 3},   //
		{1 << 40, numBounds}, // far beyond the ladder: overflow
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// The top regular bucket and the first overflow value.
	top := BucketBound(numBounds - 1)
	if got := bucketIndex(top); got != numBounds-1 {
		t.Errorf("bucketIndex(top bound %d) = %d, want %d", top, got, numBounds-1)
	}
	if got := bucketIndex(top + 1); got != numBounds {
		t.Errorf("bucketIndex(top bound+1) = %d, want overflow %d", got, numBounds)
	}
}

func TestBucketBound(t *testing.T) {
	if got := BucketBound(0); got != 1000 {
		t.Errorf("BucketBound(0) = %d, want 1000", got)
	}
	if got := BucketBound(1); got != 2000 {
		t.Errorf("BucketBound(1) = %d, want 2000", got)
	}
	if got := BucketBound(numBounds); got != math.MaxInt64 {
		t.Errorf("BucketBound(overflow) = %d, want MaxInt64", got)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	h := newHistogram()
	s := h.Snapshot()
	if s.Count != 0 || s.SumNs != 0 || s.MinNs != 0 || s.MaxNs != 0 {
		t.Errorf("empty snapshot = %+v, want zeroes", s)
	}
	if s.Mean() != 0 {
		t.Errorf("empty Mean() = %d, want 0", s.Mean())
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := newHistogram()
	h.Record(1500 * time.Nanosecond)
	s := h.Snapshot()
	if s.Count != 1 || s.SumNs != 1500 || s.MinNs != 1500 || s.MaxNs != 1500 {
		t.Fatalf("snapshot = %+v", s)
	}
	// With one observation every quantile must clamp to it.
	for _, q := range []int64{s.P50Ns, s.P95Ns, s.P99Ns} {
		if q != 1500 {
			t.Errorf("quantile = %d, want 1500", q)
		}
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	// 90 observations in bucket 1 (1µs, 2µs] and 10 in bucket 2
	// (2µs, 4µs] give exactly computable interpolated quantiles.
	h := newHistogram()
	for i := 0; i < 90; i++ {
		h.Record(1500 * time.Nanosecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(3000 * time.Nanosecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	// p50: rank 50 inside bucket 1, lower clamped to min(1500),
	// upper 2000: 1500 + (50/90)*(2000-1500) = 1777.
	if s.P50Ns != 1777 {
		t.Errorf("p50 = %d, want 1777", s.P50Ns)
	}
	// p95: rank 95, 5 into bucket 2's 10; lower 2000, upper clamped to
	// max(3000): 2000 + 0.5*1000 = 2500.
	if s.P95Ns != 2500 {
		t.Errorf("p95 = %d, want 2500", s.P95Ns)
	}
	// p99: 9 into bucket 2's 10: 2000 + 0.9*1000 = 2900.
	if s.P99Ns != 2900 {
		t.Errorf("p99 = %d, want 2900", s.P99Ns)
	}
	if s.P50Ns > s.P95Ns || s.P95Ns > s.P99Ns {
		t.Errorf("quantiles not monotonic: %d %d %d", s.P50Ns, s.P95Ns, s.P99Ns)
	}
	if s.Mean() != (90*1500+10*3000)/100 {
		t.Errorf("mean = %d", s.Mean())
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := newHistogram()
	h.Record(20 * time.Second) // beyond the ~16.8s top bound
	s := h.Snapshot()
	if s.Buckets[numBounds] != 1 {
		t.Errorf("overflow bucket = %d, want 1", s.Buckets[numBounds])
	}
	if s.MaxNs != int64(20*time.Second) {
		t.Errorf("max = %d", s.MaxNs)
	}
	// Quantiles in the overflow bucket clamp to the observed max.
	if s.P99Ns != s.MaxNs {
		t.Errorf("p99 = %d, want max %d", s.P99Ns, s.MaxNs)
	}
}

func TestHistogramNegativeDurationClampsToZero(t *testing.T) {
	h := newHistogram()
	h.Record(-time.Second)
	s := h.Snapshot()
	if s.Count != 1 || s.SumNs != 0 || s.MinNs != 0 || s.MaxNs != 0 {
		t.Errorf("snapshot after negative record = %+v", s)
	}
}

func TestHistogramReset(t *testing.T) {
	h := newHistogram()
	h.Record(time.Millisecond)
	h.Reset()
	s := h.Snapshot()
	if s.Count != 0 || s.SumNs != 0 || s.MinNs != 0 || s.MaxNs != 0 {
		t.Errorf("snapshot after reset = %+v", s)
	}
	// The histogram must keep working after a reset.
	h.Record(2 * time.Millisecond)
	if s := h.Snapshot(); s.Count != 1 || s.MinNs != int64(2*time.Millisecond) {
		t.Errorf("snapshot after reuse = %+v", s)
	}
}
