package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestDisabledTracerIsNilSafe(t *testing.T) {
	var tr Tracer
	s := tr.Begin("op")
	if s != nil {
		t.Fatal("Begin on disabled tracer returned a span")
	}
	// All span methods must be no-ops on nil.
	s.SetTag("k", "v")
	s.SetTagInt("n", 1)
	s.End()
	if roots := tr.Take(); len(roots) != 0 {
		t.Errorf("disabled tracer collected %d roots", len(roots))
	}
	ctx, s2 := tr.StartSpan(context.Background(), "op")
	if s2 != nil || SpanFromContext(ctx) != nil {
		t.Error("StartSpan on disabled tracer produced a span")
	}
}

func TestAmbientNesting(t *testing.T) {
	var tr Tracer
	tr.Enable()
	a := tr.Begin("a")
	b := tr.Begin("b")
	b.End()
	c := tr.Begin("c")
	c.End()
	a.End()
	d := tr.Begin("d")
	d.End()

	roots := tr.Take()
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2", len(roots))
	}
	if roots[0].Name != "a" || roots[1].Name != "d" {
		t.Fatalf("roots = %s, %s", roots[0].Name, roots[1].Name)
	}
	kids := roots[0].Children
	if len(kids) != 2 || kids[0].Name != "b" || kids[1].Name != "c" {
		t.Fatalf("children of a = %v", spanNames(kids))
	}
	for _, s := range []*Span{a, b, c, d} {
		if s.Dur <= 0 {
			t.Errorf("span %s has duration %v", s.Name, s.Dur)
		}
	}
}

func TestEndPopsLeakedDescendants(t *testing.T) {
	var tr Tracer
	tr.Enable()
	a := tr.Begin("a")
	tr.Begin("leaked") // never ended (simulates a panic in traced code)
	a.End()
	// The stack must be clean: the next span is a new root, not a child
	// of the leaked span.
	b := tr.Begin("b")
	b.End()
	roots := tr.Take()
	if len(roots) != 2 || roots[1].Name != "b" {
		t.Fatalf("roots = %v", spanNames(roots))
	}
}

func TestTakeDetachesAndTracerKeepsCollecting(t *testing.T) {
	var tr Tracer
	tr.Enable()
	tr.Begin("one").End()
	first := tr.Take()
	if len(first) != 1 {
		t.Fatalf("first take = %d roots", len(first))
	}
	if again := tr.Take(); len(again) != 0 {
		t.Fatalf("second take = %d roots, want 0", len(again))
	}
	tr.Begin("two").End()
	if roots := tr.Take(); len(roots) != 1 || roots[0].Name != "two" {
		t.Fatalf("after re-collection roots = %v", spanNames(roots))
	}
}

func TestDisableDropsBufferedSpans(t *testing.T) {
	var tr Tracer
	tr.Enable()
	tr.Begin("kept-open")
	tr.Disable()
	if roots := tr.Take(); len(roots) != 0 {
		t.Errorf("Disable left %d roots", len(roots))
	}
}

func TestStartSpanContextParenting(t *testing.T) {
	var tr Tracer
	tr.Enable()
	ctx, parent := tr.StartSpan(context.Background(), "parent")
	// Clear the ambient stack so only the context can link them.
	tr.mu.Lock()
	tr.stack = nil
	tr.mu.Unlock()
	_, child := tr.StartSpan(ctx, "child")
	child.End()
	parent.End()
	roots := tr.Take()
	if len(roots) != 1 || len(roots[0].Children) != 1 || roots[0].Children[0].Name != "child" {
		t.Fatalf("context parenting failed: roots = %v", spanNames(roots))
	}
}

func TestFormatTree(t *testing.T) {
	child := &Span{Name: "sgx.ecall", Dur: 1100 * time.Microsecond}
	root := &Span{
		Name: "vfs.write",
		Dur:  2 * time.Millisecond,
		Tags: []Tag{{Key: "retries", Value: "1"}, {Key: "bytes", Value: "4096"}},
		Children: []*Span{child},
	}
	var sb strings.Builder
	FormatTree(&sb, []*Span{root})
	want := "vfs.write 2ms [bytes=4096 retries=1]\n  sgx.ecall 1.1ms\n"
	if sb.String() != want {
		t.Errorf("FormatTree = %q, want %q", sb.String(), want)
	}
}

func spanNames(spans []*Span) []string {
	names := make([]string, len(spans))
	for i, s := range spans {
		names[i] = s.Name
	}
	return names
}
