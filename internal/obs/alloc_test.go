//go:build !race

// Allocation assertions are meaningless under the race detector (its
// instrumentation allocates), so this file is excluded from -race runs;
// the plain CI test job executes it.

package obs

import (
	"testing"
	"time"
)

// TestHotPathAllocationFree proves the claim the whole instrumentation
// design rests on: recording a metric, moving a gauge, and hitting a
// disabled tracer cost zero heap allocations.
func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	g := r.Gauge("depth")
	h := r.Histogram("op_seconds")
	tr := r.Tracer() // disabled: Begin must return nil without allocating

	cases := []struct {
		name string
		fn   func()
	}{
		{"counter_inc", func() { c.Inc() }},
		{"counter_add", func() { c.Add(3) }},
		{"gauge_set", func() { g.Set(7) }},
		{"histogram_record", func() { h.Record(1500 * time.Nanosecond) }},
		{"disabled_span", func() {
			s := tr.Begin("op")
			s.SetTag("k", "v")
			s.End()
		}},
		{"lookup_record", func() { r.Counter("ops_total").Inc() }},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(1000, c.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f objects per op, want 0", c.name, allocs)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i%100000) * time.Nanosecond)
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	tr := NewRegistry().Tracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Begin("op").End()
	}
}
