// Package obs is the unified observability layer: an allocation-light,
// race-clean metrics registry (counters, gauges, fixed-bucket latency
// histograms) plus lightweight trace spans that follow one operation
// across the vfs → enclave ecall boundary → afs RPC chain.
//
// Design constraints, in order:
//
//  1. Hot-path recording must not allocate. Counter.Add, Gauge.Set and
//     Histogram.Record are a handful of atomic ops on pre-registered
//     instruments; instruments are looked up once at component
//     construction time, never per operation.
//  2. Everything is safe for concurrent use. The registry maps are
//     mutex-guarded; the instruments themselves are atomics.
//  3. No dependencies. Exposition is hand-rolled Prometheus text
//     format (expo.go) plus expvar; both are stdlib-only.
//
// A Registry is an instance, not a global: tests and benchmarks create
// as many isolated registries as they need. One registry is shared down
// a client stack (vfs → enclave → sgx → afs) so a single scrape or
// trace sees the whole data path.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is not
// usable; obtain counters from Registry.Counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Hot-path safe: one atomic add.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset zeroes the counter. Exposition treats counters as cumulative;
// Reset exists so the legacy per-component ResetStats shims keep their
// documented "start a fresh measurement window" semantics.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a metric that can go up and down (worker widths, open
// connections). Obtain gauges from Registry.Gauge.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry owns a namespace of instruments and the tracer attached to
// them. Instrument lookup is get-or-create: two components asking for
// the same name share the instrument, which is how e.g. the enclave and
// the vfs layer above it meter into one data path.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu

	tracer Tracer
}

// NewRegistry returns an empty registry with tracing disabled.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Names follow Prometheus conventions: snake_case with a
// _total suffix for counters.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the latency histogram registered under name,
// creating it on first use. Names carry a _seconds suffix; buckets are
// the fixed power-of-two ladder described in histogram.go.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = newHistogram()
	r.hists[name] = h
	return h
}

// Tracer returns the registry's tracer. The tracer starts disabled;
// call Tracer().Enable() to begin collecting spans (see trace.go).
func (r *Registry) Tracer() *Tracer { return &r.tracer }

// CounterValue is a point-in-time reading of one named counter.
func (r *Registry) CounterValue(name string) int64 {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if !ok {
		return 0
	}
	return c.Value()
}

// GaugeValue is a point-in-time reading of one named gauge.
func (r *Registry) GaugeValue(name string) int64 {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if !ok {
		return 0
	}
	return g.Value()
}

// Snapshot returns the histogram snapshot for name, or a zero snapshot
// if the histogram was never registered.
func (r *Registry) Snapshot(name string) HistSnapshot {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if !ok {
		return HistSnapshot{}
	}
	return h.Snapshot()
}

// Timed records the duration since start into the histogram. It is the
// conventional way to close a latency measurement:
//
//	start := time.Now()
//	defer func() { h.Record(time.Since(start)) }()
//
// provided here as a helper for call sites that already hold both ends.
func Timed(h *Histogram, start time.Time) { h.Record(time.Since(start)) }

// counterNames returns the registered counter names, sorted, for
// deterministic exposition.
func (r *Registry) counterNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (r *Registry) gaugeNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (r *Registry) histNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
