package apps

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"strings"
	"testing"

	"nexus/internal/backend"
	"nexus/internal/enclave"
	"nexus/internal/fsapi"
	"nexus/internal/plainfs"
	"nexus/internal/sgx"
	"nexus/internal/vfs"
	"nexus/internal/workload"
)

// filesystems returns both implementations so every utility is verified
// to behave identically over NEXUS and the baseline.
func filesystems(t *testing.T) map[string]fsapi.FileSystem {
	t.Helper()
	return map[string]fsapi.FileSystem{
		"plain": plainfs.New(backend.NewMemStore()),
		"nexus": newNexusFS(t),
	}
}

func newNexusFS(t *testing.T) fsapi.FileSystem {
	t.Helper()
	platform, err := sgx.NewPlatform(sgx.PlatformConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	container, err := platform.CreateEnclave(sgx.Image{Name: "nexus-enclave", Version: 1, Code: []byte("t")})
	if err != nil {
		t.Fatal(err)
	}
	store := vfs.NewVersionedStore(backend.NewMemStore())
	encl, err := enclave.New(enclave.Config{SGX: container, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := encl.CreateVolume("owner", pub)
	if err != nil {
		t.Fatal(err)
	}
	volID, err := encl.VolumeUUID()
	if err != nil {
		t.Fatal(err)
	}
	nonce, blob, err := encl.BeginAuth(pub, sealed, volID)
	if err != nil {
		t.Fatal(err)
	}
	msg := append(append([]byte(nil), nonce...), blob...)
	if err := encl.CompleteAuth(ed25519.Sign(priv, msg)); err != nil {
		t.Fatal(err)
	}
	return fsapi.Nexus(vfs.New(encl))
}

func buildSampleTree(t *testing.T, fs fsapi.FileSystem) {
	t.Helper()
	if err := fs.MkdirAll("/proj/src/deep"); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		"/proj/readme.md":      "hello javascript world\nplain line\n",
		"/proj/src/a.go":       "package a\n// no match here\n",
		"/proj/src/deep/b.js":  "var x = 1 // javascript\njavascript again\n",
		"/proj/src/deep/c.txt": strings.Repeat("filler\n", 100),
	}
	for p, content := range files {
		if err := fs.WriteFile(p, []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Symlink("src/a.go", "/proj/link"); err != nil {
		t.Fatal(err)
	}
}

func TestDu(t *testing.T) {
	for name, fs := range filesystems(t) {
		t.Run(name, func(t *testing.T) {
			buildSampleTree(t, fs)
			total, err := Du(fs, "/proj")
			if err != nil {
				t.Fatalf("Du: %v", err)
			}
			want := int64(len("hello javascript world\nplain line\n") +
				len("package a\n// no match here\n") +
				len("var x = 1 // javascript\njavascript again\n") +
				len(strings.Repeat("filler\n", 100)))
			if total != want {
				t.Fatalf("Du = %d, want %d", total, want)
			}
		})
	}
}

func TestGrep(t *testing.T) {
	for name, fs := range filesystems(t) {
		t.Run(name, func(t *testing.T) {
			buildSampleTree(t, fs)
			matches, err := Grep(fs, "/proj", "javascript")
			if err != nil {
				t.Fatalf("Grep: %v", err)
			}
			// Lines containing the term: readme(1) + b.js(2).
			if matches != 3 {
				t.Fatalf("Grep = %d matches, want 3", matches)
			}
		})
	}
}

func TestCpAndMv(t *testing.T) {
	for name, fs := range filesystems(t) {
		t.Run(name, func(t *testing.T) {
			buildSampleTree(t, fs)
			if err := Cp(fs, "/proj/readme.md", "/proj/copy.md"); err != nil {
				t.Fatalf("Cp: %v", err)
			}
			a, err := fs.ReadFile("/proj/readme.md")
			if err != nil {
				t.Fatal(err)
			}
			b, err := fs.ReadFile("/proj/copy.md")
			if err != nil || !bytes.Equal(a, b) {
				t.Fatalf("copy differs: %v", err)
			}

			if err := Mv(fs, "/proj/copy.md", "/proj/moved.md"); err != nil {
				t.Fatalf("Mv: %v", err)
			}
			if ok, _ := fs.Exists("/proj/copy.md"); ok {
				t.Fatal("source survived mv")
			}
			c, err := fs.ReadFile("/proj/moved.md")
			if err != nil || !bytes.Equal(a, c) {
				t.Fatalf("moved file differs: %v", err)
			}
		})
	}
}

func TestTarRoundTrip(t *testing.T) {
	for name, fs := range filesystems(t) {
		t.Run(name, func(t *testing.T) {
			buildSampleTree(t, fs)
			var archive bytes.Buffer
			if err := TarCreate(fs, "/proj", &archive); err != nil {
				t.Fatalf("TarCreate: %v", err)
			}
			if archive.Len() == 0 {
				t.Fatal("empty archive")
			}

			// Extract into a fresh subtree of the same filesystem.
			if err := TarExtract(fs, "/restored", bytes.NewReader(archive.Bytes())); err != nil {
				t.Fatalf("TarExtract: %v", err)
			}
			for _, p := range []string{"/restored/readme.md", "/restored/src/a.go", "/restored/src/deep/b.js"} {
				orig, err := fs.ReadFile(strings.Replace(p, "/restored", "/proj", 1))
				if err != nil {
					t.Fatal(err)
				}
				got, err := fs.ReadFile(p)
				if err != nil || !bytes.Equal(got, orig) {
					t.Fatalf("extracted %s differs: %v", p, err)
				}
			}
			// The symlink survived.
			st, err := fs.Stat("/restored/link")
			if err != nil || !st.IsSymlink || st.SymlinkTarget != "src/a.go" {
				t.Fatalf("symlink = %+v, %v", st, err)
			}
		})
	}
}

func TestTarExtractAcrossFilesystems(t *testing.T) {
	// Create on plain, extract into NEXUS — the workload setup path used
	// by the Fig. 6 benchmarks.
	plain := plainfs.New(backend.NewMemStore())
	tree := workload.Generate(workload.TreeSpec{
		Name: "t", NumFiles: 30, NumDirs: 6, MaxDepth: 3,
		MinFileSize: 64, MaxFileSize: 2048, Seed: 3,
	})
	if _, err := workload.Materialize(plain, "/w", tree, 1); err != nil {
		t.Fatal(err)
	}
	var archive bytes.Buffer
	if err := TarCreate(plain, "/w", &archive); err != nil {
		t.Fatal(err)
	}

	nx := newNexusFS(t)
	if err := TarExtract(nx, "/w", bytes.NewReader(archive.Bytes())); err != nil {
		t.Fatalf("extract into nexus: %v", err)
	}
	duPlain, err := Du(plain, "/w")
	if err != nil {
		t.Fatal(err)
	}
	duNexus, err := Du(nx, "/w")
	if err != nil {
		t.Fatal(err)
	}
	if duPlain != duNexus {
		t.Fatalf("du differs across filesystems: %d vs %d", duPlain, duNexus)
	}
	grepPlain, err := Grep(plain, "/w", "javascript")
	if err != nil {
		t.Fatal(err)
	}
	grepNexus, err := Grep(nx, "/w", "javascript")
	if err != nil {
		t.Fatal(err)
	}
	if grepPlain != grepNexus {
		t.Fatalf("grep differs: %d vs %d", grepPlain, grepNexus)
	}
}
