// Package apps reimplements the Linux utilities the paper benchmarks
// (DSN'19 §VII-D, Fig. 6) — tar -x, du, grep, tar -c, cp, and mv —
// against the fsapi.FileSystem interface, so the identical application
// logic runs over NEXUS and over the plain baseline.
//
// tar uses the standard ustar format via archive/tar; extraction of an
// archive created here round-trips through real tar semantics.
package apps

import (
	"archive/tar"
	"bytes"
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"

	"nexus/internal/fsapi"
)

// walk visits every entry under root depth-first in lexical order.
func walk(fs fsapi.FileSystem, root string, fn func(p string, e fsapi.DirEntry) error) error {
	st, err := fs.Stat(root)
	if err != nil {
		return err
	}
	if err := fn(path.Clean("/"+root), st); err != nil {
		return err
	}
	if !st.IsDir {
		return nil
	}
	entries, err := fs.ReadDir(root)
	if err != nil {
		return err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	for _, e := range entries {
		child := path.Join(root, e.Name)
		if e.IsDir {
			if err := walk(fs, child, fn); err != nil {
				return err
			}
			continue
		}
		childStat, err := fs.Stat(child)
		if err != nil {
			return err
		}
		if err := fn(path.Clean("/"+child), childStat); err != nil {
			return err
		}
	}
	return nil
}

// TarCreate archives the tree rooted at root into w (tar -c). Paths in
// the archive are relative to root.
func TarCreate(fs fsapi.FileSystem, root string, w io.Writer) error {
	tw := tar.NewWriter(w)
	cleanRoot := path.Clean("/" + root)
	err := walk(fs, root, func(p string, e fsapi.DirEntry) error {
		rel := strings.TrimPrefix(p, cleanRoot)
		rel = strings.TrimPrefix(rel, "/")
		if rel == "" {
			return nil // the root itself
		}
		switch {
		case e.IsDir:
			return tw.WriteHeader(&tar.Header{
				Name:     rel + "/",
				Typeflag: tar.TypeDir,
				Mode:     0o755,
			})
		case e.IsSymlink:
			return tw.WriteHeader(&tar.Header{
				Name:     rel,
				Typeflag: tar.TypeSymlink,
				Linkname: e.SymlinkTarget,
				Mode:     0o777,
			})
		default:
			data, err := fs.ReadFile(p)
			if err != nil {
				return err
			}
			if err := tw.WriteHeader(&tar.Header{
				Name:     rel,
				Typeflag: tar.TypeReg,
				Mode:     0o644,
				Size:     int64(len(data)),
			}); err != nil {
				return err
			}
			_, err = tw.Write(data)
			return err
		}
	})
	if err != nil {
		return fmt.Errorf("apps: tar create: %w", err)
	}
	return tw.Close()
}

// TarExtract unpacks a tar stream into root (tar -x).
func TarExtract(fs fsapi.FileSystem, root string, r io.Reader) error {
	if err := fs.MkdirAll(root); err != nil {
		return err
	}
	tr := tar.NewReader(r)
	for {
		hdr, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("apps: tar extract: %w", err)
		}
		name := path.Join(root, path.Clean("/"+hdr.Name))
		switch hdr.Typeflag {
		case tar.TypeDir:
			if err := fs.MkdirAll(name); err != nil {
				return err
			}
		case tar.TypeSymlink:
			if err := fs.Symlink(hdr.Linkname, name); err != nil {
				return err
			}
		case tar.TypeReg:
			if err := fs.MkdirAll(path.Dir(name)); err != nil {
				return err
			}
			data, err := io.ReadAll(tr)
			if err != nil {
				return err
			}
			if err := fs.WriteFile(name, data); err != nil {
				return err
			}
		default:
			// Hardlinks and special files are not exercised by the
			// paper's workloads; skip them rather than fail.
		}
	}
}

// Du traverses the tree and sums file sizes (du).
func Du(fs fsapi.FileSystem, root string) (int64, error) {
	var total int64
	err := walk(fs, root, func(p string, e fsapi.DirEntry) error {
		if !e.IsDir && !e.IsSymlink {
			total += int64(e.Size)
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("apps: du: %w", err)
	}
	return total, nil
}

// Grep recursively searches for term and returns the number of matching
// lines (grep -r term | wc -l).
func Grep(fs fsapi.FileSystem, root, term string) (int, error) {
	needle := []byte(term)
	matches := 0
	err := walk(fs, root, func(p string, e fsapi.DirEntry) error {
		if e.IsDir || e.IsSymlink {
			return nil
		}
		data, err := fs.ReadFile(p)
		if err != nil {
			return err
		}
		for _, line := range bytes.Split(data, []byte{'\n'}) {
			if bytes.Contains(line, needle) {
				matches++
			}
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("apps: grep: %w", err)
	}
	return matches, nil
}

// Cp duplicates a single file (cp src dst).
func Cp(fs fsapi.FileSystem, src, dst string) error {
	data, err := fs.ReadFile(src)
	if err != nil {
		return fmt.Errorf("apps: cp: %w", err)
	}
	if err := fs.WriteFile(dst, data); err != nil {
		return fmt.Errorf("apps: cp: %w", err)
	}
	return nil
}

// Mv renames a file (mv src dst).
func Mv(fs fsapi.FileSystem, src, dst string) error {
	if err := fs.Rename(src, dst); err != nil {
		return fmt.Errorf("apps: mv: %w", err)
	}
	return nil
}
