package backend

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

// storeUnderTest enumerates the implementations that must satisfy the
// Store contract identically.
func storesUnderTest(t *testing.T) map[string]Store {
	t.Helper()
	dir, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	return map[string]Store{
		"mem": NewMemStore(),
		"dir": dir,
	}
}

func TestStoreContract(t *testing.T) {
	for name, s := range storesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			testStoreContract(t, s)
		})
	}
}

func testStoreContract(t *testing.T, s Store) {
	// Absent object.
	if _, err := s.Get("missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Get(missing) = %v, want ErrNotExist", err)
	}
	if err := s.Delete("missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Delete(missing) = %v, want ErrNotExist", err)
	}

	// Round trip.
	want := []byte("object contents")
	if err := s.Put("obj1", want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get("obj1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, want %q", got, want)
	}

	// Overwrite.
	if err := s.Put("obj1", []byte("v2")); err != nil {
		t.Fatalf("Put overwrite: %v", err)
	}
	got, err = s.Get("obj1")
	if err != nil || string(got) != "v2" {
		t.Fatalf("Get after overwrite = %q, %v", got, err)
	}

	// Empty object is valid.
	if err := s.Put("empty", nil); err != nil {
		t.Fatalf("Put(empty): %v", err)
	}
	got, err = s.Get("empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("Get(empty) = %q, %v", got, err)
	}

	// List with prefix, sorted.
	for _, n := range []string{"md_b", "md_a", "data_1"} {
		if err := s.Put(n, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	names, err := s.List("md_")
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(names) != 2 || names[0] != "md_a" || names[1] != "md_b" {
		t.Fatalf("List(md_) = %v", names)
	}

	// Delete removes.
	if err := s.Delete("obj1"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get("obj1"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Get after delete = %v, want ErrNotExist", err)
	}
}

func TestBadNamesRejected(t *testing.T) {
	for storeName, s := range storesUnderTest(t) {
		t.Run(storeName, func(t *testing.T) {
			for _, bad := range []string{"", "a/b", `a\b`, ".", "..", "../../etc/passwd"} {
				if err := s.Put(bad, []byte("x")); !errors.Is(err, ErrBadName) {
					t.Errorf("Put(%q) = %v, want ErrBadName", bad, err)
				}
				if _, err := s.Get(bad); !errors.Is(err, ErrBadName) {
					t.Errorf("Get(%q) = %v, want ErrBadName", bad, err)
				}
				if _, err := s.Lock(bad); !errors.Is(err, ErrBadName) {
					t.Errorf("Lock(%q) = %v, want ErrBadName", bad, err)
				}
			}
		})
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewMemStore()
	if err := s.Put("obj", []byte("original")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("obj")
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 'X'
	again, err := s.Get("obj")
	if err != nil || string(again) != "original" {
		t.Fatalf("store contents mutated through Get result: %q", again)
	}
}

func TestPutCopiesInput(t *testing.T) {
	s := NewMemStore()
	buf := []byte("original")
	if err := s.Put("obj", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	got, err := s.Get("obj")
	if err != nil || string(got) != "original" {
		t.Fatalf("store contents aliased caller buffer: %q", got)
	}
}

func TestLockMutualExclusion(t *testing.T) {
	for name, s := range storesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			const workers = 8
			const iters = 100
			counter := 0
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						release, err := s.Lock("shared")
						if err != nil {
							t.Errorf("Lock: %v", err)
							return
						}
						counter++ // data race unless the lock excludes
						release()
					}
				}()
			}
			wg.Wait()
			if counter != workers*iters {
				t.Fatalf("counter = %d, want %d", counter, workers*iters)
			}
		})
	}
}

func TestLocksAreIndependentPerObject(t *testing.T) {
	s := NewMemStore()
	rel1, err := s.Lock("a")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		rel2, err := s.Lock("b") // must not block on a's lock
		if err == nil {
			rel2()
		}
		close(done)
	}()
	<-done
	rel1()
}

func TestMemStoreAccounting(t *testing.T) {
	s := NewMemStore()
	if err := s.Put("a", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", make([]byte, 28)); err != nil {
		t.Fatal(err)
	}
	if got := s.Size(); got != 2 {
		t.Fatalf("Size = %d", got)
	}
	if got := s.TotalBytes(); got != 128 {
		t.Fatalf("TotalBytes = %d", got)
	}
}

func TestDirStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("persist", []byte("data")); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get("persist")
	if err != nil || string(got) != "data" {
		t.Fatalf("after reopen: %q, %v", got, err)
	}
}

func TestQuickMemStorePutGet(t *testing.T) {
	s := NewMemStore()
	i := 0
	f := func(data []byte) bool {
		i++
		name := fmt.Sprintf("obj%d", i)
		if err := s.Put(name, data); err != nil {
			return false
		}
		got, err := s.Get(name)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
