// Package backend defines the storage API that NEXUS stacks on top of,
// together with local implementations.
//
// NEXUS is explicitly portable across "any platform exposing a file
// access API" (DSN'19 abstract): every volume object — encrypted data
// files and encrypted metadata alike — is a self-contained blob stored
// under its UUID-derived name. The Store interface captures the minimal
// contract the paper relies on: whole-object get/put/delete, enumeration,
// and the advisory per-object locks the prototype obtains via flock()
// (§V-A). The AFS-like network filesystem in internal/afs provides the
// remote implementation; MemStore and DirStore cover local volumes and
// tests.
package backend

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is the storage service abstraction beneath a NEXUS volume.
//
// Implementations must be safe for concurrent use. Names are flat,
// non-empty strings without path separators (NEXUS object names are hex
// UUIDs plus a small set of well-known names).
type Store interface {
	// Get returns the object's contents. It returns ErrNotExist if the
	// object is absent.
	Get(name string) ([]byte, error)
	// Put atomically replaces the object's contents, creating it if
	// needed.
	Put(name string, data []byte) error
	// Delete removes the object. Deleting an absent object returns
	// ErrNotExist.
	Delete(name string) error
	// List returns the names of all objects with the given prefix, in
	// lexical order. An empty prefix lists everything.
	List(prefix string) ([]string, error)
	// Lock acquires the object's exclusive advisory lock, blocking until
	// available, and returns a release function. The lock is advisory:
	// it orders cooperating NEXUS clients' metadata updates (the
	// prototype's flock()) and implies nothing about readers.
	Lock(name string) (release func(), err error)
}

// Errors returned by stores.
var (
	// ErrNotExist reports a missing object.
	ErrNotExist = errors.New("backend: object does not exist")
	// ErrBadName reports an invalid object name.
	ErrBadName = errors.New("backend: invalid object name")

	// The three failure sentinels below type the storage substrate's
	// transport faults, so layers above a remote store (enclave,
	// cryptofs, vfs) can react to an unreliable service without
	// importing it. Local stores never return them.

	// ErrUnavailable reports that the storage service could not be
	// reached: the operation was never delivered and was NOT applied.
	ErrUnavailable = errors.New("backend: storage service unavailable")
	// ErrTimeout reports an operation that missed its deadline.
	ErrTimeout = errors.New("backend: storage operation timed out")
	// ErrInterrupted reports a non-idempotent operation whose connection
	// failed mid-exchange: the operation MAY have been applied, and the
	// caller must re-validate before retrying.
	ErrInterrupted = errors.New("backend: operation interrupted; outcome unknown")
)

// IsUnavailable reports whether err is any flavour of storage-substrate
// failure: unreachable service, missed deadline, or an interrupted
// exchange.
func IsUnavailable(err error) bool {
	return errors.Is(err, ErrUnavailable) || errors.Is(err, ErrTimeout) || errors.Is(err, ErrInterrupted)
}

// ValidateName rejects names that are empty or contain path separators;
// stores share this so a hostile name cannot escape a directory-backed
// store.
func ValidateName(name string) error {
	if name == "" {
		return fmt.Errorf("%w: empty", ErrBadName)
	}
	if strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	return nil
}

// MemStore is an in-memory Store for tests and benchmarks. The zero
// value is ready to use.
type MemStore struct {
	mu      sync.Mutex
	objects map[string][]byte      // guarded by mu
	locks   map[string]*sync.Mutex // guarded by mu
}

var _ Store = (*MemStore)(nil)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{
		objects: make(map[string][]byte),
		locks:   make(map[string]*sync.Mutex),
	}
}

// Get implements Store.
func (s *MemStore) Get(name string) ([]byte, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.objects[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Put implements Store.
func (s *MemStore) Put(name string, data []byte) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects[name] = cp
	return nil
}

// Delete implements Store.
func (s *MemStore) Delete(name string) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	delete(s.objects, name)
	return nil
}

// List implements Store.
func (s *MemStore) List(prefix string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	for name := range s.objects {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Lock implements Store.
func (s *MemStore) Lock(name string) (func(), error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	l, ok := s.locks[name]
	if !ok {
		l = &sync.Mutex{}
		s.locks[name] = l
	}
	s.mu.Unlock()
	l.Lock()
	return l.Unlock, nil
}

// Size returns the number of stored objects.
func (s *MemStore) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}

// TotalBytes returns the sum of all object sizes, used by the revocation
// experiment to report payload volumes.
func (s *MemStore) TotalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, data := range s.objects {
		n += int64(len(data))
	}
	return n
}

// DirStore stores each object as a file in a local directory, the way the
// NEXUS prototype uses "a normal AFS directory as the metadata backing
// store" (§VII). Writes are atomic via rename.
type DirStore struct {
	dir string

	mu    sync.Mutex
	locks map[string]*sync.Mutex // guarded by mu
}

var _ Store = (*DirStore)(nil)

// NewDirStore creates (if necessary) and opens a directory-backed store.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("backend: creating store dir: %w", err)
	}
	return &DirStore{dir: dir, locks: make(map[string]*sync.Mutex)}, nil
}

// Get implements Store.
func (s *DirStore) Get(name string) ([]byte, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	if err != nil {
		return nil, fmt.Errorf("backend: reading %s: %w", name, err)
	}
	return data, nil
}

// Put implements Store.
func (s *DirStore) Put(name string, data []byte) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-"+name+"-*")
	if err != nil {
		return fmt.Errorf("backend: creating temp for %s: %w", name, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("backend: writing %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("backend: closing %s: %w", name, err)
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, name)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("backend: committing %s: %w", name, err)
	}
	return nil
}

// Delete implements Store.
func (s *DirStore) Delete(name string) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	err := os.Remove(filepath.Join(s.dir, name))
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	if err != nil {
		return fmt.Errorf("backend: deleting %s: %w", name, err)
	}
	return nil
}

// List implements Store.
func (s *DirStore) List(prefix string) ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("backend: listing store: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasPrefix(name, ".tmp-") {
			continue
		}
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Lock implements Store. Locks are process-local, which matches the
// advisory flock() coordination of cooperating clients sharing a cache
// manager.
func (s *DirStore) Lock(name string) (func(), error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	l, ok := s.locks[name]
	if !ok {
		l = &sync.Mutex{}
		s.locks[name] = l
	}
	s.mu.Unlock()
	l.Lock()
	return l.Unlock, nil
}
