package sqldb

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"nexus/internal/backend"
	"nexus/internal/fsapi"
	"nexus/internal/plainfs"
)

func newDB(t *testing.T) (*DB, fsapi.FileSystem) {
	t.Helper()
	fs := plainfs.New(backend.NewMemStore())
	db := openAt(t, fs)
	t.Cleanup(func() { _ = db.Close() })
	return db, fs
}

func openAt(t *testing.T, fs fsapi.FileSystem) *DB {
	t.Helper()
	file, err := fs.Open("/test.db", fsapi.O_RDWR|fsapi.O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	journal, err := fs.Open("/test.db-journal", fsapi.O_RDWR|fsapi.O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(file, journal)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

func TestPutGetOverwrite(t *testing.T) {
	db, _ := newDB(t)
	if err := db.Put([]byte("key1"), []byte("value1")); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get([]byte("key1"))
	if err != nil || string(got) != "value1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := db.Put([]byte("key1"), []byte("value2")); err != nil {
		t.Fatal(err)
	}
	got, err = db.Get([]byte("key1"))
	if err != nil || string(got) != "value2" {
		t.Fatalf("Get after overwrite = %q, %v", got, err)
	}
	if _, err := db.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v", err)
	}
}

func TestSizeLimits(t *testing.T) {
	db, _ := newDB(t)
	if err := db.Put(nil, []byte("v")); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("empty key = %v", err)
	}
	if err := db.Put(make([]byte, MaxKeySize+1), nil); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized key = %v", err)
	}
	if err := db.Put([]byte("k"), make([]byte, MaxValueSize+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized value = %v", err)
	}
	// Max sizes are accepted.
	if err := db.Put(make([]byte, MaxKeySize), make([]byte, MaxValueSize)); err != nil {
		t.Fatalf("max-size row rejected: %v", err)
	}
}

func TestBTreeSplitsAndOrderedScan(t *testing.T) {
	db, _ := newDB(t)
	// Enough rows to force multiple leaf and interior splits.
	const n = 5000
	if err := db.Begin(false); err != nil {
		t.Fatal(err)
	}
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		key := fmt.Sprintf("key%06d", i)
		if err := db.Put([]byte(key), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put(%s): %v", key, err)
		}
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}

	count, err := db.Count()
	if err != nil || count != n {
		t.Fatalf("Count = %d, %v", count, err)
	}
	// Scan yields sorted order and correct pairs.
	var prev []byte
	rows := 0
	err = db.Scan(func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan out of order: %q after %q", k, prev)
		}
		prev = bytes.Clone(k)
		rows++
		return true
	})
	if err != nil || rows != n {
		t.Fatalf("Scan rows = %d, %v", rows, err)
	}
	// Random point reads.
	for i := 0; i < 100; i++ {
		j := perm[i]
		got, err := db.Get([]byte(fmt.Sprintf("key%06d", j)))
		if err != nil || string(got) != fmt.Sprintf("v%d", j) {
			t.Fatalf("Get = %q, %v", got, err)
		}
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	fs := plainfs.New(backend.NewMemStore())
	db := openAt(t, fs)
	if err := db.Begin(true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openAt(t, fs)
	defer db2.Close()
	count, err := db2.Count()
	if err != nil || count != 500 {
		t.Fatalf("Count after reopen = %d, %v", count, err)
	}
	got, err := db2.Get([]byte("k0250"))
	if err != nil || string(got) != "v" {
		t.Fatalf("Get after reopen = %q, %v", got, err)
	}
}

func TestRollbackRestoresState(t *testing.T) {
	db, _ := newDB(t)
	if err := db.Put([]byte("stable"), []byte("before")); err != nil {
		t.Fatal(err)
	}
	if err := db.Begin(false); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("stable"), []byte("changed")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("new"), []byte("row")); err != nil {
		t.Fatal(err)
	}
	if err := db.Rollback(); err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	got, err := db.Get([]byte("stable"))
	if err != nil || string(got) != "before" {
		t.Fatalf("Get after rollback = %q, %v", got, err)
	}
	if _, err := db.Get([]byte("new")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rolled-back row visible: %v", err)
	}
	// A new transaction works after rollback.
	if err := db.Put([]byte("after"), []byte("ok")); err != nil {
		t.Fatalf("Put after rollback: %v", err)
	}
}

func TestTransactionStateErrors(t *testing.T) {
	db, _ := newDB(t)
	if err := db.Commit(); !errors.Is(err, ErrNoTxn) {
		t.Fatalf("Commit without txn = %v", err)
	}
	if err := db.Rollback(); !errors.Is(err, ErrNoTxn) {
		t.Fatalf("Rollback without txn = %v", err)
	}
	if err := db.Begin(false); err != nil {
		t.Fatal(err)
	}
	if err := db.Begin(false); err == nil {
		t.Fatal("nested Begin accepted")
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchCommitWritesOnce(t *testing.T) {
	// Batch mode (fillseqbatch) must not write the journal per row.
	fs := plainfs.New(backend.NewMemStore())
	db := openAt(t, fs)
	defer db.Close()

	if err := db.Begin(true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), bytes.Repeat([]byte{1}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	count, err := db.Count()
	if err != nil || count != 1000 {
		t.Fatalf("Count = %d, %v", count, err)
	}
}

func TestRandomizedAgainstReference(t *testing.T) {
	db, _ := newDB(t)
	ref := make(map[string]string)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("k%03d", rng.Intn(500))
		val := fmt.Sprintf("v%d", i)
		if err := db.Put([]byte(key), []byte(val)); err != nil {
			t.Fatal(err)
		}
		ref[key] = val
	}
	for key, want := range ref {
		got, err := db.Get([]byte(key))
		if err != nil || string(got) != want {
			t.Fatalf("Get(%s) = %q, %v; want %q", key, got, err, want)
		}
	}
	count, err := db.Count()
	if err != nil || count != len(ref) {
		t.Fatalf("Count = %d, want %d", count, len(ref))
	}
}

func TestHotJournalRecovery(t *testing.T) {
	fs := plainfs.New(backend.NewMemStore())
	db := openAt(t, fs)

	// Committed base state.
	if err := db.Begin(true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := db.Put([]byte(fmt.Sprintf("base%03d", i)), []byte("v1")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}

	// A transaction that "crashes" mid-commit: the journal holds the
	// pre-images and SOME dirty pages reach the database file, but the
	// commit never completes (journal never invalidated).
	if err := db.Begin(true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := db.Put([]byte(fmt.Sprintf("base%03d", i)), []byte("TORN")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.writeJournal(); err != nil {
		t.Fatal(err)
	}
	if err := db.journal.Sync(); err != nil {
		t.Fatal(err)
	}
	// Partially flush: header + all dirty pages (the worst case).
	if err := db.writeHeader(); err != nil {
		t.Fatal(err)
	}
	if err := db.flushPages(true); err != nil {
		t.Fatal(err)
	}
	// Crash here: no journal truncation, no Close.

	// Reopen: the hot journal must roll the torn transaction back.
	db2 := openAt(t, fs)
	defer db2.Close()
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("base%03d", i)
		got, err := db2.Get([]byte(key))
		if err != nil {
			t.Fatalf("Get(%s) after recovery: %v", key, err)
		}
		if string(got) != "v1" {
			t.Fatalf("Get(%s) = %q, want the pre-crash value v1", key, got)
		}
	}
	count, err := db2.Count()
	if err != nil || count != 50 {
		t.Fatalf("Count after recovery = %d, %v", count, err)
	}
	// The database remains writable after recovery.
	if err := db2.Put([]byte("after"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestClosedDB(t *testing.T) {
	db, _ := newDB(t)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close = %v", err)
	}
	if _, err := db.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close = %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}
