// Package sqldb is an embedded, single-file, page-oriented B+tree store
// in the style of SQLite, used by the Table II database benchmarks.
//
// The paper runs SQLite's db_bench variants over NEXUS (§VII-B). What
// the filesystem experiences from SQLite is: one database file updated
// in 4 KiB pages, a rollback journal written and synced before the
// database file on every transaction commit, batch modes that amortize
// the journal over many statements, and WAL-less sequential scans. This
// package reproduces that I/O shape:
//
//   - data lives in a single paged file managed by a page cache;
//   - every transaction commit writes a rollback journal (the original
//     images of dirtied pages), then the dirty pages; Sync mode flushes
//     journal and database through the filesystem — two encrypted
//     re-uploads per commit under NEXUS, hence the paper's ×2+ on
//     fillseqsync/fillrandsync;
//   - rows are (key, value) pairs in a B+tree keyed by bytes.
package sqldb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// PageSize is the fixed page size (SQLite's default).
const PageSize = 4096

// Limits derived from the page layout.
const (
	// MaxKeySize and MaxValueSize keep every row inline in one page
	// (db_bench uses 16-byte keys and 100-byte values).
	MaxKeySize   = 256
	MaxValueSize = 1024
)

// Errors.
var (
	// ErrNotFound reports a missing key.
	ErrNotFound = errors.New("sqldb: key not found")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("sqldb: database closed")
	// ErrCorrupt reports an unreadable page structure.
	ErrCorrupt = errors.New("sqldb: corrupt database")
	// ErrTooLarge reports an oversized key or value.
	ErrTooLarge = errors.New("sqldb: key or value too large")
	// ErrNoTxn reports commit/rollback without a transaction.
	ErrNoTxn = errors.New("sqldb: no transaction in progress")
)

// node kinds.
const (
	leafPage     = 1
	interiorPage = 2
)

// page is an in-memory page image.
type page struct {
	id    uint32
	kind  byte
	dirty bool

	// Leaf pages: sorted rows, and the next-leaf link.
	keys   [][]byte
	values [][]byte
	next   uint32

	// Interior pages: len(children) == len(keys)+1; keys[i] is the
	// smallest key reachable via children[i+1].
	children []uint32
}

// DB is an open database.
type DB struct {
	file    DatabaseFile
	journal JournalFile

	pages    map[uint32]*page // page cache (whole-DB for simplicity)
	nextPage uint32
	root     uint32

	inTxn    bool
	txnDirty map[uint32][]byte // original images for the rollback journal
	txnSync  bool
	closed   bool
}

// DatabaseFile and JournalFile abstract the two files SQLite maintains.
// fsapi.File satisfies both; the indirection keeps this package free of
// a direct fsapi dependency for testing.
type DatabaseFile interface {
	ReadAt(p []byte, off int64) (int, error)
	Seek(offset int64, whence int) (int64, error)
	Write(p []byte) (int, error)
	Truncate(size int64) error
	Size() int64
	Sync() error
	Close() error
}

// JournalFile is the rollback journal.
type JournalFile = DatabaseFile

// Open initializes or loads a database over the given files. A non-empty
// ("hot") rollback journal left by a crashed commit is replayed first,
// restoring the pre-transaction page images — SQLite's crash-recovery
// behaviour.
func Open(file DatabaseFile, journal JournalFile) (*DB, error) {
	db := &DB{
		file:    file,
		journal: journal,
		pages:   make(map[uint32]*page),
	}
	if journal.Size() > 0 && file.Size() > 0 {
		if err := db.rollbackHotJournal(); err != nil {
			return nil, err
		}
	}
	if file.Size() == 0 {
		// Fresh database: root is an empty leaf at page 1 (page 0 is the
		// header).
		root := &page{id: 1, kind: leafPage, dirty: true}
		db.pages[1] = root
		db.root = 1
		db.nextPage = 2
		if err := db.writeHeader(); err != nil {
			return nil, err
		}
		if err := db.flushPages(false); err != nil {
			return nil, err
		}
		return db, nil
	}
	if err := db.readHeader(); err != nil {
		return nil, err
	}
	return db, nil
}

// rollbackHotJournal restores the pre-images recorded in the journal
// (format: repeated pageID(4) ‖ page image) and invalidates it.
func (db *DB) rollbackHotJournal() error {
	size := db.journal.Size()
	buf := make([]byte, size)
	if _, err := db.journal.ReadAt(buf, 0); err != nil {
		return fmt.Errorf("%w: reading hot journal: %v", ErrCorrupt, err)
	}
	const rec = 4 + PageSize
	for off := int64(0); off+rec <= size; off += rec {
		id := binary.LittleEndian.Uint32(buf[off : off+4])
		img := buf[off+4 : off+rec]
		if err := db.writeRaw(id, img); err != nil {
			return fmt.Errorf("replaying hot journal page %d: %w", id, err)
		}
	}
	if err := db.file.Sync(); err != nil {
		return err
	}
	if err := db.journal.Truncate(0); err != nil {
		return err
	}
	return db.journal.Sync()
}

// header layout (page 0): magic(4) root(4) nextPage(4).
const dbMagic = 0x53514c31 // "SQL1"

func (db *DB) writeHeader() error {
	var buf [PageSize]byte
	binary.LittleEndian.PutUint32(buf[0:4], dbMagic)
	binary.LittleEndian.PutUint32(buf[4:8], db.root)
	binary.LittleEndian.PutUint32(buf[8:12], db.nextPage)
	return db.writeRaw(0, buf[:])
}

func (db *DB) readHeader() error {
	var buf [PageSize]byte
	if _, err := db.file.ReadAt(buf[:], 0); err != nil {
		return fmt.Errorf("%w: reading header: %v", ErrCorrupt, err)
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != dbMagic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	db.root = binary.LittleEndian.Uint32(buf[4:8])
	db.nextPage = binary.LittleEndian.Uint32(buf[8:12])
	if db.root == 0 || db.nextPage <= db.root {
		return fmt.Errorf("%w: bad header pointers", ErrCorrupt)
	}
	return nil
}

func (db *DB) writeRaw(id uint32, data []byte) error {
	if _, err := db.file.Seek(int64(id)*PageSize, 0); err != nil {
		return err
	}
	if _, err := db.file.Write(data); err != nil {
		return err
	}
	return nil
}

// encodePage serializes a page into a fixed-size buffer.
func encodePage(p *page) ([]byte, error) {
	buf := make([]byte, 0, PageSize)
	buf = append(buf, p.kind)
	switch p.kind {
	case leafPage:
		buf = binary.LittleEndian.AppendUint32(buf, p.next)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.keys)))
		for i := range p.keys {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.keys[i])))
			buf = append(buf, p.keys[i]...)
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.values[i])))
			buf = append(buf, p.values[i]...)
		}
	case interiorPage:
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.keys)))
		for i := range p.keys {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.keys[i])))
			buf = append(buf, p.keys[i]...)
		}
		for _, c := range p.children {
			buf = binary.LittleEndian.AppendUint32(buf, c)
		}
	default:
		return nil, fmt.Errorf("%w: page kind %d", ErrCorrupt, p.kind)
	}
	if len(buf) > PageSize {
		return nil, fmt.Errorf("%w: page %d overflows (%d bytes)", ErrCorrupt, p.id, len(buf))
	}
	out := make([]byte, PageSize)
	copy(out, buf)
	return out, nil
}

func decodePage(id uint32, data []byte) (*page, error) {
	if len(data) != PageSize {
		return nil, fmt.Errorf("%w: short page %d", ErrCorrupt, id)
	}
	p := &page{id: id, kind: data[0]}
	off := 1
	readU16 := func() int {
		v := int(binary.LittleEndian.Uint16(data[off : off+2]))
		off += 2
		return v
	}
	switch p.kind {
	case leafPage:
		p.next = binary.LittleEndian.Uint32(data[off : off+4])
		off += 4
		n := readU16()
		for i := 0; i < n; i++ {
			kl := readU16()
			if off+kl > len(data) {
				return nil, fmt.Errorf("%w: page %d key overflow", ErrCorrupt, id)
			}
			p.keys = append(p.keys, bytes.Clone(data[off:off+kl]))
			off += kl
			vl := readU16()
			if off+vl > len(data) {
				return nil, fmt.Errorf("%w: page %d value overflow", ErrCorrupt, id)
			}
			p.values = append(p.values, bytes.Clone(data[off:off+vl]))
			off += vl
		}
	case interiorPage:
		n := readU16()
		for i := 0; i < n; i++ {
			kl := readU16()
			if off+kl > len(data) {
				return nil, fmt.Errorf("%w: page %d key overflow", ErrCorrupt, id)
			}
			p.keys = append(p.keys, bytes.Clone(data[off:off+kl]))
			off += kl
		}
		for i := 0; i < n+1; i++ {
			p.children = append(p.children, binary.LittleEndian.Uint32(data[off:off+4]))
			off += 4
		}
	default:
		return nil, fmt.Errorf("%w: page %d kind %d", ErrCorrupt, id, p.kind)
	}
	return p, nil
}

// getPage returns the page from cache or disk.
func (db *DB) getPage(id uint32) (*page, error) {
	if p, ok := db.pages[id]; ok {
		return p, nil
	}
	buf := make([]byte, PageSize)
	if _, err := db.file.ReadAt(buf, int64(id)*PageSize); err != nil {
		return nil, fmt.Errorf("%w: reading page %d: %v", ErrCorrupt, id, err)
	}
	p, err := decodePage(id, buf)
	if err != nil {
		return nil, err
	}
	db.pages[id] = p
	return p, nil
}

// touch records the page's pre-image for the journal and marks it dirty.
func (db *DB) touch(p *page) error {
	if db.inTxn {
		if _, ok := db.txnDirty[p.id]; !ok {
			img, err := encodePageOrZero(p, db)
			if err != nil {
				return err
			}
			db.txnDirty[p.id] = img
		}
	}
	p.dirty = true
	return nil
}

// encodePageOrZero returns the page's current on-disk image (for the
// journal), or zeroes for fresh pages.
func encodePageOrZero(p *page, db *DB) ([]byte, error) {
	buf := make([]byte, PageSize)
	if int64(p.id+1)*PageSize <= db.file.Size() {
		if _, err := db.file.ReadAt(buf, int64(p.id)*PageSize); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// allocPage creates a fresh page of the given kind.
func (db *DB) allocPage(kind byte) *page {
	p := &page{id: db.nextPage, kind: kind, dirty: true}
	db.nextPage++
	db.pages[p.id] = p
	return p
}

// --- Transactions ---

// Begin starts a transaction. sync selects durable commits (journal and
// database flushed through the filesystem).
func (db *DB) Begin(sync bool) error {
	if db.closed {
		return ErrClosed
	}
	if db.inTxn {
		return fmt.Errorf("sqldb: nested transactions are not supported")
	}
	db.inTxn = true
	db.txnSync = sync
	db.txnDirty = make(map[uint32][]byte)
	return nil
}

// Commit writes the rollback journal, then the dirty pages, then (in
// sync mode) flushes both files — SQLite's rollback-journal commit
// sequence.
func (db *DB) Commit() error {
	if db.closed {
		return ErrClosed
	}
	if !db.inTxn {
		return ErrNoTxn
	}
	db.inTxn = false

	// 1. Journal the pre-images.
	if len(db.txnDirty) > 0 {
		if err := db.writeJournal(); err != nil {
			return err
		}
		if db.txnSync {
			if err := db.journal.Sync(); err != nil {
				return err
			}
		}
	}
	// 2. Write dirty pages + header.
	if err := db.writeHeader(); err != nil {
		return err
	}
	if err := db.flushPages(db.txnSync); err != nil {
		return err
	}
	// 3. Invalidate the journal (truncate).
	if err := db.journal.Truncate(0); err != nil {
		return err
	}
	if db.txnSync {
		if err := db.journal.Sync(); err != nil {
			return err
		}
	}
	db.txnDirty = nil
	return nil
}

// Rollback restores the journaled pre-images, discarding the
// transaction's changes.
func (db *DB) Rollback() error {
	if !db.inTxn {
		return ErrNoTxn
	}
	db.inTxn = false
	for id, img := range db.txnDirty {
		restored, err := decodePage(id, img)
		if err != nil {
			// A zero pre-image means the page did not exist: drop it.
			delete(db.pages, id)
			continue
		}
		db.pages[id] = restored
	}
	// Reload the header from disk to restore root/nextPage.
	if err := db.readHeader(); err != nil {
		return err
	}
	db.txnDirty = nil
	return nil
}

func (db *DB) writeJournal() error {
	ids := make([]uint32, 0, len(db.txnDirty))
	for id := range db.txnDirty {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf := make([]byte, 0, (len(ids)+1)*(PageSize+4))
	// The header's pre-image is journaled too: a torn commit may have
	// updated the root pointer before crashing.
	header := make([]byte, PageSize)
	if db.file.Size() >= PageSize {
		if _, err := db.file.ReadAt(header, 0); err != nil {
			return err
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	buf = append(buf, header...)
	for _, id := range ids {
		buf = binary.LittleEndian.AppendUint32(buf, id)
		buf = append(buf, db.txnDirty[id]...)
	}
	if err := db.journal.Truncate(0); err != nil {
		return err
	}
	if _, err := db.journal.Seek(0, 0); err != nil {
		return err
	}
	if _, err := db.journal.Write(buf); err != nil {
		return err
	}
	return nil
}

func (db *DB) flushPages(sync bool) error {
	ids := make([]uint32, 0, len(db.pages))
	for id, p := range db.pages {
		if p.dirty {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := db.pages[id]
		img, err := encodePage(p)
		if err != nil {
			return err
		}
		if err := db.writeRaw(id, img); err != nil {
			return err
		}
		p.dirty = false
	}
	if sync {
		return db.file.Sync()
	}
	return nil
}

// --- B+tree operations ---

// maxInteriorKeys bounds interior occupancy conservatively so encoded
// pages always fit even with maximum-size keys.
const maxInteriorKeys = (PageSize - 16) / (2 + MaxKeySize + 4)

// Put inserts or replaces a row inside the current transaction (or as
// an autocommit transaction when none is open).
func (db *DB) Put(key, value []byte) error {
	if db.closed {
		return ErrClosed
	}
	if len(key) == 0 || len(key) > MaxKeySize || len(value) > MaxValueSize {
		return fmt.Errorf("%w: key %d bytes, value %d bytes", ErrTooLarge, len(key), len(value))
	}
	auto := !db.inTxn
	if auto {
		if err := db.Begin(false); err != nil {
			return err
		}
	}
	if err := db.insert(key, value); err != nil {
		return err
	}
	if auto {
		return db.Commit()
	}
	return nil
}

func (db *DB) insert(key, value []byte) error {
	root, err := db.getPage(db.root)
	if err != nil {
		return err
	}
	split, err := db.insertInto(root, key, value)
	if err != nil {
		return err
	}
	if split != nil {
		// Root split: new interior root.
		newRoot := db.allocPage(interiorPage)
		newRoot.keys = [][]byte{split.key}
		newRoot.children = []uint32{db.root, split.right}
		if err := db.touch(newRoot); err != nil {
			return err
		}
		db.root = newRoot.id
	}
	return nil
}

// splitResult propagates a split up the tree.
type splitResult struct {
	key   []byte // smallest key in the right sibling
	right uint32
}

func (db *DB) insertInto(p *page, key, value []byte) (*splitResult, error) {
	switch p.kind {
	case leafPage:
		if err := db.touch(p); err != nil {
			return nil, err
		}
		i := sort.Search(len(p.keys), func(i int) bool { return bytes.Compare(p.keys[i], key) >= 0 })
		if i < len(p.keys) && bytes.Equal(p.keys[i], key) {
			p.values[i] = bytes.Clone(value)
			return nil, nil
		}
		p.keys = append(p.keys, nil)
		copy(p.keys[i+1:], p.keys[i:])
		p.keys[i] = bytes.Clone(key)
		p.values = append(p.values, nil)
		copy(p.values[i+1:], p.values[i:])
		p.values[i] = bytes.Clone(value)

		if db.leafOverflows(p) {
			return db.splitLeaf(p)
		}
		return nil, nil

	case interiorPage:
		i := sort.Search(len(p.keys), func(i int) bool { return bytes.Compare(p.keys[i], key) > 0 })
		child, err := db.getPage(p.children[i])
		if err != nil {
			return nil, err
		}
		split, err := db.insertInto(child, key, value)
		if err != nil || split == nil {
			return nil, err
		}
		if err := db.touch(p); err != nil {
			return nil, err
		}
		p.keys = append(p.keys, nil)
		copy(p.keys[i+1:], p.keys[i:])
		p.keys[i] = split.key
		p.children = append(p.children, 0)
		copy(p.children[i+2:], p.children[i+1:])
		p.children[i+1] = split.right
		if len(p.keys) > maxInteriorKeys || db.interiorOverflows(p) {
			return db.splitInterior(p)
		}
		return nil, nil

	default:
		return nil, fmt.Errorf("%w: page %d kind %d", ErrCorrupt, p.id, p.kind)
	}
}

func (db *DB) leafOverflows(p *page) bool {
	size := 1 + 4 + 2
	for i := range p.keys {
		size += 4 + len(p.keys[i]) + len(p.values[i])
	}
	return size > PageSize
}

func (db *DB) interiorOverflows(p *page) bool {
	size := 1 + 2
	for i := range p.keys {
		size += 2 + len(p.keys[i])
	}
	size += 4 * len(p.children)
	return size > PageSize
}

func (db *DB) splitLeaf(p *page) (*splitResult, error) {
	mid := len(p.keys) / 2
	right := db.allocPage(leafPage)
	right.keys = append(right.keys, p.keys[mid:]...)
	right.values = append(right.values, p.values[mid:]...)
	right.next = p.next
	p.keys = p.keys[:mid]
	p.values = p.values[:mid]
	p.next = right.id
	if err := db.touch(right); err != nil {
		return nil, err
	}
	return &splitResult{key: bytes.Clone(right.keys[0]), right: right.id}, nil
}

func (db *DB) splitInterior(p *page) (*splitResult, error) {
	mid := len(p.keys) / 2
	upKey := p.keys[mid]
	right := db.allocPage(interiorPage)
	right.keys = append(right.keys, p.keys[mid+1:]...)
	right.children = append(right.children, p.children[mid+1:]...)
	p.keys = p.keys[:mid]
	p.children = p.children[:mid+1]
	if err := db.touch(right); err != nil {
		return nil, err
	}
	return &splitResult{key: bytes.Clone(upKey), right: right.id}, nil
}

// Get returns the value for key.
func (db *DB) Get(key []byte) ([]byte, error) {
	if db.closed {
		return nil, ErrClosed
	}
	leaf, err := db.findLeaf(key)
	if err != nil {
		return nil, err
	}
	i := sort.Search(len(leaf.keys), func(i int) bool { return bytes.Compare(leaf.keys[i], key) >= 0 })
	if i < len(leaf.keys) && bytes.Equal(leaf.keys[i], key) {
		return bytes.Clone(leaf.values[i]), nil
	}
	return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
}

func (db *DB) findLeaf(key []byte) (*page, error) {
	p, err := db.getPage(db.root)
	if err != nil {
		return nil, err
	}
	for p.kind == interiorPage {
		i := sort.Search(len(p.keys), func(i int) bool { return bytes.Compare(p.keys[i], key) > 0 })
		p, err = db.getPage(p.children[i])
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Scan calls fn for every row in key order until fn returns false.
func (db *DB) Scan(fn func(key, value []byte) bool) error {
	if db.closed {
		return ErrClosed
	}
	p, err := db.getPage(db.root)
	if err != nil {
		return err
	}
	for p.kind == interiorPage {
		p, err = db.getPage(p.children[0])
		if err != nil {
			return err
		}
	}
	for {
		for i := range p.keys {
			if !fn(p.keys[i], p.values[i]) {
				return nil
			}
		}
		if p.next == 0 {
			return nil
		}
		p, err = db.getPage(p.next)
		if err != nil {
			return err
		}
	}
}

// Count returns the number of rows.
func (db *DB) Count() (int, error) {
	n := 0
	err := db.Scan(func(_, _ []byte) bool { n++; return true })
	return n, err
}

// Close flushes outstanding state and closes both files.
func (db *DB) Close() error {
	if db.closed {
		return nil
	}
	if db.inTxn {
		if err := db.Commit(); err != nil {
			return err
		}
	}
	if err := db.writeHeader(); err != nil {
		return err
	}
	if err := db.flushPages(true); err != nil {
		return err
	}
	db.closed = true
	if err := db.journal.Close(); err != nil {
		return err
	}
	return db.file.Close()
}
