package cryptofs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"nexus/internal/backend"
	"nexus/internal/groupkey"
)

// groupSetup builds a group-mode filesystem with n users named u0..u(n-1)
// plus the owner.
func groupSetup(t *testing.T, n int) (*FS, *User, []*User, *backend.MemStore) {
	t.Helper()
	owner, err := NewUser("owen")
	if err != nil {
		t.Fatal(err)
	}
	store := backend.NewMemStore()
	fs := New(store, owner)
	users := make([]*User, n)
	for i := range users {
		u, err := NewUser(fmt.Sprintf("u%d", i))
		if err != nil {
			t.Fatal(err)
		}
		users[i] = u
		fs.AddUser(u)
	}
	if err := fs.SetGroupKeys(true); err != nil {
		t.Fatal(err)
	}
	return fs, owner, users, store
}

func TestGroupModeWriteReadRoundTrip(t *testing.T) {
	fs, owner, users, store := groupSetup(t, 4)
	data := []byte("group-wrapped document")
	readers := []string{"u0", "u1"}
	if err := fs.WriteFile("/doc", data, readers); err != nil {
		t.Fatal(err)
	}
	for _, u := range []*User{owner, users[0], users[1]} {
		got, err := fs.ReadFile("/doc", u)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("%s read = %q, %v", u.Name, got, err)
		}
	}
	// Members outside the reader list are still denied.
	if _, err := fs.ReadFile("/doc", users[3]); !errors.Is(err, ErrNoAccess) {
		t.Fatalf("u3 read = %v, want ErrNoAccess", err)
	}
	// The pseudo-entry never leaks through Readers.
	names, err := fs.Readers("/doc")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == groupReader {
			t.Fatal("Readers leaked the @group pseudo-entry")
		}
	}
	// Nothing on the store holds plaintext.
	objs, err := store.List("")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range objs {
		blob, err := store.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(blob, data) {
			t.Fatalf("object %s contains plaintext", n)
		}
	}
}

func TestGroupModeSingleWrapPerFile(t *testing.T) {
	fs, _, _, _ := groupSetup(t, 16)
	fs.ResetStats()
	readers := make([]string, 16)
	for i := range readers {
		readers[i] = fmt.Sprintf("u%d", i)
	}
	for i := 0; i < 5; i++ {
		if err := fs.WriteFile(fmt.Sprintf("/f%d", i), []byte("x"), readers); err != nil {
			t.Fatal(err)
		}
	}
	// 5 files × 1 wrap, regardless of the 17-strong reader set.
	if got := fs.Stats().KeyWraps; got != 5 {
		t.Fatalf("KeyWraps = %d, want 5 (one per file)", got)
	}
}

func TestGroupModeRevokeBeatsFlatWraps(t *testing.T) {
	const nUsers, nFiles = 24, 12
	everyone := make([]string, nUsers)
	for i := range everyone {
		everyone[i] = fmt.Sprintf("u%d", i)
	}
	paths := make([]string, nFiles)
	for i := range paths {
		paths[i] = fmt.Sprintf("/f%d", i)
	}

	// Group-mode filesystem.
	gfs, _, _, _ := groupSetup(t, nUsers)
	for _, p := range paths {
		if err := gfs.WriteFile(p, []byte("shared "+p), everyone); err != nil {
			t.Fatal(err)
		}
	}
	gfs.ResetStats()
	gst, err := gfs.Revoke("u7", paths)
	if err != nil {
		t.Fatal(err)
	}

	// Flat baseline: same membership, same files, same revocation.
	fowner, err := NewUser("owen")
	if err != nil {
		t.Fatal(err)
	}
	ffs := New(backend.NewMemStore(), fowner)
	for i := 0; i < nUsers; i++ {
		u, err := NewUser(fmt.Sprintf("u%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ffs.AddUser(u)
	}
	for _, p := range paths {
		if err := ffs.WriteFile(p, []byte("shared "+p), everyone); err != nil {
			t.Fatal(err)
		}
	}
	ffs.ResetStats()
	fst, err := ffs.Revoke("u7", paths)
	if err != nil {
		t.Fatal(err)
	}

	// Flat pays wrap-per-remaining-reader on every file; group pays one
	// path rotation plus one wrap per file.
	rotationBound := int64(groupkey.DefaultLeafCap + groupkey.DefaultFanout*4)
	if gst.KeyWraps > int64(nFiles)+rotationBound {
		t.Fatalf("group KeyWraps = %d, want ≤ files(%d) + rotation(%d)", gst.KeyWraps, nFiles, rotationBound)
	}
	if fst.KeyWraps != int64(nFiles*nUsers) { // owner + 24 users - revoked = 24 per file
		t.Fatalf("flat KeyWraps = %d, want %d", fst.KeyWraps, nFiles*nUsers)
	}
	if gst.KeyWraps >= fst.KeyWraps {
		t.Fatalf("group wraps (%d) not below flat wraps (%d)", gst.KeyWraps, fst.KeyWraps)
	}
	// Both schemes still pay full content re-encryption.
	if gst.FilesTouched != int64(nFiles) || fst.FilesTouched != int64(nFiles) {
		t.Fatalf("FilesTouched group=%d flat=%d, want %d", gst.FilesTouched, fst.FilesTouched, nFiles)
	}
}

func TestGroupModeRevokeDeniesEvictedUser(t *testing.T) {
	fs, owner, users, _ := groupSetup(t, 4)
	everyone := []string{"u0", "u1", "u2", "u3"}
	if err := fs.WriteFile("/a", []byte("alpha"), everyone); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/b", []byte("beta"), everyone); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Revoke("u2", []string{"/a", "/b"}); err != nil {
		t.Fatal(err)
	}
	// Evicted from the tree: every read fails, both swept and unswept.
	for _, p := range []string{"/a", "/b"} {
		if _, err := fs.ReadFile(p, users[2]); !errors.Is(err, ErrNoAccess) {
			t.Fatalf("evicted read of %s = %v, want ErrNoAccess", p, err)
		}
	}
	// Survivors read the re-encrypted content.
	for _, u := range []*User{owner, users[0], users[3]} {
		got, err := fs.ReadFile("/a", u)
		if err != nil || string(got) != "alpha" {
			t.Fatalf("%s post-revoke read = %q, %v", u.Name, got, err)
		}
	}
}

func TestGroupModeOldEpochLazyRead(t *testing.T) {
	fs, _, users, _ := groupSetup(t, 4)
	everyone := []string{"u0", "u1", "u2", "u3"}
	if err := fs.WriteFile("/old", []byte("written at epoch k"), everyone); err != nil {
		t.Fatal(err)
	}
	// Revoke u3 but only sweep a different file: /old keeps its
	// old-epoch wrap and must stay readable by surviving members.
	if err := fs.WriteFile("/swept", []byte("x"), everyone); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Revoke("u3", []string{"/swept"}); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/old", users[0])
	if err != nil || string(got) != "written at epoch k" {
		t.Fatalf("old-epoch read = %q, %v", got, err)
	}
	// The evicted member is refused even on the unswept old-epoch file.
	if _, err := fs.ReadFile("/old", users[3]); !errors.Is(err, ErrNoAccess) {
		t.Fatalf("evicted old-epoch read = %v, want ErrNoAccess", err)
	}
}

func TestGroupModeLateJoinerReadsNewWrites(t *testing.T) {
	fs, _, _, _ := groupSetup(t, 2)
	late, err := NewUser("late")
	if err != nil {
		t.Fatal(err)
	}
	fs.AddUser(late) // enrolls into the tree, rotates the root
	if err := fs.WriteFile("/post", []byte("hello late"), []string{"late"}); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/post", late)
	if err != nil || string(got) != "hello late" {
		t.Fatalf("late read = %q, %v", got, err)
	}
}

func TestGroupModeSweepConvertsFlatFiles(t *testing.T) {
	// A file written before the mode flips is caught by the sweep and
	// comes out group-wrapped: later revocations of it cost one wrap.
	owner, err := NewUser("owen")
	if err != nil {
		t.Fatal(err)
	}
	fs := New(backend.NewMemStore(), owner)
	var users []*User
	for i := 0; i < 3; i++ {
		u, err := NewUser(fmt.Sprintf("u%d", i))
		if err != nil {
			t.Fatal(err)
		}
		users = append(users, u)
		fs.AddUser(u)
	}
	if err := fs.WriteFile("/legacy", []byte("pairwise era"), []string{"u0", "u1", "u2"}); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetGroupKeys(true); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Revoke("u2", []string{"/legacy"}); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/legacy", users[0])
	if err != nil || string(got) != "pairwise era" {
		t.Fatalf("converted read = %q, %v", got, err)
	}
	if _, err := fs.ReadFile("/legacy", users[2]); !errors.Is(err, ErrNoAccess) {
		t.Fatalf("revoked read = %v, want ErrNoAccess", err)
	}
	fs.ResetStats()
	if _, err := fs.Revoke("u1", []string{"/legacy"}); err != nil {
		t.Fatal(err)
	}
	// Post-conversion revocation: rotation + exactly one file wrap.
	rotationBound := int64(groupkey.DefaultLeafCap + groupkey.DefaultFanout*4)
	if st := fs.Stats(); st.KeyWraps < 1 || st.KeyWraps > 1+rotationBound {
		t.Fatalf("post-conversion KeyWraps = %d, want 1..%d", st.KeyWraps, 1+rotationBound)
	}
}

func TestGroupModeWritebackInterplay(t *testing.T) {
	fs, _, users, _ := groupSetup(t, 3)
	fs.SetWriteback(true)
	everyone := []string{"u0", "u1", "u2"}
	if err := fs.WriteFile("/buffered", []byte("pending"), everyone); err != nil {
		t.Fatal(err)
	}
	// Revoke drains the buffer first, then sweeps it like any other file.
	if _, err := fs.Revoke("u1", []string{"/buffered"}); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/buffered", users[1]); !errors.Is(err, ErrNoAccess) {
		t.Fatalf("revoked read = %v, want ErrNoAccess", err)
	}
	got, err := fs.ReadFile("/buffered", users[0])
	if err != nil || string(got) != "pending" {
		t.Fatalf("survivor read = %q, %v", got, err)
	}
}
