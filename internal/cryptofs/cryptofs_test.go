package cryptofs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"nexus/internal/backend"
)

func setup(t *testing.T) (*FS, *User, *User, *backend.MemStore) {
	t.Helper()
	owner, err := NewUser("owen")
	if err != nil {
		t.Fatal(err)
	}
	alice, err := NewUser("alice")
	if err != nil {
		t.Fatal(err)
	}
	store := backend.NewMemStore()
	fs := New(store, owner)
	fs.AddUser(alice)
	return fs, owner, alice, store
}

func TestWriteReadSharing(t *testing.T) {
	fs, owner, alice, store := setup(t)
	data := []byte("shared secret document")
	if err := fs.WriteFile("/doc", data, []string{"alice"}); err != nil {
		t.Fatal(err)
	}
	for _, u := range []*User{owner, alice} {
		got, err := fs.ReadFile("/doc", u)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("%s read = %q, %v", u.Name, got, err)
		}
	}
	// A user without a wrapped key is denied.
	bob, err := NewUser("bob")
	if err != nil {
		t.Fatal(err)
	}
	fs.AddUser(bob)
	if _, err := fs.ReadFile("/doc", bob); !errors.Is(err, ErrNoAccess) {
		t.Fatalf("bob read = %v, want ErrNoAccess", err)
	}
	// Ciphertext on the store.
	names, err := store.List("")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		blob, err := store.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(blob, data) {
			t.Fatalf("object %s contains plaintext", n)
		}
	}
}

func TestRevocationCostsScaleWithData(t *testing.T) {
	fs, _, alice, _ := setup(t)
	_ = alice

	// Two populations mirroring §VII-E: many small files vs few large.
	const smallCount, smallSize = 64, 1 << 10
	const largeCount, largeSize = 4, 256 << 10
	var smallPaths, largePaths []string
	for i := 0; i < smallCount; i++ {
		p := fmt.Sprintf("/small/%d", i)
		smallPaths = append(smallPaths, p)
		if err := fs.WriteFile(p, make([]byte, smallSize), []string{"alice"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < largeCount; i++ {
		p := fmt.Sprintf("/large/%d", i)
		largePaths = append(largePaths, p)
		if err := fs.WriteFile(p, make([]byte, largeSize), []string{"alice"}); err != nil {
			t.Fatal(err)
		}
	}

	smallStats, err := fs.Revoke("alice", smallPaths)
	if err != nil {
		t.Fatal(err)
	}
	if smallStats.FilesTouched != smallCount {
		t.Fatalf("small FilesTouched = %d", smallStats.FilesTouched)
	}
	if smallStats.BytesReencrypted != smallCount*smallSize {
		t.Fatalf("small BytesReencrypted = %d", smallStats.BytesReencrypted)
	}

	// Re-grant is required for a second revocation to do work.
	largeStats, err := fs.Revoke("alice", largePaths)
	if err != nil {
		t.Fatal(err)
	}
	if largeStats.BytesReencrypted != largeCount*largeSize {
		t.Fatalf("large BytesReencrypted = %d", largeStats.BytesReencrypted)
	}
	// The defining property of the pure-crypto baseline: revocation cost
	// is proportional to data volume.
	if largeStats.BytesReencrypted <= smallStats.BytesReencrypted {
		t.Fatal("large-file revocation not more expensive than small-file")
	}
}

func TestRevokedUserLosesAccessAndOthersKeep(t *testing.T) {
	fs, owner, alice, _ := setup(t)
	bob, err := NewUser("bob")
	if err != nil {
		t.Fatal(err)
	}
	fs.AddUser(bob)
	if err := fs.WriteFile("/f", []byte("data"), []string{"alice", "bob"}); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Revoke("alice", []string{"/f"}); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/f", alice); !errors.Is(err, ErrNoAccess) {
		t.Fatalf("revoked alice read = %v", err)
	}
	for _, u := range []*User{owner, bob} {
		got, err := fs.ReadFile("/f", u)
		if err != nil || string(got) != "data" {
			t.Fatalf("%s read after revocation = %q, %v", u.Name, got, err)
		}
	}
	readers, err := fs.Readers("/f")
	if err != nil || len(readers) != 2 {
		t.Fatalf("Readers = %v, %v", readers, err)
	}
}

func TestRevokeNoAccessIsFree(t *testing.T) {
	fs, _, _, _ := setup(t)
	if err := fs.WriteFile("/private", []byte("owner only"), nil); err != nil {
		t.Fatal(err)
	}
	stats, err := fs.Revoke("alice", []string{"/private"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FilesTouched != 0 || stats.BytesReencrypted != 0 {
		t.Fatalf("revoking a non-reader cost %+v", stats)
	}
}

func TestKeyWrapsScaleWithSharingDegree(t *testing.T) {
	fs, _, _, _ := setup(t)
	var names []string
	for i := 0; i < 10; i++ {
		u, err := NewUser(fmt.Sprintf("user%d", i))
		if err != nil {
			t.Fatal(err)
		}
		fs.AddUser(u)
		names = append(names, u.Name)
	}
	if err := fs.WriteFile("/wide", []byte("widely shared"), names); err != nil {
		t.Fatal(err)
	}
	fs.ResetStats()
	stats, err := fs.Revoke("user0", []string{"/wide"})
	if err != nil {
		t.Fatal(err)
	}
	// owner + 9 remaining users re-wrapped.
	if stats.KeyWraps != 10 {
		t.Fatalf("KeyWraps = %d, want 10", stats.KeyWraps)
	}
}

func TestUnknownTargets(t *testing.T) {
	fs, _, _, _ := setup(t)
	if err := fs.WriteFile("/f", nil, []string{"ghost"}); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("unknown reader = %v", err)
	}
	if _, err := fs.Revoke("alice", []string{"/missing"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("revoke on missing file = %v", err)
	}
	owner, _ := NewUser("o")
	if _, err := fs.ReadFile("/missing", owner); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read missing = %v", err)
	}
}

// TestParallelRevokeMatchesSerial runs the same revocation under serial
// and parallel fan-out widths and requires identical meters and
// identical post-revocation access semantics.
func TestParallelRevokeMatchesSerial(t *testing.T) {
	const files = 24
	build := func(t *testing.T, workers int) (*FS, *User, Stats) {
		fs, owner, _, _ := setup(t)
		fs.SetWorkers(workers)
		var paths []string
		for i := 0; i < files; i++ {
			p := fmt.Sprintf("/f%03d", i)
			paths = append(paths, p)
			if err := fs.WriteFile(p, bytes.Repeat([]byte{byte(i)}, 2048), []string{"alice"}); err != nil {
				t.Fatal(err)
			}
		}
		stats, err := fs.Revoke("alice", paths)
		if err != nil {
			t.Fatal(err)
		}
		return fs, owner, stats
	}

	_, _, serial := build(t, 1)
	for _, w := range []int{2, 8} {
		fs, owner, par := build(t, w)
		if par != serial {
			t.Fatalf("workers %d: stats %+v != serial %+v", w, par, serial)
		}
		// Owner still reads every file; the content survived re-encryption.
		for i := 0; i < files; i++ {
			got, err := fs.ReadFile(fmt.Sprintf("/f%03d", i), owner)
			if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 2048)) {
				t.Fatalf("workers %d: owner read f%03d: %v", w, i, err)
			}
		}
	}
}

// TestParallelRevokeMissingFileFails exercises the error path through
// the fan-out: a missing file aborts with ErrNotFound under any width.
func TestParallelRevokeMissingFileFails(t *testing.T) {
	fs, _, _, _ := setup(t)
	fs.SetWorkers(8)
	if err := fs.WriteFile("/present", []byte("x"), []string{"alice"}); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Revoke("alice", []string{"/present", "/missing"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("parallel revoke with missing file = %v, want ErrNotFound", err)
	}
}

func TestWritebackDefersUploadUntilBarrier(t *testing.T) {
	fs, owner, alice, store := setup(t)
	fs.SetWriteback(true)
	data := []byte("deferred document")
	if err := fs.WriteFile("/doc", data, []string{"alice"}); err != nil {
		t.Fatal(err)
	}
	// Nothing on the store until a barrier.
	names, err := store.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("store holds %v before any barrier", names)
	}
	// Reading the pending path is itself a barrier for that file.
	got, err := fs.ReadFile("/doc", alice)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("pending read = %q, %v", got, err)
	}
	names, err = store.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("store holds %d objects after read-of-pending, want 2 (data+keys)", len(names))
	}
	_ = owner
}

func TestWritebackRevokeDrainsPending(t *testing.T) {
	fs, owner, _, _ := setup(t)
	fs.SetWriteback(true)
	if err := fs.WriteFile("/a", []byte("alpha"), []string{"alice"}); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/b", []byte("beta"), []string{"alice"}); err != nil {
		t.Fatal(err)
	}
	// Revoke must publish the pending writes first, then strip alice.
	if _, err := fs.Revoke("alice", []string{"/a", "/b"}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/a", "/b"} {
		readers, err := fs.Readers(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range readers {
			if r == "alice" {
				t.Fatalf("%s still readable by revoked user", p)
			}
		}
		if _, err := fs.ReadFile(p, owner); err != nil {
			t.Fatalf("owner read of %s after revoke: %v", p, err)
		}
	}
}

func TestWritebackSyncPublishesAll(t *testing.T) {
	fs, _, alice, store := setup(t)
	fs.SetWriteback(true)
	for i := 0; i < 4; i++ {
		p := fmt.Sprintf("/f%d", i)
		if err := fs.WriteFile(p, []byte(p), []string{"alice"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	names, err := store.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 8 {
		t.Fatalf("store holds %d objects after Sync, want 8", len(names))
	}
	for i := 0; i < 4; i++ {
		p := fmt.Sprintf("/f%d", i)
		got, err := fs.ReadFile(p, alice)
		if err != nil || string(got) != p {
			t.Fatalf("read %s = %q, %v", p, got, err)
		}
	}
}
