package cryptofs

// Group-key mode: the hybrid scheme the NEXUS revocation experiment
// contrasts with per-reader wrapping (DSN'19 §VII-E; cf. IBBE-SGX and
// LKH). A membership key tree (internal/groupkey) covers every
// participant; each file key is wrapped ONCE under the tree's current
// root instead of once per reader. Revocation then costs one O(log n)
// path rotation plus, per affected file, a full content re-encryption
// and a SINGLE key wrap — against the flat scheme's wrap-per-remaining-
// reader on every file.
//
// Files written at earlier epochs stay readable without eager
// re-encryption: the filesystem keeps a root-secret history keyed by
// epoch (epochRoots), standing in for the path-unwrap chain a real
// member would run. Evicted users fail the membership check regardless
// of epoch; the files they could have cached keys for are exactly the
// `paths` handed to Revoke, which re-encrypts them under the rotated
// root.

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"nexus/internal/backend"
	"nexus/internal/groupkey"
	"nexus/internal/parallel"
	"nexus/internal/serial"
)

// groupReader is the key-block pseudo-entry that carries the
// tree-wrapped file key. Real participant names never collide with it:
// the block's other entries hold the reader list with empty wraps.
const groupReader = "@group"

// ErrGroupMode reports a group-mode operation on a filesystem whose
// membership tree is unavailable or broken.
var ErrGroupMode = errors.New("cryptofs: group-key mode unavailable")

// SetGroupKeys toggles group-key mode. Enabling it builds the
// membership tree over every registered user (first enable only; the
// tree persists across toggles so previously written group files stay
// readable). Call before the writes it should cover.
func (fs *FS) SetGroupKeys(on bool) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !on {
		fs.groupKeys = false
		return nil
	}
	if fs.tree == nil {
		fs.tree = groupkey.NewTree(groupkey.Config{})
		fs.ids = make(map[string]uint32)
		fs.epochRoots = make(map[uint64][]byte)
		names := make([]string, 0, len(fs.users))
		for name := range fs.users {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fs.enrollLocked(name)
		}
	}
	if fs.groupErr != nil {
		return fs.groupErr
	}
	fs.groupKeys = true
	return nil
}

// enrollLocked adds a user to the membership tree under a fresh member
// ID and snapshots the rotated root. Failures (entropy exhaustion —
// effectively unreachable) latch into fs.groupErr, failing subsequent
// group operations fast; fs.mu is held.
func (fs *FS) enrollLocked(name string) {
	if fs.groupErr != nil {
		return
	}
	if _, ok := fs.ids[name]; ok {
		return
	}
	id := fs.nextID
	fs.nextID++
	if _, err := fs.tree.Add(id); err != nil {
		fs.groupErr = fmt.Errorf("%w: enrolling %q: %v", ErrGroupMode, name, err)
		return
	}
	fs.ids[name] = id
	fs.snapshotRootLocked()
}

// snapshotRootLocked records the current epoch's root secret so files
// wrapped at this epoch stay readable after later rotations; fs.mu is
// held.
func (fs *FS) snapshotRootLocked() {
	fs.epochRoots[fs.tree.Epoch()] = append([]byte(nil), fs.tree.RootSecret()...)
}

// currentRootLocked returns the current epoch's root secret; fs.mu is
// held.
func (fs *FS) currentRootLocked() []byte {
	return fs.epochRoots[fs.tree.Epoch()]
}

// groupEntryIndex finds the "@group" pseudo-entry in a decoded key
// block, or -1 for a flat per-reader block.
func groupEntryIndex(readers []string) int {
	for i, name := range readers {
		if name == groupReader {
			return i
		}
	}
	return -1
}

// groupAAD binds a group wrap to its epoch.
func groupAAD(epoch uint64) []byte {
	aad := make([]byte, 8+8)
	copy(aad, "cfsgroup")
	binary.BigEndian.PutUint64(aad[8:], epoch)
	return aad
}

// sealGroupKey wraps a file key under an epoch root:
// epoch(8B) ‖ nonce(12B) ‖ GCM(fileKey).
func sealGroupKey(secret []byte, epoch uint64, fileKey []byte) ([]byte, error) {
	block, err := aes.NewCipher(secret)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	blob := make([]byte, 8, 8+12+len(fileKey)+gcm.Overhead())
	binary.BigEndian.PutUint64(blob, epoch)
	nonce := make([]byte, 12)
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	blob = append(blob, nonce...)
	return gcm.Seal(blob, nonce, fileKey, groupAAD(epoch)), nil
}

// openGroupKey recovers a file key from a group wrap using the
// root-secret history.
func openGroupKey(roots map[uint64][]byte, blob []byte) ([]byte, error) {
	if len(blob) < 8+12 {
		return nil, fmt.Errorf("%w: truncated group wrap", ErrNoAccess)
	}
	epoch := binary.BigEndian.Uint64(blob)
	secret, ok := roots[epoch]
	if !ok {
		return nil, fmt.Errorf("%w: no path to epoch %d root", ErrNoAccess, epoch)
	}
	block, err := aes.NewCipher(secret)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	fileKey, err := gcm.Open(nil, blob[8:20], blob[20:], groupAAD(epoch))
	if err != nil {
		return nil, fmt.Errorf("%w: group unwrap failed", ErrNoAccess)
	}
	return fileKey, nil
}

// encryptAndStoreGroup is the group-mode write core: fresh file key,
// full content encryption, ONE wrap under the epoch root. The reader
// list is recorded with empty wraps purely for access checks — no
// per-reader cryptography. Lock-free like encryptAndStore, so Revoke
// fans it out under a frozen fs.mu.
func encryptAndStoreGroup(store backend.Store, users map[string]*User, secret []byte, epoch uint64, p string, data []byte, readers []string) (Stats, error) {
	var st Stats
	fileKey := make([]byte, 32)
	if _, err := rand.Read(fileKey); err != nil {
		return st, err
	}
	block, err := aes.NewCipher(fileKey)
	if err != nil {
		return st, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return st, err
	}
	// Pooled sealed blob, same ownership shape as encryptAndStore: Put
	// copies, so the lease ends with this call and the Revoke sweep
	// recycles a buffer per worker.
	total := 12 + len(data) + gcm.Overhead()
	sealed := parallel.Shared.Get(total)
	defer sealed.Release()
	nonce := sealed.B[:12]
	if _, err := rand.Read(nonce); err != nil {
		return st, err
	}
	ct := gcm.Seal(sealed.B[:12:total], nonce, data, nil)
	st.BytesReencrypted += int64(len(data))

	sort.Strings(readers)
	w := serial.NewWriter(32*len(readers) + 96)
	w.WriteUint32(uint32(len(readers) + 1))
	for _, name := range readers {
		if _, ok := users[name]; !ok {
			return st, fmt.Errorf("%w: %s", ErrUnknownUser, name)
		}
		w.WriteString(name)
		w.WriteBytes(nil)
	}
	wrapped, err := sealGroupKey(secret, epoch, fileKey)
	if err != nil {
		return st, err
	}
	st.KeyWraps++
	w.WriteString(groupReader)
	w.WriteBytes(wrapped)

	// Same fail-closed ordering as the flat core: ciphertext before key
	// block, so a torn update reads as corrupt, never as stale access.
	if err := store.Put(dataName(p), ct); err != nil {
		if backend.IsUnavailable(err) {
			return st, fmt.Errorf("cryptofs: uploading ciphertext for %s: %w", p, err)
		}
		return st, err
	}
	if err := store.Put(keysName(p), w.Bytes()); err != nil {
		if backend.IsUnavailable(err) {
			return st, fmt.Errorf("cryptofs: uploading key block for %s (ciphertext already replaced; old keys cannot decrypt it): %w", p, err)
		}
		return st, err
	}
	st.BytesUploaded += int64(len(ct) + w.Len())
	st.FilesTouched++
	return st, nil
}

// readGroupLocked serves ReadFile for a group-wrapped file: the user
// must be on the file's reader list AND a current member of the tree
// (an evicted member cannot derive any epoch root); fs.mu is held.
func (fs *FS) readGroupLocked(p string, user *User, readers []string, blob []byte) ([]byte, error) {
	listed := false
	for _, name := range readers {
		if name == user.Name {
			listed = true
			break
		}
	}
	if !listed {
		return nil, fmt.Errorf("%w: %s on %s", ErrNoAccess, user.Name, p)
	}
	if fs.tree == nil {
		return nil, fmt.Errorf("%w: group-wrapped file %s without a membership tree", ErrGroupMode, p)
	}
	id, ok := fs.ids[user.Name]
	if !ok || !fs.tree.Contains(id) {
		return nil, fmt.Errorf("%w: %s is not a tree member", ErrNoAccess, user.Name)
	}
	fileKey, err := openGroupKey(fs.epochRoots, blob)
	if err != nil {
		return nil, err
	}
	return openData(fs.store, p, fileKey)
}

// openData fetches and decrypts a file's ciphertext under its file key.
func openData(store backend.Store, p string, fileKey []byte) ([]byte, error) {
	ct, err := store.Get(dataName(p))
	if err != nil {
		return nil, err
	}
	block, err := aes.NewCipher(fileKey)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	if len(ct) < 12 {
		return nil, fmt.Errorf("cryptofs: truncated ciphertext")
	}
	pt, err := gcm.Open(nil, ct[:12], ct[12:], nil)
	if err != nil {
		return nil, fmt.Errorf("cryptofs: decryption failed: %w", err)
	}
	return pt, nil
}

// readFileGroup is the lock-free group read core for Revoke's fan-out
// and owner reads. ok=false reports a flat per-reader key block the
// caller should handle pairwise.
func readFileGroup(store backend.Store, roots map[uint64][]byte, p string) (pt []byte, ok bool, err error) {
	keysBlob, err := store.Get(keysName(p))
	if err != nil {
		return nil, false, err
	}
	readers, wrapped, err := decodeKeyBlock(keysBlob)
	if err != nil {
		return nil, false, err
	}
	gi := groupEntryIndex(readers)
	if gi < 0 {
		return nil, false, nil
	}
	fileKey, err := openGroupKey(roots, wrapped[gi])
	if err != nil {
		return nil, true, err
	}
	pt, err = openData(store, p, fileKey)
	return pt, true, err
}

// revokeGroupLocked is Revoke's group-mode sweep: one path rotation
// (O(log n) wraps), then each affected file re-encrypts under a fresh
// key wrapped ONCE under the rotated root. Flat-format files caught in
// the sweep (written before the mode was enabled) convert to group
// format. fs.mu is held throughout, freezing the tree, the root
// history and the user table under the workers.
func (fs *FS) revokeGroupLocked(revoked string, paths []string) (Stats, error) {
	if fs.groupErr != nil {
		return Stats{}, fs.groupErr
	}
	var total Stats
	if id, ok := fs.ids[revoked]; ok && fs.tree.Contains(id) {
		before := fs.tree.Stats()
		if err := fs.tree.Revoke(id); err != nil {
			return Stats{}, fmt.Errorf("%w: rotating out %q: %v", ErrGroupMode, revoked, err)
		}
		delete(fs.ids, revoked)
		total.KeyWraps += fs.tree.Stats().Wraps - before.Wraps
		fs.snapshotRootLocked()
	}
	secret := fs.currentRootLocked()
	epoch := fs.tree.Epoch()
	perPath := make([]Stats, len(paths))
	err := parallel.Ranges(len(paths), fs.workers, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			p := paths[i]
			keysBlob, err := fs.store.Get(keysName(p))
			if errors.Is(err, backend.ErrNotExist) {
				return fmt.Errorf("%w: %s", ErrNotFound, p)
			}
			if err != nil {
				return err
			}
			readers, _, err := decodeKeyBlock(keysBlob)
			if err != nil {
				return err
			}
			hadAccess := false
			var remaining []string
			for _, name := range readers {
				switch name {
				case groupReader:
				case revoked:
					hadAccess = true
				default:
					remaining = append(remaining, name)
				}
			}
			if !hadAccess {
				continue // nothing cached by the revoked user
			}
			pt, wasGroup, err := readFileGroup(fs.store, fs.epochRoots, p)
			if err != nil {
				return err
			}
			if !wasGroup {
				pt, err = readFileAsOwner(fs.store, fs.owner, p)
				if err != nil {
					return err
				}
			}
			st, err := encryptAndStoreGroup(fs.store, fs.users, secret, epoch, p, pt, remaining)
			if err != nil {
				return err
			}
			perPath[i] = st
		}
		return nil
	})
	for _, st := range perPath {
		total.add(st)
	}
	fs.metrics.add(total)
	if err != nil {
		return Stats{}, err
	}
	return total, nil
}
