// Package cryptofs is a purely cryptographic protected filesystem in the
// style of SiRiUS/Plutus — the class of systems NEXUS's revocation
// experiment compares against (DSN'19 §VII-E, and the Garrison et al.
// analysis cited in §I).
//
// Each file is encrypted under its own file key, and the file key is
// wrapped individually for every authorized user under a pairwise ECDH
// secret. Because decryption happens in untrusted client software, a
// revoked user must be assumed to have cached every file key they could
// read. Revocation therefore requires, for every affected file:
//
//  1. generating a fresh file key,
//  2. re-encrypting the entire file contents,
//  3. re-wrapping the new key for every remaining user, and
//  4. uploading the new ciphertext and key block.
//
// The package meters exactly those costs so the benchmark can report
// them against NEXUS's single-metadata-update revocation.
package cryptofs

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"nexus/internal/backend"
	"nexus/internal/groupkey"
	"nexus/internal/obs"
	"nexus/internal/parallel"
	"nexus/internal/serial"
)

// Errors.
var (
	// ErrNoAccess reports a user without a wrapped key for the file.
	ErrNoAccess = errors.New("cryptofs: user has no key for this file")
	// ErrNotFound reports a missing file.
	ErrNotFound = errors.New("cryptofs: file not found")
	// ErrUnknownUser reports an unregistered username.
	ErrUnknownUser = errors.New("cryptofs: unknown user")
)

// User is a participant with an ECDH keypair. In a deployed system the
// private key lives with the user; the test harness holds both halves.
type User struct {
	Name string
	priv *ecdh.PrivateKey
}

// PublicKey returns the user's ECDH public key bytes.
func (u *User) PublicKey() []byte { return u.priv.PublicKey().Bytes() }

// NewUser generates a user identity.
func NewUser(name string) (*User, error) {
	priv, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("cryptofs: generating user key: %w", err)
	}
	return &User{Name: name, priv: priv}, nil
}

// Stats meters the costs the revocation experiment reports. Values
// returned by Revoke/Stats are snapshots; cumulative accounting lives
// in the obs registry (see cfsMetrics).
type Stats struct {
	// BytesReencrypted counts plaintext bytes passed through AES on
	// re-encryption.
	BytesReencrypted int64
	// BytesUploaded counts bytes written to the store.
	BytesUploaded int64
	// FilesTouched counts files whose contents were rewritten.
	FilesTouched int64
	// KeyWraps counts per-user key wrap operations.
	KeyWraps int64
}

// add accumulates another snapshot into s.
func (s *Stats) add(o Stats) {
	s.BytesReencrypted += o.BytesReencrypted
	s.BytesUploaded += o.BytesUploaded
	s.FilesTouched += o.FilesTouched
	s.KeyWraps += o.KeyWraps
}

// FS is a pure-crypto filesystem over a store.
type FS struct {
	store backend.Store
	owner *User

	mu      sync.Mutex
	users   map[string]*User // all participants, owner included; guarded by mu
	workers int              // Revoke re-encryption fan-out; guarded by mu

	// Group-key mode (SetGroupKeys): instead of wrapping each file key
	// once per reader, the file key is wrapped once under the current
	// root of a membership key tree, and Revoke rotates the evicted
	// user's leaf-to-root path — O(log n) wraps plus one wrap per
	// re-encrypted file, against the flat scheme's O(readers) per file.
	// All guarded by mu.
	groupKeys  bool
	tree       *groupkey.Tree
	ids        map[string]uint32 // user name → tree member ID
	nextID     uint32
	epochRoots map[uint64][]byte // epoch → tree root secret, for lazy reads
	groupErr   error             // latched tree-maintenance failure

	// writeback defers WriteFile's encrypt+upload into pending, drained
	// at Sync, at Revoke, or on first read of a pending path (mirrors
	// the enclave's write-back metadata mode); guarded by mu.
	writeback bool
	pending   map[string]pendingWrite // guarded by mu

	metrics cfsMetrics
}

// pendingWrite is a buffered WriteFile awaiting its upload.
type pendingWrite struct {
	data    []byte
	readers []string
}

// cfsMetrics holds the filesystem's obs instrument handles. The
// legacy Stats/ResetStats accessors are shims over these counters;
// metric names are catalogued in DESIGN.md §11.
type cfsMetrics struct {
	reg              *obs.Registry
	bytesReencrypted *obs.Counter // cryptofs_bytes_reencrypted_total
	bytesUploaded    *obs.Counter // cryptofs_bytes_uploaded_total
	filesTouched     *obs.Counter // cryptofs_files_touched_total
	keyWraps         *obs.Counter // cryptofs_key_wraps_total
	revokeLat        *obs.Histogram
	workers          *obs.Gauge // cryptofs_workers
	tracer           *obs.Tracer
}

func (m *cfsMetrics) bind(reg *obs.Registry) {
	m.reg = reg
	m.bytesReencrypted = reg.Counter("cryptofs_bytes_reencrypted_total")
	m.bytesUploaded = reg.Counter("cryptofs_bytes_uploaded_total")
	m.filesTouched = reg.Counter("cryptofs_files_touched_total")
	m.keyWraps = reg.Counter("cryptofs_key_wraps_total")
	m.revokeLat = reg.Histogram("cryptofs_revoke_seconds")
	m.workers = reg.Gauge("cryptofs_workers")
	m.tracer = reg.Tracer()
}

// add folds a per-call Stats snapshot into the cumulative counters.
func (m *cfsMetrics) add(st Stats) {
	m.bytesReencrypted.Add(st.BytesReencrypted)
	m.bytesUploaded.Add(st.BytesUploaded)
	m.filesTouched.Add(st.FilesTouched)
	m.keyWraps.Add(st.KeyWraps)
}

// New creates a filesystem owned by owner.
func New(store backend.Store, owner *User) *FS {
	fs := &FS{
		store: store,
		owner: owner,
		users: map[string]*User{owner.Name: owner},
	}
	fs.metrics.bind(obs.NewRegistry())
	return fs
}

// SetObs rebinds the meters onto reg so the filesystem shares a
// registry with the rest of a benchmark or test stack. Call before
// use; rebinding mid-flight loses in-window counts.
func (fs *FS) SetObs(reg *obs.Registry) { fs.metrics.bind(reg) }

// AddUser registers a participant. With group keys enabled the user is
// also enrolled into the membership tree so subsequent writes cover
// them under the rotated root.
func (fs *FS) AddUser(u *User) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.users[u.Name] = u
	if fs.tree != nil {
		fs.enrollLocked(u.Name)
	}
}

// SetWriteback toggles deferred uploads: with it on, WriteFile buffers
// the plaintext and reader set in memory and the encrypt+upload runs at
// Sync, at Revoke (which must never leave pre-revocation state
// pending), or on first read of the pending path. Default off.
func (fs *FS) SetWriteback(on bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.writeback = on
	if on && fs.pending == nil {
		fs.pending = make(map[string]pendingWrite)
	}
}

// Sync encrypts and uploads every pending write-back file (no-op when
// write-back is off or nothing is pending).
func (fs *FS) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.flushAllPendingLocked()
}

// flushPendingLocked uploads one pending path, if any; fs.mu is held.
func (fs *FS) flushPendingLocked(p string) error {
	pw, ok := fs.pending[p]
	if !ok {
		return nil
	}
	if err := fs.encryptAndStoreLocked(p, pw.data, pw.readers); err != nil {
		return err
	}
	delete(fs.pending, p)
	return nil
}

// flushAllPendingLocked uploads every pending path in deterministic
// order; fs.mu is held. Paths that upload successfully leave the
// pending set even if a later one fails.
func (fs *FS) flushAllPendingLocked() error {
	if len(fs.pending) == 0 {
		return nil
	}
	paths := make([]string, 0, len(fs.pending))
	for p := range fs.pending {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := fs.flushPendingLocked(p); err != nil {
			return err
		}
	}
	return nil
}

// SetWorkers bounds the re-encryption fan-out used by Revoke (0 =
// GOMAXPROCS, 1 = serial). Mass revocation re-encrypts every affected
// file independently, so the files parallelize perfectly.
func (fs *FS) SetWorkers(w int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.workers = w
	fs.metrics.workers.Set(int64(w))
}

// Stats returns a snapshot of the meters, assembled from the registry
// counters.
func (fs *FS) Stats() Stats {
	m := &fs.metrics
	return Stats{
		BytesReencrypted: m.bytesReencrypted.Value(),
		BytesUploaded:    m.bytesUploaded.Value(),
		FilesTouched:     m.filesTouched.Value(),
		KeyWraps:         m.keyWraps.Value(),
	}
}

// ResetStats zeroes the meters.
func (fs *FS) ResetStats() {
	m := &fs.metrics
	m.bytesReencrypted.Reset()
	m.bytesUploaded.Reset()
	m.filesTouched.Reset()
	m.keyWraps.Reset()
	m.revokeLat.Reset()
}

// object names: file data under "data!<path>", key block under
// "keys!<path>" (path separators escaped).
func dataName(p string) string { return "data!" + escape(p) }
func keysName(p string) string { return "keys!" + escape(p) }

func escape(p string) string {
	p = strings.TrimPrefix(p, "/")
	p = strings.ReplaceAll(p, "%", "%25")
	return strings.ReplaceAll(p, "/", "%2f")
}

// wrapKey derives the pairwise wrapping secret between the owner and a
// user, and seals the file key under it.
func wrapKey(owner, user *User, fileKey []byte) ([]byte, error) {
	secret, err := owner.priv.ECDH(user.priv.PublicKey())
	if err != nil {
		return nil, fmt.Errorf("cryptofs: deriving wrap secret: %w", err)
	}
	kek := sha256.Sum256(secret)
	block, err := aes.NewCipher(kek[:])
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, 12)
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	return gcm.Seal(nonce, nonce, fileKey, []byte(user.Name)), nil
}

func (fs *FS) unwrapKey(user *User, wrapped []byte) ([]byte, error) {
	return unwrapKeyFor(fs.owner, user, wrapped)
}

// unwrapKeyFor recovers the file key wrapped for user under the
// owner/user pairwise secret.
func unwrapKeyFor(owner, user *User, wrapped []byte) ([]byte, error) {
	secret, err := user.priv.ECDH(owner.priv.PublicKey())
	if err != nil {
		return nil, err
	}
	kek := sha256.Sum256(secret)
	block, err := aes.NewCipher(kek[:])
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	if len(wrapped) < 12 {
		return nil, ErrNoAccess
	}
	key, err := gcm.Open(nil, wrapped[:12], wrapped[12:], []byte(user.Name))
	if err != nil {
		return nil, fmt.Errorf("%w: unwrap failed", ErrNoAccess)
	}
	return key, nil
}

// encryptAndStoreLocked encrypts data under a fresh file key, wraps it
// for the named readers, and uploads both objects, folding the cost
// meters into fs.stats; fs.mu is held.
func (fs *FS) encryptAndStoreLocked(p string, data []byte, readers []string) error {
	var st Stats
	var err error
	if fs.groupKeys && fs.tree != nil {
		if fs.groupErr != nil {
			return fs.groupErr
		}
		st, err = encryptAndStoreGroup(fs.store, fs.users, fs.currentRootLocked(), fs.tree.Epoch(), p, data, readers)
	} else {
		st, err = encryptAndStore(fs.store, fs.owner, fs.users, p, data, readers)
	}
	fs.metrics.add(st)
	return err
}

// encryptAndStore is the lock-free core of the write path: everything it
// touches arrives as an argument, so Revoke can fan it out across worker
// goroutines (the caller holds fs.mu for the whole fan-out, keeping
// users and owner frozen). The returned Stats meter this call only.
func encryptAndStore(store backend.Store, owner *User, users map[string]*User, p string, data []byte, readers []string) (Stats, error) {
	var st Stats
	fileKey := make([]byte, 32)
	if _, err := rand.Read(fileKey); err != nil {
		return st, err
	}
	block, err := aes.NewCipher(fileKey)
	if err != nil {
		return st, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return st, err
	}
	// The sealed blob (nonce ‖ ciphertext ‖ tag) lives in a pooled
	// buffer: stores copy on Put (see backend.Store), so the lease ends
	// with this call and Revoke's fan-out recycles one buffer per worker
	// instead of allocating per file. Unlike the enclave's chunked
	// pipeline this seal cannot stream: the whole file is ONE GCM
	// message, so no prefix of the ciphertext is final until Seal
	// returns with the tag over the entire stream — there is no chunk
	// boundary at which bytes could be scattered to the store early.
	total := 12 + len(data) + gcm.Overhead()
	sealed := parallel.Shared.Get(total)
	defer sealed.Release()
	nonce := sealed.B[:12]
	if _, err := rand.Read(nonce); err != nil {
		return st, err
	}
	ct := gcm.Seal(sealed.B[:12:total], nonce, data, nil)
	st.BytesReencrypted += int64(len(data))

	// Key block: per-reader wrapped keys.
	sort.Strings(readers)
	w := serial.NewWriter(64 * len(readers))
	w.WriteUint32(uint32(len(readers)))
	for _, name := range readers {
		user, ok := users[name]
		if !ok {
			return st, fmt.Errorf("%w: %s", ErrUnknownUser, name)
		}
		wrapped, err := wrapKey(owner, user, fileKey)
		if err != nil {
			return st, err
		}
		st.KeyWraps++
		w.WriteString(name)
		w.WriteBytes(wrapped)
	}

	// Fail-closed ordering on an unreliable store: the ciphertext goes up
	// before the key block. If the key-block write dies (unavailable or
	// interrupted with unknown outcome), readers hold the OLD key block,
	// which cannot decrypt the new ciphertext — the file reads as
	// corrupt, never as a silent mix of old keys and new plaintext. The
	// reverse order could expose a new reader set to content they were
	// just revoked from.
	if err := store.Put(dataName(p), ct); err != nil {
		if backend.IsUnavailable(err) {
			return st, fmt.Errorf("cryptofs: uploading ciphertext for %s: %w", p, err)
		}
		return st, err
	}
	if err := store.Put(keysName(p), w.Bytes()); err != nil {
		if backend.IsUnavailable(err) {
			return st, fmt.Errorf("cryptofs: uploading key block for %s (ciphertext already replaced; old keys cannot decrypt it): %w", p, err)
		}
		return st, err
	}
	st.BytesUploaded += int64(len(ct) + w.Len())
	st.FilesTouched++
	return st, nil
}

// WriteFile encrypts and stores a file readable by the given users (the
// owner is always included).
func (fs *FS) WriteFile(p string, data []byte, readers []string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	withOwner := append([]string{fs.owner.Name}, readers...)
	seen := make(map[string]bool, len(withOwner))
	var unique []string
	for _, r := range withOwner {
		if !seen[r] {
			seen[r] = true
			unique = append(unique, r)
		}
	}
	if fs.writeback {
		fs.pending[p] = pendingWrite{data: append([]byte(nil), data...), readers: unique}
		return nil
	}
	return fs.encryptAndStoreLocked(p, data, unique)
}

// ReadFile decrypts a file as the given user.
func (fs *FS) ReadFile(p string, user *User) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.flushPendingLocked(p); err != nil {
		return nil, err
	}
	keysBlob, err := fs.store.Get(keysName(p))
	if errors.Is(err, backend.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, p)
	}
	if err != nil {
		return nil, err
	}
	readers, wrapped, err := decodeKeyBlock(keysBlob)
	if err != nil {
		return nil, err
	}
	if gi := groupEntryIndex(readers); gi >= 0 {
		return fs.readGroupLocked(p, user, readers, wrapped[gi])
	}
	var fileKey []byte
	for i, name := range readers {
		if name == user.Name {
			fileKey, err = fs.unwrapKey(user, wrapped[i])
			if err != nil {
				return nil, err
			}
			break
		}
	}
	if fileKey == nil {
		return nil, fmt.Errorf("%w: %s on %s", ErrNoAccess, user.Name, p)
	}

	ct, err := fs.store.Get(dataName(p))
	if err != nil {
		return nil, err
	}
	block, err := aes.NewCipher(fileKey)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	if len(ct) < 12 {
		return nil, fmt.Errorf("cryptofs: truncated ciphertext")
	}
	pt, err := gcm.Open(nil, ct[:12], ct[12:], nil)
	if err != nil {
		return nil, fmt.Errorf("cryptofs: decryption failed: %w", err)
	}
	return pt, nil
}

func decodeKeyBlock(blob []byte) (readers []string, wrapped [][]byte, err error) {
	r := serial.NewReader(blob)
	n := r.ReadCount(0, "reader count")
	for i := 0; i < n; i++ {
		readers = append(readers, r.ReadString(0, "reader name"))
		wrapped = append(wrapped, r.ReadBytes(256, "wrapped key"))
	}
	if err := r.Finish(); err != nil {
		return nil, nil, err
	}
	return readers, wrapped, nil
}

// Readers lists the users who hold a wrapped key for p.
func (fs *FS) Readers(p string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.flushPendingLocked(p); err != nil {
		return nil, err
	}
	keysBlob, err := fs.store.Get(keysName(p))
	if errors.Is(err, backend.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, p)
	}
	if err != nil {
		return nil, err
	}
	readers, _, err := decodeKeyBlock(keysBlob)
	if err != nil {
		return nil, err
	}
	// The "@group" pseudo-entry carries the tree-wrapped key, not a
	// participant.
	out := readers[:0]
	for _, name := range readers {
		if name != groupReader {
			out = append(out, name)
		}
	}
	return out, nil
}

// Revoke removes a user's access to every file in paths. This is the
// operation whose cost the experiment measures: each file's contents are
// re-encrypted under a fresh key and re-uploaded, and keys re-wrapped
// for all remaining readers — cost proportional to total affected data
// and sharing degree. Files are independent, so the re-encryption fans
// out across the SetWorkers fan-out width (default GOMAXPROCS); fs.mu is
// held for the whole operation, freezing the user table under the
// workers.
func (fs *FS) Revoke(revoked string, paths []string) (Stats, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	// Revocation is a barrier: a buffered write carrying the revoked
	// user's key must reach the store before the sweep so it gets
	// re-encrypted like everything else.
	if err := fs.flushAllPendingLocked(); err != nil {
		return Stats{}, err
	}
	span := fs.metrics.tracer.Begin("cryptofs.revoke")
	span.SetTagInt("paths", int64(len(paths)))
	span.SetTagInt("workers", int64(fs.workers))
	start := time.Now()
	defer func() {
		fs.metrics.revokeLat.Record(time.Since(start))
		span.End()
	}()
	if fs.groupKeys && fs.tree != nil {
		return fs.revokeGroupLocked(revoked, paths)
	}
	perPath := make([]Stats, len(paths))
	var total Stats
	err := parallel.Ranges(len(paths), fs.workers, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			p := paths[i]
			keysBlob, err := fs.store.Get(keysName(p))
			if errors.Is(err, backend.ErrNotExist) {
				return fmt.Errorf("%w: %s", ErrNotFound, p)
			}
			if err != nil {
				return err
			}
			readers, _, err := decodeKeyBlock(keysBlob)
			if err != nil {
				return err
			}
			hadAccess := false
			remaining := readers[:0]
			for _, name := range readers {
				if name == revoked {
					hadAccess = true
					continue
				}
				remaining = append(remaining, name)
			}
			if !hadAccess {
				continue // nothing cached by the revoked user
			}
			// The revoked user may have cached the old file key: full
			// re-encryption under a fresh key is mandatory.
			pt, err := readFileAsOwner(fs.store, fs.owner, p)
			if err != nil {
				return err
			}
			st, err := encryptAndStore(fs.store, fs.owner, fs.users, p, pt, remaining)
			if err != nil {
				return err
			}
			perPath[i] = st
		}
		return nil
	})
	// Fold whatever completed into the meters even on failure, matching
	// the serial path's partial accounting.
	for _, st := range perPath {
		total.add(st)
	}
	fs.metrics.add(total)
	if err != nil {
		return Stats{}, err
	}
	return total, nil
}

// ReadFileAsOwnerLocked decrypts p with the owner's key; the caller
// holds fs.mu.
func (fs *FS) ReadFileAsOwnerLocked(p string) ([]byte, error) {
	if err := fs.flushPendingLocked(p); err != nil {
		return nil, err
	}
	if fs.tree != nil {
		if pt, ok, err := readFileGroup(fs.store, fs.epochRoots, p); ok || err != nil {
			return pt, err
		}
	}
	return readFileAsOwner(fs.store, fs.owner, p)
}

// readFileAsOwner is the lock-free owner read core shared by the serial
// read path and Revoke's parallel fan-out.
func readFileAsOwner(store backend.Store, owner *User, p string) ([]byte, error) {
	keysBlob, err := store.Get(keysName(p))
	if err != nil {
		return nil, err
	}
	readers, wrapped, err := decodeKeyBlock(keysBlob)
	if err != nil {
		return nil, err
	}
	for i, name := range readers {
		if name == owner.Name {
			fileKey, err := unwrapKeyFor(owner, owner, wrapped[i])
			if err != nil {
				return nil, err
			}
			ct, err := store.Get(dataName(p))
			if err != nil {
				return nil, err
			}
			block, err := aes.NewCipher(fileKey)
			if err != nil {
				return nil, err
			}
			gcm, err := cipher.NewGCM(block)
			if err != nil {
				return nil, err
			}
			return gcm.Open(nil, ct[:12], ct[12:], nil)
		}
	}
	return nil, fmt.Errorf("%w: owner key missing on %s", ErrNoAccess, p)
}
