// Package enclave implements the trusted portion of NEXUS: the reference
// monitor that owns the volume rootkey and performs every cryptographic
// and access-control decision (DSN'19 §IV).
//
// The Enclave type runs inside a simulated SGX enclave (internal/sgx).
// Its public methods are the ecall surface; storage I/O leaves through
// ObjectStore, the ocall surface implemented by the untrusted layer
// (internal/vfs). The enclave:
//
//   - creates and mounts volumes, with the rootkey generated inside and
//     persisted only in SGX-sealed form (§IV, §VI-B);
//   - authenticates users with the nonce/signature challenge–response
//     over the encrypted supernode (§IV-B);
//   - implements the 9-call filesystem API of Table I, walking metadata
//     with parent-UUID validation and per-directory ACL checks (§IV-A,
//     §IV-C);
//   - encrypts file contents in fixed-size chunks with fresh keys on
//     every update (§VI-A);
//   - shares the rootkey with other users' enclaves via the
//     attestation-bound ECDH exchange of Fig. 4 (§IV-B1);
//   - revokes users by re-encrypting only metadata (§VII-E).
package enclave

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"sync"
	"time"

	"nexus/internal/cas"
	"nexus/internal/metadata"
	"nexus/internal/obs"
	"nexus/internal/parallel"
	"nexus/internal/sgx"
	"nexus/internal/uuid"
)

// SupernodeObjectName is the well-known store name of a volume's
// supernode; all other objects are named by UUID.
const SupernodeObjectName = "supernode"

// ObjectStore is the ocall surface: the untrusted layer's access to the
// backing store. Implementations return a version number that increases
// on every update of an object; the enclave uses it to validate its
// in-enclave metadata cache (the AFS callback mechanism keeps the
// untrusted file cache itself fresh).
//
// Buffer ownership at this boundary (DESIGN.md §14): the []byte passed
// to PutVersioned (and every segment handed out by a
// StreamObjectStore's next callback) remains owned by the enclave and
// is only on loan for the duration of the call — the enclave leases it
// from a buffer pool and re-leases it to later operations the moment
// the call returns. Implementations must copy anything they retain
// (caches, queues, logs) and must never stash the slice itself.
// Symmetrically, buffers returned by GetVersioned become the enclave's
// to keep.
type ObjectStore interface {
	// GetVersioned returns an object's contents and current version.
	GetVersioned(name string) (data []byte, version uint64, err error)
	// PutVersioned replaces an object and returns its new version.
	PutVersioned(name string, data []byte) (version uint64, err error)
	// Delete removes an object.
	Delete(name string) error
	// Lock takes the object's exclusive advisory lock (flock in the
	// prototype, §V-A).
	Lock(name string) (release func(), err error)
}

// StreamObjectStore is an optional ObjectStore upgrade: a store that
// can transmit an object while the producer is still generating it, so
// chunk encryption overlaps the upload instead of serializing in front
// of it. The enclave type-asserts for it on large writes; stores
// without it simply receive the assembled blob via PutVersioned.
type StreamObjectStore interface {
	ObjectStore
	// PutVersionedStream replaces an object with exactly total bytes
	// drawn from next. next returns successive segments in object order
	// — each valid only until the following next call (ownership rules
	// above) — and (nil, nil) at end of stream; a non-nil error aborts
	// the put. The put is atomic: a partially transferred stream must
	// never become visible as the object's contents.
	PutVersionedStream(name string, total int, next func() ([]byte, error)) (version uint64, err error)
}

// Errors returned by the enclave.
var (
	// ErrNotAuthenticated reports an operation before a successful auth.
	ErrNotAuthenticated = errors.New("enclave: no authenticated user")
	// ErrAccessDenied reports an ACL denial.
	ErrAccessDenied = errors.New("enclave: access denied")
	// ErrNotMounted reports filesystem calls before a volume is mounted.
	ErrNotMounted = errors.New("enclave: no volume mounted")
	// ErrStaleMetadata reports a rollback: the storage service returned
	// an object older than one this enclave has already seen (§VI-C).
	ErrStaleMetadata = errors.New("enclave: stale metadata (rollback detected)")
	// ErrStaleObject reports a rollback caught by merkle freshness mode:
	// a served object (or the root commitment itself) is provably older
	// than the volume state this enclave has committed to. It wraps
	// ErrStaleMetadata so existing errors.Is checks keep matching.
	ErrStaleObject = fmt.Errorf("%w: merkle freshness violation", ErrStaleMetadata)
	// ErrBadProof reports a freshness proof that is malformed or does
	// not verify against the enclave's root commitment — tampering or a
	// misbehaving proof server, never silently accepted.
	ErrBadProof = errors.New("enclave: freshness proof rejected")
	// ErrStoreUnavailable reports that the backing store could not
	// complete an ocall: the service was unreachable, the operation
	// timed out, or a mutating exchange was interrupted with unknown
	// outcome. It wraps the underlying backend sentinel, so callers can
	// distinguish the three via errors.Is.
	ErrStoreUnavailable = errors.New("enclave: storage unavailable or interrupted")
	// ErrBadAuth reports a failed challenge-response.
	ErrBadAuth = errors.New("enclave: authentication failed")
	// ErrExists, ErrNotFound, ErrNotDir, ErrNotFile, ErrNotEmpty mirror
	// the usual filesystem failures.
	ErrExists   = errors.New("enclave: entry already exists")
	ErrNotFound = errors.New("enclave: no such file or directory")
	ErrNotDir   = errors.New("enclave: not a directory")
	ErrNotFile  = errors.New("enclave: not a file")
	ErrNotEmpty = errors.New("enclave: directory not empty")
)

// Config parameterizes a NEXUS enclave instance.
type Config struct {
	// SGX is the enclave container providing sealing, attestation, EPC
	// and transition accounting. Required.
	SGX *sgx.Enclave
	// Store is the ocall surface to the backing store. Required.
	Store ObjectStore
	// IAS is the attestation service used to verify quotes during
	// rootkey exchanges. Optional; exchanges fail without it.
	IAS *sgx.AttestationService
	// BucketSize caps dirnode bucket entries (default 128, §VII).
	BucketSize uint32
	// ChunkSize is the file chunk size (default 1 MiB, §VII).
	ChunkSize uint32
	// CryptoWorkers bounds the chunk-crypto fan-out on the WriteFile/
	// ReadFile path (0 = GOMAXPROCS with a serial fallback for small
	// files, 1 = always serial; see internal/metadata and DESIGN.md §10).
	CryptoWorkers int
	// StreamPutCutoff is the write size, in bytes, from which WriteFile
	// pipelines chunk encryption into the upload when the store
	// implements StreamObjectStore (0 = default 4 MiB, negative =
	// never stream). Below the cutoff the assembled single-frame put is
	// cheaper: the simulated network charges latency per write, so
	// streaming only pays once crypto time is worth hiding.
	StreamPutCutoff int
	// DisableMetadataCache turns off the in-enclave decrypted-metadata
	// cache (used by the cache ablation benchmark).
	DisableMetadataCache bool
	// FreshnessTree enables the volume-wide version table (§VI-C): full
	// hierarchy rollback detection at the cost of an extra metadata
	// object read/write per operation. See internal/enclave/freshness.go.
	FreshnessTree bool
	// FreshnessMerkle enables merkle freshness mode (DESIGN.md §15):
	// the same rollback guarantee with O(1) enclave-resident state (a
	// root hash plus an epoch) and O(log n) proof verification per
	// metadata load. Requires Store to implement FreshnessProofStore
	// (vfs.FreshnessStore wraps any plain store). Mutually exclusive
	// with FreshnessTree, which remains as the transition oracle.
	FreshnessMerkle bool
	// Writeback selects the metadata flush policy. The zero value and
	// WritebackOff seal and upload metadata eagerly on every mutation
	// (the historical behaviour, and what direct Config consumers such
	// as the internal tests rely on). WritebackOn defers flushes into a
	// dirty set drained in dependency order at explicit barriers
	// (SyncMetadata, ACL/user/sharing changes, DropCaches) and at the
	// WritebackMaxOps/WritebackMaxBytes high-water marks. See
	// internal/enclave/writeback.go and DESIGN.md §12.
	Writeback WritebackMode
	// WritebackMaxOps caps the number of deferred mutations before the
	// dirty set drains inline (default 64; write-back mode only).
	WritebackMaxOps int
	// WritebackMaxBytes caps the estimated batched metadata bytes before
	// the dirty set drains inline (default 4 MiB; write-back mode only).
	WritebackMaxBytes int64
	// ContentDefined stores file contents through the content-addressed
	// dedup layer (DESIGN.md §16): writes are split at content-defined
	// boundaries (chunker params derive from ChunkSize: min ChunkSize/4,
	// average ChunkSize, max 4×ChunkSize), chunks the volume already
	// holds are not re-uploaded, and unreferenced chunks are garbage
	// collected via the per-volume ref table. Files written under the
	// knob stay content-defined for life; files in the legacy fixed-size
	// layout convert on their next write. Reads never consult the knob —
	// both layouts always decode.
	ContentDefined bool
	// DisableGroupKeys turns off the membership key tree: AddUser skips
	// subgroup enrollment, RemoveUser skips the path rotation, and group
	// ACL entries stop resolving. The default (false) maintains the tree
	// for every volume this enclave administers; volumes created while
	// the knob was off migrate lazily on the next AddUser. See
	// internal/groupkey and DESIGN.md §13.
	DisableGroupKeys bool
	// Obs is the observability registry the enclave (and its SGX
	// container) meters into. Optional; a private registry is created
	// when nil. Share one registry across the stack (vfs → enclave →
	// sgx → afs) so a single scrape sees the whole data path.
	Obs *obs.Registry
}

// Stats counts enclave-side work for the evaluation breakdowns. Since
// the obs migration it is a snapshot assembled from the registry
// counters (see enclaveMetrics); the field semantics are unchanged.
type Stats struct {
	// MetadataLoads counts metadata objects decrypted.
	MetadataLoads int64
	// MetadataCacheHits counts loads served from the decrypted cache.
	MetadataCacheHits int64
	// MetadataFlushes counts metadata objects sealed and written.
	MetadataFlushes int64
	// MetadataBytesWritten totals sealed metadata bytes uploaded.
	MetadataBytesWritten int64
	// DataBytesWritten totals encrypted file content bytes uploaded.
	DataBytesWritten int64
	// MetadataIOTime is wall time spent in ocalls touching metadata
	// objects (fetch, store, lock) — the "Metadata I/O" rows of Tables
	// 5a/5b.
	MetadataIOTime time.Duration
	// DataIOTime is wall time spent in ocalls moving encrypted file
	// contents.
	DataIOTime time.Duration
	// ChunkPoolHits and ChunkPoolMisses report the sealed-buffer arena's
	// health: misses mean the data path is allocating fresh spans
	// instead of recycling them (mirrors
	// enclave_chunk_pool_{hits,misses}_total).
	ChunkPoolHits   int64
	ChunkPoolMisses int64
	// DedupHits counts CDC chunks a write skipped uploading because the
	// volume already held them; DedupChunksUploaded counts chunks
	// actually sealed and stored; DedupBytesSkipped totals the plaintext
	// bytes the skips saved (mirrors enclave_dedup_*_total).
	DedupHits           int64
	DedupChunksUploaded int64
	DedupBytesSkipped   int64
}

// Enclave is a NEXUS enclave instance managing (at most) one mounted
// volume. All exported methods are safe for concurrent use; the enclave
// serializes operations the way a single-TCS SGX enclave would.
type Enclave struct {
	sgx   *sgx.Enclave
	store ObjectStore
	ias   *sgx.AttestationService
	cfg   Config

	mu sync.Mutex

	// Volume state, populated by CreateVolume/Mount.
	rootKey      []byte
	super        *metadata.Supernode
	superBlob    []byte // current sealed supernode (signed during auth)
	superVersion uint64

	// Authentication state.
	pendingNonce []byte
	pendingUser  ed25519.PublicKey
	user         metadata.User
	authed       bool

	// Exchange keypair (Fig 4 "Setup"): generated in-enclave; the
	// private key never leaves.
	exchange *exchangeKey
	// pendingMutual is the ephemeral keypair of an in-flight synchronous
	// exchange (§VI-B variant); consumed by AcceptMutualGrant.
	pendingMutual *ecdh.PrivateKey

	cache     *metaCache
	freshness map[uuid.UUID]uint64

	// Merkle freshness mode: the enclave's entire freshness state is
	// this root commitment and epoch — no per-object map (that is the
	// O(1) claim the freshness-scale benchmark measures). proofStore is
	// the store's FreshnessProofStore upgrade, asserted once in New.
	proofStore FreshnessProofStore
	mkRoot     [32]byte
	mkEpoch    uint64
	mkSeen     bool

	// wb is the write-back dirty set (nil in eager mode); freshSink,
	// when non-nil, absorbs freshness-table updates during a batch drain
	// so the table is rewritten once per batch instead of once per
	// object. Both are guarded by mu.
	wb        *dirtySet
	freshSink map[uuid.UUID]uint64

	// Content-addressed dedup state (Config.ContentDefined; see
	// internal/enclave/cas.go). casSecret derives from the rootkey at
	// volume activation. refs caches the last committed ref table for
	// the dedup-skip decision (stale-low entries only cost idempotent
	// re-uploads); refsSeq is the enclave's local rollback memory of the
	// table's version. casDecs accumulates reference drops and
	// casPendingDeletes holds object names whose deletion must trail the
	// next ref-table flush; both drain through casFlushDecsLocked.
	casSecret         *cas.Secret
	refs              *cas.RefTable
	refsSeq           uint64
	refsLoaded        bool
	casDecs           map[cas.Handle]uint32
	casPendingDeletes []string

	// arena pools the data path's sealed-chunk buffers (DESIGN.md §14).
	// Per-enclave rather than process-wide so the pool-health counters
	// it mirrors into metrics are this enclave's alone.
	arena *parallel.Arena

	metrics enclaveMetrics
}

// enclaveMetrics holds the enclave's instrument handles, resolved once
// at construction so hot-path recording is a few atomic ops. The
// legacy Stats/ResetStats accessors are shims over these counters.
// Metric names are catalogued in DESIGN.md §11.
type enclaveMetrics struct {
	reg *obs.Registry

	metadataLoads     *obs.Counter // enclave_metadata_loads_total
	metadataCacheHits *obs.Counter // enclave_metadata_cache_hits_total
	metadataFlushes   *obs.Counter // enclave_metadata_flushes_total
	metadataBytes     *obs.Counter // enclave_metadata_bytes_written_total
	dataBytes         *obs.Counter // enclave_data_bytes_written_total
	chunks            *obs.Counter // enclave_chunk_crypto_chunks_total
	chunkLat          *obs.Histogram
	poolHits          *obs.Counter // enclave_chunk_pool_hits_total
	poolMisses        *obs.Counter // enclave_chunk_pool_misses_total
	workers           *obs.Gauge   // enclave_crypto_workers
	metadataDirty     *obs.Counter // enclave_metadata_dirty_total
	flushBatches      *obs.Counter // enclave_flush_batches_total
	dirtyGauge        *obs.Gauge   // enclave_metadata_dirty
	groupWraps        *obs.Counter // enclave_groupkey_wraps_total
	groupWrapBytes    *obs.Counter // enclave_groupkey_wrap_bytes_total
	groupUnwraps      *obs.Counter // enclave_groupkey_unwraps_total
	proofs            *obs.Counter // enclave_freshness_proofs_total
	proofBytes        *obs.Counter // enclave_freshness_proof_bytes_total
	rootUpdates       *obs.Counter // enclave_freshness_root_updates_total
	dedupHits         *obs.Counter // enclave_dedup_hits_total
	dedupUploads      *obs.Counter // enclave_dedup_chunks_uploaded_total
	dedupSkipBytes    *obs.Counter // enclave_dedup_bytes_skipped_total

	// metaIO and dataIO meter the two ocall classes of the Table 5a/5b
	// breakdowns (metadata fetch/store/lock vs encrypted file content).
	metaIO ocallMeter
	dataIO ocallMeter

	tracer *obs.Tracer
}

// ocallMeter is the pair of instruments a timedOcall charges: a
// cumulative nanosecond counter (backs the Stats duration fields) and
// a latency histogram (backs tail-latency reporting).
type ocallMeter struct {
	ns  *obs.Counter
	lat *obs.Histogram
}

func (m *enclaveMetrics) bind(reg *obs.Registry) {
	m.reg = reg
	m.metadataLoads = reg.Counter("enclave_metadata_loads_total")
	m.metadataCacheHits = reg.Counter("enclave_metadata_cache_hits_total")
	m.metadataFlushes = reg.Counter("enclave_metadata_flushes_total")
	m.metadataBytes = reg.Counter("enclave_metadata_bytes_written_total")
	m.dataBytes = reg.Counter("enclave_data_bytes_written_total")
	m.chunks = reg.Counter("enclave_chunk_crypto_chunks_total")
	m.chunkLat = reg.Histogram("enclave_chunk_crypto_seconds")
	m.poolHits = reg.Counter("enclave_chunk_pool_hits_total")
	m.poolMisses = reg.Counter("enclave_chunk_pool_misses_total")
	m.workers = reg.Gauge("enclave_crypto_workers")
	m.metadataDirty = reg.Counter("enclave_metadata_dirty_total")
	m.flushBatches = reg.Counter("enclave_flush_batches_total")
	m.dirtyGauge = reg.Gauge("enclave_metadata_dirty")
	m.groupWraps = reg.Counter("enclave_groupkey_wraps_total")
	m.groupWrapBytes = reg.Counter("enclave_groupkey_wrap_bytes_total")
	m.groupUnwraps = reg.Counter("enclave_groupkey_unwraps_total")
	m.proofs = reg.Counter("enclave_freshness_proofs_total")
	m.proofBytes = reg.Counter("enclave_freshness_proof_bytes_total")
	m.rootUpdates = reg.Counter("enclave_freshness_root_updates_total")
	m.dedupHits = reg.Counter("enclave_dedup_hits_total")
	m.dedupUploads = reg.Counter("enclave_dedup_chunks_uploaded_total")
	m.dedupSkipBytes = reg.Counter("enclave_dedup_bytes_skipped_total")
	m.metaIO = ocallMeter{ns: reg.Counter("enclave_metadata_io_ns_total"), lat: reg.Histogram("enclave_metadata_io_seconds")}
	m.dataIO = ocallMeter{ns: reg.Counter("enclave_data_io_ns_total"), lat: reg.Histogram("enclave_data_io_seconds")}
	m.tracer = reg.Tracer()
}

// New creates an enclave instance from cfg.
func New(cfg Config) (*Enclave, error) {
	if cfg.SGX == nil {
		return nil, fmt.Errorf("enclave: Config.SGX is required")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("enclave: Config.Store is required")
	}
	if cfg.BucketSize == 0 {
		cfg.BucketSize = metadata.DefaultBucketSize
	}
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = metadata.DefaultChunkSize
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	switch cfg.Writeback {
	case WritebackEager, WritebackOff, WritebackOn:
	default:
		return nil, fmt.Errorf("enclave: unknown Writeback mode %q", cfg.Writeback)
	}
	if cfg.FreshnessTree && cfg.FreshnessMerkle {
		return nil, fmt.Errorf("enclave: FreshnessTree and FreshnessMerkle are mutually exclusive")
	}
	var proofStore FreshnessProofStore
	if cfg.FreshnessMerkle {
		ps, ok := cfg.Store.(FreshnessProofStore)
		if !ok {
			return nil, fmt.Errorf("enclave: FreshnessMerkle requires a store implementing FreshnessProofStore (wrap it in vfs.NewFreshnessStore)")
		}
		proofStore = ps
	}
	e := &Enclave{
		sgx:        cfg.SGX,
		store:      cfg.Store,
		ias:        cfg.IAS,
		cfg:        cfg,
		freshness:  make(map[uuid.UUID]uint64),
		proofStore: proofStore,
		casDecs:    make(map[cas.Handle]uint32),
	}
	if cfg.Writeback == WritebackOn {
		//lint:ignore lock-discipline construction: the enclave is not yet shared
		e.wb = newDirtySet(cfg.WritebackMaxOps, cfg.WritebackMaxBytes)
	}
	e.metrics.bind(cfg.Obs)
	e.arena = parallel.NewArena()
	e.arena.SetCounters(e.metrics.poolHits.Inc, e.metrics.poolMisses.Inc)
	// The SGX container meters its transitions into the same registry,
	// so one scrape covers ecalls, metadata I/O and chunk crypto.
	cfg.SGX.SetObs(cfg.Obs)
	// A store that can self-instrument (vfs.VersionedStore) joins the
	// same registry, so its per-object spans nest under the ecall spans.
	if in, ok := cfg.Store.(interface{ Instrument(*obs.Registry) }); ok {
		in.Instrument(cfg.Obs)
	}
	e.metrics.workers.Set(int64(cfg.CryptoWorkers))
	if !cfg.DisableMetadataCache {
		e.cache = newMetaCache(cfg.SGX)
	}
	var err error
	if err = e.sgx.Ecall(func() error {
		e.exchange, err = newExchangeKey()
		return err
	}); err != nil {
		return nil, fmt.Errorf("enclave: generating exchange key: %w", err)
	}
	return e, nil
}

// Stats returns a snapshot of the enclave's counters, assembled from
// the obs registry (the evaluation-breakdown semantics predate the
// registry and are preserved exactly).
func (e *Enclave) Stats() Stats {
	m := &e.metrics
	return Stats{
		MetadataLoads:        m.metadataLoads.Value(),
		MetadataCacheHits:    m.metadataCacheHits.Value(),
		MetadataFlushes:      m.metadataFlushes.Value(),
		MetadataBytesWritten: m.metadataBytes.Value(),
		DataBytesWritten:     m.dataBytes.Value(),
		MetadataIOTime:       time.Duration(m.metaIO.ns.Value()),
		DataIOTime:           time.Duration(m.dataIO.ns.Value()),
		ChunkPoolHits:        m.poolHits.Value(),
		ChunkPoolMisses:      m.poolMisses.Value(),
		DedupHits:            m.dedupHits.Value(),
		DedupChunksUploaded:  m.dedupUploads.Value(),
		DedupBytesSkipped:    m.dedupSkipBytes.Value(),
	}
}

// ResetStats zeroes the counters (and the underlying SGX transition
// stats), used between benchmark phases.
func (e *Enclave) ResetStats() {
	m := &e.metrics
	m.metadataLoads.Reset()
	m.metadataCacheHits.Reset()
	m.metadataFlushes.Reset()
	m.metadataBytes.Reset()
	m.dataBytes.Reset()
	m.chunks.Reset()
	m.chunkLat.Reset()
	m.poolHits.Reset()
	m.poolMisses.Reset()
	m.metaIO.ns.Reset()
	m.metaIO.lat.Reset()
	m.dataIO.ns.Reset()
	m.dataIO.lat.Reset()
	m.metadataDirty.Reset()
	m.flushBatches.Reset()
	m.groupWraps.Reset()
	m.groupWrapBytes.Reset()
	m.groupUnwraps.Reset()
	m.proofs.Reset()
	m.proofBytes.Reset()
	m.rootUpdates.Reset()
	m.dedupHits.Reset()
	m.dedupUploads.Reset()
	m.dedupSkipBytes.Reset()
	e.sgx.ResetStats()
}

// SGX exposes the underlying SGX container (for transition/time stats).
func (e *Enclave) SGX() *sgx.Enclave { return e.sgx }

// Obs returns the registry the enclave meters into, so layers above
// (vfs) and beside (afs client) can share it.
func (e *Enclave) Obs() *obs.Registry { return e.metrics.reg }

// DropCaches discards the in-enclave decrypted metadata cache, forcing
// subsequent operations to re-fetch and re-verify (the benchmark's
// cold-cache runs; the paper flushes the AFS cache before each run).
// In write-back mode it first drains pending metadata, since a dirty
// node evicted from memory without an on-store copy would be lost.
func (e *Enclave) DropCaches() {
	//lint:ignore unchecked-crypto-error best-effort pre-drain; an unreachable store must not block a cache drop
	_ = e.SyncMetadata()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cache.clear()
	// Drop the cached ref table too: the next CDC write refetches and
	// re-verifies it (the drain above already flushed pending drops).
	e.refs = nil
	e.refsLoaded = false
}

// CreateVolume initializes a new volume on the backing store: it
// generates the rootkey inside the enclave, writes the supernode and
// empty root dirnode, and returns the SGX-sealed rootkey for local
// persistence. The caller must still authenticate (Mount flow) before
// using the volume.
func (e *Enclave) CreateVolume(ownerName string, ownerKey ed25519.PublicKey) (sealedRootKey []byte, err error) {
	err = e.sgx.Ecall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.rootKey != nil {
			return fmt.Errorf("enclave: a volume is already active")
		}
		rootKey, err := metadata.NewRootKey()
		if err != nil {
			return err
		}
		super, err := metadata.NewSupernode(ownerName, ownerKey)
		if err != nil {
			return err
		}

		e.rootKey = rootKey
		e.super = super
		e.casSecret = cas.DeriveSecret(rootKey)
		if !e.cfg.DisableGroupKeys {
			// Fresh volumes start with the membership key tree in place
			// (owner enrolled); legacy volumes migrate on first AddUser.
			if _, err := e.ensureGroupTreeLocked(); err != nil {
				e.rootKey = nil
				e.super = nil
				e.casSecret = nil
				return err
			}
		}

		// Root dirnode: parent pointer binds it to the supernode.
		root := metadata.NewDirnode(super.RootDir, super.VolumeUUID, e.cfg.BucketSize)
		if err := e.flushDirnodeLocked(root, 1); err != nil {
			e.rootKey = nil
			e.super = nil
			e.casSecret = nil
			return fmt.Errorf("writing root dirnode: %w", err)
		}
		if err := e.flushSupernodeLocked(); err != nil {
			e.rootKey = nil
			e.super = nil
			e.casSecret = nil
			return fmt.Errorf("writing supernode: %w", err)
		}

		sealedRootKey, err = e.sgx.Seal(rootKey, super.VolumeUUID[:])
		if err != nil {
			return fmt.Errorf("sealing rootkey: %w", err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sealedRootKey, nil
}

// VolumeUUID returns the active volume's UUID (for sealing AAD and
// diagnostics).
func (e *Enclave) VolumeUUID() (uuid.UUID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.super == nil {
		return uuid.Nil, ErrNotMounted
	}
	return e.super.VolumeUUID, nil
}

// BeginAuth starts the challenge–response protocol of §IV-B: the caller
// presents their public key and the sealed rootkey; the enclave unseals
// the rootkey, loads and verifies the supernode, and returns a fresh
// nonce together with the encrypted supernode blob the user must sign.
func (e *Enclave) BeginAuth(userKey ed25519.PublicKey, sealedRootKey []byte, volumeID uuid.UUID) (nonce, supernodeBlob []byte, err error) {
	err = e.sgx.Ecall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if len(userKey) != ed25519.PublicKeySize {
			return fmt.Errorf("%w: bad public key length", ErrBadAuth)
		}

		rootKey, err := e.sgx.Unseal(sealedRootKey, volumeID[:])
		if err != nil {
			return fmt.Errorf("%w: unsealing rootkey: %v", ErrBadAuth, err)
		}
		if len(rootKey) != metadata.RootKeySize {
			return fmt.Errorf("%w: sealed blob is not a rootkey", ErrBadAuth)
		}
		e.rootKey = rootKey
		e.casSecret = cas.DeriveSecret(rootKey)
		if err := e.loadSupernodeLocked(); err != nil {
			e.rootKey = nil
			e.casSecret = nil
			return err
		}

		e.pendingNonce = make([]byte, 16)
		if _, err := rand.Read(e.pendingNonce); err != nil {
			return fmt.Errorf("enclave: generating nonce: %w", err)
		}
		e.pendingUser = userKey
		nonce = append([]byte(nil), e.pendingNonce...)
		supernodeBlob = append([]byte(nil), e.superBlob...)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return nonce, supernodeBlob, nil
}

// CompleteAuth finishes the challenge–response: signature must be the
// user's Ed25519 signature over nonce ‖ encrypted-supernode. On success
// the user's identity is cached in the enclave and the volume is usable.
func (e *Enclave) CompleteAuth(signature []byte) error {
	return e.sgx.Ecall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.pendingNonce == nil || e.pendingUser == nil {
			return fmt.Errorf("%w: no authentication in progress", ErrBadAuth)
		}
		nonce, userKey := e.pendingNonce, e.pendingUser
		e.pendingNonce, e.pendingUser = nil, nil

		// (ii) the key must appear in the supernode's user table.
		user, err := e.super.FindUserByKey(userKey)
		if err != nil {
			return fmt.Errorf("%w: public key not authorized for this volume", ErrBadAuth)
		}
		// (i) the caller must own the key: verify the signature over
		// nonce ‖ ENC(rootkey, supernode).
		msg := make([]byte, 0, len(nonce)+len(e.superBlob))
		msg = append(msg, nonce...)
		msg = append(msg, e.superBlob...)
		if !ed25519.Verify(userKey, msg, signature) {
			return fmt.Errorf("%w: challenge signature invalid", ErrBadAuth)
		}
		// (iii) members of the key tree must additionally hold a wrap
		// chain reaching the current root — a revoked-then-stale client
		// fails here even if its table entry were somehow replayed.
		if err := e.groupAuthenticateLocked(user.ID); err != nil {
			return err
		}
		e.user = user
		e.authed = true
		return nil
	})
}

// CurrentUser returns the authenticated identity.
func (e *Enclave) CurrentUser() (metadata.User, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.authed {
		return metadata.User{}, ErrNotAuthenticated
	}
	return e.user, nil
}

// isOwnerLocked reports whether the authenticated user owns the volume.
func (e *Enclave) isOwnerLocked() bool {
	return e.authed && e.user.ID == metadata.OwnerUserID
}

// requireAuthLocked guards filesystem entry points.
func (e *Enclave) requireAuthLocked() error {
	if e.rootKey == nil || e.super == nil {
		return ErrNotMounted
	}
	if !e.authed {
		return ErrNotAuthenticated
	}
	return nil
}

// --- User administration (owner only, §IV-C) ---

// AddUser grants a new identity access to the volume. Only the owner may
// administer the user table; the change is one metadata update.
func (e *Enclave) AddUser(name string, key ed25519.PublicKey) (userID uint32, err error) {
	err = e.sgx.Ecall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if err := e.requireAuthLocked(); err != nil {
			return err
		}
		if !e.isOwnerLocked() {
			return fmt.Errorf("%w: only the owner administers users", ErrAccessDenied)
		}
		if err := e.drainWithRetryLocked(); err != nil {
			return err
		}
		return e.withSupernodeLockLocked(func() error {
			var err error
			userID, err = e.super.AddUser(name, key)
			if err != nil {
				return err
			}
			if err := e.groupAddLocked(userID); err != nil {
				// Keep the in-memory table consistent with the store:
				// nothing has been flushed yet, so undo the table entry.
				//lint:ignore unchecked-crypto-error rollback of an unflushed add
				_, _ = e.super.RemoveUser(name)
				return err
			}
			if err := e.markSupernodeDirtyLocked(); err != nil {
				return err
			}
			// Write-back: the enrollment's path rotation rides the batch
			// drain, flushed while the supernode lock is still held.
			return e.drainWithRetryLocked()
		})
	})
	if err != nil {
		return 0, err
	}
	return userID, nil
}

// RemoveUser revokes a user's volume access. Because keys never leave
// the enclave, this is a single metadata re-encryption: no file data is
// touched (§VII-E).
func (e *Enclave) RemoveUser(name string) error {
	return e.sgx.Ecall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if err := e.requireAuthLocked(); err != nil {
			return err
		}
		if !e.isOwnerLocked() {
			return fmt.Errorf("%w: only the owner administers users", ErrAccessDenied)
		}
		if err := e.drainWithRetryLocked(); err != nil {
			return err
		}
		return e.withSupernodeLockLocked(func() error {
			removedID, err := e.super.RemoveUser(name)
			if err != nil {
				return err
			}
			// O(log n) path rotation: only the evicted user's leaf-to-root
			// keys are re-wrapped; file data is untouched (§VII-E).
			if err := e.groupRevokeLocked(removedID); err != nil {
				return err
			}
			if err := e.markSupernodeDirtyLocked(); err != nil {
				return err
			}
			return e.drainWithRetryLocked()
		})
	})
}

// ListUsers returns the owner plus all authorized users.
func (e *Enclave) ListUsers() ([]metadata.User, error) {
	var out []metadata.User
	err := e.sgx.Ecall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if err := e.requireAuthLocked(); err != nil {
			return err
		}
		out = append(out, e.super.Owner)
		out = append(out, e.super.Users...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// withSupernodeLockLocked runs fn while holding the store lock on the
// supernode object, reloading it first so the mutation applies to the
// freshest version (§V-A).
func (e *Enclave) withSupernodeLockLocked(fn func() error) error {
	var release func()
	if err := e.timedOcall(e.metrics.metaIO, func() error {
		var err error
		release, err = e.store.Lock(SupernodeObjectName)
		return err
	}); err != nil {
		return fmt.Errorf("locking supernode: %w", err)
	}
	defer release()
	if err := e.loadSupernodeLocked(); err != nil {
		return err
	}
	return fn()
}

// loadSupernodeLocked fetches, verifies and decodes the supernode.
func (e *Enclave) loadSupernodeLocked() error {
	var blob []byte
	var version uint64
	if err := e.timedOcall(e.metrics.metaIO, func() error {
		var err error
		blob, version, err = e.store.GetVersioned(SupernodeObjectName)
		return err
	}); err != nil {
		return fmt.Errorf("fetching supernode: %w", err)
	}
	p, body, err := metadata.Open(e.rootKey, blob)
	if err != nil {
		return fmt.Errorf("verifying supernode: %w", err)
	}
	if p.Type != metadata.TypeSupernode {
		return fmt.Errorf("%w: object %q is a %s", metadata.ErrMalformed, SupernodeObjectName, p.Type)
	}
	if e.cfg.FreshnessMerkle {
		// The supernode's version is bound to the root commitment like
		// every other metadata object — a whole-snapshot rollback fails
		// right here, before authentication can proceed.
		if err := e.checkFreshnessMerkleLocked(p.UUID, p.Version); err != nil {
			return err
		}
	} else if last, ok := e.freshness[p.UUID]; ok && p.Version < last {
		return fmt.Errorf("%w: supernode version %d < seen %d", ErrStaleMetadata, p.Version, last)
	}
	super, err := metadata.DecodeSupernodeBody(body)
	if err != nil {
		return err
	}
	e.super = super
	e.superBlob = blob
	e.superVersion = p.Version
	e.noteSeenLocked(p.UUID, p.Version)
	_ = version
	return nil
}

// flushSupernodeLocked seals and uploads the supernode, bumping its
// version.
func (e *Enclave) flushSupernodeLocked() error {
	e.superVersion++
	p := metadata.Preamble{
		Type:    metadata.TypeSupernode,
		UUID:    e.super.VolumeUUID,
		Parent:  uuid.Nil,
		Version: e.superVersion,
	}
	blob, err := metadata.Seal(e.rootKey, p, e.super.EncodeBody())
	if err != nil {
		return fmt.Errorf("sealing supernode: %w", err)
	}
	if err := e.timedOcall(e.metrics.metaIO, func() error {
		_, err := e.store.PutVersioned(SupernodeObjectName, blob)
		return err
	}); err != nil {
		return fmt.Errorf("uploading supernode: %w", err)
	}
	e.superBlob = blob
	e.noteSeenLocked(e.super.VolumeUUID, e.superVersion)
	e.metrics.metadataFlushes.Inc()
	e.metrics.metadataBytes.Add(int64(len(blob)))
	return e.recordFreshnessLocked(map[uuid.UUID]uint64{e.super.VolumeUUID: e.superVersion})
}
