package enclave

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"nexus/internal/metadata"
	"nexus/internal/sgx"
)

// streamMemStore extends the in-memory object store with the optional
// streaming put surface. It copies every segment (per the ObjectStore
// ownership rules — the enclave reuses the backing buffer) and applies
// the object atomically: a mid-stream failure leaves the prior version
// untouched.
type streamMemStore struct {
	*memObjectStore

	mu         sync.Mutex
	streamPuts int
	failAfter  int // inject an error once this many bytes arrive (0 = never)
}

func newStreamMemStore() *streamMemStore {
	return &streamMemStore{memObjectStore: newMemObjectStore()}
}

func (s *streamMemStore) PutVersionedStream(name string, total int, next func() ([]byte, error)) (uint64, error) {
	buf := make([]byte, 0, total)
	for {
		seg, err := next()
		if err != nil {
			return 0, err
		}
		if seg == nil {
			break
		}
		buf = append(buf, seg...)
		s.mu.Lock()
		fail := s.failAfter > 0 && len(buf) >= s.failAfter
		s.mu.Unlock()
		if fail {
			return 0, errors.New("injected mid-stream failure")
		}
	}
	if len(buf) != total {
		return 0, fmt.Errorf("stream put %s: got %d bytes, announced %d", name, len(buf), total)
	}
	s.mu.Lock()
	s.streamPuts++
	s.mu.Unlock()
	return s.PutVersioned(name, buf)
}

func (s *streamMemStore) streamPutCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streamPuts
}

func (s *streamMemStore) setFailAfter(n int) {
	s.mu.Lock()
	s.failAfter = n
	s.mu.Unlock()
}

// newAuthedEnclave builds an enclave over store with the given config
// overrides, creates a volume, and authenticates its owner.
func newAuthedEnclave(t *testing.T, cfg Config) *Enclave {
	t.Helper()
	owner := newIdentity(t, "owen")
	platform, err := sgx.NewPlatform(sgx.PlatformConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	container, err := platform.CreateEnclave(nexusImage)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SGX = container
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := e.CreateVolume(owner.name, owner.pub)
	if err != nil {
		t.Fatal(err)
	}
	volID, err := e.VolumeUUID()
	if err != nil {
		t.Fatal(err)
	}
	if err := authenticate(t, e, owner, sealed, volID); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestStreamingWriteFileRoundTrip drives WriteFile through the
// encrypt-while-upload path (cutoff forced to one byte) at several
// worker widths: the store must receive the full sealed object through
// the stream surface, round trips stay byte-identical, and tampering
// with the streamed object still trips chunk authentication.
func TestStreamingWriteFileRoundTrip(t *testing.T) {
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(i*37 + 5)
	}
	for _, workers := range []int{1, 2, 8} {
		store := newStreamMemStore()
		e := newAuthedEnclave(t, Config{Store: store, ChunkSize: 4096, CryptoWorkers: workers, StreamPutCutoff: 1})

		if err := e.Touch("/blob"); err != nil {
			t.Fatal(err)
		}
		if err := e.WriteFile("/blob", data); err != nil {
			t.Fatalf("workers %d: WriteFile: %v", workers, err)
		}
		if store.streamPutCount() == 0 {
			t.Fatalf("workers %d: WriteFile did not use the streaming put", workers)
		}
		got, err := e.ReadFile("/blob")
		if err != nil {
			t.Fatalf("workers %d: ReadFile: %v", workers, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("workers %d: streamed round trip mismatch", workers)
		}

		// Corrupt the streamed data object (the only object whose length
		// is the sealed size) and expect authentication to fail.
		sealedLen := len(data) + (len(data)/4096)*16
		names, err := store.mem.List("")
		if err != nil {
			t.Fatal(err)
		}
		corrupted := false
		for _, n := range names {
			blob, err := store.mem.Get(n)
			if err != nil {
				t.Fatal(err)
			}
			if len(blob) == sealedLen {
				mut := bytes.Clone(blob)
				mut[len(mut)/3] ^= 1
				if err := store.mem.Put(n, mut); err != nil {
					t.Fatal(err)
				}
				corrupted = true
			}
		}
		if !corrupted {
			t.Fatalf("workers %d: streamed data object not found on store", workers)
		}
		if _, err := e.ReadFile("/blob"); !errors.Is(err, metadata.ErrTampered) {
			t.Fatalf("workers %d: tampered read = %v, want ErrTampered", workers, err)
		}
	}
}

// TestStreamingPutFailureKeepsOldContent checks the failure contract of
// the streamed path: a mid-stream error surfaces from WriteFile, the
// store keeps the previous object version (streamed puts are atomic),
// and a subsequent read — after the enclave drops its cached filenode
// with the never-persisted rotated keys — returns the old contents.
func TestStreamingPutFailureKeepsOldContent(t *testing.T) {
	store := newStreamMemStore()
	e := newAuthedEnclave(t, Config{Store: store, ChunkSize: 4096, CryptoWorkers: 2, StreamPutCutoff: 1})

	v1 := bytes.Repeat([]byte("first version of the file "), 1024)
	if err := e.Touch("/f"); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFile("/f", v1); err != nil {
		t.Fatal(err)
	}

	store.setFailAfter(1024)
	v2 := bytes.Repeat([]byte("second version, bigger and doomed "), 2048)
	if err := e.WriteFile("/f", v2); err == nil {
		t.Fatal("WriteFile with mid-stream store failure succeeded")
	}
	store.setFailAfter(0)

	got, err := e.ReadFile("/f")
	if err != nil {
		t.Fatalf("ReadFile after failed streamed write: %v", err)
	}
	if !bytes.Equal(got, v1) {
		t.Fatal("failed streamed write corrupted the stored contents")
	}
}

// TestSmallWritesSkipStreaming pins the cutoff semantics: writes below
// StreamPutCutoff take the batch put even on stream-capable stores, and
// a negative cutoff disables streaming entirely.
func TestSmallWritesSkipStreaming(t *testing.T) {
	store := newStreamMemStore()
	e := newAuthedEnclave(t, Config{Store: store, ChunkSize: 4096, StreamPutCutoff: 1 << 20})
	if err := e.Touch("/small"); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFile("/small", make([]byte, 8<<10)); err != nil {
		t.Fatal(err)
	}
	if n := store.streamPutCount(); n != 0 {
		t.Fatalf("below-cutoff write used streaming put %d times", n)
	}

	store2 := newStreamMemStore()
	e2 := newAuthedEnclave(t, Config{Store: store2, ChunkSize: 4096, StreamPutCutoff: -1})
	if err := e2.Touch("/big"); err != nil {
		t.Fatal(err)
	}
	if err := e2.WriteFile("/big", make([]byte, 64<<10)); err != nil {
		t.Fatal(err)
	}
	if n := store2.streamPutCount(); n != 0 {
		t.Fatalf("negative cutoff still streamed %d times", n)
	}
}

// TestWriteFilePoolMetrics checks that repeated same-sized writes hit
// the enclave's chunk-buffer arena and that the hit/miss counters show
// up in Stats. The first write leases a fresh class (a miss); later
// writes of the same size reuse it (hits).
func TestWriteFilePoolMetrics(t *testing.T) {
	e := newAuthedEnclave(t, Config{Store: newMemObjectStore(), ChunkSize: 4096})
	if err := e.Touch("/f"); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 32<<10)
	if err := e.WriteFile("/f", data); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.ChunkPoolMisses == 0 {
		t.Fatalf("first write: ChunkPoolMisses = 0, want >0 (stats: %+v)", s)
	}
	if s.ChunkPoolHits != 0 {
		t.Fatalf("first write: ChunkPoolHits = %d, want 0", s.ChunkPoolHits)
	}
	for i := 0; i < 3; i++ {
		if err := e.WriteFile("/f", data); err != nil {
			t.Fatal(err)
		}
	}
	s = e.Stats()
	if s.ChunkPoolHits < 3 {
		t.Fatalf("repeat writes: ChunkPoolHits = %d, want >= 3", s.ChunkPoolHits)
	}
	e.ResetStats()
	s = e.Stats()
	if s.ChunkPoolHits != 0 || s.ChunkPoolMisses != 0 {
		t.Fatalf("ResetStats left pool counters at hits=%d misses=%d", s.ChunkPoolHits, s.ChunkPoolMisses)
	}
}
