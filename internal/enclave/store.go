package enclave

import (
	"bytes"
	"fmt"
	"time"

	"nexus/internal/backend"
	"nexus/internal/metadata"
	"nexus/internal/sgx"
	"nexus/internal/uuid"
)

// metaCache holds decrypted metadata objects inside the enclave, keyed by
// UUID and validated against the backing store's version numbers (the
// prototype caches metadata "unencrypted in enclave memory", §V-B). Its
// memory is charged against the SGX EPC budget; on exhaustion the cache
// is dropped wholesale, modelling EPC pressure.
type metaCache struct {
	sgx     *sgx.Enclave
	entries map[uuid.UUID]*cacheEntry
}

type cacheEntry struct {
	version uint64 // store version the decode came from
	// objVersion is the sealed preamble version of the cached object.
	// Cache hits must report it — not the freshness-map entry, which can
	// be absent (pruned, or lost across a remount) and would make the
	// next flush restart at version 1 and trip ErrStaleMetadata.
	objVersion uint64
	obj        any   // *metadata.Dirnode or *metadata.Filenode
	charged    int64 // EPC bytes charged
}

func newMetaCache(container *sgx.Enclave) *metaCache {
	return &metaCache{sgx: container, entries: make(map[uuid.UUID]*cacheEntry)}
}

func (c *metaCache) get(id uuid.UUID, version uint64) (any, uint64, bool) {
	if c == nil {
		return nil, 0, false
	}
	entry, ok := c.entries[id]
	if !ok || entry.version != version {
		return nil, 0, false
	}
	return entry.obj, entry.objVersion, true
}

func (c *metaCache) put(id uuid.UUID, version, objVersion uint64, obj any, approxSize int64) {
	if c == nil {
		return
	}
	if old, ok := c.entries[id]; ok {
		c.sgx.FreeEPC(old.charged)
		delete(c.entries, id)
	}
	if err := c.sgx.AllocEPC(approxSize); err != nil {
		// EPC pressure: evict everything and retry once.
		c.clear()
		if err := c.sgx.AllocEPC(approxSize); err != nil {
			return // object stays uncached
		}
	}
	c.entries[id] = &cacheEntry{version: version, objVersion: objVersion, obj: obj, charged: approxSize}
}

func (c *metaCache) invalidate(id uuid.UUID) {
	if c == nil {
		return
	}
	if old, ok := c.entries[id]; ok {
		c.sgx.FreeEPC(old.charged)
		delete(c.entries, id)
	}
}

func (c *metaCache) clear() {
	if c == nil {
		return
	}
	for id, entry := range c.entries {
		c.sgx.FreeEPC(entry.charged)
		delete(c.entries, id)
	}
}

// objName is the store name of a metadata or data object.
func objName(id uuid.UUID) string { return id.String() }

// timedOcall runs fn as an ocall, charging its wall time to the given
// meter (metadata vs data I/O, for the Table 5a/5b breakdowns: a
// cumulative ns counter plus a latency histogram). It is the single
// choke point for all store I/O, so storage-substrate faults
// (unreachable service, timeout, interrupted exchange) are classified
// here: they gain the ErrStoreUnavailable sentinel while keeping the
// backend sentinel in the chain.
func (e *Enclave) timedOcall(m ocallMeter, fn func() error) error {
	start := time.Now()
	err := e.sgx.Ocall(fn)
	elapsed := time.Since(start)
	m.ns.Add(int64(elapsed))
	m.lat.Record(elapsed)
	if err != nil && backend.IsUnavailable(err) {
		return fmt.Errorf("%w: %w", ErrStoreUnavailable, err)
	}
	return err
}

// fetchObject retrieves raw metadata object bytes through the ocall
// surface.
func (e *Enclave) fetchObject(name string) ([]byte, uint64, error) {
	var data []byte
	var version uint64
	err := e.timedOcall(e.metrics.metaIO, func() error {
		var err error
		data, version, err = e.store.GetVersioned(name)
		return err
	})
	if err != nil {
		return nil, 0, err
	}
	return data, version, nil
}

// putObject uploads raw metadata object bytes through the ocall surface.
func (e *Enclave) putObject(name string, data []byte) (uint64, error) {
	var version uint64
	err := e.timedOcall(e.metrics.metaIO, func() error {
		var err error
		version, err = e.store.PutVersioned(name, data)
		return err
	})
	return version, err
}

// fetchDataObject and putDataObject move encrypted file contents; their
// time is accounted separately from metadata I/O.
func (e *Enclave) fetchDataObject(name string) ([]byte, uint64, error) {
	var data []byte
	var version uint64
	err := e.timedOcall(e.metrics.dataIO, func() error {
		var err error
		data, version, err = e.store.GetVersioned(name)
		return err
	})
	if err != nil {
		return nil, 0, err
	}
	return data, version, nil
}

func (e *Enclave) putDataObject(name string, data []byte) (uint64, error) {
	var version uint64
	err := e.timedOcall(e.metrics.dataIO, func() error {
		var err error
		version, err = e.store.PutVersioned(name, data)
		return err
	})
	return version, err
}

// deleteObject removes an object through the ocall surface.
func (e *Enclave) deleteObject(name string) error {
	return e.timedOcall(e.metrics.metaIO, func() error { return e.store.Delete(name) })
}

// lockObject acquires the store's advisory lock on an object.
func (e *Enclave) lockObject(name string) (func(), error) {
	var release func()
	err := e.timedOcall(e.metrics.metaIO, func() error {
		var err error
		release, err = e.store.Lock(name)
		return err
	})
	if err != nil {
		return nil, err
	}
	return release, nil
}

// openVerified fetches an object, opens it with the rootkey, and applies
// the traversal checks: expected type, expected UUID, expected parent
// (the file-swap defence, §IV-A3) and version freshness (§VI-C).
func (e *Enclave) openVerified(id uuid.UUID, wantType metadata.ObjType, wantParent uuid.UUID) (metadata.Preamble, []byte, uint64, error) {
	blob, storeVersion, err := e.fetchObject(objName(id))
	if err != nil {
		return metadata.Preamble{}, nil, 0, fmt.Errorf("fetching %s %s: %w", wantType, id, err)
	}
	p, body, err := e.openBlobVerified(id, blob, wantType, wantParent)
	if err != nil {
		return metadata.Preamble{}, nil, 0, err
	}
	return p, body, storeVersion, nil
}

// loadDirnode returns the directory at id, from the decrypted cache when
// the store version is unchanged.
func (e *Enclave) loadDirnode(id, parent uuid.UUID) (*metadata.Dirnode, uint64, error) {
	// A write-back dirty copy shadows both the cache and the store: it
	// carries mutations the store has not seen yet. The returned version
	// is the store version the copy derives from, so an eventual flush
	// at version+1 lines up with the on-store preamble.
	if d, base, ok := e.dirtyDirnodeLocked(id); ok {
		if d.Parent != parent {
			return nil, 0, fmt.Errorf("%w: dirnode %s has parent %s, want %s (file-swap defence)",
				metadata.ErrTampered, id, d.Parent, parent)
		}
		return d, base, nil
	}
	if e.cache != nil {
		// Fetch is served by the AFS client cache (no network) when the
		// callback promise is intact; its version validates the decrypted
		// in-enclave copy, and the bytes are reused on a decode miss.
		blob, storeVersion, err := e.fetchObject(objName(id))
		if err != nil {
			return nil, 0, fmt.Errorf("fetching dirnode %s: %w", id, err)
		}
		if obj, objVersion, ok := e.cache.get(id, storeVersion); ok {
			if d, ok := obj.(*metadata.Dirnode); ok && d.Parent == parent {
				e.metrics.metadataCacheHits.Inc()
				return d, objVersion, nil
			}
		}
		p, body, err := e.openBlobVerified(id, blob, metadata.TypeDirnode, parent)
		if err != nil {
			return nil, 0, err
		}
		d, err := metadata.DecodeDirnodeBody(id, parent, body)
		if err != nil {
			return nil, 0, err
		}
		e.cache.put(id, storeVersion, p.Version, d, int64(len(body))+256)
		return d, p.Version, nil
	}

	p, body, _, err := e.openVerified(id, metadata.TypeDirnode, parent)
	if err != nil {
		return nil, 0, err
	}
	d, err := metadata.DecodeDirnodeBody(id, parent, body)
	if err != nil {
		return nil, 0, err
	}
	return d, p.Version, nil
}

// openBlobVerified is openVerified for already-fetched bytes.
func (e *Enclave) openBlobVerified(id uuid.UUID, blob []byte, wantType metadata.ObjType, wantParent uuid.UUID) (metadata.Preamble, []byte, error) {
	return e.openBlobChecked(id, blob, wantType, &wantParent)
}

// openBlobChecked verifies a fetched blob; a nil wantParent skips the
// parent check (used for hardlinked filenodes).
func (e *Enclave) openBlobChecked(id uuid.UUID, blob []byte, wantType metadata.ObjType, wantParent *uuid.UUID) (metadata.Preamble, []byte, error) {
	p, body, err := metadata.Open(e.rootKey, blob)
	if err != nil {
		return metadata.Preamble{}, nil, fmt.Errorf("verifying %s %s: %w", wantType, id, err)
	}
	e.metrics.metadataLoads.Inc()
	if p.Type != wantType {
		return metadata.Preamble{}, nil, fmt.Errorf("%w: object %s is a %s, want %s",
			metadata.ErrTampered, id, p.Type, wantType)
	}
	if p.UUID != id {
		return metadata.Preamble{}, nil, fmt.Errorf("%w: object %s claims UUID %s",
			metadata.ErrTampered, id, p.UUID)
	}
	if wantParent != nil && p.Parent != *wantParent {
		return metadata.Preamble{}, nil, fmt.Errorf("%w: object %s has parent %s, want %s (file-swap defence)",
			metadata.ErrTampered, id, p.Parent, *wantParent)
	}
	if last, ok := e.freshness[id]; ok && p.Version < last {
		return metadata.Preamble{}, nil, fmt.Errorf("%w: %s %s version %d < seen %d",
			ErrStaleMetadata, wantType, id, p.Version, last)
	}
	if err := e.checkFreshnessLocked(id, p.Version); err != nil {
		return metadata.Preamble{}, nil, err
	}
	e.noteSeenLocked(id, p.Version)
	return p, body, nil
}

// bucketLoaderFor returns a loader that fetches, verifies (including the
// main dirnode's recorded MAC, §V-B) and decodes dirnode buckets.
func (e *Enclave) bucketLoaderFor(d *metadata.Dirnode) func(i int) (*metadata.Bucket, error) {
	return func(i int) (*metadata.Bucket, error) {
		ref := d.Refs[i]
		blob, _, err := e.fetchObject(objName(ref.UUID))
		if err != nil {
			return nil, fmt.Errorf("fetching bucket %s: %w", ref.UUID, err)
		}
		tag, err := metadata.Tag(blob)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(tag[:], ref.MAC[:]) {
			return nil, fmt.Errorf("%w: bucket %s of dirnode %s",
				metadata.ErrBucketMACMismatch, ref.UUID, d.UUID)
		}
		_, body, err := e.openBlobVerified(ref.UUID, blob, metadata.TypeDirBucket, d.UUID)
		if err != nil {
			return nil, err
		}
		return metadata.DecodeBucketBody(body)
	}
}

// flushDirnodeLocked seals and uploads a dirnode's dirty buckets and its
// main object at the given (already bumped) version.
//
// Bucket writes are copy-on-write: each dirty bucket that already exists
// on the store is rewritten under a fresh UUID, the main object (written
// last) references the new UUIDs, and the superseded objects are only
// deleted on the *next* flush. Unlocked readers therefore always find a
// consistent (main, buckets) snapshot — either entirely old or entirely
// new — with no torn window between the two writes.
// The flush is transactional with respect to the in-memory dirnode:
// every mutation — the Retired truncation, bucket-UUID reassignment,
// Refs/MAC updates, Dirty/OnStore flips, freshness bumps — is staged in
// locals and applied only after every upload has succeeded. A fault at
// any ocall leaves the in-memory state exactly as it was, so retrying
// the flush (same version) converges memory and store. The only residue
// of a failed attempt is an uploaded-but-unreferenced bucket object
// under a UUID nothing points to, which is invisible to readers.
func (e *Enclave) flushDirnodeLocked(d *metadata.Dirnode, version uint64) error {
	// Phase 1: delete buckets retired by the previous flush — any reader
	// still using them would be two main-object generations behind.
	// Deletion is idempotent (missing objects are tolerated), so a
	// failure later in this flush can safely re-run it; the in-memory
	// Retired list is only truncated at commit.
	for _, old := range d.Retired {
		if err := e.deleteObject(objName(old)); err != nil && !isNotExist(err) {
			return fmt.Errorf("deleting retired bucket %s: %w", old, err)
		}
	}

	// Phase 2: stage every upload. Copy-on-write buckets that already
	// exist on the store get a fresh UUID; the staged Refs/Retired tables
	// describe the post-flush state without touching the dirnode yet.
	type bucketPlan struct {
		idx     int
		newUUID uuid.UUID
		retire  bool
		blob    []byte
		tag     [16]byte
	}
	var plans []bucketPlan
	stagedRefs := make([]metadata.BucketRef, len(d.Refs))
	copy(stagedRefs, d.Refs)
	var stagedRetired []uuid.UUID
	for _, i := range d.DirtyBuckets() {
		b := d.Buckets[i]
		pl := bucketPlan{idx: i, newUUID: b.UUID}
		if b.OnStore {
			pl.retire = true
			pl.newUUID = uuid.New()
			stagedRetired = append(stagedRetired, b.UUID)
		}
		blob, err := metadata.Seal(e.rootKey, metadata.Preamble{
			Type:    metadata.TypeDirBucket,
			UUID:    pl.newUUID,
			Parent:  d.UUID,
			Version: version,
		}, b.EncodeBody())
		if err != nil {
			return fmt.Errorf("sealing bucket %s: %w", pl.newUUID, err)
		}
		tag, err := metadata.Tag(blob)
		if err != nil {
			return err
		}
		pl.blob, pl.tag = blob, tag
		stagedRefs[i] = metadata.BucketRef{UUID: pl.newUUID, Count: d.Refs[i].Count, MAC: tag}
		plans = append(plans, pl)
	}

	// The main object is sealed from the staged tables: swap them in for
	// the encode only (EncodeBody is a pure read).
	savedRefs, savedRetired := d.Refs, d.Retired
	d.Refs, d.Retired = stagedRefs, stagedRetired
	body := d.EncodeBody()
	d.Refs, d.Retired = savedRefs, savedRetired
	mainBlob, err := metadata.Seal(e.rootKey, metadata.Preamble{
		Type:    metadata.TypeDirnode,
		UUID:    d.UUID,
		Parent:  d.Parent,
		Version: version,
	}, body)
	if err != nil {
		return fmt.Errorf("sealing dirnode %s: %w", d.UUID, err)
	}

	// Phase 3: upload buckets first, the main object last, so readers
	// always find a consistent (main, buckets) snapshot — either entirely
	// old or entirely new — with no torn window between the writes.
	for _, pl := range plans {
		if _, err := e.putObject(objName(pl.newUUID), pl.blob); err != nil {
			return fmt.Errorf("uploading bucket %s: %w", pl.newUUID, err)
		}
	}
	storeVersion, err := e.putObject(objName(d.UUID), mainBlob)
	if err != nil {
		return fmt.Errorf("uploading dirnode %s: %w", d.UUID, err)
	}

	// Phase 4: commit. Every upload succeeded; apply the staged state.
	freshUpdates := map[uuid.UUID]uint64{d.UUID: version}
	for _, old := range savedRetired {
		freshUpdates[old] = 0
		delete(e.freshness, old)
	}
	for _, pl := range plans {
		b := d.Buckets[pl.idx]
		b.UUID = pl.newUUID
		b.Dirty = false
		b.OnStore = true
		e.noteSeenLocked(pl.newUUID, version)
		freshUpdates[pl.newUUID] = version
		e.metrics.metadataFlushes.Inc()
		e.metrics.metadataBytes.Add(int64(len(pl.blob)))
	}
	d.Refs, d.Retired = stagedRefs, stagedRetired
	e.noteSeenLocked(d.UUID, version)
	e.metrics.metadataFlushes.Inc()
	e.metrics.metadataBytes.Add(int64(len(mainBlob)))
	if e.cache != nil {
		e.cache.put(d.UUID, storeVersion, version, d, int64(len(body))+256)
	}
	return e.recordFreshnessLocked(freshUpdates)
}

// loadFilenode returns the file metadata at id. The parent-UUID check
// applies only to singly linked files: a hardlinked filenode is
// legitimately reachable from several directories, so its preamble
// records the primary link's parent and the dirnode entry's UUID binding
// provides the remaining structure integrity.
func (e *Enclave) loadFilenode(id, parent uuid.UUID) (*metadata.Filenode, uint64, error) {
	// Pending write-back creates shadow the store (the object may not
	// exist there yet).
	if f, base, ok := e.dirtyFilenodeLocked(id); ok {
		if !f.Parent.IsNil() && f.Parent != parent {
			return nil, 0, fmt.Errorf("%w: filenode %s has parent %s, want %s (file-swap defence)",
				metadata.ErrTampered, id, f.Parent, parent)
		}
		return f, base, nil
	}
	blob, storeVersion, err := e.fetchObject(objName(id))
	if err != nil {
		return nil, 0, fmt.Errorf("fetching filenode %s: %w", id, err)
	}
	if e.cache != nil {
		if obj, objVersion, ok := e.cache.get(id, storeVersion); ok {
			if f, ok := obj.(*metadata.Filenode); ok {
				if f.LinkCount > 1 || f.Parent.IsNil() || f.Parent == parent {
					e.metrics.metadataCacheHits.Inc()
					return f, objVersion, nil
				}
			}
		}
	}
	p, body, err := e.openBlobChecked(id, blob, metadata.TypeFilenode, nil)
	if err != nil {
		return nil, 0, err
	}
	f, err := metadata.DecodeFilenodeBody(id, p.Parent, body)
	if err != nil {
		return nil, 0, err
	}
	if f.LinkCount <= 1 && !f.Parent.IsNil() && f.Parent != parent {
		return nil, 0, fmt.Errorf("%w: filenode %s has parent %s, want %s (file-swap defence)",
			metadata.ErrTampered, id, f.Parent, parent)
	}
	if e.cache != nil {
		e.cache.put(id, storeVersion, p.Version, f, int64(len(body))+128)
	}
	return f, p.Version, nil
}

// flushFilenodeLocked seals and uploads a filenode at the given version.
func (e *Enclave) flushFilenodeLocked(f *metadata.Filenode, version uint64) error {
	blob, err := metadata.Seal(e.rootKey, metadata.Preamble{
		Type:    metadata.TypeFilenode,
		UUID:    f.UUID,
		Parent:  f.Parent,
		Version: version,
	}, f.EncodeBody())
	if err != nil {
		return fmt.Errorf("sealing filenode %s: %w", f.UUID, err)
	}
	storeVersion, err := e.putObject(objName(f.UUID), blob)
	if err != nil {
		return fmt.Errorf("uploading filenode %s: %w", f.UUID, err)
	}
	e.noteSeenLocked(f.UUID, version)
	e.metrics.metadataFlushes.Inc()
	e.metrics.metadataBytes.Add(int64(len(blob)))
	if e.cache != nil {
		e.cache.put(f.UUID, storeVersion, version, f, int64(len(blob))+128)
	}
	return e.recordFreshnessLocked(map[uuid.UUID]uint64{f.UUID: version})
}
