package enclave

import (
	"bytes"
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"

	"nexus/internal/metadata"
	"nexus/internal/serial"
	"nexus/internal/sgx"
	"nexus/internal/uuid"
)

// The synchronous, mutually attested exchange variant (§VI-B).
//
// The asynchronous protocol of Fig. 4 keeps the recipient enclave's
// long-term ECDH keypair fixed, so it lacks perfect forward secrecy: an
// attacker who ever extracts that private key can decrypt every grant
// recorded off the wire. The paper proposes a synchronous alternative in
// which "both parties generate ephemeral ECDH keys on every exchange and
// mutually attest their enclaves", trading an extra protocol round for
// PFS. This file implements that variant:
//
//	recipient: BeginMutualExchange  → fresh ephemeral key, attested (m1')
//	owner:     GrantAccessMutual    → verifies m1', fresh ephemeral key,
//	                                  attested, rootkey under
//	                                  ECDH(eph_o, eph_r)        (m2')
//	recipient: AcceptMutualGrant    → verifies the owner's enclave too,
//	                                  derives the secret, then discards
//	                                  its ephemeral key.
//
// Both ephemeral private keys die with the exchange, so recorded
// messages are undecryptable afterwards even if every long-term key
// leaks.

// MutualGrant is m2' of the synchronous exchange.
type MutualGrant struct {
	VolumeUUID uuid.UUID
	// OwnerEphemeralKey is the owner enclave's fresh ECDH public key,
	// bound to the owner's enclave by OwnerQuote.
	OwnerEphemeralKey []byte
	OwnerQuote        *sgx.Quote
	Nonce             []byte
	Ciphertext        []byte
	OwnerSig          []byte
}

func (g *MutualGrant) signedPortion() []byte {
	quote := g.OwnerQuote.Encode()
	w := serial.NewWriter(128 + len(g.OwnerEphemeralKey) + len(quote) + len(g.Ciphertext))
	w.WriteRaw(g.VolumeUUID[:])
	w.WriteBytes(g.OwnerEphemeralKey)
	w.WriteBytes(quote)
	w.WriteBytes(g.Nonce)
	w.WriteBytes(g.Ciphertext)
	return w.Bytes()
}

// Encode serializes the grant.
func (g *MutualGrant) Encode() []byte {
	body := g.signedPortion()
	w := serial.NewWriter(len(body) + len(g.OwnerSig) + 8)
	w.WriteBytes(body)
	w.WriteBytes(g.OwnerSig)
	return w.Bytes()
}

// DecodeMutualGrant parses a grant produced by Encode.
func DecodeMutualGrant(b []byte) (*MutualGrant, error) {
	r := serial.NewReader(b)
	body := r.ReadBytes(8192, "mutual grant body")
	sig := r.ReadBytes(256, "mutual grant signature")
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrExchangeInvalid, err)
	}
	br := serial.NewReader(body)
	g := &MutualGrant{OwnerSig: sig}
	br.ReadRawInto(g.VolumeUUID[:], "mutual grant volume uuid")
	g.OwnerEphemeralKey = br.ReadBytes(256, "mutual grant ephemeral key")
	quoteBytes := br.ReadBytes(2048, "mutual grant owner quote")
	g.Nonce = br.ReadBytes(64, "mutual grant nonce")
	g.Ciphertext = br.ReadBytes(256, "mutual grant ciphertext")
	if err := br.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrExchangeInvalid, err)
	}
	q, err := sgx.DecodeQuote(quoteBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrExchangeInvalid, err)
	}
	g.OwnerQuote = q
	return g, nil
}

// BeginMutualExchange starts the synchronous exchange on the recipient:
// it generates a fresh ephemeral ECDH keypair (kept only in enclave
// state until AcceptMutualGrant consumes it), quotes it, and returns the
// signed offer.
func (e *Enclave) BeginMutualExchange(userName string, sign Signer) ([]byte, error) {
	var out []byte
	err := e.sgx.Ecall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		eph, err := ecdh.P256().GenerateKey(rand.Reader)
		if err != nil {
			return fmt.Errorf("generating ephemeral key: %w", err)
		}
		pub := eph.PublicKey().Bytes()
		quote, err := e.sgx.Quote(keyDigest(pub))
		if err != nil {
			return fmt.Errorf("quoting ephemeral key: %w", err)
		}
		sig, err := sign(quote.Encode())
		if err != nil {
			return fmt.Errorf("signing mutual offer: %w", err)
		}
		e.pendingMutual = eph
		out = (&Offer{
			UserName:   userName,
			EnclaveKey: pub,
			Quote:      quote,
			UserSig:    sig,
		}).Encode()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GrantAccessMutual is the owner side of the synchronous exchange: the
// recipient's ephemeral offer is verified exactly as in GrantAccess, the
// owner generates and *attests* its own ephemeral key, and the rootkey
// travels under the ephemeral-ephemeral ECDH secret. Both parties are
// mutually attested; neither ephemeral key survives the exchange.
func (e *Enclave) GrantAccessMutual(offerBytes []byte, userName string, userKey ed25519.PublicKey, sign Signer) ([]byte, error) {
	var out []byte
	err := e.sgx.Ecall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if err := e.requireAuthLocked(); err != nil {
			return err
		}
		if !e.isOwnerLocked() {
			return fmt.Errorf("%w: only the owner may grant volume access", ErrAccessDenied)
		}
		offer, err := DecodeOffer(offerBytes)
		if err != nil {
			return err
		}
		if !ed25519.Verify(userKey, offer.Quote.Encode(), offer.UserSig) {
			return fmt.Errorf("%w: offer not signed by %s's key", ErrExchangeInvalid, userName)
		}
		remoteKey, err := e.verifyAttestedKeyLocked(offer.Quote, offer.EnclaveKey)
		if err != nil {
			return err
		}

		if err := e.withSupernodeLockLocked(func() error {
			if _, err := e.super.AddUser(userName, userKey); err != nil &&
				!errors.Is(err, metadata.ErrUserExists) {
				return err
			}
			return e.flushSupernodeLocked()
		}); err != nil {
			return err
		}

		eph, err := ecdh.P256().GenerateKey(rand.Reader)
		if err != nil {
			return fmt.Errorf("generating ephemeral key: %w", err)
		}
		ephPub := eph.PublicKey().Bytes()
		ownerQuote, err := e.sgx.Quote(keyDigest(ephPub))
		if err != nil {
			return fmt.Errorf("quoting ephemeral key: %w", err)
		}
		secret, err := eph.ECDH(remoteKey)
		if err != nil {
			return fmt.Errorf("deriving exchange secret: %w", err)
		}
		nonce := make([]byte, 12)
		if _, err := rand.Read(nonce); err != nil {
			return fmt.Errorf("generating grant nonce: %w", err)
		}
		gcm, err := exchangeCipher(secret)
		if err != nil {
			return err
		}
		g := &MutualGrant{
			VolumeUUID:        e.super.VolumeUUID,
			OwnerEphemeralKey: ephPub,
			OwnerQuote:        ownerQuote,
			Nonce:             nonce,
			Ciphertext:        gcm.Seal(nil, nonce, e.rootKey, e.super.VolumeUUID[:]),
		}
		sig, err := sign(g.signedPortion())
		if err != nil {
			return fmt.Errorf("signing mutual grant: %w", err)
		}
		g.OwnerSig = sig
		out = g.Encode()
		// The owner's ephemeral private key dies here: eph goes out of
		// scope with nothing persisted.
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AcceptMutualGrant completes the synchronous exchange: it verifies the
// owner's signature *and* the owner enclave's attestation, derives the
// ephemeral-ephemeral secret, recovers and seals the rootkey, and
// discards the local ephemeral key (forward secrecy).
func (e *Enclave) AcceptMutualGrant(grantBytes []byte, ownerKey ed25519.PublicKey) (sealedRootKey []byte, volumeID uuid.UUID, err error) {
	err = e.sgx.Ecall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.pendingMutual == nil {
			return fmt.Errorf("%w: no mutual exchange in progress (ephemeral key already consumed?)", ErrExchangeInvalid)
		}
		g, err := DecodeMutualGrant(grantBytes)
		if err != nil {
			return err
		}
		if !ed25519.Verify(ownerKey, g.signedPortion(), g.OwnerSig) {
			return fmt.Errorf("%w: grant not signed by the volume owner", ErrExchangeInvalid)
		}
		// Mutual attestation: the *owner's* enclave must also be a
		// genuine NEXUS enclave, and its quote must bind the ephemeral
		// key in the grant.
		ownerEph, err := e.verifyAttestedKeyLocked(g.OwnerQuote, g.OwnerEphemeralKey)
		if err != nil {
			return err
		}
		eph := e.pendingMutual
		e.pendingMutual = nil // consume: forward secrecy
		secret, err := eph.ECDH(ownerEph)
		if err != nil {
			return fmt.Errorf("deriving exchange secret: %w", err)
		}
		gcm, err := exchangeCipher(secret)
		if err != nil {
			return err
		}
		rootKey, err := gcm.Open(nil, g.Nonce, g.Ciphertext, g.VolumeUUID[:])
		if err != nil {
			return fmt.Errorf("%w: rootkey decryption failed", ErrExchangeInvalid)
		}
		if len(rootKey) != metadata.RootKeySize {
			return fmt.Errorf("%w: recovered key has wrong size", ErrExchangeInvalid)
		}
		sealedRootKey, err = e.sgx.Seal(rootKey, g.VolumeUUID[:])
		if err != nil {
			return fmt.Errorf("sealing received rootkey: %w", err)
		}
		volumeID = g.VolumeUUID
		return nil
	})
	if err != nil {
		return nil, uuid.Nil, err
	}
	return sealedRootKey, volumeID, nil
}

// verifyAttestedKeyLocked validates a quote via the attestation service,
// checks it names this NEXUS enclave build, confirms it binds keyBytes,
// and returns the parsed ECDH public key.
func (e *Enclave) verifyAttestedKeyLocked(quote *sgx.Quote, keyBytes []byte) (*ecdh.PublicKey, error) {
	if e.ias == nil {
		return nil, ErrNoAttestation
	}
	var report *sgx.VerificationReport
	if err := e.sgx.Ocall(func() error {
		var err error
		report, err = e.ias.VerifyQuote(quote)
		return err
	}); err != nil {
		return nil, fmt.Errorf("%w: quote verification: %v", ErrExchangeInvalid, err)
	}
	if err := sgx.VerifyReport(e.ias.PublicKey(), report); err != nil {
		return nil, fmt.Errorf("%w: attestation report: %v", ErrExchangeInvalid, err)
	}
	if report.Quote.Measurement != e.sgx.Measurement() {
		return nil, fmt.Errorf("%w: quote from enclave %s, want %s (not a NEXUS enclave)",
			ErrExchangeInvalid, report.Quote.Measurement, e.sgx.Measurement())
	}
	if !bytes.Equal(report.Quote.ReportData[:sha256.Size], keyDigest(keyBytes)) {
		return nil, fmt.Errorf("%w: quote does not bind the presented ECDH key", ErrExchangeInvalid)
	}
	key, err := ecdh.P256().NewPublicKey(keyBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: bad ECDH key: %v", ErrExchangeInvalid, err)
	}
	return key, nil
}
