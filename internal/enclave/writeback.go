package enclave

// Write-back metadata flushing (DESIGN.md §12). In eager mode every
// mutating op seals and uploads its filenode and dirnode inline — one
// metadata round-trip per create/write, exactly the overhead the paper
// amortizes by caching decrypted metadata in enclave memory (§V-B). In
// write-back mode mutations instead mark their metadata dirty in an
// in-enclave dirty set and the set is drained in dependency order
// (children before the dirnodes that name them, deferred deletes last)
// at explicit barriers: SyncMetadata (File.Sync/Close and FS.Sync in
// vfs), ACL/user/sharing changes, DropCaches, and the op-count/byte
// high-water marks.
//
// Ordering invariants the drain preserves:
//
//   - a dirnode is uploaded only after every new child object it
//     references exists on the store (new filenodes and deeper dirnodes
//     flush first), so readers never chase a dangling entry;
//   - within one dirnode, flushDirnodeLocked's copy-on-write protocol
//     still writes buckets before the main object, so unlocked readers
//     see an entirely-old or entirely-new snapshot;
//   - deferred deletes run after all uploads, so no on-store dirnode
//     ever references a deleted object;
//   - the freshness table (when enabled) is rewritten once per batch,
//     absorbing every per-object update through e.freshSink.
//
// Deferred dirnode mutations also keep a per-node op log (insert/remove
// by name). Batched ops skip the per-op store lock; at drain time the
// directory's lock is taken, the on-store version re-read, and — if
// another client advanced it meanwhile — the log is replayed onto the
// fresh copy (last-writer-wins per name) instead of clobbering it.

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"nexus/internal/metadata"
	"nexus/internal/uuid"
)

// WritebackMode selects the metadata flush policy (Config.Writeback).
type WritebackMode string

const (
	// WritebackEager is the zero value: flush metadata inline on every
	// mutation (historical behaviour).
	WritebackEager WritebackMode = ""
	// WritebackOn defers metadata flushes into the dirty set.
	WritebackOn WritebackMode = "on"
	// WritebackOff is an explicit spelling of eager mode (the
	// ClientConfig knob maps "off" here).
	WritebackOff WritebackMode = "off"
)

// Defaults for the dirty-set high-water marks.
const (
	defaultWritebackMaxOps   = 64
	defaultWritebackMaxBytes = 4 << 20
)

// EPC charge estimates for dirty metadata held in enclave memory.
const (
	estFilenodeEPC = 512
	estDirnodeEPC  = 1024
	estDirOpBytes  = 256
)

type dirOpKind uint8

const (
	opInsert dirOpKind = iota
	opRemove
)

// dirOp is one deferred directory mutation, replayable onto a freshly
// loaded copy if the on-store directory advanced under us.
type dirOp struct {
	kind  dirOpKind
	entry metadata.DirEntry // opInsert
	name  string            // opRemove
}

// dirtyNode is one metadata object with pending changes. Exactly one of
// dir/file is set.
type dirtyNode struct {
	dir  *metadata.Dirnode
	file *metadata.Filenode
	// isNew marks an object the store has never seen (flushes at
	// version 1, no merge needed, cancellable without residue).
	isNew bool
	// base is the store version the dirty copy derives from (0 for new
	// objects); the drain flushes at base+1 when the store is unchanged.
	base uint64
	ops  []dirOp
	// charged is the EPC debt taken for holding this node pinned.
	charged int64
}

// pendingDelete is a store object whose removal is deferred to the end
// of the next drain (meta objects also clear their freshness entries).
type pendingDelete struct {
	id   uuid.UUID
	meta bool
}

// dirtySet tracks all pending metadata work. Guarded by Enclave.mu.
type dirtySet struct {
	maxOps   int
	maxBytes int64

	nodes   map[uuid.UUID]*dirtyNode
	deletes []pendingDelete
	delSeen map[uuid.UUID]bool

	// ops/bytes approximate the batched work since the last drain;
	// pressure is set when an EPC charge for a dirty node failed, which
	// forces a drain at the next opportunity.
	ops      int
	bytes    int64
	pressure bool

	// superDirty marks a pending supernode mutation (user table or
	// membership key tree rotation). It is only ever set by the
	// admin operations, which drain before releasing the supernode
	// store lock, so the flush below always runs under that lock.
	superDirty bool
}

func newDirtySet(maxOps int, maxBytes int64) *dirtySet {
	if maxOps <= 0 {
		maxOps = defaultWritebackMaxOps
	}
	if maxBytes <= 0 {
		maxBytes = defaultWritebackMaxBytes
	}
	return &dirtySet{
		maxOps:   maxOps,
		maxBytes: maxBytes,
		nodes:    make(map[uuid.UUID]*dirtyNode),
		delSeen:  make(map[uuid.UUID]bool),
	}
}

// WritebackEnabled reports whether the enclave defers metadata flushes.
func (e *Enclave) WritebackEnabled() bool {
	//lint:ignore lock-discipline wb is assigned once at construction; only its fields need mu
	return e.wb != nil
}

// dirtyDirnodeLocked returns the pending copy of a dirnode, which
// shadows both the decrypted cache and the store.
func (e *Enclave) dirtyDirnodeLocked(id uuid.UUID) (*metadata.Dirnode, uint64, bool) {
	if e.wb == nil {
		return nil, 0, false
	}
	n, ok := e.wb.nodes[id]
	if !ok || n.dir == nil {
		return nil, 0, false
	}
	return n.dir, n.base, true
}

// dirtyFilenodeLocked returns the pending copy of a filenode.
func (e *Enclave) dirtyFilenodeLocked(id uuid.UUID) (*metadata.Filenode, uint64, bool) {
	if e.wb == nil {
		return nil, 0, false
	}
	n, ok := e.wb.nodes[id]
	if !ok || n.file == nil {
		return nil, 0, false
	}
	return n.file, n.base, true
}

// chargeDirtyLocked takes the EPC debt for pinning a dirty node; on
// exhaustion the node stays unpinned (charged 0) and the set is flagged
// for an immediate drain.
func (e *Enclave) chargeDirtyLocked(n *dirtyNode, est int64) {
	if err := e.sgx.AllocEPC(est); err != nil {
		e.wb.pressure = true
		return
	}
	n.charged = est
}

// markNewFilenodeLocked registers a just-created filenode the store has
// never seen; it flushes at version 1 during the next drain.
func (e *Enclave) markNewFilenodeLocked(f *metadata.Filenode) {
	n := &dirtyNode{file: f, isNew: true}
	e.chargeDirtyLocked(n, estFilenodeEPC)
	e.wb.nodes[f.UUID] = n
	e.wb.ops++
	e.wb.bytes += estFilenodeEPC
	e.metrics.metadataDirty.Inc()
	e.metrics.dirtyGauge.Set(int64(len(e.wb.nodes)))
}

// markNewDirnodeLocked registers a just-created dirnode.
func (e *Enclave) markNewDirnodeLocked(d *metadata.Dirnode) {
	n := &dirtyNode{dir: d, isNew: true}
	e.chargeDirtyLocked(n, estDirnodeEPC)
	e.wb.nodes[d.UUID] = n
	e.wb.ops++
	e.wb.bytes += estDirnodeEPC
	e.metrics.metadataDirty.Inc()
	e.metrics.dirtyGauge.Set(int64(len(e.wb.nodes)))
}

// markDirnodeOpLocked records a deferred mutation of an existing
// dirnode (d must be the copy loadDirnode returned, so repeat ops hit
// the same in-memory object). base is the store version the first mark
// derives from; later marks keep the original base.
func (e *Enclave) markDirnodeOpLocked(d *metadata.Dirnode, base uint64, op dirOp) {
	n, ok := e.wb.nodes[d.UUID]
	if !ok {
		n = &dirtyNode{dir: d, base: base}
		e.chargeDirtyLocked(n, estDirnodeEPC)
		e.wb.nodes[d.UUID] = n
		e.wb.bytes += estDirnodeEPC
		e.metrics.dirtyGauge.Set(int64(len(e.wb.nodes)))
	}
	if !n.isNew {
		// New dirnodes carry their full state in memory; no log needed.
		n.ops = append(n.ops, op)
	}
	e.wb.ops++
	e.wb.bytes += estDirOpBytes
	e.metrics.metadataDirty.Inc()
}

// stageDeleteLocked defers a store-object removal to the end of the
// next drain (after all uploads, so nothing on store dangles).
func (e *Enclave) stageDeleteLocked(id uuid.UUID, meta bool) {
	if e.wb.delSeen[id] {
		return
	}
	e.wb.delSeen[id] = true
	e.wb.deletes = append(e.wb.deletes, pendingDelete{id: id, meta: meta})
	e.wb.ops++
}

// dropDirtyNodeLocked forgets a dirty node (flushed or cancelled),
// returning its EPC debt.
func (e *Enclave) dropDirtyNodeLocked(id uuid.UUID) {
	n, ok := e.wb.nodes[id]
	if !ok {
		return
	}
	if n.charged > 0 {
		e.sgx.FreeEPC(n.charged)
	}
	delete(e.wb.nodes, id)
	e.metrics.dirtyGauge.Set(int64(len(e.wb.nodes)))
}

// maybeDrainLocked drains when a high-water mark (op count, estimated
// bytes, or EPC pressure) is hit. High-water drains are best-effort —
// like page-cache writeback, transient store faults are absorbed here
// and durability is reported at the explicit barriers, which are
// idempotent drains of whatever remains.
func (e *Enclave) maybeDrainLocked() error {
	if e.wb == nil {
		return nil
	}
	if e.wb.ops < e.wb.maxOps && e.wb.bytes < e.wb.maxBytes && !e.wb.pressure {
		return nil
	}
	//lint:ignore unchecked-crypto-error high-water drains are best-effort (page-cache semantics); barriers report durability
	_ = e.drainLocked()
	return nil
}

// drainWithRetryLocked is the barrier-grade drain: ErrStoreUnavailable
// is retried with a short deterministic backoff (the drain is
// idempotent — already-flushed nodes have left the set), anything else
// surfaces immediately.
func (e *Enclave) drainWithRetryLocked() error {
	if e.wb == nil {
		return nil
	}
	var err error
	for attempt := 0; attempt < 4; attempt++ {
		if err = e.drainLocked(); err == nil || !errors.Is(err, ErrStoreUnavailable) {
			return err
		}
		time.Sleep(time.Duration(1<<(2*attempt)) * time.Millisecond)
	}
	return err
}

// drainLocked flushes the whole dirty set in dependency order and
// rewrites the freshness table once. On failure the un-flushed portion
// of the set is left intact for retry.
func (e *Enclave) drainLocked() error {
	if e.wb == nil || (len(e.wb.nodes) == 0 && len(e.wb.deletes) == 0 && !e.wb.superDirty &&
		len(e.casDecs) == 0 && len(e.casPendingDeletes) == 0) {
		return nil
	}
	span := e.metrics.tracer.Begin("enclave.flush_batch")
	span.SetTagInt("objects", int64(len(e.wb.nodes)))
	span.SetTagInt("ops", int64(e.wb.ops))
	span.SetTagInt("deletes", int64(len(e.wb.deletes)))
	defer span.End()

	// Per-object freshness updates from the individual flushes collect
	// in freshSink; the table is rewritten once below.
	e.freshSink = make(map[uuid.UUID]uint64)
	err := e.flushDirtyNodesLocked()
	if err == nil && e.wb.superDirty {
		// Final stage: the supernode (user-table changes and key-tree
		// rotations) flushes after every child object it could
		// reference, under the supernode store lock the admin operation
		// is still holding.
		if err = e.flushSupernodeLocked(); err == nil {
			e.wb.superDirty = false
		}
	}
	updates := e.freshSink
	e.freshSink = nil
	if err != nil {
		return err
	}
	e.wb.ops, e.wb.bytes, e.wb.pressure = 0, 0, false
	e.metrics.flushBatches.Inc()
	e.metrics.dirtyGauge.Set(0)
	if err := e.recordFreshnessLocked(updates); err != nil {
		return err
	}
	// CDC reference drops flush last of all: every filenode upload and
	// every staged filenode deletion has run, so a chunk that reaches
	// zero here is provably unreferenced by anything on the store. A
	// failure keeps the drops queued for the next drain (the table
	// overcounts in the interim, which only leaks).
	return e.casFlushDecsLocked()
}

// flushDirtyNodesLocked uploads dirty nodes children-first, then runs
// the deferred deletes.
func (e *Enclave) flushDirtyNodesLocked() error {
	// Stage 1: new filenodes, so no dirnode upload ever references a
	// file object missing from the store.
	var fileIDs []uuid.UUID
	for id, n := range e.wb.nodes {
		if n.file != nil {
			fileIDs = append(fileIDs, id)
		}
	}
	sortUUIDs(fileIDs)
	for _, id := range fileIDs {
		n := e.wb.nodes[id]
		if err := e.flushFilenodeLocked(n.file, n.base+1); err != nil {
			return err
		}
		e.dropDirtyNodeLocked(id)
	}

	// Stage 2: dirnodes deepest-first (depth = number of dirty ancestors
	// via the Parent chain), so a parent referencing a new child
	// directory uploads after the child exists.
	var dirIDs []uuid.UUID
	for id, n := range e.wb.nodes {
		if n.dir != nil {
			dirIDs = append(dirIDs, id)
		}
	}
	depths := make(map[uuid.UUID]int, len(dirIDs))
	for _, id := range dirIDs {
		depths[id] = e.dirtyDepthLocked(id)
	}
	sort.Slice(dirIDs, func(i, j int) bool {
		if depths[dirIDs[i]] != depths[dirIDs[j]] {
			return depths[dirIDs[i]] > depths[dirIDs[j]]
		}
		return bytes.Compare(dirIDs[i][:], dirIDs[j][:]) < 0
	})
	for _, id := range dirIDs {
		n := e.wb.nodes[id]
		if n.isNew {
			if err := e.flushDirnodeLocked(n.dir, n.base+1); err != nil {
				return err
			}
		} else if err := e.flushDirtyExistingDirnodeLocked(id, n); err != nil {
			return err
		}
		e.dropDirtyNodeLocked(id)
	}

	// Stage 3: deferred deletes, FIFO, last — nothing on the store
	// references these objects any more.
	for len(e.wb.deletes) > 0 {
		del := e.wb.deletes[0]
		if err := e.deleteObject(objName(del.id)); err != nil && !isNotExist(err) {
			return err
		}
		if del.meta {
			delete(e.freshness, del.id)
			if e.freshSink != nil {
				e.freshSink[del.id] = 0
			}
		}
		e.wb.deletes = e.wb.deletes[1:]
		delete(e.wb.delSeen, del.id)
	}
	return nil
}

// dirtyDepthLocked counts dirty ancestors of a dirty dirnode (bounded
// by the set size, so a corrupt parent cycle cannot loop forever).
func (e *Enclave) dirtyDepthLocked(id uuid.UUID) int {
	depth := 0
	cur := e.wb.nodes[id].dir
	for i := 0; i < len(e.wb.nodes); i++ {
		pn, ok := e.wb.nodes[cur.Parent]
		if !ok || pn.dir == nil {
			break
		}
		depth++
		cur = pn.dir
	}
	return depth
}

// flushDirtyExistingDirnodeLocked flushes a dirnode the store already
// holds: it takes the directory's store lock (deferred from the
// individual ops), re-reads the on-store version, and either flushes
// the in-memory copy at base+1 (store unchanged) or replays the op log
// onto the fresh copy (another client advanced it).
func (e *Enclave) flushDirtyExistingDirnodeLocked(id uuid.UUID, n *dirtyNode) error {
	release, err := e.lockObject(objName(id))
	if err != nil {
		return fmt.Errorf("locking dirnode %s: %w", id, err)
	}
	defer release()
	blob, _, err := e.fetchObject(objName(id))
	if err != nil {
		return fmt.Errorf("fetching dirnode %s: %w", id, err)
	}
	p, body, err := e.openBlobVerified(id, blob, metadata.TypeDirnode, n.dir.Parent)
	if err != nil {
		return err
	}
	if p.Version == n.base {
		return e.flushDirnodeLocked(n.dir, n.base+1)
	}
	fresh, err := metadata.DecodeDirnodeBody(id, n.dir.Parent, body)
	if err != nil {
		return err
	}
	if err := e.replayDirOpsLocked(fresh, n.ops); err != nil {
		return err
	}
	if err := e.flushDirnodeLocked(fresh, p.Version+1); err != nil {
		return err
	}
	n.dir = fresh
	return nil
}

// replayDirOpsLocked applies a deferred op log to a freshly loaded
// dirnode, last-writer-wins per name.
func (e *Enclave) replayDirOpsLocked(d *metadata.Dirnode, ops []dirOp) error {
	loader := e.bucketLoaderFor(d)
	for _, op := range ops {
		switch op.kind {
		case opInsert:
			err := d.Insert(op.entry, loader)
			if errors.Is(err, metadata.ErrEntryExists) {
				if _, rerr := d.Remove(op.entry.Name, loader); rerr != nil && !errors.Is(rerr, metadata.ErrEntryNotFound) {
					return rerr
				}
				err = d.Insert(op.entry, loader)
			}
			if err != nil {
				return err
			}
		case opRemove:
			if _, err := d.Remove(op.name, loader); err != nil && !errors.Is(err, metadata.ErrEntryNotFound) {
				return err
			}
		}
	}
	return nil
}

// createEntryWritebackLocked is createEntry's deferred path: the new
// child and the directory insert are marked dirty instead of flushed,
// and no store lock is taken (conflicts are merged at drain time).
func (e *Enclave) createEntryWritebackLocked(w walkResult, path, name string, kind metadata.EntryKind, symlinkTarget string) error {
	entry := metadata.DirEntry{
		Name:          name,
		UUID:          uuid.New(),
		Kind:          kind,
		SymlinkTarget: symlinkTarget,
	}
	if err := w.dir.Insert(entry, e.bucketLoaderFor(w.dir)); err != nil {
		if errors.Is(err, metadata.ErrEntryExists) {
			return fmt.Errorf("%w: %s", ErrExists, path)
		}
		return err
	}
	switch kind {
	case metadata.KindFile:
		e.markNewFilenodeLocked(metadata.NewFilenode(entry.UUID, w.dir.UUID, e.cfg.ChunkSize))
	case metadata.KindDir:
		e.markNewDirnodeLocked(metadata.NewDirnode(entry.UUID, w.dir.UUID, e.cfg.BucketSize))
	case metadata.KindSymlink:
		// Symlinks live entirely in the dirnode entry.
	}
	e.markDirnodeOpLocked(w.dir, w.version, dirOp{kind: opInsert, entry: entry})
	return e.maybeDrainLocked()
}

// removeWritebackLocked is Remove's deferred path. Object removals are
// staged (they run after all uploads in the drain); a remove of a
// still-pending create simply cancels it.
func (e *Enclave) removeWritebackLocked(w walkResult, path, name string) error {
	entry, err := w.dir.Lookup(name, e.bucketLoaderFor(w.dir))
	if err != nil {
		if errors.Is(err, metadata.ErrEntryNotFound) {
			return fmt.Errorf("%w: %s", ErrNotFound, path)
		}
		return err
	}

	switch entry.Kind {
	case metadata.KindDir:
		child, _, err := e.loadDirnode(entry.UUID, w.dir.UUID)
		if err != nil {
			return err
		}
		if child.EntryCount() != 0 {
			return fmt.Errorf("%w: %s", ErrNotEmpty, path)
		}
		if n, ok := e.wb.nodes[entry.UUID]; ok && n.isNew {
			// The store never saw it: cancelling the pending create is
			// the whole removal.
			e.dropDirtyNodeLocked(entry.UUID)
		} else {
			e.dropDirtyNodeLocked(entry.UUID)
			// In-memory Refs name on-store buckets (UUIDs are only
			// reassigned at flush) or never-stored ones, whose staged
			// deletes are tolerated as missing.
			for _, ref := range child.Refs {
				e.stageDeleteLocked(ref.UUID, true)
			}
			for _, old := range child.Retired {
				e.stageDeleteLocked(old, true)
			}
			e.stageDeleteLocked(entry.UUID, true)
			e.cache.invalidate(entry.UUID)
		}

	case metadata.KindFile:
		if n, ok := e.wb.nodes[entry.UUID]; ok && n.file != nil {
			// Pending create: cancel it; only the eagerly-uploaded data
			// (a legacy object, or CDC chunk references) needs dropping.
			if n.file.ContentDefined {
				e.casStageDecsLocked(n.file.Extents)
			} else if n.file.Size > 0 {
				e.stageDeleteLocked(n.file.DataUUID, false)
			}
			e.dropDirtyNodeLocked(entry.UUID)
		} else {
			// The link count races with concurrent WriteFile/Hardlink
			// from other clients, so the final-unlink decision stays
			// under the filenode's store lock even in write-back mode.
			fRelease, err := e.lockObject(objName(entry.UUID))
			if err != nil {
				return fmt.Errorf("locking filenode: %w", err)
			}
			defer fRelease()
			f, fv, err := e.loadFilenode(entry.UUID, w.dir.UUID)
			if err != nil {
				return err
			}
			if f.LinkCount > 1 {
				f.LinkCount--
				f.Parent = uuid.Nil
				if err := e.flushFilenodeLocked(f, fv+1); err != nil {
					return err
				}
			} else {
				if f.ContentDefined {
					// The drops flush at the drain's tail, after the staged
					// filenode deletion below has run.
					e.casStageDecsLocked(f.Extents)
				} else if f.Size > 0 {
					e.stageDeleteLocked(f.DataUUID, false)
				}
				e.stageDeleteLocked(entry.UUID, true)
				e.cache.invalidate(entry.UUID)
			}
		}

	case metadata.KindSymlink:
		// Entry-only; nothing else to delete.
	}

	if _, err := w.dir.Remove(name, e.bucketLoaderFor(w.dir)); err != nil {
		return err
	}
	e.markDirnodeOpLocked(w.dir, w.version, dirOp{kind: opRemove, name: name})
	return e.maybeDrainLocked()
}

// SyncMetadata drains all pending write-back metadata to the store: the
// barrier the untrusted layer invokes from File.Sync/Close, FS.Sync,
// and before cache drops. In eager mode (or before a volume is active)
// it is a no-op that performs no ecall.
func (e *Enclave) SyncMetadata() error {
	if e.wb == nil {
		return nil
	}
	return e.retryTornEcall(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.rootKey == nil {
			return nil
		}
		return e.drainWithRetryLocked()
	})
}

// sortUUIDs orders ids deterministically (byte order).
func sortUUIDs(ids []uuid.UUID) {
	sort.Slice(ids, func(i, j int) bool { return bytes.Compare(ids[i][:], ids[j][:]) < 0 })
}
