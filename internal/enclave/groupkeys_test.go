package enclave

import (
	"errors"
	"fmt"
	"testing"

	"nexus/internal/acl"
	"nexus/internal/groupkey"
	"nexus/internal/metadata"
	"nexus/internal/sgx"
)

// newTestEnvCfg builds an enclave over the store with extra Config
// fields applied on top of the standard test defaults.
func newTestEnvCfg(t *testing.T, store *memObjectStore, mutate func(*Config)) *testEnv {
	t.Helper()
	ias, err := sgx.NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	if store == nil {
		store = newMemObjectStore()
	}
	platform, err := sgx.NewPlatform(sgx.PlatformConfig{}, ias)
	if err != nil {
		t.Fatal(err)
	}
	container, err := platform.CreateEnclave(nexusImage)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{SGX: container, Store: store, IAS: ias}
	if mutate != nil {
		mutate(&cfg)
	}
	encl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{ias: ias, platform: platform, enclave: encl, store: store}
}

func TestGroupTreeTracksUserAdmin(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, _, _ := newMountedVolume(t, owner)
	e := env.enclave

	// CreateVolume enrolled the owner.
	e.mu.Lock()
	tree := e.groupTreeLocked()
	e.mu.Unlock()
	if tree == nil {
		t.Fatal("fresh volume has no key tree")
	}
	if !tree.Contains(metadata.OwnerUserID) {
		t.Fatal("owner not enrolled at volume creation")
	}

	alice := newIdentity(t, "alice")
	aliceID, err := e.AddUser("alice", alice.pub)
	if err != nil {
		t.Fatalf("AddUser: %v", err)
	}
	// Admin ops reload the supernode under the store lock, so re-fetch
	// the tree instance after each mutation.
	e.mu.Lock()
	tree = e.groupTreeLocked()
	e.mu.Unlock()
	if !tree.Contains(aliceID) {
		t.Fatal("added user not enrolled in the key tree")
	}
	epochBefore := tree.Epoch()
	if err := e.RemoveUser("alice"); err != nil {
		t.Fatalf("RemoveUser: %v", err)
	}
	e.mu.Lock()
	tree = e.groupTreeLocked()
	e.mu.Unlock()
	if tree.Contains(aliceID) {
		t.Fatal("revoked user still in the key tree")
	}
	if tree.Epoch() != epochBefore+1 {
		t.Fatalf("revocation did not advance the epoch: %d → %d", epochBefore, tree.Epoch())
	}
	// The rotation metered wraps.
	if e.metrics.groupWraps.Value() == 0 {
		t.Fatal("enclave_groupkey_wraps_total did not advance")
	}
}

func TestGroupTreePersistsAcrossMount(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, sealed, volID := newMountedVolume(t, owner)
	alice := newIdentity(t, "alice")
	aliceID, err := env.enclave.AddUser("alice", alice.pub)
	if err != nil {
		t.Fatal(err)
	}

	// A second enclave over the same store (fresh platform would not
	// unseal; reuse the same platform's container as Mount does in
	// exchange tests — here simply re-authenticate on the same enclave
	// after dropping state via a new enclave on the same platform).
	container, err := env.platform.CreateEnclave(nexusImage)
	if err != nil {
		t.Fatal(err)
	}
	encl2, err := New(Config{SGX: container, Store: env.store, IAS: env.ias})
	if err != nil {
		t.Fatal(err)
	}
	if err := authenticate(t, encl2, owner, sealed, volID); err != nil {
		t.Fatalf("re-mount authenticate: %v", err)
	}
	encl2.mu.Lock()
	tree := encl2.groupTreeLocked()
	encl2.mu.Unlock()
	if tree == nil {
		t.Fatal("key tree lost across mount")
	}
	if !tree.Contains(aliceID) || !tree.Contains(metadata.OwnerUserID) {
		t.Fatal("membership lost across mount")
	}
	// Unwraps were metered during the owner's authenticate.
	if encl2.metrics.groupUnwraps.Value() == 0 {
		t.Fatal("enclave_groupkey_unwraps_total did not advance on authenticate")
	}
}

func TestGroupACLEndToEnd(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, sealed, volID := newMountedVolume(t, owner)
	e := env.enclave

	alice := newIdentity(t, "alice")
	if _, err := e.AddUser("alice", alice.pub); err != nil {
		t.Fatal(err)
	}
	if err := e.Mkdir("/team"); err != nil {
		t.Fatal(err)
	}
	if err := e.Touch("/team/notes"); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFile("/team/notes", []byte("hello")); err != nil {
		t.Fatal(err)
	}

	leaf, err := e.UserGroup("alice")
	if err != nil {
		t.Fatalf("UserGroup: %v", err)
	}
	// Root lookup for traversal + group read on /team.
	if err := e.SetACL("/", "alice", acl.Lookup); err != nil {
		t.Fatal(err)
	}
	if err := e.SetGroupACL("/team", leaf, acl.ReadOnly); err != nil {
		t.Fatalf("SetGroupACL: %v", err)
	}
	got, err := e.GetACL("/team")
	if err != nil {
		t.Fatal(err)
	}
	if got[fmt.Sprintf("group:%d", leaf)] != acl.ReadOnly {
		t.Fatalf("GetACL = %v, want group:%d → read", got, leaf)
	}

	// Alice reads through the group grant alone (no direct /team entry).
	if err := authenticate(t, e, alice, sealed, volID); err != nil {
		t.Fatalf("alice authenticate: %v", err)
	}
	data, err := e.ReadFile("/team/notes")
	if err != nil {
		t.Fatalf("group-granted read: %v", err)
	}
	if string(data) != "hello" {
		t.Fatalf("read = %q", data)
	}
	// The grant is read-only: writes stay denied.
	if err := e.WriteFile("/team/notes", []byte("x")); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("group write = %v, want ErrAccessDenied", err)
	}

	// Revoke the subgroup grant; alice loses access.
	if err := authenticate(t, e, owner, sealed, volID); err != nil {
		t.Fatal(err)
	}
	if err := e.SetGroupACL("/team", leaf, acl.None); err != nil {
		t.Fatal(err)
	}
	if err := authenticate(t, e, alice, sealed, volID); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ReadFile("/team/notes"); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("read after group revoke = %v, want ErrAccessDenied", err)
	}
}

func TestGroupRevokedUserFailsAuth(t *testing.T) {
	owner := newIdentity(t, "owen")
	env, sealed, volID := newMountedVolume(t, owner)
	e := env.enclave
	alice := newIdentity(t, "alice")
	if _, err := e.AddUser("alice", alice.pub); err != nil {
		t.Fatal(err)
	}
	if err := authenticate(t, e, alice, sealed, volID); err != nil {
		t.Fatalf("alice authenticate: %v", err)
	}
	if err := authenticate(t, e, owner, sealed, volID); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveUser("alice"); err != nil {
		t.Fatal(err)
	}
	// Revocation removes the table entry AND rotates her path keys:
	// authentication fails on the membership check.
	if err := authenticate(t, e, alice, sealed, volID); !errors.Is(err, ErrBadAuth) {
		t.Fatalf("revoked auth = %v, want ErrBadAuth", err)
	}
}

func TestGroupKeysDisabledKnob(t *testing.T) {
	owner := newIdentity(t, "owen")
	env := newTestEnvCfg(t, nil, func(c *Config) { c.DisableGroupKeys = true })
	e := env.enclave
	sealed, err := e.CreateVolume(owner.name, owner.pub)
	if err != nil {
		t.Fatal(err)
	}
	volID, err := e.VolumeUUID()
	if err != nil {
		t.Fatal(err)
	}
	if err := authenticate(t, e, owner, sealed, volID); err != nil {
		t.Fatalf("authenticate with knob off: %v", err)
	}
	alice := newIdentity(t, "alice")
	if _, err := e.AddUser("alice", alice.pub); err != nil {
		t.Fatalf("AddUser with knob off: %v", err)
	}
	e.mu.Lock()
	tree := e.super.GroupTree
	e.mu.Unlock()
	if tree != nil {
		t.Fatal("knob off but a tree was built")
	}
	if _, err := e.UserGroup("alice"); !errors.Is(err, ErrGroupKeysDisabled) {
		t.Fatalf("UserGroup = %v, want ErrGroupKeysDisabled", err)
	}
	if err := e.SetGroupACL("/", 0, acl.ReadOnly); !errors.Is(err, ErrGroupKeysDisabled) {
		t.Fatalf("SetGroupACL = %v, want ErrGroupKeysDisabled", err)
	}
	if err := e.RemoveUser("alice"); err != nil {
		t.Fatalf("RemoveUser with knob off: %v", err)
	}
}

func TestLegacyVolumeWithoutTreeMounts(t *testing.T) {
	// A volume created with the knob off (no tree in the supernode) must
	// mount and authenticate on an enclave with group keys enabled, and
	// migrate on the next AddUser.
	owner := newIdentity(t, "owen")
	legacyEnv := newTestEnvCfg(t, nil, func(c *Config) { c.DisableGroupKeys = true })
	sealed, err := legacyEnv.enclave.CreateVolume(owner.name, owner.pub)
	if err != nil {
		t.Fatal(err)
	}
	volID, err := legacyEnv.enclave.VolumeUUID()
	if err != nil {
		t.Fatal(err)
	}
	alice := newIdentity(t, "alice")
	if err := authenticate(t, legacyEnv.enclave, owner, sealed, volID); err != nil {
		t.Fatal(err)
	}
	if _, err := legacyEnv.enclave.AddUser("alice", alice.pub); err != nil {
		t.Fatal(err)
	}

	// Same platform, group keys on.
	container, err := legacyEnv.platform.CreateEnclave(nexusImage)
	if err != nil {
		t.Fatal(err)
	}
	encl, err := New(Config{SGX: container, Store: legacyEnv.store, IAS: legacyEnv.ias})
	if err != nil {
		t.Fatal(err)
	}
	if err := authenticate(t, encl, owner, sealed, volID); err != nil {
		t.Fatalf("legacy volume authenticate: %v", err)
	}
	encl.mu.Lock()
	tree := encl.groupTreeLocked()
	encl.mu.Unlock()
	if tree != nil {
		t.Fatal("legacy volume grew a tree without a migration event")
	}
	// First AddUser migrates everyone.
	bob := newIdentity(t, "bob")
	bobID, err := encl.AddUser("bob", bob.pub)
	if err != nil {
		t.Fatalf("migrating AddUser: %v", err)
	}
	encl.mu.Lock()
	tree = encl.groupTreeLocked()
	encl.mu.Unlock()
	if tree == nil {
		t.Fatal("AddUser did not build the tree")
	}
	for _, id := range []uint32{metadata.OwnerUserID, bobID} {
		if !tree.Contains(id) {
			t.Fatalf("user %d missing after migration", id)
		}
	}
	if tree.Len() != 3 {
		t.Fatalf("migrated tree Len = %d, want 3 (owner, alice, bob)", tree.Len())
	}
}

func TestGroupRotationRidesWritebackDrain(t *testing.T) {
	owner := newIdentity(t, "owen")
	env := newTestEnvCfg(t, nil, func(c *Config) { c.Writeback = WritebackOn })
	e := env.enclave
	sealed, err := e.CreateVolume(owner.name, owner.pub)
	if err != nil {
		t.Fatal(err)
	}
	volID, err := e.VolumeUUID()
	if err != nil {
		t.Fatal(err)
	}
	if err := authenticate(t, e, owner, sealed, volID); err != nil {
		t.Fatal(err)
	}
	alice := newIdentity(t, "alice")
	if _, err := e.AddUser("alice", alice.pub); err != nil {
		t.Fatal(err)
	}

	// Queue deferred metadata, then revoke: the admin barrier must drain
	// the batch AND flush the rotated supernode in one pass.
	if err := e.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := e.Touch("/d/f"); err != nil {
		t.Fatal(err)
	}
	batchesBefore := e.metrics.flushBatches.Value()
	superBefore, _, err := env.store.GetVersioned(SupernodeObjectName)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveUser("alice"); err != nil {
		t.Fatalf("RemoveUser under write-back: %v", err)
	}
	if got := e.metrics.flushBatches.Value(); got == batchesBefore {
		t.Fatal("revocation did not ride a flush batch")
	}
	superAfter, _, err := env.store.GetVersioned(SupernodeObjectName)
	if err != nil {
		t.Fatal(err)
	}
	if string(superBefore) == string(superAfter) {
		t.Fatal("supernode not re-uploaded by the drain")
	}
	// Nothing dirty is left behind, and the rotation survives a re-read.
	e.mu.Lock()
	leftover := e.wb.superDirty || len(e.wb.nodes) != 0
	e.mu.Unlock()
	if leftover {
		t.Fatal("dirty state left after the admin barrier")
	}
	if err := authenticate(t, e, alice, sealed, volID); !errors.Is(err, ErrBadAuth) {
		t.Fatalf("revoked auth after drain = %v, want ErrBadAuth", err)
	}
}

func TestGroupTreeWrapScalingInEnclave(t *testing.T) {
	// Enclave-level sanity of the O(log n) claim: revoking out of a
	// larger membership must not wrap proportionally more keys.
	if testing.Short() {
		t.Skip("builds hundreds of identities")
	}
	owner := newIdentity(t, "owen")
	env, _, _ := newMountedVolume(t, owner)
	e := env.enclave

	for i := 0; i < 300; i++ {
		id := newIdentity(t, fmt.Sprintf("u%d", i))
		if _, err := e.AddUser(id.name, id.pub); err != nil {
			t.Fatal(err)
		}
	}
	e.mu.Lock()
	tree := e.groupTreeLocked()
	e.mu.Unlock()
	cfgBound := int64(groupkey.DefaultLeafCap + groupkey.DefaultFanout*8)
	e.metrics.groupWraps.Reset()
	if err := e.RemoveUser("u150"); err != nil {
		t.Fatal(err)
	}
	if got := e.metrics.groupWraps.Value(); got == 0 || got > cfgBound {
		t.Fatalf("revocation wraps = %d, want 1..%d (members=%d)", got, cfgBound, tree.Len())
	}
}
